package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV emits a figure as long-form CSV: series,x,y.
func WriteCSV(w io.Writer, f Figure) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "y"}); err != nil {
		return err
	}
	for _, s := range f.Series {
		for i := range s.X {
			rec := []string{
				s.Name,
				strconv.FormatFloat(s.X[i], 'g', -1, 64),
				strconv.FormatFloat(s.Y[i], 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderTable formats a figure as an aligned text table, series as
// columns over the union of x values.
func RenderTable(f Figure) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure %d: %s\n", f.ID, f.Title)
	if f.Notes != "" {
		fmt.Fprintf(&sb, "  %s\n", f.Notes)
	}
	// Union of X values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	// Header.
	fmt.Fprintf(&sb, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, " %24s", truncate(s.Name, 24))
	}
	sb.WriteByte('\n')
	// Rows.
	for _, x := range xs {
		fmt.Fprintf(&sb, "%-12.4g", x)
		for _, s := range f.Series {
			v, ok := lookup(s, x)
			if ok {
				fmt.Fprintf(&sb, " %24.4f", v)
			} else {
				fmt.Fprintf(&sb, " %24s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func lookup(s Series, x float64) (float64, bool) {
	for i := range s.X {
		if s.X[i] == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
