package dist_test

import (
	"math"
	"strings"
	"testing"

	"psd/internal/dist"
)

func TestConstructorValidation(t *testing.T) {
	cases := []struct {
		name string
		make func() (dist.Distribution, error)
	}{
		{"deterministic zero", func() (dist.Distribution, error) { return dist.NewDeterministic(0) }},
		{"deterministic negative", func() (dist.Distribution, error) { return dist.NewDeterministic(-1) }},
		{"exponential zero rate", func() (dist.Distribution, error) { return dist.NewExponential(0) }},
		{"exponential NaN rate", func() (dist.Distribution, error) { return dist.NewExponential(math.NaN()) }},
		{"uniform zero lower", func() (dist.Distribution, error) { return dist.NewUniform(0, 1) }},
		{"uniform inverted", func() (dist.Distribution, error) { return dist.NewUniform(2, 1) }},
		{"uniform degenerate", func() (dist.Distribution, error) { return dist.NewUniform(1, 1) }},
		{"lognormal Inf mu", func() (dist.Distribution, error) { return dist.NewLognormal(math.Inf(1), 1) }},
		{"lognormal zero sigma", func() (dist.Distribution, error) { return dist.NewLognormal(0, 0) }},
		{"lognormal moments bad scv", func() (dist.Distribution, error) { return dist.LognormalFromMoments(1, 0) }},
		{"weibull zero shape", func() (dist.Distribution, error) { return dist.NewWeibull(0, 1) }},
		{"weibull negative scale", func() (dist.Distribution, error) { return dist.NewWeibull(1, -2) }},
		{"hyperexp scv below 1", func() (dist.Distribution, error) { return dist.NewHyperExp2(1, 0.5) }},
		{"hyperexp zero mean", func() (dist.Distribution, error) { return dist.NewHyperExp2(0, 2) }},
		{"hyperexp scv degenerate", func() (dist.Distribution, error) { return dist.NewHyperExp2(1, 1e17) }},
		{"empirical empty", func() (dist.Distribution, error) { return dist.NewEmpirical(nil) }},
		{"empirical negative size", func() (dist.Distribution, error) { return dist.NewEmpirical([]float64{1, -2}) }},
		{"empirical zero size", func() (dist.Distribution, error) { return dist.NewEmpirical([]float64{1, 0}) }},
		{"scaled nil", func() (dist.Distribution, error) { return dist.NewScaled(nil, 1) }},
		{"scaled zero rate", func() (dist.Distribution, error) { return dist.NewScaled(dist.PaperDefault(), 0) }},
		{"mixture empty", func() (dist.Distribution, error) { return dist.NewMixture(nil, nil) }},
		{"mixture length mismatch", func() (dist.Distribution, error) {
			return dist.NewMixture([]dist.Distribution{dist.PaperDefault()}, []float64{0.5, 0.5})
		}},
		{"mixture nil component", func() (dist.Distribution, error) {
			return dist.NewMixture([]dist.Distribution{nil}, []float64{1})
		}},
		{"mixture zero weight", func() (dist.Distribution, error) {
			return dist.NewMixture([]dist.Distribution{dist.PaperDefault()}, []float64{0})
		}},
		{"mixture weight sum overflows", func() (dist.Distribution, error) {
			return dist.NewMixture(
				[]dist.Distribution{dist.PaperDefault(), must(dist.NewDeterministic(1))},
				[]float64{1e308, 1e308})
		}},
		{"deterministic second moment overflows", func() (dist.Distribution, error) { return dist.NewDeterministic(1e200) }},
		{"exponential second moment overflows", func() (dist.Distribution, error) { return dist.NewExponential(1e-200) }},
		{"uniform second moment overflows", func() (dist.Distribution, error) { return dist.NewUniform(1, 1e200) }},
		{"lognormal mean overflows", func() (dist.Distribution, error) { return dist.NewLognormal(400, 30) }},
		{"weibull second moment overflows", func() (dist.Distribution, error) { return dist.NewWeibull(0.01, 1e-157) }},
		{"scaled second moment overflows", func() (dist.Distribution, error) {
			return dist.NewScaled(must(dist.NewDeterministic(1e150)), 1e-150)
		}},
	}
	for _, tc := range cases {
		if _, err := tc.make(); err == nil {
			t.Errorf("%s: constructor accepted invalid input", tc.name)
		}
	}
}

// TestDivergenceContract documents which laws have no finite E[1/X] —
// the condition queueing.ErrDivergent exists to report: a density with
// mass at (or heavily concentrated near) zero size makes expected
// slowdown infinite.
func TestDivergenceContract(t *testing.T) {
	divergent := []dist.Distribution{
		must(dist.NewExponential(1)),
		must(dist.NewHyperExp2(1, 4)),
		must(dist.NewWeibull(1, 1)),   // boundary: exponential
		must(dist.NewWeibull(0.5, 1)), // heavy: concentrates near 0
	}
	for _, d := range divergent {
		if !math.IsInf(d.InverseMoment(), 1) {
			t.Errorf("%s: E[1/X] = %v, want +Inf", d, d.InverseMoment())
		}
	}
	finite := []dist.Distribution{
		dist.PaperDefault(),
		must(dist.NewDeterministic(1)),
		must(dist.NewUniform(0.5, 2)),
		must(dist.NewLognormal(0, 1)),
		must(dist.NewWeibull(1.5, 1)),
		must(dist.NewEmpirical([]float64{1, 2})),
	}
	for _, d := range finite {
		if inv := d.InverseMoment(); math.IsInf(inv, 1) || !(inv > 0) {
			t.Errorf("%s: E[1/X] = %v, want finite positive", d, inv)
		}
	}
}

func TestHyperExp2DegeneratesToExponential(t *testing.T) {
	h, err := dist.NewHyperExp2(2, 1) // scv = 1
	if err != nil {
		t.Fatal(err)
	}
	e := must(dist.NewExponential(0.5)) // mean 2
	if relErr(h.Mean(), e.Mean()) > 1e-12 || relErr(h.SecondMoment(), e.SecondMoment()) > 1e-12 {
		t.Errorf("H2(scv=1) moments (%v, %v) != exponential (%v, %v)",
			h.Mean(), h.SecondMoment(), e.Mean(), e.SecondMoment())
	}
}

func TestHyperExp2HitsTargetSCV(t *testing.T) {
	for _, scv := range []float64{1, 1.5, 4, 25, 100} {
		h, err := dist.NewHyperExp2(3, scv)
		if err != nil {
			t.Fatalf("scv=%v: %v", scv, err)
		}
		gotSCV := h.SecondMoment()/(h.Mean()*h.Mean()) - 1
		if relErr(gotSCV, scv) > 1e-12 {
			t.Errorf("scv=%v: fit achieved %v", scv, gotSCV)
		}
		if relErr(h.Mean(), 3) > 1e-12 {
			t.Errorf("scv=%v: mean %v, want 3", scv, h.Mean())
		}
	}
}

func TestEmpiricalExactMoments(t *testing.T) {
	trace := []float64{0.5, 1, 2, 4}
	d, err := dist.NewEmpirical(trace)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := (0.5 + 1 + 2 + 4) / 4.0
	wantSecond := (0.25 + 1 + 4 + 16) / 4.0
	wantInv := (2 + 1 + 0.5 + 0.25) / 4.0
	if relErr(d.Mean(), wantMean) > 1e-15 ||
		relErr(d.SecondMoment(), wantSecond) > 1e-15 ||
		relErr(d.InverseMoment(), wantInv) > 1e-15 {
		t.Errorf("moments (%v, %v, %v), want (%v, %v, %v)",
			d.Mean(), d.SecondMoment(), d.InverseMoment(), wantMean, wantSecond, wantInv)
	}
}

// TestEmpiricalCopiesTrace: mutating the caller's slice after
// construction must not change the law.
func TestEmpiricalCopiesTrace(t *testing.T) {
	trace := []float64{1, 2, 3}
	d, err := dist.NewEmpirical(trace)
	if err != nil {
		t.Fatal(err)
	}
	before := d.Mean()
	trace[0] = 1000
	if d.Mean() != before {
		t.Error("empirical law aliased the caller's slice")
	}
}

func TestMixtureMomentsAreWeightedSums(t *testing.T) {
	u := must(dist.NewUniform(0.5, 1.5))
	det := must(dist.NewDeterministic(3))
	m, err := dist.NewMixture([]dist.Distribution{u, det}, []float64{1, 3}) // normalizes to 0.25/0.75
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 0.25*u.Mean() + 0.75*det.Mean()
	wantSecond := 0.25*u.SecondMoment() + 0.75*det.SecondMoment()
	wantInv := 0.25*u.InverseMoment() + 0.75*det.InverseMoment()
	if relErr(m.Mean(), wantMean) > 1e-12 ||
		relErr(m.SecondMoment(), wantSecond) > 1e-12 ||
		relErr(m.InverseMoment(), wantInv) > 1e-12 {
		t.Errorf("mixture moments (%v, %v, %v), want (%v, %v, %v)",
			m.Mean(), m.SecondMoment(), m.InverseMoment(), wantMean, wantSecond, wantInv)
	}
}

func TestMixtureDivergencePropagates(t *testing.T) {
	m, err := dist.NewMixture(
		[]dist.Distribution{must(dist.NewDeterministic(1)), must(dist.NewExponential(1))},
		[]float64{0.9, 0.1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(m.InverseMoment(), 1) {
		t.Errorf("mixture with exponential component: E[1/X] = %v, want +Inf", m.InverseMoment())
	}
}

func TestWeibullShape1IsExponential(t *testing.T) {
	w := must(dist.NewWeibull(1, 2))    // scale 2 → mean 2
	e := must(dist.NewExponential(0.5)) // rate 0.5 → mean 2
	if relErr(w.Mean(), e.Mean()) > 1e-12 || relErr(w.SecondMoment(), e.SecondMoment()) > 1e-12 {
		t.Errorf("Weibull(1, 2) moments (%v, %v) != Exponential(0.5) (%v, %v)",
			w.Mean(), w.SecondMoment(), e.Mean(), e.SecondMoment())
	}
}

func TestLognormalFromMomentsRoundTrip(t *testing.T) {
	for _, tc := range []struct{ mean, scv float64 }{{1, 0.25}, {2, 4}, {0.3, 1}} {
		d, err := dist.LognormalFromMoments(tc.mean, tc.scv)
		if err != nil {
			t.Fatalf("(%v, %v): %v", tc.mean, tc.scv, err)
		}
		if relErr(d.Mean(), tc.mean) > 1e-12 {
			t.Errorf("(%v, %v): mean %v", tc.mean, tc.scv, d.Mean())
		}
		gotSCV := d.SecondMoment()/(d.Mean()*d.Mean()) - 1
		if relErr(gotSCV, tc.scv) > 1e-9 {
			t.Errorf("(%v, %v): scv %v", tc.mean, tc.scv, gotSCV)
		}
	}
}

func TestStringNamesFamily(t *testing.T) {
	for want, d := range map[string]dist.Distribution{
		"BoundedPareto": dist.PaperDefault(),
		"Deterministic": must(dist.NewDeterministic(1)),
		"Exponential":   must(dist.NewExponential(1)),
		"Uniform":       must(dist.NewUniform(1, 2)),
		"Lognormal":     must(dist.NewLognormal(0, 1)),
		"Weibull":       must(dist.NewWeibull(1.5, 1)),
		"HyperExp2":     must(dist.NewHyperExp2(1, 2)),
		"Empirical":     must(dist.NewEmpirical([]float64{1})),
		"Mixture":       must(dist.NewMixture([]dist.Distribution{dist.PaperDefault()}, []float64{1})),
		"Scaled":        must(dist.NewScaled(dist.PaperDefault(), 2)),
	} {
		if !strings.Contains(d.String(), want) {
			t.Errorf("String %q does not name %s", d, want)
		}
	}
}
