package psd

// Benchmarks regenerating every figure of the paper's evaluation (§4),
// plus ablation benches for the design choices called out in DESIGN.md.
//
// Each BenchmarkFigureN runs its figure at reduced fidelity per iteration
// and reports domain metrics alongside wall-clock time:
//
//	simgap    worst |simulated − expected| / expected across the figure
//	ratioerr  worst |achieved − target| / target slowdown ratio
//
// Full paper fidelity (100 runs × 60000 tu, full load sweep) is the
// cmd/psdfig default; benches use a reduced profile so `go test -bench=.`
// stays in CI-friendly territory.

import (
	"math"
	"runtime"
	"testing"

	"psd/internal/analytic"
	"psd/internal/core"
	"psd/internal/dist"
	"psd/internal/figures"
	"psd/internal/simsrv"
)

// benchOpts is the reduced fidelity profile for figure benches.
func benchOpts() figures.Options {
	return figures.Options{
		Runs:    4,
		Horizon: 10000,
		Warmup:  2000,
		Loads:   []float64{0.3, 0.6, 0.9},
		Seed:    1,
	}
}

func benchFigure(b *testing.B, id int) figures.Figure {
	b.Helper()
	var fig figures.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = figures.Generate(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	return fig
}

// reportSimGap attaches the worst simulated-vs-expected relative gap.
func reportSimGap(b *testing.B, fig figures.Figure) {
	b.Helper()
	if gap := figures.MaxAbsRelGap(fig); !math.IsNaN(gap) {
		b.ReportMetric(gap, "simgap")
	}
}

func BenchmarkFigure2(b *testing.B) { reportSimGap(b, benchFigure(b, 2)) }
func BenchmarkFigure3(b *testing.B) { reportSimGap(b, benchFigure(b, 3)) }
func BenchmarkFigure4(b *testing.B) { reportSimGap(b, benchFigure(b, 4)) }

func BenchmarkFigure5(b *testing.B) {
	fig := benchFigure(b, 5)
	// Median of the per-window ratio should sit near each target; report
	// the worst median error across the three delta settings at the
	// moderate load point.
	worst := 0.0
	targets := map[string]float64{"d2/d1=2 p50": 2, "d2/d1=4 p50": 4, "d2/d1=8 p50": 8}
	for _, s := range fig.Series {
		target, ok := targets[s.Name]
		if !ok || len(s.Y) < 2 {
			continue
		}
		err := math.Abs(s.Y[1]-target) / target // index 1 = load 0.6
		if err > worst {
			worst = err
		}
	}
	b.ReportMetric(worst, "ratioerr")
}

func BenchmarkFigure6(b *testing.B) { _ = benchFigure(b, 6) }
func BenchmarkFigure7(b *testing.B) { _ = benchFigure(b, 7) }
func BenchmarkFigure8(b *testing.B) { _ = benchFigure(b, 8) }

func BenchmarkFigure9(b *testing.B) {
	fig := benchFigure(b, 9)
	worst := 0.0
	targets := []float64{2, 4, 8}
	for i, s := range fig.Series {
		if i >= len(targets) || len(s.Y) < 2 {
			continue
		}
		err := math.Abs(s.Y[1]-targets[i]) / targets[i]
		if err > worst {
			worst = err
		}
	}
	b.ReportMetric(worst, "ratioerr")
}

func BenchmarkFigure10(b *testing.B) { _ = benchFigure(b, 10) }
func BenchmarkFigure11(b *testing.B) { reportSimGap(b, benchFigure(b, 11)) }
func BenchmarkFigure12(b *testing.B) { reportSimGap(b, benchFigure(b, 12)) }

// ---------------------------------------------------------------------------
// Ablation benches (design-choice studies beyond the paper's figures).

// ratioErrorUnder runs a two-class δ=(1,4) scenario under the given
// config mutation and returns |achieved − 4| / 4, where "achieved" is the
// ratio of across-run mean slowdowns (the mean-of-per-run-ratios
// estimator is upward-biased for heavy-tailed data at bench fidelity).
func ratioErrorUnder(b *testing.B, mutate func(*simsrv.Config)) float64 {
	b.Helper()
	cfg := simsrv.EqualLoadConfig([]float64{1, 4}, 0.6, nil)
	cfg.Warmup = 2000
	cfg.Horizon = 20000
	cfg.Seed = 11
	if mutate != nil {
		mutate(&cfg)
	}
	agg, err := simsrv.RunReplications(cfg, 6)
	if err != nil {
		b.Fatal(err)
	}
	achieved := agg.MeanSlowdowns[1] / agg.MeanSlowdowns[0]
	return math.Abs(achieved-4) / 4
}

// BenchmarkAblationAllocators compares the PSD allocator against the
// baselines on the same workload: the PSD row should show a far smaller
// ratioerr than equal/demand (which do not differentiate) and pdd (which
// differentiates delays, not slowdowns).
func BenchmarkAblationAllocators(b *testing.B) {
	cases := []struct {
		name  string
		alloc core.Allocator
	}{
		{"psd", core.PSD{}},
		{"pdd", core.PDD{}},
		{"equal", core.EqualShare{}},
		{"demand", core.DemandProportional{}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var err float64
			for i := 0; i < b.N; i++ {
				err = ratioErrorUnder(b, func(c *simsrv.Config) { c.Allocator = tc.alloc })
			}
			b.ReportMetric(err, "ratioerr")
		})
	}
}

// BenchmarkAblationWindow sweeps the estimation window: short windows are
// adaptive but noisy, long windows smooth but stale (§4.4 discusses this
// trade-off).
func BenchmarkAblationWindow(b *testing.B) {
	for _, window := range []float64{250, 500, 1000, 2000, 4000} {
		window := window
		b.Run(formatFloat(window), func(b *testing.B) {
			var err float64
			for i := 0; i < b.N; i++ {
				err = ratioErrorUnder(b, func(c *simsrv.Config) { c.Window = window })
			}
			b.ReportMetric(err, "ratioerr")
		})
	}
}

// BenchmarkAblationHistory sweeps the estimator depth (the paper uses 5).
func BenchmarkAblationHistory(b *testing.B) {
	for _, h := range []int{1, 3, 5, 10} {
		h := h
		b.Run(formatFloat(float64(h)), func(b *testing.B) {
			var err float64
			for i := 0; i < b.N; i++ {
				err = ratioErrorUnder(b, func(c *simsrv.Config) { c.HistoryWindows = h })
			}
			b.ReportMetric(err, "ratioerr")
		})
	}
}

// BenchmarkAblationOracle isolates estimation error (§4.4): the oracle
// variant feeds the allocator the true arrival rates.
func BenchmarkAblationOracle(b *testing.B) {
	for _, oracle := range []bool{false, true} {
		oracle := oracle
		name := "estimated"
		if oracle {
			name = "oracle"
		}
		b.Run(name, func(b *testing.B) {
			var err float64
			for i := 0; i < b.N; i++ {
				err = ratioErrorUnder(b, func(c *simsrv.Config) { c.Oracle = oracle })
			}
			b.ReportMetric(err, "ratioerr")
		})
	}
}

// BenchmarkAblationWorkConserving compares the paper's strict capacity
// partition against a GPS-style work-conserving variant. The metric is
// the system mean slowdown (lower is better); work conservation improves
// the aggregate but perturbs the per-class proportionality the closed
// forms assume.
func BenchmarkAblationWorkConserving(b *testing.B) {
	for _, wc := range []bool{false, true} {
		wc := wc
		name := "partitioned"
		if wc {
			name = "workconserving"
		}
		b.Run(name, func(b *testing.B) {
			var sys, ratioErr float64
			for i := 0; i < b.N; i++ {
				cfg := simsrv.EqualLoadConfig([]float64{1, 2}, 0.6, nil)
				cfg.Warmup = 2000
				cfg.Horizon = 20000
				cfg.Seed = 11
				cfg.WorkConserving = wc
				agg, err := simsrv.RunReplications(cfg, 6)
				if err != nil {
					b.Fatal(err)
				}
				sys = agg.SystemSlowdown
				achieved := agg.MeanSlowdowns[1] / agg.MeanSlowdowns[0]
				ratioErr = math.Abs(achieved-2) / 2
			}
			b.ReportMetric(sys, "sysslowdown")
			b.ReportMetric(ratioErr, "ratioerr")
		})
	}
}

// BenchmarkAblationFeedback compares open-loop Eq. 17 against the
// closed-loop ratio controller (the paper's future-work extension) under
// a deliberate model mismatch: class 2's true job sizes are 3× the
// moments the allocator was given. Open loop inherits the full bias;
// feedback corrects it from measured slowdowns.
func BenchmarkAblationFeedback(b *testing.B) {
	big, err := dist.NewScaled(dist.PaperDefault(), 1.0/3)
	if err != nil {
		b.Fatal(err)
	}
	for _, feedback := range []bool{false, true} {
		feedback := feedback
		name := "openloop"
		if feedback {
			name = "feedback"
		}
		b.Run(name, func(b *testing.B) {
			var ratioErr float64
			for i := 0; i < b.N; i++ {
				cfg := simsrv.EqualLoadConfig([]float64{1, 2}, 0.6, nil)
				cfg.Warmup = 2000
				cfg.Horizon = 20000
				cfg.Seed = 11
				cfg.Feedback = feedback
				cfg.Classes[1].Service = big
				cfg.Classes[1].Lambda /= 3
				agg, err := simsrv.RunReplications(cfg, 6)
				if err != nil {
					b.Fatal(err)
				}
				achieved := agg.MeanSlowdowns[1] / agg.MeanSlowdowns[0]
				ratioErr = math.Abs(achieved-2) / 2
			}
			b.ReportMetric(ratioErr, "ratioerr")
		})
	}
}

// BenchmarkAblationPacketized quantifies the work-conserving limitation:
// the same traffic through the paper's partitioned task servers versus a
// packetized SCFQ server, reporting achieved-ratio error against the
// target of 2.
func BenchmarkAblationPacketized(b *testing.B) {
	run := func(b *testing.B, packetized bool) float64 {
		var s0, s1 float64
		for seed := uint64(0); seed < 6; seed++ {
			cfg := simsrv.EqualLoadConfig([]float64{1, 2}, 0.6, nil)
			cfg.Warmup = 2000
			cfg.Horizon = 20000
			cfg.Seed = seed
			var res *simsrv.Result
			var err error
			if packetized {
				cfg.Allocator = core.PacketizedPSD{}
				res, err = simsrv.RunPacketized(simsrv.PacketizedConfig{Config: cfg})
			} else {
				res, err = simsrv.Run(cfg)
			}
			if err != nil {
				b.Fatal(err)
			}
			s0 += res.Classes[0].MeanSlowdown
			s1 += res.Classes[1].MeanSlowdown
		}
		return math.Abs(s1/s0-2) / 2
	}
	for _, packetized := range []bool{false, true} {
		packetized := packetized
		name := "partitioned"
		if packetized {
			name = "scfq"
		}
		b.Run(name, func(b *testing.B) {
			var ratioErr float64
			for i := 0; i < b.N; i++ {
				ratioErr = run(b, packetized)
			}
			b.ReportMetric(ratioErr, "ratioerr")
		})
	}
}

// BenchmarkReplication is the repo's end-to-end performance benchmark:
// one full paper-fidelity replication (10,000 tu warmup + 60,000 tu
// measured, §4.1) per iteration through a reusable Simulator arena, over
// the standard 2-class and 5-class partitioned workloads AND the
// packetized SCFQ server. It reports the numbers the perf baseline
// tracks:
//
//	events/s      DES events executed per wall-clock second
//	ns/event      inverse of the above
//	allocs/event  heap allocations per event
//	allocs/rep    heap allocations per steady-state replication
//
// Two hard gates back the metrics (both models):
//
//   - allocs/event < 0.01 — the pre-PR2 engine sat at ~2.7, the
//     packetized path at 0.053 until its allocator bisection went
//     in-place; 0.01 is far above measurement noise and far below any
//     closure/boxing regression sneaking back into the hot path.
//   - allocs/replication < 10 — the arena contract. Fresh construction
//     costs ~100 allocations; a Reset+RunInto cycle on a warm arena
//     costs ~0, so double digits mean some buffer stopped being reused.
//
// cmd/psdbench runs the same scenarios and emits BENCH_psd.json; CI runs
// this benchmark with -benchtime 1x as an allocation smoke test and
// psdbench -compare as the throughput gate.
func BenchmarkReplication(b *testing.B) {
	cases := []struct {
		name       string
		deltas     []float64
		load       float64
		packetized bool
	}{
		{"2class", []float64{1, 4}, 0.6, false},
		{"5class", []float64{1, 2, 4, 8, 16}, 0.8, false},
		{"2class-packetized", []float64{1, 4}, 0.6, true},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			cfg := simsrv.EqualLoadConfig(tc.deltas, tc.load, nil)
			var sim simsrv.Simulator
			var res simsrv.Result
			run := func(seed uint64) {
				b.Helper()
				var err error
				if tc.packetized {
					err = sim.ResetPacketized(simsrv.PacketizedConfig{Config: cfg}, seed)
				} else {
					err = sim.Reset(cfg, seed)
				}
				if err == nil {
					err = sim.RunInto(&res)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			run(0) // untimed arena warmup to the scenario's high-water mark
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			var events uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run(uint64(i + 1))
				events += res.EventsProcessed
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms1)
			secs := b.Elapsed().Seconds()
			if secs > 0 && events > 0 {
				allocsPerEvent := float64(ms1.Mallocs-ms0.Mallocs) / float64(events)
				allocsPerRep := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
				b.ReportMetric(float64(events)/secs, "events/s")
				b.ReportMetric(secs*1e9/float64(events), "ns/event")
				b.ReportMetric(allocsPerEvent, "allocs/event")
				b.ReportMetric(allocsPerRep, "allocs/rep")
				if allocsPerEvent > 0.01 {
					b.Fatalf("hot path regressed into allocation: %.4f allocs/event (want < 0.01)", allocsPerEvent)
				}
				if allocsPerRep >= 10 {
					b.Fatalf("arena reuse regressed: %.1f allocs/replication (want < 10)", allocsPerRep)
				}
			}
		})
	}
}

// BenchmarkFigureSweep measures full-figure generation through the sweep
// engine: one reduced-fidelity Figure 2 (5-load sweep × 10 replications)
// per iteration, reporting replications/sec and allocs/replication — the
// two numbers the reusable-arena engine exists to improve (per-core
// events/s is unchanged by it; setup and aggregation costs are what
// disappear). cmd/psdbench's figure2-sweep scenario tracks the same grid
// in the committed baseline.
func BenchmarkFigureSweep(b *testing.B) {
	opts := figures.Options{
		Runs:    10,
		Horizon: 15000,
		Warmup:  2000,
		Seed:    1,
		Loads:   []float64{0.1, 0.3, 0.5, 0.7, 0.9},
	}
	repsPerFigure := len(opts.Loads) * opts.Runs
	if _, err := figures.Figure2(opts); err != nil { // untimed warmup
		b.Fatal(err)
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := figures.Figure2(opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	reps := b.N * repsPerFigure
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(reps)/secs, "reps/s")
		b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(reps), "allocs/rep")
	}
}

// BenchmarkAnalyticSweep measures the closed-form fast path on the same
// grid BenchmarkFigureSweep simulates: one warm Evaluator pass per grid
// point. It reports points/s and hard-fails on any warm-path allocation —
// the same 0 allocs/point promise cmd/psdbench gates in CI.
func BenchmarkAnalyticSweep(b *testing.B) {
	loads := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	cfgs := make([]simsrv.Config, len(loads))
	for i, rho := range loads {
		cfgs[i] = simsrv.EqualLoadConfig([]float64{1, 2}, rho, nil)
	}
	var ev analytic.Evaluator
	var res analytic.Evaluation
	if err := ev.EvaluateInto(&res, cfgs[0]); err != nil { // warm the arena
		b.Fatal(err)
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range cfgs {
			if err := ev.EvaluateInto(&res, cfgs[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	points := b.N * len(cfgs)
	allocsPerPoint := float64(ms1.Mallocs-ms0.Mallocs) / float64(points)
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(points)/secs, "points/s")
		b.ReportMetric(allocsPerPoint, "allocs/point")
	}
	if allocsPerPoint > 0.01 {
		b.Fatalf("warm closed-form evaluation allocates %.4f times per point, want 0", allocsPerPoint)
	}
}

// BenchmarkSimulationThroughput measures raw simulator speed: events per
// second at a demanding 90% load.
func BenchmarkSimulationThroughput(b *testing.B) {
	cfg := simsrv.EqualLoadConfig([]float64{1, 2}, 0.9, nil)
	cfg.Warmup = 1000
	cfg.Horizon = 10000
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		res, err := simsrv.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.EventsProcessed
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkAllocatorThroughput measures Eq. 17 evaluations per second —
// the hot path of a live reallocation loop.
func BenchmarkAllocatorThroughput(b *testing.B) {
	d := PaperWorkload()
	w, err := core.WorkloadFromDist(d)
	if err != nil {
		b.Fatal(err)
	}
	lambda := 0.3 / d.Mean()
	classes := []core.Class{{Delta: 1, Lambda: lambda}, {Delta: 2, Lambda: lambda}, {Delta: 4, Lambda: lambda / 2}}
	for i := 0; i < b.N; i++ {
		if _, err := (core.PSD{}).Allocate(classes, w); err != nil {
			b.Fatal(err)
		}
	}
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v):
		return itoa(int(v))
	default:
		return "x"
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
