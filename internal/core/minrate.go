package core

import "fmt"

// MinRate wraps a base allocator with a feasibility-region minimum: any
// class whose allocated rate falls below Min is raised to Min, and the
// deficit is taken from the other classes proportionally to their slack
// above their own floor (max(Min, λ_jE[X])). This moves the
// non-positive-rate guard out of the pacing layer and into the
// allocation itself: a starved class (λ̂ = 0, or a vanishing surplus
// share) still receives a schedulable trickle, so the server-side
// minPaceRate clamp becomes a pure regression tripwire instead of a
// load-bearing correction.
//
// The wrapper is bit-transparent when the floor does not bind: if every
// base rate is ≥ Min, the base allocation is returned untouched, so
// seeded parity tests against the bare allocator keep passing
// bit-for-bit. When redistribution is impossible — n·Min ≥ 1, or the
// donors' slack cannot cover the deficit without pushing a donor to (or
// below) its own floor — the base allocation is likewise returned
// untouched and the pacing tripwire downstream accounts the clamp.
type MinRate struct {
	Base Allocator
	// Min is the per-class rate floor in units of server capacity
	// (capacity is 1). Non-positive disables the wrapper.
	Min float64
}

// Name implements Allocator.
func (m MinRate) Name() string { return m.Base.Name() + "+minrate" }

// Allocate implements Allocator.
func (m MinRate) Allocate(classes []Class, w Workload) (Allocation, error) {
	var alloc Allocation
	if err := m.AllocateInto(&alloc, classes, w); err != nil {
		return Allocation{}, err
	}
	return alloc, nil
}

// AllocateInto implements InPlaceAllocator. It is allocation-free
// whenever the base allocator's in-place path is.
func (m MinRate) AllocateInto(dst *Allocation, classes []Class, w Workload) error {
	if m.Base == nil {
		return fmt.Errorf("core: MinRate with nil base allocator")
	}
	if err := AllocateInto(m.Base, dst, classes, w); err != nil {
		return err
	}
	if !(m.Min > 0) {
		return nil
	}
	binding := false
	for _, r := range dst.Rates {
		if r < m.Min {
			binding = true
			break
		}
	}
	if !binding {
		// Bit-identical passthrough: the floor changes nothing, so the
		// base allocator's exact rates (and slowdown predictions) stand.
		return nil
	}
	n := len(dst.Rates)
	if m.Min*float64(n) >= 1 {
		// The floor alone exceeds capacity; no redistribution can honor
		// it. Keep the base allocation and let the pacing tripwire count.
		return nil
	}
	// Deficit: rate owed to floored classes. Slack: what each donor can
	// give up while staying strictly above its own floor
	// max(Min, λ_jE[X]) — never push a donor into instability (Theorem 1
	// blows up at r_j = λ_jE[X]) or below the very floor being enforced.
	deficit, slack := 0.0, 0.0
	for i, r := range dst.Rates {
		if r < m.Min {
			deficit += m.Min - r
			continue
		}
		slack += r - donorFloor(m.Min, classes[i], w)
	}
	if deficit >= slack {
		return nil // cannot cover without breaking a donor: keep base rates
	}
	scale := deficit / slack
	for i, r := range dst.Rates {
		if r < m.Min {
			dst.Rates[i] = m.Min
			continue
		}
		dst.Rates[i] = r - scale*(r-donorFloor(m.Min, classes[i], w))
	}
	// The rates moved off the base allocation: re-derive the Theorem 1
	// slowdown predictions under the adjusted vector.
	return slowdownUnderRatesInto(dst.ExpectedSlowdowns, classes, w, dst.Rates)
}

// donorFloor is the lowest rate a donor class may be shaved to: the
// enforced minimum, or its raw demand when that is higher.
func donorFloor(min float64, c Class, w Workload) float64 {
	if d := c.Lambda * w.MeanSize; d > min {
		return d
	}
	return min
}

var _ InPlaceAllocator = MinRate{}
