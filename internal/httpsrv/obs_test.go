package httpsrv

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"psd/internal/obs"
)

func newObsTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{
		Deltas:   []float64{1, 2},
		TimeUnit: time.Millisecond,
		Window:   1e9, // background ticker effectively disabled
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestSnapshotDoesNotTakeControlMutex is the lock-freedom pin: a metrics
// snapshot (and a Prometheus scrape) must complete while the control-plane
// mutex is held mid-tick, because Snapshot reads only registry atomics.
// Before this layer, Snapshot serialized under loopMu and a stalled tick
// would stall every scrape with it.
func TestSnapshotDoesNotTakeControlMutex(t *testing.T) {
	s := newObsTestServer(t)
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	done := make(chan MetricsDocument, 1)
	go func() {
		s.Snapshot()
		var sb strings.Builder
		_ = s.reg.WriteProm(&sb)
		done <- s.Snapshot()
	}()
	select {
	case doc := <-done:
		if len(doc.Classes) != 2 {
			t.Fatalf("snapshot under held loopMu malformed: %+v", doc)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Snapshot blocked on the control-plane mutex")
	}
}

// TestTickProceedsDuringSnapshots stresses the converse direction:
// continuous scraping must not delay control ticks. Runs with -race in CI.
func TestTickProceedsDuringSnapshots(t *testing.T) {
	s := newObsTestServer(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			for {
				select {
				case <-stop:
					return
				default:
					s.Snapshot()
					sb.Reset()
					_ = s.reg.WriteProm(&sb)
				}
			}
		}()
	}
	const ticks = 50
	for k := 0; k < ticks; k++ {
		s.classes[0].observeArrival(0.5)
		s.classes[1].observeArrival(0.5)
		s.reallocate()
	}
	close(stop)
	wg.Wait()
	if got := s.Snapshot().Reallocations; got != ticks {
		t.Fatalf("reallocations = %d, want %d", got, ticks)
	}
}

// TestMuxRoutes exercises the observability endpoints end to end: JSON
// document, Prometheus text (both spellings), and the flight-recorder dump.
func TestMuxRoutes(t *testing.T) {
	s := newObsTestServer(t)
	s.classes[0].observeArrival(1)
	s.classes[1].observeArrival(1)
	s.reallocate()
	mux := s.Mux()

	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: %d", path, rec.Code)
		}
		return rec
	}

	var doc MetricsDocument
	if err := json.Unmarshal(get("/metrics").Body.Bytes(), &doc); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if doc.Reallocations != 1 {
		t.Fatalf("/metrics reallocations = %d", doc.Reallocations)
	}

	for _, path := range []string{"/metrics/prom", "/metrics?format=prom"} {
		rec := get(path)
		if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
			t.Fatalf("%s content type %q", path, ct)
		}
		body := rec.Body.String()
		for _, name := range s.reg.MetricNames() {
			if !strings.Contains(body, "\n"+name) && !strings.HasPrefix(body, "# HELP "+name) {
				t.Fatalf("%s missing metric %s:\n%s", path, name, body)
			}
		}
		if !strings.Contains(body, `psd_class_rate{class="0"}`) {
			t.Fatalf("%s missing labeled rate gauge", path)
		}
	}

	var dump struct {
		Classes  int `json:"classes"`
		Recorded int `json:"recorded"`
		Ticks    []struct {
			Seq   int       `json:"seq"`
			Rates []float64 `json:"rates"`
		} `json:"ticks"`
	}
	if err := json.Unmarshal(get("/debug/control").Body.Bytes(), &dump); err != nil {
		t.Fatalf("/debug/control not JSON: %v", err)
	}
	if dump.Classes != 2 || dump.Recorded != 1 || len(dump.Ticks) != 1 {
		t.Fatalf("/debug/control dump = %+v", dump)
	}
	if len(dump.Ticks[0].Rates) != 2 {
		t.Fatalf("dump rates = %v", dump.Ticks[0].Rates)
	}
}

// TestRejectionMetrics pins the registry-backed rejection accounting that
// replaced the old per-class counter fields.
func TestRejectionMetrics(t *testing.T) {
	s := newObsTestServer(t)
	s.reject(1, 2.5, true)
	s.reject(1, 1.5, false)
	doc := s.Snapshot()
	c := doc.Classes[1]
	if c.RejectedAdmission != 1 || c.RejectedQueueFull != 1 || c.RejectedWork != 4 {
		t.Fatalf("rejection accounting = %+v", c)
	}
	if z := doc.Classes[0]; z.RejectedAdmission != 0 || z.RejectedQueueFull != 0 || z.RejectedWork != 0 {
		t.Fatalf("class 0 cross-talk: %+v", z)
	}
}

// TestCompletionMetrics: a served request must land in both histograms
// and surface in the JSON document's served/mean fields.
func TestCompletionMetrics(t *testing.T) {
	s := newObsTestServer(t)
	s.recordCompletion(0, s.classes[0], 30*time.Millisecond, 10*time.Millisecond, 3)
	doc := s.Snapshot()
	if doc.Classes[0].Served != 1 || doc.Classes[0].MeanSlowdown != 3 {
		t.Fatalf("slowdown accounting = %+v", doc.Classes[0])
	}
	lat := s.met.latency.At(0).Snapshot()
	if lat.Count != 1 || lat.Sum != 0.04 {
		t.Fatalf("latency histogram count/sum = %d/%v, want 1/0.04", lat.Count, lat.Sum)
	}
}
