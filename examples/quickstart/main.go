// Quickstart: the paper's rate-allocation strategy in thirty lines.
//
// Two classes share a server under the paper's Bounded Pareto workload.
// Class 1 is premium (δ=1), class 2 best-effort (δ=2): class 2's average
// slowdown should be exactly twice class 1's. We ask the allocator for
// the rate split at 60% utilization and print the closed-form
// predictions.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	psd "psd"
)

func main() {
	workload := psd.PaperWorkload() // BP(k=0.1, p=100, α=1.5), as in §4.1

	// Equal per-class load, 60% total utilization.
	lambda := 0.3 / workload.Mean()
	classes := []psd.Class{
		{Delta: 1, Lambda: lambda}, // premium
		{Delta: 2, Lambda: lambda}, // best-effort
	}

	alloc, err := psd.AllocateRates(classes, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Processing-rate allocation for proportional slowdown differentiation")
	fmt.Printf("workload: %s, system utilization %.0f%%\n\n", workload, alloc.Utilization*100)
	for i, c := range classes {
		fmt.Printf("class %d: delta=%g  rate=%.4f  expected slowdown=%.3f\n",
			i+1, c.Delta, alloc.Rates[i], alloc.ExpectedSlowdowns[i])
	}
	fmt.Printf("\npredicted slowdown ratio class2/class1: %.3f (target %.3f)\n",
		alloc.ExpectedSlowdowns[1]/alloc.ExpectedSlowdowns[0], 2.0)

	// The same prediction via Theorem 1 directly:
	s1, _ := psd.ExpectedSlowdown(lambda, workload, alloc.Rates[0])
	fmt.Printf("Theorem 1 cross-check for class 1: %.3f\n", s1)
}
