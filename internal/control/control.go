// Package control is the shared control plane around the PSD rate
// allocator: one estimate→control→allocate loop driven by both the
// simulator (internal/simsrv) and the live HTTP server (internal/httpsrv).
//
// The paper estimates each class's load as the average over the past five
// 1000-time-unit windows (§4.1) and attributes its controllability gaps at
// large δ ratios to estimation error (§4.4); its stated future work is
// improving short-timescale predictability. This package supplies:
//
//   - Loop: the allocation-free control plane itself — per Tick it closes
//     an estimation window (window | EWMA smoothing), applies the optional
//     feedback trim, and re-runs the allocator in place
//   - WindowEstimator: the paper's sliding-window mean estimator, as a
//     standalone component
//   - EWMAEstimator: an exponentially weighted alternative that reacts
//     faster to load shifts at equal noise
//   - RatioController: a multiplicative-integral feedback loop that trims
//     the δ values handed to the allocator so the *measured* slowdown
//     ratios converge to the targets even when the analytic model is off
//     (the future-work extension, evaluated in the ablation benches)
//
// Estimators consume per-window arrival observations and emit smoothed
// arrival-rate estimates; they are plain data structures, serialized by
// their callers.
package control

import (
	"errors"
	"fmt"
	"math"
)

// Estimator smooths per-window arrival counts into arrival-rate
// estimates.
type Estimator interface {
	// ObserveWindow records one closed window's arrival count and total
	// work for each class. The slices must have the estimator's class
	// count.
	ObserveWindow(counts []float64, work []float64) error
	// Lambdas returns the current per-class arrival-rate estimates
	// (requests per time unit). Zero until the first window closes.
	Lambdas() []float64
	// Loads returns the current per-class offered-load estimates (work
	// units per time unit).
	Loads() []float64
	// Name identifies the estimator.
	Name() string
}

// ErrDimension reports slices of the wrong class count.
var ErrDimension = errors.New("control: wrong number of classes")

// windowRing is the window-mean estimator core shared by WindowEstimator
// and Loop: one flat ring per metric, indexed [class*history+slot], so a
// class's history is contiguous at scan time and the whole state resets
// without allocating.
type windowRing struct {
	window  float64
	classes int
	history int
	counts  []float64
	work    []float64
	next    int // ring write index
	filled  int // number of valid slots
}

// reset re-dimensions the ring for the given shape and clears it,
// reusing buffer capacity when the shape fits.
func (r *windowRing) reset(classes, history int, window float64) {
	r.classes, r.history, r.window = classes, history, window
	n := classes * history
	r.counts = resizeFloats(r.counts, n)
	r.work = resizeFloats(r.work, n)
	for i := 0; i < n; i++ {
		r.counts[i] = 0
		r.work[i] = 0
	}
	r.next = 0
	r.filled = 0
}

// observe folds one closed window's per-class totals into the ring.
// Slices must have the ring's class count (callers validate).
func (r *windowRing) observe(counts, work []float64) {
	for i := 0; i < r.classes; i++ {
		r.counts[i*r.history+r.next] = counts[i]
		r.work[i*r.history+r.next] = work[i]
	}
	r.next = (r.next + 1) % r.history
	if r.filled < r.history {
		r.filled++
	}
}

func (r *windowRing) lambdasInto(dst []float64) { r.meanInto(dst, r.counts) }
func (r *windowRing) loadsInto(dst []float64)   { r.meanInto(dst, r.work) }

func (r *windowRing) meanInto(dst, ring []float64) {
	if r.filled == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	span := r.window * float64(r.filled)
	for i := 0; i < r.classes; i++ {
		sum := 0.0
		row := ring[i*r.history : i*r.history+r.filled]
		for _, v := range row {
			sum += v
		}
		dst[i] = sum / span
	}
}

// WindowEstimator is the paper's estimator: the estimate for the next
// window is the mean over the last History windows. It is a thin
// validated wrapper around the same windowRing core the Loop runs on.
type WindowEstimator struct {
	ring windowRing
}

// NewWindowEstimator builds the paper's 5-window mean estimator (pass
// history=5, window=1000 for the §4.1 configuration).
func NewWindowEstimator(classes, history int, window float64) (*WindowEstimator, error) {
	if classes < 1 || history < 1 || !(window > 0) {
		return nil, fmt.Errorf("control: invalid estimator shape classes=%d history=%d window=%v",
			classes, history, window)
	}
	e := new(WindowEstimator)
	e.ring.reset(classes, history, window)
	return e, nil
}

// Name implements Estimator.
func (e *WindowEstimator) Name() string { return "window" }

// ObserveWindow implements Estimator.
func (e *WindowEstimator) ObserveWindow(counts, work []float64) error {
	if len(counts) != e.ring.classes || len(work) != e.ring.classes {
		return ErrDimension
	}
	e.ring.observe(counts, work)
	return nil
}

// Lambdas implements Estimator.
func (e *WindowEstimator) Lambdas() []float64 {
	out := make([]float64, e.ring.classes)
	e.LambdasInto(out)
	return out
}

// Loads implements Estimator.
func (e *WindowEstimator) Loads() []float64 {
	out := make([]float64, e.ring.classes)
	e.LoadsInto(out)
	return out
}

// LambdasInto is Lambdas into caller-owned storage (len = class count),
// for allocation-free control ticks.
func (e *WindowEstimator) LambdasInto(dst []float64) { e.ring.lambdasInto(dst) }

// LoadsInto is Loads into caller-owned storage.
func (e *WindowEstimator) LoadsInto(dst []float64) { e.ring.loadsInto(dst) }

// ewmaState is the EWMA estimator core shared by EWMAEstimator and Loop:
// estimate ← (1−α)·estimate + α·window-rate, primed directly by the
// first observation.
type ewmaState struct {
	window  float64
	alpha   float64
	classes int
	lambdas []float64
	loads   []float64
	primed  bool
}

// reset re-dimensions the state for the given shape and clears it,
// reusing buffer capacity when the shape fits.
func (e *ewmaState) reset(classes int, alpha, window float64) {
	e.classes, e.alpha, e.window = classes, alpha, window
	e.lambdas = resizeFloats(e.lambdas, classes)
	e.loads = resizeFloats(e.loads, classes)
	for i := 0; i < classes; i++ {
		e.lambdas[i] = 0
		e.loads[i] = 0
	}
	e.primed = false
}

// observe folds one closed window's per-class totals into the averages.
// Slices must have the state's class count (callers validate).
func (e *ewmaState) observe(counts, work []float64) {
	for c := 0; c < e.classes; c++ {
		l := counts[c] / e.window
		w := work[c] / e.window
		if !e.primed {
			e.lambdas[c] = l
			e.loads[c] = w
		} else {
			e.lambdas[c] += e.alpha * (l - e.lambdas[c])
			e.loads[c] += e.alpha * (w - e.loads[c])
		}
	}
	e.primed = true
}

// EWMAEstimator smooths with an exponentially weighted moving average:
// estimate ← (1−α)·estimate + α·window-rate. α in (0, 1]; larger α reacts
// faster. Its effective memory of 1/α windows makes it comparable to a
// WindowEstimator with history ≈ 2/α − 1. It is a thin validated wrapper
// around the same ewmaState core the Loop runs on.
type EWMAEstimator struct {
	state ewmaState
}

// NewEWMAEstimator builds the estimator.
func NewEWMAEstimator(classes int, alpha, window float64) (*EWMAEstimator, error) {
	if classes < 1 || !(alpha > 0) || alpha > 1 || !(window > 0) {
		return nil, fmt.Errorf("control: invalid EWMA shape classes=%d alpha=%v window=%v",
			classes, alpha, window)
	}
	e := new(EWMAEstimator)
	e.state.reset(classes, alpha, window)
	return e, nil
}

// Name implements Estimator.
func (e *EWMAEstimator) Name() string { return "ewma" }

// ObserveWindow implements Estimator.
func (e *EWMAEstimator) ObserveWindow(counts, work []float64) error {
	if len(counts) != e.state.classes || len(work) != e.state.classes {
		return ErrDimension
	}
	e.state.observe(counts, work)
	return nil
}

// Lambdas implements Estimator.
func (e *EWMAEstimator) Lambdas() []float64 { return append([]float64(nil), e.state.lambdas...) }

// Loads implements Estimator.
func (e *EWMAEstimator) Loads() []float64 { return append([]float64(nil), e.state.loads...) }

// LambdasInto is Lambdas into caller-owned storage (len = class count).
func (e *EWMAEstimator) LambdasInto(dst []float64) { copy(dst, e.state.lambdas) }

// LoadsInto is Loads into caller-owned storage.
func (e *EWMAEstimator) LoadsInto(dst []float64) { copy(dst, e.state.loads) }

// RatioController trims the δ vector fed to the allocator so measured
// slowdown ratios converge to the target ratios. Class 0 is the reference
// (its effective δ stays at the target); for i ≥ 1 the controller applies
// a multiplicative-integral update
//
//	δeff_i ← clamp(δeff_i · (target_i / measured_i)^Gain)
//
// once per adjustment period. Intuition: if class i's measured ratio is
// too high, handing the allocator a smaller δ_i directs more surplus
// capacity to class i, pulling the ratio down. Gain in (0, 1] trades
// convergence speed against noise amplification; the clamp keeps δeff
// within [target/MaxTrim, target·MaxTrim].
type RatioController struct {
	target  []float64
	eff     []float64
	gain    float64
	maxTrim float64
}

// NewRatioController builds a controller for the target δ vector.
func NewRatioController(target []float64, gain, maxTrim float64) (*RatioController, error) {
	r := new(RatioController)
	if err := r.ResetTargets(target, gain, maxTrim); err != nil {
		return nil, err
	}
	return r, nil
}

// ResetTargets re-arms the controller for a (possibly new) target vector,
// reusing its buffers; a reset controller is identical to a freshly
// constructed one. It lets arena owners (control.Loop, the simulator)
// reset without allocating.
func (r *RatioController) ResetTargets(target []float64, gain, maxTrim float64) error {
	if len(target) == 0 {
		return errors.New("control: no target deltas")
	}
	for i, d := range target {
		if !(d > 0) || math.IsInf(d, 0) {
			return fmt.Errorf("control: target delta[%d] = %v must be positive", i, d)
		}
	}
	if !(gain > 0) || gain > 1 {
		return fmt.Errorf("control: gain %v must be in (0, 1]", gain)
	}
	if !(maxTrim > 1) {
		return fmt.Errorf("control: maxTrim %v must exceed 1", maxTrim)
	}
	n := len(target)
	r.target = resizeFloats(r.target, n)
	r.eff = resizeFloats(r.eff, n)
	copy(r.target, target)
	copy(r.eff, target)
	r.gain = gain
	r.maxTrim = maxTrim
	return nil
}

// Deltas returns the effective δ vector to hand to the allocator.
func (r *RatioController) Deltas() []float64 { return append([]float64(nil), r.eff...) }

// DeltasInto is Deltas into caller-owned storage (len = class count).
func (r *RatioController) DeltasInto(dst []float64) { copy(dst, r.eff) }

// Update feeds one period's measured per-class mean slowdowns. Classes
// with non-positive or NaN measurements (no completions) are skipped.
func (r *RatioController) Update(measured []float64) error {
	if len(measured) != len(r.target) {
		return ErrDimension
	}
	ref := measured[0]
	if !(ref > 0) || math.IsNaN(ref) {
		return nil // no reference signal this period
	}
	for i := 1; i < len(r.target); i++ {
		m := measured[i]
		if !(m > 0) || math.IsNaN(m) {
			continue
		}
		measuredRatio := m / ref
		targetRatio := r.target[i] / r.target[0]
		adj := math.Pow(targetRatio/measuredRatio, r.gain)
		next := r.eff[i] * adj
		lo := r.target[i] / r.maxTrim
		hi := r.target[i] * r.maxTrim
		if next < lo {
			next = lo
		}
		if next > hi {
			next = hi
		}
		r.eff[i] = next
	}
	return nil
}

// Reset restores the effective deltas to the targets.
func (r *RatioController) Reset() {
	copy(r.eff, r.target)
}

var (
	_ Estimator = (*WindowEstimator)(nil)
	_ Estimator = (*EWMAEstimator)(nil)
)
