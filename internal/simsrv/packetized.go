package simsrv

import (
	"fmt"
	"math"

	"psd/internal/core"
	"psd/internal/des"
	"psd/internal/rng"
	"psd/internal/sched"
	"psd/internal/stats"
)

// PacketizedConfig parametrizes a packetized-server simulation: one
// processor runs whole requests at full speed and a weighted-fair
// scheduler (internal/sched) picks the next request, with weights
// refreshed by the allocator every window. This mode validates that the
// paper's assumed proportional-share facility is realizable by practical
// packet-by-packet schedulers — and quantifies the slowdown-model
// correction (core.PacketizedPSD) that the run-to-completion service
// model requires.
type PacketizedConfig struct {
	// Config supplies classes, service law, windows, warmup, horizon and
	// seed. Its Allocator provides the weights; use core.PacketizedPSD
	// for proportional slowdowns on this server model (core.PSD's fluid
	// weights overshoot by design — see the ablation bench).
	Config
	// NewScheduler builds the discipline; it receives the class count
	// and a dedicated random stream (only Lottery uses it). Defaults to
	// SCFQ.
	NewScheduler func(classes int, src *rng.Source) sched.Scheduler
}

// RunPacketized executes one packetized-server replication.
func RunPacketized(pc PacketizedConfig) (*Result, error) {
	cfg := pc.Config.ApplyDefaults()
	if cfg.Allocator == nil || pc.Config.Allocator == nil {
		// The fluid default would systematically overshoot here; make
		// the packetized-correct allocator the default for this mode.
		cfg.Allocator = core.PacketizedPSD{}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.WorkConserving {
		return nil, fmt.Errorf("simsrv: packetized mode is inherently work-conserving; WorkConserving flag is not applicable")
	}
	w, err := coreWorkload(cfg)
	if err != nil {
		return nil, err
	}
	mk := pc.NewScheduler
	if mk == nil {
		mk = func(classes int, _ *rng.Source) sched.Scheduler { return sched.NewSCFQ(classes) }
	}

	src := rng.New(cfg.Seed)
	scheduler := mk(len(cfg.Classes), src.Split(1000))

	type classMetrics struct {
		slow    stats.Welford
		delay   stats.Welford
		svc     stats.Welford
		windows *stats.WindowSeries
	}
	sim := des.New()
	total := cfg.Warmup + cfg.Horizon
	est := newEstimator(len(cfg.Classes), cfg.HistoryWindows)
	metrics := make([]*classMetrics, len(cfg.Classes))
	arrivalRng := make([]*rng.Source, len(cfg.Classes))
	sizeRng := make([]*rng.Source, len(cfg.Classes))
	services := make([]distSampler, len(cfg.Classes))
	for i, cc := range cfg.Classes {
		ws, err := stats.NewWindowSeries(cfg.Window)
		if err != nil {
			return nil, err
		}
		metrics[i] = &classMetrics{windows: ws}
		arrivalRng[i] = src.Split(uint64(2*i + 1))
		sizeRng[i] = src.Split(uint64(2*i + 2))
		svc := cc.Service
		if svc == nil {
			svc = cfg.Service
		}
		services[i] = svc
	}

	// Initial weights from declared rates (fall back to even split).
	weights := make([]float64, len(cfg.Classes))
	trueClasses := make([]core.Class, len(cfg.Classes))
	for i, cc := range cfg.Classes {
		trueClasses[i] = core.Class{Delta: cc.Delta, Lambda: cc.Lambda}
	}
	if alloc, err := cfg.Allocator.Allocate(trueClasses, w); err == nil {
		copy(weights, alloc.Rates)
	} else {
		for i := range weights {
			weights[i] = 1 / float64(len(weights))
		}
	}
	if err := scheduler.SetWeights(positiveFloor(weights, cfg.MinRate)); err != nil {
		return nil, err
	}

	var (
		busy        bool
		reallocOK   int
		reallocFail int
		records     []RequestRecord
	)

	type pkJob struct {
		arrival float64
	}
	var dispatch func()
	dispatch = func() {
		j := scheduler.Dequeue()
		if j == nil {
			busy = false
			return
		}
		busy = true
		start := sim.Now()
		arrival := j.Payload.(pkJob).arrival
		class := j.Class
		size := j.Size
		sim.Schedule(size, func() { // full-speed service
			now := sim.Now()
			if now >= cfg.Warmup {
				delay := start - arrival
				slowdown := delay / size
				m := metrics[class]
				m.slow.Add(slowdown)
				m.delay.Add(delay)
				m.svc.Add(size)
				m.windows.Observe(now-cfg.Warmup, slowdown)
				if cfg.RecordRequests && now >= cfg.RecordFrom && now < cfg.RecordTo {
					records = append(records, RequestRecord{
						Class: class, Arrival: arrival, ServiceStart: start,
						Completion: now, Size: size, Slowdown: slowdown,
					})
				}
			}
			dispatch()
		})
	}

	var scheduleArrival func(i int)
	scheduleArrival = func(i int) {
		cc := cfg.Classes[i]
		if cc.Lambda <= 0 {
			return
		}
		sim.Schedule(arrivalRng[i].ExpFloat64(cc.Lambda), func() {
			size := services[i].Sample(sizeRng[i])
			est.observe(i, size)
			scheduler.Enqueue(&sched.Job{
				Class: i, Size: size, Arrival: sim.Now(),
				Payload: pkJob{arrival: sim.Now()},
			})
			if !busy {
				dispatch()
			}
			scheduleArrival(i)
		})
	}
	for i := range cfg.Classes {
		scheduleArrival(i)
	}

	var scheduleRealloc func()
	scheduleRealloc = func() {
		sim.Schedule(cfg.Window, func() {
			est.roll()
			lambdas := est.lambdas(cfg.Window)
			classes := make([]core.Class, len(cfg.Classes))
			for i, cc := range cfg.Classes {
				l := lambdas[i]
				if cfg.Oracle {
					l = cc.Lambda
				}
				classes[i] = core.Class{Delta: cc.Delta, Lambda: l}
			}
			if alloc, err := cfg.Allocator.Allocate(classes, w); err == nil {
				if err := scheduler.SetWeights(positiveFloor(alloc.Rates, cfg.MinRate)); err == nil {
					reallocOK++
				} else {
					reallocFail++
				}
			} else {
				reallocFail++
			}
			if sim.Now() < total {
				scheduleRealloc()
			}
		})
	}
	scheduleRealloc()

	sim.RunUntil(total)

	// Assemble the Result in the same shape as the fluid mode.
	res := &Result{
		Classes:           make([]ClassStats, len(cfg.Classes)),
		ExpectedSlowdowns: make([]float64, len(cfg.Classes)),
		FinalRates:        weights,
		Reallocations:     reallocOK,
		AllocFailures:     reallocFail,
		EventsProcessed:   sim.Processed(),
		Records:           records,
	}
	numWindows := int(math.Ceil(cfg.Horizon / cfg.Window))
	var sysSlow, sysCount float64
	for i, m := range metrics {
		st := &res.Classes[i]
		st.Count = m.slow.N()
		st.MeanSlowdown = m.slow.Mean()
		st.StdSlowdown = m.slow.Std()
		st.MaxSlowdown = m.slow.Max()
		st.MeanDelay = m.delay.Mean()
		st.MeanService = m.svc.Mean()
		st.WindowMeans = make([]float64, numWindows)
		for wi := 0; wi < numWindows; wi++ {
			if mean, ok := m.windows.WindowMean(wi); ok {
				st.WindowMeans[wi] = mean
			} else {
				st.WindowMeans[wi] = math.NaN()
			}
		}
		if st.Count > 0 {
			sysSlow += st.MeanSlowdown * float64(st.Count)
			sysCount += float64(st.Count)
		}
	}
	if sysCount > 0 {
		res.SystemSlowdown = sysSlow / sysCount
	}
	if alloc, err := cfg.Allocator.Allocate(trueClasses, w); err == nil {
		copy(res.ExpectedSlowdowns, alloc.ExpectedSlowdowns)
		copy(res.FinalRates, alloc.Rates)
	} else {
		for i := range res.ExpectedSlowdowns {
			res.ExpectedSlowdowns[i] = math.NaN()
		}
	}
	return res, nil
}

// distSampler is the sampling subset of dist.Distribution used above.
type distSampler interface {
	Sample(*rng.Source) float64
}

// positiveFloor clamps weights at a positive minimum (schedulers reject
// non-positive weights; an idle class's zero rate becomes a negligible
// share).
func positiveFloor(ws []float64, floor float64) []float64 {
	if floor <= 0 {
		floor = 1e-6
	}
	out := make([]float64, len(ws))
	for i, w := range ws {
		if w < floor {
			w = floor
		}
		out[i] = w
	}
	return out
}
