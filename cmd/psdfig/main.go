// Command psdfig regenerates the paper's evaluation figures (2–12) plus
// the beyond-paper estimator-transient study (13) and the policy
// tournament (14).
//
// Usage:
//
//	psdfig -fig 2                     # one figure, table to stdout
//	psdfig -fig all -out results/     # every figure as CSV files
//	psdfig -fig 9 -runs 100           # paper fidelity (slow)
//	psdfig -fig 5 -quick              # reduced fidelity smoke run
//	psdfig -fig 2 -engine auto        # closed forms where analytic: ms, not minutes
//
// Without -out, figures render as aligned text tables; with -out, each
// figure is written to <out>/figureN.csv in long form (series,x,y).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"psd/internal/figures"
	"psd/internal/sweep"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure id 2-14 or 'all'")
		runs    = flag.Int("runs", 0, "replications per point (0 = fidelity default)")
		horizon = flag.Float64("horizon", 0, "measured tu per run (0 = fidelity default)")
		warmup  = flag.Float64("warmup", 0, "warmup tu (0 = fidelity default)")
		seed    = flag.Uint64("seed", 1, "base random seed")
		quick   = flag.Bool("quick", false, "reduced fidelity (10 runs, 15k tu)")
		workers = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
		engine  = flag.String("engine", "des", "point evaluation: des (simulate everything, the published behavior) | auto (closed forms where the steady state is analytic) | analytic (refuse to simulate)")
		out     = flag.String("out", "", "output directory for CSV (default: tables to stdout)")
	)
	flag.Parse()

	opts := figures.Defaults()
	if *quick {
		opts = figures.Quick()
	}
	if *runs > 0 {
		opts.Runs = *runs
	}
	if *horizon > 0 {
		opts.Horizon = *horizon
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	opts.Seed = *seed
	opts.Workers = *workers
	kind, err := sweep.ParseEngineKind(*engine)
	if err != nil {
		fatalf("bad -engine: %v", err)
	}
	opts.Engine = kind

	var ids []int
	if *fig == "all" {
		for id := 2; id <= 14; id++ {
			ids = append(ids, id)
		}
	} else {
		id, err := strconv.Atoi(*fig)
		if err != nil {
			fatalf("bad -fig %q", *fig)
		}
		ids = append(ids, id)
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatalf("creating %s: %v", *out, err)
		}
	}

	for _, id := range ids {
		start := time.Now()
		f, err := figures.Generate(id, opts)
		if err != nil {
			fatalf("figure %d: %v", id, err)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		if *out == "" {
			fmt.Println(figures.RenderTable(f))
			fmt.Printf("(figure %d regenerated in %s)\n\n", id, elapsed)
			continue
		}
		path := filepath.Join(*out, fmt.Sprintf("figure%d.csv", id))
		file, err := os.Create(path)
		if err != nil {
			fatalf("creating %s: %v", path, err)
		}
		if err := figures.WriteCSV(file, f); err != nil {
			file.Close()
			fatalf("writing %s: %v", path, err)
		}
		if err := file.Close(); err != nil {
			fatalf("closing %s: %v", path, err)
		}
		fmt.Printf("figure %d → %s (%s)\n", id, path, elapsed)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "psdfig: "+format+"\n", args...)
	os.Exit(1)
}
