// E-commerce sessions: the paper's §2.2 motivation realized end to end.
//
// A CBMG session generator (home → browse/search → details → pay, with
// per-state service laws: Deterministic for home/register — the M/D/1
// states of Eq. 15 — and Bounded Pareto for content states) produces a
// two-tier trace: premium members (δ=1) and guests (δ=2). The trace is
// replayed through the simulation model under the PSD allocator, and we
// verify the premium tier sees proportionally smaller slowdowns even on
// this structured, non-Poisson traffic.
//
// Run: go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"

	"psd/internal/rng"
	"psd/internal/simsrv"
	"psd/internal/workload"
)

func main() {
	model := workload.DefaultModel()
	fmt.Printf("CBMG session model: %.2f requests per session on average\n",
		model.MeanRequestsPerSession())

	// 30% premium members, 70% guests.
	gen, err := workload.NewGenerator(model, 0.3, []float64{0.3, 0.7}, rng.New(2024))
	if err != nil {
		log.Fatal(err)
	}
	const total = 40000.0
	reqs, err := gen.Generate(total)
	if err != nil {
		log.Fatal(err)
	}
	rates, err := workload.ClassRates(reqs, 2, total)
	if err != nil {
		log.Fatal(err)
	}
	mean, second, inverse, err := workload.SizeMoments(reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d requests (%.3f/tu premium, %.3f/tu guest)\n",
		len(reqs), rates[0], rates[1])
	fmt.Printf("empirical size moments: E[X]=%.3f E[X²]=%.3f E[1/X]=%.3f\n",
		mean, second, inverse)
	fmt.Printf("offered load: %.0f%% of server capacity\n\n",
		(rates[0]+rates[1])*mean*100)

	trace := make([]simsrv.TraceRequest, len(reqs))
	for i, r := range reqs {
		trace[i] = simsrv.TraceRequest{Time: r.Time, Class: r.Class, Size: r.Size}
	}
	cfg := simsrv.Config{
		Classes: []simsrv.ClassConfig{
			{Delta: 1, Lambda: rates[0]}, // premium members
			{Delta: 2, Lambda: rates[1]}, // guests
		},
		Warmup:  5000,
		Horizon: total - 5000,
		Seed:    1,
	}
	res, err := simsrv.RunTrace(cfg, trace)
	if err != nil {
		log.Fatal(err)
	}

	names := []string{"premium", "guest"}
	for i, cs := range res.Classes {
		fmt.Printf("%-8s (delta %g): %6d requests, mean slowdown %.3f, mean delay %.3f tu\n",
			names[i], cfg.Classes[i].Delta, cs.Count, cs.MeanSlowdown, cs.MeanDelay)
	}
	fmt.Printf("\nachieved slowdown ratio guest/premium: %.3f (target 2.0)\n",
		res.Classes[1].MeanSlowdown/res.Classes[0].MeanSlowdown)
	fmt.Println("\nSession traffic is burstier than Poisson (the Eq. 17 model), so the")
	fmt.Println("ratio tracks the target more loosely than in the M/G_B/1 experiments —")
	fmt.Println("the differentiation ordering itself still holds.")
}
