// Package figures regenerates every figure of the paper's evaluation
// (§4, Figures 2–12) from the simulation model. Each FigureN function
// returns the plotted data series; cmd/psdfig renders them as CSV or
// aligned tables, bench_test.go runs reduced-fidelity versions, and
// EXPERIMENTS.md records the outcomes.
//
// Figure inventory (see DESIGN.md §5 for the experiment index):
//
//	Fig 2   sim vs expected slowdown, 2 classes, δ=(1,2), load sweep
//	Fig 3   same with δ=(1,4)
//	Fig 4   same with 3 classes δ=(1,2,3)
//	Fig 5   5/50/95th pct of per-window S₂/S₁ ratios, δ₂∈{2,4,8}
//	Fig 6   same for 3 classes (ratios 2/1 and 3/1)
//	Fig 7   per-request slowdowns in [60000,61000] at 50% load
//	Fig 8   same at 90% load
//	Fig 9   mean achieved ratio vs load, δ₂∈{2,4,8}
//	Fig 10  mean achieved ratios, 3 classes
//	Fig 11  slowdown vs shape α∈[1,2] (sim + expected)
//	Fig 12  slowdown vs upper bound p∈{100,1000,10000}
//	Fig 13  (beyond the paper) per-window achieved ratio around a load
//	        step, window vs EWMA estimation
//	Fig 14  (beyond the paper) policy tournament: differentiation error,
//	        mean slowdown and shed rate per registered policy across
//	        overload scenarios × heavy-tail families
//
// The paper's full fidelity is Runs=100 over a 60000-tu horizon; Options
// scales both down for quick runs.
package figures

import (
	"fmt"
	"math"

	"psd/internal/admission"
	"psd/internal/analytic"
	"psd/internal/control"
	"psd/internal/dist"
	"psd/internal/simsrv"
	"psd/internal/sweep"
)

// Options control fidelity and provenance.
type Options struct {
	// Runs is the number of replications per point (paper: 100).
	Runs int
	// Horizon is the measured duration per run (paper: 60000).
	Horizon float64
	// Warmup precedes the horizon (paper: 10000).
	Warmup float64
	// Seed bases the replication seeds.
	Seed uint64
	// Loads overrides the default load sweep {0.05, 0.1, …, 0.95}.
	Loads []float64
	// Workers sizes the sweep engine's worker pool (0 = GOMAXPROCS).
	Workers int
	// Engine routes grid points between the DES and the closed-form
	// evaluator (zero value: simulate everything, the published
	// behavior). In sweep.Auto the steady-state mean figures (2–4, 9–12)
	// collapse to exact closed-form points; the percentile figures (5–6),
	// the per-request figures (7–8) and the transient figure (13) always
	// simulate. sweep.Analytic errors on those simulation-only figures.
	Engine sweep.EngineKind
}

// Defaults returns the paper-fidelity options.
func Defaults() Options {
	return Options{Runs: 100, Horizon: 60000, Warmup: 10000}
}

// Quick returns reduced-fidelity options for benches and smoke runs.
func Quick() Options {
	return Options{Runs: 10, Horizon: 15000, Warmup: 2000}
}

func (o Options) withDefaults() Options {
	d := Defaults()
	if o.Runs == 0 {
		o.Runs = d.Runs
	}
	if o.Horizon == 0 {
		o.Horizon = d.Horizon
	}
	if o.Warmup == 0 {
		o.Warmup = d.Warmup
	}
	if len(o.Loads) == 0 {
		o.Loads = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}
	}
	return o
}

// Series is one plotted curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is one regenerated figure.
type Figure struct {
	ID     int
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  string
}

func (o Options) config(deltas []float64, rho float64, svc dist.Distribution) simsrv.Config {
	cfg := simsrv.EqualLoadConfig(deltas, rho, svc)
	cfg.Warmup = o.Warmup
	cfg.Horizon = o.Horizon
	cfg.Seed = o.Seed
	return cfg
}

// runGrid executes one figure's whole scenario grid through the sweep
// engine: every (config × Runs) replication shares one global task queue
// over per-worker arenas, so a slow point never stalls the rest of the
// figure. Aggregates return in cfgs order. needWindowStats marks grids
// whose consumer reads the per-window ratio percentiles, which only the
// DES produces — those points simulate even under sweep.Auto.
func (o Options) runGrid(cfgs []simsrv.Config, needWindowStats bool) ([]*simsrv.Aggregate, error) {
	points := make([]sweep.Point, len(cfgs))
	for i, cfg := range cfgs {
		points[i] = sweep.Point{Cfg: cfg, Runs: o.Runs, NeedWindowStats: needWindowStats}
	}
	eng := sweep.Engine{Workers: o.Workers, Kind: o.Engine}
	return eng.Run(points)
}

// simVsExpected produces the Figure 2/3/4 layout for arbitrary deltas.
func simVsExpected(id int, deltas []float64, opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     id,
		Title:  fmt.Sprintf("Simulated and expected slowdowns, deltas=%v", deltas),
		XLabel: "System load (%)",
		YLabel: "Slowdown (log)",
	}
	n := len(deltas)
	sim := make([]Series, n)
	exp := make([]Series, n)
	for i := range deltas {
		sim[i] = Series{Name: fmt.Sprintf("Class %d (simulated)", i+1)}
		exp[i] = Series{Name: fmt.Sprintf("Class %d (expected)", i+1)}
	}
	sys := Series{Name: "System (simulated)"}
	cfgs := make([]simsrv.Config, len(opts.Loads))
	for li, rho := range opts.Loads {
		cfgs[li] = opts.config(deltas, rho, nil)
	}
	aggs, err := opts.runGrid(cfgs, false)
	if err != nil {
		return Figure{}, fmt.Errorf("figure %d: %w", id, err)
	}
	for li, rho := range opts.Loads {
		agg := aggs[li]
		for i := range deltas {
			sim[i].X = append(sim[i].X, rho*100)
			sim[i].Y = append(sim[i].Y, agg.MeanSlowdowns[i])
			exp[i].X = append(exp[i].X, rho*100)
			exp[i].Y = append(exp[i].Y, agg.ExpectedSlowdowns[i])
		}
		sys.X = append(sys.X, rho*100)
		sys.Y = append(sys.Y, agg.SystemSlowdown)
	}
	fig.Series = append(fig.Series, sim...)
	fig.Series = append(fig.Series, exp...)
	fig.Series = append(fig.Series, sys)
	return fig, nil
}

// Figure2 reproduces Figure 2: δ=(1,2).
func Figure2(opts Options) (Figure, error) { return simVsExpected(2, []float64{1, 2}, opts) }

// Figure3 reproduces Figure 3: δ=(1,4).
func Figure3(opts Options) (Figure, error) { return simVsExpected(3, []float64{1, 4}, opts) }

// Figure4 reproduces Figure 4: three classes, δ=(1,2,3).
func Figure4(opts Options) (Figure, error) { return simVsExpected(4, []float64{1, 2, 3}, opts) }

// Figure5 reproduces Figure 5: percentiles (5/50/95) of the per-window
// achieved slowdown ratio S₂/S₁ for δ₂/δ₁ ∈ {2, 4, 8}.
func Figure5(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     5,
		Title:  "Percentiles of simulated slowdown ratios, two classes",
		XLabel: "System load (%)",
		YLabel: "Slowdown ratio (Class 2 / Class 1)",
		Notes:  "Per pre-specified ratio: p05/p50/p95 series from pooled per-window ratios.",
	}
	ratios := []float64{2, 4, 8}
	var cfgs []simsrv.Config
	for _, d2 := range ratios {
		for _, rho := range opts.Loads {
			cfgs = append(cfgs, opts.config([]float64{1, d2}, rho, nil))
		}
	}
	aggs, err := opts.runGrid(cfgs, true)
	if err != nil {
		return Figure{}, fmt.Errorf("figure 5: %w", err)
	}
	for di, d2 := range ratios {
		p05 := Series{Name: fmt.Sprintf("d2/d1=%g p05", d2)}
		p50 := Series{Name: fmt.Sprintf("d2/d1=%g p50", d2)}
		p95 := Series{Name: fmt.Sprintf("d2/d1=%g p95", d2)}
		for li, rho := range opts.Loads {
			rs := aggs[di*len(opts.Loads)+li].RatioSummaries[1]
			p05.X = append(p05.X, rho*100)
			p05.Y = append(p05.Y, rs.P05)
			p50.X = append(p50.X, rho*100)
			p50.Y = append(p50.Y, rs.P50)
			p95.X = append(p95.X, rho*100)
			p95.Y = append(p95.Y, rs.P95)
		}
		fig.Series = append(fig.Series, p05, p50, p95)
	}
	return fig, nil
}

// Figure6 reproduces Figure 6: ratio percentiles for three classes,
// δ=(1,2,3): S₂/S₁ (target 2) and S₃/S₁ (target 3).
func Figure6(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     6,
		Title:  "Percentiles of simulated slowdown ratios, three classes",
		XLabel: "System load (%)",
		YLabel: "Slowdown ratio",
	}
	targets := []struct {
		idx  int
		name string
	}{
		{1, "Class2/Class1 (d2/d1=2)"},
		{2, "Class3/Class1 (d3/d1=3)"},
	}
	series := make([][3]Series, len(targets))
	for ti, tg := range targets {
		series[ti][0] = Series{Name: tg.name + " p05"}
		series[ti][1] = Series{Name: tg.name + " p50"}
		series[ti][2] = Series{Name: tg.name + " p95"}
	}
	cfgs := make([]simsrv.Config, len(opts.Loads))
	for li, rho := range opts.Loads {
		cfgs[li] = opts.config([]float64{1, 2, 3}, rho, nil)
	}
	aggs, err := opts.runGrid(cfgs, true)
	if err != nil {
		return Figure{}, fmt.Errorf("figure 6: %w", err)
	}
	for li, rho := range opts.Loads {
		for ti, tg := range targets {
			rs := aggs[li].RatioSummaries[tg.idx]
			for pi, v := range []float64{rs.P05, rs.P50, rs.P95} {
				series[ti][pi].X = append(series[ti][pi].X, rho*100)
				series[ti][pi].Y = append(series[ti][pi].Y, v)
			}
		}
	}
	for ti := range series {
		fig.Series = append(fig.Series, series[ti][0], series[ti][1], series[ti][2])
	}
	return fig, nil
}

// individualRequests produces the Figures 7/8 layout: slowdowns of
// individual requests completing in [60000, 61000] at the given load.
func individualRequests(id int, rho float64, opts Options) (Figure, error) {
	opts = opts.withDefaults()
	if opts.Engine == sweep.Analytic {
		return Figure{}, fmt.Errorf("figure %d: %w: individual request trajectories only exist in a simulation", id, analytic.ErrNeedsSimulation)
	}
	cfg := opts.config([]float64{1, 2}, rho, nil)
	// The record window sits at the paper's [60000, 61000] when the
	// horizon allows; otherwise the last full window of the run.
	from := 60000.0
	if opts.Warmup+opts.Horizon < 61000 {
		from = opts.Warmup + opts.Horizon - 1000
	}
	cfg.RecordRequests = true
	cfg.RecordFrom = from
	cfg.RecordTo = from + 1000
	res, err := simsrv.Run(cfg)
	if err != nil {
		return Figure{}, fmt.Errorf("figure %d: %w", id, err)
	}
	fig := Figure{
		ID:     id,
		Title:  fmt.Sprintf("Slowdown of individual requests, system load %.0f%%", rho*100),
		XLabel: "Time (time unit)",
		YLabel: "Slowdown",
		Notes:  fmt.Sprintf("Requests completing in [%.0f, %.0f); single run, seed %d.", from, from+1000, cfg.Seed),
	}
	s1 := Series{Name: "Class 1 (simulated)"}
	s2 := Series{Name: "Class 2 (simulated)"}
	for _, r := range res.Records {
		switch r.Class {
		case 0:
			s1.X = append(s1.X, r.Completion)
			s1.Y = append(s1.Y, r.Slowdown)
		case 1:
			s2.X = append(s2.X, r.Completion)
			s2.Y = append(s2.Y, r.Slowdown)
		}
	}
	fig.Series = []Series{s1, s2}
	return fig, nil
}

// Figure7 reproduces Figure 7: individual slowdowns at 50% load.
func Figure7(opts Options) (Figure, error) { return individualRequests(7, 0.5, opts) }

// Figure8 reproduces Figure 8: individual slowdowns at 90% load, where
// the paper observes short-timescale inversions of the target ordering.
func Figure8(opts Options) (Figure, error) { return individualRequests(8, 0.9, opts) }

// Figure9 reproduces Figure 9: mean achieved slowdown ratios of two
// classes vs load for δ₂/δ₁ ∈ {2, 4, 8}.
func Figure9(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     9,
		Title:  "Simulated slowdown ratios of two classes",
		XLabel: "System load (%)",
		YLabel: "Slowdown ratio",
	}
	ratios := []float64{2, 4, 8}
	var cfgs []simsrv.Config
	for _, d2 := range ratios {
		for _, rho := range opts.Loads {
			cfgs = append(cfgs, opts.config([]float64{1, d2}, rho, nil))
		}
	}
	aggs, err := opts.runGrid(cfgs, false)
	if err != nil {
		return Figure{}, fmt.Errorf("figure 9: %w", err)
	}
	for di, d2 := range ratios {
		s := Series{Name: fmt.Sprintf("Class2/Class1 (d2/d1=%g)", d2)}
		for li, rho := range opts.Loads {
			s.X = append(s.X, rho*100)
			s.Y = append(s.Y, aggs[di*len(opts.Loads)+li].MeanRatios[1])
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure10 reproduces Figure 10: mean achieved ratios for three classes.
func Figure10(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     10,
		Title:  "Simulated slowdown ratios of three classes",
		XLabel: "System load (%)",
		YLabel: "Slowdown ratio",
	}
	s21 := Series{Name: "Class2/Class1 (d2/d1=2)"}
	s31 := Series{Name: "Class3/Class1 (d3/d1=3)"}
	cfgs := make([]simsrv.Config, len(opts.Loads))
	for li, rho := range opts.Loads {
		cfgs[li] = opts.config([]float64{1, 2, 3}, rho, nil)
	}
	aggs, err := opts.runGrid(cfgs, false)
	if err != nil {
		return Figure{}, fmt.Errorf("figure 10: %w", err)
	}
	for li, rho := range opts.Loads {
		s21.X = append(s21.X, rho*100)
		s21.Y = append(s21.Y, aggs[li].MeanRatios[1])
		s31.X = append(s31.X, rho*100)
		s31.Y = append(s31.Y, aggs[li].MeanRatios[2])
	}
	fig.Series = []Series{s21, s31}
	return fig, nil
}

// Figure11 reproduces Figure 11: influence of the Bounded Pareto shape
// parameter α ∈ [1.0, 2.0] on the two classes' slowdowns (δ=(1,2)) at a
// fixed 70% load (the paper does not state its load; 70% reproduces the
// 10–1000 slowdown range of its y-axis).
func Figure11(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     11,
		Title:  "Influence of the shape parameter of the Bounded Pareto distribution",
		XLabel: "Shape parameter alpha",
		YLabel: "Slowdown (log)",
		Notes:  "Fixed system load 70%, k=0.1, p=100, deltas=(1,2).",
	}
	sim1 := Series{Name: "Class 1 (simulated)"}
	sim2 := Series{Name: "Class 2 (simulated)"}
	exp1 := Series{Name: "Class 1 (expected)"}
	exp2 := Series{Name: "Class 2 (expected)"}
	alphas := []float64{1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0}
	cfgs := make([]simsrv.Config, len(alphas))
	for ai, alpha := range alphas {
		svc, err := dist.NewBoundedPareto(0.1, 100, alpha)
		if err != nil {
			return Figure{}, err
		}
		cfgs[ai] = opts.config([]float64{1, 2}, 0.7, svc)
	}
	aggs, err := opts.runGrid(cfgs, false)
	if err != nil {
		return Figure{}, fmt.Errorf("figure 11: %w", err)
	}
	for ai, alpha := range alphas {
		agg := aggs[ai]
		sim1.X = append(sim1.X, alpha)
		sim1.Y = append(sim1.Y, agg.MeanSlowdowns[0])
		sim2.X = append(sim2.X, alpha)
		sim2.Y = append(sim2.Y, agg.MeanSlowdowns[1])
		exp1.X = append(exp1.X, alpha)
		exp1.Y = append(exp1.Y, agg.ExpectedSlowdowns[0])
		exp2.X = append(exp2.X, alpha)
		exp2.Y = append(exp2.Y, agg.ExpectedSlowdowns[1])
	}
	fig.Series = []Series{sim1, sim2, exp1, exp2}
	return fig, nil
}

// Figure12 reproduces Figure 12: influence of the Bounded Pareto upper
// bound p ∈ {100, 1000, 10000} (δ=(1,2), fixed 70% load).
func Figure12(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     12,
		Title:  "Influence of the upper bound of the Bounded Pareto distribution",
		XLabel: "Upper bound p (log)",
		YLabel: "Slowdown (log)",
		Notes:  "Fixed system load 70%, k=0.1, alpha=1.5, deltas=(1,2).",
	}
	sim1 := Series{Name: "Class 1 (simulated)"}
	sim2 := Series{Name: "Class 2 (simulated)"}
	exp1 := Series{Name: "Class 1 (expected)"}
	exp2 := Series{Name: "Class 2 (expected)"}
	bounds := []float64{100, 1000, 10000}
	cfgs := make([]simsrv.Config, len(bounds))
	for pi, p := range bounds {
		svc, err := dist.NewBoundedPareto(0.1, p, 1.5)
		if err != nil {
			return Figure{}, err
		}
		cfgs[pi] = opts.config([]float64{1, 2}, 0.7, svc)
	}
	aggs, err := opts.runGrid(cfgs, false)
	if err != nil {
		return Figure{}, fmt.Errorf("figure 12: %w", err)
	}
	for pi, p := range bounds {
		agg := aggs[pi]
		sim1.X = append(sim1.X, p)
		sim1.Y = append(sim1.Y, agg.MeanSlowdowns[0])
		sim2.X = append(sim2.X, p)
		sim2.Y = append(sim2.Y, agg.MeanSlowdowns[1])
		exp1.X = append(exp1.X, p)
		exp1.Y = append(exp1.Y, agg.ExpectedSlowdowns[0])
		exp2.X = append(exp2.X, p)
		exp2.Y = append(exp2.Y, agg.ExpectedSlowdowns[1])
	}
	fig.Series = []Series{sim1, sim2, exp1, exp2}
	return fig, nil
}

// Figure13 goes beyond the paper: transient response of the control
// plane's estimator after a load step. Both classes' arrival rates jump
// from 40% to 88% total utilization at mid-horizon; the plotted series
// are the across-run mean per-window achieved S₂/S₁ ratio (target 2)
// under the paper's 5-window mean estimator versus EWMA smoothing. The
// window estimator drags its pre-step history for HistoryWindows windows
// after the shift; EWMA re-converges faster at equal steady-state noise —
// exactly the trade-off §4.4 attributes the controllability gaps to.
func Figure13(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	deltas := []float64{1, 2}
	base := opts.config(deltas, 0.4, nil)
	stepAt := base.Warmup + opts.Horizon/2
	base.LoadSchedule = simsrv.LoadStep(stepAt, 2.2)

	win := base
	win.Estimator = control.Window
	ewma := base
	ewma.Estimator = control.EWMA
	ewma.EWMAAlpha = 0.5

	points := []sweep.Point{
		{Cfg: win, Runs: opts.Runs, TrackWindowRatios: true},
		{Cfg: ewma, Runs: opts.Runs, TrackWindowRatios: true},
	}
	eng := sweep.Engine{Workers: opts.Workers, Kind: opts.Engine}
	aggs, err := eng.Run(points)
	if err != nil {
		return Figure{}, fmt.Errorf("figure 13: %w", err)
	}

	fig := Figure{
		ID:     13,
		Title:  "Estimator transient response after a load step (beyond the paper)",
		XLabel: "Time (time unit)",
		YLabel: "Per-window slowdown ratio (Class 2 / Class 1)",
		Notes: fmt.Sprintf("Load steps 40%%->88%% at t=%g; window = paper's 5-window mean, "+
			"ewma alpha=0.5; target ratio 2.", stepAt),
	}
	window := win.ApplyDefaults().Window
	names := []string{"window estimator", "ewma estimator"}
	for pi, agg := range aggs {
		s := Series{Name: names[pi]}
		for k, v := range agg.WindowRatioMeans[1] {
			if math.IsNaN(v) {
				continue
			}
			s.X = append(s.X, base.Warmup+float64(k+1)*window)
			s.Y = append(s.Y, v)
		}
		fig.Series = append(fig.Series, s)
	}
	// Constant target line on the window-estimator series' time axis (the
	// two estimator series share the same non-empty windows in practice;
	// the line is a visual reference, not a paired comparison).
	target := Series{Name: "target ratio"}
	ref := fig.Series[0]
	for i := range ref.X {
		target.X = append(target.X, ref.X[i])
		target.Y = append(target.Y, deltas[1]/deltas[0])
	}
	fig.Series = append(fig.Series, target)
	return fig, nil
}

// TournamentPolicies are the rival policies Figure 14 races: the paper's
// PSD, the logarithmic-weight allocator, the downgrading allocator (which
// arms the degradation ladder) and the size-aware heSRPT discipline.
var TournamentPolicies = []string{"psd", "log", "downgrade", "hesrpt"}

// Figure14 goes beyond the paper: a policy tournament over the core
// registry. Every policy in TournamentPolicies runs the same 4-cell
// overload grid — {paper Bounded Pareto, heavy-tailed lognormal} service
// families × {sustained load step, flash crowd} schedules, 3 classes
// δ=(1,2,4), base load 85% surging to ~136% — behind a per-point
// utilization-bound admission gate. One sweep.Tournament expansion and
// one Engine.Run cover the whole cross product; the plotted series per
// policy are
//
//	ratio error:    mean over classes of |achieved ratio / target − 1|
//	mean slowdown:  the arrival-weighted system slowdown
//	shed rate:      fraction of arrivals dropped by admission
//
// with X = scenario cell (1: BP×step, 2: BP×flash, 3: lognormal×step,
// 4: lognormal×flash). The downgrading policy's ladder holds the gate
// open until every rung is engaged, so its shed rate reads the residual
// overload degradation could not absorb; heSRPT runs on the packetized
// server, which has no admission gate (its shed rate is 0 by
// construction and its slowdowns come from size-aware scheduling).
//
// Replications are pinned to 1 per point: admission controllers are
// stateful and the engine runs replications of one point concurrently,
// so each expanded point gets its own controller instance instead.
func Figure14(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	if opts.Engine == sweep.Analytic {
		return Figure{}, fmt.Errorf("figure 14: %w: the tournament's transient overload scenarios only exist in a simulation", analytic.ErrNeedsSimulation)
	}
	deltas := []float64{1, 2, 4}
	// Lognormal with σ=1.5 and unit mean (μ = −σ²/2): the second
	// heavy-tail family, with all moments finite (E[1/X] included).
	lognormal, err := dist.NewLognormal(-1.125, 1.5)
	if err != nil {
		return Figure{}, fmt.Errorf("figure 14: %w", err)
	}
	surgeAt := opts.Warmup + opts.Horizon/3
	families := []struct {
		name string
		svc  dist.Distribution
	}{
		{"BP(0.1,100,1.5)", nil},
		{"lognormal(sigma=1.5)", lognormal},
	}
	schedules := []struct {
		name   string
		phases []simsrv.LoadPhase
	}{
		{"load step", simsrv.LoadStep(surgeAt, 1.6)},
		{"flash crowd", simsrv.FlashCrowd(surgeAt, opts.Horizon/3, 1.6)},
	}
	var base []sweep.Point
	var cellNames []string
	for _, fam := range families {
		for _, sc := range schedules {
			cfg := opts.config(deltas, 0.85, fam.svc)
			cfg.LoadSchedule = sc.phases
			// The utilization bound sheds large jobs first, which
			// decouples admitted counts from admitted work; estimate
			// load from work so ρ̂ tracks the admitted process.
			cfg.EstimateFromWork = true
			base = append(base, sweep.Point{Cfg: cfg, Runs: 1})
			cellNames = append(cellNames, fam.name+" x "+sc.name)
		}
	}
	points, err := sweep.Tournament(base, TournamentPolicies)
	if err != nil {
		return Figure{}, fmt.Errorf("figure 14: %w", err)
	}
	for i := range points {
		adm, err := admission.NewUtilizationBound(0.95, points[i].Cfg.ApplyDefaults().Window)
		if err != nil {
			return Figure{}, fmt.Errorf("figure 14: %w", err)
		}
		points[i].Cfg.Admission = adm
	}
	eng := sweep.Engine{Workers: opts.Workers, Kind: opts.Engine}
	aggs, err := eng.Run(points)
	if err != nil {
		return Figure{}, fmt.Errorf("figure 14: %w", err)
	}

	fig := Figure{
		ID:     14,
		Title:  "Policy tournament under overload (beyond the paper)",
		XLabel: "Scenario cell",
		YLabel: "Ratio error / slowdown / shed rate",
		Notes: fmt.Sprintf("Cells: %v. deltas=(1,2,4), base load 85%%, surge x1.6 at t=%g; "+
			"utilization-bound admission (bound 0.95); 1 run per cell. "+
			"heSRPT runs packetized (no admission gate: shed rate 0).",
			cellNames, surgeAt),
	}
	nCells := len(base)
	for pi, name := range TournamentPolicies {
		ratioErr := Series{Name: name + " ratio error"}
		meanSlow := Series{Name: name + " mean slowdown"}
		shed := Series{Name: name + " shed rate"}
		for ci := 0; ci < nCells; ci++ {
			agg := aggs[pi*nCells+ci]
			var errSum float64
			for i := 1; i < len(deltas); i++ {
				target := deltas[i] / deltas[0]
				errSum += math.Abs(agg.MeanRatios[i]/target - 1)
			}
			x := float64(ci + 1)
			ratioErr.X = append(ratioErr.X, x)
			ratioErr.Y = append(ratioErr.Y, errSum/float64(len(deltas)-1))
			meanSlow.X = append(meanSlow.X, x)
			meanSlow.Y = append(meanSlow.Y, agg.SystemSlowdown)
			shed.X = append(shed.X, x)
			shed.Y = append(shed.Y, agg.MeanShedRate)
		}
		fig.Series = append(fig.Series, ratioErr, meanSlow, shed)
	}
	return fig, nil
}

// Generate runs one figure by ID (2–14; 13 and 14 are the beyond-paper
// estimator transient study and the policy tournament).
func Generate(id int, opts Options) (Figure, error) {
	gens := map[int]func(Options) (Figure, error){
		2: Figure2, 3: Figure3, 4: Figure4, 5: Figure5, 6: Figure6,
		7: Figure7, 8: Figure8, 9: Figure9, 10: Figure10, 11: Figure11, 12: Figure12,
		13: Figure13, 14: Figure14,
	}
	g, ok := gens[id]
	if !ok {
		return Figure{}, fmt.Errorf("figures: no figure %d (valid: 2-14)", id)
	}
	return g(opts)
}

// All regenerates every figure.
func All(opts Options) ([]Figure, error) {
	out := make([]Figure, 0, 13)
	for id := 2; id <= 14; id++ {
		f, err := Generate(id, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// MaxAbsRelGap returns the largest |sim−expected|/expected across paired
// "simulated"/"expected" series of a figure, used by regression tests to
// quantify model agreement. Returns NaN if the figure has no such pairs.
func MaxAbsRelGap(f Figure) float64 {
	worst := math.NaN()
	for _, s := range f.Series {
		if len(s.Name) < 12 || s.Name[len(s.Name)-11:] != "(simulated)" {
			continue
		}
		expName := s.Name[:len(s.Name)-11] + "(expected)"
		for _, e := range f.Series {
			if e.Name != expName {
				continue
			}
			for i := range s.Y {
				if i >= len(e.Y) || e.Y[i] == 0 {
					continue
				}
				gap := math.Abs(s.Y[i]-e.Y[i]) / math.Abs(e.Y[i])
				if math.IsNaN(worst) || gap > worst {
					worst = gap
				}
			}
		}
	}
	return worst
}
