package core

// Downgrading is the multi-grade allocation policy (Fricker et al.,
// "Allocation Schemes of Resources with Downgrading") on top of a base
// rate allocator: the *arithmetic* is the base's (PSD by default, so all
// determinism goldens hold bit-for-bit), but the policy is flagged
// DegradationAware in the registry, which tells the serving layer
// (internal/simsrv's runner, mirroring internal/httpsrv's ladder wiring)
// to drive an admission.Ladder from the allocation side: under sustained
// saturation a class's effective δ is scaled up rung by rung through
// control.TickInput.DeltaScale — lowering its grade so the allocator
// legitimately gives it less surplus — and only once every rung is
// exhausted may the admission gate shed.
//
// The wrapper itself is stateless; the ladder state machine lives with
// whichever control loop owns the tick, exactly like the feedback
// controller does.
type Downgrading struct {
	// Base is the underlying rate allocator; nil means PSD.
	Base InPlaceAllocator
}

// Name implements Allocator.
func (Downgrading) Name() string { return "downgrade" }

func (d Downgrading) base() InPlaceAllocator {
	if d.Base == nil {
		return PSD{}
	}
	return d.Base
}

// Allocate implements Allocator by delegating to the base.
func (d Downgrading) Allocate(classes []Class, w Workload) (Allocation, error) {
	return d.base().Allocate(classes, w)
}

// AllocateInto implements InPlaceAllocator by delegating to the base.
func (d Downgrading) AllocateInto(dst *Allocation, classes []Class, w Workload) error {
	return d.base().AllocateInto(dst, classes, w)
}

var _ InPlaceAllocator = Downgrading{}

// IsDowngrading reports whether a is the Downgrading policy, unwrapping
// a MinRate shell — the check the serving layers use to decide whether
// to arm the degradation ladder.
func IsDowngrading(a Allocator) bool {
	switch al := a.(type) {
	case Downgrading:
		return true
	case MinRate:
		return IsDowngrading(al.Base)
	}
	return false
}
