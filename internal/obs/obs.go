// Package obs is the repo's zero-allocation observability layer: atomic
// counters and gauges, fixed-bucket log₂ histograms, a named metric
// registry with Prometheus text exposition, and a fixed-ring control-plane
// flight recorder.
//
// The design constraint is the same one the DES engine and control.Loop
// live under: the hot paths — Counter.Add, Gauge.Set, Histogram.Observe,
// FlightRecorder.Record — perform no heap allocation and take no locks
// beyond a single uncontended mutex (the recorder), so instrumenting the
// live server's ServeHTTP path and the shared control tick does not move
// the allocs/event and allocs/tick gates (cmd/psdbench's obs-hotpath
// scenario pins both at zero). All registration and snapshot/exposition
// machinery is allowed to allocate: it runs at setup time or on a scrape,
// never per event.
//
// Histograms bin into geometrically spaced power-of-two buckets (bucket i
// covers [2^(first+i), 2^(first+i+1))) so Observe is one exponent
// extraction and one atomic increment, with explicit underflow/overflow
// buckets. Snapshots are plain mergeable values: merging the snapshots of
// two histograms that observed disjoint halves of a stream equals the
// snapshot of one histogram that observed the whole stream (property
// tested), which is what lets per-worker or per-phase histograms be
// aggregated without locks.
package obs

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic int64 counter. The zero
// value is ready to use. All methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n should be non-negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float64 counter (work units,
// seconds) built on a CAS loop over the bit pattern. The zero value is
// ready to use.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add adds v (v should be non-negative).
func (c *FloatCounter) Add(v float64) { atomicAddFloat(&c.bits, v) }

// Load returns the current total.
func (c *FloatCounter) Load() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an atomically published float64 — a value that goes up and
// down (rates, λ̂ estimates, queue depths). The zero value reads 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set publishes v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the last published value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// atomicAddFloat adds v to the float64 stored in bits.
func atomicAddFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram bins positive observations into power-of-two buckets: bucket
// i covers [2^(first+i), 2^(first+i+1)). Observations that are not
// positive (including NaN) or below the first bound land in the underflow
// bucket; those at or beyond the last bound in the overflow bucket. Only
// finite observations contribute to Sum, so a stray +Inf cannot poison
// the mean. Observe is allocation-free and safe for concurrent use.
type Histogram struct {
	first   int // exponent of the first bucket's lower bound
	counts  []atomic.Int64
	under   atomic.Int64
	over    atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram creates a histogram of n power-of-two buckets starting at
// 2^first. n must be at least 1.
func NewHistogram(first, n int) (*Histogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("obs: histogram needs at least 1 bucket, got %d", n)
	}
	return &Histogram{first: first, counts: make([]atomic.Int64, n)}, nil
}

// Observe bins one observation.
func (h *Histogram) Observe(v float64) {
	h.count.Add(1)
	if !math.IsInf(v, 0) && !math.IsNaN(v) {
		atomicAddFloat(&h.sumBits, v)
	}
	if !(v > 0) { // negatives, zero and NaN all underflow
		h.under.Add(1)
		return
	}
	i := math.Ilogb(v) - h.first
	switch {
	case i < 0:
		h.under.Add(1)
	case i >= len(h.counts):
		h.over.Add(1)
	default:
		h.counts[i].Add(1)
	}
}

// NumBuckets returns the number of in-range buckets.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// FirstExp returns the exponent of the first bucket's lower bound.
func (h *Histogram) FirstExp() int { return h.first }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all finite observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns Sum/Count, or NaN with no observations.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return math.NaN()
	}
	return h.Sum() / float64(n)
}

// HistogramSnapshot is a point-in-time copy of a Histogram, a plain
// mergeable value safe to serialize. Concurrent observes during a
// snapshot may skew individual buckets by in-flight increments (each
// counter is read atomically but the set is not read as one transaction);
// every counter is monotone, so a snapshot never goes backwards.
type HistogramSnapshot struct {
	FirstExp  int     `json:"first_exp"`
	Counts    []int64 `json:"counts"`
	Underflow int64   `json:"underflow"`
	Overflow  int64   `json:"overflow"`
	Count     int64   `json:"count"`
	Sum       float64 `json:"sum"`
}

// SnapshotInto copies the histogram's current state into s, reusing s's
// bucket slice capacity.
func (h *Histogram) SnapshotInto(s *HistogramSnapshot) {
	s.FirstExp = h.first
	if cap(s.Counts) < len(h.counts) {
		s.Counts = make([]int64, len(h.counts))
	} else {
		s.Counts = s.Counts[:len(h.counts)]
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Underflow = h.under.Load()
	s.Overflow = h.over.Load()
	s.Count = h.count.Load()
	s.Sum = h.Sum()
}

// Snapshot returns a fresh copy of the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	h.SnapshotInto(&s)
	return s
}

// Merge folds another snapshot into s. The two must have identical bucket
// layouts (same first exponent and bucket count).
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) error {
	if s.FirstExp != o.FirstExp || len(s.Counts) != len(o.Counts) {
		return fmt.Errorf("obs: merging mismatched histograms (2^%d×%d vs 2^%d×%d)",
			s.FirstExp, len(s.Counts), o.FirstExp, len(o.Counts))
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Underflow += o.Underflow
	s.Overflow += o.Overflow
	s.Count += o.Count
	s.Sum += o.Sum
	return nil
}

// UpperBound returns bucket i's exclusive upper bound, 2^(FirstExp+i+1).
func (s *HistogramSnapshot) UpperBound(i int) float64 {
	return math.Ldexp(1, s.FirstExp+i+1)
}

// Mean returns Sum/Count, or NaN with no observations.
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}
