package analytic_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"psd/internal/analytic"
	"psd/internal/core"
	"psd/internal/dist"
	"psd/internal/simsrv"
	"psd/internal/sweep"
)

// mustDist panics on a bad test distribution so the grid tables below
// stay declarative.
func mustDist(d dist.Distribution, err error) dist.Distribution {
	if err != nil {
		panic(err)
	}
	return d
}

func oracleConfig(deltas []float64, rho float64, svc dist.Distribution) simsrv.Config {
	cfg := simsrv.EqualLoadConfig(deltas, rho, svc)
	// Oracle mode feeds the allocator the true rates, so the allocation is
	// constant from the first tick and each class is an exact fixed-rate
	// M/G/1 — the DES then estimates precisely what the closed forms
	// compute, with no estimator noise in the rates.
	cfg.Oracle = true
	cfg.Warmup = 5000
	cfg.Horizon = 20000
	cfg.Seed = 11
	return cfg
}

// checkAgainstDES simulates cfg and requires every analytic per-class
// slowdown to sit within the DES run's confidence band (4·SE ≈ 2·CI95,
// the slack covering the CI's own small-sample noise at these run
// counts) plus a small relative term for finite-horizon edge effects.
func checkAgainstDES(t *testing.T, cfg simsrv.Config, runs int, relSlack float64) {
	t.Helper()
	ev, err := analytic.Evaluate(cfg)
	if err != nil {
		t.Fatalf("analytic: %v", err)
	}
	aggs, err := sweep.Run([]sweep.Point{{Cfg: cfg, Runs: runs}})
	if err != nil {
		t.Fatalf("DES: %v", err)
	}
	agg := aggs[0]
	for i := range ev.Slowdowns {
		se := agg.CI95[i] / 1.96
		tol := 4*se + relSlack*ev.Slowdowns[i] + 1e-9
		if diff := math.Abs(ev.Slowdowns[i] - agg.MeanSlowdowns[i]); diff > tol {
			t.Errorf("class %d: analytic %.4f vs DES %.4f ± %.4f (diff %.4f > tol %.4f)",
				i, ev.Slowdowns[i], agg.MeanSlowdowns[i], agg.CI95[i], diff, tol)
		}
	}
	// Sanity-bound the synthesized ratios against the ratio of DES mean
	// slowdowns, with the two classes' relative confidence bands
	// propagated into the ratio tolerance. (Not Aggregate.MeanRatios:
	// that averages per-run ratios, a statistic with strong upward
	// small-sample bias under heavy tails.)
	for i := 1; i < len(ev.Ratios); i++ {
		if agg.MeanSlowdowns[0] <= 0 || ev.Slowdowns[0] <= 0 {
			continue
		}
		got := agg.MeanSlowdowns[i] / agg.MeanSlowdowns[0]
		relTol := (4*agg.CI95[i]/1.96+relSlack*ev.Slowdowns[i])/ev.Slowdowns[i] +
			(4*agg.CI95[0]/1.96+relSlack*ev.Slowdowns[0])/ev.Slowdowns[0]
		if math.Abs(ev.Ratios[i]-got)/ev.Ratios[i] > relTol {
			t.Errorf("class %d ratio: analytic %.3f vs DES %.3f (rel tol %.3f)",
				i, ev.Ratios[i], got, relTol)
		}
	}
}

// TestAnalyticWithinDESConfidence is the tentpole property test: across
// every distribution family with finite required moments, a spread of
// loads and class counts, the closed forms agree with an oracle-mode
// simulation to within its confidence band.
func TestAnalyticWithinDESConfidence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point DES grid")
	}
	families := []struct {
		name string
		d    dist.Distribution
	}{
		{"bounded-pareto", mustDist(dist.NewBoundedPareto(0.1, 100, 1.5))},
		{"uniform", mustDist(dist.NewUniform(0.5, 1.5))},
		{"lognormal", mustDist(dist.NewLognormal(0, 0.5))},
		{"deterministic", mustDist(dist.NewDeterministic(1))},
	}
	grids := []struct {
		deltas []float64
		rho    float64
	}{
		{[]float64{1, 2}, 0.3},
		{[]float64{1, 2, 3}, 0.6},
		{[]float64{1, 2, 4, 8}, 0.8},
	}
	for _, fam := range families {
		for _, g := range grids {
			name := fmt.Sprintf("%s-%dclass-load%.0f", fam.name, len(g.deltas), g.rho*100)
			t.Run(name, func(t *testing.T) {
				checkAgainstDES(t, oracleConfig(g.deltas, g.rho, fam.d), 10, 0.03)
			})
		}
	}
}

// TestAnalyticAllocatorsWithinDESConfidence covers the closed-form
// allocator set, including a MinRate wrapper whose floor actually binds
// (δ={1,8} at 40% load: PSD grants class 2 ≈0.267, the 0.3 floor
// raises it).
func TestAnalyticAllocatorsWithinDESConfidence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point DES grid")
	}
	allocs := []core.Allocator{
		core.PSD{},
		core.EqualShare{},
		core.DemandProportional{},
		core.LogWeight{},
		core.MinRate{Base: core.PSD{}, Min: 0.3},
	}
	for _, al := range allocs {
		t.Run(al.Name(), func(t *testing.T) {
			cfg := oracleConfig([]float64{1, 8}, 0.4, nil)
			cfg.Allocator = al
			checkAgainstDES(t, cfg, 10, 0.03)
		})
	}
}

// TestLogWeightWithinDESConfidence cross-validates the logarithmic-weight
// allocator's closed-form prediction against oracle-mode DES across loads
// and class counts: LogWeight is registered analytic-eligible, so its
// Theorem-1-at-allocated-rates evaluation must sit inside the DES
// confidence band exactly like PSD's.
func TestLogWeightWithinDESConfidence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point DES grid")
	}
	grids := []struct {
		deltas []float64
		rho    float64
	}{
		{[]float64{1, 2}, 0.3},
		{[]float64{1, 8}, 0.4},
		{[]float64{1, 2, 4}, 0.6},
	}
	for _, g := range grids {
		t.Run(fmt.Sprintf("%dclass-load%.0f", len(g.deltas), g.rho*100), func(t *testing.T) {
			cfg := oracleConfig(g.deltas, g.rho, nil)
			cfg.Allocator = core.LogWeight{}
			checkAgainstDES(t, cfg, 10, 0.03)
		})
	}
}

// TestAnalyticEstimatedModeClose drops the oracle: the window estimator
// adds rate noise the closed forms ignore, so the band is wider but the
// stationary prediction still holds.
func TestAnalyticEstimatedModeClose(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point DES grid")
	}
	cfg := oracleConfig([]float64{1, 2}, 0.5, nil)
	cfg.Oracle = false
	checkAgainstDES(t, cfg, 10, 0.08)
}

// TestPerClassOverrideWithinDESConfidence exercises the per-class size
// law path: the allocator still sees the shared law (matching the
// control plane), while Theorem 1 uses each class's effective law.
func TestPerClassOverrideWithinDESConfidence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point DES grid")
	}
	// The override's mean (0.3) sits near the shared Bounded Pareto's
	// (0.2905), so the shared-law allocation still leaves the class
	// stable — overrides that push true demand past the allocated rate
	// are the ErrUnstable case, covered by TestNeedsSimulation's spirit
	// via classSlowdown.
	cfg := oracleConfig([]float64{1, 2}, 0.5, nil)
	cfg.Classes[1].Service = mustDist(dist.NewUniform(0.1, 0.5))
	checkAgainstDES(t, cfg, 10, 0.03)
}

// TestNeedsSimulation enumerates every ineligibility rule and requires
// each to surface as ErrNeedsSimulation.
func TestNeedsSimulation(t *testing.T) {
	base := func() simsrv.Config {
		return simsrv.EqualLoadConfig([]float64{1, 2}, 0.5, nil)
	}
	cases := []struct {
		name string
		cfg  func() simsrv.Config
	}{
		{"load-schedule", func() simsrv.Config {
			c := base()
			c.LoadSchedule = simsrv.LoadStep(5000, 2)
			return c
		}},
		{"work-conserving", func() simsrv.Config {
			c := base()
			c.WorkConserving = true
			return c
		}},
		{"feedback", func() simsrv.Config {
			c := base()
			c.Feedback = true
			return c
		}},
		{"record-requests", func() simsrv.Config {
			c := base()
			c.RecordRequests = true
			c.RecordFrom = 1000
			c.RecordTo = 2000
			return c
		}},
		{"pdd-allocator", func() simsrv.Config {
			c := base()
			c.Allocator = core.PDD{}
			return c
		}},
		{"static-allocator", func() simsrv.Config {
			st, err := core.NewStatic([]float64{1, 1})
			if err != nil {
				panic(err)
			}
			c := base()
			c.Allocator = st
			return c
		}},
		{"minrate-over-pdd", func() simsrv.Config {
			c := base()
			c.Allocator = core.MinRate{Base: core.PDD{}, Min: 0.01}
			return c
		}},
		{"divergent-exponential", func() simsrv.Config {
			return simsrv.EqualLoadConfig([]float64{1, 2}, 0.5, mustDist(dist.NewExponential(1)))
		}},
		{"divergent-weibull", func() simsrv.Config {
			return simsrv.EqualLoadConfig([]float64{1, 2}, 0.5, mustDist(dist.NewWeibull(0.8, 1)))
		}},
		{"divergent-class-override", func() simsrv.Config {
			c := base()
			c.Classes[1].Service = mustDist(dist.NewExponential(1))
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := analytic.Evaluate(tc.cfg()); !errors.Is(err, analytic.ErrNeedsSimulation) {
				t.Fatalf("want ErrNeedsSimulation, got %v", err)
			}
		})
	}
	// A MinRate over an analytic base, by contrast, stays eligible.
	c := base()
	c.Allocator = core.MinRate{Base: core.PSD{}, Min: 0.01}
	if _, err := analytic.Evaluate(c); err != nil {
		t.Fatalf("MinRate{PSD} should be analytic: %v", err)
	}
}

// TestInfeasibleLoad checks the ρ ≥ 1 path: no stationary point exists,
// so the evaluator must route to simulation AND preserve the allocator's
// infeasibility error for callers that care which failure it was.
func TestInfeasibleLoad(t *testing.T) {
	cfg := simsrv.EqualLoadConfig([]float64{1, 2}, 0.5, nil)
	for i := range cfg.Classes {
		cfg.Classes[i].Lambda *= 2.4 // ρ = 1.2
	}
	_, err := analytic.Evaluate(cfg)
	if !errors.Is(err, analytic.ErrNeedsSimulation) {
		t.Fatalf("want ErrNeedsSimulation, got %v", err)
	}
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("want core.ErrInfeasible preserved, got %v", err)
	}
}

// TestEvaluateMatchesEq18 pins the PSD shared-law case to the paper's
// Eq. 18 closed form directly — Theorem 1 at the Eq. 17 rates must equal
// δ_i·C·Σ(λ_j/δ_j)/(1−ρ), C = E[X²]·E[1/X]/2.
func TestEvaluateMatchesEq18(t *testing.T) {
	deltas := []float64{1, 2, 4}
	svc := dist.PaperDefault()
	cfg := simsrv.EqualLoadConfig(deltas, 0.6, svc)
	ev, err := analytic.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := svc.SecondMoment() * svc.InverseMoment() / 2
	var sum, rho float64
	for i, cc := range cfg.Classes {
		sum += cc.Lambda / deltas[i]
		rho += cc.Lambda * svc.Mean()
	}
	for i, d := range deltas {
		want := d * c * sum / (1 - rho)
		if math.Abs(ev.Slowdowns[i]-want) > 1e-12*want {
			t.Errorf("class %d: Theorem 1 %.12f vs Eq. 18 %.12f", i, ev.Slowdowns[i], want)
		}
		if math.Abs(ev.Ratios[i]-d/deltas[0]) > 1e-12 {
			t.Errorf("class %d ratio %.12f, want %g", i, ev.Ratios[i], d/deltas[0])
		}
	}
}

// TestEvaluateIntoZeroAlloc gates the arena promise at the source: a
// warm EvaluateInto performs no heap allocations.
func TestEvaluateIntoZeroAlloc(t *testing.T) {
	cfg := simsrv.EqualLoadConfig([]float64{1, 2, 4, 8}, 0.7, nil)
	var e analytic.Evaluator
	var ev analytic.Evaluation
	if err := e.EvaluateInto(&ev, cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := e.EvaluateInto(&ev, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm EvaluateInto allocates %.1f times per call, want 0", allocs)
	}
}
