package httpsrv

import (
	"math"
	"sync"
	"testing"
	"time"

	"psd/internal/timeutil"
)

// TestMultiWindowFluidCompletion is the golden pin for rate-change-aware
// pacing: a job spanning several reallocation windows must complete at
// the GPS fluid-model time Σ xᵢ/rᵢ computed from the actual rate-change
// instants, not at the deadline implied by the rate read once at
// dequeue. The schedule is scripted through setRate (the exact call the
// control plane makes), the change instants are recorded, and the fluid
// prediction is rebuilt from those measurements so timer jitter in the
// scripting goroutine cannot skew the expectation. Acceptance: within
// 1% of the fluid time, and the fluid time itself far from what the old
// stale-rate path would have produced.
func TestMultiWindowFluidCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("1% wall-clock precision band is not meaningful under -short (race job)")
	}
	const (
		timeUnit = 2 * time.Millisecond
		size     = 100.0 // at the initial rate 1.0: 200ms if no rate ever changed
	)
	s, err := New(Config{
		Deltas:   []float64{1}, // single class: initial rate is 1.0
		TimeUnit: timeUnit,
		Window:   1e9, // background ticker effectively disabled
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cr := s.classes[0]

	// Two scripted rate changes → three pacing segments.
	schedule := []struct {
		after time.Duration // since service start
		rate  float64
	}{
		{80 * time.Millisecond, 0.25},
		{280 * time.Millisecond, 2.0},
	}

	start := time.Now()
	changes := make([]time.Time, len(schedule))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, sg := range schedule {
			time.Sleep(time.Until(start.Add(sg.after)))
			changes[i] = time.Now()
			cr.setRate(sg.rate)
		}
	}()

	timer := timeutil.NewStoppedTimer()
	defer timer.Stop()
	service, ok := s.pace(cr, 0, cr.sigs[0], size, timer)
	wg.Wait()
	if !ok {
		t.Fatal("pace aborted")
	}

	// Fluid prediction from the measured change instants: work accrues at
	// 1.0 until changes[0], at 0.25 until changes[1], remainder at 2.0.
	tu := float64(timeUnit)
	w1 := float64(changes[0].Sub(start)) / tu * 1.0
	w2 := float64(changes[1].Sub(changes[0])) / tu * 0.25
	remaining := size - w1 - w2
	if remaining <= 0 {
		t.Fatalf("schedule consumed the whole job before the last segment (w1=%v w2=%v)", w1, w2)
	}
	fluid := changes[1].Sub(start) + time.Duration(remaining/2.0*tu)

	relErr := math.Abs(float64(service-fluid)) / float64(fluid)
	if relErr > 0.01 {
		t.Fatalf("service %v vs fluid prediction %v: relative error %.4f > 1%%", service, fluid, relErr)
	}

	// The test must discriminate: the old stale-rate path (deadline from
	// the dequeue-time rate, here 1.0 → 200ms) must be far outside the
	// tolerance band around the fluid time.
	stale := time.Duration(size / 1.0 * tu)
	if gap := math.Abs(float64(stale-fluid)) / float64(fluid); gap < 0.10 {
		t.Fatalf("schedule too weak: stale-rate completion %v within %.1f%% of fluid %v", stale, gap*100, fluid)
	}
}

// TestPaceRateFloorCounted pins the satellite fix for the silent rate
// floor: pacing at a non-positive installed rate must run at minPaceRate
// AND be visible in the metrics document instead of clamping invisibly.
func TestPaceRateFloorCounted(t *testing.T) {
	s, err := New(Config{
		Deltas:   []float64{1},
		TimeUnit: 50 * time.Microsecond,
		Window:   1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cr := s.classes[0]
	cr.setRate(0)

	timer := timeutil.NewStoppedTimer()
	defer timer.Stop()
	// 0.02 work units at the 1e-3 floor = 20 time units = 1ms.
	if _, ok := s.pace(cr, 0, cr.sigs[0], 0.02, timer); !ok {
		t.Fatal("pace aborted")
	}
	if got := s.Snapshot().RateFloorClamps; got < 1 {
		t.Fatalf("rate_floor_clamps = %d, want >= 1", got)
	}
}
