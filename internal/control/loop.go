package control

import (
	"fmt"
	"math"

	"psd/internal/core"
	"psd/internal/obs"
)

// EstimatorKind selects the Loop's load-smoothing strategy.
type EstimatorKind int

const (
	// Window is the paper's §4.1 estimator: the estimate for the next
	// window is the mean over the last HistoryWindows windows.
	Window EstimatorKind = iota
	// EWMA smooths with an exponentially weighted moving average, which
	// reacts faster to load shifts at equal steady-state noise (effective
	// memory ≈ 2/α − 1 windows).
	EWMA
)

// String implements fmt.Stringer.
func (k EstimatorKind) String() string {
	switch k {
	case Window:
		return "window"
	case EWMA:
		return "ewma"
	default:
		return fmt.Sprintf("estimator(%d)", int(k))
	}
}

// ParseEstimatorKind maps a flag value ("window" | "ewma") to its kind.
func ParseEstimatorKind(s string) (EstimatorKind, error) {
	switch s {
	case "window":
		return Window, nil
	case "ewma":
		return EWMA, nil
	default:
		return 0, fmt.Errorf("control: unknown estimator %q (want window or ewma)", s)
	}
}

// Valid reports whether k names a known estimator.
func (k EstimatorKind) Valid() bool { return k == Window || k == EWMA }

// LoopConfig parametrizes one control Loop. Zero optional fields take the
// paper's defaults on Reset.
type LoopConfig struct {
	// Deltas are the per-class target differentiation parameters; the
	// slice is copied, and its length fixes the class count.
	Deltas []float64
	// Window is the estimation period in time units (> 0, required).
	Window float64
	// Estimator selects the smoothing strategy (default Window).
	Estimator EstimatorKind
	// HistoryWindows is the Window-mode depth (default 5, §4.1).
	HistoryWindows int
	// EWMAAlpha is the EWMA smoothing factor in (0, 1] (default 0.3).
	EWMAAlpha float64
	// Allocator computes the rate split (required).
	Allocator core.Allocator
	// Workload supplies the job-size moments the allocator needs.
	Workload core.Workload
	// EstimateFromWork derives the allocator's arrival rates from
	// measured work (λ̂_i = load_i / E[X]) instead of request counts.
	EstimateFromWork bool
	// Feedback enables the RatioController trim on the δ vector.
	Feedback bool
	// FeedbackGain is the controller gain in (0, 1] (default 0.3).
	FeedbackGain float64
	// FeedbackMaxTrim bounds δeff within [target/MaxTrim, target·MaxTrim]
	// (default 8).
	FeedbackMaxTrim float64
	// Recorder, when non-nil, receives one flight record per Tick — the
	// λ̂ the allocator saw, the rates in force afterwards, the measured
	// slowdowns fed to the controller, the effective δ vector, and
	// failure/clamp flags. Reset re-dimensions the recorder to the class
	// count (retaining its capacity) and clears its history, so one
	// recorder tracks one Loop lifetime. Recording is allocation-free;
	// every Loop consumer (simulator and live server) shares this hook.
	Recorder *obs.FlightRecorder
}

func (c LoopConfig) withDefaults() LoopConfig {
	if c.HistoryWindows == 0 {
		c.HistoryWindows = 5
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = 0.3
	}
	if c.FeedbackGain == 0 {
		c.FeedbackGain = 0.3
	}
	if c.FeedbackMaxTrim == 0 {
		c.FeedbackMaxTrim = 8
	}
	return c
}

// TickInput carries one closed estimation window into Loop.Tick. The zero
// value is valid for consumers that feed observations through
// Loop.Observe and run open-loop.
type TickInput struct {
	// Counts and Work are the closed window's per-class arrival counts
	// and total work. Nil Counts means "use the Loop's own Observe
	// accumulators" (the simulator path); non-nil slices must have the
	// Loop's class count (the live-server path, which harvests per-class
	// runtime counters at the tick).
	Counts []float64
	Work   []float64
	// MeasuredSlowdowns feeds the feedback controller the window's
	// measured per-class mean slowdowns (NaN where a class had no
	// completions). Nil skips the controller update for this tick; it is
	// ignored entirely when the Loop runs open-loop.
	MeasuredSlowdowns []float64
	// OracleLambdas, when non-nil, replaces the estimator's arrival-rate
	// estimates handed to the allocator (the §4.4 estimation-error
	// ablation).
	OracleLambdas []float64
	// DeltaScale, when non-nil, multiplies the effective δ vector after
	// the feedback trim — the degradation-ladder hook: entries must be
	// finite and ≥ 1 (1 leaves a class untouched; larger values degrade
	// it toward more tolerated slowdown). Nil is bit-identical to all
	// ones.
	DeltaScale []float64
}

// validVec reports whether every entry of v is finite and ≥ 0 — the
// shape every window observation (counts, work) and oracle λ must have.
func validVec(v []float64) bool {
	for _, x := range v {
		// !(x >= 0) catches NaN as well as negatives.
		if !(x >= 0) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// validSlowdowns reports whether v is a legal measured-slowdown vector:
// NaN entries are legitimate (a class without completions), but negative
// or infinite slowdowns are corruption.
func validSlowdowns(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) {
			continue
		}
		if x < 0 || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// validDeltaScale reports whether v is a legal degradation-scale vector
// (every entry finite and ≥ 1).
func validDeltaScale(v []float64) bool {
	for _, x := range v {
		if !(x >= 1) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Loop is the shared estimate→control→allocate engine: one Tick closes an
// estimation window, updates the (optional) ratio-feedback controller,
// and re-runs the allocator in place. It is the single control plane
// behind both the simulator (internal/simsrv, every server model) and the
// live HTTP server (internal/httpsrv), so the two cannot drift.
//
// A Loop is a reusable arena: Reset re-dimensions it for a new
// configuration reusing all retained buffers, and a steady-state Tick
// performs no heap allocation (gated by cmd/psdbench's control-tick
// scenario and httpsrv's BenchmarkReallocate). A Loop is not safe for
// concurrent use; callers serialize access (the simulator is
// single-goroutine, httpsrv wraps it in a mutex).
type Loop struct {
	deltas    []float64 // target δ (copied from config)
	window    float64
	kind      EstimatorKind
	history   int
	alpha     float64
	allocator core.Allocator
	workload  core.Workload
	fromWork  bool
	feedback  bool

	classes int

	// Estimator cores, shared with the standalone WindowEstimator /
	// EWMAEstimator wrappers so the math exists exactly once; only the
	// configured kind is consulted.
	ring windowRing
	ewma ewmaState

	// Current (open) window accumulators for the Observe path.
	curCount []float64
	curWork  []float64

	ctrl RatioController // active iff feedback

	// Flight recording (nil when not configured).
	rec   *obs.FlightRecorder
	ticks uint64 // completed Tick calls since Reset

	// Input-guard state: rejected counts ticks that carried at least one
	// corrupt field (NaN/Inf/negative counts, work, slowdowns, oracle λ,
	// or δ scale); tickFlags carries the current tick's flag bits into
	// the flight record.
	rejected  uint64
	tickFlags uint8

	// Per-tick scratch.
	effDeltas    []float64
	lambdas      []float64
	loads        []float64
	allocClasses []core.Class
	alloc        core.Allocation
}

// NewLoop builds and arms a Loop.
func NewLoop(cfg LoopConfig) (*Loop, error) {
	lp := new(Loop)
	if err := lp.Reset(cfg); err != nil {
		return nil, err
	}
	return lp, nil
}

// Reset re-arms the Loop for cfg, reusing every retained buffer. A reset
// Loop is observationally identical to a freshly constructed one.
func (lp *Loop) Reset(cfg LoopConfig) error {
	cfg = cfg.withDefaults()
	nc := len(cfg.Deltas)
	if nc == 0 {
		return fmt.Errorf("control: loop needs at least one class")
	}
	for i, d := range cfg.Deltas {
		if !(d > 0) || math.IsInf(d, 0) {
			return fmt.Errorf("control: loop delta[%d] = %v must be positive and finite", i, d)
		}
	}
	if !(cfg.Window > 0) {
		return fmt.Errorf("control: loop window %v must be positive", cfg.Window)
	}
	if !cfg.Estimator.Valid() {
		return fmt.Errorf("control: unknown estimator kind %d", int(cfg.Estimator))
	}
	if cfg.HistoryWindows < 1 {
		return fmt.Errorf("control: history windows %d must be >= 1", cfg.HistoryWindows)
	}
	if !(cfg.EWMAAlpha > 0) || cfg.EWMAAlpha > 1 {
		return fmt.Errorf("control: EWMA alpha %v must be in (0, 1]", cfg.EWMAAlpha)
	}
	if cfg.Allocator == nil {
		return fmt.Errorf("control: loop needs an allocator")
	}
	if err := cfg.Workload.Validate(); err != nil {
		return err
	}

	lp.window = cfg.Window
	lp.kind = cfg.Estimator
	lp.history = cfg.HistoryWindows
	lp.alpha = cfg.EWMAAlpha
	lp.allocator = cfg.Allocator
	lp.workload = cfg.Workload
	lp.fromWork = cfg.EstimateFromWork
	lp.feedback = cfg.Feedback
	lp.classes = nc

	lp.deltas = resizeFloats(lp.deltas, nc)
	copy(lp.deltas, cfg.Deltas)

	lp.ring.reset(nc, lp.history, lp.window)
	lp.ewma.reset(nc, lp.alpha, lp.window)
	lp.curCount = resizeFloats(lp.curCount, nc)
	lp.curWork = resizeFloats(lp.curWork, nc)
	for i := 0; i < nc; i++ {
		lp.curCount[i] = 0
		lp.curWork[i] = 0
	}

	lp.effDeltas = resizeFloats(lp.effDeltas, nc)
	lp.lambdas = resizeFloats(lp.lambdas, nc)
	lp.loads = resizeFloats(lp.loads, nc)
	if cap(lp.allocClasses) < nc {
		lp.allocClasses = make([]core.Class, nc)
	} else {
		lp.allocClasses = lp.allocClasses[:nc]
	}

	if cfg.Feedback {
		if err := lp.ctrl.ResetTargets(lp.deltas, cfg.FeedbackGain, cfg.FeedbackMaxTrim); err != nil {
			return err
		}
	}
	lp.rec = cfg.Recorder
	lp.ticks = 0
	lp.rejected = 0
	lp.tickFlags = 0
	// Drop the retained allocation (keeping capacity): a reconfigured
	// Loop must never report the previous configuration's last-good rate
	// vector — an early failed tick would otherwise flight-record and
	// hand out stale rates dimensioned for the old class set.
	lp.alloc.Rates = lp.alloc.Rates[:0]
	lp.alloc.ExpectedSlowdowns = lp.alloc.ExpectedSlowdowns[:0]
	lp.alloc.Utilization = 0
	if lp.rec != nil {
		capacity := lp.rec.Capacity()
		if capacity < 1 {
			capacity = 256
		}
		lp.rec.Reset(nc, capacity)
	}
	return nil
}

// Classes returns the configured class count.
func (lp *Loop) Classes() int { return lp.classes }

// InputRejected returns how many Ticks since Reset carried at least one
// corrupt input field (discarded and replaced by last-good state).
func (lp *Loop) InputRejected() uint64 { return lp.rejected }

// EstimatorName identifies the active estimator ("window" | "ewma").
func (lp *Loop) EstimatorName() string { return lp.kind.String() }

// Observe accumulates one arrival of the given size into the open
// estimation window (the simulator path; live servers usually batch their
// own counters and pass them via TickInput.Counts instead).
func (lp *Loop) Observe(class int, size float64) {
	lp.curCount[class]++
	lp.curWork[class] += size
}

// observeWindow folds one closed window's per-class counts and work into
// the configured estimator core.
func (lp *Loop) observeWindow(counts, work []float64) {
	switch lp.kind {
	case Window:
		lp.ring.observe(counts, work)
	case EWMA:
		lp.ewma.observe(counts, work)
	}
}

// LambdasInto fills dst with the current per-class arrival-rate estimates
// (zero before the first closed window). len(dst) must be Classes().
func (lp *Loop) LambdasInto(dst []float64) {
	switch lp.kind {
	case Window:
		lp.ring.lambdasInto(dst)
	case EWMA:
		copy(dst, lp.ewma.lambdas)
	}
}

// LoadsInto fills dst with the current per-class offered-load estimates
// (work units per time unit).
func (lp *Loop) LoadsInto(dst []float64) {
	switch lp.kind {
	case Window:
		lp.ring.loadsInto(dst)
	case EWMA:
		copy(dst, lp.ewma.loads)
	}
}

// EffectiveDeltasInto fills dst with the δ vector currently handed to the
// allocator: the targets, trimmed by the feedback controller when it is
// active.
func (lp *Loop) EffectiveDeltasInto(dst []float64) {
	copy(dst, lp.deltas)
	if lp.feedback {
		lp.ctrl.DeltasInto(dst)
	}
}

// Tick runs one control period: close the estimation window (from
// in.Counts/Work, or from the Observe accumulators when in.Counts is
// nil), update the feedback controller from in.MeasuredSlowdowns, and
// re-run the allocator. On success it returns the new rate vector — a
// Loop-owned scratch slice, valid until the next Tick/Reset, which the
// caller applies (flooring, scheduler weights, pacing) as its server
// model requires. On error (typically core.ErrInfeasible under a
// transient ρ̂ ≥ 1, or ErrDimension for malformed input, which leaves
// the estimator untouched) the caller should keep its previous rates.
func (lp *Loop) Tick(in TickInput) ([]float64, error) {
	if in.Counts != nil && (len(in.Counts) != lp.classes || len(in.Work) != lp.classes) {
		return nil, ErrDimension
	}
	if in.MeasuredSlowdowns != nil && len(in.MeasuredSlowdowns) != lp.classes {
		return nil, ErrDimension
	}
	if in.OracleLambdas != nil && len(in.OracleLambdas) != lp.classes {
		return nil, ErrDimension
	}
	if in.DeltaScale != nil && len(in.DeltaScale) != lp.classes {
		return nil, ErrDimension
	}
	counts, work := in.Counts, in.Work
	if counts == nil {
		counts, work = lp.curCount, lp.curWork
	}
	// Input guards: a corrupt window (NaN/Inf/negative counts or work)
	// must not reach the estimator core — once folded in, a poisoned
	// window skews λ̂ for the full history depth (forever under EWMA).
	// The whole window is discarded and the estimator keeps its last-good
	// state; the tick is flagged and counted, but still allocates.
	lp.tickFlags = 0
	if validVec(counts) && validVec(work) {
		lp.observeWindow(counts, work)
	} else {
		lp.tickFlags |= obs.FlagInputRejected
	}
	if in.Counts == nil {
		for i := 0; i < lp.classes; i++ {
			lp.curCount[i] = 0
			lp.curWork[i] = 0
		}
	}
	slowdowns := in.MeasuredSlowdowns
	if slowdowns != nil && !validSlowdowns(slowdowns) {
		// Corrupt measurements must not steer the feedback trim; drop the
		// vector (the controller simply skips this window's update).
		slowdowns = nil
		lp.tickFlags |= obs.FlagInputRejected
	}
	oracle := in.OracleLambdas
	if oracle != nil && !validVec(oracle) {
		oracle = nil
		lp.tickFlags |= obs.FlagInputRejected
	}
	scale := in.DeltaScale
	if scale != nil && !validDeltaScale(scale) {
		scale = nil
		lp.tickFlags |= obs.FlagInputRejected
	}
	if lp.tickFlags&obs.FlagInputRejected != 0 {
		lp.rejected++
	}

	copy(lp.effDeltas, lp.deltas)
	if lp.feedback {
		if slowdowns != nil {
			_ = lp.ctrl.Update(slowdowns)
		}
		lp.ctrl.DeltasInto(lp.effDeltas)
	}
	if scale != nil {
		for i := range lp.effDeltas {
			lp.effDeltas[i] *= scale[i]
		}
	}

	lp.LambdasInto(lp.lambdas)
	if lp.fromWork {
		lp.LoadsInto(lp.loads)
		for i := range lp.lambdas {
			lp.lambdas[i] = lp.loads[i] / lp.workload.MeanSize
		}
	}
	for i := 0; i < lp.classes; i++ {
		l := lp.lambdas[i]
		if oracle != nil {
			l = oracle[i]
		}
		lp.lambdas[i] = l // scratch now holds what the allocator sees
		lp.allocClasses[i] = core.Class{Delta: lp.effDeltas[i], Lambda: l}
	}
	err := core.AllocateInto(lp.allocator, &lp.alloc, lp.allocClasses, lp.workload)
	if lp.rec != nil {
		lp.recordTick(slowdowns, err)
	}
	lp.ticks++
	if err != nil {
		return nil, err
	}
	return lp.alloc.Rates, nil
}

// recordTick appends one flight record. Timestamps are ticks·Window — the
// control clock, identical for every Loop consumer, which is what lets
// the flight-recorder parity test demand bit-identical records between a
// bare Loop and the live server. On a failed tick the recorded rates are
// the retained previous allocation (the allocator leaves them untouched
// on error), or NaN before any allocation succeeded.
func (lp *Loop) recordTick(slowdowns []float64, allocErr error) {
	flags := lp.tickFlags
	rates := lp.alloc.Rates
	if len(rates) != lp.classes {
		rates = nil
	}
	if allocErr != nil {
		flags |= obs.FlagAllocFailure
	} else {
		for _, r := range rates {
			if r <= 0 {
				flags |= obs.FlagNonPositiveRate
				break
			}
		}
	}
	lp.rec.Record(float64(lp.ticks+1)*lp.window, flags, lp.lambdas, rates, slowdowns, lp.effDeltas)
}

// AllocateDeclared runs the allocator against the target δ vector and the
// given (declared/true) arrival rates, bypassing the estimator and
// controller — the provisioning step before any window has closed, and
// the Eq. 18 model prediction under true demand. The returned Allocation
// is Loop-owned scratch shared with Tick, valid until the next
// Tick/AllocateDeclared/Reset.
func (lp *Loop) AllocateDeclared(lambdas []float64) (*core.Allocation, error) {
	for i := 0; i < lp.classes; i++ {
		lp.allocClasses[i] = core.Class{Delta: lp.deltas[i], Lambda: lambdas[i]}
	}
	if err := core.AllocateInto(lp.allocator, &lp.alloc, lp.allocClasses, lp.workload); err != nil {
		return nil, err
	}
	return &lp.alloc, nil
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
