package httpsrv

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"psd/internal/admission"
)

// newTestServer mounts an already-built Server; the caller keeps
// ownership of s (Close is idempotent, so tests may close it early).
func newTestServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Mux())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// TestAdmissionUtilizationGate wires the [Abdelzaher et al.]-style
// utilization guard in front of the class queues: oversized demand gets
// 503 with per-class accounting, admitted demand flows through, and the
// load estimator never sees the shed traffic.
func TestAdmissionUtilizationGate(t *testing.T) {
	ub, err := admission.NewUtilizationBound(0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := fastServer(t, Config{
		Deltas:    []float64{1},
		Admission: ub,
		Window:    1e9,
	})
	// Bound 0.5 × tau 100 ⇒ at most 50 work units of instantaneous
	// credit: a size-60 request must be shed, a size-1 admitted.
	if r := getJSON(t, ts.URL+"/?class=0&size=60", nil); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("oversized request got %d, want 503", r.StatusCode)
	}
	var resp Response
	if r := getJSON(t, ts.URL+"/?class=0&size=1", &resp); r.StatusCode != http.StatusOK {
		t.Fatalf("small request got %d, want 200", r.StatusCode)
	}
	var doc MetricsDocument
	getJSON(t, ts.URL+"/metrics", &doc)
	if doc.AdmissionPolicy != "utilization" {
		t.Fatalf("admission_policy = %q", doc.AdmissionPolicy)
	}
	cm := doc.Classes[0]
	if cm.RejectedAdmission != 1 || cm.RejectedQueueFull != 0 || cm.RejectedWork != 60 {
		t.Fatalf("rejection accounting wrong: %+v", cm)
	}
}

// TestAdmissionTokenBucket exercises the per-class work-rate contract:
// a class that burns its burst credit is shed while its bucket refills.
func TestAdmissionTokenBucket(t *testing.T) {
	// Near-zero refill: the burst is all the credit the test sees.
	tb, err := admission.NewTokenBucket([]float64{1e-9, 1e-9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := fastServer(t, Config{
		Deltas:    []float64{1, 2},
		Admission: tb,
		Window:    1e9,
	})
	if r := getJSON(t, ts.URL+"/?class=0&size=4", nil); r.StatusCode != http.StatusOK {
		t.Fatalf("first size-4 got %d, want 200 (burst 5)", r.StatusCode)
	}
	if r := getJSON(t, ts.URL+"/?class=0&size=4", nil); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatal("second size-4 should exhaust class 0's bucket")
	}
	// Class isolation: class 1's bucket is untouched.
	if r := getJSON(t, ts.URL+"/?class=1&size=4", nil); r.StatusCode != http.StatusOK {
		t.Fatal("class 1 must not be taxed by class 0's flood")
	}
	var doc MetricsDocument
	getJSON(t, ts.URL+"/metrics", &doc)
	if doc.AdmissionPolicy != "tokenbucket" {
		t.Fatalf("admission_policy = %q", doc.AdmissionPolicy)
	}
	if doc.Classes[0].RejectedAdmission != 1 || doc.Classes[1].RejectedAdmission != 0 {
		t.Fatalf("per-class rejection accounting wrong: %+v", doc.Classes)
	}
	// Class 0's estimator window saw only its one admitted request.
	arr, work := s.classes[0].pendingWindow()
	if arr != 1 || work != 4 {
		t.Fatalf("class 0 estimator window saw (%v, %v), want (1, 4): rejected demand leaked in", arr, work)
	}
}

// TestQueueFullRefundsAdmission pins the charge-then-drop leak: a
// request that clears the admission gate but bounces off a full class
// queue must hand its credit back, or the gate double-counts demand
// that was never served and sheds later admissible traffic.
func TestQueueFullRefundsAdmission(t *testing.T) {
	tb, err := admission.NewTokenBucket([]float64{1e-9}, 12)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Deltas:        []float64{1},
		TimeUnit:      200 * time.Millisecond, // size-4 job ≈ 800ms: worker stays busy
		Window:        1e9,
		QueueCapacity: 1,
		Admission:     tb,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, s)

	// Three size-4 requests, sequentially admitted (12 credits): the
	// first occupies the worker, the second the queue slot, the third is
	// admitted, bounces off the full queue, and must be refunded.
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Get(ts.URL + "/?class=0&size=4")
			if err == nil {
				resp.Body.Close()
			}
			done <- struct{}{}
		}()
	}
	// Wait until both are inside the system (one serving, one queued).
	deadline := time.Now().Add(5 * time.Second)
	for {
		admitted, _ := s.classes[0].pendingWindow()
		if admitted == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests never entered the system: admitted=%v", admitted)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/?class=0&size=4")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third request got %d, want 503 (queue full)", resp.StatusCode)
	}
	// Three admits charged 12, the bounced one's 4 came back: 4 credits
	// left. Without the refund this reads 0 (refill rate is ~0); a double
	// refund would read 8.
	if got := tb.Tokens(0, 0); got < 3.9 || got > 4.1 {
		t.Fatalf("tokens after queue-full bounce = %v, want ~4 (refund missing or doubled)", got)
	}
	var doc MetricsDocument
	getJSON(t, ts.URL+"/metrics", &doc)
	if doc.Classes[0].RejectedQueueFull != 1 || doc.Classes[0].RejectedAdmission != 0 {
		t.Fatalf("rejection accounting wrong: %+v", doc.Classes[0])
	}
	s.Close() // fail the in-flight jobs fast so the clients return
	<-done
	<-done
}

// TestRejectedTrafficDoesNotFeedEstimator pins the overload-bias fix on
// the queue-full path: with a capacity-1 queue and a slow worker, the
// flood's 503s must not inflate the estimator's window counters — only
// requests that actually entered the queue count.
func TestRejectedTrafficDoesNotFeedEstimator(t *testing.T) {
	s, err := New(Config{
		Deltas:        []float64{1},
		TimeUnit:      200 * time.Millisecond, // size-10 job ≈ 2s: worker stays busy
		Window:        1e9,
		QueueCapacity: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, s)

	const n = 6
	var wg sync.WaitGroup
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/?class=0&size=10")
			if err == nil {
				codes <- resp.StatusCode
				resp.Body.Close()
			}
		}()
	}

	// Wait until every request either queued or bounced: the worker holds
	// one job, the queue one more, so at least n-2 rejections must land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rejected := s.met.rejQueueFull.At(0).Load()
		arrivals, work := s.classes[0].pendingWindow()
		if rejected+int64(arrivals) == n {
			if rejected < n-2 {
				t.Fatalf("only %d queue-full rejections for %d requests against capacity 1", rejected, n)
			}
			if work != 10*arrivals {
				t.Fatalf("window work %v inconsistent with %v admitted size-10 requests", work, arrivals)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("accounting never converged: rejected=%d arrivals=%v", rejected, arrivals)
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Close() // fail the in-flight jobs fast so the clients return
	wg.Wait()
}
