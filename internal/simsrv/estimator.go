package simsrv

// estimator is the paper's load estimator (§4.1): per-class arrival counts
// and work are accumulated per window; the estimate used for the next
// window is the average over the past `history` windows ("the load for
// next thousand time units was the average load in past five thousand time
// units").
//
// Storage is a single flat ring per metric, indexed [class*history+slot],
// so the estimator is a value type whose buffers a simulation arena
// resets and reuses across replications without allocating (and the
// per-class slots it scans at every reallocation tick sit contiguously).
type estimator struct {
	classes int
	history int
	// flat ring buffers, history slots per class
	counts []float64
	work   []float64
	// current (open) window accumulators
	curCount []float64
	curWork  []float64
	next     int // ring write index
	filled   int // number of valid slots
}

// reset re-dimensions the estimator for the given shape and clears it,
// reusing buffer capacity when the shape fits.
func (e *estimator) reset(classes, history int) {
	e.classes = classes
	e.history = history
	n := classes * history
	e.counts = resizeFloat(e.counts, n)
	e.work = resizeFloat(e.work, n)
	e.curCount = resizeFloat(e.curCount, classes)
	e.curWork = resizeFloat(e.curWork, classes)
	for i := 0; i < n; i++ {
		e.counts[i] = 0
		e.work[i] = 0
	}
	for i := 0; i < classes; i++ {
		e.curCount[i] = 0
		e.curWork[i] = 0
	}
	e.next = 0
	e.filled = 0
}

// observe records one arrival of the given size for a class.
func (e *estimator) observe(class int, size float64) {
	e.curCount[class]++
	e.curWork[class] += size
}

// roll closes the current window into the ring.
func (e *estimator) roll() {
	for i := 0; i < e.classes; i++ {
		e.counts[i*e.history+e.next] = e.curCount[i]
		e.work[i*e.history+e.next] = e.curWork[i]
		e.curCount[i] = 0
		e.curWork[i] = 0
	}
	e.next = (e.next + 1) % e.history
	if e.filled < e.history {
		e.filled++
	}
}

// lambdasInto fills dst with the estimated per-class arrival rates over
// the retained history, given the window width. Zero before any window
// has closed. The caller-provided dst keeps the per-window reallocation
// tick allocation-free.
func (e *estimator) lambdasInto(dst []float64, window float64) {
	e.ringInto(dst, e.counts, window)
}

// loadsInto fills dst with the estimated per-class offered load (work per
// time unit) over the retained history.
func (e *estimator) loadsInto(dst []float64, window float64) {
	e.ringInto(dst, e.work, window)
}

func (e *estimator) ringInto(dst, ring []float64, window float64) {
	if e.filled == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	span := window * float64(e.filled)
	for i := 0; i < e.classes; i++ {
		sum := 0.0
		row := ring[i*e.history : i*e.history+e.filled]
		for _, v := range row {
			sum += v
		}
		dst[i] = sum / span
	}
}
