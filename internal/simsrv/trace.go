package simsrv

import (
	"fmt"
	"math"
	"sort"
)

// TraceRequest is one externally supplied arrival for trace-driven
// replay (e.g. from internal/workload's session generator or a recorded
// production trace).
type TraceRequest struct {
	Time  float64
	Class int
	Size  float64
}

// validateTrace checks a trace against an (already defaulted) config:
// time-sorted, in-range classes, positive sizes.
func validateTrace(cfg Config, trace []TraceRequest) error {
	if len(trace) == 0 {
		return fmt.Errorf("simsrv: empty trace")
	}
	if len(trace) > math.MaxInt32 {
		return fmt.Errorf("simsrv: trace too long (%d entries)", len(trace))
	}
	if !sort.SliceIsSorted(trace, func(i, j int) bool { return trace[i].Time < trace[j].Time }) {
		return fmt.Errorf("simsrv: trace not time-sorted")
	}
	for i, tr := range trace {
		if tr.Class < 0 || tr.Class >= len(cfg.Classes) {
			return fmt.Errorf("simsrv: trace[%d] class %d out of range", i, tr.Class)
		}
		if !(tr.Size > 0) {
			return fmt.Errorf("simsrv: trace[%d] size %v must be positive", i, tr.Size)
		}
		if tr.Time < 0 {
			return fmt.Errorf("simsrv: trace[%d] time %v negative", i, tr.Time)
		}
	}
	return nil
}

// RunTrace replays a fixed arrival trace through the server model instead
// of the Poisson generators. The Config's class Lambdas are ignored for
// arrival generation but still seed the initial allocation (set them to
// the trace's empirical rates — see workload.ClassRates — or leave zero to
// start from an equal split); the estimator-driven reallocation then takes
// over exactly as in the Poisson mode.
//
// Requests arriving after Warmup+Horizon are ignored. The trace must be
// time-sorted with in-range classes and positive sizes. Batch callers
// replaying one trace many times should hold a Simulator and use
// ResetTrace to amortize arena construction.
func RunTrace(cfg Config, trace []TraceRequest) (*Result, error) {
	var s Simulator
	if err := s.ResetTrace(cfg, trace, cfg.Seed); err != nil {
		return nil, err
	}
	res := new(Result)
	if err := s.RunInto(res); err != nil {
		return nil, err
	}
	return res, nil
}

// scheduleTrace chains trace arrivals one at a time (each fired arrival
// schedules the next) to keep the event heap small regardless of trace
// length.
func (r *runner) scheduleTrace(idx int) {
	if idx >= len(r.trace) || r.trace[idx].Time > r.total {
		return
	}
	r.sim.ScheduleAt(r.trace[idx].Time, r, evTraceArrival, int32(idx))
}

// onTraceArrival injects trace entry idx into its class queue and chains
// the next entry.
func (r *runner) onTraceArrival(idx int) {
	tr := r.trace[idx]
	cs := &r.classes[tr.Class]
	r.loop.Observe(tr.Class, tr.Size)
	cs.queue.push(request{class: tr.Class, size: tr.Size, arrival: tr.Time})
	if !cs.busy {
		r.startService(cs)
		if r.cfg.WorkConserving {
			r.recomputeEffectiveRates()
		}
	}
	r.scheduleTrace(idx + 1)
}
