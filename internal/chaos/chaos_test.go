package chaos

import (
	"math"
	"testing"
	"time"
)

func mustNew(t *testing.T, cfg Config) *Injector {
	t.Helper()
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"negative prob", Config{StallProb: -0.1}},
		{"prob above 1", Config{CorruptProb: 1.5}},
		{"NaN prob", Config{DropProb: math.NaN()}},
		{"spike factor below 1", Config{SpikeProb: 0.5, SpikeFactor: 0.5}},
		{"infinite spike factor", Config{SpikeFactor: math.Inf(1)}},
		{"negative stall", Config{StallDur: -time.Second}},
		{"negative jump units", Config{JumpUnits: -1}},
		{"infinite jump units", Config{JumpUnits: math.Inf(1)}},
		{"negative loris conns", Config{Loris: SlowLoris{Conns: -1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg); err == nil {
				t.Fatalf("New(%+v) accepted invalid config", tc.cfg)
			}
		})
	}

	inj := mustNew(t, Config{})
	got := inj.Config()
	if got.StallDur != 100*time.Millisecond || got.SpikeFactor != 8 ||
		got.DelayDur != 200*time.Millisecond || got.JumpUnits != 100 ||
		got.Loris.Interval != 500*time.Millisecond {
		t.Fatalf("defaults not applied: %+v", got)
	}
	if !inj.Armed() {
		t.Fatal("injector not armed at construction")
	}
}

// workerSchedule replays nDraws job opportunities against a fresh worker
// stream and records which fire a stall and which a spike.
func workerSchedule(inj *Injector, class, idx, nDraws int) (stalls, spikes []bool) {
	w := inj.Worker(class, idx)
	for i := 0; i < nDraws; i++ {
		stalls = append(stalls, w.StallFor() > 0)
		spikes = append(spikes, w.InflateSize(1) != 1)
	}
	return stalls, spikes
}

// TestDeterministicSchedule: the same seed yields a bit-identical fault
// schedule at every site; a different seed yields a different one.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 7, StallProb: 0.3, SpikeProb: 0.3, CorruptProb: 0.5, DropProb: 0.4, DelayProb: 0.4, JumpProb: 0.5}
	a, b := mustNew(t, cfg), mustNew(t, cfg)

	sa, pa := workerSchedule(a, 1, 0, 200)
	sb, pb := workerSchedule(b, 1, 0, 200)
	for i := range sa {
		if sa[i] != sb[i] || pa[i] != pb[i] {
			t.Fatalf("worker schedules diverge at draw %d with the same seed", i)
		}
	}

	ta, tb := a.Tick(), b.Tick()
	for i := 0; i < 200; i++ {
		ca, cb := make([]float64, 3), make([]float64, 3)
		wa, wb := make([]float64, 3), make([]float64, 3)
		if ta.Drop() != tb.Drop() || ta.Delay() != tb.Delay() ||
			ta.ClockJump() != tb.ClockJump() ||
			ta.Corrupt(ca, wa, nil) != tb.Corrupt(cb, wb, nil) {
			t.Fatalf("tick schedules diverge at tick %d with the same seed", i)
		}
		for k := range ca {
			sameNaN := math.IsNaN(ca[k]) && math.IsNaN(cb[k])
			if (ca[k] != cb[k] && !sameNaN) || (wa[k] != wb[k] && !math.IsNaN(wa[k])) {
				t.Fatalf("tick %d corrupted different victims/values: %v/%v vs %v/%v", i, ca, wa, cb, wb)
			}
		}
	}
	if a.Counts() != b.Counts() {
		t.Fatalf("same seed, different counts: %+v vs %+v", a.Counts(), b.Counts())
	}

	c := mustNew(t, Config{Seed: 8, StallProb: 0.3, SpikeProb: 0.3})
	sc, _ := workerSchedule(c, 1, 0, 200)
	same := true
	for i := range sa {
		if sa[i] != sc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical 200-draw stall schedules")
	}
}

// TestSiteStreamIndependence: distinct workers get distinct schedules,
// and draws at one site never perturb another site's stream.
func TestSiteStreamIndependence(t *testing.T) {
	cfg := Config{Seed: 3, StallProb: 0.5}
	a, b := mustNew(t, cfg), mustNew(t, cfg)

	// In a, worker (0,0) draws 500 times before worker (1,2) is consulted;
	// in b, worker (1,2) draws alone. The schedules must match anyway.
	workerSchedule(a, 0, 0, 500)
	sa, _ := workerSchedule(a, 1, 2, 100)
	sb, _ := workerSchedule(b, 1, 2, 100)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("worker (1,2)'s schedule depends on worker (0,0)'s draws (diverges at %d)", i)
		}
	}

	s00, _ := workerSchedule(mustNew(t, cfg), 0, 0, 200)
	s01, _ := workerSchedule(mustNew(t, cfg), 0, 1, 200)
	same := true
	for i := range s00 {
		if s00[i] != s01[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("workers (0,0) and (0,1) share a fault schedule")
	}
}

// TestDisarmPausesWithoutConsuming: a disarmed injector reports no faults
// and does not consume draws, so the schedule resumes where it paused.
func TestDisarmPausesWithoutConsuming(t *testing.T) {
	cfg := Config{Seed: 11, StallProb: 0.4, CorruptProb: 0.6, DropProb: 0.5}
	ref := mustNew(t, cfg)
	refStalls, _ := workerSchedule(ref, 0, 0, 60)

	inj := mustNew(t, cfg)
	w := inj.Worker(0, 0)
	var got []bool
	for i := 0; i < 30; i++ {
		got = append(got, w.StallFor() > 0)
	}
	inj.Disarm()
	for i := 0; i < 1000; i++ {
		if w.StallFor() != 0 {
			t.Fatal("disarmed worker stalled")
		}
		if inj.Tick().Drop() || inj.Tick().Corrupt([]float64{1}, []float64{1}, nil) {
			t.Fatal("disarmed tick injected a fault")
		}
	}
	if c := inj.Counts(); c.Stalls != countTrue(got) || c.DroppedTicks != 0 || c.CorruptTicks != 0 {
		t.Fatalf("disarmed faults were counted: %+v", c)
	}
	inj.Arm()
	for i := 30; i < 60; i++ {
		got = append(got, w.StallFor() > 0)
	}
	for i := range refStalls {
		if got[i] != refStalls[i] {
			t.Fatalf("schedule did not resume after Disarm/Arm: diverges at draw %d", i)
		}
	}
}

func countTrue(bs []bool) int64 {
	var n int64
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// TestCorruptPoisonsVectors: an always-corrupt tick stream must actually
// poison the vectors with values the control guards reject, cycling
// through the catalog, and count every corruption.
func TestCorruptPoisonsVectors(t *testing.T) {
	inj := mustNew(t, Config{Seed: 5, CorruptProb: 1})
	tick := inj.Tick()

	poisoned := 0
	for i := 0; i < 24; i++ {
		counts := []float64{10, 10}
		work := []float64{3, 3}
		slows := []float64{1.5, 2.5}
		if !tick.Corrupt(counts, work, slows) {
			t.Fatalf("CorruptProb=1 tick %d did not corrupt", i)
		}
		bad := false
		for _, v := range append(append(append([]float64{}, counts...), work...), slows...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				bad = true
			}
		}
		if !bad {
			t.Fatalf("tick %d: Corrupt returned true but vectors are clean: %v %v %v", i, counts, work, slows)
		}
		poisoned++
	}
	if c := inj.Counts().CorruptTicks; c != int64(poisoned) {
		t.Fatalf("CorruptTicks = %d, want %d", c, poisoned)
	}

	// Without a slowdown vector the slowdown modes fall back to
	// counts/work poison — every mode must still corrupt something.
	for i := 0; i < 12; i++ {
		counts := []float64{10, 10}
		work := []float64{3, 3}
		if !tick.Corrupt(counts, work, nil) {
			t.Fatalf("nil-slowdown tick %d did not corrupt", i)
		}
		bad := false
		for _, v := range append(append([]float64{}, counts...), work...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				bad = true
			}
		}
		if !bad {
			t.Fatalf("nil-slowdown tick %d left vectors clean: %v %v", i, counts, work)
		}
	}
}

// TestClockJumpAlternates: jumps alternate sign starting backwards, with
// constant magnitude JumpUnits.
func TestClockJumpAlternates(t *testing.T) {
	inj := mustNew(t, Config{Seed: 2, JumpProb: 1, JumpUnits: 50})
	tick := inj.Tick()
	wantSign := -1.0
	for i := 0; i < 8; i++ {
		j := tick.ClockJump()
		if j != wantSign*50 {
			t.Fatalf("jump %d = %v, want %v", i, j, wantSign*50)
		}
		wantSign = -wantSign
	}
	if c := inj.Counts().ClockJumps; c != 8 {
		t.Fatalf("ClockJumps = %d, want 8", c)
	}
}

// TestNilHandlesAreNoOps: consumers hold nil handles when chaos is off;
// every hook must be nil-receiver safe.
func TestNilHandlesAreNoOps(t *testing.T) {
	var w *WorkerFaults
	var tick *TickFaults
	if w.StallFor() != 0 || w.InflateSize(3) != 3 {
		t.Fatal("nil WorkerFaults injected")
	}
	if tick.Drop() || tick.Delay() != 0 || tick.ClockJump() != 0 || tick.Corrupt([]float64{1}, []float64{1}, nil) {
		t.Fatal("nil TickFaults injected")
	}
}

// TestZeroProbNeverFires: a prob-0 site fires nothing and consumes no
// draws (other sites keep their schedules).
func TestZeroProbNeverFires(t *testing.T) {
	inj := mustNew(t, Config{Seed: 9, SpikeProb: 1})
	w := inj.Worker(0, 0)
	for i := 0; i < 100; i++ {
		if w.StallFor() != 0 {
			t.Fatal("StallProb=0 stalled")
		}
		if w.InflateSize(2) != 16 {
			t.Fatal("SpikeProb=1 SpikeFactor=8 did not inflate")
		}
	}
	c := inj.Counts()
	if c.Stalls != 0 || c.Spikes != 100 {
		t.Fatalf("counts %+v, want 0 stalls / 100 spikes", c)
	}
}

func TestCountLorisByte(t *testing.T) {
	inj := mustNew(t, Config{Loris: SlowLoris{Conns: 2}})
	for i := 0; i < 5; i++ {
		inj.CountLorisByte()
	}
	if c := inj.Counts().LorisBytes; c != 5 {
		t.Fatalf("LorisBytes = %d, want 5", c)
	}
}
