// End-to-end harness: loadgen → httpsrv in one process via httptest.
// This is the closest thing the repo has to the paper's testbed run —
// real HTTP, real wall-clock pacing, the shared control plane ticking in
// the background — so it is gated out of -short (the CI race job) and
// kept statistically generous.
package httpsrv_test

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"psd/internal/dist"
	"psd/internal/httpsrv"
	"psd/internal/loadgen"
)

// TestE2ESlowdownConvergence asserts the live stack's achieved slowdown
// ratios converge toward the δ targets within tolerance — in a steady
// phase AND after a mid-run load step, the regime rate-change-aware
// pacing exists for (a stepped load re-allocates rates while heavy jobs
// are in flight; the stale-rate path would hold pre-step service times).
//
// The bands are statistical and the clock is the real one, so the test
// runs up to maxAttempts independent testbed runs (fresh server, fresh
// load, different seeds) and passes on the first in-band run. A broken
// controller fails every attempt; a single OS-scheduling excursion on
// the single-core reference box (observed: a stalled worker inflating
// one phase's mean slowdown 4×) does not survive a retry. This is what
// lets the run-level band sit at ±1.3× instead of the seed's one-shot
// ±1.6×: tighter on the signal, insulated from the noise.
func TestE2ESlowdownConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e harness skipped in -short")
	}
	const maxAttempts = 4
	for attempt := 0; attempt < maxAttempts; attempt++ {
		final := attempt == maxAttempts-1
		if runConvergenceAttempt(t, attempt, final) {
			return
		}
		t.Logf("attempt %d out of band; retrying with fresh seeds", attempt)
	}
}

// runConvergenceAttempt performs one full testbed run and reports
// whether every band held. Non-statistical failures (plumbing: refused
// requests, silent control plane) abort the test immediately; band
// violations are t.Errorf only on the final attempt.
func runConvergenceAttempt(t *testing.T, attempt int, final bool) bool {
	t.Helper()
	const target = 2.0 // δ₁/δ₀
	sizes, err := dist.NewUniform(0.8, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := httpsrv.New(httpsrv.Config{
		Deltas:   []float64{1, target},
		Service:  sizes,
		TimeUnit: time.Millisecond,
		// Reallocate every 50ms: still many windows per phase, but enough
		// completions per window (~15/class) that the measured ratio the
		// feedback loop consumes isn't dominated by small-sample bias.
		Window:   50,
		Feedback: true,
		// Tuned for short wall-clock phases: a higher-than-default gain
		// (0.3) converges the ratio within a few seconds, and a trim bound
		// tighter than the default 8 keeps one jittery window from
		// dragging δeff into multi-second excursions.
		FeedbackGain:    0.4,
		FeedbackMaxTrim: 4,
		Seed:            7 + uint64(attempt)*101,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Mux())
	defer func() { ts.Close(); srv.Close() }()

	// Phases 1–2 offer ρ ≈ 0.72, then step to ρ ≈ 0.90 (E[X] = 1).
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:  ts.URL + "/",
		TimeUnit: time.Millisecond,
		Service:  sizes,
		Phases: []loadgen.Phase{
			// Phase 0 is warm-up only: it absorbs the cold start (estimator
			// fill plus the feedback ramp) and is excluded from the band
			// check below.
			{Lambdas: []float64{0.36, 0.36}, Duration: 3 * time.Second},
			{Lambdas: []float64{0.36, 0.36}, Duration: 4 * time.Second},
			{Lambdas: []float64{0.45, 0.45}, Duration: 4 * time.Second},
		},
		Drain: 1500 * time.Millisecond,
		Seed:  3 + uint64(attempt)*57,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Two bands. Per phase, the seed's ±1.6× holds as a sanity floor: a
	// 4-second phase on the single-core reference box carries too much
	// wall-clock jitter to assert tighter. The tightened ±1.3× band
	// asserts the run-level mean of the phase ratios instead — the
	// integral loop overcorrects, so consecutive phases' excursions are
	// anticorrelated and their mean is what the gain/trim tuning above
	// actually stabilizes.
	ok := true
	fail := func(format string, args ...any) {
		ok = false
		if final {
			t.Errorf(format, args...)
		} else {
			t.Logf(format, args...)
		}
	}
	var ratioSum float64
	asserted := 0
	for pi := 1; pi < len(rep.Phases); pi++ {
		c0, c1 := rep.Phases[pi][0], rep.Phases[pi][1]
		if c0.Completed < 300 || c1.Completed < 300 {
			t.Skipf("phase %d throughput too low for a meaningful check: %d/%d",
				pi, c0.Completed, c1.Completed)
		}
		ratio := rep.PhaseSlowdownRatio(pi, 1)
		t.Logf("attempt %d phase %d achieved ratio %.3f", attempt, pi, ratio)
		if math.IsNaN(ratio) {
			t.Fatalf("phase %d ratio unavailable: %+v / %+v", pi, c0, c1)
		}
		if ratio < target/1.6 || ratio > target*1.6 {
			fail("phase %d achieved ratio %.3f outside [%.2f, %.2f] (target %g)",
				pi, ratio, target/1.6, target*1.6, target)
		}
		ratioSum += ratio
		asserted++
	}
	if mean := ratioSum / float64(asserted); mean < target/1.3 || mean > target*1.3 {
		fail("run-level mean ratio %.3f outside [%.2f, %.2f] (target %g)",
			mean, target/1.3, target*1.3, target)
	}

	// The load step must be visible to the server, not absorbed silently:
	// the estimator-driven rates differ between phases only if λ̂ moved.
	doc := srv.Snapshot()
	if doc.Reallocations < 100 {
		t.Fatalf("control plane barely ticked: %d reallocations", doc.Reallocations)
	}
	for i, cm := range doc.Classes {
		if cm.Served < 1000 {
			t.Fatalf("class %d served only %d requests end to end", i, cm.Served)
		}
	}
	return ok
}
