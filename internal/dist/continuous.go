package dist

import (
	"fmt"
	"math"

	"psd/internal/rng"
)

// lognormal is exp(N(mu, sigma²)): log-scale location mu, shape sigma.
type lognormal struct {
	mu, sigma float64
}

// NewLognormal returns the lognormal law whose logarithm is
// N(mu, sigma²). Measured web object sizes are often lognormal in the
// body even when Pareto in the tail, making this the standard
// moderate-variance alternative to Bounded Pareto. All three moments
// are finite for every parameterization:
//
//	E[X^n] = exp(n·mu + n²·sigma²/2)  (n = 1, 2, −1)
//
// mu may be any finite real (it is a log-scale location, not a size);
// sigma must be positive and finite.
func NewLognormal(mu, sigma float64) (Distribution, error) {
	if math.IsInf(mu, 0) || math.IsNaN(mu) {
		return nil, fmt.Errorf("dist: lognormal mu %v must be finite", mu)
	}
	if err := checkParam("lognormal sigma", sigma); err != nil {
		return nil, err
	}
	return checkMoments(lognormal{mu: mu, sigma: sigma})
}

// LognormalFromMoments returns the lognormal with the given mean and
// squared coefficient of variation (SCV = Var[X]/E[X]²), the
// parameterization workload studies usually report: sigma² = ln(1+scv),
// mu = ln(mean) − sigma²/2.
func LognormalFromMoments(mean, scv float64) (Distribution, error) {
	if err := checkParam("lognormal mean", mean); err != nil {
		return nil, err
	}
	if err := checkParam("lognormal scv", scv); err != nil {
		return nil, err
	}
	s2 := math.Log1p(scv)
	return NewLognormal(math.Log(mean)-s2/2, math.Sqrt(s2))
}

func (d lognormal) Mean() float64 {
	return math.Exp(d.mu + d.sigma*d.sigma/2)
}

func (d lognormal) SecondMoment() float64 {
	return math.Exp(2*d.mu + 2*d.sigma*d.sigma)
}

func (d lognormal) InverseMoment() float64 {
	// 1/X is lognormal(−mu, sigma): the inverse moment mirrors the mean.
	return math.Exp(-d.mu + d.sigma*d.sigma/2)
}

// Sample inverts the CDF: x = exp(mu + sigma·Φ⁻¹(u)) with
// Φ⁻¹(u) = √2·erfinv(2u−1), one open-interval variate per call.
func (d lognormal) Sample(src *rng.Source) float64 {
	u := src.Float64Open()
	return math.Exp(d.mu + d.sigma*math.Sqrt2*math.Erfinv(2*u-1))
}

func (d lognormal) String() string {
	return fmt.Sprintf("Lognormal(mu=%g, sigma=%g)", d.mu, d.sigma)
}

// weibull is the Weibull law with the given shape and scale.
type weibull struct {
	shape, scale float64
}

// NewWeibull returns the Weibull law with CDF 1 − exp(−(x/scale)^shape).
// Shape < 1 gives a subexponential (heavy) tail, shape = 1 the
// exponential, shape > 1 lighter-than-exponential tails. Moments:
//
//	E[X^n] = scale^n · Γ(1 + n/shape)
//
// E[1/X] requires shape > 1; below that the density's pole-free but
// heavy concentration near zero makes the integral diverge and
// InverseMoment returns +Inf.
func NewWeibull(shape, scale float64) (Distribution, error) {
	if err := checkParam("Weibull shape", shape); err != nil {
		return nil, err
	}
	if err := checkParam("Weibull scale", scale); err != nil {
		return nil, err
	}
	return checkMoments(weibull{shape: shape, scale: scale})
}

func (d weibull) Mean() float64 {
	return d.scale * math.Gamma(1+1/d.shape)
}

func (d weibull) SecondMoment() float64 {
	return d.scale * d.scale * math.Gamma(1+2/d.shape)
}

func (d weibull) InverseMoment() float64 {
	// E[X^t] = scale^t·Γ(1+t/shape) only converges for t > −shape, so
	// t = −1 needs shape > 1 (Γ alone would evaluate to a misleading
	// finite value for shape < 1).
	if d.shape <= 1 {
		return math.Inf(1)
	}
	return math.Gamma(1-1/d.shape) / d.scale
}

// Sample inverts the CDF: x = scale·(−ln(u))^(1/shape) with u drawn
// from the open interval so the result is strictly positive.
func (d weibull) Sample(src *rng.Source) float64 {
	u := src.Float64Open()
	return d.scale * math.Pow(-math.Log(u), 1/d.shape)
}

func (d weibull) String() string {
	return fmt.Sprintf("Weibull(shape=%g, scale=%g)", d.shape, d.scale)
}
