package simsrv

import (
	"math"
	"runtime"
	"testing"

	"psd/internal/control"
	"psd/internal/core"
	"psd/internal/dist"
	"psd/internal/queueing"
)

// fastConfig shrinks the horizon so unit tests stay quick; accuracy
// assertions use tolerances sized for it.
func fastConfig(deltas []float64, rho float64) Config {
	cfg := EqualLoadConfig(deltas, rho, nil)
	cfg.Warmup = 2000
	cfg.Horizon = 20000
	cfg.Seed = 1
	return cfg
}

func relErr(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no classes", func(c *Config) { c.Classes = nil }},
		{"bad delta", func(c *Config) { c.Classes[0].Delta = 0 }},
		{"negative lambda", func(c *Config) { c.Classes[0].Lambda = -1 }},
		{"nan lambda", func(c *Config) { c.Classes[0].Lambda = math.NaN() }},
		{"zero history", func(c *Config) { c.HistoryWindows = -1 }},
		{"empty record range", func(c *Config) { c.RecordRequests = true; c.RecordFrom = 5; c.RecordTo = 5 }},
	}
	for _, tc := range cases {
		cfg := fastConfig([]float64{1, 2}, 0.5).ApplyDefaults()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
}

func TestApplyDefaults(t *testing.T) {
	cfg := (Config{Classes: []ClassConfig{{Delta: 1, Lambda: 0.1}}}).ApplyDefaults()
	if cfg.Window != 1000 || cfg.HistoryWindows != 5 || cfg.Warmup != 10000 || cfg.Horizon != 60000 {
		t.Fatalf("paper defaults not applied: %+v", cfg)
	}
	if cfg.Service == nil || cfg.Allocator == nil {
		t.Fatal("service/allocator defaults missing")
	}
	if cfg.Allocator.Name() != "psd" {
		t.Fatalf("default allocator = %s", cfg.Allocator.Name())
	}
}

func TestEqualLoadConfig(t *testing.T) {
	svc := dist.PaperDefault()
	cfg := EqualLoadConfig([]float64{1, 2, 4}, 0.6, svc)
	total := 0.0
	for _, c := range cfg.Classes {
		total += c.Lambda * svc.Mean()
	}
	if relErr(total, 0.6) > 1e-12 {
		t.Fatalf("total utilization %v, want 0.6", total)
	}
	if cfg.Classes[0].Lambda != cfg.Classes[1].Lambda {
		t.Fatal("per-class loads not equal")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.6)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Classes[0].Count != b.Classes[0].Count ||
		a.Classes[0].MeanSlowdown != b.Classes[0].MeanSlowdown ||
		a.Classes[1].MeanSlowdown != b.Classes[1].MeanSlowdown ||
		a.EventsProcessed != b.EventsProcessed {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a.Classes, b.Classes)
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.6)
	a, _ := Run(cfg)
	cfg.Seed = 2
	b, _ := Run(cfg)
	if a.Classes[0].MeanSlowdown == b.Classes[0].MeanSlowdown {
		t.Fatal("different seeds produced identical slowdowns")
	}
}

// TestMD1SingleClass pins the engine against the exact M/D/1 slowdown of
// Eq. 15: a single class owning the whole server with constant sizes.
func TestMD1SingleClass(t *testing.T) {
	det, _ := dist.NewDeterministic(1)
	cfg := Config{
		Classes: []ClassConfig{{Delta: 1, Lambda: 0.5}},
		Service: det,
		Warmup:  2000, Horizon: 40000, Seed: 7,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := queueing.MD1Slowdown(0.5, 1, 1)
	if relErr(res.Classes[0].MeanSlowdown, want) > 0.08 {
		t.Fatalf("M/D/1 slowdown %v, want %v (±8%%)", res.Classes[0].MeanSlowdown, want)
	}
	// Mean service time must be exactly 1 (full rate, constant size).
	if relErr(res.Classes[0].MeanService, 1) > 1e-9 {
		t.Fatalf("mean service %v, want 1", res.Classes[0].MeanService)
	}
}

// TestPKWaitSingleClass checks the engine's mean queueing delay against
// Pollaczek–Khinchin under the paper's Bounded Pareto. E[W] depends on the
// sample second moment, which converges slowly for α=1.5, so the check
// averages several replications and uses a correspondingly loose band.
func TestPKWaitSingleClass(t *testing.T) {
	svc := dist.PaperDefault()
	lambda := 0.6 / svc.Mean()
	var sum float64
	const runs = 10
	for seed := uint64(0); seed < runs; seed++ {
		cfg := Config{
			Classes: []ClassConfig{{Delta: 1, Lambda: lambda}},
			Warmup:  5000, Horizon: 60000, Seed: seed,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Classes[0].MeanDelay
	}
	got := sum / runs
	want, _ := queueing.PKWait(lambda, svc)
	if relErr(got, want) > 0.2 {
		t.Fatalf("mean delay %v, want %v (±20%%)", got, want)
	}
}

// TestSimMatchesEq18TwoClasses is the Figure 2 claim in miniature: the
// measured slowdowns track the model predictions.
func TestSimMatchesEq18TwoClasses(t *testing.T) {
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		cfg := fastConfig([]float64{1, 2}, rho)
		agg, err := RunReplications(cfg, 10)
		if err != nil {
			t.Fatal(err)
		}
		for i := range agg.MeanSlowdowns {
			if relErr(agg.MeanSlowdowns[i], agg.ExpectedSlowdowns[i]) > 0.2 {
				t.Errorf("rho=%v class %d: sim %v vs expected %v",
					rho, i, agg.MeanSlowdowns[i], agg.ExpectedSlowdowns[i])
			}
		}
	}
}

// TestRatiosTrackDeltas is the controllability claim (Figure 9): achieved
// mean slowdown ratios approximate δ ratios.
func TestRatiosTrackDeltas(t *testing.T) {
	for _, d2 := range []float64{2, 4} {
		cfg := fastConfig([]float64{1, d2}, 0.6)
		agg, err := RunReplications(cfg, 10)
		if err != nil {
			t.Fatal(err)
		}
		if relErr(agg.MeanRatios[1], d2) > 0.25 {
			t.Errorf("delta2=%v: achieved ratio %v", d2, agg.MeanRatios[1])
		}
	}
}

func TestThreeClassRatios(t *testing.T) {
	cfg := fastConfig([]float64{1, 2, 3}, 0.6)
	agg, err := RunReplications(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(agg.MeanRatios[1], 2) > 0.3 || relErr(agg.MeanRatios[2], 3) > 0.3 {
		t.Fatalf("three-class ratios = %v, want ≈ [_, 2, 3]", agg.MeanRatios)
	}
	// Predictability ordering: class 1 strictly best.
	if !(agg.MeanSlowdowns[0] < agg.MeanSlowdowns[1] && agg.MeanSlowdowns[1] < agg.MeanSlowdowns[2]) {
		t.Fatalf("slowdowns not ordered by class: %v", agg.MeanSlowdowns)
	}
}

func TestWorkConservingImprovesSystemSlowdown(t *testing.T) {
	base := fastConfig([]float64{1, 2}, 0.7)
	part, err := RunReplications(base, 6)
	if err != nil {
		t.Fatal(err)
	}
	wc := base
	wc.WorkConserving = true
	cons, err := RunReplications(wc, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Redistributing idle capacity cannot hurt aggregate performance;
	// allow a small tolerance for noise.
	if cons.SystemSlowdown > part.SystemSlowdown*1.05 {
		t.Fatalf("work-conserving system slowdown %v worse than partitioned %v",
			cons.SystemSlowdown, part.SystemSlowdown)
	}
}

func TestOracleModeReducesRatioSpread(t *testing.T) {
	noisy := fastConfig([]float64{1, 8}, 0.5)
	noisy.Seed = 3
	est, err := RunReplications(noisy, 16)
	if err != nil {
		t.Fatal(err)
	}
	oracle := noisy
	oracle.Oracle = true
	orc, err := RunReplications(oracle, 16)
	if err != nil {
		t.Fatal(err)
	}
	// §4.4: estimation error drives the gap at large δ; the oracle should
	// land at least as close to the target ratio of 8, up to sampling
	// noise. The absolute floor keeps the multiplicative slack meaningful
	// when the estimated arm happens to draw a near-zero gap: at this
	// fidelity both arms carry ~5% heavy-tail sampling error that has
	// nothing to do with estimation.
	gapEst := math.Abs(est.MeanRatios[1] - 8)
	gapOrc := math.Abs(orc.MeanRatios[1] - 8)
	if gapOrc > gapEst*1.5+0.4 {
		t.Fatalf("oracle ratio gap %v much worse than estimated %v", gapOrc, gapEst)
	}
}

func TestRecordRequests(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.5)
	cfg.RecordRequests = true
	cfg.RecordFrom = 10000
	cfg.RecordTo = 12000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no records captured")
	}
	for _, r := range res.Records {
		if r.Completion < 10000 || r.Completion >= 12000 {
			t.Fatalf("record outside range: %+v", r)
		}
		dur := r.Completion - r.ServiceStart
		delay := r.ServiceStart - r.Arrival
		if dur <= 0 || delay < 0 {
			t.Fatalf("inconsistent record times: %+v", r)
		}
		if relErr(r.Slowdown, delay/dur) > 1e-9 {
			t.Fatalf("slowdown %v != delay/duration %v", r.Slowdown, delay/dur)
		}
		if r.Class < 0 || r.Class > 1 {
			t.Fatalf("bad class: %+v", r)
		}
	}
}

func TestNoRecordsWhenDisabled(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.5)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatal("records captured despite RecordRequests=false")
	}
}

func TestThroughputConservation(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.6)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, cc := range cfg.Classes {
		wantCount := cc.Lambda * cfg.Horizon
		got := float64(res.Classes[i].Count)
		// Completions during [warmup, warmup+horizon] ≈ arrivals in an
		// equally long interval; 10% covers Poisson noise and boundary
		// effects at this horizon.
		if math.Abs(got-wantCount)/wantCount > 0.1 {
			t.Errorf("class %d completions %v, want ≈ %v", i, got, wantCount)
		}
	}
}

func TestZeroLambdaClassDoesNotBreak(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.5)
	cfg.Classes[1].Lambda = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes[1].Count != 0 {
		t.Fatalf("idle class measured %d requests", res.Classes[1].Count)
	}
	if res.Classes[0].Count == 0 {
		t.Fatal("active class starved")
	}
}

func TestPerClassServiceOverride(t *testing.T) {
	det, _ := dist.NewDeterministic(0.2)
	cfg := fastConfig([]float64{1, 2}, 0.5)
	cfg.Classes[0].Service = det
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Class 0's sizes are all 0.2; its mean service time is 0.2/rate,
	// which must be at least 0.2 (rate ≤ 1).
	if res.Classes[0].MeanService < 0.2 {
		t.Fatalf("override ignored: mean service %v < 0.2", res.Classes[0].MeanService)
	}
}

func TestBaselineDemandProportionalNoDifferentiation(t *testing.T) {
	cfg := fastConfig([]float64{1, 4}, 0.6)
	cfg.Allocator = core.DemandProportional{}
	agg, err := RunReplications(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Demand-proportional equalizes slowdowns: ratio ≈ 1, far from 4.
	if agg.MeanRatios[1] > 1.5 {
		t.Fatalf("demand-proportional ratio %v, expected ≈ 1", agg.MeanRatios[1])
	}
}

func TestWindowRatioSkipsEmptyWindows(t *testing.T) {
	res := &Result{Classes: []ClassStats{
		{WindowMeans: []float64{1, math.NaN(), 2, 4}},
		{WindowMeans: []float64{2, 3, math.NaN(), 8}},
	}}
	ratios := res.WindowRatio(1, 0)
	if len(ratios) != 2 || ratios[0] != 2 || ratios[1] != 2 {
		t.Fatalf("ratios = %v, want [2 2]", ratios)
	}
}

func TestRunReplicationsValidation(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.5)
	if _, err := RunReplications(cfg, 0); err == nil {
		t.Fatal("accepted zero replications")
	}
}

func TestAggregateFields(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.5)
	agg, err := RunReplications(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 5 {
		t.Fatalf("runs = %d", agg.Runs)
	}
	if !(agg.CI95[0] > 0) || !(agg.CI95[1] > 0) {
		t.Fatalf("CI95 not positive: %v", agg.CI95)
	}
	rs := agg.RatioSummaries[1]
	if !(rs.P05 <= rs.P50 && rs.P50 <= rs.P95) {
		t.Fatalf("ratio percentiles unordered: %+v", rs)
	}
	if rs.N == 0 {
		t.Fatal("no pooled window ratios")
	}
	sys := ExpectedSystemSlowdown(cfg, agg)
	if math.IsNaN(sys) || sys <= 0 {
		t.Fatalf("expected system slowdown = %v", sys)
	}
}

func TestReplicationsDeterministic(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.5)
	a, err := RunReplications(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReplications(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.MeanSlowdowns {
		if a.MeanSlowdowns[i] != b.MeanSlowdowns[i] {
			t.Fatalf("aggregate not deterministic: %v vs %v", a.MeanSlowdowns, b.MeanSlowdowns)
		}
	}
}

// TestReplicationsParallelMatchesSequential forces the worker-pool path
// (GOMAXPROCS may be 1 on the reference container, which would otherwise
// only ever exercise the sequential fast path) and checks that the
// reorder-buffer aggregation produces the exact sequential result.
func TestReplicationsParallelMatchesSequential(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.6)
	seq, err := RunReplications(cfg, 6) // n > GOMAXPROCS not guaranteed; force below
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	par, err := RunReplications(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if prev >= 6 {
		t.Log("GOMAXPROCS already exceeded n; both runs used the pool")
	}
	for i := range seq.MeanSlowdowns {
		if seq.MeanSlowdowns[i] != par.MeanSlowdowns[i] {
			t.Fatalf("parallel aggregation diverged: %v vs %v", seq.MeanSlowdowns, par.MeanSlowdowns)
		}
	}
	if seq.SystemSlowdown != par.SystemSlowdown ||
		seq.EventsProcessed != par.EventsProcessed ||
		seq.RatioSummaries[1] != par.RatioSummaries[1] {
		t.Fatalf("parallel aggregate diverged: %+v vs %+v", seq, par)
	}
}

func TestHighLoadStability(t *testing.T) {
	// At 95% the estimator occasionally sees ρ̂ ≥ 1; the run must survive
	// via the keep-previous-rates fallback and still differentiate.
	cfg := fastConfig([]float64{1, 2}, 0.95)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes[0].Count == 0 || res.Classes[1].Count == 0 {
		t.Fatal("classes starved at high load")
	}
	if res.Classes[0].MeanSlowdown >= res.Classes[1].MeanSlowdown {
		t.Fatalf("ordering violated at 95%% load: %v vs %v",
			res.Classes[0].MeanSlowdown, res.Classes[1].MeanSlowdown)
	}
}

// TestEstimatorAxis pins the estimator as a scenario dimension: both
// kinds run deterministically through the full simulator and produce
// distinct (but same-order-of-magnitude) trajectories, and an invalid
// kind is rejected up front.
func TestEstimatorAxis(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.6)
	win, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Estimator = control.EWMA
	ew, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ew2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ew.SystemSlowdown != ew2.SystemSlowdown || ew.EventsProcessed != ew2.EventsProcessed {
		t.Fatal("EWMA mode not deterministic per seed")
	}
	// Same arrival streams, different smoothing: the realized rate
	// trajectories — and therefore completions — must differ.
	if win.SystemSlowdown == ew.SystemSlowdown {
		t.Fatal("window and EWMA estimation produced identical trajectories")
	}
	if !(ew.Classes[0].MeanSlowdown < ew.Classes[1].MeanSlowdown) {
		t.Fatalf("EWMA mode lost differentiation: %v vs %v",
			ew.Classes[0].MeanSlowdown, ew.Classes[1].MeanSlowdown)
	}

	bad := fastConfig([]float64{1, 2}, 0.5)
	bad.Estimator = control.EstimatorKind(99)
	if err := bad.ApplyDefaults().Validate(); err == nil {
		t.Fatal("accepted unknown estimator kind")
	}
	badAlpha := fastConfig([]float64{1, 2}, 0.5)
	badAlpha.Estimator = control.EWMA
	badAlpha.EWMAAlpha = 1.5
	if err := badAlpha.ApplyDefaults().Validate(); err == nil {
		t.Fatal("accepted out-of-range EWMA alpha")
	}
}

func BenchmarkRunTwoClasses(b *testing.B) {
	cfg := EqualLoadConfig([]float64{1, 2}, 0.7, nil)
	cfg.Warmup = 1000
	cfg.Horizon = 10000
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
