package core

import (
	"fmt"
	"math"
)

// HeterogeneousPSD generalizes the paper's Eq. 17 to classes with
// *different* job-size distributions — the situation that defeats the PDD
// baseline outright. With per-class moments E[X_i], E[X_i²], E[1/X_i]
// (all measured against the full server's unit rate), Theorem 1 gives
//
//	E[S_i] = λ_i·C_i / (r_i − λ_i·E[X_i]),   C_i = E[X_i²]·E[1/X_i]/2
//
// and imposing E[S_i] = A·δ_i with Σ r_i = 1 stays linear in 1/A:
//
//	r_i = λ_i·E[X_i] + (λ_i·C_i/δ_i) · (1 − ρ) / Σ_j (λ_j·C_j/δ_j)
//
// which collapses to Eq. 17 when every class shares one distribution
// (the common C cancels). The paper's §6 notes its model assumes one
// shared Bounded Pareto; this allocator removes that assumption while
// preserving the closed form, and the simulator's per-class service
// overrides exercise it end to end.
type HeterogeneousPSD struct{}

// Name implements Allocator (for the shared-workload interface).
func (HeterogeneousPSD) Name() string { return "hpsd" }

// Allocate implements Allocator for the degenerate shared-distribution
// case: every class gets Workload w. It exists so HeterogeneousPSD can
// drop into any Allocator slot; with a shared law it returns exactly the
// PSD allocation.
func (h HeterogeneousPSD) Allocate(classes []Class, w Workload) (Allocation, error) {
	ws := make([]Workload, len(classes))
	for i := range ws {
		ws[i] = w
	}
	return h.AllocatePerClass(classes, ws)
}

// AllocatePerClass computes the generalized allocation for per-class
// workloads. classes[i] pairs with workloads[i].
func (HeterogeneousPSD) AllocatePerClass(classes []Class, workloads []Workload) (Allocation, error) {
	if len(classes) == 0 {
		return Allocation{}, fmt.Errorf("%w: no classes", ErrInfeasible)
	}
	if len(workloads) != len(classes) {
		return Allocation{}, fmt.Errorf("%w: %d workloads for %d classes",
			ErrInfeasible, len(workloads), len(classes))
	}
	rho := 0.0
	for i, c := range classes {
		if err := workloads[i].Validate(); err != nil {
			return Allocation{}, fmt.Errorf("class %d: %w", i, err)
		}
		if !(c.Delta > 0) || math.IsInf(c.Delta, 0) || math.IsNaN(c.Delta) {
			return Allocation{}, fmt.Errorf("%w: class %d delta %v", ErrInfeasible, i, c.Delta)
		}
		if c.Lambda < 0 || math.IsInf(c.Lambda, 0) || math.IsNaN(c.Lambda) {
			return Allocation{}, fmt.Errorf("%w: class %d lambda %v", ErrInfeasible, i, c.Lambda)
		}
		rho += c.Lambda * workloads[i].MeanSize
	}
	if rho >= 1 {
		return Allocation{}, fmt.Errorf("%w: utilization %.4f >= 1", ErrInfeasible, rho)
	}

	// Σ_j λ_j·C_j/δ_j — the δ- and burstiness-scaled demand.
	sumScaled := 0.0
	for i, c := range classes {
		sumScaled += c.Lambda * workloads[i].SlowdownConstant() / c.Delta
	}
	alloc := Allocation{
		Rates:             make([]float64, len(classes)),
		ExpectedSlowdowns: make([]float64, len(classes)),
		Utilization:       rho,
	}
	if sumScaled == 0 {
		for i := range alloc.Rates {
			alloc.Rates[i] = 1 / float64(len(classes))
		}
		return alloc, nil
	}
	surplus := 1 - rho
	// A is the common slowdown-per-δ level: E[S_i] = A·δ_i.
	a := sumScaled / surplus
	for i, c := range classes {
		ci := workloads[i].SlowdownConstant()
		alloc.Rates[i] = c.Lambda*workloads[i].MeanSize + (c.Lambda*ci/c.Delta)*surplus/sumScaled
		if c.Lambda == 0 {
			continue
		}
		alloc.ExpectedSlowdowns[i] = a * c.Delta
	}
	return alloc, nil
}

// SlowdownUnderRatesPerClass evaluates Theorem 1 per class under
// arbitrary rates with per-class workloads (the heterogeneous analogue of
// SlowdownUnderRates).
func SlowdownUnderRatesPerClass(classes []Class, workloads []Workload, rates []float64) ([]float64, error) {
	if len(rates) != len(classes) || len(workloads) != len(classes) {
		return nil, fmt.Errorf("core: mismatched lengths: %d classes, %d workloads, %d rates",
			len(classes), len(workloads), len(rates))
	}
	out := make([]float64, len(classes))
	for i, c := range classes {
		if err := workloads[i].Validate(); err != nil {
			return nil, fmt.Errorf("class %d: %w", i, err)
		}
		if c.Lambda == 0 {
			continue
		}
		surplus := rates[i] - c.Lambda*workloads[i].MeanSize
		if surplus <= 0 {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = c.Lambda * workloads[i].SlowdownConstant() / surplus
	}
	return out, nil
}

var _ Allocator = HeterogeneousPSD{}
