// Package admission provides the admission-control substrate discussed in
// the paper's related work (§5): overload protection that complements —
// but cannot replace — proportional rate allocation. [Abdelzaher et al.]
// keep server utilization below a pre-computed bound via admission
// control; [Lee et al.] combine admission control with priority
// scheduling for proportional delay differentiation. The Eq. 17 allocator
// requires ρ < 1 to be feasible at all, so a production deployment fronts
// the task servers with one of these controllers.
//
// Controllers are deliberately clock-explicit (the caller passes `now` in
// simulation time units) so the same implementations serve the
// discrete-event simulator and — with seconds as the unit — a live
// server.
package admission

import (
	"errors"
	"fmt"
	"math"
)

// Controller decides whether an arriving request is admitted.
type Controller interface {
	// Admit reports whether a request of the given class and size (work
	// units) arriving at time now may enter the system, accounting for
	// it if admitted.
	Admit(class int, size, now float64) bool
	// Name identifies the policy.
	Name() string
}

// Refunder is implemented by controllers that can return admission
// credit when an admitted request is dropped before reaching service
// (e.g. its class queue turned out to be full): without the refund the
// gate's admitted-load state double-counts demand that was never served
// and sheds later traffic below the contracted rate. now must be from
// the same clock as Admit.
type Refunder interface {
	Refund(class int, size, now float64)
}

// ClassIsolated marks controllers whose Admit/Refund calls for class i
// read and write only class-i state, so calls for different classes may
// run concurrently under per-class serialization (each class's calls
// still mutually excluded). TokenBucket qualifies — class i's bucket is
// tokens[i]/last[i] and the shared Rates/Burst are read-only after
// construction. UtilizationBound does not: its leaky integrator is one
// global level shared by every class.
type ClassIsolated interface {
	// ClassIsolated is a marker; implementations promise the contract
	// above.
	ClassIsolated()
}

// AlwaysAdmit admits everything — the open-door control.
type AlwaysAdmit struct{}

// ClassIsolated implements the marker: AlwaysAdmit has no state at all.
func (AlwaysAdmit) ClassIsolated() {}

// Name implements Controller.
func (AlwaysAdmit) Name() string { return "always" }

// Admit implements Controller.
func (AlwaysAdmit) Admit(int, float64, float64) bool { return true }

// UtilizationBound admits work while the exponentially smoothed admitted
// load stays below Bound (work units per time unit against a unit-capacity
// server) — the [Abdelzaher et al.] style utilization guard. Admitted work
// is tracked as a leaky integrator with time constant Tau: at any instant
// the estimated admitted load is level/Tau, and a request is admitted iff
// (level + size)/Tau ≤ Bound.
type UtilizationBound struct {
	Bound float64
	Tau   float64

	level float64
	last  float64
}

// NewUtilizationBound builds the controller; bound in (0, 1], tau > 0
// (larger tau tolerates longer bursts above the bound).
func NewUtilizationBound(bound, tau float64) (*UtilizationBound, error) {
	if !(bound > 0) || bound > 1 {
		return nil, fmt.Errorf("admission: bound %v must be in (0, 1]", bound)
	}
	if !(tau > 0) || math.IsInf(tau, 0) {
		return nil, fmt.Errorf("admission: tau %v must be positive and finite", tau)
	}
	return &UtilizationBound{Bound: bound, Tau: tau}, nil
}

// Name implements Controller.
func (u *UtilizationBound) Name() string { return "utilization" }

// Admit implements Controller.
func (u *UtilizationBound) Admit(_ int, size, now float64) bool {
	if now > u.last {
		u.level *= math.Exp(-(now - u.last) / u.Tau)
		u.last = now
	}
	if (u.level+size)/u.Tau > u.Bound {
		return false
	}
	u.level += size
	return true
}

// Refund implements Refunder: the dropped request's work leaves the
// leaky integrator. The decay since the charge is ignored (refunds
// follow their charge within a request's front-door latency, so the
// drift is negligible); the level is clamped at zero.
func (u *UtilizationBound) Refund(_ int, size, now float64) {
	if now > u.last {
		u.level *= math.Exp(-(now - u.last) / u.Tau)
		u.last = now
	}
	u.level -= size
	if u.level < 0 {
		u.level = 0
	}
}

// Load returns the current smoothed admitted load estimate at time now.
func (u *UtilizationBound) Load(now float64) float64 {
	level := u.level
	if now > u.last {
		level *= math.Exp(-(now - u.last) / u.Tau)
	}
	return level / u.Tau
}

// TokenBucket enforces a per-class work-rate contract: class i accrues
// credit at Rates[i] work units per time unit up to Burst, and a request
// is admitted iff its size fits the class's credit. Unlike the global
// UtilizationBound it protects classes from *each other* — a flash crowd
// in one class cannot consume another's admission headroom — which is the
// property the per-class task-server architecture wants at its door.
type TokenBucket struct {
	Rates []float64
	Burst float64

	tokens []float64
	last   []float64
}

// NewTokenBucket builds a per-class bucket controller. Every rate must be
// positive; burst > 0 is the per-class credit cap (work units).
func NewTokenBucket(rates []float64, burst float64) (*TokenBucket, error) {
	if len(rates) == 0 {
		return nil, errors.New("admission: no class rates")
	}
	for i, r := range rates {
		if !(r > 0) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("admission: rate[%d] = %v must be positive and finite", i, r)
		}
	}
	if !(burst > 0) {
		return nil, fmt.Errorf("admission: burst %v must be positive", burst)
	}
	tb := &TokenBucket{
		Rates:  append([]float64(nil), rates...),
		Burst:  burst,
		tokens: make([]float64, len(rates)),
		last:   make([]float64, len(rates)),
	}
	for i := range tb.tokens {
		tb.tokens[i] = burst // start full: initial bursts are legitimate
	}
	return tb, nil
}

// Name implements Controller.
func (tb *TokenBucket) Name() string { return "tokenbucket" }

// Admit implements Controller.
func (tb *TokenBucket) Admit(class int, size, now float64) bool {
	if class < 0 || class >= len(tb.Rates) {
		return false
	}
	if now > tb.last[class] {
		tb.tokens[class] += (now - tb.last[class]) * tb.Rates[class]
		if tb.tokens[class] > tb.Burst {
			tb.tokens[class] = tb.Burst
		}
		tb.last[class] = now
	}
	if tb.tokens[class] < size {
		return false
	}
	tb.tokens[class] -= size
	return true
}

// Refund implements Refunder: the dropped request's credit returns to
// its class bucket, capped at Burst.
func (tb *TokenBucket) Refund(class int, size, _ float64) {
	if class < 0 || class >= len(tb.Rates) {
		return
	}
	tb.tokens[class] += size
	if tb.tokens[class] > tb.Burst {
		tb.tokens[class] = tb.Burst
	}
}

// ClassIsolated implements the marker: class i's Admit and Refund touch
// only tokens[i] and last[i]; Rates and Burst are read-only after
// construction.
func (tb *TokenBucket) ClassIsolated() {}

// Tokens returns class i's current credit at time now.
func (tb *TokenBucket) Tokens(class int, now float64) float64 {
	if class < 0 || class >= len(tb.Rates) {
		return 0
	}
	t := tb.tokens[class]
	if now > tb.last[class] {
		t += (now - tb.last[class]) * tb.Rates[class]
		if t > tb.Burst {
			t = tb.Burst
		}
	}
	return t
}

var (
	_ Controller = AlwaysAdmit{}
	_ Controller = (*UtilizationBound)(nil)
	_ Controller = (*TokenBucket)(nil)
	_ Refunder   = (*UtilizationBound)(nil)
	_ Refunder   = (*TokenBucket)(nil)

	_ ClassIsolated = AlwaysAdmit{}
	_ ClassIsolated = (*TokenBucket)(nil)
)
