package main

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"psd/internal/httpsrv"
)

// The live-contention scenario measures the sharded front door of the
// live server (internal/httpsrv) under in-process parallel load: N
// client goroutines hammer the admitted path (admission → class queue →
// paced service → striped completion accounting) through Server.Do,
// once at GOMAXPROCS=1 and once at GOMAXPROCS=min(NumCPU, 8). The
// ratio of the two throughputs is the scaling number the lock-free
// redesign exists to improve — on the old single-mutex design every
// request serialized on cr.mu, so the ratio pinned near (or below) 1
// regardless of core count.
//
// Two gates in -compare mode:
//
//   - allocs/request ≤ allocsPerReqGate always: the steady-state
//     admitted path must not allocate (jobs and completion channels are
//     pooled, window accounting is striped atomics);
//   - speedup, scaled to the hardware the run actually had: ≥ 0.5·P on
//     a box with ≥ 4 cores (P = storm parallelism), ≥ 1.0 on 2–3
//     cores, and skipped with a note on a single core, where "parallel"
//     throughput is just context-switch overhead.
const (
	allocsPerReqGate = 0.01

	// liveClients goroutines issue liveRequests requests in total,
	// spread evenly across classes; each client blocks on its request's
	// completion before issuing the next, so in-flight load stays
	// bounded well under the queue capacity.
	liveClients  = 16
	liveRequests = 96_000

	// liveSize is exactly representable (2⁻⁶) and tiny relative to the
	// 2 ms reallocation window, so paced service never becomes the
	// bottleneck and the measurement stays on the contention path.
	liveSize = 0.015625
)

// liveSpeedupFloor returns the minimum acceptable parallel/serial
// throughput ratio for a storm run at `procs` on a machine with `cores`
// CPUs, and false when the hardware cannot support a meaningful gate.
func liveSpeedupFloor(procs, cores int) (float64, bool) {
	eff := procs
	if cores < eff {
		eff = cores
	}
	switch {
	case cores >= 4:
		return 0.5 * float64(eff), true
	case cores >= 2:
		return 1.0, true
	default:
		return 0, false
	}
}

// liveStorm runs one full storm at the given GOMAXPROCS and returns the
// measured throughput and allocations per request. Each storm gets a
// fresh server so the two passes are identical apart from parallelism.
func liveStorm(deltas []float64, procs int) (reqsPerSec, allocsPerReq float64, err error) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	srv, err := httpsrv.New(httpsrv.Config{
		Deltas:          deltas,
		TimeUnit:        time.Microsecond,
		Window:          2000, // real reallocation ticks every 2 ms
		WorkersPerClass: 2,
	})
	if err != nil {
		return 0, 0, err
	}
	defer srv.Close()

	ctx := context.Background()
	nc := len(deltas)
	// Warm the job pool, the worker goroutines, and the metric catalog
	// so one-time costs stay out of the measured section.
	for i := 0; i < 2048; i++ {
		if _, st := srv.Do(ctx, i%nc, liveSize); st != httpsrv.Served {
			return 0, 0, fmt.Errorf("warmup request rejected: %v", st)
		}
	}

	perClient := liveRequests / liveClients
	errs := make([]error, liveClients)
	var wg sync.WaitGroup
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for g := 0; g < liveClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			class := g % nc
			for i := 0; i < perClient; i++ {
				if _, st := srv.Do(ctx, class, liveSize); st != httpsrv.Served {
					errs[g] = fmt.Errorf("client %d: request %d rejected: %v", g, i, st)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)
	for _, e := range errs {
		if e != nil {
			return 0, 0, e
		}
	}
	total := float64(perClient * liveClients)
	return total / wall, float64(ms1.Mallocs-ms0.Mallocs) / total, nil
}

// runLiveContention runs the serial baseline storm and the parallel
// storm and reports throughput, speedup, and the allocation rate of the
// parallel (contended) pass — the harder of the two for a pooled,
// striped design to keep at zero.
func runLiveContention(sc scenario) (scenarioResult, error) {
	cores := runtime.NumCPU()
	procs := cores
	if procs > 8 {
		procs = 8
	}
	if procs < 2 {
		procs = 2 // still storm with oversubscribed goroutines on 1 core
	}

	serialRPS, _, err := liveStorm(sc.deltas, 1)
	if err != nil {
		return scenarioResult{}, err
	}
	parRPS, allocsPerReq, err := liveStorm(sc.deltas, procs)
	if err != nil {
		return scenarioResult{}, err
	}

	return scenarioResult{
		Name:             sc.name,
		Classes:          len(sc.deltas),
		Model:            "live-contention",
		Requests:         liveRequests,
		WallSeconds:      float64(liveRequests)/serialRPS + float64(liveRequests)/parRPS,
		ReqsPerSec:       parRPS,
		SerialReqsPerSec: serialRPS,
		Speedup:          parRPS / serialRPS,
		StormProcs:       procs,
		StormCores:       cores,
		AllocsPerReq:     allocsPerReq,
	}, nil
}
