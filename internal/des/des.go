// Package des is a minimal, allocation-free discrete-event simulation
// core: a simulation clock plus a pending-event set ordered by
// (time, insertion sequence).
//
// # Design
//
// The pending set is a value-typed 4-ary implicit heap of small entries
// (time, seq, slot). Event state — the handler, its typed payload, and the
// slot's generation counter — lives in a flat slot arena reused through a
// free list, so a steady-state simulation performs zero per-event heap
// allocations: Schedule pops a free slot, firing or canceling pushes it
// back. A 4-ary heap trades slightly more comparisons per level for half
// the depth and far better cache behavior than the pointer-based binary
// heap it replaced, and sift operations move 24-byte values instead of
// chasing *Event pointers through the GC heap.
//
// Events carry a typed (Handler, kind, data) triple instead of a captured
// func() closure. Handlers are usually long-lived simulation objects (one
// per model), so scheduling an event allocates nothing; the closure-based
// API it replaces allocated an Event plus a capture environment for every
// single event.
//
// # Handles and cancellation
//
// Schedule returns an EventID — a packed (slot, generation) handle, not a
// pointer. Cancel and Active validate the generation: once an event fires
// or is canceled its slot's generation is bumped, so a stale handle held
// by the caller can never affect an unrelated event that happens to reuse
// the slot. The zero EventID is never issued and is safely inert, which
// lets callers use it as "no event pending".
//
// Cancellation is EAGER: Cancel removes the entry from the heap
// immediately (O(log₄ n) via the slot's tracked heap position) and
// recycles the slot. This keeps the pending set tight under the
// cancel/reschedule churn of the task servers, which reschedule
// completions on every rate change.
//
// # Determinism
//
// Determinism is a design requirement — the paper's experiments average
// 100 independent replications, and reproducing a replication exactly
// (given its seed) is what makes the figure harness and the regression
// tests meaningful. The heap orders events by the total order
// (time, seq): seq is a monotone insertion counter, so simultaneous
// events fire in FIFO schedule order, and no two events ever compare
// equal. Eager removal cannot perturb this — deleting an element from a
// heap never reorders the survivors of a total order, so the fire
// sequence of the remaining events is independent of when (or whether)
// other events were canceled. The same argument covers slot reuse: slot
// numbers never participate in ordering, only (time, seq) do.
package des

import (
	"errors"
	"math"
)

// Handler receives dispatched events. Implementations are typically
// long-lived simulation objects (a model runner) that switch on kind;
// kind and data are opaque to the simulator.
type Handler interface {
	HandleEvent(kind, data int32)
}

// HandlerFunc adapts a function to Handler. Note that constructing a
// closure allocates; hot paths should implement Handler on a long-lived
// struct instead.
type HandlerFunc func(kind, data int32)

// HandleEvent calls f.
func (f HandlerFunc) HandleEvent(kind, data int32) { f(kind, data) }

// EventID is a generation-checked handle to a scheduled event. The zero
// value is never issued and is inert: canceling or querying it is a no-op.
// A handle goes stale as soon as its event fires or is canceled; stale
// handles are detected and ignored even if the underlying slot has been
// reused.
type EventID uint64

// None is the zero EventID, meaning "no event".
const None EventID = 0

func makeID(slot int32, gen uint32) EventID {
	return EventID(uint64(slot+1) | uint64(gen)<<32)
}

func (id EventID) split() (slot int32, gen uint32) {
	return int32(uint32(id)) - 1, uint32(id >> 32)
}

// slotState is the arena record backing one live or free event slot.
type slotState struct {
	h    Handler
	kind int32
	data int32
	gen  uint32 // bumped on every release; validates EventIDs
	pos  int32  // current heap index, -1 when not enqueued
}

// heapEntry is one pending event in the 4-ary implicit heap. The ordering
// key (time, seq) is stored inline so comparisons never touch the arena.
type heapEntry struct {
	time float64
	seq  uint64
	slot int32
}

// Simulator owns the clock and the pending-event set. The zero value is a
// simulator at time 0 with no events.
type Simulator struct {
	now       float64
	seq       uint64
	processed uint64
	heap      []heapEntry
	slots     []slotState
	free      []int32 // recycled slot indices (LIFO)
}

// New returns an empty simulator at time zero.
func New() *Simulator { return &Simulator{} }

// Reset returns the simulator to its freshly constructed state — time
// zero, no pending events, sequence and processed counters cleared —
// while retaining the heap and slot arena capacity. A reset simulator
// behaves identically to a new one (same seq numbering, hence the same
// (time, seq) fire order for the same schedule calls), which is what lets
// a replication arena be replayed with bit-identical results. All
// outstanding EventIDs go stale: every retained slot's generation is
// bumped, exactly as release would, so the "stale handles are detected
// and ignored even if the underlying slot has been reused" guarantee
// holds across Reset too. (Slot numbers never participate in event
// ordering, so handing the recycled slots out in a different order than
// a fresh simulator would is unobservable.)
func (s *Simulator) Reset() {
	s.now = 0
	s.seq = 0
	s.processed = 0
	s.heap = s.heap[:0]
	s.free = s.free[:0]
	for i := range s.slots {
		st := &s.slots[i]
		st.h = nil
		st.gen++
		st.pos = -1
		s.free = append(s.free, int32(i))
	}
}

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events currently scheduled. Canceled
// events are removed eagerly and do not count.
func (s *Simulator) Pending() int { return len(s.heap) }

// ErrPast reports scheduling before the current simulation time.
var ErrPast = errors.New("des: cannot schedule event in the past")

// Schedule registers h to receive (kind, data) after the given
// non-negative delay and returns the event's handle. It panics on
// negative or NaN delays — scheduling into the past is always a
// programming error in a discrete-event model.
func (s *Simulator) Schedule(delay float64, h Handler, kind, data int32) EventID {
	if delay < 0 || math.IsNaN(delay) {
		panic(ErrPast)
	}
	return s.ScheduleAt(s.now+delay, h, kind, data)
}

// ScheduleAt registers h to receive (kind, data) at absolute time
// t ≥ Now().
func (s *Simulator) ScheduleAt(t float64, h Handler, kind, data int32) EventID {
	if t < s.now || math.IsNaN(t) {
		panic(ErrPast)
	}
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		slot = int32(len(s.slots))
		s.slots = append(s.slots, slotState{})
	}
	st := &s.slots[slot]
	st.h, st.kind, st.data = h, kind, data
	st.pos = int32(len(s.heap))
	s.heap = append(s.heap, heapEntry{time: t, seq: s.seq, slot: slot})
	s.seq++
	s.siftUp(len(s.heap) - 1)
	return makeID(slot, st.gen)
}

// Cancel prevents a scheduled event from firing and reports whether it
// did anything. Canceling the zero EventID, an already-fired, or an
// already-canceled event is a no-op returning false — the generation
// check makes stale handles harmless even after their slot is reused.
func (s *Simulator) Cancel(id EventID) bool {
	slot, gen := id.split()
	if slot < 0 || int(slot) >= len(s.slots) {
		return false
	}
	st := &s.slots[slot]
	if st.gen != gen || st.pos < 0 {
		return false
	}
	s.removeAt(int(st.pos))
	s.release(slot)
	return true
}

// Active reports whether the handle refers to a still-pending event.
func (s *Simulator) Active(id EventID) bool {
	slot, gen := id.split()
	if slot < 0 || int(slot) >= len(s.slots) {
		return false
	}
	st := &s.slots[slot]
	return st.gen == gen && st.pos >= 0
}

// EventTime returns the scheduled fire time of a still-pending event.
func (s *Simulator) EventTime(id EventID) (float64, bool) {
	slot, gen := id.split()
	if slot < 0 || int(slot) >= len(s.slots) {
		return 0, false
	}
	st := &s.slots[slot]
	if st.gen != gen || st.pos < 0 {
		return 0, false
	}
	return s.heap[st.pos].time, true
}

// release recycles a slot: the generation bump invalidates every
// outstanding handle to it, and dropping the Handler reference keeps the
// arena from pinning dead model objects.
func (s *Simulator) release(slot int32) {
	st := &s.slots[slot]
	st.h = nil
	st.gen++
	st.pos = -1
	s.free = append(s.free, slot)
}

// Step executes the next event, if any, and reports whether one ran.
func (s *Simulator) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	root := s.heap[0]
	st := &s.slots[root.slot]
	h, kind, data := st.h, st.kind, st.data
	s.now = root.time
	s.removeAt(0)
	s.release(root.slot)
	s.processed++
	// Dispatch after the slot is recycled so the handler may schedule new
	// events (possibly into this very slot) and a stale handle to the
	// fired event is already invalid.
	h.HandleEvent(kind, data)
	return true
}

// RunUntil executes events in order until the clock would pass horizon;
// the clock finishes exactly at horizon. Events scheduled at exactly the
// horizon DO fire (closed interval), matching the "measure for 60,000 time
// units" convention.
func (s *Simulator) RunUntil(horizon float64) {
	for len(s.heap) > 0 && s.heap[0].time <= horizon {
		s.Step()
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// Run executes events until none remain.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// Drain discards all pending events without running them. Handles to the
// discarded events go stale.
func (s *Simulator) Drain() {
	for _, e := range s.heap {
		s.release(e.slot)
	}
	s.heap = s.heap[:0]
}

// ---------------------------------------------------------------------------
// 4-ary implicit heap ordered by (time, seq), with slot→position tracking.

// less is the strict total order on heap entries. seq values are unique,
// so no two entries ever compare equal — this is what makes the fire
// order independent of heap internals and cancellation timing.
func less(a, b heapEntry) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (s *Simulator) siftUp(i int) {
	h := s.heap
	e := h[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !less(e, h[parent]) {
			break
		}
		h[i] = h[parent]
		s.slots[h[i].slot].pos = int32(i)
		i = parent
	}
	h[i] = e
	s.slots[e.slot].pos = int32(i)
}

func (s *Simulator) siftDown(i int) {
	h := s.heap
	n := len(h)
	e := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		// Find the smallest of up to four children.
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(h[c], h[min]) {
				min = c
			}
		}
		if !less(h[min], e) {
			break
		}
		h[i] = h[min]
		s.slots[h[i].slot].pos = int32(i)
		i = min
	}
	h[i] = e
	s.slots[e.slot].pos = int32(i)
}

// removeAt deletes the heap entry at index i, restoring the heap
// invariant. The caller is responsible for releasing the entry's slot.
func (s *Simulator) removeAt(i int) {
	n := len(s.heap) - 1
	last := s.heap[n]
	s.heap = s.heap[:n]
	if i == n {
		return
	}
	s.heap[i] = last
	s.slots[last.slot].pos = int32(i)
	// The displaced element may need to move either direction.
	if i > 0 && less(last, s.heap[(i-1)>>2]) {
		s.siftUp(i)
	} else {
		s.siftDown(i)
	}
}
