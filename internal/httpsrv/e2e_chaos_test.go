// Chaos end-to-end: loadgen → httpsrv with a mid-run fault phase. The
// deterministic fault mechanics (watchdog freeze, ladder ordering, guard
// rejection) are pinned by the internal robustness tests; this harness
// proves the whole stack rides out a fault storm — corrupted control
// inputs, dropped ticks, worker stalls, slow-loris clients, overload —
// and RECOVERS: degradation unwinds, the watchdog clears, and the
// achieved slowdown ratios re-converge once the faults stop.
package httpsrv_test

import (
	"context"
	"math"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"psd/internal/admission"
	"psd/internal/chaos"
	"psd/internal/dist"
	"psd/internal/httpsrv"
	"psd/internal/loadgen"
)

func TestE2EChaosRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e harness skipped in -short")
	}
	const target = 2.0 // δ₁/δ₀
	sizes, err := dist.NewUniform(0.5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := chaos.New(chaos.Config{
		Seed:        17,
		CorruptProb: 0.8, // most surviving ticks carry poisoned inputs
		DropProb:    0.6, // drop runs starve the loop past the watchdog threshold
		StallProb:   0.02,
		StallDur:    40 * time.Millisecond,
		Loris:       chaos.SlowLoris{Conns: 4, Interval: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Disarm() // armed only for the fault phase

	gate, err := admission.NewUtilizationBound(0.9, 25)
	if err != nil {
		t.Fatal(err)
	}
	// Aggressive engage settings: ρ̂ hovers at the saturation boundary
	// under a full-queue overload (admitted work ≈ capacity), so a lazy
	// engage streak would let in-band ticks keep resetting it.
	ladder, err := admission.NewLadder(admission.LadderConfig{
		Multipliers: []float64{2, 4},
		EngageAfter: 1,
		EngageRho:   0.9,
	}, []float64{1, target})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := httpsrv.New(httpsrv.Config{
		Deltas:   []float64{1, target},
		Service:  sizes,
		TimeUnit: time.Millisecond,
		Window:   25, // reallocate every 25ms
		// Small queues so sustained overload hits queue-full fast: the
		// fail-fast 503s keep the client's attempt rate high, which keeps
		// the ADMITTED work rate pinned at server capacity (ρ̂ ≈ 1) — shed
		// traffic deliberately never feeds the estimator.
		QueueCapacity:  64,
		Feedback:       true,
		Admission:      gate,
		Ladder:         ladder,
		WatchdogFactor: 2, // stale after 50ms: two dropped ticks in a row
		Chaos:          inj,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Mux())
	defer func() { ts.Close(); srv.Close() }()

	run := func(lambda float64, d time.Duration, withLoris bool) *loadgen.Report {
		t.Helper()
		cfg := loadgen.Config{
			BaseURL:    ts.URL + "/",
			TimeUnit:   time.Millisecond,
			Service:    sizes,
			Lambdas:    []float64{lambda, lambda},
			Duration:   d,
			Drain:      300 * time.Millisecond,
			Workers:    512,
			MaxPending: 8192,
			Timeout:    time.Second,
			MaxRetries: 1,
			Seed:       3,
		}
		if withLoris {
			cfg.Chaos = inj
		}
		rep, err := loadgen.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	// Phase A: clean convergence at ρ ≈ 0.6.
	run(0.30, 1500*time.Millisecond, false)

	// Phase B: faults armed + ρ ≈ 2.4 offered overload. A poller tracks
	// the ladder's high-water mark — recovery legitimately begins during
	// the drain, so end-of-phase state alone would under-report it.
	var maxLevel, sawShed atomic.Int64
	pollCtx, pollStop := context.WithCancel(context.Background())
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for {
			select {
			case <-pollCtx.Done():
				return
			case <-time.After(10 * time.Millisecond):
				doc := srv.Snapshot()
				for _, cm := range doc.Classes {
					if int64(cm.DegradationLevel) > maxLevel.Load() {
						maxLevel.Store(int64(cm.DegradationLevel))
					}
				}
				if doc.LadderShedding {
					sawShed.Store(1)
				}
			}
		}
	}()
	inj.Arm()
	repB := run(1.2, 3*time.Second, true)
	docB := srv.Snapshot()
	inj.Disarm()
	pollStop()
	<-pollDone

	if docB.TickInputRejected < 1 {
		t.Errorf("no corrupted control inputs were rejected during the fault phase")
	}
	if docB.WatchdogStaleTicks < 1 {
		t.Errorf("dropped-tick runs never tripped the stale-tick watchdog")
	}
	if maxLevel.Load() < 1 {
		t.Errorf("sustained overload did not engage the degradation ladder: %+v", docB.Classes[1])
	}
	if sawShed.Load() == 0 {
		t.Errorf("ladder never maxed out under sustained overload (shed gate stayed closed)")
	}
	if c := inj.Counts(); c.CorruptTicks < 1 || c.DroppedTicks < 1 || c.LorisBytes < 1 {
		t.Errorf("fault schedule thinner than configured: %+v", c)
	}
	if repB.Classes[0].Retries+repB.Classes[1].Retries < 1 {
		t.Errorf("overload produced no client retries: %+v", repB.Classes)
	}

	// Phase C: faults off, load back to ρ ≈ 0.6. A short settle phase
	// absorbs the backlog drain and the ladder/feedback unwind; the
	// measured phase after it must look like a healthy server again.
	run(0.30, 1500*time.Millisecond, false)
	repC := run(0.30, 3*time.Second, false)
	docC := srv.Snapshot()

	for i, cm := range docC.Classes {
		if cm.DegradationLevel != 0 {
			t.Errorf("class %d still degraded (level %d) after recovery", i, cm.DegradationLevel)
		}
	}
	if docC.LadderShedding {
		t.Error("shed gate still open after recovery")
	}
	if docC.WatchdogStalled {
		t.Error("watchdog still flags a stall after recovery")
	}
	if docC.Reallocations <= docB.Reallocations {
		t.Errorf("control loop did not resume: %d -> %d reallocations", docB.Reallocations, docC.Reallocations)
	}

	c0, c1 := repC.Classes[0], repC.Classes[1]
	if c0.Completed < 300 || c1.Completed < 300 {
		t.Skipf("recovery-phase throughput too low for a ratio check: %d/%d", c0.Completed, c1.Completed)
	}
	ratio := repC.SlowdownRatio(1)
	if math.IsNaN(ratio) {
		t.Fatalf("recovery ratio unavailable: %+v / %+v", c0, c1)
	}
	// Generous band (short phases, CI jitter, residual feedback trim).
	if ratio < target/1.8 || ratio > target*2.25 {
		t.Errorf("post-chaos ratio %.3f outside [%.2f, %.2f] (target %g)",
			ratio, target/1.8, target*2.25, target)
	}
}
