package stats

import "sort"

// P2 is the Jain & Chlamtac P² streaming quantile estimator: it tracks a
// single quantile in O(1) space without storing the sample. The simulator
// uses it for live percentile dashboards where retaining every slowdown
// would be wasteful; batch reports use exact Quantile instead.
type P2 struct {
	q       float64    // target quantile
	n       int        // observations seen
	heights [5]float64 // marker heights
	pos     [5]float64 // marker positions (1-based)
	desired [5]float64
	incr    [5]float64
	initial []float64
}

// NewP2 creates an estimator for the q-th quantile, q in (0,1).
func NewP2(q float64) *P2 {
	if q <= 0 || q >= 1 {
		panic("stats: P2 quantile must be in (0,1)")
	}
	p := &P2{q: q}
	p.initial = make([]float64, 0, 5)
	return p
}

// Add incorporates one observation.
func (p *P2) Add(x float64) {
	p.n++
	if len(p.initial) < 5 {
		p.initial = append(p.initial, x)
		if len(p.initial) == 5 {
			sort.Float64s(p.initial)
			copy(p.heights[:], p.initial)
			for i := range p.pos {
				p.pos[i] = float64(i + 1)
			}
			p.desired = [5]float64{1, 1 + 2*p.q, 1 + 4*p.q, 3 + 2*p.q, 5}
			p.incr = [5]float64{0, p.q / 2, p.q, (1 + p.q) / 2, 1}
		}
		return
	}

	// Find cell k such that heights[k] <= x < heights[k+1].
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for i := 1; i < 5; i++ {
			if x < p.heights[i] {
				k = i - 1
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.desired {
		p.desired[i] += p.incr[i]
	}

	// Adjust interior markers.
	for i := 1; i <= 3; i++ {
		d := p.desired[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := p.parabolic(i, sign)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

func (p *P2) parabolic(i int, d float64) float64 {
	num1 := p.pos[i] - p.pos[i-1] + d
	num2 := p.pos[i+1] - p.pos[i] - d
	den := p.pos[i+1] - p.pos[i-1]
	t1 := (p.heights[i+1] - p.heights[i]) / (p.pos[i+1] - p.pos[i])
	t2 := (p.heights[i] - p.heights[i-1]) / (p.pos[i] - p.pos[i-1])
	return p.heights[i] + d/den*(num1*t1+num2*t2)
}

func (p *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.heights[i] + d*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// N returns the number of observations consumed.
func (p *P2) N() int { return p.n }

// Value returns the current quantile estimate. Before 5 observations it
// falls back to the exact quantile of the buffered sample.
func (p *P2) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if len(p.initial) < 5 {
		sorted := append([]float64(nil), p.initial...)
		sort.Float64s(sorted)
		return QuantileSorted(sorted, p.q)
	}
	return p.heights[2]
}
