package simsrv

import (
	"math"
	"testing"

	"psd/internal/control"
)

func TestLoadScheduleValidation(t *testing.T) {
	cases := []struct {
		name     string
		schedule []LoadPhase
	}{
		{"negative start", []LoadPhase{{Start: -1, Scale: []float64{1}}}},
		{"unsorted", []LoadPhase{{Start: 100, Scale: []float64{1}}, {Start: 50, Scale: []float64{2}}}},
		{"bad scale len", []LoadPhase{{Start: 10, Scale: []float64{1, 2, 3}}}},
		{"negative scale", []LoadPhase{{Start: 10, Scale: []float64{-1}}}},
		{"inf scale", []LoadPhase{{Start: 10, Scale: []float64{math.Inf(1)}}}},
	}
	for _, tc := range cases {
		cfg := fastConfig([]float64{1, 2}, 0.5)
		cfg.LoadSchedule = tc.schedule
		if err := cfg.ApplyDefaults().Validate(); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
	ok := fastConfig([]float64{1, 2}, 0.5)
	ok.LoadSchedule = FlashCrowd(5000, 2000, 1.5)
	if err := ok.ApplyDefaults().Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

// TestLoadStepShiftsArrivalVolume: stepping the rates to 1.6× at
// mid-horizon must land total completions between the all-low and
// all-high stationary runs, and a deterministic re-run must reproduce it.
func TestLoadStepShiftsArrivalVolume(t *testing.T) {
	base := fastConfig([]float64{1, 2}, 0.4)
	low, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	high := fastConfig([]float64{1, 2}, 0.64)
	hi, err := Run(high)
	if err != nil {
		t.Fatal(err)
	}
	step := base
	step.LoadSchedule = LoadStep(base.Warmup+base.Horizon/2, 1.6)
	st, err := Run(step)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Run(step)
	if err != nil {
		t.Fatal(err)
	}
	if st.EventsProcessed != st2.EventsProcessed || st.SystemSlowdown != st2.SystemSlowdown {
		t.Fatal("load-step run not deterministic per seed")
	}
	count := func(r *Result) int64 { return r.Classes[0].Count + r.Classes[1].Count }
	if !(count(low) < count(st) && count(st) < count(hi)) {
		t.Fatalf("step completions %d not between stationary %d and %d",
			count(st), count(low), count(hi))
	}
}

// TestFlashCrowdReturnsToBase: a surge confined to the warmup-adjacent
// region must leave the post-surge measured volume near the stationary
// baseline while still inflating the total.
func TestFlashCrowdReturnsToBase(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.5)
	cfg.LoadSchedule = FlashCrowd(cfg.Warmup+2000, 4000, 2.0)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stat, err := Run(fastConfig([]float64{1, 2}, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	total := res.Classes[0].Count + res.Classes[1].Count
	base := stat.Classes[0].Count + stat.Classes[1].Count
	// Surge adds ≈ 4000 tu of extra 1.0× load on a 20000 tu horizon:
	// expect roughly +20%, certainly more than +8% and less than +45%.
	excess := float64(total-base) / float64(base)
	if excess < 0.08 || excess > 0.45 {
		t.Fatalf("flash crowd excess completions %.1f%%, want ~20%%", excess*100)
	}
}

// TestClassMixChurnKeepsClassesActive: rotating the hot class must keep
// every class serving traffic and preserve the slowdown ordering.
func TestClassMixChurn(t *testing.T) {
	phases := ClassMixChurn(2, 3000, 4000, 4, 1.5, 0.5)
	if len(phases) != 4 {
		t.Fatalf("phase count %d", len(phases))
	}
	if phases[0].Scale[0] != 1.5 || phases[0].Scale[1] != 0.5 ||
		phases[1].Scale[0] != 0.5 || phases[1].Scale[1] != 1.5 {
		t.Fatalf("rotation wrong: %+v", phases[:2])
	}
	cfg := fastConfig([]float64{1, 4}, 0.5)
	cfg.LoadSchedule = phases
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes[0].Count == 0 || res.Classes[1].Count == 0 {
		t.Fatal("churn starved a class")
	}
	if !(res.Classes[0].MeanSlowdown < res.Classes[1].MeanSlowdown) {
		t.Fatalf("differentiation lost under churn: %v vs %v",
			res.Classes[0].MeanSlowdown, res.Classes[1].MeanSlowdown)
	}
}

// TestZeroScalePausesClassAndResumes: scale 0 silences a class for a
// phase; a later phase restarts its arrival process.
func TestZeroScalePausesClassAndResumes(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.5)
	cfg.LoadSchedule = []LoadPhase{
		{Start: cfg.Warmup, Scale: []float64{1, 0}},
		{Start: cfg.Warmup + cfg.Horizon/2, Scale: []float64{1, 1}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(fastConfig([]float64{1, 2}, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes[1].Count == 0 {
		t.Fatal("class 1 never resumed after zero-scale phase")
	}
	// Class 1 was silent for half the measured horizon: clearly fewer
	// completions than the stationary run; class 0 unaffected (±15%).
	if !(float64(res.Classes[1].Count) < 0.75*float64(full.Classes[1].Count)) {
		t.Fatalf("pause had no effect: %d vs %d", res.Classes[1].Count, full.Classes[1].Count)
	}
	if math.Abs(float64(res.Classes[0].Count)-float64(full.Classes[0].Count)) >
		0.15*float64(full.Classes[0].Count) {
		t.Fatalf("pausing class 1 perturbed class 0 volume: %d vs %d",
			res.Classes[0].Count, full.Classes[0].Count)
	}
}

// TestPacketizedLoadStep: the packetized model honors the same schedule.
func TestPacketizedLoadStep(t *testing.T) {
	base := fastConfig([]float64{1, 2}, 0.4)
	low, err := RunPacketized(PacketizedConfig{Config: base})
	if err != nil {
		t.Fatal(err)
	}
	step := base
	step.LoadSchedule = LoadStep(base.Warmup, 1.6)
	st, err := RunPacketized(PacketizedConfig{Config: step})
	if err != nil {
		t.Fatal(err)
	}
	lowN := low.Classes[0].Count + low.Classes[1].Count
	stN := st.Classes[0].Count + st.Classes[1].Count
	// The whole measured horizon runs at 1.6×: expect ≈ +60% completions.
	if !(float64(stN) > 1.3*float64(lowN)) {
		t.Fatalf("packetized step had no effect: %d vs %d", stN, lowN)
	}
}

// TestEWMARecoversFasterAfterStep quantifies the transient claim that
// motivates the estimator axis: after a load step, the EWMA estimator's
// rate allocation re-converges to the stationary PSD split faster than
// the 5-window mean. Measured via the per-window achieved ratio returning
// to (and staying in) a band around target, averaged over replications.
func TestEWMARecoversFasterAfterStep(t *testing.T) {
	deviationAfterStep := func(kind control.EstimatorKind) float64 {
		var dev float64
		var n int
		for seed := uint64(1); seed <= 8; seed++ {
			cfg := EqualLoadConfig([]float64{1, 2}, 0.35, nil)
			cfg.Warmup = 2000
			cfg.Horizon = 24000
			cfg.Window = 1000
			cfg.Seed = seed
			cfg.Estimator = kind
			cfg.EWMAAlpha = 0.5
			stepAt := cfg.Warmup + 12000
			cfg.LoadSchedule = LoadStep(stepAt, 2.2)
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Mean absolute deviation of the per-window ratio from target
			// over the 5 windows after the step (the estimator's memory).
			first := int((stepAt - cfg.Warmup) / cfg.Window)
			for w := first; w < first+5 && w < len(res.Classes[0].WindowMeans); w++ {
				a, b := res.Classes[1].WindowMeans[w], res.Classes[0].WindowMeans[w]
				if math.IsNaN(a) || math.IsNaN(b) || b == 0 {
					continue
				}
				dev += math.Abs(a/b - 2)
				n++
			}
		}
		return dev / float64(n)
	}
	win := deviationAfterStep(control.Window)
	ew := deviationAfterStep(control.EWMA)
	// Directional with margin: heavy-tailed windows are noisy, so only
	// fail when EWMA is clearly worse than the window estimator in the
	// recovery band it is supposed to win.
	if ew > win*1.35 {
		t.Fatalf("EWMA post-step ratio deviation %.3f worse than window %.3f", ew, win)
	}
	t.Logf("post-step ratio deviation: window %.3f, ewma %.3f", win, ew)
}
