// Package stats provides the streaming and batch statistics used by the
// simulation harness: numerically stable moments (Welford), exact and
// streaming quantiles, log-scale histograms, windowed time series, and
// normal-approximation confidence intervals.
//
// Heavy-tailed slowdown data is the common case here, so the quantile and
// histogram machinery is designed for values spanning several orders of
// magnitude.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty reports a statistic requested over zero observations.
var ErrEmpty = errors.New("stats: no observations")

// Welford accumulates count, mean and variance in a single pass using
// Welford's numerically stable recurrence. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// AddN incorporates the same observation n times.
func (w *Welford) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		w.Add(x)
	}
}

// Merge combines another accumulator into this one (Chan et al. parallel
// variance update), enabling per-goroutine accumulation.
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (NaN when empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased sample variance (NaN when n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (NaN when empty).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest observation (NaN when empty).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.Std() / math.Sqrt(float64(w.n))
}

// ConfidenceInterval returns the normal-approximation CI half-width for the
// mean at the given confidence level (e.g. 0.95). With the 100-replication
// design of the paper the normal approximation is comfortably valid.
func (w *Welford) ConfidenceInterval(level float64) float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return zQuantile(0.5+level/2) * w.StdErr()
}

// zQuantile returns the standard normal quantile via the
// Beasley-Springer-Moro rational approximation (|error| < 1e-9 over the
// central range, ample for CI reporting).
func zQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients from Moro (1995).
	a := [4]float64{2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637}
	b := [4]float64{-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833}
	c := [9]float64{
		0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
		0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
		0.0000321767881768, 0.0000002888167364, 0.0000003960315187,
	}
	y := p - 0.5
	if math.Abs(y) < 0.42 {
		r := y * y
		num := y * (((a[3]*r+a[2])*r+a[1])*r + a[0])
		den := (((b[3]*r+b[2])*r+b[1])*r+b[0])*r + 1
		return num / den
	}
	r := p
	if y > 0 {
		r = 1 - p
	}
	r = math.Log(-math.Log(r))
	x := c[0]
	pow := 1.0
	for i := 1; i < 9; i++ {
		pow *= r
		x += c[i] * pow
	}
	if y < 0 {
		return -x
	}
	return x
}

// Quantile returns the q-th sample quantile of xs (linear interpolation
// between order statistics, the "type 7" estimator). It sorts a copy.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q), nil
}

// QuantileSorted is Quantile for an already-sorted slice (no copy).
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	idx := q * float64(n-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Quantiles returns several quantiles in one sort pass.
func Quantiles(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = QuantileSorted(sorted, q)
	}
	return out, nil
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Summary captures the five-number-plus-moments description used in
// experiment reports.
type Summary struct {
	N             int64
	Mean, Std     float64
	Min, Max      float64
	P05, P50, P95 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	qs, err := Quantiles(xs, 0.05, 0.50, 0.95)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		N: w.N(), Mean: w.Mean(), Std: w.Std(),
		Min: w.Min(), Max: w.Max(),
		P05: qs[0], P50: qs[1], P95: qs[2],
	}, nil
}
