package core

import (
	"fmt"
	"sort"
)

// Capabilities are the per-policy flags the rest of the stack keys its
// routing decisions off: the analytic evaluator, the sweep engine's
// policy axis and the CLIs all consult them instead of hard-coding
// allocator type lists.
type Capabilities struct {
	// AnalyticEligible marks policies whose stationary allocation at the
	// true arrival rates is a closed form internal/analytic can evaluate
	// (Theorem 1 at deterministic fixed rates). PDD's bisection targets
	// delays and the packetized correction assumes a different service
	// model, so they simulate.
	AnalyticEligible bool
	// NeedsSizeInfo marks size-aware policies: their scheduling decision
	// reads each job's size, so they only exist on the packetized server
	// model with a size-aware discipline (internal/sched), never on the
	// paper's partitioned fluid model or the live byte-stream server.
	NeedsSizeInfo bool
	// DegradationAware marks policies that drive the graceful-degradation
	// ladder (internal/admission.Ladder) from the allocation side: under
	// sustained overload they scale per-class effective δ targets through
	// control.TickInput.DeltaScale before any admission shedding.
	DegradationAware bool
}

// Policy is one registered allocation policy: a parse name, the flags
// above, and a factory for a ready-to-use allocator.
type Policy struct {
	// Name is the unique registry key (the CLI -allocator spelling).
	Name string
	// Summary is a one-line description for help text and docs.
	Summary string
	// Caps are the policy's routing capabilities.
	Caps Capabilities
	// New returns a fresh allocator. Every registered policy returns an
	// InPlaceAllocator (enforced by Register) so the zero-allocation
	// control paths hold for the whole zoo.
	New func() Allocator
}

// registry holds the policies in registration order; Names/Policies are
// deterministic so CLI help, tests and the bench tournament enumerate
// the zoo identically everywhere. Registration happens at package init
// (and, for external policies, before any concurrent use) — the map is
// read-only afterwards, so no locking.
var (
	registryOrder []string
	registry      = map[string]Policy{}
)

// Register adds a policy to the zoo. It panics on a nil factory,
// duplicate or empty name, a factory whose allocator reports a different
// Name, or an allocator without an in-place path — all programmer errors
// at init time, not runtime conditions.
func Register(p Policy) {
	if p.Name == "" {
		panic("core: Register with empty policy name")
	}
	if p.New == nil {
		panic(fmt.Sprintf("core: Register(%q) with nil factory", p.Name))
	}
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("core: Register(%q) duplicates an existing policy", p.Name))
	}
	a := p.New()
	if a == nil {
		panic(fmt.Sprintf("core: Register(%q) factory returned nil", p.Name))
	}
	if a.Name() != p.Name {
		panic(fmt.Sprintf("core: Register(%q) factory allocator names itself %q", p.Name, a.Name()))
	}
	if _, ok := a.(InPlaceAllocator); !ok {
		panic(fmt.Sprintf("core: Register(%q) allocator lacks an AllocateInto path", p.Name))
	}
	registry[p.Name] = p
	registryOrder = append(registryOrder, p.Name)
}

// Parse resolves a policy name to a fresh allocator — the single entry
// point behind every CLI -allocator flag (the per-command string
// switches it replaced could silently drift apart).
func Parse(name string) (Allocator, error) {
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown policy %q (registered: %s)", name, namesHelp())
	}
	return p.New(), nil
}

// Lookup returns the registered policy for a name. Capability routing
// (internal/analytic, internal/sweep) keys off the allocator's Name():
// a custom allocator that is not registered simply has no capabilities,
// so it simulates and never takes a closed-form shortcut.
func Lookup(name string) (Policy, bool) {
	p, ok := registry[name]
	return p, ok
}

// Names lists the registered policy names in sorted order.
func Names() []string {
	out := make([]string, len(registryOrder))
	copy(out, registryOrder)
	sort.Strings(out)
	return out
}

// Policies lists the registered policies in registration order (the
// curated order: the paper's strategy first, then baselines, then the
// related-work rivals).
func Policies() []Policy {
	out := make([]Policy, 0, len(registryOrder))
	for _, n := range registryOrder {
		out = append(out, registry[n])
	}
	return out
}

func namesHelp() string {
	s := ""
	for i, n := range Names() {
		if i > 0 {
			s += " | "
		}
		s += n
	}
	return s
}

// The built-in zoo. Static is deliberately absent (it is parameterized
// by a weight vector, so it has no flag spelling) and HeterogeneousPSD
// is API-only (it needs per-class workloads, which the shared-moment
// Allocate signature cannot carry).
func init() {
	Register(Policy{
		Name:    "psd",
		Summary: "the paper's Eq. 17 proportional-slowdown allocation",
		Caps:    Capabilities{AnalyticEligible: true},
		New:     func() Allocator { return PSD{} },
	})
	Register(Policy{
		Name:    "pdd",
		Summary: "proportional *delay* differentiation (bisection), the closest prior-art target",
		New:     func() Allocator { return PDD{} },
	})
	Register(Policy{
		Name:    "equal",
		Summary: "equal share baseline (no differentiation)",
		Caps:    Capabilities{AnalyticEligible: true},
		New:     func() Allocator { return EqualShare{} },
	})
	Register(Policy{
		Name:    "demand",
		Summary: "demand-proportional baseline (shares track load, not δ)",
		Caps:    Capabilities{AnalyticEligible: true},
		New:     func() Allocator { return DemandProportional{} },
	})
	Register(Policy{
		Name:    "ppsd",
		Summary: "PSD corrected for the packetized run-to-completion server model",
		New:     func() Allocator { return PacketizedPSD{} },
	})
	Register(Policy{
		Name:    "log",
		Summary: "logarithmic-weight surplus split (Robert & Véber style compressed differentiation)",
		Caps:    Capabilities{AnalyticEligible: true},
		New:     func() Allocator { return LogWeight{} },
	})
	Register(Policy{
		Name:    "downgrade",
		Summary: "PSD with Fricker-style downgrading: degrade effective δ under saturation before shedding",
		Caps:    Capabilities{DegradationAware: true},
		New:     func() Allocator { return Downgrading{} },
	})
	Register(Policy{
		Name:    "hesrpt",
		Summary: "heSRPT-style size-aware scheduling (packetized model, weighted shortest-job-first)",
		Caps:    Capabilities{NeedsSizeInfo: true},
		New:     func() Allocator { return HeSRPTWeights{} },
	})
}
