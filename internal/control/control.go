// Package control provides the load-estimation and feedback machinery
// around the PSD rate allocator.
//
// The paper estimates each class's load as the average over the past five
// 1000-time-unit windows (§4.1) and attributes its controllability gaps at
// large δ ratios to estimation error (§4.4); its stated future work is
// improving short-timescale predictability. This package supplies:
//
//   - WindowEstimator: the paper's sliding-window mean estimator
//   - EWMAEstimator: an exponentially weighted alternative that reacts
//     faster to load shifts at equal noise
//   - RatioController: a multiplicative-integral feedback loop that trims
//     the δ values handed to the allocator so the *measured* slowdown
//     ratios converge to the targets even when the analytic model is off
//     (the future-work extension, evaluated in the ablation benches)
//
// Estimators consume per-window arrival observations and emit smoothed
// arrival-rate estimates; they are plain data structures, serialized by
// their callers.
package control

import (
	"errors"
	"fmt"
	"math"
)

// Estimator smooths per-window arrival counts into arrival-rate
// estimates.
type Estimator interface {
	// ObserveWindow records one closed window's arrival count and total
	// work for each class. The slices must have the estimator's class
	// count.
	ObserveWindow(counts []float64, work []float64) error
	// Lambdas returns the current per-class arrival-rate estimates
	// (requests per time unit). Zero until the first window closes.
	Lambdas() []float64
	// Loads returns the current per-class offered-load estimates (work
	// units per time unit).
	Loads() []float64
	// Name identifies the estimator.
	Name() string
}

// ErrDimension reports slices of the wrong class count.
var ErrDimension = errors.New("control: wrong number of classes")

// WindowEstimator is the paper's estimator: the estimate for the next
// window is the mean over the last History windows.
type WindowEstimator struct {
	window  float64
	history int
	counts  [][]float64 // ring: [slot][class]
	work    [][]float64
	next    int
	filled  int
	classes int
}

// NewWindowEstimator builds the paper's 5-window mean estimator (pass
// history=5, window=1000 for the §4.1 configuration).
func NewWindowEstimator(classes, history int, window float64) (*WindowEstimator, error) {
	if classes < 1 || history < 1 || !(window > 0) {
		return nil, fmt.Errorf("control: invalid estimator shape classes=%d history=%d window=%v",
			classes, history, window)
	}
	e := &WindowEstimator{window: window, history: history, classes: classes}
	e.counts = make([][]float64, history)
	e.work = make([][]float64, history)
	for i := range e.counts {
		e.counts[i] = make([]float64, classes)
		e.work[i] = make([]float64, classes)
	}
	return e, nil
}

// Name implements Estimator.
func (e *WindowEstimator) Name() string { return "window" }

// ObserveWindow implements Estimator.
func (e *WindowEstimator) ObserveWindow(counts, work []float64) error {
	if len(counts) != e.classes || len(work) != e.classes {
		return ErrDimension
	}
	copy(e.counts[e.next], counts)
	copy(e.work[e.next], work)
	e.next = (e.next + 1) % e.history
	if e.filled < e.history {
		e.filled++
	}
	return nil
}

// Lambdas implements Estimator.
func (e *WindowEstimator) Lambdas() []float64 { return e.average(e.counts) }

// Loads implements Estimator.
func (e *WindowEstimator) Loads() []float64 { return e.average(e.work) }

func (e *WindowEstimator) average(ring [][]float64) []float64 {
	out := make([]float64, e.classes)
	if e.filled == 0 {
		return out
	}
	span := e.window * float64(e.filled)
	for s := 0; s < e.filled; s++ {
		for c := 0; c < e.classes; c++ {
			out[c] += ring[s][c]
		}
	}
	for c := range out {
		out[c] /= span
	}
	return out
}

// EWMAEstimator smooths with an exponentially weighted moving average:
// estimate ← (1−α)·estimate + α·window-rate. α in (0, 1]; larger α reacts
// faster. Its effective memory of 1/α windows makes it comparable to a
// WindowEstimator with history ≈ 2/α − 1.
type EWMAEstimator struct {
	window  float64
	alpha   float64
	classes int
	lambdas []float64
	loads   []float64
	primed  bool
}

// NewEWMAEstimator builds the estimator.
func NewEWMAEstimator(classes int, alpha, window float64) (*EWMAEstimator, error) {
	if classes < 1 || !(alpha > 0) || alpha > 1 || !(window > 0) {
		return nil, fmt.Errorf("control: invalid EWMA shape classes=%d alpha=%v window=%v",
			classes, alpha, window)
	}
	return &EWMAEstimator{
		window: window, alpha: alpha, classes: classes,
		lambdas: make([]float64, classes),
		loads:   make([]float64, classes),
	}, nil
}

// Name implements Estimator.
func (e *EWMAEstimator) Name() string { return "ewma" }

// ObserveWindow implements Estimator.
func (e *EWMAEstimator) ObserveWindow(counts, work []float64) error {
	if len(counts) != e.classes || len(work) != e.classes {
		return ErrDimension
	}
	for c := 0; c < e.classes; c++ {
		l := counts[c] / e.window
		w := work[c] / e.window
		if !e.primed {
			e.lambdas[c] = l
			e.loads[c] = w
		} else {
			e.lambdas[c] += e.alpha * (l - e.lambdas[c])
			e.loads[c] += e.alpha * (w - e.loads[c])
		}
	}
	e.primed = true
	return nil
}

// Lambdas implements Estimator.
func (e *EWMAEstimator) Lambdas() []float64 { return append([]float64(nil), e.lambdas...) }

// Loads implements Estimator.
func (e *EWMAEstimator) Loads() []float64 { return append([]float64(nil), e.loads...) }

// RatioController trims the δ vector fed to the allocator so measured
// slowdown ratios converge to the target ratios. Class 0 is the reference
// (its effective δ stays at the target); for i ≥ 1 the controller applies
// a multiplicative-integral update
//
//	δeff_i ← clamp(δeff_i · (target_i / measured_i)^Gain)
//
// once per adjustment period. Intuition: if class i's measured ratio is
// too high, handing the allocator a smaller δ_i directs more surplus
// capacity to class i, pulling the ratio down. Gain in (0, 1] trades
// convergence speed against noise amplification; the clamp keeps δeff
// within [target/MaxTrim, target·MaxTrim].
type RatioController struct {
	target  []float64
	eff     []float64
	gain    float64
	maxTrim float64
}

// NewRatioController builds a controller for the target δ vector.
func NewRatioController(target []float64, gain, maxTrim float64) (*RatioController, error) {
	if len(target) == 0 {
		return nil, errors.New("control: no target deltas")
	}
	for i, d := range target {
		if !(d > 0) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("control: target delta[%d] = %v must be positive", i, d)
		}
	}
	if !(gain > 0) || gain > 1 {
		return nil, fmt.Errorf("control: gain %v must be in (0, 1]", gain)
	}
	if !(maxTrim > 1) {
		return nil, fmt.Errorf("control: maxTrim %v must exceed 1", maxTrim)
	}
	return &RatioController{
		target:  append([]float64(nil), target...),
		eff:     append([]float64(nil), target...),
		gain:    gain,
		maxTrim: maxTrim,
	}, nil
}

// Deltas returns the effective δ vector to hand to the allocator.
func (r *RatioController) Deltas() []float64 { return append([]float64(nil), r.eff...) }

// Update feeds one period's measured per-class mean slowdowns. Classes
// with non-positive or NaN measurements (no completions) are skipped.
func (r *RatioController) Update(measured []float64) error {
	if len(measured) != len(r.target) {
		return ErrDimension
	}
	ref := measured[0]
	if !(ref > 0) || math.IsNaN(ref) {
		return nil // no reference signal this period
	}
	for i := 1; i < len(r.target); i++ {
		m := measured[i]
		if !(m > 0) || math.IsNaN(m) {
			continue
		}
		measuredRatio := m / ref
		targetRatio := r.target[i] / r.target[0]
		adj := math.Pow(targetRatio/measuredRatio, r.gain)
		next := r.eff[i] * adj
		lo := r.target[i] / r.maxTrim
		hi := r.target[i] * r.maxTrim
		if next < lo {
			next = lo
		}
		if next > hi {
			next = hi
		}
		r.eff[i] = next
	}
	return nil
}

// Reset restores the effective deltas to the targets.
func (r *RatioController) Reset() {
	copy(r.eff, r.target)
}

var (
	_ Estimator = (*WindowEstimator)(nil)
	_ Estimator = (*EWMAEstimator)(nil)
)
