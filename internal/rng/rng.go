// Package rng provides small, fast, deterministic pseudo-random number
// generators for simulation use.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 so that any 64-bit seed — including 0 — yields a well-mixed
// state. Independent replications obtain non-overlapping streams either by
// deriving child sources with Split (hash-based) or by the 2^128-step Jump.
//
// The package is intentionally tiny: simulations in this module create one
// Source per replication and one derived Source per stochastic component
// (per-class arrival process, per-class size process, …) so that changing
// one component's draw count never perturbs another component's stream —
// the "common random numbers" discipline used throughout internal/simsrv.
package rng

import "math"

// Source is a xoshiro256** PRNG. It is NOT safe for concurrent use; create
// one Source per goroutine (see Split).
type Source struct {
	s [4]uint64
}

// splitmix64 advances a SplitMix64 state and returns the next output.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given 64-bit seed. Distinct seeds
// yield (with overwhelming probability) uncorrelated streams.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed re-initializes the Source in place from the given seed, exactly
// as New would. It lets long-lived simulation arenas re-arm their streams
// for a new replication without allocating.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro256** requires a non-zero state; splitmix64 guarantees this
	// except with negligible probability, but be defensive anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Split derives an independent child Source from the parent and a stream
// identifier. The parent's state is not advanced, so components created
// from the same parent with distinct ids have reproducible, decoupled
// streams.
func (r *Source) Split(id uint64) *Source {
	var src Source
	r.SplitInto(&src, id)
	return &src
}

// SplitInto is Split writing into a caller-owned Source, for arenas that
// re-derive their component streams every replication without allocating.
// dst may be any Source (its previous state is overwritten); splitting
// into the parent itself is allowed.
func (r *Source) SplitInto(dst *Source, id uint64) {
	// Mix the parent state with the id through SplitMix64.
	sm := r.s[0] ^ (r.s[1] << 1) ^ (r.s[2] << 2) ^ (r.s[3] << 3) ^ (id * 0xd1342543de82ef95)
	for i := range dst.s {
		dst.s[i] = splitmix64(&sm)
	}
	if dst.s[0]|dst.s[1]|dst.s[2]|dst.s[3] == 0 {
		dst.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Jump advances the generator by 2^128 steps, equivalent to 2^128 calls of
// Uint64. It can be used to generate 2^128 non-overlapping subsequences.
func (r *Source) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// Float64 returns a uniformly distributed float64 in [0, 1) with 53 bits of
// precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Open returns a uniformly distributed float64 in the open interval
// (0, 1), suitable for inverse-CDF transforms that must avoid log(0) or
// division by zero.
func (r *Source) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// ExpFloat64 returns an exponentially distributed float64 with the given
// rate (mean 1/rate), via inverse transform.
func (r *Source) ExpFloat64(rate float64) float64 {
	return -math.Log(1-r.Float64()) / rate
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo32 := t & mask32
	carry := t >> 32
	t = aHi*bLo + carry
	mid := t & mask32
	hiPart := t >> 32
	t = aLo*bHi + mid
	hi = aHi*bHi + hiPart + t>>32
	lo = t<<32 | lo32
	return hi, lo
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
