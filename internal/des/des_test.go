package des

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"psd/internal/rng"
)

// fn wraps a closure as a Handler for test convenience.
func fn(f func()) Handler { return HandlerFunc(func(_, _ int32) { f() }) }

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var fired []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		s.Schedule(d, fn(func() { fired = append(fired, d) }), 0, 0)
	}
	s.Run()
	if len(fired) != 5 {
		t.Fatalf("fired %d events", len(fired))
	}
	if !sort.Float64sAreSorted(fired) {
		t.Fatalf("events out of order: %v", fired)
	}
	if s.Now() != 5 {
		t.Fatalf("final time = %v", s.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	s := New()
	var order []int32
	h := HandlerFunc(func(_, data int32) { order = append(order, data) })
	for i := int32(0); i < 10; i++ {
		s.Schedule(1.0, h, 0, i)
	}
	s.Run()
	for i, v := range order {
		if v != int32(i) {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestKindAndDataDispatch(t *testing.T) {
	s := New()
	type hit struct{ kind, data int32 }
	var hits []hit
	h := HandlerFunc(func(kind, data int32) { hits = append(hits, hit{kind, data}) })
	s.Schedule(1, h, 7, 42)
	s.Schedule(2, h, 8, -3)
	s.Run()
	if len(hits) != 2 || hits[0] != (hit{7, 42}) || hits[1] != (hit{8, -3}) {
		t.Fatalf("hits = %v", hits)
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	s := New()
	var hits []float64
	s.Schedule(1, fn(func() {
		hits = append(hits, s.Now())
		s.Schedule(2, fn(func() { hits = append(hits, s.Now()) }), 0, 0)
	}), 0, 0)
	s.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	e := s.Schedule(1, fn(func() { ran = true }), 0, 0)
	if !s.Active(e) {
		t.Fatal("scheduled event not active")
	}
	if !s.Cancel(e) {
		t.Fatal("first cancel reported no-op")
	}
	s.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	if s.Active(e) {
		t.Fatal("canceled event still active")
	}
}

func TestCancelTwice(t *testing.T) {
	s := New()
	e := s.Schedule(1, fn(func() {}), 0, 0)
	if !s.Cancel(e) {
		t.Fatal("first cancel failed")
	}
	if s.Cancel(e) {
		t.Fatal("second cancel of the same handle reported success")
	}
	if s.Cancel(None) {
		t.Fatal("canceling the zero EventID reported success")
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := New()
	e := s.Schedule(1, fn(func() {}), 0, 0)
	s.Run()
	if s.Active(e) {
		t.Fatal("fired event still active")
	}
	if s.Cancel(e) {
		t.Fatal("cancel after fire reported success")
	}
	// The fired event's slot is free; a new event will reuse it. The
	// stale handle must still be rejected.
	e2 := s.Schedule(1, fn(func() {}), 0, 0)
	if s.Cancel(e) {
		t.Fatal("stale handle canceled a reused slot")
	}
	if !s.Active(e2) {
		t.Fatal("stale cancel disturbed the new event")
	}
}

// TestPoolReuseGenerationCheck exercises the free-list: slots are reused
// aggressively, and handles from earlier generations must never resurrect
// or affect the current occupant.
func TestPoolReuseGenerationCheck(t *testing.T) {
	s := New()
	var old []EventID
	for round := 0; round < 10; round++ {
		e := s.Schedule(1, fn(func() {}), 0, 0)
		for _, stale := range old {
			if s.Cancel(stale) || s.Active(stale) {
				t.Fatalf("round %d: stale handle %x acted on reused slot", round, stale)
			}
		}
		if !s.Active(e) {
			t.Fatalf("round %d: live handle reported inactive", round)
		}
		s.Cancel(e)
		old = append(old, e)
	}
}

// TestSteadyStateNoAlloc verifies the free-list claim: once warm, a
// schedule/fire cycle performs zero heap allocations.
func TestSteadyStateNoAlloc(t *testing.T) {
	s := New()
	h := HandlerFunc(func(_, _ int32) {})
	// Warm the arena and the heap capacity.
	for i := 0; i < 64; i++ {
		s.Schedule(float64(i), h, 0, 0)
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		s.Schedule(1, h, 0, 0)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+fire allocates %v per op, want 0", allocs)
	}
}

func TestCancelDuringExecution(t *testing.T) {
	s := New()
	ran := false
	var victim EventID
	s.Schedule(1, fn(func() { s.Cancel(victim) }), 0, 0)
	victim = s.Schedule(2, fn(func() { ran = true }), 0, 0)
	s.Run()
	if ran {
		t.Fatal("event canceled by an earlier event still ran")
	}
}

func TestCancelRemovesFromHeap(t *testing.T) {
	s := New()
	events := make([]EventID, 100)
	for i := range events {
		events[i] = s.Schedule(float64(i), fn(func() {}), 0, 0)
	}
	for _, e := range events[:50] {
		s.Cancel(e)
	}
	if s.Pending() != 50 {
		t.Fatalf("pending = %d after eager removal, want 50", s.Pending())
	}
	// The survivors still fire in order.
	s.Run()
	if s.Now() != 99 {
		t.Fatalf("final time = %v, want 99", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []float64
	for _, d := range []float64{1, 2, 3, 4, 5} {
		d := d
		s.Schedule(d, fn(func() { fired = append(fired, d) }), 0, 0)
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3 (inclusive horizon)", len(fired))
	}
	if s.Now() != 3 {
		t.Fatalf("time = %v, want exactly horizon", s.Now())
	}
	s.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("remaining events not run: %d", len(fired))
	}
	if s.Now() != 10 {
		t.Fatalf("time should advance to horizon even with no events: %v", s.Now())
	}
}

// TestRunUntilInclusiveBoundary pins the closed-interval contract: an
// event at exactly the horizon fires, one epsilon past it does not, and
// an event scheduled AT the horizon from within a horizon-time event also
// fires (the clock has not passed the horizon yet).
func TestRunUntilInclusiveBoundary(t *testing.T) {
	s := New()
	var fired []string
	s.Schedule(3, fn(func() {
		fired = append(fired, "at")
		s.ScheduleAt(3, fn(func() { fired = append(fired, "nested-at") }), 0, 0)
	}), 0, 0)
	past := math.Nextafter(3, 4)
	s.ScheduleAt(past, fn(func() { fired = append(fired, "past") }), 0, 0)
	s.RunUntil(3)
	if len(fired) != 2 || fired[0] != "at" || fired[1] != "nested-at" {
		t.Fatalf("fired = %v, want [at nested-at]", fired)
	}
	if s.Now() != 3 {
		t.Fatalf("now = %v, want horizon", s.Now())
	}
}

func TestEventTime(t *testing.T) {
	s := New()
	e := s.Schedule(2.5, fn(func() {}), 0, 0)
	if tm, ok := s.EventTime(e); !ok || tm != 2.5 {
		t.Fatalf("EventTime = %v, %v", tm, ok)
	}
	s.Cancel(e)
	if _, ok := s.EventTime(e); ok {
		t.Fatal("EventTime of canceled event reported ok")
	}
	if _, ok := s.EventTime(None); ok {
		t.Fatal("EventTime of zero handle reported ok")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.Schedule(-1, fn(func() {}), 0, 0)
}

func TestScheduleAtPastPanics(t *testing.T) {
	s := New()
	s.Schedule(5, fn(func() {}), 0, 0)
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt in the past did not panic")
		}
	}()
	s.ScheduleAt(1, fn(func() {}), 0, 0)
}

func TestProcessedCount(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Schedule(float64(i), fn(func() {}), 0, 0)
	}
	e := s.Schedule(100, fn(func() {}), 0, 0)
	s.Cancel(e)
	s.Run()
	if s.Processed() != 10 {
		t.Fatalf("processed = %d, want 10", s.Processed())
	}
}

func TestDrain(t *testing.T) {
	s := New()
	ran := false
	e := s.Schedule(1, fn(func() { ran = true }), 0, 0)
	s.Drain()
	s.Run()
	if ran || s.Pending() != 0 {
		t.Fatal("drain did not clear events")
	}
	if s.Active(e) || s.Cancel(e) {
		t.Fatal("drained event handle still live")
	}
}

// TestDeterministicReplay runs the same randomized event program twice and
// requires identical execution traces.
func TestDeterministicReplay(t *testing.T) {
	run := func(seed uint64) []float64 {
		r := rng.New(seed)
		s := New()
		var trace []float64
		var spawn func()
		count := 0
		spawn = func() {
			trace = append(trace, s.Now())
			count++
			if count < 2000 {
				s.Schedule(r.ExpFloat64(1), fn(spawn), 0, 0)
				if r.Float64() < 0.3 {
					e := s.Schedule(r.Float64()*5, fn(func() { trace = append(trace, -s.Now()) }), 0, 0)
					if r.Float64() < 0.5 {
						s.Cancel(e)
					}
				}
			}
		}
		s.Schedule(0, fn(spawn), 0, 0)
		s.Run()
		return trace
	}
	a := run(42)
	b := run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestHeapOrderingProperty: any set of delays is executed in sorted order.
func TestHeapOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		s := New()
		var delays []float64
		for _, d := range raw {
			if d >= 0 && d < 1e12 { // finite, non-negative
				delays = append(delays, d)
			}
		}
		var fired []float64
		for _, d := range delays {
			d := d
			s.Schedule(d, fn(func() { fired = append(fired, d) }), 0, 0)
		}
		s.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomCancelOrderingProperty: under random interleaved schedules and
// cancels, survivors still fire in (time, seq) order and canceled events
// never fire — the determinism argument for eager removal.
func TestRandomCancelOrderingProperty(t *testing.T) {
	r := rng.New(99)
	s := New()
	type rec struct {
		id       EventID
		time     float64
		canceled bool
	}
	var recs []rec
	var fired []float64
	h := HandlerFunc(func(_, data int32) { fired = append(fired, recs[data].time) })
	for i := 0; i < 5000; i++ {
		tm := r.Float64() * 1000
		id := s.Schedule(tm, h, 0, int32(len(recs)))
		recs = append(recs, rec{id: id, time: tm})
		if r.Float64() < 0.4 && len(recs) > 0 {
			v := r.Intn(len(recs))
			if s.Cancel(recs[v].id) {
				recs[v].canceled = true
			}
		}
	}
	s.Run()
	var want []float64
	for _, rc := range recs {
		if !rc.canceled {
			want = append(want, rc.time)
		}
	}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	if !sort.Float64sAreSorted(fired) {
		t.Fatal("survivors fired out of order")
	}
}

func TestManyReschedules(t *testing.T) {
	// Emulates the task-server pattern: repeatedly cancel + reschedule a
	// completion event. The heap must stay consistent and the arena must
	// not grow past a handful of slots.
	s := New()
	completions := 0
	var e EventID
	for i := 0; i < 1000; i++ {
		if e != None {
			s.Cancel(e)
		}
		e = s.Schedule(float64(1000-i), fn(func() { completions++ }), 0, 0)
	}
	if len(s.slots) > 2 {
		t.Fatalf("arena grew to %d slots under reschedule churn, want ≤ 2", len(s.slots))
	}
	s.Run()
	if completions != 1 {
		t.Fatalf("completions = %d, want exactly 1 (last scheduled)", completions)
	}
	if s.Now() != 1 {
		t.Fatalf("final time = %v, want 1", s.Now())
	}
}

// TestResetReplaysIdentically: a Reset simulator must behave exactly
// like a fresh one — same clock, same sequence numbering (hence the same
// fire order for identical schedules), zero allocation on the second
// pass — and handles from before the Reset must be inert.
func TestResetReplaysIdentically(t *testing.T) {
	run := func(s *Simulator) ([]int32, uint64) {
		var order []int32
		h := HandlerFunc(func(_, data int32) { order = append(order, data) })
		a := s.Schedule(5, h, 0, 1)
		s.Schedule(3, h, 0, 2)
		s.Schedule(3, h, 0, 3) // ties with the previous: FIFO by seq
		s.Cancel(a)
		s.Schedule(7, h, 0, 4)
		s.RunUntil(10)
		return order, s.Processed()
	}
	s := New()
	first, firstN := run(s)
	stale := s.Schedule(1e9, HandlerFunc(func(_, _ int32) {}), 0, 99)
	s.Reset()
	if s.Now() != 0 || s.Pending() != 0 || s.Processed() != 0 {
		t.Fatalf("Reset left state: now=%v pending=%d processed=%d", s.Now(), s.Pending(), s.Processed())
	}
	if s.Cancel(stale) || s.Active(stale) {
		t.Fatal("pre-Reset handle still live")
	}
	second, secondN := run(s)
	fresh, freshN := run(New())
	if len(first) != len(second) || len(second) != len(fresh) {
		t.Fatalf("fire counts differ: %v / %v / %v", first, second, fresh)
	}
	for i := range fresh {
		if second[i] != fresh[i] || first[i] != fresh[i] {
			t.Fatalf("fire order diverged at %d: first %v, reset %v, fresh %v", i, first, second, fresh)
		}
	}
	if firstN != secondN || secondN != freshN {
		t.Fatalf("processed counts differ: %d / %d / %d", firstN, secondN, freshN)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	s := New()
	r := rng.New(1)
	h := HandlerFunc(func(_, _ int32) {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(r.Float64()*100, h, 0, 0)
		if s.Pending() > 1024 {
			for s.Pending() > 512 {
				s.Step()
			}
		}
	}
	s.Run()
}

func BenchmarkCancelReschedule(b *testing.B) {
	s := New()
	h := HandlerFunc(func(_, _ int32) {})
	var e EventID
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e != None {
			s.Cancel(e)
		}
		e = s.ScheduleAt(s.Now()+1+float64(i%7), h, 0, 0)
	}
}
