package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestFloatCounterConcurrentAdds(t *testing.T) {
	var c FloatCounter
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(0.5)
			}
		}()
	}
	wg.Wait()
	// 0.5 is exactly representable, so the CAS-loop sum is exact.
	if got, want := c.Load(), float64(workers*per)*0.5; got != want {
		t.Fatalf("float counter = %v, want %v", got, want)
	}
}

func TestGaugePublishesNaN(t *testing.T) {
	var g Gauge
	if g.Load() != 0 {
		t.Fatalf("zero gauge reads %v", g.Load())
	}
	g.Set(math.NaN())
	if !math.IsNaN(g.Load()) {
		t.Fatalf("gauge lost NaN: %v", g.Load())
	}
	g.Set(-2.5)
	if g.Load() != -2.5 {
		t.Fatalf("gauge = %v, want -2.5", g.Load())
	}
}

func TestHistogramBinningEdges(t *testing.T) {
	h, err := NewHistogram(0, 3) // buckets [1,2) [2,4) [4,8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v      float64
		bucket int // -1 underflow, NumBuckets overflow
	}{
		{1, 0}, {1.999, 0},
		{2, 1}, {3.999, 1},
		{4, 2}, {7.999, 2},
		{8, 3}, {1e30, 3},
		{0.999, -1}, {0.5, -1}, {0, -1}, {-3, -1},
		{math.NaN(), -1},
		{math.Inf(1), 3}, {math.Inf(-1), -1},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	snap := h.Snapshot()
	if snap.Count != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", snap.Count, len(cases))
	}
	var wantCounts [3]int64
	var wantUnder, wantOver int64
	for _, c := range cases {
		switch {
		case c.bucket < 0:
			wantUnder++
		case c.bucket >= 3:
			wantOver++
		default:
			wantCounts[c.bucket]++
		}
	}
	for i, w := range wantCounts {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], w)
		}
	}
	if snap.Underflow != wantUnder || snap.Overflow != wantOver {
		t.Errorf("under/over = %d/%d, want %d/%d", snap.Underflow, snap.Overflow, wantUnder, wantOver)
	}
	// NaN and ±Inf must not have reached the sum.
	wantSum := 0.0
	for _, c := range cases {
		if !math.IsNaN(c.v) && !math.IsInf(c.v, 0) {
			wantSum += c.v
		}
	}
	if snap.Sum != wantSum {
		t.Errorf("sum = %v, want %v", snap.Sum, wantSum)
	}
}

func TestHistogramUpperBounds(t *testing.T) {
	h, _ := NewHistogram(-2, 4) // [0.25,0.5) [0.5,1) [1,2) [2,4)
	snap := h.Snapshot()
	want := []float64{0.5, 1, 2, 4}
	for i, w := range want {
		if got := snap.UpperBound(i); got != w {
			t.Errorf("UpperBound(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestHistogramMean(t *testing.T) {
	h, _ := NewHistogram(0, 4)
	if !math.IsNaN(h.Mean()) {
		t.Fatalf("empty mean = %v, want NaN", h.Mean())
	}
	h.Observe(2)
	h.Observe(4)
	if h.Mean() != 3 {
		t.Fatalf("mean = %v, want 3", h.Mean())
	}
}

// TestHistogramMergeEqualsSingleStream is the property test behind
// lock-free aggregation: splitting one observation stream across two
// histograms and merging their snapshots equals observing the whole
// stream in one histogram. Counts must match exactly; the merged sum may
// differ from the sequential sum only by FP addition order, so the values
// here are dyadic rationals where both orders are exact.
func TestHistogramMergeEqualsSingleStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	whole, _ := NewHistogram(-4, 12)
	a, _ := NewHistogram(-4, 12)
	b, _ := NewHistogram(-4, 12)
	for i := 0; i < 10000; i++ {
		// Dyadic values spanning underflow, every bucket, and overflow.
		v := math.Ldexp(float64(rng.Intn(1<<20)+1), -10) // k/1024, k in [1, 2^20]
		if rng.Intn(50) == 0 {
			v = 0 // underflow
		}
		whole.Observe(v)
		if rng.Intn(2) == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	merged := a.Snapshot()
	bs := b.Snapshot()
	if err := merged.Merge(&bs); err != nil {
		t.Fatal(err)
	}
	want := whole.Snapshot()
	if merged.Count != want.Count || merged.Underflow != want.Underflow || merged.Overflow != want.Overflow {
		t.Fatalf("merged count/under/over = %d/%d/%d, want %d/%d/%d",
			merged.Count, merged.Underflow, merged.Overflow, want.Count, want.Underflow, want.Overflow)
	}
	for i := range want.Counts {
		if merged.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d: merged %d, single-stream %d", i, merged.Counts[i], want.Counts[i])
		}
	}
	if math.Abs(merged.Sum-want.Sum) > 1e-9*math.Abs(want.Sum) {
		t.Fatalf("merged sum %v, single-stream %v", merged.Sum, want.Sum)
	}
}

func TestHistogramMergeLayoutMismatch(t *testing.T) {
	a, _ := NewHistogram(0, 4)
	b, _ := NewHistogram(1, 4)
	c, _ := NewHistogram(0, 5)
	as, bs, cs := a.Snapshot(), b.Snapshot(), c.Snapshot()
	if err := as.Merge(&bs); err == nil {
		t.Fatal("merge across first-exponent mismatch succeeded")
	}
	if err := as.Merge(&cs); err == nil {
		t.Fatal("merge across bucket-count mismatch succeeded")
	}
}

func TestSnapshotIntoReusesCapacity(t *testing.T) {
	h, _ := NewHistogram(0, 8)
	var s HistogramSnapshot
	h.SnapshotInto(&s)
	first := &s.Counts[0]
	h.Observe(1)
	h.SnapshotInto(&s)
	if &s.Counts[0] != first {
		t.Fatal("SnapshotInto reallocated a large-enough bucket slice")
	}
	if s.Counts[0] != 1 {
		t.Fatalf("bucket 0 = %d, want 1", s.Counts[0])
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	var c Counter
	var fc FloatCounter
	var g Gauge
	h, _ := NewHistogram(-7, 21)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		fc.Add(1.5)
		g.Set(3)
		h.Observe(0.25)
		h.Observe(1e9) // overflow path
		h.Observe(0)   // underflow path
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %v per run", allocs)
	}
}

func TestRegistryPanicsOnBadNames(t *testing.T) {
	mustPanic := func(name string, f func(r *Registry)) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f(NewRegistry())
	}
	mustPanic("invalid name", func(r *Registry) { r.Counter("9bad", "") })
	mustPanic("empty name", func(r *Registry) { r.Gauge("", "") })
	mustPanic("invalid label", func(r *Registry) { r.GaugeVec("ok_name", "", "0bad", 2) })
	mustPanic("duplicate", func(r *Registry) {
		r.Counter("twice", "")
		r.Gauge("twice", "")
	})
}

func TestRegistryMetricNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "")
	r.GaugeVec("b_gauge", "", "class", 3)
	r.HistogramVec("c_hist", "", "class", 2, 0, 4)
	got := r.MetricNames()
	want := []string{"a_total", "b_gauge", "c_hist"}
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}
