// Package httpsrv applies the PSD rate-allocation strategy to a real
// net/http server.
//
// Architecture (the paper's Fig. 1 realized on the HTTP path):
//
//	requests → admission gate → classifier → per-class FCFS queue →
//	per-class task-server goroutine (paced to its allocated rate) →
//	response
//
// Each incoming request is classified (X-PSD-Class header or ?class=
// query parameter), assigned a service demand in work units (?size= or
// drawn from the configured distribution), optionally vetted by a
// pluggable admission.Controller, and queued. One worker goroutine per
// class serves its queue FCFS, emulating a processor share on CPU-bound
// work. The pacing is rate-change-aware: the worker pins each in-flight
// job's remaining work and re-paces whenever the control plane installs
// a new class rate, so a size-x job served at rate r₁ for its first
// stretch and r₂ afterwards completes after x₁/r₁ + x₂/r₂ time units —
// exactly the GPS fluid model the allocator assumes — instead of running
// to a deadline computed from the rate read once at dequeue. A
// background loop drives the SAME control plane as the simulator — one
// shared control.Loop tick (estimate → feedback trim → allocate) every
// Window — so the live server's rate trajectory under a given windowed
// observation sequence is bit-identical to the simulator's (pinned by
// TestSimVsLiveRateParity).
//
// Only admitted requests feed the load estimator: traffic shed by the
// admission gate or a full class queue is accounted separately (rejected
// counts and rejected work in the metrics document), so overload does
// not inflate λ̂ for the very class being shed.
//
// Slowdown is measured per request as queueing delay divided by actual
// service duration. Telemetry is first-class (internal/obs): per-class
// slowdown and latency histograms, rejection and clamp counters, and the
// control-plane gauges live in a zero-allocation metric registry exposed
// both as the JSON document (/metrics) and in Prometheus text format
// (/metrics/prom or /metrics?format=prom); every control tick is
// additionally flight-recorded and dumpable at /debug/control. Metric
// reads never take the control-plane mutex, so a slow scrape cannot
// delay a reallocation tick.
package httpsrv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"psd/internal/admission"
	"psd/internal/control"
	"psd/internal/core"
	"psd/internal/dist"
	"psd/internal/obs"
	"psd/internal/rng"
	"psd/internal/stats"
	"psd/internal/timeutil"
)

// Config parametrizes the server.
type Config struct {
	// Deltas are the per-class differentiation parameters (class 0
	// should be 1 by convention). len(Deltas) defines the class count.
	Deltas []float64
	// Service is the size law used when a request does not declare
	// ?size= (default: the paper's Bounded Pareto).
	Service dist.Distribution
	// Allocator computes rate splits (default core.PSD).
	Allocator core.Allocator
	// TimeUnit is the wall-clock duration of one simulated time unit: a
	// size-1 request at rate 1 occupies its worker for TimeUnit.
	// Default 10ms.
	TimeUnit time.Duration
	// Window is the reallocation period in time units (default 100).
	Window float64
	// HistoryWindows is the estimator depth (default 5).
	HistoryWindows int
	// QueueCapacity bounds each class queue; excess requests receive
	// 503. Default 4096.
	QueueCapacity int
	// Feedback enables the control.RatioController trim loop on
	// measured slowdown ratios (the paper's future-work extension).
	Feedback bool
	// FeedbackGain is the controller gain when Feedback is on
	// (default 0.3).
	FeedbackGain float64
	// Estimator selects the control plane's load smoothing:
	// control.Window (the paper's default) or control.EWMA.
	Estimator control.EstimatorKind
	// EWMAAlpha is the EWMA smoothing factor in (0,1] (default 0.3).
	EWMAAlpha float64
	// MaxSize bounds the client-declared ?size= in work units (default
	// 1e6). Without a bound one request could pin a class worker for an
	// arbitrary wall-clock span — or overflow the pacing-duration
	// conversion and poison the load estimator with absurd work.
	MaxSize float64
	// Admission optionally gates requests before they reach the class
	// queues (nil admits everything). The controller's clock runs in time
	// units since server start; rejected requests receive 503 and are
	// accounted per class without feeding the load estimator. The server
	// serializes Admit calls, so non-thread-safe controllers
	// (admission.UtilizationBound, admission.TokenBucket) are fine.
	Admission admission.Controller
	// FlightRecorderSize is the control-plane flight recorder's ring
	// capacity in ticks (default 256): the last N control decisions are
	// always dumpable at /debug/control.
	FlightRecorderSize int
	// Seed drives the server-side size sampling.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Service == nil {
		c.Service = dist.PaperDefault()
	}
	if c.Allocator == nil {
		c.Allocator = core.PSD{}
	}
	if c.TimeUnit == 0 {
		c.TimeUnit = 10 * time.Millisecond
	}
	if c.Window == 0 {
		c.Window = 100
	}
	if c.HistoryWindows == 0 {
		c.HistoryWindows = 5
	}
	if c.QueueCapacity == 0 {
		c.QueueCapacity = 4096
	}
	if c.FeedbackGain == 0 {
		c.FeedbackGain = 0.3
	}
	if c.MaxSize == 0 {
		c.MaxSize = 1e6
	}
	if c.FlightRecorderSize == 0 {
		c.FlightRecorderSize = 256
	}
	return c
}

// job is one queued request.
type job struct {
	size     float64
	enqueued time.Time
	done     chan jobResult
}

type jobResult struct {
	delay    time.Duration
	service  time.Duration
	slowdown float64
}

// classRuntime is one task server.
type classRuntime struct {
	queue chan *job

	// rateSig wakes the class worker when the control plane installs a
	// new rate, so an in-flight job re-paces instead of finishing at a
	// stale deadline. Buffered (capacity 1) and reused: setRate posts a
	// non-blocking signal, keeping the reallocation tick allocation-free.
	// A coalesced or stale signal only costs the worker one idempotent
	// re-pace at the current rate.
	rateSig chan struct{}

	mu         sync.Mutex
	rate       float64
	arrivals   float64       // current-window count (admitted requests only)
	work       float64       // current-window work (admitted requests only)
	windowSlow stats.Welford // reset each window, feeds the controller

	// All completion/rejection accounting lives in the server's metric
	// registry (Server.met): lock-free atomics, not fields under mu.
}

// Server is the PSD HTTP front end. Create with New, then use as an
// http.Handler; Close releases the workers.
type Server struct {
	cfg      Config
	workload core.Workload
	classes  []*classRuntime

	// loopMu serializes the shared control plane: only the reallocation
	// tick takes it (metrics snapshots read registry atomics instead, so
	// a slow scrape never delays a tick). The tick itself is
	// allocation-free (control.Loop owns every buffer; the scratch below
	// feeds it and carries its outputs to the published gauges).
	loopMu      sync.Mutex
	loop        control.Loop
	tickCounts  []float64
	tickWork    []float64
	tickSlows   []float64
	tickLambdas []float64
	tickDeltas  []float64

	// Observability: the metric registry (served as JSON and Prometheus
	// text) and the control-plane flight recorder (hooked into the loop,
	// dumped at /debug/control).
	reg     *obs.Registry
	met     serverMetrics
	rec     *obs.FlightRecorder
	estName string

	sizeMu  sync.Mutex
	sizeRng *rng.Source

	// admMu serializes the (stateful, non-thread-safe) admission
	// controller; nil adm admits everything.
	admMu sync.Mutex
	adm   admission.Controller

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	started time.Time
}

// New builds and starts a Server (workers + reallocation loop).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Deltas) == 0 {
		return nil, errors.New("httpsrv: no classes")
	}
	for i, d := range cfg.Deltas {
		if !(d > 0) {
			return nil, fmt.Errorf("httpsrv: delta[%d] = %v must be positive", i, d)
		}
	}
	if !(cfg.MaxSize > 0) || math.IsInf(cfg.MaxSize, 0) {
		// +Inf would let ?size=+Inf through the (0, MaxSize] check and
		// overflow the pacing conversion — the hole MaxSize exists to close.
		return nil, fmt.Errorf("httpsrv: max size %v must be positive and finite", cfg.MaxSize)
	}
	w, err := core.WorkloadFromDist(cfg.Service)
	if err != nil {
		return nil, err
	}
	rec, err := obs.NewFlightRecorder(len(cfg.Deltas), cfg.FlightRecorderSize)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := len(cfg.Deltas)
	reg := obs.NewRegistry()
	s := &Server{
		cfg:         cfg,
		workload:    w,
		tickCounts:  make([]float64, n),
		tickWork:    make([]float64, n),
		tickSlows:   make([]float64, n),
		tickLambdas: make([]float64, n),
		tickDeltas:  make([]float64, n),
		reg:         reg,
		met:         newServerMetrics(reg, n),
		rec:         rec,
		sizeRng:     rng.New(cfg.Seed),
		adm:         cfg.Admission,
		ctx:         ctx,
		cancel:      cancel,
		started:     time.Now(),
	}
	if err := s.loop.Reset(control.LoopConfig{
		Deltas:         cfg.Deltas,
		Window:         cfg.Window,
		Estimator:      cfg.Estimator,
		HistoryWindows: cfg.HistoryWindows,
		EWMAAlpha:      cfg.EWMAAlpha,
		Allocator:      cfg.Allocator,
		Workload:       w,
		Feedback:       cfg.Feedback,
		FeedbackGain:   cfg.FeedbackGain,
		Recorder:       rec,
	}); err != nil {
		cancel()
		return nil, err
	}
	s.estName = s.loop.EstimatorName()
	s.classes = make([]*classRuntime, len(cfg.Deltas))
	even := 1 / float64(len(cfg.Deltas))
	for i := range s.classes {
		s.classes[i] = &classRuntime{
			queue:   make(chan *job, cfg.QueueCapacity),
			rateSig: make(chan struct{}, 1),
			rate:    even,
		}
		s.met.delta.At(i).Set(cfg.Deltas[i])
		s.met.effDelta.At(i).Set(cfg.Deltas[i])
		s.met.rate.At(i).Set(even)
		s.met.windowSlow.At(i).Set(math.NaN())
	}
	for i := range s.classes {
		s.wg.Add(1)
		go s.worker(i)
	}
	s.wg.Add(1)
	go s.reallocLoop()
	return s, nil
}

// Close stops the workers and the reallocation loop. Queued jobs are
// failed fast.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

// minPaceRate floors the pacing rate when the allocator hands a class a
// non-positive share (a positive allocation, however small, is honored
// honestly); each floored segment is counted in rateFloorClamps
// (exposed at /metrics) instead of being clamped invisibly.
const minPaceRate = 1e-3

// worker is the task server for one class: FCFS, paced to the class
// rate, re-pacing in flight whenever the rate changes.
func (s *Server) worker(class int) {
	defer s.wg.Done()
	cr := s.classes[class]
	timer := timeutil.NewStoppedTimer()
	defer timer.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-cr.queue:
			start := time.Now()
			delay := start.Sub(j.enqueued)
			service, ok := s.pace(cr, j.size, timer)
			if !ok {
				close(j.done)
				return
			}
			slowdown := 0.0
			if service > 0 {
				slowdown = float64(delay) / float64(service)
			}
			s.recordCompletion(class, cr, delay, service, slowdown)
			j.done <- jobResult{delay: delay, service: service, slowdown: slowdown}
		}
	}
}

// paceOutcome reports how one occupy segment ended.
type paceOutcome int

const (
	paceDone     paceOutcome = iota // segment deadline reached
	paceRepace                      // rate changed mid-segment: recompute
	paceShutdown                    // server closed mid-service
)

// pace occupies the worker for size work units against cr's live rate —
// the GPS fluid model on wall clock. The job's remaining work is pinned
// here, not a deadline: each segment runs at the rate read at its start,
// and a rate change ends the segment early, converts its elapsed wall
// time back into completed work at the segment's rate, and re-paces the
// remainder at the new rate. A size-x job served at r₁ then r₂ therefore
// completes after x₁/r₁ + x₂/r₂ time units (pinned within 1% by
// TestMultiWindowFluidCompletion), where the old read-once pacing would
// have held the dequeue-time rate for the whole job. Returns the total
// service duration, or ok=false if the server shut down mid-service.
func (s *Server) pace(cr *classRuntime, size float64, timer *time.Timer) (service time.Duration, ok bool) {
	start := time.Now()
	segStart := start
	remaining := size
	for {
		rate := cr.currentRate()
		if rate <= 0 {
			rate = minPaceRate
			s.met.rateFloorClamps.Inc()
		}
		deadline := segStart.Add(time.Duration(remaining / rate * float64(s.cfg.TimeUnit)))
		switch s.occupy(deadline, cr.rateSig, timer) {
		case paceDone:
			return time.Since(start), true
		case paceRepace:
			now := time.Now()
			remaining -= float64(now.Sub(segStart)) / float64(s.cfg.TimeUnit) * rate
			if remaining <= 0 {
				return now.Sub(start), true
			}
			segStart = now
		case paceShutdown:
			return 0, false
		}
	}
}

// occupy blocks the worker until the deadline, emulating CPU-bound work.
// Timers in Go routinely overshoot by hundreds of microseconds, which
// would silently tax slow classes (whose utilization sits closest to 1)
// and skew the achieved slowdown ratios; so the bulk of the wait uses a
// (caller-owned, reused) timer and the final stretch spins on the clock,
// yielding the processor each probe so sibling workers on the same P
// still run. A rate-change signal or shutdown ends the wait early.
func (s *Server) occupy(deadline time.Time, rateSig <-chan struct{}, timer *time.Timer) paceOutcome {
	const spinWindow = 500 * time.Microsecond
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return paceDone
		}
		if remain > spinWindow {
			timer.Reset(remain - spinWindow)
			select {
			case <-timer.C:
			case <-rateSig:
				timeutil.StopTimer(timer)
				return paceRepace
			case <-s.ctx.Done():
				timeutil.StopTimer(timer)
				return paceShutdown
			}
			continue
		}
		// Spin the last stretch; stay rate-change- and shutdown-responsive.
		select {
		case <-rateSig:
			return paceRepace
		case <-s.ctx.Done():
			return paceShutdown
		default:
			runtime.Gosched()
		}
	}
}

func (cr *classRuntime) currentRate() float64 {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return cr.rate
}

// recordCompletion accounts one served request: the lifetime slowdown and
// latency histograms (lock-free registry atomics) plus the current-window
// slowdown accumulator that feeds the controller (under cr.mu).
func (s *Server) recordCompletion(class int, cr *classRuntime, delay, service time.Duration, sl float64) {
	s.met.slowdown.At(class).Observe(sl)
	s.met.latency.At(class).Observe((delay + service).Seconds())
	cr.mu.Lock()
	cr.windowSlow.Add(sl)
	cr.mu.Unlock()
}

func (cr *classRuntime) observeArrival(size float64) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	cr.arrivals++
	cr.work += size
}

// closeWindow harvests and resets the per-window accumulators.
func (cr *classRuntime) closeWindow() (count, work, meanSlow float64) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	count, work = cr.arrivals, cr.work
	cr.arrivals, cr.work = 0, 0
	if cr.windowSlow.N() > 0 {
		meanSlow = cr.windowSlow.Mean()
	} else {
		meanSlow = math.NaN()
	}
	cr.windowSlow = stats.Welford{}
	return count, work, meanSlow
}

// reject accounts one shed request (admission gate or full queue) in the
// metric registry; shed traffic never reaches the load estimator.
func (s *Server) reject(class int, size float64, byAdmission bool) {
	if byAdmission {
		s.met.rejAdmission.At(class).Inc()
	} else {
		s.met.rejQueueFull.At(class).Inc()
	}
	s.met.rejWork.At(class).Add(size)
}

// setRate installs a new class rate and, when it actually changed, wakes
// the worker so any in-flight job re-paces. The signal send is
// non-blocking into a reused buffered channel: no allocation on the
// reallocation tick (gated by BenchmarkReallocate) and coalescing is
// harmless — the worker re-reads the current rate when it wakes.
func (cr *classRuntime) setRate(r float64) {
	cr.mu.Lock()
	changed := r != cr.rate
	cr.rate = r
	cr.mu.Unlock()
	if changed {
		select {
		case cr.rateSig <- struct{}{}:
		default:
		}
	}
}

// reallocLoop closes estimation windows and re-runs the allocator.
func (s *Server) reallocLoop() {
	defer s.wg.Done()
	period := time.Duration(s.cfg.Window * float64(s.cfg.TimeUnit))
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-ticker.C:
			s.reallocate()
		}
	}
}

// reallocate performs one tick of the shared control plane: harvest each
// class's window counters into preallocated scratch, drive control.Loop
// (the exact step the simulator runs), and install the resulting rates.
// The tick itself allocates nothing (gated by BenchmarkReallocate).
// Exposed via the metrics reallocation counters; also called by tests
// directly for determinism.
func (s *Server) reallocate() {
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	for i, cr := range s.classes {
		s.tickCounts[i], s.tickWork[i], s.tickSlows[i] = cr.closeWindow()
	}
	rates, err := s.loop.Tick(control.TickInput{
		Counts:            s.tickCounts,
		Work:              s.tickWork,
		MeasuredSlowdowns: s.tickSlows,
	})
	// Publish the tick's control state into the scrape gauges while still
	// holding loopMu (the loop's buffers are only stable under it); the
	// gauge writes themselves are lock-free atomics, so concurrent
	// snapshots read them without ever taking loopMu.
	s.loop.LambdasInto(s.tickLambdas)
	s.loop.EffectiveDeltasInto(s.tickDeltas)
	for i := range s.classes {
		s.met.lambda.At(i).Set(s.tickLambdas[i])
		s.met.effDelta.At(i).Set(s.tickDeltas[i])
		s.met.windowSlow.At(i).Set(s.tickSlows[i])
	}
	if err != nil {
		s.met.allocFailures.Inc() // transient infeasibility: keep previous rates
		return
	}
	s.met.reallocations.Inc()
	for i, cr := range s.classes {
		cr.setRate(rates[i])
		s.met.rate.At(i).Set(rates[i])
	}
}

// classify extracts the request's class (header beats query), clamped to
// the configured range; absent/invalid values map to the lowest class.
func (s *Server) classify(r *http.Request) int {
	v := r.Header.Get("X-PSD-Class")
	if v == "" {
		v = r.URL.Query().Get("class")
	}
	c, err := strconv.Atoi(v)
	if err != nil || c < 0 {
		return len(s.cfg.Deltas) - 1 // unclassified traffic gets the lowest tier
	}
	if c >= len(s.cfg.Deltas) {
		return len(s.cfg.Deltas) - 1
	}
	return c
}

// sizeOf extracts the declared work size or samples the configured law.
// Declared sizes are bounded by Config.MaxSize: an unbounded declaration
// could pin a class worker for an arbitrary span or overflow the
// float64→time.Duration pacing conversion (implementation-defined, on
// amd64 a past deadline — the job would "complete" instantly while its
// absurd work still poisons the estimator window).
func (s *Server) sizeOf(r *http.Request) (float64, error) {
	if v := r.URL.Query().Get("size"); v != "" {
		size, err := strconv.ParseFloat(v, 64)
		if err != nil || !(size > 0) || size > s.cfg.MaxSize {
			return 0, fmt.Errorf("httpsrv: invalid size %q (must be in (0, %g])", v, s.cfg.MaxSize)
		}
		return size, nil
	}
	s.sizeMu.Lock()
	defer s.sizeMu.Unlock()
	return s.cfg.Service.Sample(s.sizeRng), nil
}

// Response is the JSON body returned for served work requests.
type Response struct {
	Class     int     `json:"class"`
	Size      float64 `json:"size"`
	DelayMs   float64 `json:"delay_ms"`
	ServiceMs float64 `json:"service_ms"`
	Slowdown  float64 `json:"slowdown"`
}

// nowUnits is the admission controllers' clock: time units since server
// start.
func (s *Server) nowUnits() float64 {
	return float64(time.Since(s.started)) / float64(s.cfg.TimeUnit)
}

// admit consults the configured admission controller (nil admits all).
func (s *Server) admit(class int, size float64) bool {
	if s.adm == nil {
		return true
	}
	now := s.nowUnits()
	s.admMu.Lock()
	ok := s.adm.Admit(class, size, now)
	s.admMu.Unlock()
	return ok
}

// refundAdmission returns an admitted request's credit when it was
// dropped before service (full class queue): without the refund the
// gate's admitted-load state double-counts shed demand and later
// admissible traffic is rejected below the contracted rate.
func (s *Server) refundAdmission(class int, size float64) {
	ref, ok := s.adm.(admission.Refunder)
	if !ok {
		return
	}
	now := s.nowUnits()
	s.admMu.Lock()
	ref.Refund(class, size, now)
	s.admMu.Unlock()
}

// ServeHTTP implements http.Handler: every request is classified, vetted
// by the admission gate, queued, served by its class's task server, and
// answered with its measured slowdown. GET /metrics (or the path the
// caller mounts Metrics on) should be routed to the Metrics handler
// instead.
//
// Only requests that actually enter a class queue feed the load
// estimator. Observing at arrival time (the old behavior) let
// 503-rejected traffic inflate λ̂ and the work estimate, over-allocating
// rate to the very class being shed; shed demand is instead counted per
// class in the rejected_* metrics.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	class := s.classify(r)
	size, err := s.sizeOf(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cr := s.classes[class]
	if !s.admit(class, size) {
		s.reject(class, size, true)
		http.Error(w, "admission denied", http.StatusServiceUnavailable)
		return
	}
	j := &job{size: size, enqueued: time.Now(), done: make(chan jobResult, 1)}
	select {
	case cr.queue <- j:
		cr.observeArrival(size)
	default:
		if s.adm != nil {
			s.refundAdmission(class, size)
		}
		s.reject(class, size, false)
		http.Error(w, "class queue full", http.StatusServiceUnavailable)
		return
	}
	select {
	case res, ok := <-j.done:
		if !ok {
			http.Error(w, "server shutting down", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(Response{
			Class:     class,
			Size:      size,
			DelayMs:   float64(res.delay) / float64(time.Millisecond),
			ServiceMs: float64(res.service) / float64(time.Millisecond),
			Slowdown:  res.slowdown,
		})
	case <-r.Context().Done():
		// Client gave up; the worker will still drain the job.
	case <-s.ctx.Done():
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	}
}

// Mux returns a ready-to-serve mux: work at "/", the JSON metrics
// document at "/metrics" (Prometheus text with ?format=prom), the
// Prometheus exposition at "/metrics/prom", and the control-plane flight
// recorder dump at "/debug/control".
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.Metrics())
	mux.Handle("/metrics/prom", s.PromMetrics())
	mux.Handle("/debug/control", s.ControlDump())
	mux.Handle("/", s)
	return mux
}

// Rates returns the current per-class rates (for tests and dashboards).
func (s *Server) Rates() []float64 {
	out := make([]float64, len(s.classes))
	for i, cr := range s.classes {
		out[i] = cr.currentRate()
	}
	return out
}
