// Package queueing implements the closed-form M/G/1 results the paper's
// rate-allocation strategy is built on: the Pollaczek–Khinchin waiting
// time, the expected slowdown of an M/G_B/1 FCFS queue (Lemma 1), its
// scaling under proportional capacity allocation (Lemma 2 / Theorem 1),
// and the M/D/1 special case (Eq. 15).
//
// Conventions: job sizes are expressed in work units; a server (or task
// server) of rate r drains r work units per time unit. All formulas
// require stability (λ·E[X] < r) and return ErrUnstable otherwise.
package queueing

import (
	"errors"
	"fmt"
	"math"

	"psd/internal/dist"
)

// ErrUnstable reports a queue whose offered load meets or exceeds its
// capacity, for which no steady state exists.
var ErrUnstable = errors.New("queueing: offered load >= capacity (unstable queue)")

// ErrDivergent reports a metric with no finite value under the given
// service distribution (e.g. slowdown when E[1/X] diverges).
var ErrDivergent = errors.New("queueing: metric diverges for this service distribution")

// Utilization returns ρ = λ·E[X]/rate, the fraction of the server's
// capacity consumed by a Poisson stream of rate λ with job sizes d.
func Utilization(lambda float64, d dist.Distribution, rate float64) float64 {
	return lambda * d.Mean() / rate
}

// PKWait returns the Pollaczek–Khinchin mean waiting time of an M/G/1 FCFS
// queue with arrival rate λ and service times drawn from d, served at unit
// rate:
//
//	E[W] = λ E[X²] / (2 (1 − λE[X]))
func PKWait(lambda float64, d dist.Distribution) (float64, error) {
	return PKWaitRate(lambda, d, 1)
}

// PKWaitRate is PKWait for a server of capacity rate: job sizes are scaled
// by 1/rate (Lemma 2) before applying the P-K formula.
func PKWaitRate(lambda float64, d dist.Distribution, rate float64) (float64, error) {
	if err := validate(lambda, rate); err != nil {
		return 0, err
	}
	rho := lambda * d.Mean() / rate
	if rho >= 1 {
		return 0, fmt.Errorf("%w: rho=%v", ErrUnstable, rho)
	}
	m2 := d.SecondMoment() / (rate * rate)
	return lambda * m2 / (2 * (1 - rho)), nil
}

// ExpectedSlowdown returns Lemma 1 of the paper: the mean slowdown
// E[S] = E[W]·E[1/X] of an M/G/1 FCFS queue at unit rate. FCFS makes a
// job's waiting time independent of its own service time, so the
// expectation factorizes.
func ExpectedSlowdown(lambda float64, d dist.Distribution) (float64, error) {
	return TaskServerSlowdown(lambda, d, 1)
}

// TaskServerSlowdown returns Theorem 1 of the paper: the mean slowdown of
// class-i requests on a task server with normalized capacity rate, where
// jobs arrive Poisson(λ) with sizes from d (sizes measured against the
// full server's unit rate):
//
//	E[S] = λ E[X²] E[1/X] / (2 (rate − λE[X]))
//
// Note the combination of Lemma 1 and Lemma 2: the rate enters only
// through the surplus capacity (rate − λE[X]).
func TaskServerSlowdown(lambda float64, d dist.Distribution, rate float64) (float64, error) {
	if err := validate(lambda, rate); err != nil {
		return 0, err
	}
	inv := d.InverseMoment()
	if math.IsInf(inv, 1) || math.IsNaN(inv) {
		return 0, fmt.Errorf("%w: E[1/X] does not exist for %s", ErrDivergent, d)
	}
	if lambda == 0 {
		return 0, nil
	}
	surplus := rate - lambda*d.Mean()
	if surplus <= 0 {
		return 0, fmt.Errorf("%w: rate=%v demand=%v", ErrUnstable, rate, lambda*d.Mean())
	}
	return lambda * d.SecondMoment() * inv / (2 * surplus), nil
}

// MD1Slowdown returns Eq. 15 of the paper: the mean slowdown of an M/D/1
// FCFS queue with constant job size xbar on a task server of capacity
// rate:
//
//	E[S] = λ·x̄ / (2 (rate − λ·x̄))
func MD1Slowdown(lambda, xbar, rate float64) (float64, error) {
	if err := validate(lambda, rate); err != nil {
		return 0, err
	}
	if !(xbar > 0) {
		return 0, fmt.Errorf("queueing: job size %v must be positive", xbar)
	}
	if lambda == 0 {
		return 0, nil
	}
	surplus := rate - lambda*xbar
	if surplus <= 0 {
		return 0, fmt.Errorf("%w: rate=%v demand=%v", ErrUnstable, rate, lambda*xbar)
	}
	return lambda * xbar / (2 * surplus), nil
}

// MM1Wait returns the M/M/1 FCFS mean waiting time λ/(μ(μ−λ)) for
// cross-checking the DES engine against textbook results (service rate μ
// jobs per time unit at unit capacity).
func MM1Wait(lambda, mu float64) (float64, error) {
	if err := validate(lambda, 1); err != nil {
		return 0, err
	}
	if !(mu > 0) {
		return 0, fmt.Errorf("queueing: service rate %v must be positive", mu)
	}
	if lambda >= mu {
		return 0, fmt.Errorf("%w: lambda=%v mu=%v", ErrUnstable, lambda, mu)
	}
	return lambda / (mu * (mu - lambda)), nil
}

// SlowdownConstant returns C = E[X²]·E[1/X]/2, the distribution-dependent
// constant that multiplies the load term in Theorem 1 and Eq. 18. It is
// the quantity the rate allocator needs from the workload model.
func SlowdownConstant(d dist.Distribution) (float64, error) {
	inv := d.InverseMoment()
	if math.IsInf(inv, 1) || math.IsNaN(inv) {
		return 0, fmt.Errorf("%w: E[1/X] does not exist for %s", ErrDivergent, d)
	}
	return d.SecondMoment() * inv / 2, nil
}

func validate(lambda, rate float64) error {
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return fmt.Errorf("queueing: arrival rate %v must be finite and non-negative", lambda)
	}
	if !(rate > 0) || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return fmt.Errorf("queueing: capacity %v must be positive and finite", rate)
	}
	return nil
}
