// Package loadgen drives HTTP load at a PSD server (internal/httpsrv):
// one open-loop Poisson arrival process per class, sizes drawn from a
// configurable law, with client-side latency and server-reported slowdown
// collection. It backs cmd/psdload and the httpserver example.
package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"psd/internal/dist"
	"psd/internal/rng"
	"psd/internal/stats"
)

// Config parametrizes a load run.
type Config struct {
	// BaseURL is the work endpoint (e.g. "http://127.0.0.1:8080/").
	BaseURL string
	// Lambdas are the per-class arrival rates in requests per *time
	// unit*; TimeUnit converts to wall-clock (must match the server's).
	Lambdas []float64
	// TimeUnit is the wall-clock duration of one time unit (default
	// 10ms, matching httpsrv's default).
	TimeUnit time.Duration
	// Service draws request sizes client-side so the server and client
	// agree on the demand (default: the paper's Bounded Pareto).
	Service dist.Distribution
	// Duration is the wall-clock length of the run.
	Duration time.Duration
	// Seed drives the arrival and size streams.
	Seed uint64
	// Client optionally overrides the HTTP client.
	Client *http.Client
}

// ClassReport aggregates one class's observations.
type ClassReport struct {
	Sent          int64
	Completed     int64
	Errors        int64
	MeanSlowdown  float64 // server-reported
	P95Slowdown   float64
	MeanLatencyMs float64 // client-observed end-to-end
	MeanServiceMs float64 // server-reported
}

// Report is the run outcome.
type Report struct {
	Classes []ClassReport
	Elapsed time.Duration
}

// serverResponse mirrors httpsrv.Response.
type serverResponse struct {
	Slowdown  float64 `json:"slowdown"`
	ServiceMs float64 `json:"service_ms"`
}

type classCollector struct {
	mu        sync.Mutex
	sent      int64
	completed int64
	errors    int64
	slow      stats.Welford
	slowP95   *stats.P2
	latency   stats.Welford
	service   stats.Welford
}

// Run drives the configured load until Duration elapses (or ctx is
// canceled) and returns the aggregated report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("loadgen: BaseURL required")
	}
	if _, err := url.Parse(cfg.BaseURL); err != nil {
		return nil, fmt.Errorf("loadgen: bad BaseURL: %w", err)
	}
	if len(cfg.Lambdas) == 0 {
		return nil, errors.New("loadgen: no class lambdas")
	}
	if cfg.TimeUnit == 0 {
		cfg.TimeUnit = 10 * time.Millisecond
	}
	if cfg.Service == nil {
		cfg.Service = dist.PaperDefault()
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration %v must be positive", cfg.Duration)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	collectors := make([]*classCollector, len(cfg.Lambdas))
	for i := range collectors {
		collectors[i] = &classCollector{slowP95: stats.NewP2(0.95)}
	}

	var wg sync.WaitGroup
	src := rng.New(cfg.Seed)
	start := time.Now()
	for class, lambda := range cfg.Lambdas {
		if lambda <= 0 {
			continue
		}
		wg.Add(1)
		go func(class int, lambda float64, arrivals, sizes *rng.Source) {
			defer wg.Done()
			col := collectors[class]
			var reqWG sync.WaitGroup
			for {
				// Exponential inter-arrival in wall-clock terms.
				gap := time.Duration(arrivals.ExpFloat64(lambda) * float64(cfg.TimeUnit))
				select {
				case <-ctx.Done():
					reqWG.Wait()
					return
				case <-time.After(gap):
				}
				size := cfg.Service.Sample(sizes)
				reqWG.Add(1)
				go func() {
					defer reqWG.Done()
					fire(ctx, client, cfg.BaseURL, class, size, col)
				}()
			}
		}(class, lambda, src.Split(uint64(2*class+1)), src.Split(uint64(2*class+2)))
	}
	wg.Wait()

	rep := &Report{Classes: make([]ClassReport, len(cfg.Lambdas)), Elapsed: time.Since(start)}
	for i, col := range collectors {
		col.mu.Lock()
		rep.Classes[i] = ClassReport{
			Sent:          col.sent,
			Completed:     col.completed,
			Errors:        col.errors,
			MeanSlowdown:  col.slow.Mean(),
			P95Slowdown:   col.slowP95.Value(),
			MeanLatencyMs: col.latency.Mean(),
			MeanServiceMs: col.service.Mean(),
		}
		col.mu.Unlock()
	}
	return rep, nil
}

func fire(ctx context.Context, client *http.Client, base string, class int, size float64, col *classCollector) {
	col.mu.Lock()
	col.sent++
	col.mu.Unlock()

	u := fmt.Sprintf("%s?class=%d&size=%s", base, class, strconv.FormatFloat(size, 'g', -1, 64))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		col.fail()
		return
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		col.fail()
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		col.fail()
		return
	}
	var sr serverResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		col.fail()
		return
	}
	lat := time.Since(t0)
	col.mu.Lock()
	col.completed++
	col.slow.Add(sr.Slowdown)
	col.slowP95.Add(sr.Slowdown)
	col.latency.Add(float64(lat) / float64(time.Millisecond))
	col.service.Add(sr.ServiceMs)
	col.mu.Unlock()
}

func (c *classCollector) fail() {
	c.mu.Lock()
	c.errors++
	c.mu.Unlock()
}

// SlowdownRatio returns the achieved mean slowdown ratio of class i to
// class 0, or NaN when unavailable.
func (r *Report) SlowdownRatio(i int) float64 {
	if i <= 0 || i >= len(r.Classes) {
		return 0
	}
	base := r.Classes[0].MeanSlowdown
	if !(base > 0) {
		return 0
	}
	return r.Classes[i].MeanSlowdown / base
}
