package simsrv

import (
	"testing"

	"psd/internal/admission"
)

// TestAdmissionProtectsOverloadedServer: at offered load 1.3 the PSD
// allocator is permanently infeasible and queues grow without bound; a
// utilization-bound admission controller sheds enough work to restore a
// stable, differentiated system (related work §5's combination of
// admission control and scheduling).
func TestAdmissionProtectsOverloadedServer(t *testing.T) {
	mk := func(ctrl admission.Controller) Config {
		cfg := EqualLoadConfig([]float64{1, 2}, 1.3, nil) // 30% overload
		cfg.Warmup = 2000
		cfg.Horizon = 15000
		cfg.Seed = 4
		cfg.Admission = ctrl
		// The utilization bound sheds large jobs first, so the admitted
		// count rate stays near the offered rate while admitted work
		// drops — count-based estimation would read phantom overload.
		cfg.EstimateFromWork = ctrl != nil
		return cfg
	}

	ub, err := admission.NewUtilizationBound(0.85, 500)
	if err != nil {
		t.Fatal(err)
	}
	protected, err := Run(mk(ub))
	if err != nil {
		t.Fatal(err)
	}
	unprotected, err := Run(mk(nil))
	if err != nil {
		t.Fatal(err)
	}

	// The controller must actually shed load…
	var rejected int64
	for _, cs := range protected.Classes {
		rejected += cs.Rejected
	}
	if rejected == 0 {
		t.Fatal("no rejections at 30% overload")
	}
	// …and the protected system must be dramatically healthier.
	if !(protected.SystemSlowdown < unprotected.SystemSlowdown/3) {
		t.Fatalf("admission control ineffective: protected %v vs unprotected %v",
			protected.SystemSlowdown, unprotected.SystemSlowdown)
	}
	// Differentiation ordering survives admission control.
	if !(protected.Classes[0].MeanSlowdown < protected.Classes[1].MeanSlowdown) {
		t.Fatalf("ordering violated under admission control: %v vs %v",
			protected.Classes[0].MeanSlowdown, protected.Classes[1].MeanSlowdown)
	}
	// Reallocation should mostly succeed once load is shed.
	if protected.AllocFailures > protected.Reallocations {
		t.Fatalf("allocator still mostly infeasible: %d failures vs %d successes",
			protected.AllocFailures, protected.Reallocations)
	}
}

// TestTokenBucketAdmissionIsolation: a flood on class 2 cannot consume
// class 1's admission capacity under per-class token buckets.
func TestTokenBucketAdmissionIsolation(t *testing.T) {
	cfg := EqualLoadConfig([]float64{1, 2}, 0.5, nil)
	cfg.Warmup = 1000
	cfg.Horizon = 10000
	cfg.Seed = 9
	// Class 2 floods at 4× its declared share. The burst must exceed the
	// Bounded Pareto upper bound (100): a job larger than the burst can
	// never gather enough credit and would be rejected even from an
	// otherwise idle class.
	cfg.Classes[1].Lambda *= 4
	tb, err := admission.NewTokenBucket([]float64{0.4, 0.4}, 150)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Admission = tb
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes[0].Rejected != 0 {
		t.Fatalf("well-behaved class suffered %d rejections", res.Classes[0].Rejected)
	}
	if res.Classes[1].Rejected == 0 {
		t.Fatal("flooding class was not throttled")
	}
	if res.Classes[0].Count == 0 || res.Classes[1].Count == 0 {
		t.Fatal("classes starved")
	}
}

func TestNoAdmissionFieldMeansNoRejections(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.5)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, cs := range res.Classes {
		if cs.Rejected != 0 {
			t.Fatalf("class %d reports %d rejections without a controller", i, cs.Rejected)
		}
	}
}
