package des

import (
	"sort"
	"testing"
	"testing/quick"

	"psd/internal/rng"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var fired []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	s.Run()
	if len(fired) != 5 {
		t.Fatalf("fired %d events", len(fired))
	}
	if !sort.Float64sAreSorted(fired) {
		t.Fatalf("events out of order: %v", fired)
	}
	if s.Now() != 5 {
		t.Fatalf("final time = %v", s.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1.0, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	s := New()
	var hits []float64
	s.Schedule(1, func() {
		hits = append(hits, s.Now())
		s.Schedule(2, func() { hits = append(hits, s.Now()) })
	})
	s.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	e := s.Schedule(1, func() { ran = true })
	s.Cancel(e)
	s.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	if !e.Canceled() {
		t.Fatal("event not marked canceled")
	}
	// Double cancel and nil cancel are no-ops.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestCancelRemovesFromHeap(t *testing.T) {
	s := New()
	events := make([]*Event, 100)
	for i := range events {
		events[i] = s.Schedule(float64(i), func() {})
	}
	for _, e := range events[:50] {
		s.Cancel(e)
	}
	if s.Pending() != 50 {
		t.Fatalf("pending = %d after eager removal, want 50", s.Pending())
	}
}

func TestCancelDuringExecution(t *testing.T) {
	s := New()
	ran := false
	var victim *Event
	s.Schedule(1, func() { s.Cancel(victim) })
	victim = s.Schedule(2, func() { ran = true })
	s.Run()
	if ran {
		t.Fatal("event canceled by an earlier event still ran")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []float64
	for _, d := range []float64{1, 2, 3, 4, 5} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3 (inclusive horizon)", len(fired))
	}
	if s.Now() != 3 {
		t.Fatalf("time = %v, want exactly horizon", s.Now())
	}
	s.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("remaining events not run: %d", len(fired))
	}
	if s.Now() != 10 {
		t.Fatalf("time should advance to horizon even with no events: %v", s.Now())
	}
}

func TestRunUntilInclusiveBoundary(t *testing.T) {
	s := New()
	ran := false
	s.Schedule(3, func() { ran = true })
	s.RunUntil(3)
	if !ran {
		t.Fatal("event at exactly the horizon should fire")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.Schedule(-1, func() {})
}

func TestScheduleAtPastPanics(t *testing.T) {
	s := New()
	s.Schedule(5, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt in the past did not panic")
		}
	}()
	s.ScheduleAt(1, func() {})
}

func TestProcessedCount(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Schedule(float64(i), func() {})
	}
	e := s.Schedule(100, func() {})
	s.Cancel(e)
	s.Run()
	if s.Processed() != 10 {
		t.Fatalf("processed = %d, want 10", s.Processed())
	}
}

func TestDrain(t *testing.T) {
	s := New()
	ran := false
	s.Schedule(1, func() { ran = true })
	s.Drain()
	s.Run()
	if ran || s.Pending() != 0 {
		t.Fatal("drain did not clear events")
	}
}

// TestDeterministicReplay runs the same randomized event program twice and
// requires identical execution traces.
func TestDeterministicReplay(t *testing.T) {
	run := func(seed uint64) []float64 {
		r := rng.New(seed)
		s := New()
		var trace []float64
		var spawn func()
		count := 0
		spawn = func() {
			trace = append(trace, s.Now())
			count++
			if count < 2000 {
				s.Schedule(r.ExpFloat64(1), spawn)
				if r.Float64() < 0.3 {
					e := s.Schedule(r.Float64()*5, func() { trace = append(trace, -s.Now()) })
					if r.Float64() < 0.5 {
						s.Cancel(e)
					}
				}
			}
		}
		s.Schedule(0, spawn)
		s.Run()
		return trace
	}
	a := run(42)
	b := run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestHeapOrderingProperty: any set of delays is executed in sorted order.
func TestHeapOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		s := New()
		var delays []float64
		for _, d := range raw {
			if d >= 0 && d < 1e12 { // finite, non-negative
				delays = append(delays, d)
			}
		}
		var fired []float64
		for _, d := range delays {
			d := d
			s.Schedule(d, func() { fired = append(fired, d) })
		}
		s.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestManyReschedules(t *testing.T) {
	// Emulates the task-server pattern: repeatedly cancel + reschedule a
	// completion event. The heap must stay consistent.
	s := New()
	completions := 0
	var e *Event
	for i := 0; i < 1000; i++ {
		if e != nil {
			s.Cancel(e)
		}
		e = s.Schedule(float64(1000-i), func() { completions++ })
	}
	s.Run()
	if completions != 1 {
		t.Fatalf("completions = %d, want exactly 1 (last scheduled)", completions)
	}
	if s.Now() != 1 {
		t.Fatalf("final time = %v, want 1", s.Now())
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	s := New()
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		s.Schedule(r.Float64()*100, func() {})
		if s.Pending() > 1024 {
			for s.Pending() > 512 {
				s.Step()
			}
		}
	}
	s.Run()
}

func BenchmarkCancelReschedule(b *testing.B) {
	s := New()
	var e *Event
	for i := 0; i < b.N; i++ {
		if e != nil {
			s.Cancel(e)
		}
		e = s.ScheduleAt(s.Now()+1+float64(i%7), func() {})
	}
}
