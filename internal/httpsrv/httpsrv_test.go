package httpsrv

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"psd/internal/core"
)

// fastServer uses a tiny time unit so tests complete quickly.
func fastServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Deltas == nil {
		cfg.Deltas = []float64{1, 2}
	}
	if cfg.TimeUnit == 0 {
		cfg.TimeUnit = time.Millisecond
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Mux())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("accepted empty deltas")
	}
	if _, err := New(Config{Deltas: []float64{1, -1}}); err == nil {
		t.Error("accepted negative delta")
	}
	if _, err := New(Config{Deltas: []float64{1}, MaxSize: math.Inf(1)}); err == nil {
		t.Error("accepted infinite max size (re-opens the ?size=+Inf overflow hole)")
	}
	if _, err := New(Config{Deltas: []float64{1}, MaxSize: -1}); err == nil {
		t.Error("accepted negative max size")
	}
}

func TestSingleRequestLifecycle(t *testing.T) {
	_, ts := fastServer(t, Config{})
	var resp Response
	r := getJSON(t, ts.URL+"/?class=0&size=2", &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	if resp.Class != 0 || resp.Size != 2 {
		t.Fatalf("echo wrong: %+v", resp)
	}
	// Idle server: initial rate is 1/2, so service ≈ 2/0.5 = 4 time
	// units = 4ms; generous upper bound for CI jitter.
	if resp.ServiceMs < 3 || resp.ServiceMs > 100 {
		t.Fatalf("service %vms outside [3, 100]", resp.ServiceMs)
	}
	if resp.Slowdown < 0 {
		t.Fatalf("negative slowdown: %+v", resp)
	}
}

func TestClassificationHeaderBeatsQuery(t *testing.T) {
	s, ts := fastServer(t, Config{})
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/?class=0&size=1", nil)
	req.Header.Set("X-PSD-Class", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body Response
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Class != 1 {
		t.Fatalf("header classification ignored: %+v", body)
	}
	_ = s
}

func TestUnclassifiedGetsLowestTier(t *testing.T) {
	_, ts := fastServer(t, Config{Deltas: []float64{1, 2, 4}})
	var resp Response
	getJSON(t, ts.URL+"/?size=1", &resp)
	if resp.Class != 2 {
		t.Fatalf("unclassified traffic got class %d, want lowest tier 2", resp.Class)
	}
	getJSON(t, ts.URL+"/?class=99&size=1", &resp)
	if resp.Class != 2 {
		t.Fatalf("overflow class mapped to %d, want 2", resp.Class)
	}
}

func TestInvalidSizeRejected(t *testing.T) {
	_, ts := fastServer(t, Config{})
	for _, q := range []string{"size=abc", "size=-1", "size=0", "size=1e12", "size=+Inf"} {
		r := getJSON(t, ts.URL+"/?class=0&"+q, nil)
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, r.StatusCode)
		}
	}
}

func TestUndeclaredSizeSampled(t *testing.T) {
	_, ts := fastServer(t, Config{})
	var resp Response
	getJSON(t, ts.URL+"/?class=0", &resp)
	if !(resp.Size >= 0.1 && resp.Size <= 100) {
		t.Fatalf("sampled size %v outside BP support", resp.Size)
	}
}

func TestFCFSWithinClass(t *testing.T) {
	_, ts := fastServer(t, Config{Deltas: []float64{1}})
	// Fire a simultaneous burst at the single-worker class: with one
	// task server and ~5ms of work per request, serialization forces a
	// wide delay spread — the last-served request waits several service
	// times while the first waits ~0. (Arrival order itself is subject
	// to goroutine scheduling, so the assertion is on the spread, not on
	// per-index monotonicity.)
	const n = 6
	var wg sync.WaitGroup
	delays := make([]float64, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp Response
			getJSON(t, fmt.Sprintf("%s/?class=0&size=5", ts.URL), &resp)
			delays[i] = resp.DelayMs
		}()
	}
	wg.Wait()
	minD, maxD := delays[0], delays[0]
	for _, d := range delays[1:] {
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	// The last-served request queues behind ~5 others (≈25ms); allow
	// generous slack for CI timers but require clear serialization.
	if maxD < 10 {
		t.Fatalf("no queueing observed in burst: delays %v", delays)
	}
	if minD > maxD/2 {
		t.Fatalf("first-served request should wait far less than last: %v", delays)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := fastServer(t, Config{})
	var resp Response
	getJSON(t, ts.URL+"/?class=0&size=1", &resp)
	getJSON(t, ts.URL+"/?class=1&size=1", &resp)
	var doc MetricsDocument
	getJSON(t, ts.URL+"/metrics", &doc)
	if len(doc.Classes) != 2 {
		t.Fatalf("metrics classes = %d", len(doc.Classes))
	}
	if doc.Classes[0].Served < 1 || doc.Classes[1].Served < 1 {
		t.Fatalf("served counts wrong: %+v", doc.Classes)
	}
	if doc.Classes[0].Delta != 1 || doc.Classes[1].Delta != 2 {
		t.Fatalf("deltas wrong: %+v", doc.Classes)
	}
	if doc.UptimeSeconds <= 0 {
		t.Fatal("uptime missing")
	}
}

func TestReallocateShiftsRates(t *testing.T) {
	// Declare traffic only on class 0; after a manual window the
	// allocator should hand class 0 nearly all capacity.
	s, ts := fastServer(t, Config{Window: 1e9}) // effectively disable the ticker
	for i := 0; i < 20; i++ {
		var resp Response
		getJSON(t, ts.URL+"/?class=0&size=0.5", &resp)
	}
	s.reallocate()
	rates := s.Rates()
	if !(rates[0] > 0.9) {
		t.Fatalf("rates after skewed load = %v, want class0 > 0.9", rates)
	}
}

func TestReallocateKeepsRatesOnInfeasible(t *testing.T) {
	s, err := New(Config{Deltas: []float64{1, 2}, TimeUnit: time.Millisecond, Window: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	before := s.Rates()
	// Declare an impossible load (estimated utilization >> 1 against the
	// 1e9-unit window), then force a reallocation: rates must not change.
	s.classes[0].injectWindow(4e9, 4e9) // λ̂ = 4/tu ⇒ ρ̂ = 4·E[X] > 1
	s.reallocate()
	after := s.Rates()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("rates changed under infeasible estimate: %v -> %v", before, after)
		}
	}
}

func TestQueueFullReturns503(t *testing.T) {
	s, err := New(Config{
		Deltas:        []float64{1},
		TimeUnit:      100 * time.Millisecond, // slow server
		QueueCapacity: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Mux())
	defer func() { ts.Close(); s.Close() }()

	// First request occupies the worker; second sits in the queue slot;
	// subsequent ones must be rejected.
	errs := make(chan int, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/?class=0&size=10")
			if err == nil {
				errs <- resp.StatusCode
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	got503 := false
	for code := range errs {
		if code == http.StatusServiceUnavailable {
			got503 = true
		}
	}
	if !got503 {
		t.Fatal("no 503 despite capacity-1 queue and 8 concurrent requests")
	}
}

func TestFeedbackControllerWiring(t *testing.T) {
	s, err := New(Config{
		Deltas:   []float64{1, 2},
		TimeUnit: time.Millisecond,
		Window:   1e9,
		Feedback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Simulate a window where class 1's measured ratio overshoots: the
	// controller should trim its effective delta below target.
	s.recordCompletion(0, s.classes[0], 0, 0, 1)
	s.recordCompletion(1, s.classes[1], 0, 0, 10) // ratio 10 vs target 2
	s.classes[0].observeArrival(1)
	s.classes[1].observeArrival(1)
	s.reallocate()
	doc := s.Snapshot()
	if !(doc.Classes[1].EffectiveDelta < 2) {
		t.Fatalf("effective delta not trimmed: %+v", doc.Classes[1])
	}
}

// TestDifferentiationUnderLoad is the end-to-end check: concurrent Poisson
// traffic on both classes must leave class 0 with a (loosely) smaller mean
// slowdown. Kept statistical and generous to avoid CI flakiness.
func TestDifferentiationUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short")
	}
	s, ts := fastServer(t, Config{
		Deltas:   []float64{1, 4},
		TimeUnit: time.Millisecond,
		Window:   50, // 50ms reallocation
	})
	deadline := time.Now().Add(2 * time.Second)
	var wg sync.WaitGroup
	for class := 0; class < 2; class++ {
		class := class
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond) // offered load ~0.8
				wg.Add(1)
				go func() {
					defer wg.Done()
					resp, err := http.Get(fmt.Sprintf("%s/?class=%d&size=2", ts.URL, class))
					if err == nil {
						resp.Body.Close()
					}
				}()
			}
		}()
	}
	wg.Wait()
	doc := s.Snapshot()
	c0, c1 := doc.Classes[0], doc.Classes[1]
	if c0.Served < 50 || c1.Served < 50 {
		t.Skipf("insufficient throughput for a meaningful check: %d/%d", c0.Served, c1.Served)
	}
	if !(c0.MeanSlowdown < c1.MeanSlowdown) {
		t.Fatalf("differentiation inverted: class0 %v vs class1 %v",
			c0.MeanSlowdown, c1.MeanSlowdown)
	}
	if math.IsNaN(doc.SlowdownRatios[1]) || doc.SlowdownRatios[1] <= 1 {
		t.Fatalf("ratio %v, want > 1", doc.SlowdownRatios[1])
	}
}

func TestCloseIsIdempotentAndStopsWorkers(t *testing.T) {
	s, err := New(Config{Deltas: []float64{1}, TimeUnit: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // second close must not panic or deadlock
}

func TestAllocatorPluggability(t *testing.T) {
	s, err := New(Config{
		Deltas:    []float64{1, 2},
		TimeUnit:  time.Millisecond,
		Window:    1e9,
		Allocator: core.DemandProportional{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.classes[0].observeArrival(1)
	s.classes[1].observeArrival(1)
	s.reallocate()
	rates := s.Rates()
	if math.Abs(rates[0]-rates[1]) > 1e-9 {
		t.Fatalf("demand-proportional with equal loads should split evenly: %v", rates)
	}
}
