package figures

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tiny returns minimal-fidelity options for unit tests. The top load is
// 0.8 rather than the paper's 0.95: at an 8k-tu horizon the 90%+ points
// are dominated by transient noise and belong to the full-fidelity run
// (cmd/psdfig), not a unit test.
func tiny() Options {
	return Options{Runs: 6, Horizon: 8000, Warmup: 1000, Loads: []float64{0.3, 0.6, 0.8}, Seed: 1}
}

func TestGenerateRejectsUnknownID(t *testing.T) {
	if _, err := Generate(1, tiny()); err == nil {
		t.Error("figure 1 (the architecture diagram) should not generate")
	}
	if _, err := Generate(15, tiny()); err == nil {
		t.Error("figure 15 does not exist")
	}
}

// TestFigure14PolicyTournament checks the beyond-paper tournament
// figure: three series (ratio error, mean slowdown, shed rate) per
// racing policy, one point per scenario cell, finite non-negative
// values, and a zero shed series for the packetized heSRPT policy.
func TestFigure14PolicyTournament(t *testing.T) {
	f, err := Figure14(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != 14 {
		t.Fatalf("id = %d", f.ID)
	}
	if want := 3 * len(TournamentPolicies); len(f.Series) != want {
		t.Fatalf("series = %d, want %d", len(f.Series), want)
	}
	for _, s := range f.Series {
		if len(s.X) != 4 {
			t.Fatalf("series %q has %d cells, want 4", s.Name, len(s.X))
		}
		for i, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("series %q cell %d: value %v", s.Name, i+1, v)
			}
		}
	}
	// The heSRPT policy runs on the packetized server, which has no
	// admission gate: its shed series must be identically zero.
	for _, s := range f.Series {
		if !strings.HasSuffix(s.Name, "shed rate") || !strings.HasPrefix(s.Name, "hesrpt") {
			continue
		}
		for i, v := range s.Y {
			if v != 0 {
				t.Errorf("hesrpt shed rate cell %d = %v, want 0", i+1, v)
			}
		}
	}
}

// TestFigure13EstimatorTransient checks the beyond-paper load-step
// figure: both estimator series plus the target line, a time axis that
// spans the step, and finite positive ratios.
func TestFigure13EstimatorTransient(t *testing.T) {
	f, err := Figure13(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != 13 || len(f.Series) != 3 {
		t.Fatalf("shape: id=%d series=%d", f.ID, len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.X) == 0 {
			t.Fatalf("series %q empty", s.Name)
		}
		for i := range s.X {
			if math.IsNaN(s.Y[i]) || s.Y[i] <= 0 {
				t.Fatalf("series %q has invalid ratio %v", s.Name, s.Y[i])
			}
		}
	}
	if f.Series[2].Name != "target ratio" || f.Series[2].Y[0] != 2 {
		t.Fatalf("target series wrong: %+v", f.Series[2].Name)
	}
	// Deterministic regeneration.
	g, err := Figure13(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Series[0].Y {
		if f.Series[0].Y[i] != g.Series[0].Y[i] {
			t.Fatal("figure 13 not deterministic")
		}
	}
}

func TestFigure2ShapeAndAgreement(t *testing.T) {
	f, err := Figure2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != 2 {
		t.Fatalf("ID = %d", f.ID)
	}
	// 2 sim + 2 expected + 1 system series.
	if len(f.Series) != 5 {
		t.Fatalf("series count = %d", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.X) != 3 || len(s.Y) != 3 {
			t.Fatalf("series %q has %d points, want 3", s.Name, len(s.X))
		}
		for _, y := range s.Y {
			if math.IsNaN(y) || y < 0 {
				t.Fatalf("series %q has invalid value %v", s.Name, y)
			}
		}
	}
	// Simulated tracks expected within heavy-tail tolerance at this
	// fidelity.
	if gap := MaxAbsRelGap(f); math.IsNaN(gap) || gap > 0.5 {
		t.Fatalf("sim-vs-expected gap = %v", gap)
	}
	// Slowdowns increase with load (paper property 1 / Figure 2 shape).
	for _, s := range f.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] <= s.Y[i-1] {
				t.Fatalf("series %q not increasing in load: %v", s.Name, s.Y)
			}
		}
	}
}

func TestFigure9RatiosNearTargets(t *testing.T) {
	opts := tiny()
	opts.Loads = []float64{0.6}
	f, err := Figure9(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 3 {
		t.Fatalf("series = %d, want 3 (ratios 2, 4, 8)", len(f.Series))
	}
	targets := []float64{2, 4, 8}
	for i, s := range f.Series {
		got := s.Y[0]
		if math.Abs(got-targets[i])/targets[i] > 0.4 {
			t.Errorf("ratio %g achieved %v (tolerance 40%% at tiny fidelity)", targets[i], got)
		}
	}
}

func TestFigure5PercentileOrdering(t *testing.T) {
	opts := tiny()
	opts.Loads = []float64{0.5}
	f, err := Figure5(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Series come in (p05, p50, p95) triples per delta ratio.
	if len(f.Series) != 9 {
		t.Fatalf("series = %d, want 9", len(f.Series))
	}
	for g := 0; g < 3; g++ {
		p05 := f.Series[3*g+0].Y[0]
		p50 := f.Series[3*g+1].Y[0]
		p95 := f.Series[3*g+2].Y[0]
		if !(p05 <= p50 && p50 <= p95) {
			t.Errorf("group %d percentiles unordered: %v %v %v", g, p05, p50, p95)
		}
	}
}

func TestFigure7RecordsRequests(t *testing.T) {
	opts := tiny()
	f, err := Figure7(opts)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range f.Series {
		total += len(s.X)
		for i := range s.X {
			if s.Y[i] < 0 {
				t.Fatalf("negative slowdown in %q", s.Name)
			}
		}
	}
	if total == 0 {
		t.Fatal("no individual requests recorded")
	}
}

func TestFigure11Monotonicity(t *testing.T) {
	opts := tiny()
	f, err := Figure11(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Expected slowdown strictly decreases as alpha grows (paper §4.5);
	// check the analytic series (the simulated one is noisy at tiny
	// fidelity).
	for _, s := range f.Series {
		if !strings.Contains(s.Name, "expected") {
			continue
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] >= s.Y[i-1] {
				t.Fatalf("series %q not decreasing in alpha: %v", s.Name, s.Y)
			}
		}
	}
}

func TestFigure12Monotonicity(t *testing.T) {
	opts := tiny()
	f, err := Figure12(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		if !strings.Contains(s.Name, "expected") {
			continue
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] <= s.Y[i-1] {
				t.Fatalf("series %q not increasing in p: %v", s.Name, s.Y)
			}
		}
	}
}

func TestWriteCSV(t *testing.T) {
	f := Figure{
		ID: 99, Title: "test",
		Series: []Series{{Name: "a", X: []float64{1, 2}, Y: []float64{3, 4}}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, f); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "series,x,y\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "a,1,3") || !strings.Contains(out, "a,2,4") {
		t.Fatalf("rows missing: %q", out)
	}
}

func TestRenderTable(t *testing.T) {
	f := Figure{
		ID: 99, Title: "render test", XLabel: "x", Notes: "note",
		Series: []Series{
			{Name: "alpha", X: []float64{1, 2}, Y: []float64{3, 4}},
			{Name: "beta", X: []float64{2}, Y: []float64{5}},
		},
	}
	out := RenderTable(f)
	if !strings.Contains(out, "Figure 99") || !strings.Contains(out, "note") {
		t.Fatalf("header wrong: %q", out)
	}
	// beta has no value at x=1 → dash.
	if !strings.Contains(out, "-") {
		t.Fatalf("missing placeholder for absent point: %q", out)
	}
}

func TestMaxAbsRelGapNoPairs(t *testing.T) {
	f := Figure{Series: []Series{{Name: "solo", X: []float64{1}, Y: []float64{1}}}}
	if !math.IsNaN(MaxAbsRelGap(f)) {
		t.Fatal("gap without pairs should be NaN")
	}
}

func TestOptionsDefaults(t *testing.T) {
	d := Defaults()
	if d.Runs != 100 || d.Horizon != 60000 || d.Warmup != 10000 {
		t.Fatalf("paper defaults wrong: %+v", d)
	}
	q := Quick()
	if q.Runs >= d.Runs {
		t.Fatal("quick options not reduced")
	}
	o := (Options{}).withDefaults()
	if len(o.Loads) == 0 || o.Runs == 0 {
		t.Fatal("withDefaults incomplete")
	}
}
