// Package httpsrv applies the PSD rate-allocation strategy to a real
// net/http server.
//
// Architecture (the paper's Fig. 1 realized on the HTTP path):
//
//	requests → admission gate → classifier → per-class FCFS queue →
//	per-class task servers (paced to the class rate) → response
//
// Each incoming request is classified (X-PSD-Class header or ?class=
// query parameter), assigned a service demand in work units (?size= or
// drawn from the configured distribution), optionally vetted by a
// pluggable admission.Controller, and queued. WorkersPerClass worker
// goroutines per class serve its queue, each pacing at an equal share of
// the class rate, emulating a processor share on CPU-bound work. The
// pacing is rate-change-aware: a worker pins each in-flight job's
// remaining work and re-paces whenever the control plane installs a new
// class rate, so a size-x job served at rate r₁ for its first stretch
// and r₂ afterwards completes after x₁/r₁ + x₂/r₂ time units — exactly
// the GPS fluid model the allocator assumes. A background loop drives
// the SAME control plane as the simulator — one shared control.Loop tick
// (estimate → feedback trim → allocate) every Window — so the live
// server's rate trajectory under a given windowed observation sequence
// is bit-identical to the simulator's (pinned by TestSimVsLiveRateParity).
//
// The front door is sharded: an admitted request on the steady-state
// path takes no server-wide mutex and performs no allocation. Class
// rates are published as atomic float64 bits with an epoch counter
// (readers never lock, writes wake the class workers); window
// observations land in striped per-class accumulators that the
// reallocation tick drains with Swap (N shards merge to exactly the
// single-stream totals); undeclared sizes are sampled from striped
// seed-derived RNG streams; and per-class admission controllers
// (admission.ClassIsolated) get per-class locks. Jobs are pooled. See
// the README's "Scaling the live server" section for the protocol
// details and invariants.
//
// Only admitted requests feed the load estimator: traffic shed by the
// admission gate or a full class queue is accounted separately (rejected
// counts and rejected work in the metrics document), so overload does
// not inflate λ̂ for the very class being shed.
//
// Slowdown is measured per request as queueing delay divided by actual
// service duration. Telemetry is first-class (internal/obs): per-class
// slowdown and latency histograms, rejection and clamp counters, and the
// control-plane gauges live in a zero-allocation metric registry exposed
// both as the JSON document (/metrics) and in Prometheus text format
// (/metrics/prom or /metrics?format=prom); every control tick is
// additionally flight-recorded and dumpable at /debug/control. Metric
// reads never take the control-plane mutex, so a slow scrape cannot
// delay a reallocation tick.
package httpsrv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"psd/internal/admission"
	"psd/internal/chaos"
	"psd/internal/control"
	"psd/internal/core"
	"psd/internal/dist"
	"psd/internal/obs"
	"psd/internal/timeutil"
)

// Config parametrizes the server.
type Config struct {
	// Deltas are the per-class differentiation parameters (class 0
	// should be 1 by convention). len(Deltas) defines the class count.
	Deltas []float64
	// Service is the size law used when a request does not declare
	// ?size= (default: the paper's Bounded Pareto).
	Service dist.Distribution
	// Allocator computes rate splits (default core.PSD).
	Allocator core.Allocator
	// TimeUnit is the wall-clock duration of one simulated time unit: a
	// size-1 request at rate 1 occupies its worker for TimeUnit.
	// Default 10ms.
	TimeUnit time.Duration
	// Window is the reallocation period in time units (default 100).
	Window float64
	// HistoryWindows is the estimator depth (default 5).
	HistoryWindows int
	// QueueCapacity bounds each class queue; excess requests receive
	// 503. Default 4096.
	QueueCapacity int
	// WorkersPerClass is how many task-server goroutines serve each
	// class queue (default 1). Each worker paces at an equal share of
	// the class rate, so the class's aggregate service capacity is the
	// allocated r_i regardless of the worker count; more workers let one
	// class's service overlap across cores (and let a huge job stop
	// blocking the whole class) at the cost of strict FCFS completion
	// order within the class.
	WorkersPerClass int
	// MinRate is the per-class allocation floor in capacity fractions:
	// the configured Allocator is wrapped in core.MinRate{Min: MinRate},
	// so a starved class is lifted to a schedulable trickle inside the
	// feasibility region instead of at the pacing layer. 0 means the
	// default (the pacing minPaceRate, 1e-3); negative disables the
	// wrapper. The pacing-side clamp remains as a regression tripwire
	// (rate_floor_clamps) and should stay at zero when the wrapper is
	// active.
	MinRate float64
	// Feedback enables the control.RatioController trim loop on
	// measured slowdown ratios (the paper's future-work extension).
	Feedback bool
	// FeedbackGain is the controller gain when Feedback is on
	// (default 0.3).
	FeedbackGain float64
	// FeedbackMaxTrim bounds each effective δ within
	// [target/MaxTrim, target·MaxTrim] (default 8). Tighter bounds keep
	// a noisy measurement from dragging the controller far off target
	// between windows.
	FeedbackMaxTrim float64
	// Estimator selects the control plane's load smoothing:
	// control.Window (the paper's default) or control.EWMA.
	Estimator control.EstimatorKind
	// EWMAAlpha is the EWMA smoothing factor in (0,1] (default 0.3).
	EWMAAlpha float64
	// MaxSize bounds the client-declared ?size= in work units (default
	// 1e6). Without a bound one request could pin a class worker for an
	// arbitrary wall-clock span — or overflow the pacing-duration
	// conversion and poison the load estimator with absurd work.
	MaxSize float64
	// Admission optionally gates requests before they reach the class
	// queues (nil admits everything). The controller's clock runs in time
	// units since server start; rejected requests receive 503 and are
	// accounted per class without feeding the load estimator. Admit
	// calls are serialized per class when the controller implements
	// admission.ClassIsolated (TokenBucket, AlwaysAdmit), globally
	// otherwise, so non-thread-safe controllers are fine either way.
	Admission admission.Controller
	// FlightRecorderSize is the control-plane flight recorder's ring
	// capacity in ticks (default 256): the last N control decisions are
	// always dumpable at /debug/control.
	FlightRecorderSize int
	// Seed drives the server-side size sampling.
	Seed uint64
	// Ladder optionally enables Fricker-style graceful degradation:
	// under sustained overload per-class effective δ targets step down
	// the ladder (each class tolerates proportionally more slowdown)
	// *before* any request is shed — the admission gate stays open until
	// every rung is engaged — and climb back with hysteresis once the
	// overload clears. The ladder must be dimensioned for len(Deltas)
	// classes; New resets it, so a reconfigured server never inherits a
	// stale degradation level.
	Ladder *admission.Ladder
	// WatchdogFactor arms the stale-tick watchdog: a reallocation gap
	// longer than WatchdogFactor reallocation periods marks the control
	// loop stalled (psd_watchdog_stalled gauge + a FlagStaleTick flight
	// record), freezes pacing at the last-good rates, and discards the
	// overlong window rather than feeding its inflated counts to the
	// estimator. 0 means the default factor 4; negative disables the
	// watchdog.
	WatchdogFactor float64
	// Chaos optionally wires the fault-injection harness into the worker
	// and control-tick paths (worker stalls, service spikes, corrupted
	// tick inputs, dropped/late ticks, admission-clock jumps). Nil — the
	// production configuration — leaves every hot path untouched.
	Chaos *chaos.Injector
}

func (c Config) withDefaults() Config {
	if c.Service == nil {
		c.Service = dist.PaperDefault()
	}
	if c.Allocator == nil {
		c.Allocator = core.PSD{}
	}
	if c.TimeUnit == 0 {
		c.TimeUnit = 10 * time.Millisecond
	}
	if c.Window == 0 {
		c.Window = 100
	}
	if c.HistoryWindows == 0 {
		c.HistoryWindows = 5
	}
	if c.QueueCapacity == 0 {
		c.QueueCapacity = 4096
	}
	if c.WorkersPerClass == 0 {
		c.WorkersPerClass = 1
	}
	if c.MinRate == 0 {
		c.MinRate = minPaceRate
	}
	if c.FeedbackGain == 0 {
		c.FeedbackGain = 0.3
	}
	if c.MaxSize == 0 {
		c.MaxSize = 1e6
	}
	if c.FlightRecorderSize == 0 {
		c.FlightRecorderSize = 256
	}
	if c.WatchdogFactor == 0 {
		c.WatchdogFactor = 4
	}
	return c
}

// job is one queued request. Jobs are pooled (Server.jobPool): the done
// channel is created once per job and reused, and a job returns to the
// pool only after its result has been consumed — an abandoned job
// (caller gone, or shutdown mid-service) is simply dropped for the GC so
// a late worker send can never leak into a fresh checkout.
type job struct {
	size     float64
	enqueued time.Time
	done     chan jobResult
}

type jobResult struct {
	delay    time.Duration
	service  time.Duration
	slowdown float64
}

// classRuntime is one class's task-server state. The hot-path fields are
// all lock-free: the rate is atomic float64 bits with an epoch version,
// and the window observations live in cache-line-padded stripes drained
// by the reallocation tick (see shard.go).
type classRuntime struct {
	queue chan *job

	// rateBits is the installed class rate as float64 bits: one-word
	// atomic loads cannot tear. rateEpoch counts actual changes.
	rateBits  atomic.Uint64
	rateEpoch atomic.Uint64

	// sigs holds one buffered wake channel per class worker: setRate
	// posts a non-blocking signal to each so in-flight jobs re-pace
	// instead of finishing at a stale deadline.
	sigs []chan struct{}

	// stripes are the current-window arrival/work/slowdown accumulators
	// (admitted requests only), Swap-drained by closeWindow.
	stripes []windowStripe

	// All completion/rejection accounting lives in the server's metric
	// registry (Server.met): lock-free atomics, not fields here.
}

// Server is the PSD HTTP front end. Create with New, then use as an
// http.Handler (or drive it in-process via Do); Close releases the
// workers.
type Server struct {
	cfg      Config
	workload core.Workload
	classes  []*classRuntime

	// perWorkerDiv divides the class rate among its workers
	// (float64(cfg.WorkersPerClass), precomputed for the pacing path).
	perWorkerDiv float64

	// loopMu serializes the shared control plane: only the reallocation
	// tick takes it (metrics snapshots read registry atomics instead, so
	// a slow scrape never delays a tick). The tick itself is
	// allocation-free (control.Loop owns every buffer; the scratch below
	// feeds it and carries its outputs to the published gauges).
	loopMu      sync.Mutex
	loop        control.Loop
	tickCounts  []float64
	tickWork    []float64
	tickSlows   []float64
	tickLambdas []float64
	tickDeltas  []float64
	tickScale   []float64 // ladder δ multipliers fed to the tick
	tickLoads   []float64 // per-class load estimates (ρ for the ladder)

	// lastRejected mirrors loop.InputRejected into the registry counter
	// (delta per tick, under loopMu).
	lastRejected uint64

	// Degradation ladder (nil when not configured). The state machine is
	// driven by the tick under loopMu; the shed decision crosses to the
	// lock-free admit path through ladderShed.
	ladder     *admission.Ladder
	ladderShed atomic.Bool

	// Stale-tick watchdog: lastTickNano is the wall clock of the last
	// reallocation attempt, staleAfter the stall threshold (0 disables).
	// The monitor goroutine never takes loopMu — a stalled tick may be
	// holding it.
	lastTickNano atomic.Int64
	staleAfter   time.Duration
	stalledFlag  atomic.Bool

	// Fault injection (nil in production). clockSkewBits accumulates
	// injected admission-clock jumps (float64 bits, time units).
	chaos         *chaos.Injector
	chaosTick     *chaos.TickFaults
	clockSkewBits atomic.Uint64

	// Observability: the metric registry (served as JSON and Prometheus
	// text) and the control-plane flight recorder (hooked into the loop,
	// dumped at /debug/control).
	reg     *obs.Registry
	met     serverMetrics
	rec     *obs.FlightRecorder
	estName string

	// sizeStripes shard the size-sampling RNG (see shard.go).
	sizeStripes []rngStripe

	// admLocks guards the admission controller: one lock per class when
	// the controller is admission.ClassIsolated, a single global lock
	// otherwise. nil adm admits everything without locking.
	admLocks []paddedMutex
	adm      admission.Controller

	// jobPool recycles job structs (with their done channels) so the
	// admitted path allocates nothing in steady state.
	jobPool sync.Pool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	started time.Time
}

// New builds and starts a Server (workers + reallocation loop).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Deltas) == 0 {
		return nil, errors.New("httpsrv: no classes")
	}
	for i, d := range cfg.Deltas {
		if !(d > 0) {
			return nil, fmt.Errorf("httpsrv: delta[%d] = %v must be positive", i, d)
		}
	}
	if !(cfg.MaxSize > 0) || math.IsInf(cfg.MaxSize, 0) {
		// +Inf would let ?size=+Inf through the (0, MaxSize] check and
		// overflow the pacing conversion — the hole MaxSize exists to close.
		return nil, fmt.Errorf("httpsrv: max size %v must be positive and finite", cfg.MaxSize)
	}
	if cfg.WorkersPerClass < 0 {
		return nil, fmt.Errorf("httpsrv: workers per class %d must be positive", cfg.WorkersPerClass)
	}
	if cfg.Ladder != nil && cfg.Ladder.Classes() != len(cfg.Deltas) {
		return nil, fmt.Errorf("httpsrv: ladder dimensioned for %d classes, server has %d", cfg.Ladder.Classes(), len(cfg.Deltas))
	}
	w, err := core.WorkloadFromDist(cfg.Service)
	if err != nil {
		return nil, err
	}
	rec, err := obs.NewFlightRecorder(len(cfg.Deltas), cfg.FlightRecorderSize)
	if err != nil {
		return nil, err
	}
	allocator := cfg.Allocator
	if cfg.MinRate > 0 {
		// Enforce the rate floor inside the feasibility region rather
		// than at the pacing layer; the wrapper is bit-transparent
		// whenever the floor does not bind (sim/live parity holds).
		allocator = core.MinRate{Base: allocator, Min: cfg.MinRate}
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := len(cfg.Deltas)
	reg := obs.NewRegistry()
	s := &Server{
		cfg:          cfg,
		workload:     w,
		perWorkerDiv: float64(cfg.WorkersPerClass),
		tickCounts:   make([]float64, n),
		tickWork:     make([]float64, n),
		tickSlows:    make([]float64, n),
		tickLambdas:  make([]float64, n),
		tickDeltas:   make([]float64, n),
		tickScale:    make([]float64, n),
		tickLoads:    make([]float64, n),
		ladder:       cfg.Ladder,
		chaos:        cfg.Chaos,
		reg:          reg,
		met:          newServerMetrics(reg, n),
		rec:          rec,
		sizeStripes:  newRNGStripes(cfg.Seed, nStripes()),
		adm:          cfg.Admission,
		ctx:          ctx,
		cancel:       cancel,
		started:      time.Now(),
	}
	s.jobPool.New = func() any { return &job{done: make(chan jobResult, 1)} }
	if _, iso := cfg.Admission.(admission.ClassIsolated); iso {
		s.admLocks = make([]paddedMutex, n)
	} else {
		s.admLocks = make([]paddedMutex, 1)
	}
	if err := s.loop.Reset(control.LoopConfig{
		Deltas:          cfg.Deltas,
		Window:          cfg.Window,
		Estimator:       cfg.Estimator,
		HistoryWindows:  cfg.HistoryWindows,
		EWMAAlpha:       cfg.EWMAAlpha,
		Allocator:       allocator,
		Workload:        w,
		Feedback:        cfg.Feedback,
		FeedbackGain:    cfg.FeedbackGain,
		FeedbackMaxTrim: cfg.FeedbackMaxTrim,
		Recorder:        rec,
	}); err != nil {
		cancel()
		return nil, err
	}
	s.estName = s.loop.EstimatorName()
	if s.ladder != nil {
		// A reconfigured server must start at level 0 even when the caller
		// reuses a ladder that degraded under a previous configuration.
		s.ladder.Reset()
	}
	if s.chaos != nil {
		s.chaosTick = s.chaos.Tick()
	}
	if cfg.WatchdogFactor > 0 {
		s.staleAfter = time.Duration(cfg.WatchdogFactor * cfg.Window * float64(cfg.TimeUnit))
	}
	s.lastTickNano.Store(time.Now().UnixNano())
	s.classes = make([]*classRuntime, n)
	even := 1 / float64(n)
	stripes := nStripes()
	for i := range s.classes {
		cr := &classRuntime{
			queue:   make(chan *job, cfg.QueueCapacity),
			sigs:    make([]chan struct{}, cfg.WorkersPerClass),
			stripes: make([]windowStripe, stripes),
		}
		for wi := range cr.sigs {
			cr.sigs[wi] = make(chan struct{}, 1)
		}
		cr.rateBits.Store(math.Float64bits(even))
		s.classes[i] = cr
		s.met.delta.At(i).Set(cfg.Deltas[i])
		s.met.effDelta.At(i).Set(cfg.Deltas[i])
		s.met.rate.At(i).Set(even)
		s.met.windowSlow.At(i).Set(math.NaN())
	}
	for i := range s.classes {
		for wi := 0; wi < cfg.WorkersPerClass; wi++ {
			s.wg.Add(1)
			go s.worker(i, wi)
		}
	}
	s.wg.Add(1)
	go s.reallocLoop()
	if s.staleAfter > 0 {
		s.wg.Add(1)
		go s.watchdogLoop()
	}
	return s, nil
}

// Close stops the workers and the reallocation loop. Queued jobs are
// failed fast.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

// minPaceRate floors the pacing rate when the installed class rate is
// non-positive (a positive allocation, however small, is honored
// honestly); each floored segment is counted per class in
// rateFloorClamps (exposed at /metrics). With the allocator-side
// core.MinRate floor active (Config.MinRate), this clamp is a pure
// regression tripwire that should never fire.
const minPaceRate = 1e-3

// worker is one task server for a class: paced to its share of the class
// rate, re-pacing in flight whenever the rate changes.
func (s *Server) worker(class, widx int) {
	defer s.wg.Done()
	cr := s.classes[class]
	sig := cr.sigs[widx]
	timer := timeutil.NewStoppedTimer()
	defer timer.Stop()
	// Per-worker fault stream (nil without chaos; the handle's methods
	// no-op on nil, so the production path pays one nil check).
	var wf *chaos.WorkerFaults
	if s.chaos != nil {
		wf = s.chaos.Worker(class, widx)
	}
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-cr.queue:
			if d := wf.StallFor(); d > 0 {
				// Injected worker stall: the job (and everything queued
				// behind it) accrues real queueing delay before service.
				timer.Reset(d)
				select {
				case <-timer.C:
				case <-s.ctx.Done():
					timeutil.StopTimer(timer)
					close(j.done)
					return
				}
			}
			start := time.Now()
			delay := start.Sub(j.enqueued)
			// An injected service spike inflates the paced demand only —
			// the estimator saw the true size at arrival, which is exactly
			// the modeling error the control plane must absorb.
			service, ok := s.pace(cr, class, sig, wf.InflateSize(j.size), timer)
			if !ok {
				close(j.done)
				return
			}
			slowdown := 0.0
			if service > 0 {
				slowdown = float64(delay) / float64(service)
			}
			s.recordCompletion(class, cr, delay, service, slowdown)
			j.done <- jobResult{delay: delay, service: service, slowdown: slowdown}
		}
	}
}

// paceOutcome reports how one occupy segment ended.
type paceOutcome int

const (
	paceDone     paceOutcome = iota // segment deadline reached
	paceRepace                      // rate changed mid-segment: recompute
	paceShutdown                    // server closed mid-service
)

// pace occupies the worker for size work units against the class's live
// rate — the GPS fluid model on wall clock. The worker paces at
// rate/WorkersPerClass so the class's W workers jointly honor the
// allocated r_i. The job's remaining work is pinned here, not a
// deadline: each segment runs at the rate read at its start, and a rate
// change ends the segment early, converts its elapsed wall time back
// into completed work at the segment's rate, and re-paces the remainder
// at the new rate. A size-x job served at r₁ then r₂ therefore completes
// after x₁/r₁ + x₂/r₂ time units (pinned within 1% by
// TestMultiWindowFluidCompletion). Returns the total service duration,
// or ok=false if the server shut down mid-service.
func (s *Server) pace(cr *classRuntime, class int, sig <-chan struct{}, size float64, timer *time.Timer) (service time.Duration, ok bool) {
	start := time.Now()
	segStart := start
	remaining := size
	for {
		rate := cr.currentRate()
		if rate <= 0 {
			rate = minPaceRate
			s.met.rateFloorClamps.At(class).Inc()
		}
		rate /= s.perWorkerDiv
		deadline := segStart.Add(time.Duration(remaining / rate * float64(s.cfg.TimeUnit)))
		switch s.occupy(deadline, sig, timer) {
		case paceDone:
			return time.Since(start), true
		case paceRepace:
			now := time.Now()
			remaining -= float64(now.Sub(segStart)) / float64(s.cfg.TimeUnit) * rate
			if remaining <= 0 {
				return now.Sub(start), true
			}
			segStart = now
		case paceShutdown:
			return 0, false
		}
	}
}

// occupy blocks the worker until the deadline, emulating CPU-bound work.
// Timers in Go routinely overshoot by hundreds of microseconds, which
// would silently tax slow classes (whose utilization sits closest to 1)
// and skew the achieved slowdown ratios; so the bulk of the wait uses a
// (caller-owned, reused) timer and the final stretch spins on the clock,
// yielding the processor each probe so sibling workers on the same P
// still run. A rate-change signal or shutdown ends the wait early.
func (s *Server) occupy(deadline time.Time, rateSig <-chan struct{}, timer *time.Timer) paceOutcome {
	const spinWindow = 500 * time.Microsecond
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return paceDone
		}
		if remain > spinWindow {
			timer.Reset(remain - spinWindow)
			select {
			case <-timer.C:
			case <-rateSig:
				timeutil.StopTimer(timer)
				return paceRepace
			case <-s.ctx.Done():
				timeutil.StopTimer(timer)
				return paceShutdown
			}
			continue
		}
		// Spin the last stretch; stay rate-change- and shutdown-responsive.
		select {
		case <-rateSig:
			return paceRepace
		case <-s.ctx.Done():
			return paceShutdown
		default:
			runtime.Gosched()
		}
	}
}

// recordCompletion accounts one served request: the lifetime slowdown and
// latency histograms (lock-free registry atomics) plus the current-window
// slowdown stripe that feeds the controller.
func (s *Server) recordCompletion(class int, cr *classRuntime, delay, service time.Duration, sl float64) {
	s.met.slowdown.At(class).Observe(sl)
	s.met.latency.At(class).Observe((delay + service).Seconds())
	cr.observeSlowdown(sl)
}

// reject accounts one shed request (admission gate or full queue) in the
// metric registry; shed traffic never reaches the load estimator.
func (s *Server) reject(class int, size float64, byAdmission bool) {
	if byAdmission {
		s.met.rejAdmission.At(class).Inc()
	} else {
		s.met.rejQueueFull.At(class).Inc()
	}
	s.met.rejWork.At(class).Add(size)
}

// reallocLoop closes estimation windows and re-runs the allocator. With
// chaos armed, a tick may be dropped outright, delayed, or preceded by an
// admission-clock jump — the faults the stale-tick watchdog and the clock
// guards exist to absorb.
func (s *Server) reallocLoop() {
	defer s.wg.Done()
	period := time.Duration(s.cfg.Window * float64(s.cfg.TimeUnit))
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	delay := timeutil.NewStoppedTimer()
	defer delay.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-ticker.C:
			if tf := s.chaosTick; tf != nil {
				if tf.Drop() {
					continue
				}
				if d := tf.Delay(); d > 0 {
					delay.Reset(d)
					select {
					case <-s.ctx.Done():
						timeutil.StopTimer(delay)
						return
					case <-delay.C:
					}
				}
				if jump := tf.ClockJump(); jump != 0 {
					s.addClockSkew(jump)
				}
			}
			s.reallocate()
		}
	}
}

// addClockSkew shifts the admission clock by the given number of time
// units (fault injection only; the skew is 0 forever in production).
func (s *Server) addClockSkew(units float64) {
	for {
		old := s.clockSkewBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + units)
		if s.clockSkewBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// watchdogLoop monitors the reallocation loop from outside: if no tick
// has run for staleAfter it marks the control plane stalled (gauge +
// FlagStaleTick flight record with the frozen last-good rates) without
// ever taking loopMu — the stalled tick may be holding it. Pacing needs
// no intervention to freeze: workers keep serving at the last installed
// rates until a healthy tick replaces them.
func (s *Server) watchdogLoop() {
	defer s.wg.Done()
	poll := s.staleAfter / 4
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	rates := make([]float64, len(s.classes))
	lambdas := make([]float64, len(s.classes))
	deltas := make([]float64, len(s.classes))
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-ticker.C:
			elapsed := time.Duration(time.Now().UnixNano() - s.lastTickNano.Load())
			if elapsed <= s.staleAfter {
				if s.stalledFlag.CompareAndSwap(true, false) {
					s.met.watchdogStalled.Set(0)
				}
				continue
			}
			if s.stalledFlag.CompareAndSwap(false, true) {
				s.met.watchdogStalled.Set(1)
				s.met.watchdogStaleTicks.Inc()
				// Freeze marker: the last-good control state, stamped on
				// the wall clock (the control clock is unreachable without
				// loopMu). Reads are registry atomics and currentRate loads.
				for i, cr := range s.classes {
					rates[i] = cr.currentRate()
					lambdas[i] = s.met.lambda.At(i).Load()
					deltas[i] = s.met.effDelta.At(i).Load()
				}
				s.rec.Record(s.nowUnits(), obs.FlagStaleTick, lambdas, rates, nil, deltas)
			}
		}
	}
}

// reallocate performs one tick of the shared control plane: Swap-drain
// each class's window stripes into preallocated scratch, drive
// control.Loop (the exact step the simulator runs), and install the
// resulting rates. The tick itself allocates nothing (gated by
// BenchmarkReallocate). Exposed via the metrics reallocation counters;
// also called by tests directly for determinism.
func (s *Server) reallocate() {
	now := time.Now().UnixNano()
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	last := s.lastTickNano.Swap(now)
	if s.staleAfter > 0 && time.Duration(now-last) > s.staleAfter {
		// The loop went stale (stalled goroutine, dropped ticks): the
		// overlong window's counts would read as an inflated per-window λ̂,
		// so the stripes are drained and DISCARDED, pacing stays frozen at
		// the last-good rates, and the episode is counted and
		// flight-recorded instead of fed to the estimator.
		for _, cr := range s.classes {
			cr.closeWindow()
		}
		s.met.watchdogStaleTicks.Inc()
		s.met.watchdogStalled.Set(1)
		s.stalledFlag.Store(true)
		for i, cr := range s.classes {
			s.tickLambdas[i] = s.met.lambda.At(i).Load()
			s.tickCounts[i] = cr.currentRate() // scratch reuse: frozen rates
		}
		s.loop.EffectiveDeltasInto(s.tickDeltas)
		s.rec.Record(s.nowUnits(), obs.FlagStaleTick, s.tickLambdas, s.tickCounts, nil, s.tickDeltas)
		return
	}
	if s.stalledFlag.CompareAndSwap(true, false) {
		s.met.watchdogStalled.Set(0)
	}
	for i, cr := range s.classes {
		s.tickCounts[i], s.tickWork[i], s.tickSlows[i] = cr.closeWindow()
	}
	if tf := s.chaosTick; tf != nil {
		// Estimator-corruption fault: poison this tick's input vectors in
		// place — the control plane's guards must reject them.
		tf.Corrupt(s.tickCounts, s.tickWork, s.tickSlows)
	}
	in := control.TickInput{
		Counts:            s.tickCounts,
		Work:              s.tickWork,
		MeasuredSlowdowns: s.tickSlows,
	}
	if s.ladder != nil {
		s.ladder.ScaleInto(s.tickScale)
		in.DeltaScale = s.tickScale
		if s.ladder.Engaged() {
			// While degraded, the ratio controller must not fight the
			// ladder (it trims toward the base targets the ladder is
			// deliberately scaling away from): skip its update this tick.
			in.MeasuredSlowdowns = nil
		}
	}
	rates, err := s.loop.Tick(in)
	if rej := s.loop.InputRejected(); rej != s.lastRejected {
		s.met.tickInputRejected.Add(int64(rej - s.lastRejected))
		s.lastRejected = rej
	}
	if s.ladder != nil {
		// Feed ρ̂ (+ feasibility) into the degradation state machine and
		// publish its decisions; the shed gate crosses to the lock-free
		// admit path through ladderShed.
		s.loop.LoadsInto(s.tickLoads)
		rho := 0.0
		for _, l := range s.tickLoads {
			rho += l
		}
		s.ladder.Observe(rho, errors.Is(err, core.ErrInfeasible))
		for i := range s.classes {
			s.met.degradationLevel.At(i).Set(float64(s.ladder.Level(i)))
		}
		shed := s.ladder.MaxedOut()
		s.ladderShed.Store(shed)
		if shed {
			s.met.ladderShedding.Set(1)
		} else {
			s.met.ladderShedding.Set(0)
		}
		s.ladder.ScaleInto(s.tickScale) // republish: Observe may have stepped
	}
	// Publish the tick's control state into the scrape gauges while still
	// holding loopMu (the loop's buffers are only stable under it); the
	// gauge writes themselves are lock-free atomics, so concurrent
	// snapshots read them without ever taking loopMu.
	s.loop.LambdasInto(s.tickLambdas)
	s.loop.EffectiveDeltasInto(s.tickDeltas)
	for i := range s.classes {
		s.met.lambda.At(i).Set(s.tickLambdas[i])
		eff := s.tickDeltas[i]
		if s.ladder != nil {
			eff *= s.tickScale[i]
		}
		s.met.effDelta.At(i).Set(eff)
		s.met.windowSlow.At(i).Set(s.tickSlows[i])
	}
	if err != nil {
		s.met.allocFailures.Inc() // transient infeasibility: keep previous rates
		return
	}
	s.met.reallocations.Inc()
	for i, cr := range s.classes {
		cr.setRate(rates[i])
		s.met.rate.At(i).Set(rates[i])
	}
}

// classify extracts the request's class (header beats query), clamped to
// the configured range; absent/invalid values map to the lowest class.
func (s *Server) classify(r *http.Request) int {
	v := r.Header.Get("X-PSD-Class")
	if v == "" {
		v = r.URL.Query().Get("class")
	}
	c, err := strconv.Atoi(v)
	if err != nil || c < 0 {
		return len(s.cfg.Deltas) - 1 // unclassified traffic gets the lowest tier
	}
	if c >= len(s.cfg.Deltas) {
		return len(s.cfg.Deltas) - 1
	}
	return c
}

// sizeOf extracts the declared work size or samples the configured law.
// Declared sizes are bounded by Config.MaxSize: an unbounded declaration
// could pin a class worker for an arbitrary span or overflow the
// float64→time.Duration pacing conversion (implementation-defined, on
// amd64 a past deadline — the job would "complete" instantly while its
// absurd work still poisons the estimator window).
func (s *Server) sizeOf(r *http.Request) (float64, error) {
	if v := r.URL.Query().Get("size"); v != "" {
		size, err := strconv.ParseFloat(v, 64)
		if err != nil || !(size > 0) || size > s.cfg.MaxSize {
			return 0, fmt.Errorf("httpsrv: invalid size %q (must be in (0, %g])", v, s.cfg.MaxSize)
		}
		return size, nil
	}
	return s.sampleSize(), nil
}

// Response is the JSON body returned for served work requests.
type Response struct {
	Class     int     `json:"class"`
	Size      float64 `json:"size"`
	DelayMs   float64 `json:"delay_ms"`
	ServiceMs float64 `json:"service_ms"`
	Slowdown  float64 `json:"slowdown"`
}

// nowUnits is the admission controllers' clock: time units since server
// start, plus any injected clock skew (0 forever in production — the
// skew load adds one uncontended atomic read to the admission path).
func (s *Server) nowUnits() float64 {
	return float64(time.Since(s.started))/float64(s.cfg.TimeUnit) +
		math.Float64frombits(s.clockSkewBits.Load())
}

// admit consults the configured admission controller (nil admits all)
// under the class's admission lock. charged reports whether the
// controller actually accounted the request (so a queue-full drop knows
// whether a refund is owed). With a degradation ladder configured, the
// gate stays open — uncharged — until every rung is engaged: degrade
// first, shed only when degradation has nothing left to give.
func (s *Server) admit(class int, size float64) (ok, charged bool) {
	if s.adm == nil {
		return true, false
	}
	if s.ladder != nil && !s.ladderShed.Load() {
		return true, false
	}
	now := s.nowUnits()
	mu := s.admLock(class)
	mu.Lock()
	ok = s.adm.Admit(class, size, now)
	mu.Unlock()
	return ok, ok
}

// refundAdmission returns an admitted request's credit when it was
// dropped before service (full class queue): without the refund the
// gate's admitted-load state double-counts shed demand and later
// admissible traffic is rejected below the contracted rate.
func (s *Server) refundAdmission(class int, size float64) {
	ref, ok := s.adm.(admission.Refunder)
	if !ok {
		return
	}
	now := s.nowUnits()
	mu := s.admLock(class)
	mu.Lock()
	ref.Refund(class, size, now)
	mu.Unlock()
}

// ServeHTTP implements http.Handler: every request is classified, vetted
// by the admission gate, queued, served by its class's task servers, and
// answered with its measured slowdown. GET /metrics (or the path the
// caller mounts Metrics on) should be routed to the Metrics handler
// instead.
//
// Only requests that actually enter a class queue feed the load
// estimator. Observing at arrival time (the old behavior) let
// 503-rejected traffic inflate λ̂ and the work estimate, over-allocating
// rate to the very class being shed; shed demand is instead counted per
// class in the rejected_* metrics.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	class := s.classify(r)
	size, err := s.sizeOf(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	out, status := s.Do(r.Context(), class, size)
	switch status {
	case Served:
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(Response{
			Class:     class,
			Size:      size,
			DelayMs:   float64(out.Delay) / float64(time.Millisecond),
			ServiceMs: float64(out.Service) / float64(time.Millisecond),
			Slowdown:  out.Slowdown,
		})
	case RejectedByAdmission:
		http.Error(w, "admission denied", http.StatusServiceUnavailable)
	case RejectedQueueFull:
		http.Error(w, "class queue full", http.StatusServiceUnavailable)
	case ShuttingDown:
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	case Canceled:
		// Client gave up; the worker will still drain the job.
	}
}

// Mux returns a ready-to-serve mux: work at "/", the JSON metrics
// document at "/metrics" (Prometheus text with ?format=prom), the
// Prometheus exposition at "/metrics/prom", and the control-plane flight
// recorder dump at "/debug/control".
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.Metrics())
	mux.Handle("/metrics/prom", s.PromMetrics())
	mux.Handle("/debug/control", s.ControlDump())
	mux.Handle("/", s)
	return mux
}

// Rates returns the current per-class rates (for tests and dashboards).
func (s *Server) Rates() []float64 {
	out := make([]float64, len(s.classes))
	for i, cr := range s.classes {
		out[i] = cr.currentRate()
	}
	return out
}
