// Simulation: reproduce the heart of the paper's Figure 2 — simulated
// versus model-predicted slowdowns across a load sweep — with the full
// simulation model: Poisson generators, Bounded Pareto sizes, windowed
// load estimation, periodic reallocation, and per-class FCFS task
// servers.
//
// Run: go run ./examples/simulation
package main

import (
	"fmt"
	"log"

	psd "psd"
)

func main() {
	fmt.Println("Simulated vs expected slowdowns, 2 classes, deltas (1, 2)")
	fmt.Println("20 replications × 30000 tu per point (paper: 100 × 60000)")
	fmt.Printf("\n%-8s %-12s %-12s %-12s %-12s %-10s\n",
		"load", "sim c1", "exp c1", "sim c2", "exp c2", "ratio 2/1")

	for _, load := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		cfg := psd.EqualLoadSimConfig([]float64{1, 2}, load, nil)
		cfg.Horizon = 30000
		cfg.Warmup = 5000
		cfg.Seed = 7

		agg, err := psd.SimulateN(cfg, 20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %-12.3f %-12.3f %-12.3f %-12.3f %-10.3f\n",
			fmt.Sprintf("%.0f%%", load*100),
			agg.MeanSlowdowns[0], agg.ExpectedSlowdowns[0],
			agg.MeanSlowdowns[1], agg.ExpectedSlowdowns[1],
			agg.MeanRatios[1])
	}

	fmt.Println("\nThe simulated curves should track the closed-form predictions")
	fmt.Println("(Eq. 18) and the ratio column should hover near the target 2.0,")
	fmt.Println("independent of load — the PSD predictability property.")
}
