package sched

// ---------------------------------------------------------------------------
// heSRPT
//
// HeSRPT is the size-aware rival discipline from the related work (Berg,
// Vesilo & Harchol-Balter, "heSRPT: Parallel Scheduling to Minimize Mean
// Slowdown"): scheduling that exploits known job sizes to minimize mean
// slowdown, the frontier PSD deliberately trades away for ratio
// guarantees. On this repo's run-to-completion packetized server the
// policy reduces to weighted shortest-job-first: every dequeue serves
// the job with the smallest weighted remaining size Size/w(class) —
// since service is non-preemptive, remaining size IS the full size at
// every dispatch instant. With equal weights this is exact SRPT at
// dispatch instants (pure shortest-job-first); the allocator-supplied
// weights tilt priority toward high-entitlement (low-δ) classes, the
// heSRPT-style per-class scaling.
//
// The pending set reuses the SCFQ idiom: a value-typed 4-ary (key, seq,
// slot) heap over a recycled Job slot arena, strict (key, seq) total
// order for FIFO tie-breaking, zero steady-state allocation, capacity
// retained across Reset.

// HeSRPT is the size-aware weighted shortest-job-first discipline. Use
// NewHeSRPT; the scheduler reads every job's Size, so it only makes
// sense where sizes are known at enqueue (the packetized simulator).
type HeSRPT struct {
	classes int
	weights []float64
	heap    []scfqEntry // key = Size/w(class), FIFO-tie-broken by seq
	jobs    []Job       // slot arena backing the heap entries
	free    []int32     // recycled slot indices (LIFO)
	seq     uint64
}

// NewHeSRPT builds the scheduler with equal initial weights (pure
// shortest-job-first until SetWeights installs the allocator's vector).
func NewHeSRPT(classes int) *HeSRPT {
	h := &HeSRPT{
		classes: classes,
		weights: make([]float64, classes),
	}
	equalWeights(h.weights)
	return h
}

// Name implements Scheduler.
func (h *HeSRPT) Name() string { return "hesrpt" }

// SetWeights implements Scheduler. Weights only affect jobs enqueued
// after the call: a queued job's priority key was fixed at enqueue, the
// same convention SCFQ uses for its finish tags.
func (h *HeSRPT) SetWeights(w []float64) error {
	if err := checkWeights(w, h.classes); err != nil {
		return err
	}
	copy(h.weights, w)
	return nil
}

// Reset implements Scheduler.
func (h *HeSRPT) Reset() {
	equalWeights(h.weights)
	h.seq = 0
	h.heap = h.heap[:0]
	for i := range h.jobs {
		h.jobs[i] = Job{} // drop Payload references
	}
	h.jobs = h.jobs[:0]
	h.free = h.free[:0]
}

// Enqueue implements Scheduler.
func (h *HeSRPT) Enqueue(j Job) {
	key := j.Size / h.weights[j.Class]
	var slot int32
	if n := len(h.free); n > 0 {
		slot = h.free[n-1]
		h.free = h.free[:n-1]
	} else {
		slot = int32(len(h.jobs))
		h.jobs = append(h.jobs, Job{})
	}
	h.jobs[slot] = j
	h.heap = append(h.heap, scfqEntry{tag: key, seq: h.seq, slot: slot})
	h.seq++
	h.siftUp(len(h.heap) - 1)
}

// Dequeue implements Scheduler.
func (h *HeSRPT) Dequeue() (Job, bool) {
	if len(h.heap) == 0 {
		return Job{}, false
	}
	root := h.heap[0]
	n := len(h.heap) - 1
	h.heap[0] = h.heap[n]
	h.heap = h.heap[:n]
	if n > 0 {
		h.siftDown(0)
	}
	j := h.jobs[root.slot]
	h.jobs[root.slot] = Job{} // drop the Payload reference
	h.free = append(h.free, root.slot)
	return j, true
}

// Backlog implements Scheduler.
func (h *HeSRPT) Backlog() int { return len(h.heap) }

func (h *HeSRPT) siftUp(i int) {
	hp := h.heap
	e := hp[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !scfqLess(e, hp[parent]) {
			break
		}
		hp[i] = hp[parent]
		i = parent
	}
	hp[i] = e
}

func (h *HeSRPT) siftDown(i int) {
	hp := h.heap
	n := len(hp)
	e := hp[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if scfqLess(hp[c], hp[min]) {
				min = c
			}
		}
		if !scfqLess(hp[min], e) {
			break
		}
		hp[i] = hp[min]
		i = min
	}
	hp[i] = e
}

var _ Scheduler = (*HeSRPT)(nil)
