// Package sched implements the proportional-share scheduling substrate
// that the paper assumes is available on the server ("we assume that the
// processing rate of an Internet server can be proportionally allocated to
// a number of task servers", §2.2, citing GPS, PGPS and Lottery
// scheduling). The PSD rate allocator outputs a weight vector; these
// schedulers realize it on a single serially-shared processor by choosing
// which class's head-of-line request runs next.
//
// Provided disciplines:
//
//   - SCFQ — self-clocked fair queueing, a practical packet-by-packet
//     approximation of GPS (PGPS family)
//   - DRR — deficit round robin
//   - SmoothWRR — smooth weighted round robin (integer-free)
//   - Lottery — randomized proportional share
//   - StrictPriority — the related-work baseline that provably cannot
//     hold quality spacings (§5)
//   - GlobalFCFS — no differentiation at all
//
// A fluid GPS reference (GPSFinishTimes) computes exact fluid completion
// times for conformance tests: packetized schedules must track the fluid
// schedule within a bounded lag.
//
// All schedulers are single-goroutine data structures; the HTTP front end
// serializes access through its dispatcher.
package sched

import (
	"container/heap"
	"errors"
	"fmt"
)

// Job is one schedulable request.
type Job struct {
	// Class indexes the weight vector.
	Class int
	// Size is the job's service demand in work units.
	Size float64
	// Arrival is the caller's arrival timestamp (informational; only GPS
	// conformance tooling interprets it).
	Arrival float64
	// Payload carries the caller's context through the scheduler.
	Payload any

	// scheduling tags (scheduler-private)
	tag float64
	seq uint64
}

// Scheduler selects the next job to run to completion on the shared
// processor.
type Scheduler interface {
	// Name identifies the discipline.
	Name() string
	// SetWeights installs the normalized per-class weights (from the rate
	// allocator). Implementations must accept any positive vector.
	SetWeights(w []float64) error
	// Enqueue adds a job.
	Enqueue(j *Job)
	// Dequeue removes and returns the next job to serve, or nil if idle.
	Dequeue() *Job
	// Backlog returns the number of queued jobs.
	Backlog() int
}

// ErrBadWeights reports an invalid weight vector.
var ErrBadWeights = errors.New("sched: weights must be positive")

func checkWeights(w []float64, classes int) error {
	if len(w) != classes {
		return fmt.Errorf("%w: got %d weights for %d classes", ErrBadWeights, len(w), classes)
	}
	for i, x := range w {
		if !(x > 0) {
			return fmt.Errorf("%w: weight[%d] = %v", ErrBadWeights, i, x)
		}
	}
	return nil
}

// fifo is a simple per-class queue.
type fifo struct{ jobs []*Job }

func (q *fifo) push(j *Job) { q.jobs = append(q.jobs, j) }
func (q *fifo) pop() *Job {
	j := q.jobs[0]
	q.jobs = q.jobs[1:]
	return j
}
func (q *fifo) head() *Job {
	if len(q.jobs) == 0 {
		return nil
	}
	return q.jobs[0]
}
func (q *fifo) empty() bool { return len(q.jobs) == 0 }
func (q *fifo) len() int    { return len(q.jobs) }

// ---------------------------------------------------------------------------
// SCFQ

// SCFQ is self-clocked fair queueing (Golestani): each arriving job gets a
// finish tag F = max(V, F_prev(class)) + size/w(class), where the virtual
// time V is the finish tag of the job most recently dispatched. Jobs are
// served in increasing tag order, approximating GPS within one maximum job
// per class.
type SCFQ struct {
	classes int
	weights []float64
	lastTag []float64 // per-class last finish tag
	vtime   float64
	pq      jobHeap
	seq     uint64
	backlog int
}

// NewSCFQ builds an SCFQ scheduler for the given class count with equal
// initial weights.
func NewSCFQ(classes int) *SCFQ {
	s := &SCFQ{
		classes: classes,
		weights: make([]float64, classes),
		lastTag: make([]float64, classes),
	}
	for i := range s.weights {
		s.weights[i] = 1 / float64(classes)
	}
	return s
}

// Name implements Scheduler.
func (s *SCFQ) Name() string { return "scfq" }

// SetWeights implements Scheduler.
func (s *SCFQ) SetWeights(w []float64) error {
	if err := checkWeights(w, s.classes); err != nil {
		return err
	}
	copy(s.weights, w)
	return nil
}

// Enqueue implements Scheduler.
func (s *SCFQ) Enqueue(j *Job) {
	start := s.vtime
	if s.lastTag[j.Class] > start {
		start = s.lastTag[j.Class]
	}
	j.tag = start + j.Size/s.weights[j.Class]
	s.lastTag[j.Class] = j.tag
	j.seq = s.seq
	s.seq++
	heap.Push(&s.pq, j)
	s.backlog++
}

// Dequeue implements Scheduler.
func (s *SCFQ) Dequeue() *Job {
	if s.pq.Len() == 0 {
		// Idle period: reset virtual time bookkeeping so stale tags do
		// not penalize the next busy period.
		s.vtime = 0
		for i := range s.lastTag {
			s.lastTag[i] = 0
		}
		return nil
	}
	j := heap.Pop(&s.pq).(*Job)
	s.vtime = j.tag
	s.backlog--
	return j
}

// Backlog implements Scheduler.
func (s *SCFQ) Backlog() int { return s.backlog }

type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].tag != h[j].tag {
		return h[i].tag < h[j].tag
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// ---------------------------------------------------------------------------
// DRR

// DRR is deficit round robin (Shreedhar & Varghese): classes are visited
// cyclically; arriving at a backlogged class adds its grant
// (Quantum·w_i/max(w)) to the class's deficit counter, and the class
// releases head-of-line jobs while their size fits the deficit. A job
// larger than the grant simply accumulates deficit over multiple rounds —
// no job is ever served out of budget.
type DRR struct {
	classes int
	weights []float64
	queues  []fifo
	deficit []float64
	// Quantum is the base quantum in work units; the per-round grant is
	// Quantum·w_i/max(w). Larger quanta reduce rotation overhead but
	// coarsen fairness granularity.
	Quantum float64
	cursor  int
	arrived bool // whether the cursor class has been granted since arrival
	backlog int
}

// NewDRR builds a DRR scheduler with the given base quantum (work units).
func NewDRR(classes int, quantum float64) (*DRR, error) {
	if !(quantum > 0) {
		return nil, fmt.Errorf("sched: DRR quantum %v must be positive", quantum)
	}
	d := &DRR{
		classes: classes,
		weights: make([]float64, classes),
		queues:  make([]fifo, classes),
		deficit: make([]float64, classes),
		Quantum: quantum,
	}
	for i := range d.weights {
		d.weights[i] = 1 / float64(classes)
	}
	return d, nil
}

// Name implements Scheduler.
func (d *DRR) Name() string { return "drr" }

// SetWeights implements Scheduler.
func (d *DRR) SetWeights(w []float64) error {
	if err := checkWeights(w, d.classes); err != nil {
		return err
	}
	copy(d.weights, w)
	return nil
}

// Enqueue implements Scheduler.
func (d *DRR) Enqueue(j *Job) {
	d.queues[j.Class].push(j)
	d.backlog++
}

// Dequeue implements Scheduler.
func (d *DRR) Dequeue() *Job {
	if d.backlog == 0 {
		for i := range d.deficit {
			d.deficit[i] = 0
		}
		d.arrived = false
		return nil
	}
	maxW := 0.0
	for _, w := range d.weights {
		if w > maxW {
			maxW = w
		}
	}
	advance := func() {
		d.cursor = (d.cursor + 1) % d.classes
		d.arrived = false
	}
	// Terminates: every full rotation adds a positive grant to each
	// backlogged class, so some head eventually fits its deficit.
	for {
		q := &d.queues[d.cursor]
		if q.empty() {
			// Standard DRR: an emptied class forfeits its deficit.
			d.deficit[d.cursor] = 0
			advance()
			continue
		}
		if !d.arrived {
			d.deficit[d.cursor] += d.Quantum * d.weights[d.cursor] / maxW
			d.arrived = true
		}
		if head := q.head(); head.Size <= d.deficit[d.cursor] {
			d.deficit[d.cursor] -= head.Size
			d.backlog--
			// Cursor stays: the class keeps draining its deficit until
			// its head no longer fits (then the rotation moves on).
			return q.pop()
		}
		advance()
	}
}

// Backlog implements Scheduler.
func (d *DRR) Backlog() int { return d.backlog }
