package admission

import (
	"math"
	"testing"
)

func mustLadder(t *testing.T, cfg LadderConfig, deltas []float64) *Ladder {
	t.Helper()
	ld, err := NewLadder(cfg, deltas)
	if err != nil {
		t.Fatal(err)
	}
	return ld
}

// overload drives n overloaded observations.
func overload(ld *Ladder, n int) {
	for i := 0; i < n; i++ {
		ld.Observe(1.2, true)
	}
}

func TestNewLadderValidation(t *testing.T) {
	deltas := []float64{1, 2, 4}
	cases := []struct {
		name string
		cfg  LadderConfig
		ds   []float64
	}{
		{"no classes", LadderConfig{}, nil},
		{"rung not above 1", LadderConfig{Multipliers: []float64{1}}, deltas},
		{"rungs not ascending", LadderConfig{Multipliers: []float64{4, 2}}, deltas},
		{"infinite rung", LadderConfig{Multipliers: []float64{2, math.Inf(1)}}, deltas},
		{"NaN rung", LadderConfig{Multipliers: []float64{math.NaN()}}, deltas},
		{"negative engage streak", LadderConfig{EngageAfter: -1}, deltas},
		{"recover above engage", LadderConfig{EngageRho: 0.8, RecoverRho: 0.9}, deltas},
		{"NaN recover rho", LadderConfig{RecoverRho: math.NaN()}, deltas},
		{"order out of range", LadderConfig{Order: []int{0, 3}}, deltas},
		{"order repeats class", LadderConfig{Order: []int{1, 1}}, deltas},
		{"single class, no order", LadderConfig{}, []float64{1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewLadder(tc.cfg, tc.ds); err == nil {
				t.Fatalf("NewLadder(%+v, %v) accepted invalid config", tc.cfg, tc.ds)
			}
		})
	}

	// Explicit order may include the reference class if the operator says so.
	ld := mustLadder(t, LadderConfig{Order: []int{0}}, deltas)
	if got := ld.Classes(); got != 3 {
		t.Fatalf("Classes() = %d, want 3", got)
	}
}

// TestLadderDefaultOrder: default degrade order is highest base δ first,
// and the reference (lowest-δ) class is never degraded.
func TestLadderDefaultOrder(t *testing.T) {
	ld := mustLadder(t, LadderConfig{Multipliers: []float64{2}, EngageAfter: 1}, []float64{1, 4, 2})

	overload(ld, 1)
	if got := []int{ld.Level(0), ld.Level(1), ld.Level(2)}; got[1] != 1 || got[0] != 0 || got[2] != 0 {
		t.Fatalf("first step degraded levels %v, want class 1 (highest delta) only", got)
	}
	overload(ld, 1)
	if got := []int{ld.Level(0), ld.Level(1), ld.Level(2)}; got[2] != 1 || got[0] != 0 {
		t.Fatalf("second step degraded levels %v, want class 2 next, reference untouched", got)
	}
	if !ld.MaxedOut() {
		t.Fatal("ladder with 2 degradable classes x 1 rung not maxed after 2 steps")
	}
	// Reference class stays nominal no matter how long the overload lasts.
	overload(ld, 10)
	if ld.Level(0) != 0 {
		t.Fatalf("reference class degraded to %d", ld.Level(0))
	}
}

// TestLadderDepthFirst: a class walks through ALL its rungs before the
// next class in the order is touched.
func TestLadderDepthFirst(t *testing.T) {
	ld := mustLadder(t, LadderConfig{Multipliers: []float64{2, 4, 8}, EngageAfter: 1}, []float64{1, 2, 4})
	scale := make([]float64, 3)

	wantLevels := [][3]int{{0, 0, 1}, {0, 0, 2}, {0, 0, 3}, {0, 1, 3}, {0, 2, 3}, {0, 3, 3}}
	for step, want := range wantLevels {
		overload(ld, 1)
		got := [3]int{ld.Level(0), ld.Level(1), ld.Level(2)}
		if got != want {
			t.Fatalf("after step %d: levels %v, want %v", step+1, got, want)
		}
	}
	if !ld.MaxedOut() {
		t.Fatal("not maxed out after walking the full sequence")
	}
	ld.ScaleInto(scale)
	if scale[0] != 1 || scale[1] != 8 || scale[2] != 8 {
		t.Fatalf("ScaleInto at max = %v, want [1 8 8]", scale)
	}
}

// TestLadderEngageHysteresis: EngageAfter consecutive overloaded ticks
// are needed per step, and any in-band or healthy tick restarts the count.
func TestLadderEngageHysteresis(t *testing.T) {
	ld := mustLadder(t, LadderConfig{EngageAfter: 3}, []float64{1, 2})

	overload(ld, 2)
	if ld.Engaged() {
		t.Fatal("engaged before EngageAfter overloaded ticks")
	}
	ld.Observe(0.90, false) // in-band: resets the streak
	overload(ld, 2)
	if ld.Engaged() {
		t.Fatal("in-band tick did not reset the overload streak")
	}
	if changed := ld.Observe(1.0, false); !changed {
		t.Fatal("third consecutive overloaded tick did not step")
	}
	if ld.Level(1) != 1 {
		t.Fatalf("Level(1) = %d, want 1", ld.Level(1))
	}
}

// TestLadderRecoveryHysteresis: recovery needs RecoverAfter consecutive
// healthy ticks, climbs one rung at a time, and in-band ticks hold level.
func TestLadderRecoveryHysteresis(t *testing.T) {
	ld := mustLadder(t, LadderConfig{Multipliers: []float64{2, 4}, EngageAfter: 1, RecoverAfter: 3}, []float64{1, 2})
	overload(ld, 2) // level 2: fully degraded
	if ld.Level(1) != 2 || !ld.MaxedOut() {
		t.Fatalf("setup: Level(1) = %d, MaxedOut = %v", ld.Level(1), ld.MaxedOut())
	}

	ld.Observe(0.5, false)
	ld.Observe(0.5, false)
	ld.Observe(0.92, false) // in-band: holds level, restarts the healthy streak
	if ld.Level(1) != 2 {
		t.Fatalf("level moved on an in-band tick: %d", ld.Level(1))
	}
	for i := 0; i < 3; i++ {
		ld.Observe(0.5, false)
	}
	if ld.Level(1) != 1 {
		t.Fatalf("after RecoverAfter healthy ticks: Level(1) = %d, want 1", ld.Level(1))
	}
	if ld.MaxedOut() {
		t.Fatal("still maxed out after one recovery step")
	}
	for i := 0; i < 3; i++ {
		ld.Observe(0.5, false)
	}
	if ld.Level(1) != 0 || ld.Engaged() {
		t.Fatalf("full recovery: Level(1) = %d, Engaged = %v", ld.Level(1), ld.Engaged())
	}
	// Recovering past level 0 is a no-op.
	for i := 0; i < 6; i++ {
		ld.Observe(0.5, false)
	}
	if ld.Level(1) != 0 {
		t.Fatalf("recovered below level 0: %d", ld.Level(1))
	}
}

// TestLadderInfeasibleAlwaysOverloaded: an infeasible allocation counts
// as overloaded regardless of rho, including NaN rho.
func TestLadderInfeasibleAlwaysOverloaded(t *testing.T) {
	ld := mustLadder(t, LadderConfig{EngageAfter: 1}, []float64{1, 2})
	ld.Observe(math.NaN(), true)
	if !ld.Engaged() {
		t.Fatal("infeasible tick with NaN rho did not engage")
	}
	// NaN rho without infeasibility is in-band: never healthy, never overloaded.
	ld2 := mustLadder(t, LadderConfig{EngageAfter: 1, RecoverAfter: 1}, []float64{1, 2})
	overload(ld2, 1)
	ld2.Observe(math.NaN(), false)
	if ld2.Level(1) != 1 {
		t.Fatalf("NaN rho changed the level: %d", ld2.Level(1))
	}
}

// TestLadderScaleIntoAndReset: ScaleInto reflects levels exactly and
// Reset returns to nominal with streaks cleared.
func TestLadderScaleIntoAndReset(t *testing.T) {
	ld := mustLadder(t, LadderConfig{Multipliers: []float64{3, 9}, EngageAfter: 1}, []float64{1, 2})
	scale := make([]float64, 2)

	ld.ScaleInto(scale)
	if scale[0] != 1 || scale[1] != 1 {
		t.Fatalf("nominal ScaleInto = %v, want [1 1]", scale)
	}
	overload(ld, 1)
	ld.ScaleInto(scale)
	if scale[0] != 1 || scale[1] != 3 {
		t.Fatalf("level-1 ScaleInto = %v, want [1 3]", scale)
	}
	overload(ld, 1)
	ld.ScaleInto(scale)
	if scale[1] != 9 {
		t.Fatalf("level-2 ScaleInto = %v, want [1 9]", scale)
	}

	ld.Reset()
	if ld.Engaged() || ld.Level(1) != 0 {
		t.Fatalf("Reset left Engaged=%v Level(1)=%d", ld.Engaged(), ld.Level(1))
	}
	ld.ScaleInto(scale)
	if scale[0] != 1 || scale[1] != 1 {
		t.Fatalf("post-Reset ScaleInto = %v, want [1 1]", scale)
	}
	// Reset also clears a pending overload streak: one more overloaded
	// tick must not immediately step with EngageAfter=2 semantics.
	ld2 := mustLadder(t, LadderConfig{EngageAfter: 2}, []float64{1, 2})
	overload(ld2, 1)
	ld2.Reset()
	overload(ld2, 1)
	if ld2.Engaged() {
		t.Fatal("Reset did not clear the overload streak")
	}
}

func TestLadderLevelBounds(t *testing.T) {
	ld := mustLadder(t, LadderConfig{}, []float64{1, 2})
	if ld.Level(-1) != 0 || ld.Level(2) != 0 {
		t.Fatal("out-of-range Level() not 0")
	}
}
