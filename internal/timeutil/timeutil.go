// Package timeutil holds small wall-clock helpers shared by the live
// server and the load generator.
package timeutil

import "time"

// NewStoppedTimer returns a timer that is stopped and drained, ready
// for its first Reset — the starting state every reused-timer loop
// wants, without a dummy duration that could spuriously fire.
func NewStoppedTimer() *time.Timer {
	t := time.NewTimer(time.Hour)
	StopTimer(t)
	return t
}

// StopTimer stops and drains a reused timer so the next Reset starts
// clean. The non-blocking drain is load-bearing: the timer may have
// fired (channel holding a value) or not (Stop returned false because a
// concurrent fire is in flight but the value was already consumed), and
// a blocking receive would deadlock in the latter case.
func StopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}
