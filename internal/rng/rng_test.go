package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero seed produced repeated values: %d unique of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	c1again := parent.Split(1)
	for i := 0; i < 100; i++ {
		v1 := c1.Uint64()
		if v1 != c1again.Uint64() {
			t.Fatalf("Split(1) not reproducible at draw %d", i)
		}
		if v1 == c2.Uint64() {
			t.Fatalf("Split(1) and Split(2) collided at draw %d", i)
		}
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split(5)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent state")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64OpenRange(t *testing.T) {
	r := New(4)
	for i := 0; i < 100000; i++ {
		v := r.Float64Open()
		if v <= 0 || v >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(6)
	const n = 200000
	const rate = 2.5
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64(rate)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	mean := sum / n
	want := 1 / rate
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("exp mean = %v, want ~%v", mean, want)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(8)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(10)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n = 10
	const draws = 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("bucket %d count %d deviates from %v by more than 5%%", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestJumpProducesDisjointStream(t *testing.T) {
	a := New(13)
	b := New(13)
	b.Jump()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("jumped stream collided with original %d times", same)
	}
}

func TestShufflePermutes(t *testing.T) {
	r := New(14)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestMul64MatchesBigMultiplication(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via four 32x32 partial products recomputed differently:
		// (a*b) mod 2^64 must equal Go's native wrap-around product.
		if lo != a*b {
			return false
		}
		// Spot-check hi via float approximation for magnitude sanity.
		approx := float64(a) * float64(b) / math.Pow(2, 64)
		diff := math.Abs(float64(hi) - approx)
		return diff <= approx*1e-9+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Quantiles(t *testing.T) {
	// Chi-square-ish uniformity over 20 buckets.
	r := New(15)
	const buckets = 20
	const draws = 200000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[int(r.Float64()*buckets)]++
	}
	want := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - want
		chi2 += d * d / want
	}
	// 19 dof; 99.9th percentile is ~43.8. Allow generous headroom.
	if chi2 > 60 {
		t.Fatalf("uniformity chi2 = %v, too large", chi2)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

func BenchmarkExpFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.ExpFloat64(1.5)
	}
	_ = sink
}
