package simsrv

// estimator is the paper's load estimator (§4.1): per-class arrival counts
// and work are accumulated per window; the estimate used for the next
// window is the average over the past `history` windows ("the load for
// next thousand time units was the average load in past five thousand time
// units").
type estimator struct {
	history int
	// ring buffers, one slot per retained window
	counts [][]float64 // [class][slot]
	work   [][]float64
	// current (open) window accumulators
	curCount []float64
	curWork  []float64
	next     int // ring write index
	filled   int // number of valid slots
}

func newEstimator(classes, history int) *estimator {
	e := &estimator{
		history:  history,
		counts:   make([][]float64, classes),
		work:     make([][]float64, classes),
		curCount: make([]float64, classes),
		curWork:  make([]float64, classes),
	}
	for i := range e.counts {
		e.counts[i] = make([]float64, history)
		e.work[i] = make([]float64, history)
	}
	return e
}

// observe records one arrival of the given size for a class.
func (e *estimator) observe(class int, size float64) {
	e.curCount[class]++
	e.curWork[class] += size
}

// roll closes the current window into the ring.
func (e *estimator) roll() {
	for i := range e.counts {
		e.counts[i][e.next] = e.curCount[i]
		e.work[i][e.next] = e.curWork[i]
		e.curCount[i] = 0
		e.curWork[i] = 0
	}
	e.next = (e.next + 1) % e.history
	if e.filled < e.history {
		e.filled++
	}
}

// lambdasInto fills dst with the estimated per-class arrival rates over
// the retained history, given the window width. Zero before any window
// has closed. The caller-provided dst keeps the per-window reallocation
// tick allocation-free.
func (e *estimator) lambdasInto(dst []float64, window float64) {
	ringInto(dst, e.counts, window, e.filled)
}

// loadsInto fills dst with the estimated per-class offered load (work per
// time unit) over the retained history.
func (e *estimator) loadsInto(dst []float64, window float64) {
	ringInto(dst, e.work, window, e.filled)
}

func ringInto(dst []float64, ring [][]float64, window float64, filled int) {
	if filled == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	span := window * float64(filled)
	for i := range ring {
		sum := 0.0
		for s := 0; s < filled; s++ {
			sum += ring[i][s]
		}
		dst[i] = sum / span
	}
}
