package simsrv

import (
	"math"
	"testing"

	"psd/internal/core"
	"psd/internal/dist"
	"psd/internal/rng"
	"psd/internal/sched"
)

func packetizedConfig(deltas []float64, rho float64) PacketizedConfig {
	cfg := EqualLoadConfig(deltas, rho, nil)
	cfg.Warmup = 2000
	cfg.Horizon = 20000
	cfg.Seed = 3
	cfg.Allocator = core.PacketizedPSD{}
	return PacketizedConfig{Config: cfg}
}

// ratioOfMeans averages mean slowdowns over seeds and returns the class
// i/class 0 ratio of the averaged means (low-bias estimator).
func packetizedRatio(t *testing.T, pc PacketizedConfig, runs int) float64 {
	t.Helper()
	var s0, s1 float64
	for seed := uint64(0); seed < uint64(runs); seed++ {
		pc.Config.Seed = seed
		res, err := RunPacketized(pc)
		if err != nil {
			t.Fatal(err)
		}
		s0 += res.Classes[0].MeanSlowdown
		s1 += res.Classes[1].MeanSlowdown
	}
	return s1 / s0
}

func TestPacketizedRejectsWorkConservingFlag(t *testing.T) {
	pc := packetizedConfig([]float64{1, 2}, 0.5)
	pc.Config.WorkConserving = true
	if _, err := RunPacketized(pc); err == nil {
		t.Fatal("accepted WorkConserving flag")
	}
}

func TestPacketizedBasicRun(t *testing.T) {
	pc := packetizedConfig([]float64{1, 2}, 0.6)
	res, err := RunPacketized(pc)
	if err != nil {
		t.Fatal(err)
	}
	for i, cs := range res.Classes {
		if cs.Count == 0 {
			t.Fatalf("class %d starved", i)
		}
		if math.IsNaN(cs.MeanSlowdown) || cs.MeanSlowdown < 0 {
			t.Fatalf("class %d slowdown %v", i, cs.MeanSlowdown)
		}
	}
	// Full-speed service: mean service time equals the size law's mean
	// (≈0.29 for the paper default), NOT inflated by a rate split.
	if res.Classes[0].MeanService > 0.5 {
		t.Fatalf("packetized service time %v looks rate-divided", res.Classes[0].MeanService)
	}
	if res.Classes[0].MeanSlowdown >= res.Classes[1].MeanSlowdown {
		t.Fatalf("ordering violated: %v vs %v",
			res.Classes[0].MeanSlowdown, res.Classes[1].MeanSlowdown)
	}
}

// TestPacketizedWorkConservationLimitsDifferentiation is the central
// finding of the packetized study, and the reproduction's justification
// for the paper's non-work-conserving design: a work-conserving
// weighted-fair scheduler at moderate load differentiates only weakly —
// the achieved ratio sits well below the target 2 regardless of which
// allocator chose the weights, because reordering can only trade delay
// during contention (Kleinrock's conservation law) while the paper's
// strict capacity partition holds the gap open at every load.
func TestPacketizedWorkConservationLimitsDifferentiation(t *testing.T) {
	const runs = 6
	for _, alloc := range []core.Allocator{core.PacketizedPSD{}, core.PSD{}} {
		pc := packetizedConfig([]float64{1, 2}, 0.6)
		pc.Config.Allocator = alloc
		ratio := packetizedRatio(t, pc, runs)
		if ratio <= 1.0 {
			t.Logf("%s: ratio %v at or below 1 — reorder-only differentiation "+
				"vanished entirely in this sample", alloc.Name(), ratio)
		}
		if ratio > 1.6 {
			t.Errorf("%s: ratio %v unexpectedly close to the partitioned target 2 — "+
				"the work-conserving limitation should bind", alloc.Name(), ratio)
		}
	}
	// The paper's partitioned task servers hit the target on the same
	// workload. Per-run slowdown means are heavy-tail noisy, so this arm
	// uses the paper's full 60k-tu horizon and 8 seeds (ratio of summed
	// means) with a tolerance sized for that fidelity.
	var s0, s1 float64
	for seed := uint64(0); seed < 8; seed++ {
		cfg := packetizedConfig([]float64{1, 2}, 0.6).Config
		cfg.Allocator = core.PSD{}
		cfg.Horizon = 60000
		cfg.Seed = seed
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s0 += res.Classes[0].MeanSlowdown
		s1 += res.Classes[1].MeanSlowdown
	}
	partitioned := s1 / s0
	if math.Abs(partitioned-2)/2 > 0.3 {
		t.Fatalf("partitioned model should achieve the target: ratio %v", partitioned)
	}
}

// TestPacketizedDisciplinesAgree: SCFQ, DRR and Lottery all realize the
// allocated weights, so their achieved ratios should be mutually close.
func TestPacketizedDisciplinesAgree(t *testing.T) {
	mks := map[string]func(int, *rng.Source) sched.Scheduler{
		"scfq": func(n int, _ *rng.Source) sched.Scheduler { return sched.NewSCFQ(n) },
		"drr": func(n int, _ *rng.Source) sched.Scheduler {
			d, err := sched.NewDRR(n, 1.0)
			if err != nil {
				panic(err)
			}
			return d
		},
		"lottery": func(n int, src *rng.Source) sched.Scheduler { return sched.NewLottery(n, src) },
	}
	ratios := map[string]float64{}
	for name, mk := range mks {
		pc := packetizedConfig([]float64{1, 2}, 0.6)
		pc.NewScheduler = mk
		ratios[name] = packetizedRatio(t, pc, 4)
	}
	for a, ra := range ratios {
		for b, rb := range ratios {
			if math.Abs(ra-rb)/math.Max(ra, rb) > 0.35 {
				t.Fatalf("disciplines disagree: %s=%v vs %s=%v", a, ra, b, rb)
			}
		}
	}
}

// TestPacketizedStrictPriorityBreaksProportionality reproduces the
// related-work claim (§5): priority scheduling differentiates but cannot
// hold a target spacing.
func TestPacketizedStrictPriorityBreaksProportionality(t *testing.T) {
	pc := packetizedConfig([]float64{1, 2}, 0.7)
	pc.NewScheduler = func(n int, _ *rng.Source) sched.Scheduler { return sched.NewStrictPriority(n) }
	ratio := packetizedRatio(t, pc, 4)
	// Strict priority starves class 2 relative to any fixed proportional
	// target; the ratio runs far above 2.
	if ratio < 3 {
		t.Fatalf("strict priority ratio %v unexpectedly close to proportional target", ratio)
	}
}

func TestPacketizedDeterminism(t *testing.T) {
	pc := packetizedConfig([]float64{1, 2}, 0.5)
	a, err := RunPacketized(pc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPacketized(pc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Classes[0].MeanSlowdown != b.Classes[0].MeanSlowdown || a.EventsProcessed != b.EventsProcessed {
		t.Fatal("packetized run not deterministic")
	}
}

func TestPacketizedDefaultsToPacketizedAllocator(t *testing.T) {
	cfg := EqualLoadConfig([]float64{1, 2}, 0.5, nil)
	cfg.Warmup = 1000
	cfg.Horizon = 5000
	pc := PacketizedConfig{Config: cfg} // Allocator nil
	res, err := RunPacketized(pc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes[0].Count == 0 {
		t.Fatal("no traffic measured")
	}
	// Expected slowdowns should come from the packetized model (finite,
	// ordered by delta).
	if !(res.ExpectedSlowdowns[0] < res.ExpectedSlowdowns[1]) {
		t.Fatalf("expected slowdowns unordered: %v", res.ExpectedSlowdowns)
	}
}

func TestPacketizedRecordsRequests(t *testing.T) {
	pc := packetizedConfig([]float64{1, 2}, 0.5)
	pc.Config.RecordRequests = true
	pc.Config.RecordFrom = 5000
	pc.Config.RecordTo = 7000
	res, err := RunPacketized(pc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no records captured")
	}
	for _, r := range res.Records {
		if r.Completion < 5000 || r.Completion >= 7000 {
			t.Fatalf("record outside range: %+v", r)
		}
		// Packetized service runs at full speed: duration == size.
		if math.Abs((r.Completion-r.ServiceStart)-r.Size) > 1e-9 {
			t.Fatalf("service duration != size: %+v", r)
		}
	}
}

// TestPacketizedPSDAllocatorProperties: core-level invariants of the new
// allocator.
func TestPacketizedPSDAllocatorProperties(t *testing.T) {
	w, err := core.WorkloadFromDist(dist.PaperDefault())
	if err != nil {
		t.Fatal(err)
	}
	lambda := 0.3 / w.MeanSize
	classes := []core.Class{{Delta: 1, Lambda: lambda}, {Delta: 2, Lambda: lambda}}
	alloc, err := (core.PacketizedPSD{}).Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	sum := alloc.Rates[0] + alloc.Rates[1]
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("weights sum to %v", sum)
	}
	// Predicted slowdowns in exact delta ratio.
	if math.Abs(alloc.ExpectedSlowdowns[1]/alloc.ExpectedSlowdowns[0]-2) > 1e-4 {
		t.Fatalf("predicted ratio %v", alloc.ExpectedSlowdowns[1]/alloc.ExpectedSlowdowns[0])
	}
	// Cross-check against PacketizedSlowdown.
	for i, c := range classes {
		s, err := core.PacketizedSlowdown(c.Lambda, w, alloc.Rates[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s-alloc.ExpectedSlowdowns[i])/s > 1e-6 {
			t.Fatalf("class %d: model %v vs alloc %v", i, s, alloc.ExpectedSlowdowns[i])
		}
	}
}
