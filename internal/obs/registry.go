package obs

import (
	"fmt"
	"strconv"
)

// MetricType classifies a registered metric family for exposition.
type MetricType int

const (
	CounterType MetricType = iota
	GaugeType
	HistogramType
)

// String implements fmt.Stringer in Prometheus TYPE vocabulary.
func (t MetricType) String() string {
	switch t {
	case CounterType:
		return "counter"
	case GaugeType:
		return "gauge"
	case HistogramType:
		return "histogram"
	default:
		return fmt.Sprintf("metrictype(%d)", int(t))
	}
}

// family is one registered metric family: either a single unlabeled
// instance or a dense vector indexed by one label (the per-class pattern;
// label values are pre-rendered at registration so exposition does no
// per-scrape formatting of its own).
type family struct {
	name, help string
	typ        MetricType
	label      string   // "" for unlabeled
	labelVals  []string // pre-rendered; len 1 with empty label when unlabeled

	// Exactly one of these is populated, matching typ (float decides
	// between counters and fcounters).
	counters  []Counter
	fcounters []FloatCounter
	gauges    []Gauge
	hists     []*Histogram
	isFloat   bool
}

// Registry holds an ordered set of metric families. Registration happens
// at setup time (and may allocate or panic on programmer error: duplicate
// or malformed names); the returned handles are then used lock-free on
// the hot path. Exposition walks families in registration order, so the
// output is deterministic.
type Registry struct {
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register validates and stores a new family, panicking on duplicate or
// invalid names — both are programmer errors caught by the first scrape
// in any test, never data-dependent.
func (r *Registry) register(f *family) {
	if !validMetricName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	if f.label != "" && !validMetricName(f.label) {
		panic(fmt.Sprintf("obs: invalid label name %q on %q", f.label, f.name))
	}
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", f.name))
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
}

// validMetricName enforces the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// indexLabels pre-renders the 0..n-1 label values.
func indexLabels(n int) []string {
	vals := make([]string, n)
	for i := range vals {
		vals[i] = strconv.Itoa(i)
	}
	return vals
}

// Counter registers and returns an unlabeled int counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := &family{name: name, help: help, typ: CounterType, counters: make([]Counter, 1), labelVals: []string{""}}
	r.register(f)
	return &f.counters[0]
}

// FloatCounter registers and returns an unlabeled float counter.
func (r *Registry) FloatCounter(name, help string) *FloatCounter {
	f := &family{name: name, help: help, typ: CounterType, isFloat: true, fcounters: make([]FloatCounter, 1), labelVals: []string{""}}
	r.register(f)
	return &f.fcounters[0]
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := &family{name: name, help: help, typ: GaugeType, gauges: make([]Gauge, 1), labelVals: []string{""}}
	r.register(f)
	return &f.gauges[0]
}

// CounterVec is a dense vector of counters indexed by one label.
type CounterVec struct{ f *family }

// At returns the counter for label value i.
func (v *CounterVec) At(i int) *Counter { return &v.f.counters[i] }

// Len returns the vector's size.
func (v *CounterVec) Len() int { return len(v.f.counters) }

// CounterVec registers a counter vector with label values 0..n-1.
func (r *Registry) CounterVec(name, help, label string, n int) *CounterVec {
	f := &family{name: name, help: help, typ: CounterType, label: label,
		labelVals: indexLabels(n), counters: make([]Counter, n)}
	r.register(f)
	return &CounterVec{f}
}

// FloatCounterVec is a dense vector of float counters indexed by one label.
type FloatCounterVec struct{ f *family }

// At returns the counter for label value i.
func (v *FloatCounterVec) At(i int) *FloatCounter { return &v.f.fcounters[i] }

// Len returns the vector's size.
func (v *FloatCounterVec) Len() int { return len(v.f.fcounters) }

// FloatCounterVec registers a float counter vector with label values 0..n-1.
func (r *Registry) FloatCounterVec(name, help, label string, n int) *FloatCounterVec {
	f := &family{name: name, help: help, typ: CounterType, isFloat: true, label: label,
		labelVals: indexLabels(n), fcounters: make([]FloatCounter, n)}
	r.register(f)
	return &FloatCounterVec{f}
}

// GaugeVec is a dense vector of gauges indexed by one label.
type GaugeVec struct{ f *family }

// At returns the gauge for label value i.
func (v *GaugeVec) At(i int) *Gauge { return &v.f.gauges[i] }

// Len returns the vector's size.
func (v *GaugeVec) Len() int { return len(v.f.gauges) }

// GaugeVec registers a gauge vector with label values 0..n-1.
func (r *Registry) GaugeVec(name, help, label string, n int) *GaugeVec {
	f := &family{name: name, help: help, typ: GaugeType, label: label,
		labelVals: indexLabels(n), gauges: make([]Gauge, n)}
	r.register(f)
	return &GaugeVec{f}
}

// HistogramVec is a dense vector of histograms indexed by one label, all
// sharing one bucket layout.
type HistogramVec struct{ f *family }

// At returns the histogram for label value i.
func (v *HistogramVec) At(i int) *Histogram { return v.f.hists[i] }

// Len returns the vector's size.
func (v *HistogramVec) Len() int { return len(v.f.hists) }

// HistogramVec registers a histogram vector with label values 0..n-1 and
// buckets power-of-two buckets starting at 2^firstExp.
func (r *Registry) HistogramVec(name, help, label string, n, firstExp, buckets int) *HistogramVec {
	f := &family{name: name, help: help, typ: HistogramType, label: label,
		labelVals: indexLabels(n), hists: make([]*Histogram, n)}
	for i := range f.hists {
		h, err := NewHistogram(firstExp, buckets)
		if err != nil {
			panic(err.Error())
		}
		f.hists[i] = h
	}
	r.register(f)
	return &HistogramVec{f}
}

// Histogram registers and returns an unlabeled histogram.
func (r *Registry) Histogram(name, help string, firstExp, buckets int) *Histogram {
	h, err := NewHistogram(firstExp, buckets)
	if err != nil {
		panic(err.Error())
	}
	f := &family{name: name, help: help, typ: HistogramType,
		labelVals: []string{""}, hists: []*Histogram{h}}
	r.register(f)
	return h
}

// MetricNames returns every registered family name in registration order
// (the documentation-coverage check walks this).
func (r *Registry) MetricNames() []string {
	names := make([]string, len(r.families))
	for i, f := range r.families {
		names[i] = f.name
	}
	return names
}
