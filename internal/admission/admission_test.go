package admission

import (
	"math"
	"testing"
)

func TestAlwaysAdmit(t *testing.T) {
	var a AlwaysAdmit
	for i := 0; i < 100; i++ {
		if !a.Admit(i%3, 1e9, float64(i)) {
			t.Fatal("AlwaysAdmit rejected")
		}
	}
	if a.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestUtilizationBoundValidation(t *testing.T) {
	if _, err := NewUtilizationBound(0, 100); err == nil {
		t.Error("accepted bound 0")
	}
	if _, err := NewUtilizationBound(1.2, 100); err == nil {
		t.Error("accepted bound > 1")
	}
	if _, err := NewUtilizationBound(0.9, 0); err == nil {
		t.Error("accepted tau 0")
	}
}

func TestUtilizationBoundRejectsOverload(t *testing.T) {
	u, err := NewUtilizationBound(0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Offer load 1.0 (size 1 every time unit): about half must be shed.
	admitted := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if u.Admit(0, 1, float64(i)) {
			admitted++
		}
	}
	frac := float64(admitted) / n
	if math.Abs(frac-0.5) > 0.08 {
		t.Fatalf("admitted fraction %v, want ≈ bound 0.5", frac)
	}
}

func TestUtilizationBoundAdmitsUnderload(t *testing.T) {
	u, _ := NewUtilizationBound(0.9, 100)
	// Offer load 0.5: everything fits under the bound.
	rejected := 0
	for i := 0; i < 2000; i++ {
		if !u.Admit(0, 0.5, float64(i)) {
			rejected++
		}
	}
	if rejected > 0 {
		t.Fatalf("rejected %d requests at load 0.5 under bound 0.9", rejected)
	}
}

func TestUtilizationBoundDecays(t *testing.T) {
	u, _ := NewUtilizationBound(0.5, 10)
	// Saturate the integrator…
	for i := 0; i < 100; i++ {
		u.Admit(0, 1, float64(i))
	}
	if u.Admit(0, 1, 100) {
		// May or may not admit right at the boundary; force saturation:
		for i := 101; i < 120; i++ {
			u.Admit(0, 5, float64(i))
		}
	}
	loadBefore := u.Load(120)
	// …then go idle for many time constants: the estimate must decay.
	loadAfter := u.Load(120 + 100)
	if !(loadAfter < loadBefore/100) {
		t.Fatalf("load did not decay: %v -> %v", loadBefore, loadAfter)
	}
	if !u.Admit(0, 1, 400) {
		t.Fatal("controller did not recover after idle period")
	}
}

func TestTokenBucketValidation(t *testing.T) {
	if _, err := NewTokenBucket(nil, 1); err == nil {
		t.Error("accepted empty rates")
	}
	if _, err := NewTokenBucket([]float64{0.5, 0}, 1); err == nil {
		t.Error("accepted zero rate")
	}
	if _, err := NewTokenBucket([]float64{0.5}, 0); err == nil {
		t.Error("accepted zero burst")
	}
}

func TestTokenBucketRateEnforcement(t *testing.T) {
	tb, err := NewTokenBucket([]float64{0.3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Offer size-1 requests every time unit (load 1.0) against rate 0.3:
	// roughly 30% should pass once the initial burst drains.
	admitted := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if tb.Admit(0, 1, float64(i)) {
			admitted++
		}
	}
	frac := float64(admitted) / n
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("admitted fraction %v, want ≈ 0.3", frac)
	}
}

func TestTokenBucketIsolatesClasses(t *testing.T) {
	tb, _ := NewTokenBucket([]float64{0.4, 0.4}, 1)
	// Class 0 floods; class 1 offers load 0.2 and must be untouched.
	rejected1 := 0
	now := 0.0
	for i := 0; i < 4000; i++ {
		now += 0.5
		tb.Admit(0, 5, now) // flood
		if i%4 == 0 {       // class 1: size 0.4 every 2 tu = load 0.2
			if !tb.Admit(1, 0.4, now) {
				rejected1++
			}
		}
	}
	if rejected1 > 0 {
		t.Fatalf("flooding class 0 caused %d class-1 rejections", rejected1)
	}
}

func TestTokenBucketBurstCap(t *testing.T) {
	tb, _ := NewTokenBucket([]float64{1}, 3)
	// After a long idle period credit is capped at burst, not unbounded.
	if got := tb.Tokens(0, 1e6); got != 3 {
		t.Fatalf("tokens = %v, want burst cap 3", got)
	}
	if !tb.Admit(0, 3, 1e6) {
		t.Fatal("full burst should be admitted")
	}
	if tb.Admit(0, 3, 1e6) {
		t.Fatal("second burst immediately after should be rejected")
	}
}

func TestTokenBucketBadClass(t *testing.T) {
	tb, _ := NewTokenBucket([]float64{1}, 1)
	if tb.Admit(5, 0.1, 0) || tb.Admit(-1, 0.1, 0) {
		t.Fatal("out-of-range class admitted")
	}
	if tb.Tokens(9, 0) != 0 {
		t.Fatal("out-of-range tokens should be 0")
	}
}

func TestTokenBucketRefund(t *testing.T) {
	tb, _ := NewTokenBucket([]float64{1e-9, 1e-9}, 10)
	if !tb.Admit(0, 8, 0) {
		t.Fatal("size-8 should fit burst 10")
	}
	tb.Refund(0, 8, 0)
	if got := tb.Tokens(0, 0); got != 10 {
		t.Fatalf("tokens after refund = %v, want 10", got)
	}
	tb.Refund(0, 99, 0) // over-refund is capped at burst
	if got := tb.Tokens(0, 0); got != 10 {
		t.Fatalf("tokens after over-refund = %v, want cap 10", got)
	}
	tb.Refund(7, 1, 0) // out-of-range class is a no-op
}

func TestUtilizationBoundRefund(t *testing.T) {
	u, _ := NewUtilizationBound(0.5, 100)
	if !u.Admit(0, 40, 0) {
		t.Fatal("size-40 should pass bound 0.5·tau 100")
	}
	if u.Admit(0, 40, 0) {
		t.Fatal("second size-40 should exceed the bound")
	}
	u.Refund(0, 40, 0)
	if !u.Admit(0, 40, 0) {
		t.Fatal("refunded credit should re-admit the same demand")
	}
	u.Refund(0, 1e9, 0) // over-refund clamps at zero level
	if got := u.Load(0); got != 0 {
		t.Fatalf("load after over-refund = %v, want 0", got)
	}
}
