package simsrv

import (
	"fmt"
	"math"
	"runtime"

	"psd/internal/stats"
)

// Aggregate summarizes many independent replications of one Config, the
// paper's "each reported result is an average of 100 runs".
type Aggregate struct {
	Runs int
	// MeanSlowdowns[i] is the across-run mean of class i's per-run mean
	// slowdown; CI95 the 95% normal-approximation half-width.
	MeanSlowdowns []float64
	CI95          []float64
	// ExpectedSlowdowns are the model (Eq. 18) predictions.
	ExpectedSlowdowns []float64
	// SystemSlowdown is the across-run mean of the arrival-weighted
	// system slowdown.
	SystemSlowdown float64
	// RatioSummaries[i] summarizes the pooled per-window achieved
	// slowdown ratios of class i to class 0 across all runs (entry 0 is
	// the degenerate self-ratio and is left zero). Percentiles are P²
	// streaming estimates unless the aggregator ran in exact mode.
	RatioSummaries []stats.Summary
	// MeanRatios[i] is the across-run mean of (class i mean slowdown /
	// class 0 mean slowdown), the statistic plotted in Figures 9–10.
	MeanRatios []float64
	// WindowRatioMeans[i][k] is the across-run mean of measurement window
	// k's achieved class-i/class-0 slowdown ratio (NaN where no run had
	// both classes completing in that window). Nil unless the aggregator
	// ran with TrackWindowRatios — the transient-response figures use it
	// to plot estimator convergence after a load shift.
	WindowRatioMeans [][]float64
	// MeanShedRate is the across-run mean of the per-run shed fraction
	// ΣRejected/(ΣRejected+ΣCount) — the fraction of arrivals dropped by
	// admission control (0 without an admission gate). Rejections during
	// warmup are included: shedding is a capacity decision, not a
	// steady-state statistic, and the tournament figure compares
	// policies on everything they refused to serve.
	MeanShedRate float64
	// AllocFailures totals allocator fallbacks across runs.
	AllocFailures int
	// EventsProcessed totals DES events across runs (for throughput
	// accounting — see cmd/psdbench).
	EventsProcessed uint64
}

// Aggregator folds replication Results into an Aggregate as a stream, in
// O(classes) space: across-run means via Welford and pooled per-window
// ratio summaries via P² quantile markers (stats.StreamingSummary). The
// pre-streaming implementation buffered every window ratio of every run
// in [][]float64 and sorted the pool at the end — memory linear in
// runs×windows, which is exactly the batch-vs-streaming trade-off the P²
// estimator exists for. Because the consumed Result is fully copied into
// the accumulators, the SAME Result buffer can be recycled for the next
// replication — the worker/aggregator pipelines in RunReplications and
// internal/sweep circulate a fixed pool of Results this way.
//
// Add must be called in replication order (rep 0, 1, 2, …): the P²
// markers and Welford accumulators are order-sensitive in the last few
// floating-point bits, and fixed order is what makes an Aggregate
// reproducible run-to-run regardless of worker scheduling.
type Aggregator struct {
	nc         int
	numWindows int
	runs       int
	exact      bool

	perClass   []stats.Welford
	ratioMeans []stats.Welford
	ratios     []stats.StreamingSummary
	pooled     [][]float64 // exact mode only
	// winRatios[i*numWindows+k] accumulates window k's class-i/class-0
	// ratio across runs; nil unless TrackWindowRatios.
	winRatios []stats.Welford
	system    stats.Welford
	shed      stats.Welford
	expected  []float64
	allocFail int
	events    uint64
}

// NewAggregator builds a streaming aggregator for replications of cfg
// (defaults applied here, so the class count is final).
func NewAggregator(cfg Config) *Aggregator {
	cfg = cfg.ApplyDefaults()
	nc := len(cfg.Classes)
	a := &Aggregator{
		nc:         nc,
		numWindows: int(math.Ceil(cfg.Horizon / cfg.Window)),
		perClass:   make([]stats.Welford, nc),
		ratioMeans: make([]stats.Welford, nc),
		ratios:     make([]stats.StreamingSummary, nc),
		expected:   make([]float64, nc),
	}
	for i := range a.ratios {
		a.ratios[i].Init()
	}
	return a
}

// TrackWindowRatios additionally accumulates each measurement window's
// achieved slowdown ratios across runs (the transient time series behind
// the estimator-convergence figure). Must be selected before the first
// Add; memory is O(classes × windows).
func (a *Aggregator) TrackWindowRatios() {
	if a.runs > 0 {
		panic("simsrv: TrackWindowRatios after Add")
	}
	a.winRatios = make([]stats.Welford, a.nc*a.numWindows)
}

// UseExactQuantiles switches the ratio summaries to the exact batch path:
// every pooled window ratio is buffered and the percentiles computed by
// sorting, exactly as the pre-streaming engine did. Golden comparisons
// and accuracy tests use this; it must be selected before the first Add.
func (a *Aggregator) UseExactQuantiles() {
	if a.runs > 0 {
		panic("simsrv: UseExactQuantiles after Add")
	}
	a.exact = true
	a.pooled = make([][]float64, a.nc)
}

// Add folds one replication's Result into the aggregate. res must have
// the aggregator's class count; it is fully consumed and may be reused
// for the next replication.
func (a *Aggregator) Add(res *Result) {
	a.runs++
	for i := 0; i < a.nc; i++ {
		if res.Classes[i].Count > 0 {
			a.perClass[i].Add(res.Classes[i].MeanSlowdown)
		}
		if i > 0 {
			if s0 := res.Classes[0].MeanSlowdown; s0 > 0 && res.Classes[i].Count > 0 {
				a.ratioMeans[i].Add(res.Classes[i].MeanSlowdown / s0)
			}
			// Pool this run's per-window class-i/class-0 ratios,
			// skipping windows where either class has no completions
			// (same filter as Result.WindowRatio, without its
			// allocation).
			wi, w0 := res.Classes[i].WindowMeans, res.Classes[0].WindowMeans
			n := len(wi)
			if len(w0) < n {
				n = len(w0)
			}
			for k := 0; k < n; k++ {
				x, y := wi[k], w0[k]
				if math.IsNaN(x) || math.IsNaN(y) || y == 0 {
					continue
				}
				if a.exact {
					a.pooled[i] = append(a.pooled[i], x/y)
				} else {
					a.ratios[i].Add(x / y)
				}
				if a.winRatios != nil && k < a.numWindows {
					a.winRatios[i*a.numWindows+k].Add(x / y)
				}
			}
		}
	}
	if a.runs == 1 {
		copy(a.expected, res.ExpectedSlowdowns)
	}
	a.system.Add(res.SystemSlowdown)
	var served, rejected float64
	for i := 0; i < a.nc; i++ {
		served += float64(res.Classes[i].Count)
		rejected += float64(res.Classes[i].Rejected)
	}
	if total := served + rejected; total > 0 {
		a.shed.Add(rejected / total)
	} else {
		a.shed.Add(0)
	}
	a.allocFail += res.AllocFailures
	a.events += res.EventsProcessed
}

// Aggregate finalizes the accumulated replications.
func (a *Aggregator) Aggregate() (*Aggregate, error) {
	if a.runs == 0 {
		return nil, fmt.Errorf("simsrv: aggregate of zero replications")
	}
	agg := &Aggregate{
		Runs:              a.runs,
		MeanSlowdowns:     make([]float64, a.nc),
		CI95:              make([]float64, a.nc),
		ExpectedSlowdowns: make([]float64, a.nc),
		RatioSummaries:    make([]stats.Summary, a.nc),
		MeanRatios:        make([]float64, a.nc),
		SystemSlowdown:    a.system.Mean(),
		MeanShedRate:      a.shed.Mean(),
		AllocFailures:     a.allocFail,
		EventsProcessed:   a.events,
	}
	for i := 0; i < a.nc; i++ {
		agg.MeanSlowdowns[i] = a.perClass[i].Mean()
		agg.CI95[i] = a.perClass[i].ConfidenceInterval(0.95)
		agg.ExpectedSlowdowns[i] = a.expected[i]
		if i > 0 {
			agg.MeanRatios[i] = a.ratioMeans[i].Mean()
			if a.exact {
				if len(a.pooled[i]) > 0 {
					s, err := stats.Summarize(a.pooled[i])
					if err != nil {
						return nil, err
					}
					agg.RatioSummaries[i] = s
				}
			} else if a.ratios[i].N() > 0 {
				agg.RatioSummaries[i] = a.ratios[i].Summary()
			}
		}
	}
	if a.winRatios != nil {
		agg.WindowRatioMeans = make([][]float64, a.nc)
		for i := 0; i < a.nc; i++ {
			row := make([]float64, a.numWindows)
			for k := 0; k < a.numWindows; k++ {
				if w := &a.winRatios[i*a.numWindows+k]; w.N() > 0 {
					row[k] = w.Mean()
				} else {
					row[k] = math.NaN()
				}
			}
			agg.WindowRatioMeans[i] = row
		}
	}
	return agg, nil
}

// RunReplications executes n independent replications of cfg in parallel
// across GOMAXPROCS workers and aggregates them. Each worker owns one
// reusable Simulator arena; finished Results circulate through a small
// recycled pool and are folded into a streaming Aggregator in strict
// replication order, so the Aggregate is reproducible regardless of
// scheduling and the memory footprint is O(workers), not O(n).
// Replication seeds derive from cfg.Seed via ReplicationSeed.
//
// NOTE: the jobs/out/recycle/reorder pipeline below is intentionally the
// same shape as internal/sweep's multi-point engine (which cannot be
// reused here — sweep imports simsrv). When changing pool sizing, error
// ordering or channel structure, change sweep.Engine.Run in lockstep.
func RunReplications(cfg Config, n int) (*Aggregate, error) {
	if n < 1 {
		return nil, fmt.Errorf("simsrv: need at least 1 replication, got %d", n)
	}
	cfg = cfg.ApplyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	agg := NewAggregator(cfg)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Sequential fast path: one arena, one Result, zero goroutines.
		var sim Simulator
		var res Result
		for rep := 0; rep < n; rep++ {
			if err := sim.Reset(cfg, ReplicationSeed(cfg.Seed, rep)); err != nil {
				return nil, err
			}
			if err := sim.RunInto(&res); err != nil {
				return nil, err
			}
			agg.Add(&res)
		}
		return agg.Aggregate()
	}

	type done struct {
		rep int
		res *Result
		err error
	}
	poolSize := 2 * workers
	jobs := make(chan int)
	// out is sized for every pooled Result, so worker sends never block
	// and the in-order consumer below can never deadlock the pipeline.
	out := make(chan done, poolSize)
	recycle := make(chan *Result, poolSize)
	for i := 0; i < poolSize; i++ {
		recycle <- new(Result)
	}
	for w := 0; w < workers; w++ {
		go func() {
			var sim Simulator
			for rep := range jobs {
				res := <-recycle
				err := sim.Reset(cfg, ReplicationSeed(cfg.Seed, rep))
				if err == nil {
					err = sim.RunInto(res)
				}
				out <- done{rep: rep, res: res, err: err}
			}
		}()
	}
	go func() {
		for rep := 0; rep < n; rep++ {
			jobs <- rep
		}
		close(jobs)
	}()

	// Consume in replication order through a reorder buffer; the first
	// error in replication order wins (deterministically).
	pending := make(map[int]done, workers)
	next := 0
	var firstErr error
	for received := 0; received < n; received++ {
		d := <-out
		pending[d.rep] = d
		for {
			nd, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if firstErr == nil {
				if nd.err != nil {
					firstErr = nd.err
				} else {
					agg.Add(nd.res)
				}
			}
			recycle <- nd.res
			next++
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return agg.Aggregate()
}

// ExpectedSystemSlowdown returns the arrival-weighted Eq. 18 prediction
// for the aggregate, mirroring SystemSlowdown.
func ExpectedSystemSlowdown(cfg Config, agg *Aggregate) float64 {
	cfg = cfg.ApplyDefaults()
	var num, den float64
	for i, c := range cfg.Classes {
		if math.IsNaN(agg.ExpectedSlowdowns[i]) {
			return math.NaN()
		}
		num += agg.ExpectedSlowdowns[i] * c.Lambda
		den += c.Lambda
	}
	if den == 0 {
		return 0
	}
	return num / den
}
