package simsrv

import (
	"math"
	"testing"

	"psd/internal/admission"
	"psd/internal/core"
)

// overloadConfig builds a sustained-overload scenario (ρ ≈ 1.3) behind a
// utilization-bound admission gate — the regime the downgrading policy
// exists for.
func overloadConfig(t *testing.T, alloc core.Allocator) Config {
	t.Helper()
	cfg := EqualLoadConfig([]float64{1, 4}, 1.3, nil)
	cfg.Allocator = alloc
	cfg.Window = 500
	cfg.Warmup = 2000
	cfg.Horizon = 10000
	cfg.Seed = 7
	// The utilization bound sheds large jobs first; estimate load from
	// work so ρ̂ tracks the admitted process (see Config.EstimateFromWork).
	cfg.EstimateFromWork = true
	adm, err := admission.NewUtilizationBound(0.9, cfg.Window)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Admission = adm
	return cfg
}

// TestDowngradingEngagesLadderBeforeShedding is the allocation-side
// ladder-coupling contract: under sustained overload the downgrading
// allocator must step the degradation ladder (scaling effective δ
// targets) strictly before the admission gate sheds its first request,
// and with ρ ≈ 1.3 the overload eventually exhausts every rung, at which
// point shedding begins.
func TestDowngradingEngagesLadderBeforeShedding(t *testing.T) {
	res, err := Run(overloadConfig(t, core.Downgrading{}))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.LadderEngagedAt) {
		t.Fatal("ladder never engaged under sustained 130% load")
	}
	if !res.LadderMaxedOut {
		t.Fatal("ladder should max out: degradation cannot absorb 30% structural overload")
	}
	if math.IsNaN(res.FirstShedAt) {
		t.Fatal("admission never shed despite a maxed-out ladder at 130% load")
	}
	if res.LadderEngagedAt >= res.FirstShedAt {
		t.Fatalf("degrade-before-shed violated: ladder engaged at %g, first shed at %g",
			res.LadderEngagedAt, res.FirstShedAt)
	}
	var rejected int64
	for _, cs := range res.Classes {
		rejected += cs.Rejected
	}
	if rejected == 0 {
		t.Fatal("no rejections counted after the gate opened")
	}
}

// TestPlainPSDShedsWithoutLadder is the contrast run: the same overload
// behind the same gate, but with plain PSD — no ladder is armed, the
// ladder fields stay at their NaN/false zero semantics, and the gate
// sheds from the start instead of waiting for degradation.
func TestPlainPSDShedsWithoutLadder(t *testing.T) {
	res, err := Run(overloadConfig(t, core.PSD{}))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.LadderEngagedAt) || res.LadderMaxedOut {
		t.Fatalf("plain PSD must not arm the ladder: engagedAt=%v maxedOut=%v",
			res.LadderEngagedAt, res.LadderMaxedOut)
	}
	if math.IsNaN(res.FirstShedAt) {
		t.Fatal("plain PSD behind an open gate never shed at 130% load")
	}
	// The ungated-until-maxed-out window is the policy's whole point:
	// the downgrading run must admit strictly longer before shedding.
	down, err := Run(overloadConfig(t, core.Downgrading{}))
	if err != nil {
		t.Fatal(err)
	}
	if down.FirstShedAt <= res.FirstShedAt {
		t.Errorf("downgrading shed at %g, not later than plain PSD's %g",
			down.FirstShedAt, res.FirstShedAt)
	}
}

// TestDowngradingAggregateShedRate exercises the aggregation path: the
// aggregate's MeanShedRate must be positive under overload and zero in a
// comfortably feasible run. Replications run sequentially through one
// arena with a fresh admission controller each — controllers are
// stateful, so parallel replications must never share one.
func TestDowngradingAggregateShedRate(t *testing.T) {
	cfg := overloadConfig(t, core.Downgrading{})
	agg0 := NewAggregator(cfg)
	var sim Simulator
	var res Result
	for rep := 0; rep < 3; rep++ {
		adm, err := admission.NewUtilizationBound(0.9, cfg.Window)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Admission = adm
		if err := sim.Reset(cfg, ReplicationSeed(cfg.Seed, rep)); err != nil {
			t.Fatal(err)
		}
		if err := sim.RunInto(&res); err != nil {
			t.Fatal(err)
		}
		agg0.Add(&res)
	}
	agg, err := agg0.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if !(agg.MeanShedRate > 0) {
		t.Errorf("MeanShedRate = %v, want > 0 at 130%% load", agg.MeanShedRate)
	}
	if agg.MeanShedRate >= 1 {
		t.Errorf("MeanShedRate = %v, want < 1", agg.MeanShedRate)
	}

	calm := EqualLoadConfig([]float64{1, 4}, 0.5, nil)
	calm.Warmup = 1000
	calm.Horizon = 5000
	calmAgg, err := RunReplications(calm, 3)
	if err != nil {
		t.Fatal(err)
	}
	if calmAgg.MeanShedRate != 0 {
		t.Errorf("MeanShedRate = %v without an admission gate, want 0", calmAgg.MeanShedRate)
	}
}
