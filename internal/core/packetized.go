package core

import (
	"fmt"
	"math"
)

// PacketizedPSD computes PSD weights for a *packetized* single-processor
// server under continuous backlog: one processor serves whole requests at
// full speed, and a weighted-fair scheduler (internal/sched's SCFQ, DRR,
// Lottery, …) picks which class's head-of-line request runs next, so a
// backlogged class's queue drains at rate w_i.
//
// Two things change versus the fluid task-server model behind Eq. 17.
// First, a dispatched request runs at full speed (service time x, not
// x/r_i), so the E[1/X_i] = r_i·E[1/X] factor that cancels the rate from
// the waiting time in Theorem 1 is gone; modeling class i as an M/G/1
// queue emptied at rate w_i,
//
//	E[S_i] = E[W_i]·E[1/X] ≈ λ_i·E[X²]·E[1/X] / (2·w_i·(w_i − λ_iE[X]))
//
// Imposing E[S_i] = A·δ_i makes each weight the positive root of
// w² − λE[X]·w − λ·E[X²]·E[1/X]/(2Aδ) = 0, with Σw_i = 1 pinning A by
// bisection (Σw is strictly decreasing in A).
//
// Second — and decisively — the per-class drain-rate-w_i model only holds
// while the class stays backlogged. A work-conserving scheduler at
// moderate load rarely has both classes queued, so reordering alone
// yields only weak differentiation no matter the weights (Kleinrock's
// conservation law bounds what any work-conserving discipline can trade
// between classes). internal/simsrv.RunPacketized demonstrates this
// empirically; it is the reproduction's justification for the paper's
// non-work-conserving capacity partition, which "wastes" surplus to hold
// the slowdown gap open at every load. Use PacketizedPSD when the server
// genuinely operates near saturation; use the partitioned task-server
// model (core.PSD + simsrv.Run) for load-independent guarantees.
type PacketizedPSD struct{}

// Name implements Allocator.
func (PacketizedPSD) Name() string { return "ppsd" }

// Allocate implements Allocator.
func (p PacketizedPSD) Allocate(classes []Class, w Workload) (Allocation, error) {
	var alloc Allocation
	if err := p.AllocateInto(&alloc, classes, w); err != nil {
		return Allocation{}, err
	}
	return alloc, nil
}

// AllocateInto implements InPlaceAllocator. The bisection evaluates the
// share total ~200 times per call with no per-iteration allocation, which
// is what keeps the packetized simulation's reallocation tick off the heap
// (it used to be the dominant allocation source of the whole mode).
func (PacketizedPSD) AllocateInto(dst *Allocation, classes []Class, w Workload) error {
	rho, err := validateClasses(classes, w)
	if err != nil {
		return err
	}
	dst.reserve(len(classes))
	dst.Utilization = rho
	if err := solveQuadraticSharesInto(dst.Rates, classes, w, true); err != nil {
		return err
	}
	// Predicted slowdowns under the packetized model. The coefficient is
	// the per-class quadratic numerator λ_i·E[X²]·E[1/X]/2 (the only
	// difference from the PDD baseline's λ_i·E[X²]/2).
	for i, c := range classes {
		if c.Lambda == 0 {
			dst.ExpectedSlowdowns[i] = 0
			continue
		}
		coeff := c.Lambda * w.SecondMoment * w.InverseMoment / 2
		surplus := dst.Rates[i] * (dst.Rates[i] - c.Lambda*w.MeanSize)
		if surplus <= 0 {
			dst.ExpectedSlowdowns[i] = math.Inf(1)
			continue
		}
		dst.ExpectedSlowdowns[i] = coeff / surplus
	}
	return nil
}

// PacketizedSlowdown predicts the mean slowdown of class i on a
// packetized weighted server: λ·E[X²]·E[1/X] / (2·w·(w − λE[X])).
func PacketizedSlowdown(lambda float64, w Workload, weight float64) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if lambda == 0 {
		return 0, nil
	}
	if lambda < 0 || !(weight > 0) {
		return 0, fmt.Errorf("%w: lambda=%v weight=%v", ErrInfeasible, lambda, weight)
	}
	surplus := weight - lambda*w.MeanSize
	if surplus <= 0 {
		return math.Inf(1), nil
	}
	return lambda * w.SecondMoment * w.InverseMoment / (2 * weight * surplus), nil
}

// solveQuadraticSharesInto finds shares
// w_i = (b_i + √(b_i² + 4·coeff_i/(Aδ_i)))/2 summing to 1, where
// b_i = λ_iE[X], writing them into dst (len(dst) == len(classes)). Shared
// by the PDD baseline and PacketizedPSD — both impose a per-class metric
// of the form coeff_i/(w_i(w_i − b_i)) = A·δ_i; slowdownWeighted selects
// PacketizedPSD's coefficient λ_i·E[X²]·E[1/X]/2 over PDD's λ_i·E[X²]/2.
// The bisection evaluates only the share total, so the ~200 probes cost
// no allocation; dst is filled once at the converged pivot, with the
// coefficient arithmetic kept in the historical evaluation order so the
// result is bit-identical to the slice-per-probe implementation this
// replaced.
func solveQuadraticSharesInto(dst []float64, classes []Class, w Workload, slowdownWeighted bool) error {
	active := 0
	for _, c := range classes {
		if c.Lambda > 0 {
			active++
		}
	}
	if active == 0 {
		for i := range dst {
			dst[i] = 1 / float64(len(classes))
		}
		return nil
	}
	coeff := func(c Class) float64 {
		v := c.Lambda * w.SecondMoment
		if slowdownWeighted {
			v *= w.InverseMoment
		}
		return v / 2
	}
	totalFor := func(a float64) float64 {
		total := 0.0
		for _, c := range classes {
			if c.Lambda == 0 {
				continue
			}
			b := c.Lambda * w.MeanSize
			q := coeff(c) / (a * c.Delta)
			total += (b + math.Sqrt(b*b+4*q)) / 2
		}
		return total
	}
	lo, hi := 1e-12, 1.0
	for totalFor(hi) > 1 {
		hi *= 2
		if hi > 1e18 {
			return fmt.Errorf("%w: share bisection failed to bracket", ErrInfeasible)
		}
	}
	for iter := 0; iter < 200; iter++ {
		mid := math.Sqrt(lo * hi)
		if totalFor(mid) > 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	total := 0.0
	for i, c := range classes {
		if c.Lambda == 0 {
			dst[i] = 0
			continue
		}
		b := c.Lambda * w.MeanSize
		q := coeff(c) / (hi * c.Delta)
		dst[i] = (b + math.Sqrt(b*b+4*q)) / 2
		total += dst[i]
	}
	if total > 0 && total < 1 {
		residual := 1 - total
		for i := range dst {
			if classes[i].Lambda > 0 {
				dst[i] += residual * dst[i] / total
			}
		}
	}
	return nil
}

var _ InPlaceAllocator = PacketizedPSD{}
