package dist

import (
	"fmt"
	"math"

	"psd/internal/rng"
)

// hyperExp2 mixes two exponential phases: rate mu1 with probability p1,
// rate mu2 otherwise.
type hyperExp2 struct {
	p1, mu1, mu2 float64
	mean, scv    float64
}

// NewHyperExp2 returns a two-phase hyperexponential H2 matched to the
// given mean and squared coefficient of variation (SCV ≥ 1) by the
// standard balanced-means fit (each phase contributes half the mean):
//
//	p1 = (1 + √((scv−1)/(scv+1)))/2,  p2 = 1 − p1,  muᵢ = 2pᵢ/mean
//
// H2 is the workhorse model for high-variance traffic that is not
// Pareto-shaped: it hits any SCV ≥ 1 exactly (scv = 1 degenerates to
// the exponential) while staying analytically tractable. Like the
// exponential, its density is positive at the origin, so E[1/X]
// diverges and InverseMoment returns +Inf: use it to drive simulations
// and estimators, not the closed-form allocator.
func NewHyperExp2(mean, scv float64) (Distribution, error) {
	if err := checkParam("hyperexponential mean", mean); err != nil {
		return nil, err
	}
	if math.IsNaN(scv) || math.IsInf(scv, 0) || scv < 1 {
		return nil, fmt.Errorf("dist: hyperexponential scv %v must be finite and >= 1 (use Lognormal or Uniform for scv < 1)", scv)
	}
	eta := math.Sqrt((scv - 1) / (scv + 1))
	p1 := (1 + eta) / 2
	// At astronomically large SCV, eta rounds to exactly 1 and the slow
	// phase vanishes (p1 = 1, mu2 = 0): the sampler would silently stop
	// matching the analytic moments. Reject rather than degenerate.
	if p1 >= 1 {
		return nil, fmt.Errorf("dist: hyperexponential scv %v too large to represent in float64", scv)
	}
	return checkMoments(hyperExp2{
		p1:   p1,
		mu1:  2 * p1 / mean,
		mu2:  2 * (1 - p1) / mean,
		mean: mean,
		scv:  scv,
	})
}

func (d hyperExp2) Mean() float64 { return d.mean }

func (d hyperExp2) SecondMoment() float64 {
	// The balanced-means fit matches the target SCV exactly:
	// E[X²] = (1 + scv)·mean².
	return (1 + d.scv) * d.mean * d.mean
}

func (d hyperExp2) InverseMoment() float64 { return math.Inf(1) }

// Sample draws the phase then the exponential within it, via an
// open-interval uniform so the result is strictly positive.
func (d hyperExp2) Sample(src *rng.Source) float64 {
	mu := d.mu2
	if src.Float64() < d.p1 {
		mu = d.mu1
	}
	return -math.Log(src.Float64Open()) / mu
}

func (d hyperExp2) String() string {
	return fmt.Sprintf("HyperExp2(mean=%g, scv=%g)", d.mean, d.scv)
}
