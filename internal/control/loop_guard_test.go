package control

import (
	"math"
	"testing"

	"psd/internal/core"
	"psd/internal/obs"
)

// guardLoop builds a feedback loop with a recorder, pre-warmed with one
// clean window so it holds a last-good estimate and rate vector.
func guardLoop(t *testing.T) (*Loop, *obs.FlightRecorder, []float64) {
	t.Helper()
	rec, err := obs.NewFlightRecorder(2, 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := loopConfig([]float64{1, 2})
	cfg.Feedback = true
	cfg.Recorder = rec
	lp, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := lp.Tick(TickInput{
		Counts:            []float64{40, 40},
		Work:              []float64{12, 12},
		MeasuredSlowdowns: []float64{1.5, 3.2},
	})
	if err != nil {
		t.Fatalf("clean warmup tick failed: %v", err)
	}
	return lp, rec, append([]float64(nil), rates...)
}

// TestLoopGuardsCorruptInputs: every corrupt TickInput field variant must
// be discarded (last-good estimates kept, allocation bit-identical to the
// previous tick's), counted in InputRejected, and flagged in the flight
// record — never an error, never estimator poison.
func TestLoopGuardsCorruptInputs(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		in   TickInput
	}{
		{"NaN count", TickInput{Counts: []float64{nan, 40}, Work: []float64{12, 12}}},
		{"negative count", TickInput{Counts: []float64{-3, 40}, Work: []float64{12, 12}}},
		{"+Inf count", TickInput{Counts: []float64{inf, 40}, Work: []float64{12, 12}}},
		{"NaN work", TickInput{Counts: []float64{40, 40}, Work: []float64{nan, 12}}},
		{"negative work", TickInput{Counts: []float64{40, 40}, Work: []float64{12, -1}}},
		{"+Inf work", TickInput{Counts: []float64{40, 40}, Work: []float64{12, inf}}},
		{"negative slowdown", TickInput{Counts: []float64{40, 40}, Work: []float64{12, 12},
			MeasuredSlowdowns: []float64{-2, 3}}},
		{"-Inf slowdown", TickInput{Counts: []float64{40, 40}, Work: []float64{12, 12},
			MeasuredSlowdowns: []float64{1.5, math.Inf(-1)}}},
		{"NaN oracle", TickInput{Counts: []float64{40, 40}, Work: []float64{12, 12},
			OracleLambdas: []float64{nan, 1}}},
		{"negative oracle", TickInput{Counts: []float64{40, 40}, Work: []float64{12, 12},
			OracleLambdas: []float64{1, -1}}},
		{"sub-1 delta scale", TickInput{Counts: []float64{40, 40}, Work: []float64{12, 12},
			DeltaScale: []float64{0.5, 1}}},
		{"NaN delta scale", TickInput{Counts: []float64{40, 40}, Work: []float64{12, 12},
			DeltaScale: []float64{1, nan}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lp, rec, lastGood := guardLoop(t)
			lambdasBefore := make([]float64, 2)
			lp.LambdasInto(lambdasBefore)

			rates, err := lp.Tick(tc.in)
			if err != nil {
				t.Fatalf("corrupt input errored (%v); want last-good fallback", err)
			}
			if got := lp.InputRejected(); got != 1 {
				t.Fatalf("InputRejected = %d, want 1", got)
			}
			ticks := rec.Snapshot()
			last := ticks[len(ticks)-1]
			if last.Flags&obs.FlagInputRejected == 0 {
				t.Fatalf("flight record flags %08b missing FlagInputRejected", last.Flags)
			}
			if ticks[0].Flags&obs.FlagInputRejected != 0 {
				t.Fatalf("clean warmup tick flagged rejected")
			}

			// Window-level corruption keeps the estimator at last-good and
			// therefore the allocation bit-identical; corruption confined to
			// slowdowns/oracle/scale never poisons the estimator either way.
			lambdasAfter := make([]float64, 2)
			lp.LambdasInto(lambdasAfter)
			corruptWindow := !validVec(tc.in.Counts) || !validVec(tc.in.Work)
			if corruptWindow {
				for i := range lambdasAfter {
					if lambdasAfter[i] != lambdasBefore[i] {
						t.Fatalf("corrupt window reached the estimator: lambdas %v -> %v", lambdasBefore, lambdasAfter)
					}
				}
				for i := range rates {
					if rates[i] != lastGood[i] {
						t.Fatalf("rates diverged from last-good: %v, want %v", rates, lastGood)
					}
				}
			}
			for i, l := range lambdasAfter {
				if math.IsNaN(l) || math.IsInf(l, 0) || l < 0 {
					t.Fatalf("estimator poisoned: lambda[%d] = %v", i, l)
				}
			}
			for i, r := range rates {
				if math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
					t.Fatalf("allocation poisoned: rate[%d] = %v", i, r)
				}
			}

			// The next clean tick recovers: valid estimates, no new reject.
			if _, err := lp.Tick(TickInput{Counts: []float64{40, 40}, Work: []float64{12, 12}}); err != nil {
				t.Fatalf("post-corruption clean tick failed: %v", err)
			}
			if got := lp.InputRejected(); got != 1 {
				t.Fatalf("clean tick counted as rejected: InputRejected = %d", got)
			}
		})
	}
}

// TestLoopGuardFuzzTable hammers the guards with a table of randomized
// corrupt windows mixed with clean ones: the estimator must only ever
// advance on clean windows and the rejected count must match exactly.
func TestLoopGuardFuzzTable(t *testing.T) {
	lp, _, _ := guardLoop(t)
	poisons := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, -1e300}
	wantRejected := uint64(0)
	for i := 0; i < 64; i++ {
		counts := []float64{40, 40}
		work := []float64{12, 12}
		corrupt := i%3 != 0 // interleave clean ticks
		if corrupt {
			p := poisons[i%len(poisons)]
			if i%2 == 0 {
				counts[i%2] = p
			} else {
				work[i%2] = p
			}
			wantRejected++
		}
		if _, err := lp.Tick(TickInput{Counts: counts, Work: work}); err != nil {
			t.Fatalf("tick %d errored: %v", i, err)
		}
		lambdas := make([]float64, 2)
		lp.LambdasInto(lambdas)
		for c, l := range lambdas {
			if !(l >= 0) || math.IsInf(l, 0) {
				t.Fatalf("tick %d: lambda[%d] = %v poisoned", i, c, l)
			}
		}
	}
	if got := lp.InputRejected(); got != wantRejected {
		t.Fatalf("InputRejected = %d, want %d", got, wantRejected)
	}
}

// TestLoopDeltaScaleDegradesAllocation: a valid DeltaScale must reshape
// the allocation exactly like scaling the configured δ targets would,
// and an all-ones scale must be bit-identical to passing nil.
func TestLoopDeltaScaleDegradesAllocation(t *testing.T) {
	in := TickInput{Counts: []float64{40, 40}, Work: []float64{12, 12}}

	lpPlain, err := NewLoop(loopConfig([]float64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := lpPlain.Tick(in)
	if err != nil {
		t.Fatal(err)
	}
	plainCopy := append([]float64(nil), plain...)

	lpOnes, err := NewLoop(loopConfig([]float64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	scaled := in
	scaled.DeltaScale = []float64{1, 1}
	ones, err := lpOnes.Tick(scaled)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ones {
		if ones[i] != plainCopy[i] {
			t.Fatalf("all-ones DeltaScale not bit-identical to nil: %v vs %v", ones, plainCopy)
		}
	}

	// Scaling class 1's δ by 4 must equal configuring δ = {1, 8} directly.
	lpScaled, err := NewLoop(loopConfig([]float64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	scaled.DeltaScale = []float64{1, 4}
	got, err := lpScaled.Tick(scaled)
	if err != nil {
		t.Fatal(err)
	}
	lpRef, err := NewLoop(loopConfig([]float64{1, 8}))
	if err != nil {
		t.Fatal(err)
	}
	want, err := lpRef.Tick(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("DeltaScale {1,4} on deltas {1,2}: rates %v, want %v (deltas {1,8})", got, want)
		}
	}
}

// TestLoopResetClearsRetainedAllocation: after a Reset, a first FAILED
// tick must flight-record NaN rates, not the previous configuration's
// last-good rate vector (the stale-state regression this PR fixes).
func TestLoopResetClearsRetainedAllocation(t *testing.T) {
	rec, err := obs.NewFlightRecorder(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := loopConfig([]float64{1, 2})
	cfg.Recorder = rec
	lp, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lp.Tick(TickInput{Counts: []float64{40, 40}, Work: []float64{12, 12}}); err != nil {
		t.Fatalf("warmup tick failed: %v", err)
	}

	if err := lp.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	if got := lp.InputRejected(); got != 0 {
		t.Fatalf("InputRejected survived Reset: %d", got)
	}
	// First post-Reset tick is infeasible (rho >= 1): the recorded rates
	// must be NaN — no allocation has succeeded in this lifetime.
	if _, err := lp.Tick(TickInput{Counts: []float64{4000, 4000}, Work: []float64{4000, 4000}}); err == nil {
		t.Fatal("overload tick unexpectedly feasible")
	}
	ticks := rec.Snapshot()
	last := ticks[len(ticks)-1]
	if last.Flags&obs.FlagAllocFailure == 0 {
		t.Fatalf("failed tick not flagged: %08b", last.Flags)
	}
	for i, r := range last.Rates {
		if !math.IsNaN(r) {
			t.Fatalf("post-Reset failed tick recorded stale rate[%d] = %v, want NaN", i, r)
		}
	}
	_ = core.ErrInfeasible
}
