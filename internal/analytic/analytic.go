// Package analytic evaluates steady-state figure points directly from
// the paper's closed forms instead of simulating them. Section 3 gives
// every stationary slowdown in closed form — Lemma 1 (E[S] = E[W]·E[1/X]),
// Lemma 2 (capacity scaling), Theorem 1 (the task-server slowdown) and
// Eq. 18 (the PSD allocation's achieved slowdowns) — and internal/dist
// carries exact moments, so a grid point whose steady state is analytic
// costs a few hundred floating-point operations rather than millions of
// DES events. internal/sweep routes points here when its Engine runs in
// Auto or Analytic mode; everything transient, packetized, trace-driven
// or moment-divergent stays on the DES and is reported as
// ErrNeedsSimulation.
//
// A point is analytic-eligible when its steady state is a fixed-rate
// M/G/1 partition with computable moments:
//
//   - stationary arrivals (no LoadSchedule phases),
//   - no admission gate, no GPS work-conservation coupling, no
//     closed-loop feedback trimming, no per-request recording and no
//     flight recorder (all of those either change the steady state or
//     exist to capture trajectories only a simulation has),
//   - an allocator whose stationary allocation is deterministic in the
//     true arrival rates: PSD (Eq. 17), EqualShare, DemandProportional,
//     or MinRate wrapping one of those,
//   - finite E[X], E[X²] and E[1/X] for the shared law and every
//     per-class override (Exponential and Weibull shape ≤ 1 have
//     divergent E[1/X]; Bounded Pareto is always finite by truncation).
//
// Estimator choice (window vs EWMA) and the Oracle flag do not affect
// the stationary point — both estimators are consistent for constant λ —
// so they stay eligible.
//
// The evaluator itself is an arena: Evaluator.EvaluateInto reuses every
// slice it owns, so a warm evaluation performs zero heap allocations
// (cmd/psdbench gates this at 0.01 allocs/point, like every other hot
// path in the repo).
package analytic

import (
	"errors"
	"fmt"
	"math"

	"psd/internal/core"
	"psd/internal/dist"
	"psd/internal/queueing"
	"psd/internal/simsrv"
)

// ErrNeedsSimulation reports a configuration whose result the closed
// forms cannot produce — transient, packetized, trace-driven, recorded,
// closed-loop, or with divergent moments. Callers running in "auto" mode
// treat it as "route this point to the DES"; callers in "analytic" mode
// surface it.
var ErrNeedsSimulation = errors.New("analytic: point needs simulation")

// Evaluation is the closed-form result for one configuration, the
// analytic counterpart of averaging simsrv replications.
type Evaluation struct {
	// Slowdowns[i] is Theorem 1 evaluated at the allocated rates with
	// class i's own size law (Eq. 18 exactly when the allocator is PSD
	// and the law is shared).
	Slowdowns []float64
	// Rates is the stationary allocation under the true arrival rates.
	Rates []float64
	// Ratios[i] is Slowdowns[i]/Slowdowns[0], the achieved
	// differentiation ratio (1 at index 0; NaN when class 0's slowdown
	// is zero).
	Ratios []float64
	// SystemSlowdown is the arrival-weighted mean across classes, the
	// "system" series of Figure 2.
	SystemSlowdown float64
	// Utilization is ρ = Σ λ_i·E[X_i].
	Utilization float64
}

// Evaluate computes the closed-form result for cfg. It is the
// convenience wrapper over a throwaway Evaluator; sweeps reuse an
// Evaluator arena instead.
func Evaluate(cfg simsrv.Config) (*Evaluation, error) {
	var e Evaluator
	ev := new(Evaluation)
	if err := e.EvaluateInto(ev, cfg); err != nil {
		return nil, err
	}
	return ev, nil
}

// Evaluator is a reusable arena for closed-form point evaluation: the
// class vector and allocation scratch persist across calls, so a warm
// EvaluateInto allocates nothing.
type Evaluator struct {
	classes []core.Class
	alloc   core.Allocation
}

// EvaluateInto computes cfg's closed-form result into ev, reusing ev's
// slices. On error ev is unspecified. Ineligible configurations return
// an error wrapping ErrNeedsSimulation; infeasible demand (ρ ≥ 1, for
// which no stationary point exists but a finite-horizon simulation still
// produces a measurement) does too, additionally wrapping the
// allocator's core.ErrInfeasible.
func (e *Evaluator) EvaluateInto(ev *Evaluation, cfg simsrv.Config) error {
	cfg = cfg.ApplyDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if reason := ineligible(cfg); reason != "" {
		return fmt.Errorf("%w: %s", ErrNeedsSimulation, reason)
	}
	w, err := core.WorkloadFromDist(cfg.Service)
	if err != nil {
		return fmt.Errorf("%w: shared law %s: %v", ErrNeedsSimulation, cfg.Service, err)
	}

	nc := len(cfg.Classes)
	e.classes = resizeClasses(e.classes, nc)
	for i, cc := range cfg.Classes {
		e.classes[i] = core.Class{Delta: cc.Delta, Lambda: cc.Lambda}
	}
	// The allocator sees the shared-law moments — exactly what the
	// control plane feeds it (per-class overrides deliberately keep this
	// mismatch; see runner.reset).
	if err := core.AllocateInto(cfg.Allocator, &e.alloc, e.classes, w); err != nil {
		return fmt.Errorf("%w: allocator %s: %w", ErrNeedsSimulation, cfg.Allocator.Name(), err)
	}

	ev.Slowdowns = resizeFloats(ev.Slowdowns, nc)
	ev.Rates = resizeFloats(ev.Rates, nc)
	ev.Ratios = resizeFloats(ev.Ratios, nc)
	copy(ev.Rates, e.alloc.Rates)
	ev.Utilization = e.alloc.Utilization

	// Theorem 1 at the allocated rates with each class's effective law.
	// For PSD under a shared law this reproduces Eq. 18 (that identity is
	// the paper's derivation); for the baselines and for per-class
	// overrides it is the honest stationary prediction the simulator
	// converges to.
	var num, den float64
	for i, cc := range cfg.Classes {
		svc := cc.Service
		if svc == nil {
			svc = cfg.Service
		}
		s, err := classSlowdown(cc.Lambda, svc, ev.Rates[i])
		if err != nil {
			return err
		}
		ev.Slowdowns[i] = s
		num += s * cc.Lambda
		den += cc.Lambda
	}
	if den > 0 {
		ev.SystemSlowdown = num / den
	} else {
		ev.SystemSlowdown = 0
	}
	for i := range ev.Ratios {
		switch {
		case i == 0:
			ev.Ratios[0] = 1
		case ev.Slowdowns[0] > 0:
			ev.Ratios[i] = ev.Slowdowns[i] / ev.Slowdowns[0]
		default:
			ev.Ratios[i] = math.NaN()
		}
	}
	return nil
}

// classSlowdown evaluates Theorem 1 for one class, mapping its failure
// modes onto ErrNeedsSimulation: divergent E[1/X] (the heavy-tail case)
// and an unstable per-class queue under the allocated rate (possible
// with per-class overrides whose true demand exceeds what the shared-law
// allocation grants).
func classSlowdown(lambda float64, svc dist.Distribution, rate float64) (float64, error) {
	if lambda == 0 {
		return 0, nil
	}
	s, err := queueing.TaskServerSlowdown(lambda, svc, rate)
	if err != nil {
		return 0, fmt.Errorf("%w: %w", ErrNeedsSimulation, err)
	}
	return s, nil
}

// ineligible returns a human-readable reason cfg's steady state is not
// analytic, or "" when it is. The checks mirror the package doc's
// eligibility list; moment divergence is checked separately because it
// needs the workload extraction anyway.
func ineligible(cfg simsrv.Config) string {
	switch {
	case len(cfg.LoadSchedule) > 0:
		return "transient LoadSchedule phases"
	case cfg.Admission != nil:
		return "admission control reshapes the admitted process"
	case cfg.WorkConserving:
		return "work-conserving mode couples the task servers"
	case cfg.Feedback:
		return "closed-loop feedback trims the effective deltas"
	case cfg.RecordRequests:
		return "per-request records only exist in a simulation"
	case cfg.Recorder != nil:
		return "flight recording captures control-tick trajectories"
	case !supportedAllocator(cfg.Allocator):
		return fmt.Sprintf("allocator %s has no closed-form steady state here", cfg.Allocator.Name())
	}
	return ""
}

// supportedAllocator reports whether the allocator's stationary
// allocation at the true arrival rates is one the closed forms cover —
// the registry's AnalyticEligible capability, with MinRate unwrapped
// first (MinRate is a deterministic post-pass over its base). The check
// keys off the policy name, so Static (never registered), PDD/PacketizedPSD
// (registered without the capability) and custom allocators (unknown
// names) all simulate; a custom policy becomes eligible by registering
// its own core.Policy with the flag set.
func supportedAllocator(a core.Allocator) bool {
	if mr, ok := a.(core.MinRate); ok {
		return supportedAllocator(mr.Base)
	}
	p, ok := core.Lookup(a.Name())
	return ok && p.Caps.AnalyticEligible
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeClasses(s []core.Class, n int) []core.Class {
	if cap(s) < n {
		return make([]core.Class, n)
	}
	return s[:n]
}
