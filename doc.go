// Package psd reproduces "Processing Rate Allocation for Proportional
// Slowdown Differentiation on Internet Servers" (Zhou, Wei, Xu — IPDPS
// 2004) as a production-quality Go library.
//
// # The problem
//
// Slowdown — a request's queueing delay divided by its service time — is
// the natural responsiveness metric for servers handling jobs of wildly
// different sizes: clients expect small requests to come back fast and
// tolerate proportionally longer waits for big ones. Proportional
// slowdown differentiation (PSD) keeps the *ratio* of average slowdowns
// between service classes pinned to operator-chosen parameters δ_i,
// independent of load:
//
//	E[S_i] / E[S_j] = δ_i / δ_j
//
// # The paper's solution, reproduced here
//
// Partition the server's capacity among per-class FCFS task servers. For
// M/G_B/1 traffic (Poisson arrivals, Bounded Pareto sizes) the expected
// slowdown of a task server has the closed form (Theorem 1)
//
//	E[S_i] = λ_i·E[X²]·E[1/X] / (2(r_i − λ_i·E[X]))
//
// and the rate vector (Eq. 17)
//
//	r_i = λ_i·E[X] + (λ_i/δ_i)·(1 − ρ)/Σ_j(λ_j/δ_j)
//
// yields exactly proportional slowdowns. This module implements the
// closed forms, the allocator, the paper's simulation model, a real
// net/http server applying the strategy, every substrate they need
// (random streams, heavy-tailed distributions, a DES engine,
// proportional-share schedulers, load estimators), and a harness that
// regenerates all eleven evaluation figures.
//
// # Layout
//
// This root package is a thin facade over the implementation packages:
//
//	internal/core      Eq. 17 allocator (the contribution) + the policy
//	                   zoo: a registry (Register/Parse/Names) of rival
//	                   allocation policies — baselines, the logarithmic-
//	                   weight allocator, the degradation-aware downgrading
//	                   allocator, heSRPT weights — with per-policy
//	                   capability flags (analytic-eligible, needs-size-
//	                   info, degradation-aware)
//	internal/queueing  Lemma 1/2, Theorem 1, Eq. 15 closed forms
//	internal/dist      job-size laws (Bounded Pareto & friends) with
//	                   closed-form E[X], E[X²], E[1/X] and seeded samplers
//	internal/rng       xoshiro256** PRNG with split/jump substreams
//	internal/des       allocation-free discrete-event core: 4-ary value
//	                   heap, generation-checked EventID handles, typed
//	                   (Handler, kind, data) dispatch
//	internal/stats     streaming moments, histograms, P² quantiles
//	internal/sched     GPS/WFQ/DRR/WRR/Lottery substrate + the size-aware
//	                   heSRPT (weighted shortest-job-first) discipline
//	internal/control   the shared control plane: one allocation-free
//	                   estimate→control→allocate Loop (window | EWMA
//	                   estimation, optional feedback trim) driven by both
//	                   the simulator and the live HTTP server
//	internal/admission overload protection complementing differentiation
//	                   (utilization bound, per-class token bucket), shared
//	                   by the simulator and the live server's pre-queue gate,
//	                   plus the graceful-degradation ladder (scale per-class
//	                   δ targets through rungs before shedding, hysteresis
//	                   recovery)
//	internal/chaos     seeded deterministic fault injection for the live
//	                   path: worker stalls, service spikes, corrupted tick
//	                   inputs, dropped/late ticks, clock jumps, slow-loris
//	                   clients — per-site rng streams, nil-safe hooks,
//	                   zero cost when absent
//	internal/analytic  closed-form steady-state evaluator (Theorem 1 at
//	                   the allocated rates): exact slowdowns/ratios for
//	                   stationary fixed-rate points in ~100ns with zero
//	                   allocations, ErrNeedsSimulation for everything else
//	internal/simsrv    the paper's simulation model (Fig. 1) as a
//	                   reusable arena: Simulator Reset/RunInto plus
//	                   streaming replication aggregation
//	internal/sweep     scenario-grid engine: (point, replication) task
//	                   queue over a pool of per-worker arenas, with an
//	                   Engine.Kind router (DES | Auto | Analytic) that
//	                   sends analytic-eligible points to closed forms,
//	                   plus the policy axis (Point.Policy, Tournament)
//	                   that races registered policies over one grid
//	internal/obs       allocation-free observability: atomic metrics
//	                   registry with log₂ histograms, Prometheus text
//	                   exposition, control-plane flight recorder
//	internal/workload  session-based e-commerce request streams
//	internal/loadgen   open-loop Poisson HTTP load driver with phased
//	                   (load-step) schedules and per-phase reports
//	internal/httpsrv   PSD on a real net/http server: a lock-free sharded
//	                   front door (atomic epoch-versioned rate publication,
//	                   striped Swap-drained window accounting, pooled jobs,
//	                   N pacing workers per class), rate-change-aware
//	                   worker pacing (GPS fluid model under rate churn),
//	                   pluggable admission gate, overload-honest estimation,
//	                   guarded control inputs, stale-tick watchdog, and the
//	                   degrade-before-shed ladder
//	internal/figures   Figures 2–12 regeneration (on internal/sweep) plus
//	                   the beyond-paper estimator transient (13) and
//	                   policy tournament (14) studies
//
// Start with AllocateRates for the analytic strategy, Simulate for the
// paper's experiment rig, or internal/httpsrv for a live server. The
// runnable examples under examples/ walk through each.
//
// # Performance
//
// Every paper result averages 100 replications of a 70,000-time-unit
// simulation, so events/sec of internal/des bounds how many scenarios
// the harness can explore — and every figure is a grid of such scenario
// points, which internal/sweep shards across a pool of reusable
// simulation arenas (simsrv.Simulator) with streaming Welford+P²
// aggregation. BenchmarkReplication (root package) runs full
// paper-fidelity replications through one arena and gates allocs/event
// (< 0.01, both server models) and allocs/replication (< 10);
// BenchmarkFigureSweep tracks full-figure throughput; cmd/psdbench runs
// the same scenarios — plus control-tick and obs-hotpath scenarios
// gating the shared control plane and the fully instrumented request
// path (metrics + flight recorder) at zero allocations, and a
// live-contention scenario storming the live server's sharded front
// door at GOMAXPROCS=1 vs min(NumCPU,8) with core-aware speedup and
// 0.01 allocs/request gates, and an analytic-sweep scenario gating the
// closed-form fast path (internal/analytic via the sweep router) at
// >= 100x over the DES sweep and < 0.01 allocs/point — writes the
// committed BENCH_psd.json baseline, and in -compare mode turns
// regressions into non-zero exits (CI runs it).
// For stationary fixed-rate points, EvaluateAnalytic (or -engine auto
// on the CLIs) skips simulation entirely and returns the paper's
// closed forms exactly.
// Seeded replications are reproducible bit-for-bit across engine
// versions and across arena reuse — the golden tests in internal/simsrv
// pin exact trajectories.
package psd
