package obs

import (
	"math"
	"strings"
	"testing"
)

func rec2(t *testing.T, classes, capacity int) *FlightRecorder {
	t.Helper()
	fr, err := NewFlightRecorder(classes, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

func TestFlightRecorderRejectsBadDims(t *testing.T) {
	if _, err := NewFlightRecorder(0, 8); err == nil {
		t.Fatal("0 classes accepted")
	}
	if _, err := NewFlightRecorder(2, 0); err == nil {
		t.Fatal("0 capacity accepted")
	}
}

func TestFlightRecorderRecordAndSnapshot(t *testing.T) {
	fr := rec2(t, 2, 8)
	fr.Record(50, 0, []float64{1, 2}, []float64{0.6, 0.4}, nil, []float64{1, 2})
	fr.Record(100, FlagAllocFailure, []float64{3, 4}, nil, []float64{1.5, 3}, []float64{1, 1.9})
	ticks := fr.Snapshot()
	if len(ticks) != 2 {
		t.Fatalf("held %d ticks, want 2", len(ticks))
	}
	t0, t1 := ticks[0], ticks[1]
	if t0.Seq != 0 || t0.Time != 50 || t0.Flags != 0 {
		t.Fatalf("tick 0 header = %+v", t0)
	}
	if t0.Lambdas[1] != 2 || t0.Rates[0] != 0.6 || t0.EffDeltas[1] != 2 {
		t.Fatalf("tick 0 vectors = %+v", t0)
	}
	if !math.IsNaN(t0.Slowdowns[0]) || !math.IsNaN(t0.Slowdowns[1]) {
		t.Fatalf("nil slowdowns not NaN-filled: %v", t0.Slowdowns)
	}
	if t1.Seq != 1 || t1.Flags != FlagAllocFailure || !math.IsNaN(t1.Rates[0]) {
		t.Fatalf("tick 1 = %+v", t1)
	}
	if t1.Slowdowns[1] != 3 {
		t.Fatalf("tick 1 slowdowns = %v", t1.Slowdowns)
	}
}

func TestFlightRecorderRingWraparound(t *testing.T) {
	fr := rec2(t, 1, 3)
	for i := 0; i < 7; i++ {
		fr.Record(float64(i), 0, []float64{float64(i) * 10}, nil, nil, nil)
	}
	if fr.Len() != 3 || fr.Seq() != 7 {
		t.Fatalf("len/seq = %d/%d, want 3/7", fr.Len(), fr.Seq())
	}
	ticks := fr.Snapshot()
	for k, want := range []uint64{4, 5, 6} {
		if ticks[k].Seq != want || ticks[k].Time != float64(want) || ticks[k].Lambdas[0] != float64(want)*10 {
			t.Fatalf("tick %d = %+v, want seq %d", k, ticks[k], want)
		}
	}
}

func TestFlightRecorderReset(t *testing.T) {
	fr := rec2(t, 2, 4)
	fr.Record(1, 0, nil, nil, nil, nil)
	fr.Reset(3, 4)
	if fr.Classes() != 3 || fr.Len() != 0 || fr.Seq() != 0 {
		t.Fatalf("after reset: classes %d len %d seq %d", fr.Classes(), fr.Len(), fr.Seq())
	}
	fr.Record(1, 0, []float64{1, 2, 3}, nil, nil, nil)
	if got := fr.Snapshot()[0].Lambdas; len(got) != 3 || got[2] != 3 {
		t.Fatalf("post-reset record = %v", got)
	}
}

func TestFlightRecorderDimensionPanic(t *testing.T) {
	fr := rec2(t, 2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on 3-entry vector into a 2-class recorder")
		}
	}()
	fr.Record(1, 0, []float64{1, 2, 3}, nil, nil, nil)
}

func TestFlightRecorderRecordAllocationFree(t *testing.T) {
	fr := rec2(t, 4, 16)
	lam := []float64{1, 2, 3, 4}
	rates := []float64{0.4, 0.3, 0.2, 0.1}
	allocs := testing.AllocsPerRun(1000, func() {
		fr.Record(1, 0, lam, rates, nil, lam)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v per call", allocs)
	}
}

// TestFlightRecorderWriteJSONGolden pins the dump format, including the
// dropped count after wraparound and NaN → null.
func TestFlightRecorderWriteJSONGolden(t *testing.T) {
	fr := rec2(t, 2, 2)
	fr.Record(50, 0, []float64{1, 2}, []float64{0.75, 0.25}, nil, []float64{1, 2})
	fr.Record(100, FlagAllocFailure|FlagInputRejected, []float64{3, 4}, []float64{0.75, 0.25}, []float64{1.5, 3}, []float64{1, 2})
	fr.Record(150, FlagNonPositiveRate|FlagStaleTick, []float64{5, 6}, []float64{1, 0}, []float64{2, 4}, []float64{1, 2})
	var sb strings.Builder
	if err := fr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	want := `{"classes":2,"capacity":2,"recorded":3,"dropped":1,"ticks":[` +
		`{"seq":1,"time":100,"alloc_failure":true,"rate_clamped":false,"input_rejected":true,"stale_tick":false,` +
		`"lambda_hat":[3,4],"rates":[0.75,0.25],"slowdowns":[1.5,3],"effective_deltas":[1,2]},` +
		`{"seq":2,"time":150,"alloc_failure":false,"rate_clamped":true,"input_rejected":false,"stale_tick":true,` +
		`"lambda_hat":[5,6],"rates":[1,0],"slowdowns":[2,4],"effective_deltas":[1,2]}]}` + "\n"
	if got := sb.String(); got != want {
		t.Fatalf("dump mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestFlightRecorderWriteJSONNullsNaN(t *testing.T) {
	fr := rec2(t, 1, 2)
	fr.Record(math.NaN(), 0, nil, []float64{math.Inf(1)}, nil, nil)
	var sb strings.Builder
	if err := fr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if strings.Contains(got, "NaN") || strings.Contains(got, "Inf") {
		t.Fatalf("non-JSON floats leaked: %s", got)
	}
	if !strings.Contains(got, `"time":null`) || !strings.Contains(got, `"rates":[null]`) {
		t.Fatalf("NaN/Inf not nulled: %s", got)
	}
}
