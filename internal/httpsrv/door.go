package httpsrv

import (
	"context"
	"time"
)

// Status reports how the front door disposed of a request.
type Status uint8

const (
	// Served: the request was admitted, queued, and fully paced; the
	// Outcome is valid.
	Served Status = iota
	// RejectedByAdmission: the admission gate shed the request (503 on
	// the HTTP path).
	RejectedByAdmission
	// RejectedQueueFull: the class queue was full; any admission credit
	// was refunded (503 on the HTTP path).
	RejectedQueueFull
	// Canceled: the caller's context expired while the request was
	// queued or in service; the worker still drains the job.
	Canceled
	// ShuttingDown: the server closed before the request completed.
	ShuttingDown
)

// String names the status for logs and test failures.
func (st Status) String() string {
	switch st {
	case Served:
		return "served"
	case RejectedByAdmission:
		return "rejected-admission"
	case RejectedQueueFull:
		return "rejected-queue-full"
	case Canceled:
		return "canceled"
	case ShuttingDown:
		return "shutting-down"
	}
	return "unknown"
}

// Outcome is the server-side result of one served request.
type Outcome struct {
	// Delay is the queueing delay (enqueue to service start).
	Delay time.Duration
	// Service is the paced service duration.
	Service time.Duration
	// Slowdown is Delay/Service — the paper's per-request metric.
	Slowdown float64
}

// Do pushes one request through the front door in-process: admission
// gate → class queue → paced service, exactly the path ServeHTTP drives,
// minus HTTP parsing and response encoding. It blocks until the request
// is served, shed, or the context/server ends. This is the server's
// programmatic interface — the live-contention benchmark hammers it from
// many goroutines — and its steady-state admitted path performs no
// allocation: jobs (with their result channels) come from a pool and
// return to it once the result is consumed.
//
// class is clamped to the configured range (out-of-range maps to the
// lowest tier, matching the HTTP classifier); size must be a positive,
// finite work size — the HTTP layer validates declared sizes against
// Config.MaxSize before calling here, and programmatic callers are
// expected to do the same.
func (s *Server) Do(ctx context.Context, class int, size float64) (Outcome, Status) {
	if class < 0 || class >= len(s.classes) {
		class = len(s.classes) - 1
	}
	cr := s.classes[class]
	ok, charged := s.admit(class, size)
	if !ok {
		s.reject(class, size, true)
		return Outcome{}, RejectedByAdmission
	}
	j := s.jobPool.Get().(*job)
	j.size = size
	j.enqueued = time.Now()
	select {
	case cr.queue <- j:
		cr.observeArrival(size)
	default:
		// Never enqueued: the job is untouched by any worker, so it can
		// return to the pool immediately.
		s.jobPool.Put(j)
		if charged {
			s.refundAdmission(class, size)
		}
		s.reject(class, size, false)
		return Outcome{}, RejectedQueueFull
	}
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	select {
	case res, ok := <-j.done:
		if !ok {
			// A shutting-down worker closed the channel mid-service; the
			// job is dead and must not be pooled (a closed done channel
			// would poison a future checkout).
			return Outcome{}, ShuttingDown
		}
		// The buffered result has been consumed, so the job's done
		// channel is empty again: safe to recycle.
		s.jobPool.Put(j)
		return Outcome{Delay: res.delay, Service: res.service, Slowdown: res.slowdown}, Served
	case <-ctxDone:
		// Abandoned: a worker may still send the (buffered) result later,
		// so the job is dropped for the GC instead of pooled.
		return Outcome{}, Canceled
	case <-s.ctx.Done():
		return Outcome{}, ShuttingDown
	}
}
