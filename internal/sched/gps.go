package sched

import (
	"fmt"
	"math"
	"sort"
)

// GPSJob is a job with an arrival time for the fluid GPS reference
// computation.
type GPSJob struct {
	Class   int
	Size    float64
	Arrival float64
}

// GPSFinishTimes simulates ideal fluid generalized processor sharing
// (Parekh & Gallager) of the given jobs on a unit-capacity server with the
// given per-class weights and returns each job's fluid completion time (in
// input order). Within a class, service is FIFO (the head job receives the
// class's whole fluid share, matching the per-class FCFS task-server
// model). It is the conformance oracle for the packetized schedulers: PGPS
// completes every job no later than GPS plus one maximum job size, and
// SCFQ within a small number of maximum jobs.
func GPSFinishTimes(jobs []GPSJob, weights []float64) ([]float64, error) {
	for i, j := range jobs {
		if j.Class < 0 || j.Class >= len(weights) {
			return nil, fmt.Errorf("sched: job %d class %d out of range", i, j.Class)
		}
		if !(j.Size > 0) {
			return nil, fmt.Errorf("sched: job %d size %v must be positive", i, j.Size)
		}
		if j.Arrival < 0 || math.IsNaN(j.Arrival) {
			return nil, fmt.Errorf("sched: job %d arrival %v invalid", i, j.Arrival)
		}
	}
	if err := checkWeights(weights, len(weights)); err != nil {
		return nil, err
	}

	// Index jobs by arrival order per class.
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]].Arrival < jobs[order[b]].Arrival })

	type jobState struct {
		idx       int
		remaining float64
	}
	queues := make([][]jobState, len(weights))
	finish := make([]float64, len(jobs))
	now := 0.0
	next := 0 // next arrival in order

	for {
		// Determine the backlogged weight.
		activeW := 0.0
		for c := range queues {
			if len(queues[c]) > 0 {
				activeW += weights[c]
			}
		}
		// Next arrival time, if any.
		arrT := math.Inf(1)
		if next < len(order) {
			arrT = jobs[order[next]].Arrival
		}
		if activeW == 0 {
			if math.IsInf(arrT, 1) {
				break
			}
			now = arrT
			j := order[next]
			queues[jobs[j].Class] = append(queues[jobs[j].Class], jobState{idx: j, remaining: jobs[j].Size})
			next++
			continue
		}
		// Earliest head completion under current shares.
		compT := math.Inf(1)
		compC := -1
		for c := range queues {
			if len(queues[c]) == 0 {
				continue
			}
			rate := weights[c] / activeW
			t := now + queues[c][0].remaining/rate
			if t < compT {
				compT = t
				compC = c
			}
		}
		if arrT < compT {
			// Advance fluid to the arrival.
			dt := arrT - now
			for c := range queues {
				if len(queues[c]) == 0 {
					continue
				}
				queues[c][0].remaining -= dt * weights[c] / activeW
			}
			now = arrT
			j := order[next]
			queues[jobs[j].Class] = append(queues[jobs[j].Class], jobState{idx: j, remaining: jobs[j].Size})
			next++
			continue
		}
		// Advance fluid to the completion.
		dt := compT - now
		for c := range queues {
			if len(queues[c]) == 0 {
				continue
			}
			queues[c][0].remaining -= dt * weights[c] / activeW
		}
		now = compT
		done := queues[compC][0]
		queues[compC] = queues[compC][1:]
		finish[done.idx] = now
	}
	return finish, nil
}
