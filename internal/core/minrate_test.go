package core

import (
	"math"
	"testing"
)

func minrateWorkload(t *testing.T) Workload {
	t.Helper()
	// Simple synthetic moments: E[X]=1, E[X²]=2, E[1/X]=1.5.
	w := Workload{MeanSize: 1, SecondMoment: 2, InverseMoment: 1.5}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestMinRatePassthroughBitIdentical pins the wrapper's transparency
// contract: when no base rate falls below the floor, the wrapped
// allocation is bit-for-bit the base allocation — sim/live parity
// depends on this.
func TestMinRatePassthroughBitIdentical(t *testing.T) {
	w := minrateWorkload(t)
	classes := []Class{{Delta: 1, Lambda: 0.3}, {Delta: 2, Lambda: 0.2}, {Delta: 4, Lambda: 0.1}}
	base, err := PSD{}.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := MinRate{Base: PSD{}, Min: 1e-3}.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Rates {
		if base.Rates[i] != wrapped.Rates[i] {
			t.Fatalf("class %d rate %.17g != base %.17g (must be bit-identical when floor unbound)",
				i, wrapped.Rates[i], base.Rates[i])
		}
		if base.ExpectedSlowdowns[i] != wrapped.ExpectedSlowdowns[i] {
			t.Fatalf("class %d slowdown prediction diverged on passthrough", i)
		}
	}
}

// TestMinRateLiftsStarvedClass: a class with λ=0 gets zero rate from
// PSD; the wrapper must lift it to the floor, keep Σr = 1, and keep
// every loaded class strictly above its demand.
func TestMinRateLiftsStarvedClass(t *testing.T) {
	w := minrateWorkload(t)
	classes := []Class{{Delta: 1, Lambda: 0.5}, {Delta: 2, Lambda: 0}}
	const min = 1e-3
	a, err := MinRate{Base: PSD{}, Min: min}.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rates[1] != min {
		t.Fatalf("starved class rate = %v, want exactly the floor %v", a.Rates[1], min)
	}
	sum := a.Rates[0] + a.Rates[1]
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("rates sum to %v after redistribution, want 1", sum)
	}
	if !(a.Rates[0] > classes[0].Lambda*w.MeanSize) {
		t.Fatalf("donor rate %v not strictly above its demand %v", a.Rates[0], classes[0].Lambda*w.MeanSize)
	}
	// Predictions were recomputed for the adjusted vector: the donor's
	// slowdown must be the Theorem 1 value under its shaved rate.
	want, err := SlowdownUnderRates(classes, w, a.Rates)
	if err != nil {
		t.Fatal(err)
	}
	if a.ExpectedSlowdowns[0] != want[0] {
		t.Fatalf("slowdown prediction %v not recomputed under adjusted rates (want %v)",
			a.ExpectedSlowdowns[0], want[0])
	}
}

// TestMinRateInfeasibleFloorKeepsBase: when n·Min ≥ 1 or the donors'
// slack cannot cover the deficit, the base allocation must come through
// untouched (the pacing tripwire downstream accounts for it).
func TestMinRateInfeasibleFloorKeepsBase(t *testing.T) {
	w := minrateWorkload(t)
	classes := []Class{{Delta: 1, Lambda: 0.5}, {Delta: 2, Lambda: 0}}
	base, err := PSD{}.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	// Floor 0.6 × 2 classes > capacity 1.
	a, err := MinRate{Base: PSD{}, Min: 0.6}.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Rates {
		if a.Rates[i] != base.Rates[i] {
			t.Fatalf("class %d rate %v != base %v under infeasible floor", i, a.Rates[i], base.Rates[i])
		}
	}
	// Slack shortage: ρ close to 1 leaves the donor almost no surplus,
	// so a large floor for the idle class cannot be funded.
	tight := []Class{{Delta: 1, Lambda: 0.98}, {Delta: 2, Lambda: 0}}
	base, err = PSD{}.Allocate(tight, w)
	if err != nil {
		t.Fatal(err)
	}
	a, err = MinRate{Base: PSD{}, Min: 0.05}.Allocate(tight, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Rates {
		if a.Rates[i] != base.Rates[i] {
			t.Fatalf("class %d rate %v != base %v when slack cannot cover deficit", i, a.Rates[i], base.Rates[i])
		}
	}
}

// TestMinRateDisabledAndErrors covers the degenerate configurations.
func TestMinRateDisabledAndErrors(t *testing.T) {
	w := minrateWorkload(t)
	classes := []Class{{Delta: 1, Lambda: 0.5}, {Delta: 2, Lambda: 0}}
	base, err := PSD{}.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	a, err := MinRate{Base: PSD{}, Min: 0}.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rates[1] != base.Rates[1] {
		t.Fatalf("Min=0 must disable the floor: rate %v != base %v", a.Rates[1], base.Rates[1])
	}
	if _, err := (MinRate{Min: 0.1}).Allocate(classes, w); err == nil {
		t.Fatal("nil base allocator must error")
	}
	if got := (MinRate{Base: PSD{}, Min: 0.1}).Name(); got != "psd+minrate" {
		t.Fatalf("Name() = %q", got)
	}
	// Base errors (infeasible load) propagate.
	over := []Class{{Delta: 1, Lambda: 2}}
	if _, err := (MinRate{Base: PSD{}, Min: 0.1}).Allocate(over, w); err == nil {
		t.Fatal("infeasible base load must propagate the error")
	}
}
