// Command psdtrace generates session-based e-commerce workload traces
// (CBMG model, §2.2 of the paper) and replays recorded traces through the
// PSD simulation model.
//
// Usage:
//
//	psdtrace gen -sessions 0.3 -classes 0.3,0.7 -horizon 40000 > trace.csv
//	psdtrace replay -deltas 1,2 -warmup 5000 < trace.csv
//
// Traces are CSV: time,class,state,size,session (see internal/workload).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"psd/internal/rng"
	"psd/internal/simsrv"
	"psd/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		fatalf("usage: psdtrace gen|replay [flags]")
	}
	switch os.Args[1] {
	case "gen":
		generate(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		fatalf("unknown subcommand %q (want gen or replay)", os.Args[1])
	}
}

func generate(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	sessions := fs.Float64("sessions", 0.3, "session start rate (per time unit)")
	classesFlag := fs.String("classes", "0.5,0.5", "per-class session probabilities (sum 1)")
	horizon := fs.Float64("horizon", 40000, "trace horizon in time units")
	seed := fs.Uint64("seed", 1, "random seed")
	think := fs.Float64("think", 5, "mean think time between session requests")
	_ = fs.Parse(args)

	probs, err := parseFloats(*classesFlag)
	if err != nil {
		fatalf("bad -classes: %v", err)
	}
	model := workload.DefaultModel()
	model.ThinkMean = *think
	gen, err := workload.NewGenerator(model, *sessions, probs, rng.New(*seed))
	if err != nil {
		fatalf("building generator: %v", err)
	}
	reqs, err := gen.Generate(*horizon)
	if err != nil {
		fatalf("generating: %v", err)
	}
	if err := workload.WriteTrace(os.Stdout, reqs); err != nil {
		fatalf("writing trace: %v", err)
	}
	fmt.Fprintf(os.Stderr, "psdtrace: %d requests over %g tu (%.2f requests/session expected)\n",
		len(reqs), *horizon, model.MeanRequestsPerSession())
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	deltasFlag := fs.String("deltas", "1,2", "differentiation parameters, one per class")
	warmup := fs.Float64("warmup", 5000, "warmup time units")
	seed := fs.Uint64("seed", 1, "random seed")
	_ = fs.Parse(args)

	deltas, err := parseFloats(*deltasFlag)
	if err != nil {
		fatalf("bad -deltas: %v", err)
	}
	reqs, err := workload.ReadTrace(os.Stdin)
	if err != nil {
		fatalf("reading trace: %v", err)
	}
	if len(reqs) == 0 {
		fatalf("empty trace")
	}
	horizon := reqs[len(reqs)-1].Time
	rates, err := workload.ClassRates(reqs, len(deltas), horizon)
	if err != nil {
		fatalf("estimating class rates: %v", err)
	}
	trace := make([]simsrv.TraceRequest, len(reqs))
	for i, r := range reqs {
		trace[i] = simsrv.TraceRequest{Time: r.Time, Class: r.Class, Size: r.Size}
	}
	classes := make([]simsrv.ClassConfig, len(deltas))
	for i, d := range deltas {
		classes[i] = simsrv.ClassConfig{Delta: d, Lambda: rates[i]}
	}
	cfg := simsrv.Config{
		Classes: classes,
		Warmup:  *warmup,
		Horizon: horizon - *warmup,
		Seed:    *seed,
	}
	res, err := simsrv.RunTrace(cfg, trace)
	if err != nil {
		fatalf("replaying: %v", err)
	}
	fmt.Printf("replayed %d requests over %g tu\n\n", len(reqs), horizon)
	fmt.Printf("%-8s %-8s %-10s %-14s %-12s %-12s\n",
		"class", "delta", "count", "mean slowdown", "mean delay", "ratio to c1")
	for i := range classes {
		ratio := 1.0
		if i > 0 && res.Classes[0].MeanSlowdown > 0 {
			ratio = res.Classes[i].MeanSlowdown / res.Classes[0].MeanSlowdown
		}
		fmt.Printf("%-8d %-8g %-10d %-14.4f %-12.4f %-12.4f\n",
			i+1, deltas[i], res.Classes[i].Count,
			res.Classes[i].MeanSlowdown, res.Classes[i].MeanDelay, ratio)
	}
	fmt.Printf("\nsystem slowdown: %.4f\n", res.SystemSlowdown)
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "psdtrace: "+format+"\n", args...)
	os.Exit(1)
}
