// Package loadgen drives HTTP load at a PSD server (internal/httpsrv):
// one open-loop Poisson arrival process per class, sizes drawn from a
// configurable law, with client-side latency and server-reported slowdown
// collection. Runs are either a single (Lambdas, Duration) phase or a
// scripted piecewise-constant schedule (Phases) — the client-side
// counterpart of the simulator's LoadSchedule — with per-phase reports,
// so a mid-run load step can be asserted on directly. It backs
// cmd/psdload and the httpserver example.
//
// Arrivals are scheduled against an absolute next-arrival clock with a
// reused timer: the gap timer never stacks on top of per-iteration work
// (size sampling, dispatch), so the achieved rate tracks the nominal λ
// even at thousands of requests per second (pinned by
// TestOpenLoopRateAccuracy). Requests are issued by a fixed worker pool
// over keep-alive connections (Config.Workers bounds in-flight
// concurrency, Config.MaxPending the dispatch queue); an arrival that
// would have to wait for a worker is shed client-side as sent+error, so
// a saturated server degrades the report, never the arrival process.
package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"psd/internal/chaos"
	"psd/internal/dist"
	"psd/internal/obs"
	"psd/internal/rng"
	"psd/internal/stats"
	"psd/internal/timeutil"
)

// Client-side latency histogram layout: log₂ buckets over
// [2⁻¹, 2²⁰) ms ≈ [0.5 ms, 17.5 min); faster responses underflow,
// slower ones overflow.
const (
	latencyHistFirstExp = -1
	latencyHistBuckets  = 21
)

// Phase is one piecewise-constant segment of a scripted load schedule.
type Phase struct {
	// Lambdas are the per-class arrival rates (requests per time unit)
	// during this phase; every phase must have the same class count.
	Lambdas []float64
	// Duration is the phase's wall-clock length (> 0).
	Duration time.Duration
}

// Config parametrizes a load run.
type Config struct {
	// BaseURL is the work endpoint (e.g. "http://127.0.0.1:8080/").
	BaseURL string
	// Lambdas are the per-class arrival rates in requests per *time
	// unit*; TimeUnit converts to wall-clock (must match the server's).
	// Ignored when Phases is set.
	Lambdas []float64
	// TimeUnit is the wall-clock duration of one time unit (default
	// 10ms, matching httpsrv's default).
	TimeUnit time.Duration
	// Service draws request sizes client-side so the server and client
	// agree on the demand (default: the paper's Bounded Pareto).
	Service dist.Distribution
	// Duration is the wall-clock length of the run. Ignored when Phases
	// is set.
	Duration time.Duration
	// Phases optionally scripts a piecewise-constant load schedule in
	// place of Lambdas/Duration: phases run back to back, each class's
	// Poisson stream redrawing its pending arrival at every boundary
	// (exact for piecewise-homogeneous Poisson, by memorylessness).
	Phases []Phase
	// Drain extends the wait for in-flight requests after arrival
	// generation stops (default 0: outstanding requests are canceled at
	// the end of the last phase, biasing the tail of heavy-tailed runs).
	Drain time.Duration
	// Workers sizes the request worker pool: the hard bound on
	// concurrently in-flight HTTP requests across all classes (default
	// 256). The pool reuses keep-alive connections (see the default
	// client's transport) instead of spawning one goroutine — and, under
	// churn, one connection — per arrival, so the client side stops
	// being the λ ceiling in saturation studies.
	Workers int
	// MaxPending bounds the dispatch queue between the arrival
	// schedulers and the worker pool (default 4×Workers). An arrival
	// that finds every worker busy and the queue full is shed
	// client-side and counted as sent+error: the open-loop clock never
	// blocks on a slow server, which would silently turn the generator
	// closed-loop.
	MaxPending int
	// Seed drives the arrival and size streams.
	Seed uint64
	// Client optionally overrides the HTTP client (default: keep-alives
	// with an idle-connection pool sized to Workers).
	Client *http.Client
	// Timeout bounds each individual request attempt (0: only the
	// client's own timeout applies). A timed-out attempt is a transport
	// error: retried while MaxRetries allows, an error otherwise.
	Timeout time.Duration
	// MaxRetries is how many times one arrival may be re-attempted after
	// a retryable failure — a transport error (including Timeout) or a
	// 5xx response (0: no retries). Retries are counted separately in the
	// report (ClassReport.Retries) and only the final attempt's latency
	// and slowdown are recorded, so retries never skew the achieved-
	// slowdown statistics; each arrival still counts as sent exactly
	// once.
	MaxRetries int
	// RetryBackoff is the base backoff before the first retry (default
	// 10ms), doubling per attempt up to 32× the base, with ±50%
	// deterministic seeded jitter so synchronized failures don't
	// re-arrive in lockstep.
	RetryBackoff time.Duration
	// Chaos optionally attaches the fault-injection harness's client-side
	// faults: while the injector is armed and configured with slow-loris
	// connections, the generator holds Loris.Conns raw TCP connections to
	// the server dribbling one header byte every Loris.Interval —
	// connection-exhaustion pressure outside the measured request
	// streams.
	Chaos *chaos.Injector
}

// phases normalizes the configured schedule to a non-empty phase list.
func (cfg Config) phases() []Phase {
	if len(cfg.Phases) > 0 {
		return cfg.Phases
	}
	return []Phase{{Lambdas: cfg.Lambdas, Duration: cfg.Duration}}
}

// ClassReport aggregates one class's observations (for one phase, or the
// whole run).
type ClassReport struct {
	Sent      int64
	Completed int64
	Errors    int64
	// Retries counts re-attempts after retryable failures (transport
	// errors, 5xx). Kept apart from Sent/Completed/Errors: an arrival
	// that eventually succeeds is one sent + one completed regardless of
	// how many attempts it took, and only its final attempt's latency
	// and slowdown enter the statistics.
	Retries       int64
	MeanSlowdown  float64 // server-reported
	P95Slowdown   float64
	MeanLatencyMs float64 // client-observed end-to-end
	MeanServiceMs float64 // server-reported
	// NominalRate and AchievedRate compare the configured λ against
	// Sent over the covered interval, both in requests per time unit;
	// open-loop drift shows up as Achieved < Nominal.
	NominalRate  float64
	AchievedRate float64
	// LatencyHist is the client-observed end-to-end latency distribution
	// in milliseconds (log₂ buckets; see obs.HistogramSnapshot), exported
	// as JSON by psdload -report-json.
	LatencyHist obs.HistogramSnapshot
}

// Report is the run outcome.
type Report struct {
	// Classes aggregates the whole run.
	Classes []ClassReport
	// Phases holds one report per class per configured phase, attributed
	// by launch time (length 1 for unphased runs).
	Phases  [][]ClassReport
	Elapsed time.Duration
}

// serverResponse mirrors httpsrv.Response.
type serverResponse struct {
	Slowdown  float64 `json:"slowdown"`
	ServiceMs float64 `json:"service_ms"`
}

type classCollector struct {
	mu        sync.Mutex
	sent      int64
	completed int64
	errors    int64
	retries   int64
	slow      stats.Welford
	slowP95   *stats.P2
	latency   stats.Welford
	service   stats.Welford
	// latHist bins the same client-observed latencies (ms) the Welford
	// mean summarizes; Observe is atomic, so it lives outside mu.
	latHist *obs.Histogram
}

func newCollector() *classCollector {
	h, err := obs.NewHistogram(latencyHistFirstExp, latencyHistBuckets)
	if err != nil {
		panic(err) // layout constants are compile-time; cannot fail
	}
	return &classCollector{slowP95: stats.NewP2(0.95), latHist: h}
}

// report snapshots the collector; nominal is the configured λ and units
// the covered interval's length in time units.
func (c *classCollector) report(nominal, units float64) ClassReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	achieved := math.NaN()
	if units > 0 {
		achieved = float64(c.sent) / units
	}
	return ClassReport{
		Sent:          c.sent,
		Completed:     c.completed,
		Errors:        c.errors,
		Retries:       c.retries,
		MeanSlowdown:  c.slow.Mean(),
		P95Slowdown:   c.slowP95.Value(),
		MeanLatencyMs: c.latency.Mean(),
		MeanServiceMs: c.service.Mean(),
		NominalRate:   nominal,
		AchievedRate:  achieved,
		LatencyHist:   c.latHist.Snapshot(),
	}
}

func validate(cfg Config) error {
	if cfg.BaseURL == "" {
		return errors.New("loadgen: BaseURL required")
	}
	if _, err := url.Parse(cfg.BaseURL); err != nil {
		return fmt.Errorf("loadgen: bad BaseURL: %w", err)
	}
	phases := cfg.phases()
	n := len(phases[0].Lambdas)
	if n == 0 {
		return errors.New("loadgen: no class lambdas")
	}
	for pi, ph := range phases {
		if len(ph.Lambdas) != n {
			return fmt.Errorf("loadgen: phase %d has %d classes, phase 0 has %d", pi, len(ph.Lambdas), n)
		}
		if ph.Duration <= 0 {
			return fmt.Errorf("loadgen: phase %d duration %v must be positive", pi, ph.Duration)
		}
	}
	if cfg.Drain < 0 {
		return fmt.Errorf("loadgen: drain %v must not be negative", cfg.Drain)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("loadgen: workers %d must not be negative", cfg.Workers)
	}
	if cfg.MaxPending < 0 {
		return fmt.Errorf("loadgen: max pending %d must not be negative", cfg.MaxPending)
	}
	if cfg.Timeout < 0 || cfg.RetryBackoff < 0 {
		return fmt.Errorf("loadgen: timeout %v and retry backoff %v must not be negative", cfg.Timeout, cfg.RetryBackoff)
	}
	if cfg.MaxRetries < 0 {
		return fmt.Errorf("loadgen: max retries %d must not be negative", cfg.MaxRetries)
	}
	return nil
}

// task is one scheduled arrival handed from a class's arrival generator
// to the worker pool.
type task struct {
	class      int
	size       float64
	pcol, ocol *classCollector
}

// Run drives the configured load until the schedule elapses (or ctx is
// canceled) and returns the aggregated report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	if cfg.TimeUnit == 0 {
		cfg.TimeUnit = 10 * time.Millisecond
	}
	if cfg.Service == nil {
		cfg.Service = dist.PaperDefault()
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = 256
	}
	maxPending := cfg.MaxPending
	if maxPending == 0 {
		maxPending = 4 * workers
	}
	client := cfg.Client
	if client == nil {
		// Idle pool sized to the worker pool: every worker can hold a
		// keep-alive connection, so steady-state load runs over reused
		// connections instead of a dial per request.
		client = &http.Client{
			Timeout: 2 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConns:        workers,
				MaxIdleConnsPerHost: workers,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	phases := cfg.phases()
	nClasses := len(phases[0].Lambdas)
	var total time.Duration
	for _, ph := range phases {
		total += ph.Duration
	}

	// start anchors the phase boundaries and MUST be captured before the
	// context deadlines below: the deadlines then land at or after the
	// last phaseEnd (start+total), so generation is never cut off inside
	// the final phase of a normally-completed run.
	start := time.Now()

	// genCtx bounds arrival generation; reqCtx lets in-flight requests
	// drain for cfg.Drain beyond the last phase.
	genCtx, genCancel := context.WithTimeout(ctx, total)
	defer genCancel()
	reqCtx, reqCancel := context.WithTimeout(ctx, total+cfg.Drain)
	defer reqCancel()

	perPhase := make([][]*classCollector, len(phases))
	for pi := range perPhase {
		perPhase[pi] = make([]*classCollector, nClasses)
		for i := range perPhase[pi] {
			perPhase[pi][i] = newCollector()
		}
	}
	overall := make([]*classCollector, nClasses)
	for i := range overall {
		overall[i] = newCollector()
	}

	src := rng.New(cfg.Seed)
	pol := retryPolicy{timeout: cfg.Timeout, maxRetries: cfg.MaxRetries, backoff: cfg.RetryBackoff}
	if pol.backoff == 0 {
		pol.backoff = 10 * time.Millisecond
	}

	// The worker pool: a fixed set of request goroutines draining the
	// dispatch queue, bounding in-flight requests at `workers`. Each
	// worker carries its own backoff-jitter stream (ids offset by 2³² so
	// they can never collide with the per-class arrival/size streams).
	tasks := make(chan task, maxPending)
	var poolWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		poolWG.Add(1)
		go func(jitter *rng.Source) {
			defer poolWG.Done()
			timer := timeutil.NewStoppedTimer()
			defer timer.Stop()
			for tk := range tasks {
				fire(reqCtx, client, cfg.BaseURL, tk, pol, jitter, timer)
			}
		}(src.Split(uint64(1)<<32 + uint64(w)))
	}

	// Client-side slow-loris faults ride alongside the measured load.
	var lorisWG sync.WaitGroup
	if cfg.Chaos != nil && cfg.Chaos.Config().Loris.Conns > 0 {
		runSlowLoris(reqCtx, &lorisWG, cfg.Chaos, cfg.BaseURL)
	}

	var wg sync.WaitGroup
	for class := 0; class < nClasses; class++ {
		wg.Add(1)
		go func(class int, arrivals, sizes *rng.Source) {
			defer wg.Done()
			timer := timeutil.NewStoppedTimer()
			defer timer.Stop()

			phaseEnd := start
			for pi := range phases {
				lambda := phases[pi].Lambdas[class]
				phaseStart := phaseEnd
				phaseEnd = phaseStart.Add(phases[pi].Duration)
				pcol, ocol := perPhase[pi][class], overall[class]
				if lambda > 0 {
					// Redraw the pending arrival at the boundary: exact
					// for a piecewise-homogeneous Poisson process.
					next := phaseStart.Add(expGap(arrivals, lambda, cfg.TimeUnit))
					for next.Before(phaseEnd) {
						if !sleepUntil(genCtx, timer, next) {
							return
						}
						tk := task{class: class, size: cfg.Service.Sample(sizes), pcol: pcol, ocol: ocol}
						markSent(tk)
						select {
						case tasks <- tk:
						default:
							// Pool saturated and queue full: shed the
							// arrival client-side (sent+error) instead of
							// blocking the open-loop clock.
							fail([]*classCollector{tk.pcol, tk.ocol})
						}
						// Absolute clock: the next arrival is scheduled
						// from the previous arrival's nominal instant, so
						// sampling and spawn overhead never accumulate
						// into rate sag.
						next = next.Add(expGap(arrivals, lambda, cfg.TimeUnit))
					}
				}
				if !sleepUntil(genCtx, timer, phaseEnd) {
					return
				}
			}
		}(class, src.Split(uint64(2*class+1)), src.Split(uint64(2*class+2)))
	}
	wg.Wait()
	close(tasks) // generators done: let the pool drain and exit
	poolWG.Wait()
	reqCancel() // release the loris connections before reporting
	lorisWG.Wait()

	rep := &Report{
		Classes: make([]ClassReport, nClasses),
		Phases:  make([][]ClassReport, len(phases)),
		Elapsed: time.Since(start),
	}
	// Rates are computed over the COVERED interval: if the caller's ctx
	// cut the run short, each phase counts only the portion that actually
	// ran (a fully skipped phase reports NaN achieved, not a fake 100%
	// drift against its nominal λ).
	covered := make([]time.Duration, len(phases))
	var offset, coveredTotal time.Duration
	for pi, ph := range phases {
		c := rep.Elapsed - offset
		if c < 0 {
			c = 0
		}
		if c > ph.Duration {
			c = ph.Duration
		}
		covered[pi] = c
		coveredTotal += c
		offset += ph.Duration
	}
	for pi, ph := range phases {
		rep.Phases[pi] = make([]ClassReport, nClasses)
		units := float64(covered[pi]) / float64(cfg.TimeUnit)
		for i, col := range perPhase[pi] {
			rep.Phases[pi][i] = col.report(ph.Lambdas[i], units)
		}
	}
	for i, col := range overall {
		// Whole-run nominal rate: covered-duration-weighted mean of the
		// phase λs.
		nominal := math.NaN()
		if coveredTotal > 0 {
			nominal = 0
			for pi, ph := range phases {
				nominal += ph.Lambdas[i] * float64(covered[pi])
			}
			nominal /= float64(coveredTotal)
		}
		rep.Classes[i] = col.report(nominal, float64(coveredTotal)/float64(cfg.TimeUnit))
	}
	return rep, nil
}

// expGap draws one exponential inter-arrival gap in wall-clock terms.
func expGap(src *rng.Source, lambda float64, timeUnit time.Duration) time.Duration {
	return time.Duration(src.ExpFloat64(lambda) * float64(timeUnit))
}

// sleepUntil blocks until the absolute instant at (or ctx cancellation,
// returning false) using the caller's reused timer. An instant already
// in the past returns immediately: open-loop arrivals fire late rather
// than thinning out.
func sleepUntil(ctx context.Context, timer *time.Timer, at time.Time) bool {
	wait := time.Until(at)
	if wait <= 0 {
		return ctx.Err() == nil
	}
	timer.Reset(wait)
	select {
	case <-ctx.Done():
		timeutil.StopTimer(timer)
		return false
	case <-timer.C:
		return true
	}
}

// markSent accounts an arrival at dispatch time (before it reaches a
// worker), so the sent counters reflect the open-loop arrival process
// even when the pool sheds.
func markSent(tk task) {
	for _, col := range []*classCollector{tk.pcol, tk.ocol} {
		col.mu.Lock()
		col.sent++
		col.mu.Unlock()
	}
}

// retryPolicy carries the per-attempt timeout and capped-exponential-
// backoff retry parameters into the worker pool.
type retryPolicy struct {
	timeout    time.Duration
	maxRetries int
	backoff    time.Duration
}

// attemptResult classifies one request attempt.
type attemptResult int

const (
	// attemptOK: served and recorded.
	attemptOK attemptResult = iota
	// attemptPermanent: failed in a way another attempt cannot cure
	// (malformed request, 4xx, undecodable body).
	attemptPermanent
	// attemptRetryable: transport error (including a per-attempt
	// timeout) or 5xx — the failures a healthy-again server would serve.
	attemptRetryable
)

// fire pushes one arrival through at most 1+maxRetries attempts. The
// arrival was already counted as sent (markSent); success records the
// FINAL attempt's latency and slowdown only, so retried arrivals carry
// no inflated latency into the achieved-slowdown statistics — the price
// of the retries is visible in the separate Retries counter instead.
func fire(ctx context.Context, client *http.Client, base string, tk task, pol retryPolicy, jitter *rng.Source, timer *time.Timer) {
	cols := []*classCollector{tk.pcol, tk.ocol}
	u := fmt.Sprintf("%s?class=%d&size=%s", base, tk.class, strconv.FormatFloat(tk.size, 'g', -1, 64))
	for attempt := 0; ; attempt++ {
		switch fireOnce(ctx, client, u, cols, pol.timeout) {
		case attemptOK:
			return
		case attemptPermanent:
			fail(cols)
			return
		case attemptRetryable:
			if attempt >= pol.maxRetries || ctx.Err() != nil {
				fail(cols)
				return
			}
			for _, col := range cols {
				col.mu.Lock()
				col.retries++
				col.mu.Unlock()
			}
			if !sleepBackoff(ctx, timer, pol.backoff, attempt, jitter) {
				fail(cols)
				return
			}
		}
	}
}

// fireOnce performs one request attempt, recording the outcome only on
// success.
func fireOnce(ctx context.Context, client *http.Client, u string, cols []*classCollector, timeout time.Duration) attemptResult {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return attemptPermanent
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return attemptRetryable
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode >= http.StatusInternalServerError {
			return attemptRetryable
		}
		return attemptPermanent
	}
	var sr serverResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return attemptPermanent
	}
	lat := time.Since(t0)
	latMs := float64(lat) / float64(time.Millisecond)
	for _, col := range cols {
		col.latHist.Observe(latMs)
		col.mu.Lock()
		col.completed++
		col.slow.Add(sr.Slowdown)
		col.slowP95.Add(sr.Slowdown)
		col.latency.Add(latMs)
		col.service.Add(sr.ServiceMs)
		col.mu.Unlock()
	}
	return attemptOK
}

// sleepBackoff waits base·2^attempt (capped at 32× base) with ±50%
// seeded jitter; false means the context ended first.
func sleepBackoff(ctx context.Context, timer *time.Timer, base time.Duration, attempt int, jitter *rng.Source) bool {
	d := base
	for i := 0; i < attempt && d < 32*base; i++ {
		d *= 2
	}
	if d > 32*base {
		d = 32 * base
	}
	d = time.Duration(float64(d) * (0.5 + jitter.Float64()))
	timer.Reset(d)
	select {
	case <-ctx.Done():
		timeutil.StopTimer(timer)
		return false
	case <-timer.C:
		return true
	}
}

// runSlowLoris holds inj.Config().Loris.Conns raw TCP connections to the
// base URL's host, each sending a valid request preamble and then
// dribbling one header byte per Loris.Interval while the injector is
// armed — the classic connection-exhaustion client. Connections redial
// on error and are torn down when ctx ends; the dribbled bytes are
// counted on the injector for reports.
func runSlowLoris(ctx context.Context, wg *sync.WaitGroup, inj *chaos.Injector, base string) {
	u, err := url.Parse(base)
	if err != nil || u.Host == "" {
		return
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	loris := inj.Config().Loris
	for i := 0; i < loris.Conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticker := time.NewTicker(loris.Interval)
			defer ticker.Stop()
			var conn net.Conn
			defer func() {
				if conn != nil {
					conn.Close()
				}
			}()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
				}
				if !inj.Armed() {
					continue
				}
				if conn == nil {
					var d net.Dialer
					c, err := d.DialContext(ctx, "tcp", host)
					if err != nil {
						continue
					}
					conn = c
					if _, err := fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: %s\r\nX-Loris: ", u.Hostname()); err != nil {
						conn.Close()
						conn = nil
						continue
					}
				}
				if _, err := conn.Write([]byte{'z'}); err != nil {
					conn.Close()
					conn = nil
					continue
				}
				inj.CountLorisByte()
			}
		}()
	}
}

func fail(cols []*classCollector) {
	for _, col := range cols {
		col.mu.Lock()
		col.errors++
		col.mu.Unlock()
	}
}

// SlowdownRatio returns the achieved whole-run mean slowdown ratio of
// class i to class 0, or NaN when unavailable (out-of-range i, class 0
// without a positive mean). NaN — not 0 — so a `ratio < bound` check can
// never silently pass on missing data.
func (r *Report) SlowdownRatio(i int) float64 {
	return slowdownRatio(r.Classes, i)
}

// PhaseSlowdownRatio is SlowdownRatio restricted to one phase.
func (r *Report) PhaseSlowdownRatio(phase, i int) float64 {
	if phase < 0 || phase >= len(r.Phases) {
		return math.NaN()
	}
	return slowdownRatio(r.Phases[phase], i)
}

func slowdownRatio(classes []ClassReport, i int) float64 {
	if i <= 0 || i >= len(classes) {
		return math.NaN()
	}
	base := classes[0].MeanSlowdown
	if !(base > 0) {
		return math.NaN()
	}
	return classes[i].MeanSlowdown / base
}
