// Package sweep shards whole scenario grids across a fixed worker pool of
// reusable simulation arenas. A grid — the unit internal/figures and
// cmd/psdbench actually execute — is a list of Points, each a simsrv
// configuration with a replication count; every figure of the paper's
// evaluation is (load sweep × class mix × replications), i.e. thousands
// of replications whose per-run construction cost and aggregation memory
// used to dominate everything outside the event loop.
//
// The engine differs from the per-point simsrv.RunReplications fan-out it
// replaces in three ways:
//
//   - One global (point, replication) task queue spans the whole grid, so
//     workers never idle at per-point barriers: while one worker finishes
//     the last replication of point k, the rest are already deep into
//     point k+1.
//   - Each worker owns one simsrv.Simulator arena for the entire sweep —
//     rings, pooled statistics, estimator scratch, the packetized packet
//     heap — so a replication costs single-digit heap allocations instead
//     of rebuilding the model (~100 allocations) millions of times per
//     figure.
//   - Results stream through per-point simsrv.Aggregators (Welford + P²
//     quantiles) in strict replication order via a reorder buffer, so
//     memory stays O(workers + points) and the output is bit-reproducible
//     regardless of worker scheduling.
//
// Replication seeds derive from each point's base seed via rng.Split
// (simsrv.ReplicationSeed), so a point's replication streams are
// independent of its position in the grid and identical to what
// simsrv.RunReplications would use.
package sweep

import (
	"fmt"
	"runtime"

	"psd/internal/rng"
	"psd/internal/sched"
	"psd/internal/simsrv"
)

// Point is one grid point: a scenario configuration plus how many
// replications to average (the paper uses 100).
type Point struct {
	// Cfg is the scenario; Cfg.Seed is the point's base seed from which
	// replication seeds derive.
	Cfg simsrv.Config
	// Runs is the replication count (≥ 1).
	Runs int
	// Packetized selects the packetized-server model (SCFQ by default)
	// instead of the paper's partitioned task servers.
	Packetized bool
	// NewScheduler optionally overrides the packetized discipline; see
	// simsrv.PacketizedConfig.
	NewScheduler func(classes int, src *rng.Source) sched.Scheduler
	// Trace, when non-nil, replays this arrival trace instead of the
	// Poisson generators (simsrv.RunTrace semantics). Replications then
	// differ only in their estimator/allocator-independent random
	// streams, which for a fixed trace makes runs 1..n-1 redundant —
	// trace points normally use Runs = 1.
	Trace []simsrv.TraceRequest
	// TrackWindowRatios asks the point's aggregator to accumulate the
	// per-measurement-window achieved slowdown ratios across runs
	// (Aggregate.WindowRatioMeans) — the transient time series behind the
	// estimator-convergence figure. Costs O(classes × windows) memory per
	// point.
	TrackWindowRatios bool
}

// Engine runs grids. The zero value uses GOMAXPROCS workers and streaming
// (P²) ratio quantiles.
type Engine struct {
	// Workers fixes the pool size; 0 means GOMAXPROCS.
	Workers int
	// ExactQuantiles switches every point's ratio summaries to the exact
	// batch path (buffer + sort) — the pre-streaming behavior, kept for
	// golden comparisons and accuracy tests.
	ExactQuantiles bool
}

// Run executes the grid on a default Engine.
func Run(points []Point) ([]*simsrv.Aggregate, error) {
	var e Engine
	return e.Run(points)
}

// Run executes every point's replications and returns one Aggregate per
// point, in point order. All configurations are validated up front
// (traces are validated by each worker's arena once, on its first
// replication of the point); an execution error (first in task order,
// deterministically) aborts the sweep.
//
// NOTE: the jobs/out/recycle/reorder pipeline below is intentionally the
// same shape as simsrv.RunReplications' single-point pipeline (which
// cannot reuse this engine — sweep imports simsrv). When changing pool
// sizing, error ordering or channel structure, change both in lockstep.
func (e *Engine) Run(points []Point) ([]*simsrv.Aggregate, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("sweep: empty grid")
	}
	total := 0
	offsets := make([]int, len(points))
	aggs := make([]*simsrv.Aggregator, len(points))
	for i := range points {
		p := &points[i]
		if p.Runs < 1 {
			return nil, fmt.Errorf("sweep: point %d needs at least 1 run, got %d", i, p.Runs)
		}
		cfg := p.Cfg.ApplyDefaults()
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: point %d: %w", i, err)
		}
		offsets[i] = total
		total += p.Runs
		aggs[i] = simsrv.NewAggregator(p.Cfg)
		if e.ExactQuantiles {
			aggs[i].UseExactQuantiles()
		}
		if p.TrackWindowRatios {
			aggs[i].TrackWindowRatios()
		}
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	// locate maps a global task index back to (point, replication).
	locate := func(task int) (int, int) {
		pt := 0
		for pt+1 < len(points) && offsets[pt+1] <= task {
			pt++
		}
		return pt, task - offsets[pt]
	}
	runTask := func(sim *simsrv.Simulator, res *simsrv.Result, task int) error {
		pt, rep := locate(task)
		p := &points[pt]
		seed := simsrv.ReplicationSeed(p.Cfg.Seed, rep)
		var err error
		switch {
		case p.Trace != nil:
			err = sim.ResetTrace(p.Cfg, p.Trace, seed)
		case p.Packetized:
			err = sim.ResetPacketized(simsrv.PacketizedConfig{Config: p.Cfg, NewScheduler: p.NewScheduler}, seed)
		default:
			err = sim.Reset(p.Cfg, seed)
		}
		if err != nil {
			return err
		}
		return sim.RunInto(res)
	}
	finalize := func() ([]*simsrv.Aggregate, error) {
		out := make([]*simsrv.Aggregate, len(points))
		for i, a := range aggs {
			agg, err := a.Aggregate()
			if err != nil {
				return nil, fmt.Errorf("sweep: point %d: %w", i, err)
			}
			out[i] = agg
		}
		return out, nil
	}

	if workers == 1 {
		// Sequential fast path: one arena, one Result, zero goroutines.
		var sim simsrv.Simulator
		var res simsrv.Result
		for task := 0; task < total; task++ {
			if err := runTask(&sim, &res, task); err != nil {
				pt, rep := locate(task)
				return nil, fmt.Errorf("sweep: point %d rep %d: %w", pt, rep, err)
			}
			pt, _ := locate(task)
			aggs[pt].Add(&res)
		}
		return finalize()
	}

	type done struct {
		task int
		res  *simsrv.Result
		err  error
	}
	poolSize := 2 * workers
	jobs := make(chan int)
	// out holds every pooled Result at once, so worker sends never block
	// and the in-order consumer cannot deadlock the pipeline.
	out := make(chan done, poolSize)
	recycle := make(chan *simsrv.Result, poolSize)
	for i := 0; i < poolSize; i++ {
		recycle <- new(simsrv.Result)
	}
	for w := 0; w < workers; w++ {
		go func() {
			var sim simsrv.Simulator
			for task := range jobs {
				res := <-recycle
				err := runTask(&sim, res, task)
				out <- done{task: task, res: res, err: err}
			}
		}()
	}
	go func() {
		for task := 0; task < total; task++ {
			jobs <- task
		}
		close(jobs)
	}()

	// Consume in task order through a reorder buffer; the first error in
	// task order wins (deterministically).
	pending := make(map[int]done, workers)
	next := 0
	var firstErr error
	for received := 0; received < total; received++ {
		d := <-out
		pending[d.task] = d
		for {
			nd, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if firstErr == nil {
				if nd.err != nil {
					pt, rep := locate(next)
					firstErr = fmt.Errorf("sweep: point %d rep %d: %w", pt, rep, nd.err)
				} else {
					pt, _ := locate(next)
					aggs[pt].Add(nd.res)
				}
			}
			recycle <- nd.res
			next++
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return finalize()
}
