package simsrv

import (
	"fmt"
	"math"

	"psd/internal/core"
	"psd/internal/des"
	"psd/internal/rng"
	"psd/internal/sched"
	"psd/internal/stats"
)

// PacketizedConfig parametrizes a packetized-server simulation: one
// processor runs whole requests at full speed and a weighted-fair
// scheduler (internal/sched) picks the next request, with weights
// refreshed by the allocator every window. This mode validates that the
// paper's assumed proportional-share facility is realizable by practical
// packet-by-packet schedulers — and quantifies the slowdown-model
// correction (core.PacketizedPSD) that the run-to-completion service
// model requires.
type PacketizedConfig struct {
	// Config supplies classes, service law, windows, warmup, horizon and
	// seed. Its Allocator provides the weights; use core.PacketizedPSD
	// for proportional slowdowns on this server model (core.PSD's fluid
	// weights overshoot by design — see the ablation bench).
	Config
	// NewScheduler builds the discipline; it receives the class count
	// and a dedicated random stream (only Lottery uses it). Defaults to
	// SCFQ.
	NewScheduler func(classes int, src *rng.Source) sched.Scheduler
}

// Packetized event kinds (pkRunner.HandleEvent payloads: data = class for
// pkArrival, unused otherwise).
const (
	pkArrival int32 = iota
	pkDone
	pkRealloc
)

// pkClassMetrics aggregates one class's measurements in packetized mode.
type pkClassMetrics struct {
	slow    stats.Welford
	delay   stats.Welford
	svc     stats.Welford
	windows *stats.WindowSeries
}

// pkRunner wires the packetized model for one replication. Like runner,
// it is the single des.Handler, so event scheduling itself allocates
// nothing and sched.Job objects are recycled through a free list. The
// residual ~0.05 allocs/event in BENCH_psd.json comes from the
// scheduler's own internals (SCFQ's container/heap boxes an interface
// per enqueue) — a future sched refactor, not an engine cost.
type pkRunner struct {
	cfg       Config
	sim       *des.Simulator
	scheduler sched.Scheduler
	est       *estimator
	workload  core.Workload
	total     float64

	metrics    []*pkClassMetrics
	arrivalRng []*rng.Source
	sizeRng    []*rng.Source
	services   []distSampler

	busy bool
	// cur* describe the request occupying the processor; the single
	// full-speed server serializes service, so no per-job state needs to
	// outlive its completion event.
	curClass   int
	curSize    float64
	curStart   float64
	curArrival float64

	jobPool []*sched.Job // recycled between Dequeue and Enqueue

	allocClasses []core.Class
	allocLambdas []float64
	allocWeights []float64
	// lastWeights is the most recent weight vector actually installed in
	// the scheduler (floored), reported as Result.FinalRates.
	lastWeights []float64

	reallocOK   int
	reallocFail int
	records     []RequestRecord
}

func (p *pkRunner) HandleEvent(kind, data int32) {
	switch kind {
	case pkArrival:
		p.onArrival(int(data))
	case pkDone:
		p.onDone()
	case pkRealloc:
		p.onRealloc()
	}
}

func (p *pkRunner) scheduleArrival(i int) {
	if p.cfg.Classes[i].Lambda <= 0 {
		return
	}
	p.sim.Schedule(p.arrivalRng[i].ExpFloat64(p.cfg.Classes[i].Lambda), p, pkArrival, int32(i))
}

func (p *pkRunner) onArrival(i int) {
	size := p.services[i].Sample(p.sizeRng[i])
	p.est.observe(i, size)
	var j *sched.Job
	if n := len(p.jobPool); n > 0 {
		j = p.jobPool[n-1]
		p.jobPool = p.jobPool[:n-1]
		*j = sched.Job{}
	} else {
		j = new(sched.Job)
	}
	j.Class, j.Size, j.Arrival = i, size, p.sim.Now()
	p.scheduler.Enqueue(j)
	if !p.busy {
		p.dispatch()
	}
	p.scheduleArrival(i)
}

// dispatch pulls the scheduler's next choice onto the processor.
func (p *pkRunner) dispatch() {
	j := p.scheduler.Dequeue()
	if j == nil {
		p.busy = false
		return
	}
	p.busy = true
	p.curClass, p.curSize, p.curStart, p.curArrival = j.Class, j.Size, p.sim.Now(), j.Arrival
	p.jobPool = append(p.jobPool, j)
	p.sim.Schedule(j.Size, p, pkDone, 0) // full-speed service
}

func (p *pkRunner) onDone() {
	now := p.sim.Now()
	if now >= p.cfg.Warmup {
		delay := p.curStart - p.curArrival
		slowdown := delay / p.curSize
		m := p.metrics[p.curClass]
		m.slow.Add(slowdown)
		m.delay.Add(delay)
		m.svc.Add(p.curSize)
		m.windows.Observe(now-p.cfg.Warmup, slowdown)
		if p.cfg.RecordRequests && now >= p.cfg.RecordFrom && now < p.cfg.RecordTo {
			p.records = append(p.records, RequestRecord{
				Class: p.curClass, Arrival: p.curArrival, ServiceStart: p.curStart,
				Completion: now, Size: p.curSize, Slowdown: slowdown,
			})
		}
	}
	p.dispatch()
}

func (p *pkRunner) onRealloc() {
	p.est.roll()
	p.est.lambdasInto(p.allocLambdas, p.cfg.Window)
	for i, cc := range p.cfg.Classes {
		l := p.allocLambdas[i]
		if p.cfg.Oracle {
			l = cc.Lambda
		}
		p.allocClasses[i] = core.Class{Delta: cc.Delta, Lambda: l}
	}
	if alloc, err := p.cfg.Allocator.Allocate(p.allocClasses, p.workload); err == nil {
		positiveFloorInto(p.allocWeights, alloc.Rates, p.cfg.MinRate)
		if err := p.scheduler.SetWeights(p.allocWeights); err == nil {
			copy(p.lastWeights, p.allocWeights)
			p.reallocOK++
		} else {
			p.reallocFail++
		}
	} else {
		p.reallocFail++
	}
	if p.sim.Now() < p.total {
		p.sim.Schedule(p.cfg.Window, p, pkRealloc, 0)
	}
}

// RunPacketized executes one packetized-server replication.
func RunPacketized(pc PacketizedConfig) (*Result, error) {
	cfg := pc.Config.ApplyDefaults()
	if cfg.Allocator == nil || pc.Config.Allocator == nil {
		// The fluid default would systematically overshoot here; make
		// the packetized-correct allocator the default for this mode.
		cfg.Allocator = core.PacketizedPSD{}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.WorkConserving {
		return nil, fmt.Errorf("simsrv: packetized mode is inherently work-conserving; WorkConserving flag is not applicable")
	}
	w, err := coreWorkload(cfg)
	if err != nil {
		return nil, err
	}
	mk := pc.NewScheduler
	if mk == nil {
		mk = func(classes int, _ *rng.Source) sched.Scheduler { return sched.NewSCFQ(classes) }
	}

	src := rng.New(cfg.Seed)
	nc := len(cfg.Classes)
	p := &pkRunner{
		cfg:          cfg,
		sim:          des.New(),
		scheduler:    mk(nc, src.Split(1000)),
		est:          newEstimator(nc, cfg.HistoryWindows),
		workload:     w,
		total:        cfg.Warmup + cfg.Horizon,
		metrics:      make([]*pkClassMetrics, nc),
		arrivalRng:   make([]*rng.Source, nc),
		sizeRng:      make([]*rng.Source, nc),
		services:     make([]distSampler, nc),
		allocClasses: make([]core.Class, nc),
		allocLambdas: make([]float64, nc),
		allocWeights: make([]float64, nc),
		lastWeights:  make([]float64, nc),
	}
	for i, cc := range cfg.Classes {
		ws, err := stats.NewWindowSeries(cfg.Window)
		if err != nil {
			return nil, err
		}
		p.metrics[i] = &pkClassMetrics{windows: ws}
		p.arrivalRng[i] = src.Split(uint64(2*i + 1))
		p.sizeRng[i] = src.Split(uint64(2*i + 2))
		svc := cc.Service
		if svc == nil {
			svc = cfg.Service
		}
		p.services[i] = svc
	}

	// Initial weights from declared rates (fall back to even split).
	weights := make([]float64, nc)
	trueClasses := make([]core.Class, nc)
	for i, cc := range cfg.Classes {
		trueClasses[i] = core.Class{Delta: cc.Delta, Lambda: cc.Lambda}
	}
	if alloc, err := cfg.Allocator.Allocate(trueClasses, w); err == nil {
		copy(weights, alloc.Rates)
	} else {
		for i := range weights {
			weights[i] = 1 / float64(nc)
		}
	}
	positiveFloorInto(p.allocWeights, weights, cfg.MinRate)
	if err := p.scheduler.SetWeights(p.allocWeights); err != nil {
		return nil, err
	}
	copy(p.lastWeights, p.allocWeights)

	for i := range cfg.Classes {
		p.scheduleArrival(i)
	}
	p.sim.Schedule(cfg.Window, p, pkRealloc, 0)

	p.sim.RunUntil(p.total)

	// Assemble the Result in the same shape as the fluid mode.
	res := &Result{
		Classes:           make([]ClassStats, nc),
		ExpectedSlowdowns: make([]float64, nc),
		FinalRates:        p.lastWeights,
		Reallocations:     p.reallocOK,
		AllocFailures:     p.reallocFail,
		EventsProcessed:   p.sim.Processed(),
		Records:           p.records,
	}
	numWindows := int(math.Ceil(cfg.Horizon / cfg.Window))
	var sysSlow, sysCount float64
	for i, m := range p.metrics {
		st := &res.Classes[i]
		st.Count = m.slow.N()
		st.MeanSlowdown = m.slow.Mean()
		st.StdSlowdown = m.slow.Std()
		st.MaxSlowdown = m.slow.Max()
		st.MeanDelay = m.delay.Mean()
		st.MeanService = m.svc.Mean()
		st.WindowMeans = make([]float64, numWindows)
		for wi := 0; wi < numWindows; wi++ {
			if mean, ok := m.windows.WindowMean(wi); ok {
				st.WindowMeans[wi] = mean
			} else {
				st.WindowMeans[wi] = math.NaN()
			}
		}
		if st.Count > 0 {
			sysSlow += st.MeanSlowdown * float64(st.Count)
			sysCount += float64(st.Count)
		}
	}
	if sysCount > 0 {
		res.SystemSlowdown = sysSlow / sysCount
	}
	if alloc, err := cfg.Allocator.Allocate(trueClasses, w); err == nil {
		copy(res.ExpectedSlowdowns, alloc.ExpectedSlowdowns)
	} else {
		for i := range res.ExpectedSlowdowns {
			res.ExpectedSlowdowns[i] = math.NaN()
		}
	}
	return res, nil
}

// distSampler is the sampling subset of dist.Distribution used above.
type distSampler interface {
	Sample(*rng.Source) float64
}

// positiveFloorInto clamps weights at a positive minimum into dst
// (schedulers reject non-positive weights; an idle class's zero rate
// becomes a negligible share).
func positiveFloorInto(dst, ws []float64, floor float64) {
	if floor <= 0 {
		floor = 1e-6
	}
	for i, w := range ws {
		if w < floor {
			w = floor
		}
		dst[i] = w
	}
}
