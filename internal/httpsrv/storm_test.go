package httpsrv

import (
	"context"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The storm tests drive the sharded front door from many goroutines at
// once — load, window drains, metric scrapes, rate publications, real
// reallocation ticks — and assert the two invariants the lock-free
// design must keep: window-counter conservation across the striped
// Swap-drain (no lost or double-counted arrivals) and untorn rate reads
// (a reader only ever sees a value some writer actually published).
// They are deliberately not -short-gated: the CI race job is exactly
// where they earn their keep.

// stormSize is exactly representable in binary (2⁻⁶), so striped float
// work accumulation is exact and conservation can be asserted with ==.
const stormSize = 0.015625

// TestStormWindowConservation: concurrent multi-class load through Do,
// a concurrent drainer calling closeWindow, and concurrent metric
// scrapes. Every admitted arrival must appear in exactly one drained
// window: the sum of all drains plus the final drain equals the served
// count per class, and the drained work equals count·size exactly.
func TestStormWindowConservation(t *testing.T) {
	s, err := New(Config{
		Deltas:          []float64{1, 2, 4},
		TimeUnit:        time.Microsecond,
		Window:          1e9, // manual drains only
		WorkersPerClass: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const (
		loaders    = 8
		perLoader  = 400
		numClasses = 3
	)
	var (
		served  [numClasses]atomic.Int64
		drained [numClasses]struct{ count, work float64 }
		stop    = make(chan struct{})
		drainWG sync.WaitGroup
	)
	// One drainer (the reallocation tick's role), racing the loaders.
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range s.classes {
				c, w, _ := s.classes[i].closeWindow()
				drained[i].count += c
				drained[i].work += w
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	// Scrapers: JSON snapshot and Prometheus exposition, continuously.
	for sc := 0; sc < 2; sc++ {
		drainWG.Add(1)
		go func() {
			defer drainWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.Snapshot()
				s.refreshScrapeGauges()
				_ = s.reg.WriteProm(io.Discard)
				// Scrapes race the drain and the loaders, but a hot spin
				// would starve them of the (possibly single) CPU.
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}

	var loadWG sync.WaitGroup
	for g := 0; g < loaders; g++ {
		loadWG.Add(1)
		go func(g int) {
			defer loadWG.Done()
			class := g % numClasses
			for i := 0; i < perLoader; i++ {
				if _, st := s.Do(context.Background(), class, stormSize); st == Served {
					served[class].Add(1)
				} else {
					t.Errorf("loader %d: unexpected status %v", g, st)
					return
				}
			}
		}(g)
	}
	loadWG.Wait()
	close(stop)
	drainWG.Wait()
	// Final drain: whatever the storm-time drains didn't catch.
	for i := range s.classes {
		c, w, _ := s.classes[i].closeWindow()
		drained[i].count += c
		drained[i].work += w
	}
	for i := 0; i < numClasses; i++ {
		want := float64(served[i].Load())
		if drained[i].count != want {
			t.Errorf("class %d: drained %v arrivals over all windows, served %v — lost or duplicated across the striped drain",
				i, drained[i].count, want)
		}
		if drained[i].work != want*stormSize {
			t.Errorf("class %d: drained work %v != %v (count·size) — work cell lost across the striped drain",
				i, drained[i].work, want*stormSize)
		}
	}
}

// TestStormNoTornRates: a publisher installs rates from a known set
// while readers hammer currentRate and pacing workers serve load; every
// observed value must be bit-identical to a published (or initial)
// value — a torn 64-bit read would surface as a value outside the set.
func TestStormNoTornRates(t *testing.T) {
	s, err := New(Config{
		Deltas:   []float64{1, 2},
		TimeUnit: time.Microsecond,
		Window:   1e9, // rate changes are scripted, not ticked
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	published := []float64{0.5, 0.1, 0.2, 0.3, 0.45, 0.7, 1.0 / 3.0} // 0.5 = initial even split
	legal := make(map[uint64]bool, len(published))
	for _, r := range published {
		legal[math.Float64bits(r)] = true
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, cr := range s.classes {
					got := cr.currentRate()
					if !legal[math.Float64bits(got)] {
						t.Errorf("torn or phantom rate read: %v (bits %#x) was never published", got, math.Float64bits(got))
						return
					}
				}
			}
		}()
	}
	// Load keeps the pacing path (another rate reader) hot too.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(class int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Do(context.Background(), class, stormSize)
			}
		}(g)
	}
	epoch0 := s.RateEpoch(0)
	for i := 0; i < 3000; i++ {
		for ci, cr := range s.classes {
			cr.setRate(published[(i+ci)%len(published)])
		}
	}
	if s.RateEpoch(0) == epoch0 {
		t.Error("rate epoch never advanced across 3000 publications")
	}
	close(stop)
	wg.Wait()
}

// TestStormTicksScrapesLoad: the full production concurrency — real
// background reallocation ticks, multi-class load, and metric scrapes —
// with sanity assertions on the control plane's outputs: rates stay a
// partition of capacity, and the allocator-side MinRate floor keeps the
// pacing clamp tripwire at zero.
func TestStormTicksScrapesLoad(t *testing.T) {
	s, err := New(Config{
		Deltas:          []float64{1, 2, 4},
		TimeUnit:        50 * time.Microsecond,
		Window:          20, // tick every 1ms
		WorkersPerClass: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for sc := 0; sc < 2; sc++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				doc := s.Snapshot()
				for i, cm := range doc.Classes {
					if math.IsNaN(cm.Rate) || cm.Rate < 0 || cm.Rate > 1 {
						t.Errorf("scraped class %d rate %v out of [0,1]", i, cm.Rate)
						return
					}
				}
				_ = s.reg.WriteProm(io.Discard)
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	var loadWG sync.WaitGroup
	for g := 0; g < 6; g++ {
		loadWG.Add(1)
		go func(g int) {
			defer loadWG.Done()
			for i := 0; i < 300; i++ {
				s.Do(context.Background(), g%3, 0.05)
			}
		}(g)
	}
	loadWG.Wait()
	// The load can outrun the 1ms ticker; keep the scrapers storming
	// until at least one real tick lands (bounded wait).
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().Reallocations < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no reallocation tick completed during the storm")
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	scrapeWG.Wait()

	doc := s.Snapshot()
	sum := 0.0
	for i, cm := range doc.Classes {
		if !(cm.Rate >= 0) || math.IsInf(cm.Rate, 0) {
			t.Fatalf("class %d rate %v not finite/non-negative", i, cm.Rate)
		}
		sum += cm.Rate
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("rates sum to %v after storm, want 1 (capacity partition)", sum)
	}
	if doc.RateFloorClamps != 0 {
		t.Fatalf("pacing floor clamped %d times despite the allocator-side MinRate floor", doc.RateFloorClamps)
	}
}

// BenchmarkFrontDoor measures the sharded admitted path end to end
// (admission → queue → paced service → completion accounting) under
// parallel load, and hard-gates its allocation behavior: the steady-
// state admitted path must not allocate (jobs and their channels are
// pooled; observations go to striped atomics). CI runs this with
// -benchtime 1x as a smoke test; the psdbench live-contention scenario
// gates throughput scaling in -compare.
func BenchmarkFrontDoor(b *testing.B) {
	if runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}
	s, err := New(Config{
		Deltas:          []float64{1, 2, 4, 8},
		TimeUnit:        time.Microsecond,
		Window:          1e9,
		WorkersPerClass: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	for i := 0; i < 512; i++ { // warm the job pool and the workers
		s.Do(ctx, i%4, stormSize)
	}
	var next atomic.Int64
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		class := int(next.Add(1)-1) % 4
		for pb.Next() {
			s.Do(ctx, class, stormSize)
		}
	})
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	allocsPerReq := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
	b.ReportMetric(allocsPerReq, "allocs/req")
	// RunParallel's own goroutine spawns cost a handful of allocations;
	// only gate once they are amortized over a real iteration count.
	if b.N >= 1000 && allocsPerReq > 0.1 {
		b.Fatalf("admitted path regressed into allocation: %.3f allocs/req (want ~0)", allocsPerReq)
	}
}
