package simsrv

import (
	"math"
	"testing"

	"psd/internal/dist"
)

// scaled3x returns the paper's Bounded Pareto with all sizes tripled
// (served at one third rate), for model-mismatch experiments.
func scaled3x() (dist.Distribution, error) {
	return dist.NewScaled(dist.PaperDefault(), 1.0/3)
}

func TestFeedbackModeRuns(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.6)
	cfg.Feedback = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes[0].Count == 0 || res.Classes[1].Count == 0 {
		t.Fatal("feedback run starved a class")
	}
	if !(res.Classes[0].MeanSlowdown < res.Classes[1].MeanSlowdown) {
		t.Fatalf("ordering violated under feedback: %v vs %v",
			res.Classes[0].MeanSlowdown, res.Classes[1].MeanSlowdown)
	}
}

func TestFeedbackGainValidation(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.5)
	cfg.Feedback = true
	cfg.FeedbackGain = 2 // out of (0,1]
	if _, err := Run(cfg); err == nil {
		t.Fatal("accepted out-of-range feedback gain")
	}
}

// TestFeedbackTightensWindowRatios: the controller's purpose is
// short-timescale predictability — per-window achieved ratios should
// spread less (tighter p05–p95 band) than open-loop at the same fidelity.
// Heavy-tailed noise makes single comparisons flaky, so the assertion is
// directional with margin over pooled windows from several seeds.
func TestFeedbackTightensWindowRatios(t *testing.T) {
	spread := func(feedback bool) float64 {
		cfg := EqualLoadConfig([]float64{1, 2}, 0.6, nil)
		cfg.Warmup = 2000
		cfg.Horizon = 30000
		cfg.Seed = 5
		cfg.Feedback = feedback
		agg, err := RunReplications(cfg, 16)
		if err != nil {
			t.Fatal(err)
		}
		rs := agg.RatioSummaries[1]
		return rs.P95 - rs.P05
	}
	open := spread(false)
	closed := spread(true)
	// Allow the controller to be up to 50% worse before failing: the
	// invariant is "does not blow up the spread"; typically it shrinks
	// it, but a handful of giant-job windows in either arm swings the
	// pooled p95 by tens of percent at this fidelity.
	if closed > open*1.5 {
		t.Fatalf("feedback widened the ratio spread: open %v vs closed %v", open, closed)
	}
	t.Logf("per-window ratio spread p95-p05: open-loop %.2f, feedback %.2f", open, closed)
}

// TestFeedbackCorrectsBiasedWorkload: hand the allocator WRONG moments
// (an operator misconfiguration the open loop cannot detect) and check
// the controller pulls the long-run achieved ratio back toward target.
func TestFeedbackCorrectsBiasedWorkload(t *testing.T) {
	run := func(feedback bool) float64 {
		var s0, s1 float64
		for seed := uint64(0); seed < 6; seed++ {
			cfg := EqualLoadConfig([]float64{1, 2}, 0.6, nil)
			cfg.Warmup = 2000
			cfg.Horizon = 30000
			cfg.Seed = seed
			cfg.Feedback = feedback
			// Per-class service override: class 2's true jobs are 3×
			// larger than the allocator's shared-law assumption; its
			// arrival rate drops 3× so the true offered load stays 0.3
			// (the allocator, seeing only λ̂ and the wrong moments,
			// underestimates class 2's demand 3×).
			big, err := scaled3x()
			if err != nil {
				t.Fatal(err)
			}
			cfg.Classes[1].Service = big
			cfg.Classes[1].Lambda /= 3
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s0 += res.Classes[0].MeanSlowdown
			s1 += res.Classes[1].MeanSlowdown
		}
		return s1 / s0
	}
	open := run(false)
	closed := run(true)
	gapOpen := math.Abs(open - 2)
	gapClosed := math.Abs(closed - 2)
	if gapClosed > gapOpen {
		t.Fatalf("feedback did not reduce the model-mismatch gap: open %.3f closed %.3f", open, closed)
	}
	t.Logf("achieved ratio with mismatched moments: open-loop %.3f, feedback %.3f (target 2)", open, closed)
}
