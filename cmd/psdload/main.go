// Command psdload drives open-loop Poisson load at a psdserver instance
// and reports achieved per-class slowdowns and ratios.
//
// Usage:
//
//	psdload -url http://localhost:8080/ -lambdas 0.1,0.1 -duration 30s
//	psdload -lambdas 0.1,0.1 -duration 30s -step-after 15s -step-lambdas 0.3,0.3
//
// Lambdas are per time unit (match the server's -timeunit); each class
// gets an independent Poisson stream with Bounded Pareto sizes. With
// -step-after/-step-lambdas the run becomes a two-phase load step and
// the report breaks out each phase — the client-side twin of the
// simulator's LoadStep schedule. -report-json writes the full machine-
// readable report — including per-class client-side latency histograms
// (log₂ ms buckets) — to a file ("-" for stdout).
//
// Requests are issued by a fixed worker pool (-workers) over kept-alive,
// reused connections; arrivals that find the dispatch queue
// (-max-pending) full are shed client-side and counted as errors, so an
// overloaded server degrades the report instead of ballooning the
// client's goroutine and connection counts. -timeout bounds each request
// attempt, and -retries re-attempts transport errors and 5xx responses
// with capped exponential backoff; retries are reported in their own
// column so they never skew the achieved-slowdown statistics.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"psd/internal/dist"
	"psd/internal/loadgen"
	"psd/internal/obs"
)

func main() {
	var (
		url         = flag.String("url", "http://localhost:8080/", "work endpoint URL")
		lambdas     = flag.String("lambdas", "0.1,0.1", "per-class arrival rates (requests per time unit)")
		timeUnit    = flag.Duration("timeunit", 10*time.Millisecond, "wall-clock duration of one time unit (match server)")
		duration    = flag.Duration("duration", 30*time.Second, "run length")
		stepAfter   = flag.Duration("step-after", 0, "step the load at this point of the run (0: no step)")
		stepLambdas = flag.String("step-lambdas", "", "per-class arrival rates after -step-after")
		drain       = flag.Duration("drain", 0, "extra wait for in-flight requests after arrivals stop")
		workers     = flag.Int("workers", 0, "HTTP worker pool size (0: default 256); connections are kept alive and reused")
		maxPending  = flag.Int("max-pending", 0, "dispatch queue bound before client-side shedding (0: default 4x -workers)")
		timeout     = flag.Duration("timeout", 0, "per-attempt request timeout (0: client default only)")
		retries     = flag.Int("retries", 0, "max retries per arrival after transport errors or 5xx (capped exponential backoff with jitter)")
		reportJSON  = flag.String("report-json", "", `write the full report as JSON to this file ("-": stdout)`)
		alpha       = flag.Float64("alpha", 1.5, "Bounded Pareto shape for request sizes")
		lower       = flag.Float64("lower", 0.1, "Bounded Pareto lower bound")
		upper       = flag.Float64("upper", 100, "Bounded Pareto upper bound")
		seed        = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	ls, err := parseFloats(*lambdas)
	if err != nil {
		fatalf("bad -lambdas: %v", err)
	}
	svc, err := dist.NewBoundedPareto(*lower, *upper, *alpha)
	if err != nil {
		fatalf("bad Bounded Pareto parameters: %v", err)
	}

	cfg := loadgen.Config{
		BaseURL:    *url,
		TimeUnit:   *timeUnit,
		Service:    svc,
		Drain:      *drain,
		Workers:    *workers,
		MaxPending: *maxPending,
		Timeout:    *timeout,
		MaxRetries: *retries,
		Seed:       *seed,
	}
	if *stepAfter > 0 {
		if !(*stepAfter < *duration) {
			fatalf("-step-after %v must fall inside -duration %v", *stepAfter, *duration)
		}
		ls2, err := parseFloats(*stepLambdas)
		if err != nil {
			fatalf("bad -step-lambdas: %v", err)
		}
		cfg.Phases = []loadgen.Phase{
			{Lambdas: ls, Duration: *stepAfter},
			{Lambdas: ls2, Duration: *duration - *stepAfter},
		}
		fmt.Printf("driving %v of load at %s (lambdas %v → %v at %v, per %v time unit)\n",
			*duration, *url, ls, ls2, *stepAfter, *timeUnit)
	} else {
		cfg.Lambdas = ls
		cfg.Duration = *duration
		fmt.Printf("driving %v of load at %s (lambdas %v per %v time unit)\n",
			*duration, *url, ls, *timeUnit)
	}
	rep, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		fatalf("load run failed: %v", err)
	}

	printClasses("whole run", rep.Classes)
	if len(rep.Phases) > 1 {
		for pi, classes := range rep.Phases {
			printClasses(fmt.Sprintf("phase %d", pi+1), classes)
		}
	}
	for i := 1; i < len(rep.Classes); i++ {
		fmt.Printf("achieved slowdown ratio class %d/1: %s\n", i+1, fmtRatio(rep.SlowdownRatio(i)))
		if len(rep.Phases) > 1 {
			for pi := range rep.Phases {
				fmt.Printf("  phase %d: %s\n", pi+1, fmtRatio(rep.PhaseSlowdownRatio(pi, i)))
			}
		}
	}
	fmt.Printf("elapsed: %v\n", rep.Elapsed.Round(time.Millisecond))

	if *reportJSON != "" {
		if err := writeReportJSON(*reportJSON, rep); err != nil {
			fatalf("writing -report-json: %v", err)
		}
	}
}

// fmtRatio renders a slowdown ratio, or "n/a" when the measurement is
// unavailable (no class-0 baseline yet) instead of a raw NaN.
func fmtRatio(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.4f", v)
}

// jfloat serializes NaN/±Inf (absent measurements) as null, which
// encoding/json otherwise rejects outright.
type jfloat float64

func (f jfloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// jsonClass is the machine-readable per-class report.
type jsonClass struct {
	Sent          int64                 `json:"sent"`
	Completed     int64                 `json:"completed"`
	Errors        int64                 `json:"errors"`
	Retries       int64                 `json:"retries"`
	MeanSlowdown  jfloat                `json:"mean_slowdown"`
	P95Slowdown   jfloat                `json:"p95_slowdown"`
	MeanLatencyMs jfloat                `json:"mean_latency_ms"`
	MeanServiceMs jfloat                `json:"mean_service_ms"`
	NominalRate   jfloat                `json:"nominal_rate"`
	AchievedRate  jfloat                `json:"achieved_rate"`
	LatencyHistMs obs.HistogramSnapshot `json:"latency_hist_ms"`
}

type jsonReport struct {
	ElapsedSeconds jfloat        `json:"elapsed_seconds"`
	Classes        []jsonClass   `json:"classes"`
	SlowdownRatios []jfloat      `json:"slowdown_ratios"`
	Phases         [][]jsonClass `json:"phases,omitempty"`
}

func toJSONClasses(classes []loadgen.ClassReport) []jsonClass {
	out := make([]jsonClass, len(classes))
	for i, c := range classes {
		out[i] = jsonClass{
			Sent:          c.Sent,
			Completed:     c.Completed,
			Errors:        c.Errors,
			Retries:       c.Retries,
			MeanSlowdown:  jfloat(c.MeanSlowdown),
			P95Slowdown:   jfloat(c.P95Slowdown),
			MeanLatencyMs: jfloat(c.MeanLatencyMs),
			MeanServiceMs: jfloat(c.MeanServiceMs),
			NominalRate:   jfloat(c.NominalRate),
			AchievedRate:  jfloat(c.AchievedRate),
			LatencyHistMs: c.LatencyHist,
		}
	}
	return out
}

func writeReportJSON(path string, rep *loadgen.Report) error {
	doc := jsonReport{
		ElapsedSeconds: jfloat(rep.Elapsed.Seconds()),
		Classes:        toJSONClasses(rep.Classes),
		SlowdownRatios: make([]jfloat, len(rep.Classes)),
	}
	for i := range rep.Classes {
		if i == 0 {
			// The baseline's ratio to itself, or null with no baseline yet.
			if rep.Classes[0].MeanSlowdown > 0 {
				doc.SlowdownRatios[0] = 1
			} else {
				doc.SlowdownRatios[0] = jfloat(math.NaN())
			}
			continue
		}
		doc.SlowdownRatios[i] = jfloat(rep.SlowdownRatio(i))
	}
	if len(rep.Phases) > 1 {
		doc.Phases = make([][]jsonClass, len(rep.Phases))
		for pi, classes := range rep.Phases {
			doc.Phases[pi] = toJSONClasses(classes)
		}
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func printClasses(title string, classes []loadgen.ClassReport) {
	fmt.Printf("\n%s:\n%-8s %-8s %-10s %-8s %-8s %-14s %-12s %-14s %-12s\n",
		title, "class", "sent", "completed", "errors", "retries", "mean slowdown", "p95 slow", "mean lat (ms)", "ach/nom λ")
	for i, c := range classes {
		fmt.Printf("%-8d %-8d %-10d %-8d %-8d %-14.4f %-12.4f %-14.2f %.3f/%.3f\n",
			i+1, c.Sent, c.Completed, c.Errors, c.Retries, c.MeanSlowdown, c.P95Slowdown, c.MeanLatencyMs,
			c.AchievedRate, c.NominalRate)
	}
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "psdload: "+format+"\n", args...)
	os.Exit(1)
}
