package simsrv

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"psd/internal/stats"
)

// Aggregate summarizes many independent replications of one Config, the
// paper's "each reported result is an average of 100 runs".
type Aggregate struct {
	Runs int
	// MeanSlowdowns[i] is the across-run mean of class i's per-run mean
	// slowdown; CI95 the 95% normal-approximation half-width.
	MeanSlowdowns []float64
	CI95          []float64
	// ExpectedSlowdowns are the model (Eq. 18) predictions.
	ExpectedSlowdowns []float64
	// SystemSlowdown is the across-run mean of the arrival-weighted
	// system slowdown.
	SystemSlowdown float64
	// RatioSummaries[i] summarizes the pooled per-window achieved
	// slowdown ratios of class i to class 0 across all runs (entry 0 is
	// the degenerate self-ratio and is left zero).
	RatioSummaries []stats.Summary
	// MeanRatios[i] is the across-run mean of (class i mean slowdown /
	// class 0 mean slowdown), the statistic plotted in Figures 9–10.
	MeanRatios []float64
	// AllocFailures totals allocator fallbacks across runs.
	AllocFailures int
	// EventsProcessed totals DES events across runs (for throughput
	// accounting — see cmd/psdbench).
	EventsProcessed uint64
}

// RunReplications executes n independent replications of cfg (seeds
// cfg.Seed, cfg.Seed+1, …) in parallel across GOMAXPROCS workers and
// aggregates. Replication results are deterministic per seed, and the
// aggregation order is fixed, so the Aggregate is reproducible regardless
// of scheduling.
func RunReplications(cfg Config, n int) (*Aggregate, error) {
	if n < 1 {
		return nil, fmt.Errorf("simsrv: need at least 1 replication, got %d", n)
	}
	cfg = cfg.ApplyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				c := cfg
				c.Seed = cfg.Seed + uint64(idx)
				results[idx], errs[idx] = Run(c)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return aggregate(cfg, results)
}

func aggregate(cfg Config, results []*Result) (*Aggregate, error) {
	nc := len(cfg.Classes)
	agg := &Aggregate{
		Runs:              len(results),
		MeanSlowdowns:     make([]float64, nc),
		CI95:              make([]float64, nc),
		ExpectedSlowdowns: make([]float64, nc),
		RatioSummaries:    make([]stats.Summary, nc),
		MeanRatios:        make([]float64, nc),
	}
	perClass := make([]stats.Welford, nc)
	ratioMeans := make([]stats.Welford, nc)
	pooledRatios := make([][]float64, nc)
	var system stats.Welford
	for _, res := range results {
		for i := 0; i < nc; i++ {
			if res.Classes[i].Count > 0 {
				perClass[i].Add(res.Classes[i].MeanSlowdown)
			}
			if i > 0 {
				if s0 := res.Classes[0].MeanSlowdown; s0 > 0 && res.Classes[i].Count > 0 {
					ratioMeans[i].Add(res.Classes[i].MeanSlowdown / s0)
				}
				pooledRatios[i] = append(pooledRatios[i], res.WindowRatio(i, 0)...)
			}
		}
		system.Add(res.SystemSlowdown)
		agg.AllocFailures += res.AllocFailures
		agg.EventsProcessed += res.EventsProcessed
	}
	for i := 0; i < nc; i++ {
		agg.MeanSlowdowns[i] = perClass[i].Mean()
		agg.CI95[i] = perClass[i].ConfidenceInterval(0.95)
		agg.ExpectedSlowdowns[i] = results[0].ExpectedSlowdowns[i]
		if i > 0 {
			agg.MeanRatios[i] = ratioMeans[i].Mean()
			if len(pooledRatios[i]) > 0 {
				s, err := stats.Summarize(pooledRatios[i])
				if err != nil {
					return nil, err
				}
				agg.RatioSummaries[i] = s
			}
		}
	}
	agg.SystemSlowdown = system.Mean()
	return agg, nil
}

// ExpectedSystemSlowdown returns the arrival-weighted Eq. 18 prediction
// for the aggregate, mirroring SystemSlowdown.
func ExpectedSystemSlowdown(cfg Config, agg *Aggregate) float64 {
	cfg = cfg.ApplyDefaults()
	var num, den float64
	for i, c := range cfg.Classes {
		if math.IsNaN(agg.ExpectedSlowdowns[i]) {
			return math.NaN()
		}
		num += agg.ExpectedSlowdowns[i] * c.Lambda
		den += c.Lambda
	}
	if den == 0 {
		return 0
	}
	return num / den
}
