package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"psd/internal/rng"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Variance()) {
		t.Fatal("empty accumulator should report NaN")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if !almostEq(w.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", w.Mean())
	}
	// Population variance of this classic sample is 4; unbiased = 32/7.
	if !almostEq(w.Variance(), 32.0/7, 1e-12) {
		t.Fatalf("variance = %v", w.Variance())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, x := range clean {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		ss := 0.0
		for _, x := range clean {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(clean)-1)
		scale := math.Max(1, math.Abs(mean))
		return almostEq(w.Mean(), mean, 1e-9*scale) &&
			almostEq(w.Variance(), naiveVar, 1e-6*math.Max(1, naiveVar))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMerge(t *testing.T) {
	r := rng.New(1)
	var a, b, all Welford
	for i := 0; i < 1000; i++ {
		x := r.Float64() * 100
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if !almostEq(a.Mean(), all.Mean(), 1e-9) {
		t.Fatalf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if !almostEq(a.Variance(), all.Variance(), 1e-6) {
		t.Fatalf("merged var %v vs %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged min/max wrong")
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	a.Merge(&b) // both empty: no panic
	if a.N() != 0 {
		t.Fatal("merging empties should stay empty")
	}
	b.Add(5)
	a.Merge(&b)
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatal("merge into empty failed")
	}
	var c Welford
	a.Merge(&c) // merge empty into non-empty
	if a.N() != 1 {
		t.Fatal("merge of empty changed state")
	}
}

func TestWelfordAddN(t *testing.T) {
	var a, b Welford
	a.AddN(3.5, 4)
	for i := 0; i < 4; i++ {
		b.Add(3.5)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() {
		t.Fatal("AddN mismatch")
	}
}

func TestZQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.95, 1.644854},
		{0.995, 2.575829},
		{0.025, -1.959964},
	}
	for _, c := range cases {
		if got := zQuantile(c.p); !almostEq(got, c.want, 1e-4) {
			t.Errorf("zQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(zQuantile(0), -1) || !math.IsInf(zQuantile(1), 1) {
		t.Error("zQuantile edges should be infinite")
	}
}

func TestConfidenceInterval(t *testing.T) {
	var w Welford
	r := rng.New(2)
	for i := 0; i < 10000; i++ {
		w.Add(r.NormFloat64())
	}
	ci := w.ConfidenceInterval(0.95)
	want := 1.96 * w.Std() / math.Sqrt(10000)
	if !almostEq(ci, want, 1e-3) {
		t.Fatalf("CI = %v, want %v", ci, want)
	}
}

func TestQuantileExact(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	q, err := Quantile(xs, 0.5)
	if err != nil || q != 35 {
		t.Fatalf("median = %v err=%v", q, err)
	}
	// Type-7 interpolation: 0.25 quantile of 5 points = x[1] exactly.
	q, _ = Quantile(xs, 0.25)
	if q != 20 {
		t.Fatalf("q25 = %v, want 20", q)
	}
	q, _ = Quantile(xs, 0)
	if q != 15 {
		t.Fatalf("q0 = %v", q)
	}
	q, _ = Quantile(xs, 1)
	if q != 50 {
		t.Fatalf("q1 = %v", q)
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatal("empty quantile should error")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_, _ = Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantilesBatch(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	qs, err := Quantiles(xs, 0.05, 0.5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(qs[1], 5.5, 1e-12) {
		t.Fatalf("median = %v, want 5.5", qs[1])
	}
	if qs[0] >= qs[1] || qs[1] >= qs[2] {
		t.Fatalf("quantiles not ordered: %v", qs)
	}
}

func TestMeanHelper(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3})
	if err != nil || m != 2 {
		t.Fatalf("mean = %v err = %v", m, err)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatal("empty mean should error")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 0, 1000)
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		xs = append(xs, r.Float64()*10)
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 1000 {
		t.Fatalf("N = %d", s.N)
	}
	if s.P05 >= s.P50 || s.P50 >= s.P95 {
		t.Fatalf("percentiles unordered: %+v", s)
	}
	if s.Min > s.P05 || s.Max < s.P95 {
		t.Fatalf("extremes inconsistent: %+v", s)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatal("empty summarize should error")
	}
}

func TestP2AgainstExact(t *testing.T) {
	r := rng.New(4)
	for _, q := range []float64{0.5, 0.9, 0.95} {
		p2 := NewP2(q)
		xs := make([]float64, 0, 50000)
		for i := 0; i < 50000; i++ {
			// Heavy-ish tail: exp of normal.
			x := math.Exp(r.NormFloat64())
			p2.Add(x)
			xs = append(xs, x)
		}
		exact, _ := Quantile(xs, q)
		got := p2.Value()
		if math.Abs(got-exact)/exact > 0.05 {
			t.Errorf("P2(%v) = %v, exact %v", q, got, exact)
		}
		if p2.N() != 50000 {
			t.Errorf("P2 N = %d", p2.N())
		}
	}
}

func TestP2SmallSamples(t *testing.T) {
	p := NewP2(0.5)
	if p.Value() != 0 {
		t.Fatal("empty P2 value should be 0")
	}
	p.Add(3)
	p.Add(1)
	p.Add(2)
	if !almostEq(p.Value(), 2, 1e-12) {
		t.Fatalf("small-sample median = %v, want 2", p.Value())
	}
}

func TestP2PanicsOnBadQuantile(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2(%v) did not panic", q)
				}
			}()
			NewP2(q)
		}()
	}
}

func TestLogHistogramBinning(t *testing.T) {
	h, err := NewLogHistogram(1, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0.5)  // underflow
	h.Add(150)  // overflow
	h.Add(1)    // first bucket
	h.Add(99.9) // last bucket
	if h.Underflow() != 1 || h.Overflow() != 1 || h.Total() != 4 {
		t.Fatalf("counts wrong: under=%d over=%d total=%d", h.Underflow(), h.Overflow(), h.Total())
	}
	_, _, c0 := h.Bucket(0)
	_, _, c9 := h.Bucket(9)
	if c0 != 1 || c9 != 1 {
		t.Fatalf("bucket counts: first=%d last=%d", c0, c9)
	}
}

func TestLogHistogramBucketBoundsGeometric(t *testing.T) {
	h, _ := NewLogHistogram(1, 1024, 10)
	for i := 0; i < 10; i++ {
		lo, hi, _ := h.Bucket(i)
		if !almostEq(hi/lo, 2, 1e-9) {
			t.Fatalf("bucket %d ratio %v, want 2", i, hi/lo)
		}
	}
}

func TestLogHistogramQuantileEstimate(t *testing.T) {
	h, _ := NewLogHistogram(0.1, 1000, 200)
	r := rng.New(5)
	xs := make([]float64, 0, 100000)
	for i := 0; i < 100000; i++ {
		x := math.Exp(r.NormFloat64()*1.2 + 1)
		h.Add(x)
		xs = append(xs, x)
	}
	for _, q := range []float64{0.05, 0.5, 0.95} {
		exact, _ := Quantile(xs, q)
		got := h.QuantileEstimate(q)
		if math.Abs(got-exact)/exact > 0.05 {
			t.Errorf("hist quantile %v = %v, exact %v", q, got, exact)
		}
	}
	if !math.IsNaN((&LogHistogram{}).QuantileEstimate(0.5)) {
		// A zero-value histogram has no observations.
		t.Error("empty histogram quantile should be NaN")
	}
}

func TestLogHistogramRender(t *testing.T) {
	h, _ := NewLogHistogram(1, 10, 3)
	h.Add(0.5)
	h.Add(2)
	h.Add(20)
	out := h.Render(20)
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestLogHistogramValidation(t *testing.T) {
	if _, err := NewLogHistogram(0, 10, 5); err == nil {
		t.Error("accepted lo=0")
	}
	if _, err := NewLogHistogram(10, 5, 5); err == nil {
		t.Error("accepted hi<lo")
	}
	if _, err := NewLogHistogram(1, 10, 0); err == nil {
		t.Error("accepted n=0")
	}
}

func TestWindowSeries(t *testing.T) {
	s, err := NewWindowSeries(1000)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(0, 2)
	s.Observe(999.9, 4)
	s.Observe(1000, 10)
	s.Observe(2500, 7)
	s.Observe(-5, 100) // ignored
	if s.NumWindows() != 3 {
		t.Fatalf("windows = %d", s.NumWindows())
	}
	m, ok := s.WindowMean(0)
	if !ok || m != 3 {
		t.Fatalf("window 0 mean = %v ok=%v", m, ok)
	}
	m, ok = s.WindowMean(1)
	if !ok || m != 10 {
		t.Fatalf("window 1 mean = %v", m)
	}
	if _, ok := s.WindowMean(5); ok {
		t.Fatal("out-of-range window should report !ok")
	}
	if s.WindowCount(2) != 1 {
		t.Fatalf("window 2 count = %d", s.WindowCount(2))
	}
	times, means := s.Means()
	if len(times) != 3 || len(means) != 3 {
		t.Fatalf("Means lengths %d %d", len(times), len(means))
	}
	if times[0] != 0 || times[1] != 1000 || times[2] != 2000 {
		t.Fatalf("times = %v", times)
	}
}

func TestWindowSeriesValidation(t *testing.T) {
	if _, err := NewWindowSeries(0); err == nil {
		t.Error("accepted zero width")
	}
}

func TestQuantileSortedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		// Quantile is monotone in q and within [min, max].
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1} {
			v := QuantileSorted(xs, q)
			if v < prev || v < xs[0] || v > xs[len(xs)-1] {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWelfordAdd(b *testing.B) {
	var w Welford
	for i := 0; i < b.N; i++ {
		w.Add(float64(i % 1000))
	}
}

func BenchmarkP2Add(b *testing.B) {
	p := NewP2(0.95)
	for i := 0; i < b.N; i++ {
		p.Add(float64(i % 1000))
	}
}

func BenchmarkLogHistogramAdd(b *testing.B) {
	h, _ := NewLogHistogram(0.1, 1000, 100)
	for i := 0; i < b.N; i++ {
		h.Add(float64(i%500) + 0.5)
	}
}
