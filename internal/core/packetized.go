package core

import (
	"fmt"
	"math"
)

// PacketizedPSD computes PSD weights for a *packetized* single-processor
// server under continuous backlog: one processor serves whole requests at
// full speed, and a weighted-fair scheduler (internal/sched's SCFQ, DRR,
// Lottery, …) picks which class's head-of-line request runs next, so a
// backlogged class's queue drains at rate w_i.
//
// Two things change versus the fluid task-server model behind Eq. 17.
// First, a dispatched request runs at full speed (service time x, not
// x/r_i), so the E[1/X_i] = r_i·E[1/X] factor that cancels the rate from
// the waiting time in Theorem 1 is gone; modeling class i as an M/G/1
// queue emptied at rate w_i,
//
//	E[S_i] = E[W_i]·E[1/X] ≈ λ_i·E[X²]·E[1/X] / (2·w_i·(w_i − λ_iE[X]))
//
// Imposing E[S_i] = A·δ_i makes each weight the positive root of
// w² − λE[X]·w − λ·E[X²]·E[1/X]/(2Aδ) = 0, with Σw_i = 1 pinning A by
// bisection (Σw is strictly decreasing in A).
//
// Second — and decisively — the per-class drain-rate-w_i model only holds
// while the class stays backlogged. A work-conserving scheduler at
// moderate load rarely has both classes queued, so reordering alone
// yields only weak differentiation no matter the weights (Kleinrock's
// conservation law bounds what any work-conserving discipline can trade
// between classes). internal/simsrv.RunPacketized demonstrates this
// empirically; it is the reproduction's justification for the paper's
// non-work-conserving capacity partition, which "wastes" surplus to hold
// the slowdown gap open at every load. Use PacketizedPSD when the server
// genuinely operates near saturation; use the partitioned task-server
// model (core.PSD + simsrv.Run) for load-independent guarantees.
type PacketizedPSD struct{}

// Name implements Allocator.
func (PacketizedPSD) Name() string { return "ppsd" }

// Allocate implements Allocator.
func (PacketizedPSD) Allocate(classes []Class, w Workload) (Allocation, error) {
	rho, err := validateClasses(classes, w)
	if err != nil {
		return Allocation{}, err
	}
	// Per-class quadratic coefficient: λ_i·E[X²]·E[1/X]/2 (the only
	// difference from the PDD baseline's λ_i·E[X²]/2).
	coeff := make([]float64, len(classes))
	for i, c := range classes {
		coeff[i] = c.Lambda * w.SecondMoment * w.InverseMoment / 2
	}
	rates, err := solveQuadraticShares(classes, w, coeff)
	if err != nil {
		return Allocation{}, err
	}
	// Predicted slowdowns under the packetized model.
	sl := make([]float64, len(classes))
	for i, c := range classes {
		if c.Lambda == 0 {
			continue
		}
		surplus := rates[i] * (rates[i] - c.Lambda*w.MeanSize)
		if surplus <= 0 {
			sl[i] = math.Inf(1)
			continue
		}
		sl[i] = coeff[i] / surplus
	}
	return Allocation{Rates: rates, ExpectedSlowdowns: sl, Utilization: rho}, nil
}

// PacketizedSlowdown predicts the mean slowdown of class i on a
// packetized weighted server: λ·E[X²]·E[1/X] / (2·w·(w − λE[X])).
func PacketizedSlowdown(lambda float64, w Workload, weight float64) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if lambda == 0 {
		return 0, nil
	}
	if lambda < 0 || !(weight > 0) {
		return 0, fmt.Errorf("%w: lambda=%v weight=%v", ErrInfeasible, lambda, weight)
	}
	surplus := weight - lambda*w.MeanSize
	if surplus <= 0 {
		return math.Inf(1), nil
	}
	return lambda * w.SecondMoment * w.InverseMoment / (2 * weight * surplus), nil
}

// solveQuadraticShares finds shares w_i = (b_i + √(b_i² + 4·coeff_i/(Aδ_i)))/2
// summing to 1, where b_i = λ_iE[X]. Shared by the PDD baseline and
// PacketizedPSD — both impose a per-class metric of the form
// coeff_i/(w_i(w_i − b_i)) = A·δ_i.
func solveQuadraticShares(classes []Class, w Workload, coeff []float64) ([]float64, error) {
	active := 0
	for _, c := range classes {
		if c.Lambda > 0 {
			active++
		}
	}
	rates := make([]float64, len(classes))
	if active == 0 {
		for i := range rates {
			rates[i] = 1 / float64(len(classes))
		}
		return rates, nil
	}
	ratesFor := func(a float64) ([]float64, float64) {
		rs := make([]float64, len(classes))
		total := 0.0
		for i, c := range classes {
			if c.Lambda == 0 {
				continue
			}
			b := c.Lambda * w.MeanSize
			q := coeff[i] / (a * c.Delta)
			rs[i] = (b + math.Sqrt(b*b+4*q)) / 2
			total += rs[i]
		}
		return rs, total
	}
	lo, hi := 1e-12, 1.0
	for {
		if _, total := ratesFor(hi); total <= 1 {
			break
		}
		hi *= 2
		if hi > 1e18 {
			return nil, fmt.Errorf("%w: share bisection failed to bracket", ErrInfeasible)
		}
	}
	for iter := 0; iter < 200; iter++ {
		mid := math.Sqrt(lo * hi)
		if _, total := ratesFor(mid); total > 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	final, total := ratesFor(hi)
	if total > 0 && total < 1 {
		residual := 1 - total
		for i := range final {
			if classes[i].Lambda > 0 {
				final[i] += residual * final[i] / total
			}
		}
	}
	copy(rates, final)
	return rates, nil
}

var _ Allocator = PacketizedPSD{}
