// Command psdbench measures end-to-end simulation throughput and writes
// a machine-readable baseline (BENCH_psd.json by default). The committed
// baseline is the repo's performance trajectory: regenerate it after any
// engine change and compare events_per_sec against the previous commit.
//
// Each scenario runs full paper-fidelity replications (10,000 tu warmup +
// 60,000 tu measured, §4.1) single-threaded, so events_per_sec is a
// per-core number directly comparable to BenchmarkReplication.
//
// Usage:
//
//	psdbench                     # writes BENCH_psd.json in the cwd
//	psdbench -runs 16 -o out.json
//	psdbench -o -                # print JSON to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"psd/internal/simsrv"
)

type scenarioResult struct {
	Name           string  `json:"name"`
	Classes        int     `json:"classes"`
	Load           float64 `json:"load"`
	Model          string  `json:"model"`
	Runs           int     `json:"runs"`
	Warmup         float64 `json:"warmup"`
	Horizon        float64 `json:"horizon"`
	Events         uint64  `json:"events"`
	WallSeconds    float64 `json:"wall_seconds"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

type report struct {
	Schema      string           `json:"schema"`
	GeneratedAt string           `json:"generated_at"`
	GoVersion   string           `json:"go_version"`
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	Scenarios   []scenarioResult `json:"scenarios"`
}

type scenario struct {
	name       string
	deltas     []float64
	load       float64
	packetized bool
}

func main() {
	var (
		out     = flag.String("o", "BENCH_psd.json", "output path, or - for stdout")
		runs    = flag.Int("runs", 8, "replications per scenario")
		warmup  = flag.Float64("warmup", 10000, "warmup duration (time units)")
		horizon = flag.Float64("horizon", 60000, "measured duration (time units)")
		seed    = flag.Uint64("seed", 1, "base random seed")
	)
	flag.Parse()

	scenarios := []scenario{
		{name: "2class-load0.6", deltas: []float64{1, 4}, load: 0.6},
		{name: "5class-load0.8", deltas: []float64{1, 2, 4, 8, 16}, load: 0.8},
		{name: "2class-load0.6-packetized", deltas: []float64{1, 4}, load: 0.6, packetized: true},
	}

	rep := report{
		Schema:      "psd-bench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
	}
	for _, sc := range scenarios {
		res, err := runScenario(sc, *runs, *warmup, *horizon, *seed)
		if err != nil {
			fatalf("%s: %v", sc.name, err)
		}
		rep.Scenarios = append(rep.Scenarios, res)
		fmt.Fprintf(os.Stderr, "%-28s %10d events  %8.3fs  %12.0f events/s  %6.1f ns/event  %.4f allocs/event\n",
			res.Name, res.Events, res.WallSeconds, res.EventsPerSec, res.NsPerEvent, res.AllocsPerEvent)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("encode: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func runScenario(sc scenario, runs int, warmup, horizon float64, seed uint64) (scenarioResult, error) {
	cfg := simsrv.EqualLoadConfig(sc.deltas, sc.load, nil)
	cfg.Warmup = warmup
	cfg.Horizon = horizon

	model := "partitioned"
	if sc.packetized {
		model = "packetized-scfq"
	}
	run := func(s uint64) (uint64, error) {
		cfg.Seed = s
		var (
			res *simsrv.Result
			err error
		)
		if sc.packetized {
			res, err = simsrv.RunPacketized(simsrv.PacketizedConfig{Config: cfg})
		} else {
			res, err = simsrv.Run(cfg)
		}
		if err != nil {
			return 0, err
		}
		return res.EventsProcessed, nil
	}

	// One untimed warmup replication so JIT-ish one-time costs (page
	// faults, arena growth) don't pollute the measurement.
	if _, err := run(seed); err != nil {
		return scenarioResult{}, err
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	var events uint64
	start := time.Now()
	for i := 0; i < runs; i++ {
		n, err := run(seed + uint64(i))
		if err != nil {
			return scenarioResult{}, err
		}
		events += n
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)

	return scenarioResult{
		Name:           sc.name,
		Classes:        len(sc.deltas),
		Load:           sc.load,
		Model:          model,
		Runs:           runs,
		Warmup:         warmup,
		Horizon:        horizon,
		Events:         events,
		WallSeconds:    wall,
		EventsPerSec:   float64(events) / wall,
		NsPerEvent:     wall * 1e9 / float64(events),
		AllocsPerEvent: float64(ms1.Mallocs-ms0.Mallocs) / float64(events),
	}, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "psdbench: "+format+"\n", args...)
	os.Exit(1)
}
