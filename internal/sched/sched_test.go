package sched

import (
	"math"
	"testing"

	"psd/internal/dist"
	"psd/internal/rng"
)

// drainShares runs a continuously backlogged scheduler for `rounds`
// dequeues and returns the fraction of *work* served per class.
func drainShares(t *testing.T, s Scheduler, weights []float64, sizes dist.Distribution, rounds int, seed uint64) []float64 {
	t.Helper()
	if err := s.SetWeights(weights); err != nil {
		t.Fatal(err)
	}
	src := rng.New(seed)
	classes := len(weights)
	// Keep EVERY class individually backlogged (a share test is only
	// meaningful when the scheduler always has a choice); track per-class
	// occupancy externally since Scheduler exposes only total backlog.
	occupancy := make([]int, classes)
	served := make([]float64, classes)
	total := 0.0
	for i := 0; i < rounds; i++ {
		for c := 0; c < classes; c++ {
			for occupancy[c] < 8 {
				s.Enqueue(Job{Class: c, Size: sizes.Sample(src)})
				occupancy[c]++
			}
		}
		j, ok := s.Dequeue()
		if !ok {
			t.Fatal("dequeue returned idle with backlog")
		}
		occupancy[j.Class]--
		served[j.Class] += j.Size
		total += j.Size
	}
	for c := range served {
		served[c] /= total
	}
	return served
}

func unit(t *testing.T) dist.Distribution {
	t.Helper()
	d, err := dist.NewDeterministic(1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSCFQSharesUniformSizes(t *testing.T) {
	weights := []float64{0.5, 0.3, 0.2}
	shares := drainShares(t, NewSCFQ(3), weights, unit(t), 30000, 1)
	for c, w := range weights {
		if math.Abs(shares[c]-w) > 0.02 {
			t.Errorf("class %d share %v, want %v", c, shares[c], w)
		}
	}
}

func TestSCFQSharesHeavyTailedSizes(t *testing.T) {
	weights := []float64{0.7, 0.3}
	shares := drainShares(t, NewSCFQ(2), weights, dist.PaperDefault(), 60000, 2)
	for c, w := range weights {
		if math.Abs(shares[c]-w) > 0.05 {
			t.Errorf("class %d share %v, want %v (size-aware discipline)", c, shares[c], w)
		}
	}
}

func TestDRRShares(t *testing.T) {
	d, err := NewDRR(3, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	weights := []float64{0.6, 0.3, 0.1}
	shares := drainShares(t, d, weights, dist.PaperDefault(), 60000, 3)
	for c, w := range weights {
		if math.Abs(shares[c]-w) > 0.05 {
			t.Errorf("class %d share %v, want %v", c, shares[c], w)
		}
	}
}

func TestDRRQuantumValidation(t *testing.T) {
	if _, err := NewDRR(2, 0); err == nil {
		t.Fatal("accepted zero quantum")
	}
}

func TestSmoothWRRCountShares(t *testing.T) {
	// WRR equalizes counts: with unit sizes, work shares equal weights.
	weights := []float64{0.5, 0.25, 0.25}
	shares := drainShares(t, NewSmoothWRR(3), weights, unit(t), 20000, 4)
	for c, w := range weights {
		if math.Abs(shares[c]-w) > 0.02 {
			t.Errorf("class %d share %v, want %v", c, shares[c], w)
		}
	}
}

func TestSmoothWRRSizeObliviousness(t *testing.T) {
	// With heavy-tailed sizes the count-based WRR still hits count
	// shares but the *work* shares wander; document the limitation by
	// asserting only the count shares.
	s := NewSmoothWRR(2)
	if err := s.SetWeights([]float64{0.75, 0.25}); err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	sizes := dist.PaperDefault()
	counts := [2]int{}
	occupancy := [2]int{}
	for i := 0; i < 40000; i++ {
		for c := 0; c < 2; c++ {
			for occupancy[c] < 8 {
				s.Enqueue(Job{Class: c, Size: sizes.Sample(src)})
				occupancy[c]++
			}
		}
		j, ok := s.Dequeue()
		if !ok {
			t.Fatal("idle with backlog")
		}
		occupancy[j.Class]--
		counts[j.Class]++
	}
	frac := float64(counts[0]) / float64(counts[0]+counts[1])
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("count share %v, want 0.75", frac)
	}
}

func TestLotteryShares(t *testing.T) {
	l := NewLottery(2, rng.New(99))
	weights := []float64{0.8, 0.2}
	shares := drainShares(t, l, weights, unit(t), 50000, 6)
	for c, w := range weights {
		if math.Abs(shares[c]-w) > 0.02 {
			t.Errorf("class %d share %v, want %v", c, shares[c], w)
		}
	}
}

func TestStrictPriorityOrdering(t *testing.T) {
	s := NewStrictPriority(3)
	if err := s.SetWeights([]float64{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	s.Enqueue(Job{Class: 2, Size: 1})
	s.Enqueue(Job{Class: 0, Size: 1})
	s.Enqueue(Job{Class: 1, Size: 1})
	s.Enqueue(Job{Class: 0, Size: 1})
	want := []int{0, 0, 1, 2}
	for i, cls := range want {
		j, ok := s.Dequeue()
		if !ok || j.Class != cls {
			t.Fatalf("dequeue %d: got %+v ok=%v, want class %d", i, j, ok, cls)
		}
	}
	if _, ok := s.Dequeue(); ok {
		t.Fatal("empty scheduler should report idle")
	}
}

func TestGlobalFCFSOrder(t *testing.T) {
	g := NewGlobalFCFS(2)
	if err := g.SetWeights([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		g.Enqueue(Job{Class: i % 2, Size: 1, Payload: i})
	}
	for i := 0; i < 5; i++ {
		j, ok := g.Dequeue()
		if !ok || j.Payload.(int) != i {
			t.Fatalf("FCFS order violated at %d: %v", i, j.Payload)
		}
	}
}

func allSchedulers(classes int) []Scheduler {
	scheds := []Scheduler{
		NewSCFQ(classes), NewSmoothWRR(classes), NewLottery(classes, rng.New(1)),
		NewStrictPriority(classes), NewGlobalFCFS(classes),
	}
	d, _ := NewDRR(classes, 1)
	return append(scheds, d)
}

func TestWeightValidation(t *testing.T) {
	for _, s := range allSchedulers(2) {
		if err := s.SetWeights([]float64{0.5}); err == nil {
			t.Errorf("%s: accepted wrong length", s.Name())
		}
		if err := s.SetWeights([]float64{0.5, 0}); err == nil {
			t.Errorf("%s: accepted zero weight", s.Name())
		}
		if err := s.SetWeights([]float64{0.5, -1}); err == nil {
			t.Errorf("%s: accepted negative weight", s.Name())
		}
	}
}

func TestEmptyDequeues(t *testing.T) {
	for _, s := range allSchedulers(2) {
		if j, ok := s.Dequeue(); ok {
			t.Errorf("%s: empty dequeue returned %+v", s.Name(), j)
		}
		if s.Backlog() != 0 {
			t.Errorf("%s: backlog %d on empty", s.Name(), s.Backlog())
		}
	}
}

func TestBacklogAccounting(t *testing.T) {
	for _, s := range allSchedulers(3) {
		if err := s.SetWeights([]float64{0.4, 0.3, 0.3}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 9; i++ {
			s.Enqueue(Job{Class: i % 3, Size: 0.5})
		}
		if s.Backlog() != 9 {
			t.Errorf("%s: backlog %d, want 9", s.Name(), s.Backlog())
		}
		for i := 8; i >= 0; i-- {
			if _, ok := s.Dequeue(); !ok {
				t.Fatalf("%s: premature idle at %d remaining", s.Name(), i+1)
			}
			if s.Backlog() != i {
				t.Fatalf("%s: backlog %d, want %d", s.Name(), s.Backlog(), i)
			}
		}
	}
}

// TestResetRestoresFreshBehavior: after churning jobs through a
// scheduler, Reset must make it behave exactly like a freshly constructed
// instance (SCFQ's deterministic disciplines compared dequeue-for-dequeue
// against a pristine twin on an identical workload).
func TestResetRestoresFreshBehavior(t *testing.T) {
	build := map[string]func() Scheduler{
		"scfq": func() Scheduler { return NewSCFQ(3) },
		"wrr":  func() Scheduler { return NewSmoothWRR(3) },
		"drr": func() Scheduler {
			d, err := NewDRR(3, 2)
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"priority": func() Scheduler { return NewStrictPriority(3) },
		"fcfs":     func() Scheduler { return NewGlobalFCFS(3) },
	}
	weights := []float64{0.5, 0.3, 0.2}
	feed := func(s Scheduler, seed uint64) []int {
		if err := s.SetWeights(weights); err != nil {
			t.Fatal(err)
		}
		src := rng.New(seed)
		sizes := dist.PaperDefault()
		var order []int
		for i := 0; i < 500; i++ {
			s.Enqueue(Job{Class: i % 3, Size: sizes.Sample(src)})
			if i%3 == 2 {
				j, ok := s.Dequeue()
				if !ok {
					t.Fatal("idle with backlog")
				}
				order = append(order, j.Class)
			}
		}
		for s.Backlog() > 0 {
			j, _ := s.Dequeue()
			order = append(order, j.Class)
		}
		return order
	}
	for name, mk := range build {
		used := mk()
		feed(used, 1) // churn with a different stream, then reset
		used.Reset()
		got := feed(used, 2)
		want := feed(mk(), 2)
		if len(got) != len(want) {
			t.Fatalf("%s: reset run length %d vs fresh %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: dequeue %d diverged after Reset: class %d vs %d", name, i, got[i], want[i])
			}
		}
	}
}

// TestRingDropsPayloadReferences: popped and reset slots must not pin the
// Payload, or long-lived arenas leak caller context objects.
func TestRingDropsPayloadReferences(t *testing.T) {
	var q jobRing
	q.push(Job{Class: 0, Payload: "x"})
	q.push(Job{Class: 0, Payload: "y"})
	q.pop()
	if q.buf[0].Payload != nil {
		t.Fatal("pop left payload reference in slot")
	}
	q.reset()
	for i := range q.buf {
		if q.buf[i].Payload != nil {
			t.Fatalf("reset left payload reference in slot %d", i)
		}
	}
}

func TestGPSFinishTimesSimple(t *testing.T) {
	// Two unit jobs arriving together, weights 1:1 — both finish at 2.
	jobs := []GPSJob{{Class: 0, Size: 1}, {Class: 1, Size: 1}}
	fin, err := GPSFinishTimes(jobs, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fin[0]-2) > 1e-9 || math.Abs(fin[1]-2) > 1e-9 {
		t.Fatalf("finish = %v, want [2 2]", fin)
	}
}

func TestGPSFinishTimesWeighted(t *testing.T) {
	// Weights 3:1, two unit jobs at t=0: class 0 drains at 3/4 →
	// finishes at 4/3; then class 1 (1/4 rate until 4/3, then full):
	// work done by 4/3 = 1/3, remaining 2/3 at full rate → 4/3+2/3 = 2.
	jobs := []GPSJob{{Class: 0, Size: 1}, {Class: 1, Size: 1}}
	fin, err := GPSFinishTimes(jobs, []float64{0.75, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fin[0]-4.0/3) > 1e-9 {
		t.Fatalf("class0 finish = %v, want 4/3", fin[0])
	}
	if math.Abs(fin[1]-2) > 1e-9 {
		t.Fatalf("class1 finish = %v, want 2", fin[1])
	}
}

func TestGPSWorkConservation(t *testing.T) {
	// Sequential arrivals with gaps: total completion of the last job
	// equals total work when there is no idling after its arrival.
	jobs := []GPSJob{
		{Class: 0, Size: 2, Arrival: 0},
		{Class: 1, Size: 1, Arrival: 0.5},
		{Class: 0, Size: 0.5, Arrival: 1},
	}
	fin, err := GPSFinishTimes(jobs, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	last := 0.0
	for _, f := range fin {
		if f > last {
			last = f
		}
	}
	if math.Abs(last-3.5) > 1e-9 {
		t.Fatalf("makespan = %v, want 3.5 (work conserving)", last)
	}
}

func TestGPSValidation(t *testing.T) {
	if _, err := GPSFinishTimes([]GPSJob{{Class: 5, Size: 1}}, []float64{1}); err == nil {
		t.Error("accepted out-of-range class")
	}
	if _, err := GPSFinishTimes([]GPSJob{{Class: 0, Size: 0}}, []float64{1}); err == nil {
		t.Error("accepted zero size")
	}
	if _, err := GPSFinishTimes([]GPSJob{{Class: 0, Size: 1, Arrival: -1}}, []float64{1}); err == nil {
		t.Error("accepted negative arrival")
	}
}

// TestSCFQTracksGPS: serving jobs back-to-back in SCFQ order on a unit
// server must complete every job within a bounded lag of its fluid GPS
// finish time (PGPS bound: one max job; SCFQ: a few max jobs).
func TestSCFQTracksGPS(t *testing.T) {
	src := rng.New(7)
	weights := []float64{0.6, 0.4}
	sizes := dist.MustBoundedPareto(0.1, 10, 1.5) // cap Lmax at 10
	var jobs []GPSJob
	now := 0.0
	for i := 0; i < 400; i++ {
		now += src.ExpFloat64(1.2)
		jobs = append(jobs, GPSJob{Class: int(src.Uint64() % 2), Size: sizes.Sample(src), Arrival: now})
	}
	gpsFin, err := GPSFinishTimes(jobs, weights)
	if err != nil {
		t.Fatal(err)
	}

	// Replay through SCFQ on a packetized unit server.
	s := NewSCFQ(2)
	if err := s.SetWeights(weights); err != nil {
		t.Fatal(err)
	}
	finish := make([]float64, len(jobs))
	clock := 0.0
	next := 0
	inFlightUntil := 0.0
	cur := -1 // index of the job occupying the server, -1 when idle
	for next < len(jobs) || s.Backlog() > 0 || cur >= 0 {
		// Admit arrivals up to the current clock.
		if cur < 0 {
			// Pull arrivals until something is queued.
			for s.Backlog() == 0 && next < len(jobs) {
				clock = math.Max(clock, jobs[next].Arrival)
				for next < len(jobs) && jobs[next].Arrival <= clock {
					j := jobs[next]
					s.Enqueue(Job{Class: j.Class, Size: j.Size, Payload: next})
					next++
				}
			}
			if s.Backlog() == 0 {
				break
			}
			j, _ := s.Dequeue()
			cur = j.Payload.(int)
			inFlightUntil = clock + j.Size
		}
		// Admit arrivals that land while the current job runs.
		for next < len(jobs) && jobs[next].Arrival <= inFlightUntil {
			j := jobs[next]
			s.Enqueue(Job{Class: j.Class, Size: j.Size, Payload: next})
			next++
		}
		clock = inFlightUntil
		finish[cur] = clock
		cur = -1
	}

	lmax := 10.0
	worst := 0.0
	for i := range jobs {
		lag := finish[i] - gpsFin[i]
		if lag > worst {
			worst = lag
		}
	}
	// SCFQ lag bound ~ (N classes)·Lmax; allow 3·Lmax.
	if worst > 3*lmax {
		t.Fatalf("worst SCFQ lag behind GPS = %v > %v", worst, 3*lmax)
	}
}

func BenchmarkSCFQEnqueueDequeue(b *testing.B) {
	s := NewSCFQ(3)
	_ = s.SetWeights([]float64{0.5, 0.3, 0.2})
	src := rng.New(1)
	d := dist.PaperDefault()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Enqueue(Job{Class: i % 3, Size: d.Sample(src)})
		if s.Backlog() > 64 {
			for s.Backlog() > 32 {
				s.Dequeue()
			}
		}
	}
}

func BenchmarkDRRDequeue(b *testing.B) {
	d, _ := NewDRR(3, 2)
	_ = d.SetWeights([]float64{0.5, 0.3, 0.2})
	src := rng.New(1)
	sizes := dist.PaperDefault()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Enqueue(Job{Class: i % 3, Size: sizes.Sample(src)})
		if d.Backlog() > 64 {
			for d.Backlog() > 32 {
				d.Dequeue()
			}
		}
	}
}
