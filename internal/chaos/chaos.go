// Package chaos is the repo's deterministic fault-injection harness: a
// seeded catalog of the failures a production PSD server actually sees —
// stalled workers, service-latency spikes, poisoned estimator inputs
// (NaN/Inf/negative counts and work), non-monotone control clocks,
// dropped or late reallocation ticks, and slow-loris clients — wired into
// the live server (httpsrv.Config.Chaos) and the load generator
// (loadgen.Config.Chaos) through narrow per-site hooks.
//
// Two properties drive the design:
//
//   - Determinism: every fault decision is drawn from an rng stream
//     derived from Config.Seed, one independent stream per injection site
//     (per worker, one for the control tick), so the same seed and the
//     same sequence of opportunities yields bit-identical fault schedules
//     — a chaos run is replayable, and a chaos regression is bisectable.
//   - Zero cost when absent: consumers hold a nil *Injector and guard
//     every hook with one branch; with chaos disabled the hot paths are
//     untouched (the front-door and control-tick allocation gates, and
//     the sim/live parity goldens, hold bit-identically).
//
// Faults only fire while the injector is armed (Arm/Disarm), so a test
// can bracket a mid-run fault phase and then assert recovery. Every
// injected fault is counted (Counts) for assertions and reports.
package chaos

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"psd/internal/rng"
)

// SlowLoris parametrizes client-side connection-exhaustion faults: Conns
// raw TCP connections that send a syntactically valid request preamble
// and then dribble one header byte every Interval, holding server-side
// file descriptors without ever completing a request. Executed by
// loadgen (the server cannot inject its own clients).
type SlowLoris struct {
	// Conns is how many loris connections to hold open (0 disables).
	Conns int
	// Interval is the per-connection gap between dribbled bytes
	// (default 500ms).
	Interval time.Duration
}

// Config selects and parametrizes the fault injectors. The zero value of
// each field disables that fault; probabilities are per opportunity
// (per job for worker faults, per tick for control-plane faults).
type Config struct {
	// Seed derives every fault stream; same seed ⇒ same fault schedule
	// for the same sequence of opportunities.
	Seed uint64

	// StallProb stalls a worker for StallDur before it starts serving a
	// job — the "stuck goroutine" fault: the class loses a task server's
	// capacity while queueing delay builds behind it.
	StallProb float64
	// StallDur is the stall length (default 100ms).
	StallDur time.Duration

	// SpikeProb inflates one job's effective service demand by
	// SpikeFactor — a latency spike the estimator did not see coming
	// (the arrival was accounted at its true size).
	SpikeProb float64
	// SpikeFactor multiplies the job's size (default 8, must be ≥ 1).
	SpikeFactor float64

	// CorruptProb poisons one reallocation tick's input vectors with
	// NaN/Inf/negative counts, work, or slowdowns (cycling through the
	// corruption modes) — the "poisoned estimator" fault the control
	// plane's input guards must reject.
	CorruptProb float64

	// DropProb drops a reallocation tick outright (the loop never runs),
	// and DelayProb runs one late by DelayDur — the stalled-control-loop
	// faults the stale-tick watchdog must catch.
	DropProb  float64
	DelayProb float64
	// DelayDur is the tick delay (default 4× whatever period the
	// consumer runs at is a good choice; there is no universal default —
	// 200ms when unset).
	DelayDur time.Duration

	// JumpProb jumps the admission clock by ±JumpUnits time units at a
	// tick boundary (alternating sign, starting backwards — the harder
	// case for interval-integrating admission controllers).
	JumpProb float64
	// JumpUnits is the jump magnitude in time units (default 100).
	JumpUnits float64

	// Loris configures client-side slow-loris connections (executed by
	// loadgen, counted here).
	Loris SlowLoris
}

func (c Config) withDefaults() Config {
	if c.StallDur == 0 {
		c.StallDur = 100 * time.Millisecond
	}
	if c.SpikeFactor == 0 {
		c.SpikeFactor = 8
	}
	if c.DelayDur == 0 {
		c.DelayDur = 200 * time.Millisecond
	}
	if c.JumpUnits == 0 {
		c.JumpUnits = 100
	}
	if c.Loris.Interval == 0 {
		c.Loris.Interval = 500 * time.Millisecond
	}
	return c
}

func (c Config) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"StallProb", c.StallProb}, {"SpikeProb", c.SpikeProb},
		{"CorruptProb", c.CorruptProb}, {"DropProb", c.DropProb},
		{"DelayProb", c.DelayProb}, {"JumpProb", c.JumpProb},
	} {
		if !(p.v >= 0 && p.v <= 1) {
			return fmt.Errorf("chaos: %s = %v must be in [0, 1]", p.name, p.v)
		}
	}
	if !(c.SpikeFactor >= 1) || math.IsInf(c.SpikeFactor, 0) {
		return fmt.Errorf("chaos: SpikeFactor %v must be finite and >= 1", c.SpikeFactor)
	}
	if c.StallDur < 0 || c.DelayDur < 0 || c.Loris.Interval < 0 {
		return fmt.Errorf("chaos: durations must not be negative")
	}
	if !(c.JumpUnits > 0) || math.IsInf(c.JumpUnits, 0) {
		return fmt.Errorf("chaos: JumpUnits %v must be positive and finite", c.JumpUnits)
	}
	if c.Loris.Conns < 0 {
		return fmt.Errorf("chaos: Loris.Conns %d must not be negative", c.Loris.Conns)
	}
	return nil
}

// Counts is a snapshot of how many faults of each kind have fired since
// the injector was created.
type Counts struct {
	Stalls       int64
	Spikes       int64
	CorruptTicks int64
	DroppedTicks int64
	DelayedTicks int64
	ClockJumps   int64
	LorisBytes   int64
}

// Injector owns the fault streams for one consumer (a server plus its
// load generator). It is created armed; Disarm/Arm bracket fault phases.
// The per-site hook handles (Worker, Tick) are safe to use from their
// owning goroutines; the injector's own state is atomics only.
type Injector struct {
	cfg   Config
	armed atomic.Bool

	stalls, spikes, corrupts, drops, delays, jumps, lorisBytes atomic.Int64

	tick     TickFaults
	tickOnce sync.Once

	parent rng.Source // split root for site streams (read-only after New)
}

// Stream identifiers: each injection site derives its stream from the
// seed with a distinct id, so adding draws at one site never perturbs
// another site's schedule.
const (
	streamTick  = 1
	streamLoris = 2
	// Worker streams use streamWorkerBase + class·maxWorkersPerClass + idx.
	streamWorkerBase   = 1 << 16
	maxWorkersPerClass = 1 << 10
)

// New builds an armed injector for the config.
func New(cfg Config) (*Injector, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	inj := &Injector{cfg: cfg}
	rng.New(cfg.Seed).SplitInto(&inj.parent, 0)
	inj.armed.Store(true)
	return inj, nil
}

// Arm enables fault injection (the constructed state).
func (inj *Injector) Arm() { inj.armed.Store(true) }

// Disarm suspends fault injection: every hook reports "no fault" without
// consuming a draw, so the fault schedule resumes exactly where it
// paused when re-armed.
func (inj *Injector) Disarm() { inj.armed.Store(false) }

// Armed reports whether faults currently fire.
func (inj *Injector) Armed() bool { return inj.armed.Load() }

// Config returns the injector's (defaulted) configuration.
func (inj *Injector) Config() Config { return inj.cfg }

// Counts snapshots the fault counters.
func (inj *Injector) Counts() Counts {
	return Counts{
		Stalls:       inj.stalls.Load(),
		Spikes:       inj.spikes.Load(),
		CorruptTicks: inj.corrupts.Load(),
		DroppedTicks: inj.drops.Load(),
		DelayedTicks: inj.delays.Load(),
		ClockJumps:   inj.jumps.Load(),
		LorisBytes:   inj.lorisBytes.Load(),
	}
}

// countLorisByte accounts one dribbled slow-loris byte (loadgen calls
// this; the stream id exists so future loris variants can draw
// deterministically too).
func (inj *Injector) CountLorisByte() { inj.lorisBytes.Add(1) }

// WorkerFaults is the per-worker fault stream: one per (class, worker
// index), owned by that worker goroutine, with a schedule deterministic
// in the seed and the worker's own job sequence.
type WorkerFaults struct {
	inj *Injector
	src rng.Source
}

// Worker derives the fault stream for class c's worker idx. Call once at
// worker start; the returned handle is not safe for concurrent use
// (workers are single goroutines).
func (inj *Injector) Worker(class, idx int) *WorkerFaults {
	w := &WorkerFaults{inj: inj}
	inj.parent.SplitInto(&w.src, streamWorkerBase+uint64(class)*maxWorkersPerClass+uint64(idx))
	return w
}

// StallFor reports how long the worker should stall before serving its
// next job: zero almost always, StallDur when the stall fault fires.
func (w *WorkerFaults) StallFor() time.Duration {
	if w == nil || !w.inj.armed.Load() || w.inj.cfg.StallProb <= 0 {
		return 0
	}
	if w.src.Float64() >= w.inj.cfg.StallProb {
		return 0
	}
	w.inj.stalls.Add(1)
	return w.inj.cfg.StallDur
}

// InflateSize returns the job's effective service demand: the true size,
// or size·SpikeFactor when the latency-spike fault fires. The estimator
// has already seen the true size — the spike is exactly the modeling
// error the control plane must absorb.
func (w *WorkerFaults) InflateSize(size float64) float64 {
	if w == nil || !w.inj.armed.Load() || w.inj.cfg.SpikeProb <= 0 {
		return size
	}
	if w.src.Float64() >= w.inj.cfg.SpikeProb {
		return size
	}
	w.inj.spikes.Add(1)
	return size * w.inj.cfg.SpikeFactor
}

// TickFaults is the control-plane fault stream. One per injector
// (reallocation loops are single goroutines); a mutex guards the stream
// anyway so tests that tick manually from another goroutine stay
// race-clean — the tick path is far off the request hot path.
type TickFaults struct {
	inj *Injector

	mu         sync.Mutex
	src        rng.Source
	corruptSeq int
	jumpSign   float64
}

// Tick returns the injector's control-tick fault stream.
func (inj *Injector) Tick() *TickFaults {
	inj.tickOnce.Do(func() {
		inj.tick.inj = inj
		inj.tick.jumpSign = -1 // first jump goes backwards: the harder case
		inj.parent.SplitInto(&inj.tick.src, streamTick)
	})
	return &inj.tick
}

// Drop reports whether this reallocation tick should be dropped outright.
func (t *TickFaults) Drop() bool {
	if t == nil || !t.inj.armed.Load() || t.inj.cfg.DropProb <= 0 {
		return false
	}
	t.mu.Lock()
	hit := t.src.Float64() < t.inj.cfg.DropProb
	t.mu.Unlock()
	if hit {
		t.inj.drops.Add(1)
	}
	return hit
}

// Delay reports how late this tick should run (0: on time).
func (t *TickFaults) Delay() time.Duration {
	if t == nil || !t.inj.armed.Load() || t.inj.cfg.DelayProb <= 0 {
		return 0
	}
	t.mu.Lock()
	hit := t.src.Float64() < t.inj.cfg.DelayProb
	t.mu.Unlock()
	if !hit {
		return 0
	}
	t.inj.delays.Add(1)
	return t.inj.cfg.DelayDur
}

// ClockJump returns the admission-clock jump for this tick in time units
// (0: none). Jumps alternate sign starting backwards, exercising both
// the non-monotone-clock guards and credit-accrual capping.
func (t *TickFaults) ClockJump() float64 {
	if t == nil || !t.inj.armed.Load() || t.inj.cfg.JumpProb <= 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.src.Float64() >= t.inj.cfg.JumpProb {
		return 0
	}
	jump := t.jumpSign * t.inj.cfg.JumpUnits
	t.jumpSign = -t.jumpSign
	t.inj.jumps.Add(1)
	return jump
}

// Corrupt poisons the tick's input vectors in place with probability
// CorruptProb and reports whether it did. The corruption cycles through
// the estimator-poison catalog — NaN count, negative count, +Inf work,
// NaN work, -Inf slowdown, negative slowdown — on a victim class drawn
// from the stream, so a sustained corruption phase exercises every guard.
func (t *TickFaults) Corrupt(counts, work, slowdowns []float64) bool {
	if t == nil || !t.inj.armed.Load() || t.inj.cfg.CorruptProb <= 0 || len(counts) == 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.src.Float64() >= t.inj.cfg.CorruptProb {
		return false
	}
	victim := t.src.Intn(len(counts))
	switch t.corruptSeq % 6 {
	case 0:
		counts[victim] = math.NaN()
	case 1:
		counts[victim] = -1
	case 2:
		work[victim] = math.Inf(1)
	case 3:
		work[victim] = math.NaN()
	case 4:
		if len(slowdowns) > victim {
			slowdowns[victim] = math.Inf(-1)
		} else {
			counts[victim] = math.Inf(1)
		}
	case 5:
		if len(slowdowns) > victim {
			slowdowns[victim] = -2
		} else {
			work[victim] = -3
		}
	}
	t.corruptSeq++
	t.inj.corrupts.Add(1)
	return true
}
