package core

import (
	"math"
	"testing"
	"testing/quick"

	"psd/internal/dist"
)

func wl(t testing.TB, d dist.Distribution) Workload {
	t.Helper()
	w, err := WorkloadFromDist(d)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestHPSDCollapsesToPSDForSharedLaw: with one shared distribution the
// heterogeneous allocator must equal Eq. 17 exactly.
func TestHPSDCollapsesToPSDForSharedLaw(t *testing.T) {
	w := paperWorkload(t)
	f := func(rawRho, rawD2 float64) bool {
		rho := 0.05 + math.Mod(math.Abs(rawRho), 1)*0.9
		d2 := 1 + math.Mod(math.Abs(rawD2), 1)*7
		classes := equalLoadClasses([]float64{1, d2}, rho, w)
		a1, err1 := PSD{}.Allocate(classes, w)
		a2, err2 := HeterogeneousPSD{}.Allocate(classes, w)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range classes {
			if relErr(a1.Rates[i], a2.Rates[i]) > 1e-9 {
				return false
			}
			if relErr(a1.ExpectedSlowdowns[i], a2.ExpectedSlowdowns[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestHPSDAchievesRatiosAcrossLaws: with genuinely different per-class
// size distributions, slowdowns evaluated by Theorem 1 under the
// generalized rates sit exactly in ratio δ.
func TestHPSDAchievesRatiosAcrossLaws(t *testing.T) {
	bp := wl(t, dist.PaperDefault())
	uni := wl(t, must(dist.NewUniform(0.2, 3)))
	det := wl(t, must(dist.NewDeterministic(0.8)))
	workloads := []Workload{bp, uni, det}
	classes := []Class{
		{Delta: 1, Lambda: 0.2 / bp.MeanSize * 0.8},
		{Delta: 2, Lambda: 0.2 / uni.MeanSize * 0.8},
		{Delta: 3, Lambda: 0.2 / det.MeanSize * 0.8},
	}
	alloc, err := HeterogeneousPSD{}.AllocatePerClass(classes, workloads)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range alloc.Rates {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("rates sum to %v", sum)
	}
	sl, err := SlowdownUnderRatesPerClass(classes, workloads, alloc.Rates)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(classes); i++ {
		got := sl[i] / sl[0]
		want := classes[i].Delta
		if relErr(got, want) > 1e-9 {
			t.Errorf("class %d ratio %v, want %v", i, got, want)
		}
	}
	// Eq. 18 analogue matches the direct evaluation.
	for i := range classes {
		if relErr(alloc.ExpectedSlowdowns[i], sl[i]) > 1e-9 {
			t.Errorf("class %d predicted %v vs direct %v", i, alloc.ExpectedSlowdowns[i], sl[i])
		}
	}
}

// TestPSDSharedAllocatorFailsAcrossLaws demonstrates why the
// generalization matters: handing the shared-law allocator the wrong
// moments yields materially non-proportional slowdowns on heterogeneous
// traffic.
func TestPSDSharedAllocatorFailsAcrossLaws(t *testing.T) {
	bp := wl(t, dist.PaperDefault())
	// Class 2's true law is 10× larger jobs.
	big := wl(t, must(dist.NewUniform(2, 6)))
	workloads := []Workload{bp, big}
	classes := []Class{
		{Delta: 1, Lambda: 0.25 / bp.MeanSize},
		{Delta: 2, Lambda: 0.25 / big.MeanSize},
	}
	// The shared-law allocator believes everything is Bounded Pareto.
	alloc, err := PSD{}.Allocate(classes, bp)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := SlowdownUnderRatesPerClass(classes, workloads, alloc.Rates)
	if err != nil {
		t.Fatal(err)
	}
	got := sl[1] / sl[0]
	if !math.IsInf(got, 1) && relErr(got, 2) < 0.25 {
		t.Fatalf("shared-law allocation accidentally achieved the target on heterogeneous traffic (ratio %v)", got)
	}
	// The heterogeneous allocator fixes it.
	halloc, err := HeterogeneousPSD{}.AllocatePerClass(classes, workloads)
	if err != nil {
		t.Fatal(err)
	}
	hsl, err := SlowdownUnderRatesPerClass(classes, workloads, halloc.Rates)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(hsl[1]/hsl[0], 2) > 1e-9 {
		t.Fatalf("heterogeneous allocation ratio %v, want 2", hsl[1]/hsl[0])
	}
}

func TestHPSDValidation(t *testing.T) {
	w := paperWorkload(t)
	if _, err := (HeterogeneousPSD{}).AllocatePerClass(nil, nil); err == nil {
		t.Error("accepted empty classes")
	}
	if _, err := (HeterogeneousPSD{}).AllocatePerClass(
		[]Class{{Delta: 1, Lambda: 0.1}}, []Workload{}); err == nil {
		t.Error("accepted mismatched workloads")
	}
	over := []Class{{Delta: 1, Lambda: 10 / w.MeanSize}}
	if _, err := (HeterogeneousPSD{}).AllocatePerClass(over, []Workload{w}); err == nil {
		t.Error("accepted overload")
	}
	bad := []Class{{Delta: 0, Lambda: 0.1}}
	if _, err := (HeterogeneousPSD{}).AllocatePerClass(bad, []Workload{w}); err == nil {
		t.Error("accepted zero delta")
	}
}

func TestHPSDAllIdle(t *testing.T) {
	w := paperWorkload(t)
	classes := []Class{{Delta: 1, Lambda: 0}, {Delta: 2, Lambda: 0}}
	alloc, err := HeterogeneousPSD{}.AllocatePerClass(classes, []Workload{w, w})
	if err != nil {
		t.Fatal(err)
	}
	if relErr(alloc.Rates[0], 0.5) > 1e-12 {
		t.Fatalf("idle split = %v", alloc.Rates)
	}
}

func TestSlowdownUnderRatesPerClassEdgeCases(t *testing.T) {
	w := paperWorkload(t)
	classes := []Class{{Delta: 1, Lambda: 0.5 / w.MeanSize}, {Delta: 2, Lambda: 0}}
	sl, err := SlowdownUnderRatesPerClass(classes, []Workload{w, w}, []float64{0.05, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(sl[0], 1) {
		t.Error("starved class should be +Inf")
	}
	if sl[1] != 0 {
		t.Error("idle class should be 0")
	}
	if _, err := SlowdownUnderRatesPerClass(classes, []Workload{w}, []float64{1, 0}); err == nil {
		t.Error("accepted mismatched workload count")
	}
}

func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
