// HTTP server demo: the PSD strategy on a real net/http server, driven by
// an in-process load generator.
//
// The server classifies requests (?class=), queues them per class, and
// serves each class with a task-server goroutine paced to its allocated
// rate; rates are recomputed every window from measured load. The load
// generator offers Poisson traffic on both classes for a few seconds,
// then we read back the achieved slowdowns from the server's metrics.
//
// Run: go run ./examples/httpserver
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"psd/internal/dist"
	"psd/internal/httpsrv"
	"psd/internal/loadgen"
)

func main() {
	// Moderate sizes so the demo's offered load is ~60%. The server's
	// allocator must be told the TRUE size law (Eq. 17 consumes E[X],
	// E[X²], E[1/X]); a mismatched law mis-prices class demand and
	// skews the achieved ratios.
	sizes, err := dist.NewUniform(0.5, 2.5)
	if err != nil {
		log.Fatal(err)
	}

	// 1ms per work unit keeps the demo snappy; production would use the
	// real cost of a work unit.
	server, err := httpsrv.New(httpsrv.Config{
		Deltas:   []float64{1, 2},
		Service:  sizes,
		TimeUnit: time.Millisecond,
		Window:   100, // reallocate every 100ms
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()

	ts := httptest.NewServer(server.Mux())
	defer ts.Close()
	fmt.Printf("PSD server on %s — two classes, deltas (1, 2)\n", ts.URL)

	fmt.Println("driving 5s of Poisson load on both classes…")
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:  ts.URL + "/",
		Lambdas:  []float64{0.2, 0.2}, // per 1ms time unit
		TimeUnit: time.Millisecond,
		Service:  sizes,
		Duration: 5 * time.Second,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	for i, c := range rep.Classes {
		fmt.Printf("class %d: %d completed, mean slowdown %.3f, p95 %.3f, mean latency %.1fms\n",
			i+1, c.Completed, c.MeanSlowdown, c.P95Slowdown, c.MeanLatencyMs)
	}
	fmt.Printf("achieved slowdown ratio class2/class1: %.3f (target 2.0)\n\n", rep.SlowdownRatio(1))

	doc := server.Snapshot()
	fmt.Println("server-side metrics:")
	for i, cm := range doc.Classes {
		fmt.Printf("  class %d: rate %.3f, lambda estimate %.4f/tu, served %d, mean slowdown %.3f\n",
			i+1, cm.Rate, cm.LambdaEstimate, cm.Served, cm.MeanSlowdown)
	}
	fmt.Println("\nShort wall-clock runs are noisy (the paper averages 100 × 60000-tu")
	fmt.Println("replications); expect the ratio near 2 but not pinned to it.")
}
