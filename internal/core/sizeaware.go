package core

// HeSRPTWeights is the rate/weight half of the heSRPT policy (Berg,
// Vesilo & Harchol-Balter, "heSRPT: Parallel Scheduling to Minimize Mean
// Slowdown"): the discipline half — weighted shortest-job-first over the
// packetized server — lives in internal/sched.HeSRPT, and this allocator
// supplies its per-class weights. It delegates to PSD (Eq. 17) so the
// weights carry the same δ-differentiation the rest of the zoo competes
// under, but names itself after the policy and is flagged NeedsSizeInfo
// in the registry: consumers (the sweep engine's policy axis, the CLIs)
// must pair it with the size-aware discipline on the packetized model,
// and the analytic evaluator refuses it — size-aware scheduling has no
// closed form in this repo's M/G_B/1 framework.
type HeSRPTWeights struct{}

// Name implements Allocator.
func (HeSRPTWeights) Name() string { return "hesrpt" }

// Allocate implements Allocator by delegating to PSD.
func (HeSRPTWeights) Allocate(classes []Class, w Workload) (Allocation, error) {
	return PSD{}.Allocate(classes, w)
}

// AllocateInto implements InPlaceAllocator by delegating to PSD.
func (HeSRPTWeights) AllocateInto(dst *Allocation, classes []Class, w Workload) error {
	return PSD{}.AllocateInto(dst, classes, w)
}

var _ InPlaceAllocator = HeSRPTWeights{}
