package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
)

// Flag bits annotating one recorded control tick.
const (
	// FlagAllocFailure marks a tick whose allocation was infeasible; the
	// recorded rates are the retained previous allocation (NaN before any
	// allocation succeeded).
	FlagAllocFailure uint8 = 1 << iota
	// FlagNonPositiveRate marks a successful tick that handed at least
	// one class a rate ≤ 0 — the starvation signal that surfaces
	// downstream as rate-floor clamps (simsrv MinRate, httpsrv pacing
	// floor).
	FlagNonPositiveRate
	// FlagInputRejected marks a tick whose input carried NaN/Inf/negative
	// counts, work, or slowdowns; the corrupt fields were discarded and
	// the loop fell back to its last-good estimates.
	FlagInputRejected
	// FlagStaleTick marks a watchdog record: the reallocation loop missed
	// its deadline and pacing is frozen at the last-good rates shown.
	FlagStaleTick
)

// FlightRecorder is a fixed-size ring of control-plane tick records:
// per-class λ̂ estimates, allocated rates, measured slowdowns and
// effective (post-trim) δ, plus a timestamp and flag bits per tick. It is
// the replayable record of every control decision, hooked into
// control.Loop so the exact same recorder serves the simulator (dump
// after a run, psdsim -flightrec) and the live server (/debug/control).
//
// The record path is allocation-free: one mutex acquisition and four
// slice copies into a preallocated slab. When the ring is full the oldest
// tick is overwritten; Dropped reports how many were lost. Readers
// (Snapshot, WriteJSON) take the same mutex only long enough to copy the
// slab out, so a slow dump consumer can never stall the control loop
// beyond a memcpy.
type FlightRecorder struct {
	mu      sync.Mutex
	classes int
	seq     uint64 // ticks ever recorded
	n       int    // records currently held (≤ capacity)
	next    int    // ring write index
	times   []float64
	flags   []uint8
	slab    []float64 // capacity × classes × 4: λ̂ | rates | slows | effδ
}

// NewFlightRecorder creates a recorder for the given class count holding
// the most recent capacity ticks.
func NewFlightRecorder(classes, capacity int) (*FlightRecorder, error) {
	if classes < 1 || capacity < 1 {
		return nil, fmt.Errorf("obs: flight recorder needs classes >= 1 and capacity >= 1, got %d, %d", classes, capacity)
	}
	fr := &FlightRecorder{}
	fr.Reset(classes, capacity)
	return fr, nil
}

// Reset clears the ring and re-dimensions it, reusing the slab when it is
// already big enough (the arena pattern: one recorder serves thousands of
// simulator replications without reallocating).
func (fr *FlightRecorder) Reset(classes, capacity int) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.classes = classes
	fr.seq = 0
	fr.n = 0
	fr.next = 0
	need := capacity * classes * 4
	if cap(fr.slab) < need {
		fr.slab = make([]float64, need)
	} else {
		fr.slab = fr.slab[:need]
	}
	if cap(fr.times) < capacity {
		fr.times = make([]float64, capacity)
		fr.flags = make([]uint8, capacity)
	} else {
		fr.times = fr.times[:capacity]
		fr.flags = fr.flags[:capacity]
	}
}

// Classes returns the per-tick vector width.
func (fr *FlightRecorder) Classes() int {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.classes
}

// Capacity returns the ring size in ticks.
func (fr *FlightRecorder) Capacity() int {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return len(fr.times)
}

// Len returns the number of ticks currently held.
func (fr *FlightRecorder) Len() int {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.n
}

// Seq returns the total number of ticks ever recorded.
func (fr *FlightRecorder) Seq() uint64 {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.seq
}

// Record appends one tick. Each vector must have Classes() entries or be
// nil (stored as NaN — e.g. slowdowns on a tick without feedback input,
// or rates before the first successful allocation). Allocation-free.
func (fr *FlightRecorder) Record(time float64, flags uint8, lambdas, rates, slowdowns, effDeltas []float64) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	row := fr.slab[fr.next*fr.classes*4 : (fr.next+1)*fr.classes*4]
	fillVec(row[0:fr.classes], lambdas)
	fillVec(row[fr.classes:2*fr.classes], rates)
	fillVec(row[2*fr.classes:3*fr.classes], slowdowns)
	fillVec(row[3*fr.classes:4*fr.classes], effDeltas)
	fr.times[fr.next] = time
	fr.flags[fr.next] = flags
	fr.next = (fr.next + 1) % len(fr.times)
	if fr.n < len(fr.times) {
		fr.n++
	}
	fr.seq++
}

// fillVec copies src into dst, or NaN-fills dst when src is nil. src must
// otherwise match dst's length (a dimension bug, caught loudly).
func fillVec(dst, src []float64) {
	if src == nil {
		for i := range dst {
			dst[i] = math.NaN()
		}
		return
	}
	if len(src) != len(dst) {
		panic(fmt.Sprintf("obs: flight record vector has %d entries, recorder has %d classes", len(src), len(dst)))
	}
	copy(dst, src)
}

// TickRecord is one recorded control tick, oldest-first in Snapshot
// output. The vectors are owned by the caller (copied out of the ring).
type TickRecord struct {
	// Seq is the tick's global sequence number (0-based since the last
	// Reset); Time is the caller-supplied timestamp — control.Loop stamps
	// Seq·Window, the tick's position on the control clock.
	Seq   uint64
	Time  float64
	Flags uint8
	// Lambdas are the λ̂ estimates the allocator saw (oracle values on
	// oracle ticks), Rates the allocation in force after the tick,
	// Slowdowns the measured per-class window means fed to the feedback
	// controller (NaN without feedback or completions), EffDeltas the
	// post-trim δ vector handed to the allocator.
	Lambdas, Rates, Slowdowns, EffDeltas []float64
}

// Snapshot copies the held ticks out, oldest first.
func (fr *FlightRecorder) Snapshot() []TickRecord {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.snapshotLocked()
}

func (fr *FlightRecorder) snapshotLocked() []TickRecord {
	out := make([]TickRecord, fr.n)
	for k := 0; k < fr.n; k++ {
		idx := fr.ringIndex(k)
		row := fr.slab[idx*fr.classes*4 : (idx+1)*fr.classes*4]
		vecs := make([]float64, 4*fr.classes)
		copy(vecs, row)
		out[k] = TickRecord{
			Seq:       fr.seq - uint64(fr.n-k),
			Time:      fr.times[idx],
			Flags:     fr.flags[idx],
			Lambdas:   vecs[0:fr.classes],
			Rates:     vecs[fr.classes : 2*fr.classes],
			Slowdowns: vecs[2*fr.classes : 3*fr.classes],
			EffDeltas: vecs[3*fr.classes : 4*fr.classes],
		}
	}
	return out
}

// ringIndex maps held-record ordinal k (0 = oldest) to a slab row.
func (fr *FlightRecorder) ringIndex(k int) int {
	return (fr.next - fr.n + k + len(fr.times)) % len(fr.times)
}

// WriteJSON dumps the held ticks as one JSON document, oldest first:
//
//	{"classes":2,"capacity":256,"recorded":12,"dropped":0,"ticks":[
//	  {"seq":0,"time":50,"alloc_failure":false,"rate_clamped":false,
//	   "input_rejected":false,"stale_tick":false,
//	   "lambda_hat":[...],"rates":[...],"slowdowns":[null,...],
//	   "effective_deltas":[...]}]}
//
// NaN and ±Inf serialize as null (encoding/json rejects them outright).
// The ring is copied out under the lock and serialized outside it, so a
// slow reader never blocks Record.
func (fr *FlightRecorder) WriteJSON(w io.Writer) error {
	fr.mu.Lock()
	classes := fr.classes
	capacity := len(fr.times)
	seq := fr.seq
	ticks := fr.snapshotLocked()
	fr.mu.Unlock()

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `{"classes":%d,"capacity":%d,"recorded":%d,"dropped":%d,"ticks":[`,
		classes, capacity, seq, seq-uint64(len(ticks)))
	var scratch []byte
	for i := range ticks {
		t := &ticks[i]
		if i > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, `{"seq":%d,"time":`, t.Seq)
		scratch = appendJSONFloat(scratch, bw, t.Time)
		fmt.Fprintf(bw, `,"alloc_failure":%t,"rate_clamped":%t,"input_rejected":%t,"stale_tick":%t`,
			t.Flags&FlagAllocFailure != 0, t.Flags&FlagNonPositiveRate != 0,
			t.Flags&FlagInputRejected != 0, t.Flags&FlagStaleTick != 0)
		writeJSONVec(bw, &scratch, `"lambda_hat"`, t.Lambdas)
		writeJSONVec(bw, &scratch, `"rates"`, t.Rates)
		writeJSONVec(bw, &scratch, `"slowdowns"`, t.Slowdowns)
		writeJSONVec(bw, &scratch, `"effective_deltas"`, t.EffDeltas)
		bw.WriteByte('}')
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// writeJSONVec writes `,key:[v0,v1,...]` with NaN/Inf as null.
func writeJSONVec(bw *bufio.Writer, scratch *[]byte, key string, vec []float64) {
	bw.WriteByte(',')
	bw.WriteString(key)
	bw.WriteString(":[")
	for i, v := range vec {
		if i > 0 {
			bw.WriteByte(',')
		}
		*scratch = appendJSONFloat(*scratch, bw, v)
	}
	bw.WriteByte(']')
}

// appendJSONFloat writes one JSON number (or null for NaN/Inf).
func appendJSONFloat(scratch []byte, bw *bufio.Writer, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		bw.WriteString("null")
		return scratch
	}
	scratch = strconv.AppendFloat(scratch[:0], v, 'g', -1, 64)
	bw.Write(scratch)
	return scratch
}
