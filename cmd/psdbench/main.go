// Command psdbench measures end-to-end simulation throughput and writes
// a machine-readable baseline (BENCH_psd.json by default). The committed
// baseline is the repo's performance trajectory: regenerate it after any
// engine change and compare events_per_sec against the previous commit.
//
// Each simulation scenario runs full paper-fidelity replications
// (10,000 tu warmup + 60,000 tu measured, §4.1) single-threaded through
// one reusable Simulator arena, so events_per_sec is a per-core number
// directly comparable to BenchmarkReplication. The figure-sweep scenario
// instead drives the internal/sweep engine over a reduced-fidelity
// Figure 2 grid and reports replications/sec and allocs/replication —
// the numbers the arena engine exists to improve.
//
// Usage:
//
//	psdbench                     # writes BENCH_psd.json in the cwd
//	psdbench -runs 16 -o out.json
//	psdbench -o -                # print JSON to stdout
//	psdbench -compare BENCH_psd.json            # regression gate (CI)
//	psdbench -compare BENCH_psd.json -compare-tolerance 0.30
//
// In -compare mode the tool exits non-zero when any scenario's
// events_per_sec (or replications/sec, or ticks/sec) falls more than the
// tolerance below the baseline, or when any absolute allocation gate is
// breached: event-driven scenarios must stay under 0.01 allocs/event,
// the figure sweep under 25 allocs/replication, and the control-tick
// scenario (the shared control.Loop in isolation) under 0.01
// allocs/tick. The obs-hotpath scenario gates the observability layer
// the same way on both of its sections: metric-instrumented events at
// 0.01 allocs/event AND flight-recorded control ticks at 0.01
// allocs/tick. The live-contention scenario (schema v4) storms the live
// server's sharded front door in-process at GOMAXPROCS=1 and again at
// GOMAXPROCS=min(NumCPU,8), gating 0.01 allocs/request under contention
// plus a core-aware speedup floor (>= 0.5·P with 4+ cores, >= 1x on
// 2-3 cores, skipped on a single core). The analytic-sweep scenario
// (schema v5) evaluates the figure2-sweep grid through the closed-form
// fast path (internal/analytic): a warm evaluation must stay under 0.01
// allocs/point, and its points/s must beat the DES figure sweep's
// replications/s by at least 100x — both machine-independent ratios, so
// they gate exactly in -compare. The policy-tournament scenario (schema
// v6) runs every policy in the core registry — fluid policies through
// one retained Simulator arena each, size-aware policies through the
// packetized model with a retained scheduler — and gates 0.01
// allocs/replication: registering a policy whose reset or steady state
// allocates fails CI. The allocation gates are
// machine-independent; the throughput comparison is only meaningful
// against a baseline from comparable hardware, so CI pairs a generous
// tolerance with the exact allocation gates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"psd/internal/analytic"
	"psd/internal/control"
	"psd/internal/core"
	"psd/internal/dist"
	"psd/internal/obs"
	"psd/internal/rng"
	"psd/internal/sched"
	"psd/internal/simsrv"
	"psd/internal/sweep"
)

// Allocation gates enforced in -compare mode (and reported always).
const (
	allocsPerEventGate = 0.01
	allocsPerRepGate   = 25.0
	allocsPerTickGate  = 0.01
	allocsPerPointGate = 0.01
	// allocsPerTournamentRepGate is far stricter than the figure-sweep
	// gate: the tournament drives each policy's Simulator arena directly
	// (no sweep engine, no aggregation), so a warm replication of ANY
	// registered policy — ladder and retained scheduler included — must
	// not allocate.
	allocsPerTournamentRepGate = 0.01
	// analyticSpeedupFloor is the minimum points/s-over-reps/s ratio the
	// closed-form path must keep over the DES sweep. Conservative by
	// construction: it compares one analytic point against ONE DES
	// replication, while a published figure point averages many.
	analyticSpeedupFloor = 100.0
)

type scenarioResult struct {
	Name           string  `json:"name"`
	Classes        int     `json:"classes"`
	Load           float64 `json:"load"`
	Model          string  `json:"model"`
	Runs           int     `json:"runs"`
	Warmup         float64 `json:"warmup"`
	Horizon        float64 `json:"horizon"`
	Events         uint64  `json:"events"`
	WallSeconds    float64 `json:"wall_seconds"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// Figure-sweep metrics (zero for event-driven scenarios).
	Replications int     `json:"replications,omitempty"`
	RepsPerSec   float64 `json:"reps_per_sec,omitempty"`
	AllocsPerRep float64 `json:"allocs_per_rep,omitempty"`
	// Control-tick metrics (control-tick scenario only).
	Ticks         int     `json:"ticks,omitempty"`
	TicksPerSec   float64 `json:"ticks_per_sec,omitempty"`
	AllocsPerTick float64 `json:"allocs_per_tick,omitempty"`
	// Live-contention metrics (live-contention scenario only, schema v4):
	// the in-process front-door storm at GOMAXPROCS=StormProcs vs the
	// same storm at GOMAXPROCS=1, on a machine with StormCores CPUs.
	Requests         int     `json:"requests,omitempty"`
	ReqsPerSec       float64 `json:"reqs_per_sec,omitempty"`
	SerialReqsPerSec float64 `json:"serial_reqs_per_sec,omitempty"`
	Speedup          float64 `json:"speedup,omitempty"`
	StormProcs       int     `json:"storm_procs,omitempty"`
	StormCores       int     `json:"storm_cores,omitempty"`
	AllocsPerReq     float64 `json:"allocs_per_req,omitempty"`
	// Analytic-sweep metrics (analytic-sweep scenario only, schema v5):
	// closed-form evaluations of the figure2-sweep grid. Speedup here is
	// points/s over the figure2-sweep scenario's reps/s from the same run.
	Points         int     `json:"points,omitempty"`
	PointsPerSec   float64 `json:"points_per_sec,omitempty"`
	AllocsPerPoint float64 `json:"allocs_per_point,omitempty"`
	// Policy-tournament metrics (policy-tournament scenario only, schema
	// v6): how many registry policies competed; throughput reuses the
	// replication fields above.
	Policies int `json:"policies,omitempty"`
}

type report struct {
	Schema      string `json:"schema"`
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	// GOMAXPROCS and Commit stamp the run's provenance (schema v3): the
	// parallelism the figure sweep ran at and the VCS revision the binary
	// was built from (falling back to `git rev-parse HEAD`, since `go run`
	// builds carry no VCS stamp; "unknown" only outside a work tree).
	GOMAXPROCS int              `json:"gomaxprocs"`
	Commit     string           `json:"commit"`
	Scenarios  []scenarioResult `json:"scenarios"`
}

// buildCommit extracts the VCS revision baked into the binary, falling
// back to asking git directly: `go run` and test binaries are built
// without -buildvcs, which is how every committed baseline ended up
// stamped "unknown".
func buildCommit() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				if s.Value != "" {
					return s.Value
				}
				break
			}
		}
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return "unknown"
}

type scenario struct {
	name             string
	deltas           []float64
	load             float64
	packetized       bool
	trace            bool
	figureSweep      bool
	controlTick      bool
	obsHotpath       bool
	liveContention   bool
	analyticSweep    bool
	policyTournament bool
}

func scenarios() []scenario {
	return []scenario{
		{name: "2class-load0.6", deltas: []float64{1, 4}, load: 0.6},
		{name: "5class-load0.8", deltas: []float64{1, 2, 4, 8, 16}, load: 0.8},
		{name: "8class-load0.9", deltas: []float64{1, 2, 3, 4, 6, 8, 12, 16}, load: 0.9},
		{name: "2class-load0.6-packetized", deltas: []float64{1, 4}, load: 0.6, packetized: true},
		{name: "2class-load0.6-trace", deltas: []float64{1, 2}, load: 0.6, trace: true},
		{name: "figure2-sweep", deltas: []float64{1, 2}, figureSweep: true},
		// analytic-sweep must come after figure2-sweep: its speedup is
		// points/s over that scenario's freshly measured reps/s.
		{name: "analytic-sweep", deltas: []float64{1, 2}, analyticSweep: true},
		{name: "policy-tournament", deltas: []float64{1, 2, 4}, load: 0.7, policyTournament: true},
		{name: "control-tick", deltas: []float64{1, 2, 3, 4, 6, 8, 12, 16}, controlTick: true},
		{name: "obs-hotpath", deltas: []float64{1, 2, 3, 4, 6, 8, 12, 16}, obsHotpath: true},
		{name: "live-contention", deltas: []float64{1, 2, 4, 8}, liveContention: true},
	}
}

func main() {
	var (
		out     = flag.String("o", "BENCH_psd.json", "output path, or - for stdout")
		runs    = flag.Int("runs", 8, "replications per scenario")
		warmup  = flag.Float64("warmup", 10000, "warmup duration (time units)")
		horizon = flag.Float64("horizon", 60000, "measured duration (time units)")
		seed    = flag.Uint64("seed", 1, "base random seed")
		compare = flag.String("compare", "", "baseline JSON to compare against; failures exit non-zero")
		tol     = flag.Float64("compare-tolerance", 0.15, "allowed fractional throughput regression in -compare mode")
	)
	flag.Parse()
	outSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "o" {
			outSet = true
		}
	})

	rep := report{
		Schema:      "psd-bench/v6",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Commit:      buildCommit(),
	}
	for _, sc := range scenarios() {
		res, err := runScenario(sc, *runs, *warmup, *horizon, *seed, rep.Scenarios)
		if err != nil {
			fatalf("%s: %v", sc.name, err)
		}
		rep.Scenarios = append(rep.Scenarios, res)
		if sc.analyticSweep {
			fmt.Fprintf(os.Stderr, "%-28s %10d points  %8.3fs  %12.0f points/s  %7.0fx vs DES  %.4f allocs/point\n",
				res.Name, res.Points, res.WallSeconds, res.PointsPerSec, res.Speedup, res.AllocsPerPoint)
		} else if sc.liveContention {
			fmt.Fprintf(os.Stderr, "%-28s %10d reqs    %8.3fs  %12.0f reqs/s    %5.2fx speedup @%dprocs/%dcores  %.4f allocs/req\n",
				res.Name, res.Requests, res.WallSeconds, res.ReqsPerSec, res.Speedup, res.StormProcs, res.StormCores, res.AllocsPerReq)
		} else if sc.obsHotpath {
			fmt.Fprintf(os.Stderr, "%-28s %10d events  %8.3fs  %12.0f events/s  %.4f allocs/event  %.4f allocs/tick\n",
				res.Name, res.Events, res.WallSeconds, res.EventsPerSec, res.AllocsPerEvent, res.AllocsPerTick)
		} else if sc.controlTick {
			fmt.Fprintf(os.Stderr, "%-28s %10d ticks   %8.3fs  %12.0f ticks/s   %.4f allocs/tick\n",
				res.Name, res.Ticks, res.WallSeconds, res.TicksPerSec, res.AllocsPerTick)
		} else if sc.figureSweep {
			fmt.Fprintf(os.Stderr, "%-28s %10d events  %8.3fs  %12.0f events/s  %6.1f reps/s  %.2f allocs/rep\n",
				res.Name, res.Events, res.WallSeconds, res.EventsPerSec, res.RepsPerSec, res.AllocsPerRep)
		} else if sc.policyTournament {
			fmt.Fprintf(os.Stderr, "%-28s %10d events  %8.3fs  %12.0f events/s  %6.1f reps/s  %2d policies  %.4f allocs/rep\n",
				res.Name, res.Events, res.WallSeconds, res.EventsPerSec, res.RepsPerSec, res.Policies, res.AllocsPerRep)
		} else {
			fmt.Fprintf(os.Stderr, "%-28s %10d events  %8.3fs  %12.0f events/s  %6.1f ns/event  %.4f allocs/event\n",
				res.Name, res.Events, res.WallSeconds, res.EventsPerSec, res.NsPerEvent, res.AllocsPerEvent)
		}
	}

	if *compare != "" {
		failures := compareAgainst(*compare, rep, *tol)
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "psdbench: FAIL %s\n", f)
		}
		if len(failures) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "psdbench: all scenarios within %.0f%% of %s and under allocation gates\n",
			*tol*100, *compare)
		if !outSet {
			return // compare-only run: leave the committed baseline alone
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("encode: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

// compareAgainst checks the fresh report against a committed baseline:
// per-scenario throughput regression beyond tol, plus the absolute
// allocation gates (which apply even to scenarios absent from the
// baseline — new scenarios must be born clean).
func compareAgainst(path string, cur report, tol float64) []string {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatalf("read baseline %s: %v", path, err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parse baseline %s: %v", path, err)
	}
	baseByName := make(map[string]scenarioResult, len(base.Scenarios))
	for _, s := range base.Scenarios {
		baseByName[s.Name] = s
	}
	var failures []string
	// A baseline scenario that no longer runs is itself a failure:
	// otherwise deleting or renaming a scenario silently disables its
	// regression gate.
	curNames := make(map[string]bool, len(cur.Scenarios))
	for _, s := range cur.Scenarios {
		curNames[s.Name] = true
	}
	for _, b := range base.Scenarios {
		if !curNames[b.Name] {
			failures = append(failures, fmt.Sprintf(
				"%s: present in baseline %s but not measured by this binary (scenario removed or renamed; regenerate the baseline deliberately)",
				b.Name, path))
		}
	}
	for _, s := range cur.Scenarios {
		switch s.Model {
		case "figure-sweep":
			if s.AllocsPerRep > allocsPerRepGate {
				failures = append(failures, fmt.Sprintf(
					"%s: %.2f allocs/replication breaches the %.0f gate", s.Name, s.AllocsPerRep, allocsPerRepGate))
			}
		case "analytic-sweep":
			if s.AllocsPerPoint > allocsPerPointGate {
				failures = append(failures, fmt.Sprintf(
					"%s: %.4f allocs/point breaches the %.2f gate (warm closed-form evaluation must not allocate)",
					s.Name, s.AllocsPerPoint, allocsPerPointGate))
			}
			if s.Speedup > 0 && s.Speedup < analyticSpeedupFloor {
				failures = append(failures, fmt.Sprintf(
					"%s: %.0fx speedup over the DES figure sweep, want >= %.0fx (the fast path stopped being fast)",
					s.Name, s.Speedup, analyticSpeedupFloor))
			}
		case "policy-tournament":
			if s.AllocsPerRep > allocsPerTournamentRepGate {
				failures = append(failures, fmt.Sprintf(
					"%s: %.4f allocs/replication breaches the %.2f gate (a registered policy allocates on the warm arena path)",
					s.Name, s.AllocsPerRep, allocsPerTournamentRepGate))
			}
		case "control-tick":
			if s.AllocsPerTick > allocsPerTickGate {
				failures = append(failures, fmt.Sprintf(
					"%s: %.4f allocs/tick breaches the %.2f gate", s.Name, s.AllocsPerTick, allocsPerTickGate))
			}
		case "obs-hotpath":
			// Both gates at once: the instrumented serve path (events) and
			// the instrumented, flight-recorded control tick.
			if s.AllocsPerEvent > allocsPerEventGate {
				failures = append(failures, fmt.Sprintf(
					"%s: %.4f allocs/event breaches the %.2f gate", s.Name, s.AllocsPerEvent, allocsPerEventGate))
			}
			if s.AllocsPerTick > allocsPerTickGate {
				failures = append(failures, fmt.Sprintf(
					"%s: %.4f allocs/tick breaches the %.2f gate", s.Name, s.AllocsPerTick, allocsPerTickGate))
			}
		case "live-contention":
			if s.AllocsPerReq > allocsPerReqGate {
				failures = append(failures, fmt.Sprintf(
					"%s: %.4f allocs/request breaches the %.2f gate (admitted path must not allocate under contention)",
					s.Name, s.AllocsPerReq, allocsPerReqGate))
			}
			if floor, ok := liveSpeedupFloor(s.StormProcs, s.StormCores); !ok {
				fmt.Fprintf(os.Stderr,
					"psdbench: note: %s speedup gate skipped (%d core(s); parallel storm measures only scheduling overhead)\n",
					s.Name, s.StormCores)
			} else if s.Speedup < floor {
				failures = append(failures, fmt.Sprintf(
					"%s: %.2fx speedup at GOMAXPROCS=%d on %d cores, want >= %.2fx (front door no longer scales)",
					s.Name, s.Speedup, s.StormProcs, s.StormCores, floor))
			}
		default:
			if s.AllocsPerEvent > allocsPerEventGate {
				failures = append(failures, fmt.Sprintf(
					"%s: %.4f allocs/event breaches the %.2f gate", s.Name, s.AllocsPerEvent, allocsPerEventGate))
			}
		}
		b, ok := baseByName[s.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "psdbench: note: %s not in baseline (new scenario, throughput unchecked)\n", s.Name)
			continue
		}
		check := func(metric string, baseV, curV float64) {
			if baseV <= 0 {
				return
			}
			if reg := (baseV - curV) / baseV; reg > tol {
				failures = append(failures, fmt.Sprintf(
					"%s: %s regressed %.1f%% (%.0f -> %.0f, tolerance %.0f%%)",
					s.Name, metric, reg*100, baseV, curV, tol*100))
			}
		}
		check("events/s", b.EventsPerSec, s.EventsPerSec)
		switch s.Model {
		case "figure-sweep", "policy-tournament":
			check("reps/s", b.RepsPerSec, s.RepsPerSec)
		case "analytic-sweep":
			check("points/s", b.PointsPerSec, s.PointsPerSec)
		case "control-tick", "obs-hotpath":
			check("ticks/s", b.TicksPerSec, s.TicksPerSec)
		case "live-contention":
			check("reqs/s", b.ReqsPerSec, s.ReqsPerSec)
		}
	}
	return failures
}

// syntheticTrace builds the deterministic 2-class arrival trace used by
// the trace scenario (same construction as the golden determinism test,
// scaled to the bench horizon).
func syntheticTrace(total float64) []simsrv.TraceRequest {
	sz := []float64{0.2, 1.7, 0.4, 3.1, 0.9, 0.15, 6.0, 0.5}
	var trace []simsrv.TraceRequest
	tm := 0.0
	for i := 0; tm < total; i++ {
		tm += 0.35 + float64(i%7)*0.11
		trace = append(trace, simsrv.TraceRequest{Time: tm, Class: i % 2, Size: sz[i%len(sz)]})
	}
	return trace
}

func runScenario(sc scenario, runs int, warmup, horizon float64, seed uint64, prior []scenarioResult) (scenarioResult, error) {
	if sc.figureSweep {
		return runFigureSweep(sc, runs, seed)
	}
	if sc.analyticSweep {
		return runAnalyticSweep(sc, runs, seed, prior)
	}
	if sc.controlTick {
		return runControlTick(sc)
	}
	if sc.obsHotpath {
		return runObsHotpath(sc)
	}
	if sc.liveContention {
		return runLiveContention(sc)
	}
	if sc.policyTournament {
		return runPolicyTournament(sc, runs, seed)
	}
	cfg := simsrv.EqualLoadConfig(sc.deltas, sc.load, nil)
	cfg.Warmup = warmup
	cfg.Horizon = horizon

	model := "partitioned"
	switch {
	case sc.packetized:
		model = "packetized-scfq"
	case sc.trace:
		model = "trace"
	}
	var trace []simsrv.TraceRequest
	if sc.trace {
		trace = syntheticTrace(warmup + horizon)
	}

	var sim simsrv.Simulator
	var res simsrv.Result
	run := func(s uint64) (uint64, error) {
		var err error
		switch {
		case sc.packetized:
			err = sim.ResetPacketized(simsrv.PacketizedConfig{Config: cfg}, s)
		case sc.trace:
			err = sim.ResetTrace(cfg, trace, s)
		default:
			err = sim.Reset(cfg, s)
		}
		if err != nil {
			return 0, err
		}
		if err := sim.RunInto(&res); err != nil {
			return 0, err
		}
		return res.EventsProcessed, nil
	}

	// One untimed warmup replication so one-time costs (page faults,
	// arena growth to the scenario's high-water mark) don't pollute the
	// measurement.
	if _, err := run(seed); err != nil {
		return scenarioResult{}, err
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	var events uint64
	start := time.Now()
	for i := 0; i < runs; i++ {
		n, err := run(seed + uint64(i))
		if err != nil {
			return scenarioResult{}, err
		}
		events += n
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)

	return scenarioResult{
		Name:           sc.name,
		Classes:        len(sc.deltas),
		Load:           sc.load,
		Model:          model,
		Runs:           runs,
		Warmup:         warmup,
		Horizon:        horizon,
		Events:         events,
		WallSeconds:    wall,
		EventsPerSec:   float64(events) / wall,
		NsPerEvent:     wall * 1e9 / float64(events),
		AllocsPerEvent: float64(ms1.Mallocs-ms0.Mallocs) / float64(events),
	}, nil
}

// runFigureSweep drives the Figure 2 scenario grid (load sweep × runs,
// reduced fidelity) through the sweep engine — the workload whose
// per-replication setup and aggregation memory the arena engine
// optimizes. BenchmarkFigureSweep in the root package runs the same grid
// through the full figure-assembly path.
func runFigureSweep(sc scenario, runs int, seed uint64) (scenarioResult, error) {
	const (
		sweepWarmup  = 2000.0
		sweepHorizon = 15000.0
	)
	loads := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	points := make([]sweep.Point, len(loads))
	for i, rho := range loads {
		cfg := simsrv.EqualLoadConfig(sc.deltas, rho, nil)
		cfg.Warmup = sweepWarmup
		cfg.Horizon = sweepHorizon
		cfg.Seed = seed
		points[i] = sweep.Point{Cfg: cfg, Runs: runs}
	}
	reps := len(points) * runs

	// Untimed warmup sweep to populate worker arenas.
	if _, err := sweep.Run(points); err != nil {
		return scenarioResult{}, err
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	aggs, err := sweep.Run(points)
	if err != nil {
		return scenarioResult{}, err
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)
	var events uint64
	for _, agg := range aggs {
		events += agg.EventsProcessed
	}

	return scenarioResult{
		Name:         sc.name,
		Classes:      len(sc.deltas),
		Model:        "figure-sweep",
		Runs:         runs,
		Warmup:       sweepWarmup,
		Horizon:      sweepHorizon,
		Events:       events,
		WallSeconds:  wall,
		EventsPerSec: float64(events) / wall,
		NsPerEvent:   wall * 1e9 / float64(events),
		Replications: reps,
		RepsPerSec:   float64(reps) / wall,
		AllocsPerRep: float64(ms1.Mallocs-ms0.Mallocs) / float64(reps),
	}, nil
}

// runAnalyticSweep measures the closed-form fast path on the exact grid
// runFigureSweep simulates: the Figure 2 load sweep. One untimed pass
// goes through the sweep engine in Auto mode to prove the router really
// collapses every grid point to zero DES events; the timed loop then
// drives the analytic.Evaluator arena directly, many passes over the
// grid, and reports points/s, allocs/point, and the speedup over the
// figure2-sweep scenario's just-measured reps/s. That speedup divides
// two numbers from the same process on the same grid, so it is
// machine-independent and gates at analyticSpeedupFloor in -compare —
// conservatively, since a published figure point costs `runs` DES
// replications but exactly one closed-form evaluation.
func runAnalyticSweep(sc scenario, runs int, seed uint64, prior []scenarioResult) (scenarioResult, error) {
	const (
		sweepWarmup  = 2000.0
		sweepHorizon = 15000.0
		gridPasses   = 40_000
	)
	loads := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	points := make([]sweep.Point, len(loads))
	for i, rho := range loads {
		cfg := simsrv.EqualLoadConfig(sc.deltas, rho, nil)
		cfg.Warmup = sweepWarmup
		cfg.Horizon = sweepHorizon
		cfg.Seed = seed
		points[i] = sweep.Point{Cfg: cfg, Runs: runs}
	}

	// Router proof: in Auto mode this grid must not simulate at all.
	eng := sweep.Engine{Kind: sweep.Auto}
	aggs, err := eng.Run(points)
	if err != nil {
		return scenarioResult{}, err
	}
	for i, agg := range aggs {
		if agg.EventsProcessed != 0 {
			return scenarioResult{}, fmt.Errorf(
				"auto router simulated point %d (load %.1f): %d DES events on an analytic-eligible grid",
				i, loads[i], agg.EventsProcessed)
		}
	}

	var ev analytic.Evaluator
	var res analytic.Evaluation
	if err := ev.EvaluateInto(&res, points[0].Cfg); err != nil { // warm the arena
		return scenarioResult{}, err
	}
	total := gridPasses * len(points)

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for pass := 0; pass < gridPasses; pass++ {
		for i := range points {
			if err := ev.EvaluateInto(&res, points[i].Cfg); err != nil {
				return scenarioResult{}, err
			}
		}
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)

	out := scenarioResult{
		Name:           sc.name,
		Classes:        len(sc.deltas),
		Model:          "analytic-sweep",
		Runs:           runs,
		Warmup:         sweepWarmup,
		Horizon:        sweepHorizon,
		WallSeconds:    wall,
		Points:         total,
		PointsPerSec:   float64(total) / wall,
		AllocsPerPoint: float64(ms1.Mallocs-ms0.Mallocs) / float64(total),
	}
	for _, p := range prior {
		if p.Model == "figure-sweep" && p.RepsPerSec > 0 {
			out.Speedup = out.PointsPerSec / p.RepsPerSec
			break
		}
	}
	return out, nil
}

// runPolicyTournament runs every policy in the core registry head-to-head
// over one mid-load grid point, driving each policy's retained Simulator
// arena directly — no sweep engine, no aggregation — so the measurement
// isolates exactly what registering a policy adds to the hot path. Fluid
// policies replicate through Simulator.Reset; size-aware policies
// (Caps.NeedsSizeInfo) go through the packetized model with a retained
// heSRPT scheduler, mirroring internal/sweep's policy→discipline mapping.
// The downgrading policy's degradation ladder and the heSRPT slot arena
// are both created during the untimed warmup replication and retained, so
// the timed loop gates the whole zoo at allocsPerTournamentRepGate: a new
// policy whose reset or steady state allocates is rejected in -compare.
func runPolicyTournament(sc scenario, runs int, seed uint64) (scenarioResult, error) {
	const (
		tourWarmup  = 2000.0
		tourHorizon = 10000.0
	)
	type lane struct {
		packetized bool
		cfg        simsrv.Config
		pcfg       simsrv.PacketizedConfig
		sim        *simsrv.Simulator
	}
	names := core.Names()
	lanes := make([]lane, 0, len(names))
	for _, name := range names {
		alloc, err := core.Parse(name)
		if err != nil {
			return scenarioResult{}, err
		}
		pol, ok := core.Lookup(name)
		if !ok {
			return scenarioResult{}, fmt.Errorf("policy %q in Names() but not in Lookup()", name)
		}
		cfg := simsrv.EqualLoadConfig(sc.deltas, sc.load, nil)
		cfg.Warmup = tourWarmup
		cfg.Horizon = tourHorizon
		cfg.Allocator = alloc
		ln := lane{cfg: cfg, sim: new(simsrv.Simulator)}
		if pol.Caps.NeedsSizeInfo {
			ln.packetized = true
			var hs *sched.HeSRPT // retained across resets; closure lives outside the timed loop
			ln.pcfg = simsrv.PacketizedConfig{
				Config: cfg,
				NewScheduler: func(classes int, _ *rng.Source) sched.Scheduler {
					if hs == nil {
						hs = sched.NewHeSRPT(classes)
					} else {
						hs.Reset()
					}
					return hs
				},
			}
		}
		lanes = append(lanes, ln)
	}

	var res simsrv.Result
	run := func(ln *lane, s uint64) (uint64, error) {
		var err error
		if ln.packetized {
			err = ln.sim.ResetPacketized(ln.pcfg, s)
		} else {
			err = ln.sim.Reset(ln.cfg, s)
		}
		if err != nil {
			return 0, err
		}
		if err := ln.sim.RunInto(&res); err != nil {
			return 0, err
		}
		return res.EventsProcessed, nil
	}

	// One untimed pass per lane over the exact seed range the timed loop
	// replays: arena growth to each seed's backlog high-water mark, the
	// downgrading policy's ladder, and the heSRPT scheduler all
	// materialize here, so the timed loop measures only the warm path.
	for i := range lanes {
		for r := 0; r < runs; r++ {
			if _, err := run(&lanes[i], seed+uint64(r)); err != nil {
				return scenarioResult{}, fmt.Errorf("%s: %w", names[i], err)
			}
		}
	}

	reps := len(lanes) * runs
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	var events uint64
	start := time.Now()
	for i := range lanes {
		for r := 0; r < runs; r++ {
			n, err := run(&lanes[i], seed+uint64(r))
			if err != nil {
				return scenarioResult{}, fmt.Errorf("%s: %w", names[i], err)
			}
			events += n
		}
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)

	return scenarioResult{
		Name:         sc.name,
		Classes:      len(sc.deltas),
		Load:         sc.load,
		Model:        "policy-tournament",
		Runs:         runs,
		Warmup:       tourWarmup,
		Horizon:      tourHorizon,
		Events:       events,
		WallSeconds:  wall,
		EventsPerSec: float64(events) / wall,
		NsPerEvent:   wall * 1e9 / float64(events),
		Replications: reps,
		RepsPerSec:   float64(reps) / wall,
		AllocsPerRep: float64(ms1.Mallocs-ms0.Mallocs) / float64(reps),
		Policies:     len(lanes),
	}, nil
}

// runControlTick measures the shared control plane in isolation: one
// control.Loop (the exact engine behind every simsrv reallocation window
// and every httpsrv live tick) driven with synthetic window observations,
// feedback on. Reported as ticks/s and allocs/tick; a steady-state tick
// must not allocate at all (allocs/tick gate in -compare), so a
// regression in internal/control fails CI exactly like an event-loop one.
func runControlTick(sc scenario) (scenarioResult, error) {
	const ticks = 2_000_000
	nc := len(sc.deltas)
	w, err := core.WorkloadFromDist(dist.PaperDefault())
	if err != nil {
		return scenarioResult{}, err
	}
	lp, err := control.NewLoop(control.LoopConfig{
		Deltas:    sc.deltas,
		Window:    1000,
		Allocator: core.PSD{},
		Workload:  w,
		Feedback:  true,
	})
	if err != nil {
		return scenarioResult{}, err
	}
	counts := make([]float64, nc)
	work := make([]float64, nc)
	slows := make([]float64, nc)
	tick := func(k int) error {
		for i := 0; i < nc; i++ {
			counts[i] = float64(200 + (k*7+i*13)%120)
			work[i] = counts[i] * w.MeanSize
			slows[i] = sc.deltas[i] * float64(1+(k+i)%3)
		}
		_, err := lp.Tick(control.TickInput{Counts: counts, Work: work, MeasuredSlowdowns: slows})
		return err
	}
	if err := tick(0); err != nil { // warm the loop's buffers
		return scenarioResult{}, err
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for k := 1; k <= ticks; k++ {
		if err := tick(k); err != nil {
			return scenarioResult{}, err
		}
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)

	return scenarioResult{
		Name:          sc.name,
		Classes:       nc,
		Model:         "control-tick",
		Ticks:         ticks,
		WallSeconds:   wall,
		TicksPerSec:   float64(ticks) / wall,
		AllocsPerTick: float64(ms1.Mallocs-ms0.Mallocs) / float64(ticks),
	}, nil
}

// runObsHotpath gates the observability layer's zero-allocation promise
// on both instrumented hot paths:
//
//   - events: per served request the live server touches two per-class
//     histograms (slowdown, latency) and two counters — this section
//     replays that exact touch pattern against a full httpsrv-shaped
//     metric catalog and reports allocs/event;
//   - ticks: the shared control.Loop with a flight recorder attached
//     (the live server's configuration) and feedback on, reporting
//     allocs/tick.
//
// Both must sit at zero; -compare enforces the same gates as the
// uninstrumented scenarios, so wiring metrics into a hot path can never
// silently reintroduce allocation.
func runObsHotpath(sc scenario) (scenarioResult, error) {
	const (
		events = 5_000_000
		ticks  = 1_000_000
	)
	nc := len(sc.deltas)

	// The serve-path section: an httpsrv-shaped registry.
	reg := obs.NewRegistry()
	slow := reg.HistogramVec("bench_slowdown", "", "class", nc, -7, 21)
	lat := reg.HistogramVec("bench_latency_seconds", "", "class", nc, -13, 21)
	served := reg.CounterVec("bench_served_total", "", "class", nc)
	workC := reg.FloatCounterVec("bench_work_total", "", "class", nc)

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for k := 0; k < events; k++ {
		class := k % nc
		v := float64(1+k%97) * 0.125
		slow.At(class).Observe(v)
		lat.At(class).Observe(v * 0.01)
		served.At(class).Inc()
		workC.At(class).Add(v)
	}
	eventWall := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)
	allocsPerEvent := float64(ms1.Mallocs-ms0.Mallocs) / float64(events)

	// The control-tick section: the shared loop, instrumented with a
	// flight recorder exactly as the live server runs it.
	w, err := core.WorkloadFromDist(dist.PaperDefault())
	if err != nil {
		return scenarioResult{}, err
	}
	rec, err := obs.NewFlightRecorder(nc, 256)
	if err != nil {
		return scenarioResult{}, err
	}
	lp, err := control.NewLoop(control.LoopConfig{
		Deltas:    sc.deltas,
		Window:    1000,
		Allocator: core.PSD{},
		Workload:  w,
		Feedback:  true,
		Recorder:  rec,
	})
	if err != nil {
		return scenarioResult{}, err
	}
	counts := make([]float64, nc)
	work := make([]float64, nc)
	slows := make([]float64, nc)
	tick := func(k int) error {
		for i := 0; i < nc; i++ {
			counts[i] = float64(200 + (k*7+i*13)%120)
			work[i] = counts[i] * w.MeanSize
			slows[i] = sc.deltas[i] * float64(1+(k+i)%3)
		}
		_, err := lp.Tick(control.TickInput{Counts: counts, Work: work, MeasuredSlowdowns: slows})
		return err
	}
	if err := tick(0); err != nil { // warm the loop's buffers
		return scenarioResult{}, err
	}
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start = time.Now()
	for k := 1; k <= ticks; k++ {
		if err := tick(k); err != nil {
			return scenarioResult{}, err
		}
	}
	tickWall := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)

	return scenarioResult{
		Name:           sc.name,
		Classes:        nc,
		Model:          "obs-hotpath",
		Events:         events,
		WallSeconds:    eventWall + tickWall,
		EventsPerSec:   float64(events) / eventWall,
		NsPerEvent:     eventWall * 1e9 / float64(events),
		AllocsPerEvent: allocsPerEvent,
		Ticks:          ticks,
		TicksPerSec:    float64(ticks) / tickWall,
		AllocsPerTick:  float64(ms1.Mallocs-ms0.Mallocs) / float64(ticks),
	}, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "psdbench: "+format+"\n", args...)
	os.Exit(1)
}
