package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"psd/internal/dist"
	"psd/internal/queueing"
)

func paperWorkload(t testing.TB) Workload {
	t.Helper()
	w, err := WorkloadFromDist(dist.PaperDefault())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// equalLoadClasses builds n classes with the given deltas, all carrying
// the same per-class load so that total utilization is rho.
func equalLoadClasses(deltas []float64, rho float64, w Workload) []Class {
	n := len(deltas)
	classes := make([]Class, n)
	for i, d := range deltas {
		classes[i] = Class{Delta: d, Lambda: rho / (float64(n) * w.MeanSize)}
	}
	return classes
}

func relErr(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

func TestWorkloadFromDist(t *testing.T) {
	d := dist.PaperDefault()
	w, err := WorkloadFromDist(d)
	if err != nil {
		t.Fatal(err)
	}
	if w.MeanSize != d.Mean() || w.SecondMoment != d.SecondMoment() || w.InverseMoment != d.InverseMoment() {
		t.Fatal("moments not copied")
	}
	exp, _ := dist.NewExponential(1)
	if _, err := WorkloadFromDist(exp); err == nil {
		t.Fatal("exponential workload should be rejected (divergent E[1/X])")
	}
}

func TestWorkloadValidate(t *testing.T) {
	good := Workload{MeanSize: 1, SecondMoment: 2, InverseMoment: 1.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Workload{
		{MeanSize: 0, SecondMoment: 2, InverseMoment: 1},
		{MeanSize: 1, SecondMoment: 0, InverseMoment: 1},
		{MeanSize: 1, SecondMoment: 2, InverseMoment: 0},
		{MeanSize: 2, SecondMoment: 1, InverseMoment: 1}, // Jensen violation
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d accepted invalid workload %+v", i, w)
		}
	}
}

func TestPSDRatesSumToOne(t *testing.T) {
	w := paperWorkload(t)
	f := func(rawRho, rawD2 float64) bool {
		rho := 0.05 + math.Mod(math.Abs(rawRho), 1)*0.9
		d2 := 1 + math.Mod(math.Abs(rawD2), 1)*9
		classes := equalLoadClasses([]float64{1, d2}, rho, w)
		alloc, err := PSD{}.Allocate(classes, w)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, r := range alloc.Rates {
			sum += r
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPSDRatesExceedDemand(t *testing.T) {
	w := paperWorkload(t)
	classes := equalLoadClasses([]float64{1, 2, 3}, 0.9, w)
	alloc, err := PSD{}.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range classes {
		if alloc.Rates[i] <= c.Lambda*w.MeanSize {
			t.Errorf("class %d rate %v does not exceed demand %v", i, alloc.Rates[i], c.Lambda*w.MeanSize)
		}
	}
}

// TestPSDAchievesTargetRatios is the central invariant: slowdowns computed
// by Theorem 1 under the Eq. 17 rates sit exactly in ratio δ_i/δ_j.
func TestPSDAchievesTargetRatios(t *testing.T) {
	w := paperWorkload(t)
	f := func(rawRho, rawD2, rawD3, rawSkew float64) bool {
		rho := 0.05 + math.Mod(math.Abs(rawRho), 1)*0.9
		d2 := 1 + math.Mod(math.Abs(rawD2), 1)*7
		d3 := d2 + math.Mod(math.Abs(rawD3), 1)*7
		skew := 0.2 + math.Mod(math.Abs(rawSkew), 1)*0.6 // class-load imbalance
		l1 := rho * skew / w.MeanSize
		rest := rho * (1 - skew) / (2 * w.MeanSize)
		classes := []Class{
			{Delta: 1, Lambda: l1},
			{Delta: d2, Lambda: rest},
			{Delta: d3, Lambda: rest},
		}
		alloc, err := PSD{}.Allocate(classes, w)
		if err != nil {
			return false
		}
		// Evaluate Theorem 1 directly from the rates (independent of the
		// Eq. 18 shortcut) and check ratios.
		sl, err := SlowdownUnderRates(classes, w, alloc.Rates)
		if err != nil {
			return false
		}
		for i := 1; i < len(classes); i++ {
			want := classes[i].Delta / classes[0].Delta
			got := sl[i] / sl[0]
			if relErr(got, want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestEq18MatchesTheorem1 confirms that the closed-form Eq. 18 prediction
// equals Theorem 1 evaluated at the Eq. 17 rates.
func TestEq18MatchesTheorem1(t *testing.T) {
	w := paperWorkload(t)
	classes := equalLoadClasses([]float64{1, 2, 4}, 0.7, w)
	alloc, err := PSD{}.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := SlowdownUnderRates(classes, w, alloc.Rates)
	if err != nil {
		t.Fatal(err)
	}
	for i := range classes {
		if relErr(alloc.ExpectedSlowdowns[i], direct[i]) > 1e-9 {
			t.Errorf("class %d: Eq18=%v Theorem1=%v", i, alloc.ExpectedSlowdowns[i], direct[i])
		}
	}
}

// TestEq18MatchesQueueingTheorem cross-checks against the independent
// implementation in internal/queueing using the distribution itself.
func TestEq18MatchesQueueingTheorem(t *testing.T) {
	d := dist.PaperDefault()
	w := paperWorkload(t)
	classes := equalLoadClasses([]float64{1, 2}, 0.6, w)
	alloc, err := PSD{}.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range classes {
		q, err := queueing.TaskServerSlowdown(c.Lambda, d, alloc.Rates[i])
		if err != nil {
			t.Fatal(err)
		}
		if relErr(q, alloc.ExpectedSlowdowns[i]) > 1e-9 {
			t.Errorf("class %d: queueing=%v core=%v", i, q, alloc.ExpectedSlowdowns[i])
		}
	}
}

// TestProperty1SlowdownIncreasesWithLoad: paper §3 property 1.
func TestProperty1SlowdownIncreasesWithLoad(t *testing.T) {
	w := paperWorkload(t)
	prev := []float64{-1, -1}
	for _, rho := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		classes := equalLoadClasses([]float64{1, 2}, rho, w)
		alloc, err := PSD{}.Allocate(classes, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range classes {
			if alloc.ExpectedSlowdowns[i] <= prev[i] {
				t.Errorf("rho=%v class %d: slowdown %v not greater than %v",
					rho, i, alloc.ExpectedSlowdowns[i], prev[i])
			}
			prev[i] = alloc.ExpectedSlowdowns[i]
		}
	}
}

// TestProperty2DeltaTradeoff: raising δ_2 raises class 2's slowdown and
// lowers class 1's (paper §3 property 2).
func TestProperty2DeltaTradeoff(t *testing.T) {
	w := paperWorkload(t)
	var prev2, prev1 float64 = -1, math.Inf(1)
	for _, d2 := range []float64{1.5, 2, 4, 8} {
		classes := equalLoadClasses([]float64{1, d2}, 0.6, w)
		alloc, err := PSD{}.Allocate(classes, w)
		if err != nil {
			t.Fatal(err)
		}
		if alloc.ExpectedSlowdowns[1] <= prev2 {
			t.Errorf("delta2=%v: class2 slowdown %v should increase (prev %v)", d2, alloc.ExpectedSlowdowns[1], prev2)
		}
		if alloc.ExpectedSlowdowns[0] >= prev1 {
			t.Errorf("delta2=%v: class1 slowdown %v should decrease (prev %v)", d2, alloc.ExpectedSlowdowns[0], prev1)
		}
		prev2 = alloc.ExpectedSlowdowns[1]
		prev1 = alloc.ExpectedSlowdowns[0]
	}
}

// TestProperty3HigherClassLoadHurtsMore: adding load to the higher class
// (δ=1) raises everyone's slowdown more than adding the same load to the
// lower class (paper §3 property 3).
func TestProperty3HigherClassLoadHurtsMore(t *testing.T) {
	w := paperWorkload(t)
	base := equalLoadClasses([]float64{1, 4}, 0.5, w)
	extra := 0.2 / w.MeanSize // 20 points of extra utilization

	toHigh := []Class{{Delta: 1, Lambda: base[0].Lambda + extra}, base[1]}
	toLow := []Class{base[0], {Delta: 4, Lambda: base[1].Lambda + extra}}

	aHigh, err := PSD{}.Allocate(toHigh, w)
	if err != nil {
		t.Fatal(err)
	}
	aLow, err := PSD{}.Allocate(toLow, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if aHigh.ExpectedSlowdowns[i] <= aLow.ExpectedSlowdowns[i] {
			t.Errorf("class %d: extra high-class load gives %v, extra low-class load gives %v; expected former larger",
				i, aHigh.ExpectedSlowdowns[i], aLow.ExpectedSlowdowns[i])
		}
	}
}

func TestPSDInfeasibleInputs(t *testing.T) {
	w := paperWorkload(t)
	cases := []struct {
		name    string
		classes []Class
	}{
		{"empty", nil},
		{"overload", equalLoadClasses([]float64{1, 2}, 1.05, w)},
		{"exactly one", equalLoadClasses([]float64{1, 2}, 1.0, w)},
		{"bad delta", []Class{{Delta: 0, Lambda: 0.1}}},
		{"negative delta", []Class{{Delta: -1, Lambda: 0.1}}},
		{"negative lambda", []Class{{Delta: 1, Lambda: -0.1}}},
		{"nan lambda", []Class{{Delta: 1, Lambda: math.NaN()}}},
	}
	for _, c := range cases {
		if _, err := (PSD{}).Allocate(c.classes, w); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !errors.Is(err, ErrInfeasible) {
			t.Errorf("%s: error %v not ErrInfeasible", c.name, err)
		}
	}
}

func TestPSDZeroLambdaClass(t *testing.T) {
	w := paperWorkload(t)
	classes := []Class{
		{Delta: 1, Lambda: 0.5 / w.MeanSize},
		{Delta: 2, Lambda: 0},
	}
	alloc, err := PSD{}.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Rates[1] != 0 {
		t.Errorf("idle class rate = %v, want 0", alloc.Rates[1])
	}
	if alloc.ExpectedSlowdowns[1] != 0 {
		t.Errorf("idle class slowdown = %v, want 0", alloc.ExpectedSlowdowns[1])
	}
	if alloc.Rates[0] < 0.999 {
		t.Errorf("active class should get (almost) all capacity, got %v", alloc.Rates[0])
	}
}

func TestPSDAllIdle(t *testing.T) {
	w := paperWorkload(t)
	classes := []Class{{Delta: 1, Lambda: 0}, {Delta: 2, Lambda: 0}}
	alloc, err := PSD{}.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(alloc.Rates[0], 0.5) > 1e-12 || relErr(alloc.Rates[1], 0.5) > 1e-12 {
		t.Errorf("idle split = %v, want even", alloc.Rates)
	}
}

func TestPSDSingleClass(t *testing.T) {
	w := paperWorkload(t)
	classes := []Class{{Delta: 1, Lambda: 0.5 / w.MeanSize}}
	alloc, err := PSD{}.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(alloc.Rates[0], 1) > 1e-12 {
		t.Fatalf("single class rate = %v, want 1", alloc.Rates[0])
	}
	// With the whole server, slowdown must equal Lemma 1 at unit rate.
	want, err := queueing.ExpectedSlowdown(classes[0].Lambda, dist.PaperDefault())
	if err != nil {
		t.Fatal(err)
	}
	if relErr(alloc.ExpectedSlowdowns[0], want) > 1e-9 {
		t.Fatalf("single-class slowdown %v, want %v", alloc.ExpectedSlowdowns[0], want)
	}
}

func TestExpectedSlowdownHelper(t *testing.T) {
	w := paperWorkload(t)
	classes := equalLoadClasses([]float64{1, 2}, 0.5, w)
	alloc, _ := PSD{}.Allocate(classes, w)
	for i := range classes {
		got, err := ExpectedSlowdown(classes, w, i)
		if err != nil {
			t.Fatal(err)
		}
		if relErr(got, alloc.ExpectedSlowdowns[i]) > 1e-12 {
			t.Errorf("class %d helper %v vs alloc %v", i, got, alloc.ExpectedSlowdowns[i])
		}
	}
	if _, err := ExpectedSlowdown(classes, w, 5); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := ExpectedSlowdown(classes, w, -1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestSlowdownUnderRatesOverload(t *testing.T) {
	w := paperWorkload(t)
	classes := equalLoadClasses([]float64{1, 2}, 0.8, w)
	sl, err := SlowdownUnderRates(classes, w, []float64{0.05, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(sl[0], 1) {
		t.Errorf("starved class slowdown = %v, want +Inf", sl[0])
	}
	if math.IsInf(sl[1], 1) {
		t.Errorf("overprovisioned class slowdown should be finite, got %v", sl[1])
	}
	if _, err := SlowdownUnderRates(classes, w, []float64{1}); err == nil {
		t.Error("mismatched rate count accepted")
	}
}

func TestFeasible(t *testing.T) {
	w := paperWorkload(t)
	if !Feasible(equalLoadClasses([]float64{1, 2}, 0.9, w), w) {
		t.Error("rho=0.9 should be feasible")
	}
	if Feasible(equalLoadClasses([]float64{1, 2}, 1.1, w), w) {
		t.Error("rho=1.1 should be infeasible")
	}
}

func TestAllocatorNames(t *testing.T) {
	// Registered policies: names are non-empty, unique, and each factory
	// builds an allocator that answers to its registered name. New
	// policies join the check by registering, not by editing this test.
	seen := make(map[string]bool)
	for _, p := range Policies() {
		if p.Name == "" {
			t.Fatal("registered policy with empty name")
		}
		if seen[p.Name] {
			t.Errorf("duplicate policy name %q", p.Name)
		}
		seen[p.Name] = true
		a := p.New()
		if a == nil {
			t.Fatalf("policy %q factory returned nil", p.Name)
		}
		if a.Name() != p.Name {
			t.Errorf("policy %q factory builds allocator named %q", p.Name, a.Name())
		}
	}
	// Parameterized allocators live outside the registry but still need
	// names for Result provenance.
	st, _ := NewStatic([]float64{1, 1})
	for _, a := range []Allocator{st, MinRate{Base: PSD{}, Min: 1e-4}, HeterogeneousPSD{}} {
		if a.Name() == "" {
			t.Errorf("%T has empty name", a)
		}
	}
}
