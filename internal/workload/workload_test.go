package workload

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"

	"psd/internal/rng"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidationCatchesBadRows(t *testing.T) {
	m := DefaultModel()
	m.Transitions[Home][Browse] += 0.1 // row no longer sums to 1
	if err := m.Validate(); err == nil {
		t.Fatal("accepted bad row sum")
	}
	m2 := DefaultModel()
	m2.Transitions[Exit][Exit] = 0.5
	m2.Transitions[Exit][Home] = 0.5
	if err := m2.Validate(); err == nil {
		t.Fatal("accepted non-absorbing Exit")
	}
	m3 := DefaultModel()
	m3.Service[Home] = nil
	if err := m3.Validate(); err == nil {
		t.Fatal("accepted missing service distribution")
	}
	m4 := DefaultModel()
	m4.ThinkMean = 0
	if err := m4.Validate(); err == nil {
		t.Fatal("accepted zero think time")
	}
}

func TestStateString(t *testing.T) {
	if Home.String() != "home" || Exit.String() != "exit" {
		t.Fatal("state names wrong")
	}
	if !strings.Contains(State(99).String(), "99") {
		t.Fatal("out-of-range state should include the number")
	}
}

func TestGeneratorValidation(t *testing.T) {
	m := DefaultModel()
	src := rng.New(1)
	if _, err := NewGenerator(nil, 1, []float64{1}, src); err == nil {
		t.Error("accepted nil model")
	}
	if _, err := NewGenerator(m, 0, []float64{1}, src); err == nil {
		t.Error("accepted zero session rate")
	}
	if _, err := NewGenerator(m, 1, nil, src); err == nil {
		t.Error("accepted empty class probs")
	}
	if _, err := NewGenerator(m, 1, []float64{0.5, 0.4}, src); err == nil {
		t.Error("accepted probs not summing to 1")
	}
	if _, err := NewGenerator(m, 1, []float64{0.5, -0.5, 1.0}, src); err == nil {
		t.Error("accepted negative prob")
	}
}

func TestGenerateBasicProperties(t *testing.T) {
	g, err := NewGenerator(DefaultModel(), 0.5, []float64{0.5, 0.5}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := g.Generate(5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 {
		t.Fatal("no requests generated")
	}
	if !sort.SliceIsSorted(reqs, func(i, j int) bool { return reqs[i].Time < reqs[j].Time }) {
		t.Fatal("requests not time-sorted")
	}
	for _, r := range reqs {
		if r.Time < 0 || r.Time >= 5000 {
			t.Fatalf("request time %v outside [0, 5000)", r.Time)
		}
		if r.Size <= 0 {
			t.Fatalf("non-positive size: %+v", r)
		}
		if r.Class < 0 || r.Class > 1 {
			t.Fatalf("bad class: %+v", r)
		}
		if r.State == Exit {
			t.Fatalf("Exit state issued a request: %+v", r)
		}
	}
}

func TestGenerateSessionStructure(t *testing.T) {
	g, _ := NewGenerator(DefaultModel(), 0.2, []float64{1}, rng.New(3))
	reqs, _ := g.Generate(10000)
	// Each session starts at Home, and all its requests share one class.
	bySession := map[int][]Request{}
	for _, r := range reqs {
		bySession[r.Session] = append(bySession[r.Session], r)
	}
	if len(bySession) < 100 {
		t.Fatalf("only %d sessions", len(bySession))
	}
	for id, rs := range bySession {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Time < rs[j].Time })
		if rs[0].State != Home {
			t.Fatalf("session %d starts at %v", id, rs[0].State)
		}
		for _, r := range rs[1:] {
			if r.Class != rs[0].Class {
				t.Fatalf("session %d mixes classes", id)
			}
		}
	}
}

func TestMeanRequestsPerSessionMatchesEmpirical(t *testing.T) {
	m := DefaultModel()
	analytic := m.MeanRequestsPerSession()
	if analytic <= 1 {
		t.Fatalf("analytic session length %v suspicious", analytic)
	}
	g, _ := NewGenerator(m, 0.2, []float64{1}, rng.New(4))
	// Long horizon; count only sessions that completed well before it.
	reqs, _ := g.Generate(100000)
	counts := map[int]int{}
	for _, r := range reqs {
		if r.Time < 80000 {
			counts[r.Session]++
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	empirical := float64(total) / float64(len(counts))
	if math.Abs(empirical-analytic)/analytic > 0.1 {
		t.Fatalf("empirical session length %v vs analytic %v", empirical, analytic)
	}
}

func TestClassMixProportions(t *testing.T) {
	g, _ := NewGenerator(DefaultModel(), 1, []float64{0.7, 0.3}, rng.New(5))
	reqs, _ := g.Generate(20000)
	sessions := map[int]int{}
	for _, r := range reqs {
		sessions[r.Session] = r.Class
	}
	count0 := 0
	for _, c := range sessions {
		if c == 0 {
			count0++
		}
	}
	frac := float64(count0) / float64(len(sessions))
	if math.Abs(frac-0.7) > 0.03 {
		t.Fatalf("class 0 session fraction %v, want 0.7", frac)
	}
}

func TestDeterministicStatesHaveConstantSizes(t *testing.T) {
	g, _ := NewGenerator(DefaultModel(), 1, []float64{1}, rng.New(6))
	reqs, _ := g.Generate(5000)
	for _, r := range reqs {
		switch r.State {
		case Home:
			if r.Size != 0.15 {
				t.Fatalf("home size %v, want 0.15 (M/D/1 state)", r.Size)
			}
		case Register:
			if r.Size != 0.25 {
				t.Fatalf("register size %v, want 0.25", r.Size)
			}
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	g, _ := NewGenerator(DefaultModel(), 0.5, []float64{0.6, 0.4}, rng.New(7))
	reqs, _ := g.Generate(2000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(reqs) {
		t.Fatalf("round trip lost requests: %d vs %d", len(back), len(reqs))
	}
	for i := range reqs {
		if reqs[i] != back[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, reqs[i], back[i])
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"",        // no header
		"a,b,c\n", // wrong header
		"time,class,state,size,session\nx,0,home,1,0\n",    // bad time
		"time,class,state,size,session\n1,x,home,1,0\n",    // bad class
		"time,class,state,size,session\n1,0,nowhere,1,0\n", // bad state
		"time,class,state,size,session\n1,0,home,x,0\n",    // bad size
		"time,class,state,size,session\n1,0,home,1,x\n",    // bad session
	}
	for i, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: accepted malformed trace", i)
		}
	}
}

func TestClassRates(t *testing.T) {
	reqs := []Request{
		{Time: 1, Class: 0}, {Time: 2, Class: 0}, {Time: 3, Class: 1},
	}
	rates, err := ClassRates(reqs, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rates[0] != 0.2 || rates[1] != 0.1 {
		t.Fatalf("rates = %v", rates)
	}
	if _, err := ClassRates([]Request{{Class: 5}}, 2, 10); err == nil {
		t.Error("accepted out-of-range class")
	}
	if _, err := ClassRates(nil, 2, 0); err == nil {
		t.Error("accepted zero horizon")
	}
}

func TestSizeMoments(t *testing.T) {
	reqs := []Request{{Size: 1}, {Size: 2}, {Size: 4}}
	mean, second, inverse, err := SizeMoments(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-7.0/3) > 1e-12 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(second-21.0/3) > 1e-12 {
		t.Fatalf("second = %v", second)
	}
	if math.Abs(inverse-(1+0.5+0.25)/3) > 1e-12 {
		t.Fatalf("inverse = %v", inverse)
	}
	if _, _, _, err := SizeMoments(nil); err == nil {
		t.Error("accepted empty trace")
	}
	if _, _, _, err := SizeMoments([]Request{{Size: 0}}); err == nil {
		t.Error("accepted zero size")
	}
}

func TestGenerateHorizonValidation(t *testing.T) {
	g, _ := NewGenerator(DefaultModel(), 1, []float64{1}, rng.New(8))
	if _, err := g.Generate(0); err == nil {
		t.Error("accepted zero horizon")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, _ := NewGenerator(DefaultModel(), 0.5, []float64{1}, rng.New(9))
	b, _ := NewGenerator(DefaultModel(), 0.5, []float64{1}, rng.New(9))
	ra, _ := a.Generate(3000)
	rb, _ := b.Generate(3000)
	if len(ra) != len(rb) {
		t.Fatalf("lengths differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}
