package core

import (
	"fmt"
	"math"
)

// EqualShare splits capacity evenly regardless of demand or δ. It is the
// naive baseline: it neither tracks load nor differentiates, so slowdown
// ratios drift with per-class load. A class whose demand exceeds 1/N is
// unstable under it; Allocate reports that as an error.
type EqualShare struct{}

// Name implements Allocator.
func (EqualShare) Name() string { return "equal" }

// Allocate implements Allocator.
func (a EqualShare) Allocate(classes []Class, w Workload) (Allocation, error) {
	var alloc Allocation
	if err := a.AllocateInto(&alloc, classes, w); err != nil {
		return Allocation{}, err
	}
	return alloc, nil
}

// AllocateInto implements InPlaceAllocator.
func (EqualShare) AllocateInto(dst *Allocation, classes []Class, w Workload) error {
	rho, err := validateClasses(classes, w)
	if err != nil {
		return err
	}
	n := float64(len(classes))
	dst.reserve(len(classes))
	dst.Utilization = rho
	for i, c := range classes {
		dst.Rates[i] = 1 / n
		if c.Lambda*w.MeanSize >= dst.Rates[i] {
			return fmt.Errorf("%w: class %d demand %.4f >= equal share %.4f",
				ErrInfeasible, i, c.Lambda*w.MeanSize, dst.Rates[i])
		}
	}
	return slowdownUnderRatesInto(dst.ExpectedSlowdowns, classes, w, dst.Rates)
}

// DemandProportional gives each class capacity proportional to its demand
// λ_iE[X] — i.e. every class sees the same utilization on its task server.
// It equalizes per-class *utilization*, not slowdown: all classes then
// experience identical expected slowdowns (ratio 1), so it serves as the
// "no differentiation, load-aware" baseline.
type DemandProportional struct{}

// Name implements Allocator.
func (DemandProportional) Name() string { return "demand" }

// Allocate implements Allocator.
func (a DemandProportional) Allocate(classes []Class, w Workload) (Allocation, error) {
	var alloc Allocation
	if err := a.AllocateInto(&alloc, classes, w); err != nil {
		return Allocation{}, err
	}
	return alloc, nil
}

// AllocateInto implements InPlaceAllocator.
func (DemandProportional) AllocateInto(dst *Allocation, classes []Class, w Workload) error {
	rho, err := validateClasses(classes, w)
	if err != nil {
		return err
	}
	dst.reserve(len(classes))
	dst.Utilization = rho
	if rho == 0 {
		for i := range dst.Rates {
			dst.Rates[i] = 1 / float64(len(classes))
		}
	} else {
		for i, c := range classes {
			dst.Rates[i] = c.Lambda * w.MeanSize / rho
		}
	}
	return slowdownUnderRatesInto(dst.ExpectedSlowdowns, classes, w, dst.Rates)
}

// Static applies a fixed, demand-independent weight vector (normalized at
// construction). It models an operator who provisions shares once and
// never adapts; the predictability experiments show its slowdown ratios
// wander with load.
type Static struct {
	weights []float64
}

// NewStatic builds a Static allocator from positive weights (normalized to
// sum 1).
func NewStatic(weights []float64) (*Static, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("%w: no weights", ErrInfeasible)
	}
	sum := 0.0
	for i, w := range weights {
		if !(w > 0) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("%w: weight %d = %v must be positive and finite", ErrInfeasible, i, w)
		}
		sum += w
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / sum
	}
	return &Static{weights: norm}, nil
}

// Name implements Allocator.
func (s *Static) Name() string { return "static" }

// Allocate implements Allocator.
func (s *Static) Allocate(classes []Class, w Workload) (Allocation, error) {
	rho, err := validateClasses(classes, w)
	if err != nil {
		return Allocation{}, err
	}
	if len(classes) != len(s.weights) {
		return Allocation{}, fmt.Errorf("%w: %d classes for %d static weights",
			ErrInfeasible, len(classes), len(s.weights))
	}
	rates := append([]float64(nil), s.weights...)
	sl, err := SlowdownUnderRates(classes, w, rates)
	if err != nil {
		return Allocation{}, err
	}
	return Allocation{Rates: rates, ExpectedSlowdowns: sl, Utilization: rho}, nil
}

// PDD allocates rates so that expected *queueing delays* (not slowdowns)
// are proportional to δ — the server-side analogue of the rate-based
// proportional delay differentiation schemes (BPR [Dovrolis et al.]) the
// paper argues cannot provide PSD. By the P-K formula on task server i,
//
//	E[W_i] = λ_i E[X²] / (2 r_i (r_i − λ_iE[X]))
//
// and PDD requires E[W_i] = A·δ_i for some A > 0 with Σ r_i = 1.
// For fixed A each class's rate is the positive root of
// r² − λE[X]·r − λE[X²]/(2Aδ) = 0; Σr_i is strictly decreasing in A, so a
// bisection on A finds the allocation. Including PDD lets the experiments
// demonstrate *why* slowdown differentiation needs its own allocation:
// slowdown on task server i is E[S_i] = E[W_i]·E[1/X_i] = E[W_i]·r_i·E[1/X]
// (Lemma 2), so delay ratios of δ_i/δ_j yield slowdown ratios of
// (δ_i·r_i)/(δ_j·r_j) — skewed by the rate split itself. This is the
// paper's §1 argument that PDD schemes "are not applicable to PSD
// provisioning"; the ablation bench quantifies the skew.
type PDD struct{}

// Name implements Allocator.
func (PDD) Name() string { return "pdd" }

// Allocate implements Allocator. The delay constraint
// E[W_i] = λ_iE[X²]/(2 r_i(r_i − λ_iE[X])) = A·δ_i makes each rate the
// positive root of r² − λE[X]·r − λE[X²]/(2Aδ) = 0; Σr_i is strictly
// decreasing in A (limit ρ as A→∞, +∞ as A→0), so the shared bisection in
// solveQuadraticShares pins A with Σr = 1.
func (a PDD) Allocate(classes []Class, w Workload) (Allocation, error) {
	var alloc Allocation
	if err := a.AllocateInto(&alloc, classes, w); err != nil {
		return Allocation{}, err
	}
	return alloc, nil
}

// AllocateInto implements InPlaceAllocator.
func (PDD) AllocateInto(dst *Allocation, classes []Class, w Workload) error {
	rho, err := validateClasses(classes, w)
	if err != nil {
		return err
	}
	dst.reserve(len(classes))
	dst.Utilization = rho
	if err := solveQuadraticSharesInto(dst.Rates, classes, w, false); err != nil {
		return err
	}
	return slowdownUnderRatesInto(dst.ExpectedSlowdowns, classes, w, dst.Rates)
}

var (
	_ InPlaceAllocator = EqualShare{}
	_ InPlaceAllocator = DemandProportional{}
	_ Allocator        = (*Static)(nil)
	_ InPlaceAllocator = PDD{}
)
