package stats

import "sort"

// P2 is the Jain & Chlamtac P² streaming quantile estimator: it tracks a
// single quantile in O(1) space without storing the sample. The replication
// aggregator uses it to summarize pooled per-window slowdown ratios without
// buffering them (see simsrv.Aggregator); batch reports that need exact
// order statistics use Quantile instead. The zero value is unusable; call
// NewP2 or Init first. A P2 is freely embeddable by value and holds no
// heap state, so Reset/Init re-arm it without allocating.
type P2 struct {
	q       float64    // target quantile
	n       int        // observations seen
	heights [5]float64 // marker heights
	pos     [5]float64 // marker positions (1-based)
	desired [5]float64
	incr    [5]float64
	initial [5]float64 // first observations, buffered until 5 arrive
	ninit   int
}

// NewP2 creates an estimator for the q-th quantile, q in (0,1).
func NewP2(q float64) *P2 {
	p := &P2{}
	p.Init(q)
	return p
}

// Init (re)initializes the estimator in place for the q-th quantile,
// q in (0,1). It panics on an out-of-range quantile.
func (p *P2) Init(q float64) {
	if q <= 0 || q >= 1 {
		panic("stats: P2 quantile must be in (0,1)")
	}
	*p = P2{q: q}
}

// Reset discards all observations, keeping the target quantile.
func (p *P2) Reset() { p.Init(p.q) }

// Add incorporates one observation.
func (p *P2) Add(x float64) {
	p.n++
	if p.ninit < 5 {
		p.initial[p.ninit] = x
		p.ninit++
		if p.ninit == 5 {
			sort.Float64s(p.initial[:])
			p.heights = p.initial
			for i := range p.pos {
				p.pos[i] = float64(i + 1)
			}
			p.desired = [5]float64{1, 1 + 2*p.q, 1 + 4*p.q, 3 + 2*p.q, 5}
			p.incr = [5]float64{0, p.q / 2, p.q, (1 + p.q) / 2, 1}
		}
		return
	}

	// Find cell k such that heights[k] <= x < heights[k+1].
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for i := 1; i < 5; i++ {
			if x < p.heights[i] {
				k = i - 1
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.desired {
		p.desired[i] += p.incr[i]
	}

	// Adjust interior markers.
	for i := 1; i <= 3; i++ {
		d := p.desired[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := p.parabolic(i, sign)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

func (p *P2) parabolic(i int, d float64) float64 {
	num1 := p.pos[i] - p.pos[i-1] + d
	num2 := p.pos[i+1] - p.pos[i] - d
	den := p.pos[i+1] - p.pos[i-1]
	t1 := (p.heights[i+1] - p.heights[i]) / (p.pos[i+1] - p.pos[i])
	t2 := (p.heights[i] - p.heights[i-1]) / (p.pos[i] - p.pos[i-1])
	return p.heights[i] + d/den*(num1*t1+num2*t2)
}

func (p *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.heights[i] + d*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// N returns the number of observations consumed.
func (p *P2) N() int { return p.n }

// Value returns the current quantile estimate. Before 5 observations it
// falls back to the exact quantile of the buffered sample.
func (p *P2) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if p.ninit < 5 {
		var sorted [5]float64
		copy(sorted[:], p.initial[:p.ninit])
		sort.Float64s(sorted[:p.ninit])
		return QuantileSorted(sorted[:p.ninit], p.q)
	}
	return p.heights[2]
}

// StreamingSummary accumulates a Summary in O(1) space: exact count, mean,
// standard deviation and extrema via Welford, and P² estimates for the
// 5th/50th/95th percentiles. It is the streaming counterpart of Summarize
// for data too large (or too distributed over time) to buffer, such as the
// pooled per-window slowdown ratios of a 100-replication aggregate. The
// zero value is NOT ready; call Init (or embed and Init on first use).
type StreamingSummary struct {
	w   Welford
	p05 P2
	p50 P2
	p95 P2
}

// Init re-arms the accumulator, discarding prior observations.
func (s *StreamingSummary) Init() {
	s.w = Welford{}
	s.p05.Init(0.05)
	s.p50.Init(0.50)
	s.p95.Init(0.95)
}

// Add incorporates one observation.
func (s *StreamingSummary) Add(x float64) {
	s.w.Add(x)
	s.p05.Add(x)
	s.p50.Add(x)
	s.p95.Add(x)
}

// N returns the number of observations consumed.
func (s *StreamingSummary) N() int64 { return s.w.N() }

// Summary returns the current summary. Moments and extrema are exact; the
// percentiles are P² estimates (exact below 5 observations). The zero-
// observation summary is the zero Summary, matching Summarize's refusal to
// summarize nothing.
func (s *StreamingSummary) Summary() Summary {
	if s.w.N() == 0 {
		return Summary{}
	}
	return Summary{
		N: s.w.N(), Mean: s.w.Mean(), Std: s.w.Std(),
		Min: s.w.Min(), Max: s.w.Max(),
		P05: s.p05.Value(), P50: s.p50.Value(), P95: s.p95.Value(),
	}
}
