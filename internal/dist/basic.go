package dist

import (
	"fmt"
	"math"

	"psd/internal/rng"
)

// deterministic is the point mass at v: the M/D/1 workload of Eq. 15.
type deterministic struct {
	v float64
}

// NewDeterministic returns the degenerate law P[X = v] = 1. Its moments
// are exact (E[X] = v, E[X²] = v², E[1/X] = 1/v) and Theorem 1 applied
// to it reduces to the paper's M/D/1 special case.
func NewDeterministic(v float64) (Distribution, error) {
	if err := checkParam("deterministic size", v); err != nil {
		return nil, err
	}
	return checkMoments(deterministic{v: v})
}

func (d deterministic) Mean() float64          { return d.v }
func (d deterministic) SecondMoment() float64  { return d.v * d.v }
func (d deterministic) InverseMoment() float64 { return 1 / d.v }

// Sample returns v without consuming the source, so a deterministic
// component never perturbs sibling streams.
func (d deterministic) Sample(*rng.Source) float64 { return d.v }

func (d deterministic) String() string { return fmt.Sprintf("Deterministic(%g)", d.v) }

// exponential is the memoryless law with service rate mu (mean 1/mu),
// the M/M/1 cross-check workload.
type exponential struct {
	mu float64
}

// NewExponential returns the exponential law with rate mu, i.e. mean
// 1/mu. Note E[1/X] = ∫ (1/x)·mu·e^(−mu·x) dx diverges at the origin:
// arbitrarily small jobs make expected slowdown infinite, which is
// precisely why the paper bounds its Pareto below at k.
func NewExponential(mu float64) (Distribution, error) {
	if err := checkParam("exponential rate", mu); err != nil {
		return nil, err
	}
	return checkMoments(exponential{mu: mu})
}

func (d exponential) Mean() float64          { return 1 / d.mu }
func (d exponential) SecondMoment() float64  { return 2 / (d.mu * d.mu) }
func (d exponential) InverseMoment() float64 { return math.Inf(1) }

// Sample inverts the CDF: x = −ln(u)/mu with u drawn from the open
// interval so the result is strictly positive (a zero job size would
// poison downstream 1/x slowdown statistics).
func (d exponential) Sample(src *rng.Source) float64 {
	return -math.Log(src.Float64Open()) / d.mu
}

func (d exponential) String() string { return fmt.Sprintf("Exponential(rate=%g)", d.mu) }

// uniform is the continuous uniform on [a, b].
type uniform struct {
	a, b float64
}

// NewUniform returns the uniform law on [a, b], 0 < a < b. The strictly
// positive lower bound keeps E[1/X] = ln(b/a)/(b−a) finite.
func NewUniform(a, b float64) (Distribution, error) {
	if err := checkParam("uniform lower bound", a); err != nil {
		return nil, err
	}
	if err := checkParam("uniform upper bound", b); err != nil {
		return nil, err
	}
	if !(a < b) {
		return nil, fmt.Errorf("dist: uniform bounds a=%v < b=%v required", a, b)
	}
	return checkMoments(uniform{a: a, b: b})
}

func (d uniform) Mean() float64 { return (d.a + d.b) / 2 }

func (d uniform) SecondMoment() float64 {
	return (d.a*d.a + d.a*d.b + d.b*d.b) / 3
}

func (d uniform) InverseMoment() float64 {
	return math.Log(d.b/d.a) / (d.b - d.a)
}

func (d uniform) Sample(src *rng.Source) float64 {
	return d.a + (d.b-d.a)*src.Float64()
}

func (d uniform) String() string { return fmt.Sprintf("Uniform[%g, %g]", d.a, d.b) }
