// End-to-end harness: loadgen → httpsrv in one process via httptest.
// This is the closest thing the repo has to the paper's testbed run —
// real HTTP, real wall-clock pacing, the shared control plane ticking in
// the background — so it is gated out of -short (the CI race job) and
// kept statistically generous.
package httpsrv_test

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"psd/internal/dist"
	"psd/internal/httpsrv"
	"psd/internal/loadgen"
)

// TestE2ESlowdownConvergence asserts the live stack's achieved slowdown
// ratios converge toward the δ targets within tolerance — in a steady
// phase AND after a mid-run load step, the regime rate-change-aware
// pacing exists for (a stepped load re-allocates rates while heavy jobs
// are in flight; the stale-rate path would hold pre-step service times).
func TestE2ESlowdownConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e harness skipped in -short")
	}
	const target = 2.0 // δ₁/δ₀
	sizes, err := dist.NewUniform(0.5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := httpsrv.New(httpsrv.Config{
		Deltas:   []float64{1, target},
		Service:  sizes,
		TimeUnit: time.Millisecond,
		Window:   25, // reallocate every 25ms: many windows per phase
		Feedback: true,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Mux())
	defer func() { ts.Close(); srv.Close() }()

	// Phase 1 offers ρ ≈ 0.6, phase 2 steps to ρ ≈ 0.84 (E[X] = 1).
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:  ts.URL + "/",
		TimeUnit: time.Millisecond,
		Service:  sizes,
		Phases: []loadgen.Phase{
			{Lambdas: []float64{0.30, 0.30}, Duration: 4 * time.Second},
			{Lambdas: []float64{0.42, 0.42}, Duration: 4 * time.Second},
		},
		Drain: 1500 * time.Millisecond,
		Seed:  3,
	})
	if err != nil {
		t.Fatal(err)
	}

	for pi := range rep.Phases {
		c0, c1 := rep.Phases[pi][0], rep.Phases[pi][1]
		if c0.Completed < 300 || c1.Completed < 300 {
			t.Skipf("phase %d throughput too low for a meaningful check: %d/%d",
				pi, c0.Completed, c1.Completed)
		}
		ratio := rep.PhaseSlowdownRatio(pi, 1)
		if math.IsNaN(ratio) {
			t.Fatalf("phase %d ratio unavailable: %+v / %+v", pi, c0, c1)
		}
		// Generous statistical band (short wall-clock phases, heavy CI
		// jitter): the ratio must sit around the δ target, not merely be
		// ordered. target/1.6 ≈ 1.25, target·1.6 = 3.2.
		if ratio < target/1.6 || ratio > target*1.6 {
			t.Errorf("phase %d achieved ratio %.3f outside [%.2f, %.2f] (target %g)",
				pi, ratio, target/1.6, target*1.6, target)
		}
	}

	// The load step must be visible to the server, not absorbed silently:
	// the estimator-driven rates differ between phases only if λ̂ moved.
	doc := srv.Snapshot()
	if doc.Reallocations < 100 {
		t.Fatalf("control plane barely ticked: %d reallocations", doc.Reallocations)
	}
	for i, cm := range doc.Classes {
		if cm.Served < 1000 {
			t.Fatalf("class %d served only %d requests end to end", i, cm.Served)
		}
	}
}
