package control

import (
	"testing"

	"psd/internal/core"
)

// testWorkload returns the paper's BP(0.1, 100, 1.5) moment set without
// importing dist (values from dist's closed forms, pinned in its tests).
func testWorkload() core.Workload {
	return core.Workload{
		MeanSize:      0.29052235414299771,
		SecondMoment:  0.91871235028592835,
		InverseMoment: 6.0001895529171403,
	}
}

func loopConfig(deltas []float64) LoopConfig {
	return LoopConfig{
		Deltas:    deltas,
		Window:    100,
		Allocator: core.PSD{},
		Workload:  testWorkload(),
	}
}

func TestLoopValidation(t *testing.T) {
	base := loopConfig([]float64{1, 2})
	cases := []struct {
		name string
		mut  func(*LoopConfig)
	}{
		{"no classes", func(c *LoopConfig) { c.Deltas = nil }},
		{"bad delta", func(c *LoopConfig) { c.Deltas = []float64{1, -2} }},
		{"zero window", func(c *LoopConfig) { c.Window = 0 }},
		{"bad estimator", func(c *LoopConfig) { c.Estimator = EstimatorKind(7) }},
		{"bad history", func(c *LoopConfig) { c.HistoryWindows = -1 }},
		{"bad alpha", func(c *LoopConfig) { c.EWMAAlpha = 1.5 }},
		{"no allocator", func(c *LoopConfig) { c.Allocator = nil }},
		{"bad workload", func(c *LoopConfig) { c.Workload = core.Workload{} }},
		{"bad gain", func(c *LoopConfig) { c.Feedback = true; c.FeedbackGain = 2 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := NewLoop(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := NewLoop(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestLoopTickInputValidation: malformed TickInput must fail with
// ErrDimension instead of panicking, and must leave the estimator state
// untouched.
func TestLoopTickInputValidation(t *testing.T) {
	lp, err := NewLoop(loopConfig([]float64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	bad := []TickInput{
		{Counts: []float64{1, 2}},                                                         // Work missing
		{Counts: []float64{1, 2}, Work: []float64{1}},                                     // short Work
		{Counts: []float64{1}, Work: []float64{1}},                                        // short Counts
		{Counts: []float64{1, 2}, Work: []float64{1, 2}, OracleLambdas: []float64{1}},     // short oracle
		{Counts: []float64{1, 2}, Work: []float64{1, 2}, MeasuredSlowdowns: []float64{1}}, // short slows
	}
	for i, in := range bad {
		if _, err := lp.Tick(in); err != ErrDimension {
			t.Errorf("bad input %d: err = %v, want ErrDimension", i, err)
		}
	}
	l := make([]float64, 2)
	lp.LambdasInto(l)
	if l[0] != 0 || l[1] != 0 {
		t.Fatalf("rejected input advanced the estimator: %v", l)
	}
}

// TestLoopWindowEstimatesMatchEstimator pins the Loop's flat-ring window
// estimator against the standalone WindowEstimator on the same window
// sequence — the Loop is the consolidation of both and must agree exactly.
func TestLoopWindowEstimatesMatchEstimator(t *testing.T) {
	cfg := loopConfig([]float64{1, 2})
	cfg.HistoryWindows = 3
	lp, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewWindowEstimator(2, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	seqs := [][2][]float64{
		{{10, 4}, {6, 2}},
		{{20, 8}, {12, 4}},
		{{5, 2}, {3, 1}},
		{{40, 16}, {24, 8}}, // evicts the first window
		{{1, 1}, {0.5, 0.5}},
	}
	got := make([]float64, 2)
	gotLoads := make([]float64, 2)
	for _, wn := range seqs {
		if _, err := lp.Tick(TickInput{Counts: wn[0], Work: wn[1]}); err != nil {
			t.Fatal(err)
		}
		if err := ref.ObserveWindow(wn[0], wn[1]); err != nil {
			t.Fatal(err)
		}
		lp.LambdasInto(got)
		lp.LoadsInto(gotLoads)
		wantL, wantW := ref.Lambdas(), ref.Loads()
		for i := range got {
			if got[i] != wantL[i] || gotLoads[i] != wantW[i] {
				t.Fatalf("loop estimates diverged: lambdas %v vs %v, loads %v vs %v",
					got, wantL, gotLoads, wantW)
			}
		}
	}
}

// TestLoopEWMAEstimatesMatchEstimator does the same for EWMA mode.
func TestLoopEWMAEstimatesMatchEstimator(t *testing.T) {
	cfg := loopConfig([]float64{1, 2})
	cfg.Estimator = EWMA
	cfg.EWMAAlpha = 0.4
	lp, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewEWMAEstimator(2, 0.4, 100)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 2)
	for k := 0; k < 8; k++ {
		counts := []float64{float64(10 + k*3), float64(5 + k)}
		work := []float64{counts[0] * 0.6, counts[1] * 0.6}
		if _, err := lp.Tick(TickInput{Counts: counts, Work: work}); err != nil {
			t.Fatal(err)
		}
		if err := ref.ObserveWindow(counts, work); err != nil {
			t.Fatal(err)
		}
		lp.LambdasInto(got)
		want := ref.Lambdas()
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("tick %d: EWMA loop lambdas %v vs estimator %v", k, got, want)
			}
		}
	}
}

// TestLoopObservePathMatchesCountsPath: feeding arrivals through Observe
// and ticking with a nil TickInput must equal handing the same totals as
// explicit window counts.
func TestLoopObservePathMatchesCountsPath(t *testing.T) {
	a, err := NewLoop(loopConfig([]float64{1, 4}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLoop(loopConfig([]float64{1, 4}))
	if err != nil {
		t.Fatal(err)
	}
	sizes := [][]float64{{0.5, 0.7, 1.1}, {2.0, 0.3}}
	counts := make([]float64, 2)
	work := make([]float64, 2)
	for c, ss := range sizes {
		for _, s := range ss {
			a.Observe(c, s)
			counts[c]++
			work[c] += s
		}
	}
	ra, errA := a.Tick(TickInput{})
	rb, errB := b.Tick(TickInput{Counts: counts, Work: work})
	if (errA == nil) != (errB == nil) {
		t.Fatalf("errors diverged: %v vs %v", errA, errB)
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("rates diverged: %v vs %v", ra, rb)
		}
	}
	// The Observe accumulators must have been consumed by the tick.
	a.Observe(0, 1)
	r2, err := a.Tick(TickInput{})
	if err != nil {
		t.Fatal(err)
	}
	var want [2]float64
	copy(want[:], r2)
	r3, err := b.Tick(TickInput{Counts: []float64{1, 0}, Work: []float64{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if want[0] != r3[0] || want[1] != r3[1] {
		t.Fatalf("open-window accumulators leaked across ticks: %v vs %v", want, r3)
	}
}

// TestLoopRatesMatchDirectAllocator: a Tick's output must be exactly what
// the allocator returns for the estimator's lambdas and the target deltas.
func TestLoopRatesMatchDirectAllocator(t *testing.T) {
	lp, err := NewLoop(loopConfig([]float64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	counts := []float64{30, 20}
	work := []float64{18, 12}
	rates, err := lp.Tick(TickInput{Counts: counts, Work: work})
	if err != nil {
		t.Fatal(err)
	}
	lambdas := make([]float64, 2)
	lp.LambdasInto(lambdas)
	want, err := (core.PSD{}).Allocate([]core.Class{
		{Delta: 1, Lambda: lambdas[0]}, {Delta: 2, Lambda: lambdas[1]},
	}, testWorkload())
	if err != nil {
		t.Fatal(err)
	}
	for i := range rates {
		if rates[i] != want.Rates[i] {
			t.Fatalf("rates %v, want %v", rates, want.Rates)
		}
	}
}

func TestLoopInfeasibleTickReturnsError(t *testing.T) {
	lp, err := NewLoop(loopConfig([]float64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	// 10 arrivals/tu at E[X] ≈ 0.61 ⇒ ρ̂ ≈ 6: infeasible.
	if _, err := lp.Tick(TickInput{Counts: []float64{1000, 0}, Work: []float64{600, 0}}); err == nil {
		t.Fatal("infeasible estimate not rejected")
	}
	// The estimator must still have advanced (live servers keep previous
	// rates but the window is gone).
	l := make([]float64, 2)
	lp.LambdasInto(l)
	if l[0] == 0 {
		t.Fatal("estimator did not advance on infeasible tick")
	}
}

func TestLoopEstimateFromWork(t *testing.T) {
	cfg := loopConfig([]float64{1, 1})
	cfg.EstimateFromWork = true
	lp, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Equal counts, skewed work: from-work estimation must allocate more
	// to the heavy class.
	rates, err := lp.Tick(TickInput{Counts: []float64{10, 10}, Work: []float64{30, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !(rates[0] > rates[1]) {
		t.Fatalf("work-based estimation ignored work skew: %v", rates)
	}
}

func TestLoopOracleOverride(t *testing.T) {
	lp, err := NewLoop(loopConfig([]float64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	oracle := []float64{0.4, 0.2}
	rates, err := lp.Tick(TickInput{Counts: []float64{1, 1}, Work: []float64{0.5, 0.5}, OracleLambdas: oracle})
	if err != nil {
		t.Fatal(err)
	}
	want, err := (core.PSD{}).Allocate([]core.Class{
		{Delta: 1, Lambda: 0.4}, {Delta: 2, Lambda: 0.2},
	}, testWorkload())
	if err != nil {
		t.Fatal(err)
	}
	for i := range rates {
		if rates[i] != want.Rates[i] {
			t.Fatalf("oracle rates %v, want %v", rates, want.Rates)
		}
	}
}

func TestLoopFeedbackTrimsDeltas(t *testing.T) {
	cfg := loopConfig([]float64{1, 2})
	cfg.Feedback = true
	cfg.FeedbackGain = 0.5
	lp, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eff := make([]float64, 2)
	lp.EffectiveDeltasInto(eff)
	if eff[0] != 1 || eff[1] != 2 {
		t.Fatalf("initial effective deltas %v", eff)
	}
	// Class 1 measures 10× class 0 against a target ratio of 2: the
	// controller must trim δeff below target.
	if _, err := lp.Tick(TickInput{
		Counts:            []float64{10, 10},
		Work:              []float64{6, 6},
		MeasuredSlowdowns: []float64{1, 10},
	}); err != nil {
		t.Fatal(err)
	}
	lp.EffectiveDeltasInto(eff)
	if !(eff[1] < 2) {
		t.Fatalf("effective delta not trimmed: %v", eff)
	}
	// A nil measurement vector skips the controller update.
	before := eff[1]
	if _, err := lp.Tick(TickInput{Counts: []float64{10, 10}, Work: []float64{6, 6}}); err != nil {
		t.Fatal(err)
	}
	lp.EffectiveDeltasInto(eff)
	if eff[1] != before {
		t.Fatalf("controller updated without measurements: %v -> %v", before, eff[1])
	}
}

// TestLoopResetReuse: a reset Loop must be observationally identical to a
// fresh one, including across shape changes.
func TestLoopResetReuse(t *testing.T) {
	lp, err := NewLoop(loopConfig([]float64{1, 2, 4}))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if _, err := lp.Tick(TickInput{Counts: []float64{9, 6, 3}, Work: []float64{5, 4, 2}, MeasuredSlowdowns: nil}); err != nil {
			t.Fatal(err)
		}
	}
	// Shrink to 2 classes and replay a sequence on both the reused arena
	// and a fresh Loop.
	if err := lp.Reset(loopConfig([]float64{1, 8})); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewLoop(loopConfig([]float64{1, 8}))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 7; k++ {
		counts := []float64{float64(12 + k), float64(7 + k)}
		work := []float64{counts[0] * 0.6, counts[1] * 0.6}
		ra, errA := lp.Tick(TickInput{Counts: counts, Work: work})
		rf, errF := fresh.Tick(TickInput{Counts: counts, Work: work})
		if (errA == nil) != (errF == nil) {
			t.Fatalf("tick %d: errors diverged %v vs %v", k, errA, errF)
		}
		for i := range ra {
			if ra[i] != rf[i] {
				t.Fatalf("tick %d: reused arena diverged from fresh loop: %v vs %v", k, ra, rf)
			}
		}
	}
	if lp.Classes() != 2 {
		t.Fatalf("classes = %d after reset", lp.Classes())
	}
}

// TestLoopTickAllocFree gates the loop's zero-allocation contract on the
// steady-state tick (both estimator kinds, feedback on).
func TestLoopTickAllocFree(t *testing.T) {
	for _, kind := range []EstimatorKind{Window, EWMA} {
		cfg := loopConfig([]float64{1, 2, 4, 8})
		cfg.Estimator = kind
		cfg.Feedback = true
		lp, err := NewLoop(cfg)
		if err != nil {
			t.Fatal(err)
		}
		counts := []float64{20, 15, 10, 5}
		work := []float64{12, 9, 6, 3}
		slows := []float64{1, 2, 4, 8}
		in := TickInput{Counts: counts, Work: work, MeasuredSlowdowns: slows}
		if _, err := lp.Tick(in); err != nil { // warm the allocation buffers
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(200, func() {
			if _, err := lp.Tick(in); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("%v: %.2f allocs/tick, want 0", kind, avg)
		}
	}
}

func TestLoopAllocateDeclared(t *testing.T) {
	lp, err := NewLoop(loopConfig([]float64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	a, err := lp.AllocateDeclared([]float64{0.3, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := (core.PSD{}).Allocate([]core.Class{
		{Delta: 1, Lambda: 0.3}, {Delta: 2, Lambda: 0.3},
	}, testWorkload())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rates {
		if a.Rates[i] != want.Rates[i] || a.ExpectedSlowdowns[i] != want.ExpectedSlowdowns[i] {
			t.Fatalf("declared allocation %+v, want %+v", a, want)
		}
	}
	if _, err := lp.AllocateDeclared([]float64{9, 9}); err == nil {
		t.Fatal("declared overload not rejected")
	}
}

func TestEstimatorKindParsing(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want EstimatorKind
	}{{"window", Window}, {"ewma", EWMA}} {
		k, err := ParseEstimatorKind(tc.s)
		if err != nil || k != tc.want {
			t.Errorf("ParseEstimatorKind(%q) = %v, %v", tc.s, k, err)
		}
		if k.String() != tc.s {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
	if _, err := ParseEstimatorKind("bogus"); err == nil {
		t.Error("accepted bogus estimator name")
	}
	if EstimatorKind(9).Valid() {
		t.Error("kind 9 reported valid")
	}
}
