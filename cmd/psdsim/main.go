// Command psdsim runs the paper's simulation model once (or replicated)
// and prints a per-class summary: measured vs expected slowdowns, rates,
// and achieved ratios.
//
// Usage:
//
//	psdsim -deltas 1,2 -load 0.5 -runs 10
//	psdsim -deltas 1,2,3 -load 0.8 -alpha 1.5 -upper 100 -runs 100
//	psdsim -deltas 1,4 -load 0.6 -allocator pdd        # baseline ablation
//	psdsim -deltas 1,2 -load 0.5 -work-conserving      # GPS-mode ablation
//	psdsim -deltas 1,2 -load 0.5 -engine auto          # closed form, no DES
//	psdsim -deltas 1,2 -load 0.5 -flightrec 64         # dump control ticks
//
// -flightrec N runs one extra dedicated replication (base seed) with a
// control-plane flight recorder attached and dumps its last N ticks as
// JSON — the same record format the live server serves at /debug/control
// — to -flightrec-out ("-": stdout).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"psd/internal/control"
	"psd/internal/core"
	"psd/internal/dist"
	"psd/internal/obs"
	"psd/internal/simsrv"
	"psd/internal/sweep"
)

func main() {
	var (
		deltasFlag  = flag.String("deltas", "1,2", "comma-separated differentiation parameters")
		load        = flag.Float64("load", 0.5, "total system utilization in (0,1)")
		runs        = flag.Int("runs", 10, "independent replications (paper: 100)")
		alpha       = flag.Float64("alpha", 1.5, "Bounded Pareto shape")
		lower       = flag.Float64("lower", 0.1, "Bounded Pareto lower bound")
		upper       = flag.Float64("upper", 100, "Bounded Pareto upper bound")
		horizon     = flag.Float64("horizon", 60000, "measured duration (time units)")
		warmup      = flag.Float64("warmup", 10000, "warmup duration (time units)")
		window      = flag.Float64("window", 1000, "estimation/reallocation window")
		history     = flag.Int("history", 5, "estimator history windows")
		seed        = flag.Uint64("seed", 1, "base random seed")
		workers     = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
		allocator   = flag.String("allocator", "psd", "policy from the core registry: "+strings.Join(core.Names(), " | "))
		engine      = flag.String("engine", "des", "des (simulate) | auto (closed form when the steady state is analytic) | analytic (refuse to simulate)")
		estimator   = flag.String("estimator", "window", "load estimator: window (paper) | ewma")
		ewmaAlpha   = flag.Float64("ewma-alpha", 0.3, "EWMA smoothing factor in (0,1]")
		workConserv = flag.Bool("work-conserving", false, "redistribute idle class capacity (GPS ablation)")
		oracle      = flag.Bool("oracle", false, "feed the allocator true arrival rates (no estimation error)")
		loadStep    = flag.Float64("load-step", 0, "transient ablation: scale all arrival rates by this factor at mid-horizon (0 = stationary)")
		flightrec   = flag.Int("flightrec", 0, "flight-record the last N control ticks of one dedicated replication (0: off)")
		flightOut   = flag.String("flightrec-out", "-", `flight recorder dump destination ("-": stdout)`)
	)
	flag.Parse()

	deltas, err := parseFloats(*deltasFlag)
	if err != nil {
		fatalf("bad -deltas: %v", err)
	}
	svc, err := dist.NewBoundedPareto(*lower, *upper, *alpha)
	if err != nil {
		fatalf("bad Bounded Pareto parameters: %v", err)
	}
	cfg := simsrv.EqualLoadConfig(deltas, *load, svc)
	cfg.Horizon = *horizon
	cfg.Warmup = *warmup
	cfg.Window = *window
	cfg.HistoryWindows = *history
	cfg.Seed = *seed
	cfg.WorkConserving = *workConserv
	cfg.Oracle = *oracle
	estKind, err := control.ParseEstimatorKind(*estimator)
	if err != nil {
		fatalf("bad -estimator: %v", err)
	}
	cfg.Estimator = estKind
	cfg.EWMAAlpha = *ewmaAlpha
	if *loadStep > 0 {
		cfg.LoadSchedule = simsrv.LoadStep(*warmup+*horizon/2, *loadStep)
	}
	// The registry resolves the allocator for the summary/flight-record
	// paths; the sweep point carries the policy name so size-aware
	// policies (hesrpt) transparently switch to the packetized model.
	alloc, err := core.Parse(*allocator)
	if err != nil {
		fatalf("bad -allocator: %v", err)
	}
	cfg.Allocator = alloc

	kind, err := sweep.ParseEngineKind(*engine)
	if err != nil {
		fatalf("bad -engine: %v", err)
	}

	start := time.Now()
	eng := sweep.Engine{Workers: *workers, Kind: kind}
	aggs, err := eng.Run([]sweep.Point{{Cfg: cfg, Runs: *runs, Policy: *allocator}})
	if err != nil {
		fatalf("evaluation failed: %v", err)
	}
	agg := aggs[0]
	elapsed := time.Since(start)

	fmt.Printf("PSD %s evaluation — %d classes, load %.0f%%, %s allocator, %d runs × %g tu\n",
		kind, len(deltas), *load*100, cfg.Allocator.Name(), *runs, *horizon)
	fmt.Printf("service: %s (E[X]=%.4f, E[X²]=%.4f, E[1/X]=%.4f)\n\n",
		svc, svc.Mean(), svc.SecondMoment(), svc.InverseMoment())
	fmt.Printf("%-8s %-8s %-14s %-14s %-12s %-12s\n",
		"class", "delta", "sim slowdown", "expected", "ci95", "ratio to c1")
	for i, d := range deltas {
		ratio := 1.0
		if i > 0 {
			ratio = agg.MeanRatios[i]
		}
		fmt.Printf("%-8d %-8g %-14.4f %-14.4f %-12.4f %-12.4f\n",
			i+1, d, agg.MeanSlowdowns[i], agg.ExpectedSlowdowns[i], agg.CI95[i], ratio)
	}
	fmt.Printf("\nsystem slowdown: %.4f (expected %.4f)\n",
		agg.SystemSlowdown, simsrv.ExpectedSystemSlowdown(cfg, agg))
	if agg.EventsProcessed > 0 {
		fmt.Printf("simulated %d events in %.2fs (%.2fM events/s aggregate)\n",
			agg.EventsProcessed, elapsed.Seconds(),
			float64(agg.EventsProcessed)/elapsed.Seconds()/1e6)
	} else {
		fmt.Printf("closed-form evaluation in %s (0 DES events)\n", elapsed.Round(time.Microsecond))
	}
	if agg.AllocFailures > 0 {
		fmt.Printf("allocator fallbacks (kept previous rates): %d windows\n", agg.AllocFailures)
	}
	// Per-window ratio percentiles only exist when windows were simulated.
	for i := 1; i < len(deltas); i++ {
		rs := agg.RatioSummaries[i]
		if rs.N == 0 {
			continue
		}
		fmt.Printf("class %d/1 per-window ratio: p05=%.3f p50=%.3f p95=%.3f (n=%d)\n",
			i+1, rs.P05, rs.P50, rs.P95, rs.N)
	}

	if *flightrec > 0 {
		if err := dumpFlightRecord(cfg, *flightrec, *flightOut); err != nil {
			fatalf("flight record: %v", err)
		}
	}
}

// dumpFlightRecord replays one dedicated replication (the base seed) with
// a flight recorder attached and writes the recorded tick JSON. The sweep
// engine's replications run in parallel and cannot share one recorder, so
// the recorded run is a separate, deterministic rerun.
func dumpFlightRecord(cfg simsrv.Config, capacity int, out string) error {
	rec, err := obs.NewFlightRecorder(len(cfg.Classes), capacity)
	if err != nil {
		return err
	}
	cfg.Recorder = rec
	if _, err := simsrv.Run(cfg); err != nil {
		return err
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rec.WriteJSON(w); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("flight record: %d ticks (of %d recorded) written to %s\n", rec.Len(), rec.Seq(), out)
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "psdsim: "+format+"\n", args...)
	os.Exit(1)
}
