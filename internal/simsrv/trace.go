package simsrv

import (
	"fmt"
	"sort"
)

// TraceRequest is one externally supplied arrival for trace-driven
// replay (e.g. from internal/workload's session generator or a recorded
// production trace).
type TraceRequest struct {
	Time  float64
	Class int
	Size  float64
}

// RunTrace replays a fixed arrival trace through the server model instead
// of the Poisson generators. The Config's class Lambdas are ignored for
// arrival generation but still seed the initial allocation (set them to
// the trace's empirical rates — see workload.ClassRates — or leave zero to
// start from an equal split); the estimator-driven reallocation then takes
// over exactly as in the Poisson mode.
//
// Requests arriving after Warmup+Horizon are ignored. The trace must be
// time-sorted with in-range classes and positive sizes.
func RunTrace(cfg Config, trace []TraceRequest) (*Result, error) {
	cfg = cfg.ApplyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(trace) == 0 {
		return nil, fmt.Errorf("simsrv: empty trace")
	}
	if !sort.SliceIsSorted(trace, func(i, j int) bool { return trace[i].Time < trace[j].Time }) {
		return nil, fmt.Errorf("simsrv: trace not time-sorted")
	}
	for i, tr := range trace {
		if tr.Class < 0 || tr.Class >= len(cfg.Classes) {
			return nil, fmt.Errorf("simsrv: trace[%d] class %d out of range", i, tr.Class)
		}
		if !(tr.Size > 0) {
			return nil, fmt.Errorf("simsrv: trace[%d] size %v must be positive", i, tr.Size)
		}
		if tr.Time < 0 {
			return nil, fmt.Errorf("simsrv: trace[%d] time %v negative", i, tr.Time)
		}
	}

	w, err := coreWorkload(cfg)
	if err != nil {
		return nil, err
	}
	r, err := newRunner(cfg, w)
	if err != nil {
		return nil, err
	}

	// Chain trace arrivals one at a time to keep the event heap small.
	var scheduleTrace func(idx int)
	scheduleTrace = func(idx int) {
		if idx >= len(trace) || trace[idx].Time > r.total {
			return
		}
		tr := trace[idx]
		r.sim.ScheduleAt(tr.Time, func() {
			cs := r.classes[tr.Class]
			req := &request{class: tr.Class, size: tr.Size, arrival: tr.Time}
			r.est.observe(tr.Class, tr.Size)
			cs.queue = append(cs.queue, req)
			if !cs.busy() {
				r.startService(cs)
				if r.cfg.WorkConserving {
					r.recomputeEffectiveRates()
				}
			}
			scheduleTrace(idx + 1)
		})
	}
	scheduleTrace(0)
	r.scheduleReallocation()
	r.sim.RunUntil(r.total)
	return r.collect(), nil
}
