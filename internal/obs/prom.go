package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
)

// PromContentType is the Prometheus text exposition format version this
// package writes.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm writes the registry in Prometheus text exposition format
// (version 0.0.4): families in registration order, each with # HELP and
// # TYPE headers, histograms as cumulative _bucket{le=...} series plus
// _sum and _count. Values are read atomically; a scrape racing hot-path
// updates sees each sample at some valid point in time. The scrape path
// may allocate — only Observe/Add/Set are allocation-free.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var scratch []byte
	for _, f := range r.families {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ.String())
		bw.WriteByte('\n')
		for i, lv := range f.labelVals {
			switch {
			case f.typ == HistogramType:
				scratch = writeHistogram(bw, scratch, f, i, lv)
			case f.isFloat:
				scratch = writeSample(bw, scratch, f.name, "", f.label, lv, "", f.fcounters[i].Load())
			case f.typ == CounterType:
				bw.WriteString(f.name)
				writeLabels(bw, f.label, lv, "")
				bw.WriteByte(' ')
				scratch = strconv.AppendInt(scratch[:0], f.counters[i].Load(), 10)
				bw.Write(scratch)
				bw.WriteByte('\n')
			default: // gauge
				scratch = writeSample(bw, scratch, f.name, "", f.label, lv, "", f.gauges[i].Load())
			}
		}
	}
	return bw.Flush()
}

// writeHistogram emits one histogram instance as cumulative buckets. The
// underflow bucket folds into the first bound (its observations are below
// it by definition); the overflow bucket appears only in +Inf.
func writeHistogram(bw *bufio.Writer, scratch []byte, f *family, i int, lv string) []byte {
	h := f.hists[i]
	var snap HistogramSnapshot
	h.SnapshotInto(&snap)
	cum := snap.Underflow
	for b := range snap.Counts {
		cum += snap.Counts[b]
		le := strconv.FormatFloat(snap.UpperBound(b), 'g', -1, 64)
		bw.WriteString(f.name)
		bw.WriteString("_bucket")
		writeLabels(bw, f.label, lv, le)
		bw.WriteByte(' ')
		scratch = strconv.AppendInt(scratch[:0], cum, 10)
		bw.Write(scratch)
		bw.WriteByte('\n')
	}
	bw.WriteString(f.name)
	bw.WriteString("_bucket")
	writeLabels(bw, f.label, lv, "+Inf")
	bw.WriteByte(' ')
	scratch = strconv.AppendInt(scratch[:0], snap.Count, 10)
	bw.Write(scratch)
	bw.WriteByte('\n')
	scratch = writeSample(bw, scratch, f.name, "_sum", f.label, lv, "", snap.Sum)
	bw.WriteString(f.name)
	bw.WriteString("_count")
	writeLabels(bw, f.label, lv, "")
	bw.WriteByte(' ')
	scratch = strconv.AppendInt(scratch[:0], snap.Count, 10)
	bw.Write(scratch)
	bw.WriteByte('\n')
	return scratch
}

// writeSample emits one float sample line. NaN serializes as "NaN", which
// the exposition format permits (gauges with no measurement yet).
func writeSample(bw *bufio.Writer, scratch []byte, name, suffix, label, lv, le string, v float64) []byte {
	bw.WriteString(name)
	bw.WriteString(suffix)
	writeLabels(bw, label, lv, le)
	bw.WriteByte(' ')
	switch {
	case math.IsNaN(v):
		bw.WriteString("NaN")
	case math.IsInf(v, 1):
		bw.WriteString("+Inf")
	case math.IsInf(v, -1):
		bw.WriteString("-Inf")
	default:
		scratch = strconv.AppendFloat(scratch[:0], v, 'g', -1, 64)
		bw.Write(scratch)
	}
	bw.WriteByte('\n')
	return scratch
}

// writeLabels emits the {label="v",le="..."} block, or nothing when both
// are absent.
func writeLabels(bw *bufio.Writer, label, lv, le string) {
	if label == "" && le == "" {
		return
	}
	bw.WriteByte('{')
	if label != "" {
		bw.WriteString(label)
		bw.WriteString(`="`)
		bw.WriteString(lv)
		bw.WriteByte('"')
		if le != "" {
			bw.WriteByte(',')
		}
	}
	if le != "" {
		bw.WriteString(`le="`)
		bw.WriteString(le)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		_ = r.WriteProm(w)
	})
}
