package core

import "math"

// LogWeight splits the surplus capacity with logarithmically compressed
// differentiation weights:
//
//	r_i = λ_iE[X] + λ_i·ln(1 + 1/δ_i)·(1 − ρ) / Σ_j λ_j·ln(1 + 1/δ_j)
//
// The shape follows the log-weight allocation literature (Robert &
// Véber, "A Stochastic Analysis of Resource Sharing with Logarithmic
// Weights"): weights grow only logarithmically in the entitlement, so
// high classes still get more surplus, but the spread between classes is
// compressed relative to PSD's linear λ_i/δ_i scaling. Against PSD it is
// the "flatter rival": achieved slowdown ratios systematically undershoot
// the δ targets as the δ spread widens, while the worst class is never
// starved as aggressively — exactly the fairness-vs-differentiation
// trade-off the policy tournament (Figure 14) quantifies.
//
// Like PSD it is a deterministic closed form of the true arrival rates,
// so the analytic evaluator covers it (Theorem 1 at these rates); the
// oracle-mode DES cross-validation in internal/analytic pins the two
// within simulation confidence bands. The zero value is ready to use.
type LogWeight struct{}

// Name implements Allocator.
func (LogWeight) Name() string { return "log" }

// Allocate implements Allocator.
func (l LogWeight) Allocate(classes []Class, w Workload) (Allocation, error) {
	var alloc Allocation
	if err := l.AllocateInto(&alloc, classes, w); err != nil {
		return Allocation{}, err
	}
	return alloc, nil
}

// AllocateInto implements InPlaceAllocator.
func (LogWeight) AllocateInto(dst *Allocation, classes []Class, w Workload) error {
	rho, err := validateClasses(classes, w)
	if err != nil {
		return err
	}
	sumWeight := 0.0 // Σ λ_j·ln(1 + 1/δ_j)
	for _, c := range classes {
		sumWeight += c.Lambda * math.Log1p(1/c.Delta)
	}
	dst.reserve(len(classes))
	dst.Utilization = rho
	if sumWeight == 0 {
		// No demand at all: split capacity evenly (mirrors PSD).
		for i := range dst.Rates {
			dst.Rates[i] = 1 / float64(len(classes))
			dst.ExpectedSlowdowns[i] = 0
		}
		return nil
	}
	surplus := 1 - rho
	for i, cl := range classes {
		dst.Rates[i] = cl.Lambda*w.MeanSize + cl.Lambda*math.Log1p(1/cl.Delta)*surplus/sumWeight
	}
	// Not the PSD fixed point, so no Eq. 18 shortcut: predict via
	// Theorem 1 at the allocated rates.
	return slowdownUnderRatesInto(dst.ExpectedSlowdowns, classes, w, dst.Rates)
}

var _ InPlaceAllocator = LogWeight{}
