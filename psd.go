package psd

import (
	"psd/internal/analytic"
	"psd/internal/control"
	"psd/internal/core"
	"psd/internal/dist"
	"psd/internal/figures"
	"psd/internal/queueing"
	"psd/internal/simsrv"
	"psd/internal/sweep"
)

// Re-exported core types: see the respective internal packages for full
// documentation.
type (
	// Class pairs a differentiation parameter δ with an arrival rate.
	Class = core.Class
	// Workload carries the job-size moments the allocator needs.
	Workload = core.Workload
	// Allocation is a rate split plus its predicted slowdowns.
	Allocation = core.Allocation
	// Allocator is the pluggable rate-allocation strategy interface.
	Allocator = core.Allocator
	// Distribution is a positive job-size law with analytic moments.
	Distribution = dist.Distribution
	// BoundedPareto is the paper's heavy-tailed size distribution.
	BoundedPareto = dist.BoundedPareto
	// SimConfig parametrizes one simulation run (paper §4.1 defaults).
	SimConfig = simsrv.Config
	// SimClass declares one class in a simulation.
	SimClass = simsrv.ClassConfig
	// SimResult is a single replication's outcome.
	SimResult = simsrv.Result
	// SimAggregate averages many replications (paper: 100 runs).
	SimAggregate = simsrv.Aggregate
	// Figure is one regenerated evaluation figure.
	Figure = figures.Figure
	// FigureOptions sets figure fidelity (runs, horizon, loads).
	FigureOptions = figures.Options
	// SweepPoint is one scenario grid point (config + replication count).
	SweepPoint = sweep.Point
	// SweepEngine runs scenario grids over a pool of reusable arenas.
	SweepEngine = sweep.Engine
	// SweepEngineKind routes points: simulate, closed forms where
	// analytic, or closed forms only.
	SweepEngineKind = sweep.EngineKind
	// AnalyticEvaluation is one point's closed-form result (Theorem 1 /
	// Eq. 18 at the stationary allocation).
	AnalyticEvaluation = analytic.Evaluation
	// ControlLoop is the shared estimate→control→allocate plane driven by
	// both the simulator and the live HTTP server.
	ControlLoop = control.Loop
	// ControlLoopConfig parametrizes a ControlLoop.
	ControlLoopConfig = control.LoopConfig
	// EstimatorKind selects the control plane's load smoothing.
	EstimatorKind = control.EstimatorKind
	// LoadPhase is one segment of a transient arrival-rate schedule.
	LoadPhase = simsrv.LoadPhase
	// Policy is one registered allocation policy: name, summary,
	// capability flags and allocator factory.
	Policy = core.Policy
	// PolicyCapabilities are a policy's registry capability flags
	// (analytic-eligible, needs-size-info, degradation-aware).
	PolicyCapabilities = core.Capabilities
)

// Estimator kinds for SimConfig.Estimator / ControlLoopConfig.Estimator.
const (
	// WindowEstimation is the paper's §4.1 sliding-window mean.
	WindowEstimation = control.Window
	// EWMAEstimation reacts faster after load shifts at equal noise.
	EWMAEstimation = control.EWMA
)

// Sweep engine kinds for SweepEngine.Kind.
const (
	// EngineDES simulates every point (the default; bit-identical to the
	// pre-router engine).
	EngineDES = sweep.DES
	// EngineAuto evaluates analytic steady states in closed form and
	// simulates the rest.
	EngineAuto = sweep.Auto
	// EngineAnalytic refuses to simulate: non-analytic points error with
	// ErrNeedsSimulation.
	EngineAnalytic = sweep.Analytic
)

// ErrNeedsSimulation marks a configuration the closed forms cannot
// evaluate (transient, packetized, trace-driven, closed-loop, or with
// divergent moments). Test with errors.Is.
var ErrNeedsSimulation = analytic.ErrNeedsSimulation

// EvaluateAnalytic computes a configuration's stationary slowdowns,
// rates and achieved ratios directly from the paper's closed forms —
// the 100–1000× fast path behind SweepEngine's Auto/Analytic kinds.
func EvaluateAnalytic(cfg SimConfig) (*AnalyticEvaluation, error) {
	return analytic.Evaluate(cfg)
}

// LoadStep builds a SimConfig.LoadSchedule with one global rate step at
// time at (absolute simulation time, warmup included).
func LoadStep(at, factor float64) []LoadPhase { return simsrv.LoadStep(at, factor) }

// FlashCrowd builds a transient surge schedule: factor× the configured
// rates during [at, at+duration), then back to base.
func FlashCrowd(at, duration, factor float64) []LoadPhase {
	return simsrv.FlashCrowd(at, duration, factor)
}

// ClassMixChurn rotates a traffic surge across classes every period while
// keeping the aggregate offered load roughly constant.
func ClassMixChurn(classes int, at, period float64, count int, hi, lo float64) []LoadPhase {
	return simsrv.ClassMixChurn(classes, at, period, count, hi, lo)
}

// NewBoundedPareto constructs BP(k, p, α); the paper's default is
// BP(0.1, 100, 1.5) via PaperWorkload.
func NewBoundedPareto(k, p, alpha float64) (*BoundedPareto, error) {
	return dist.NewBoundedPareto(k, p, alpha)
}

// PaperWorkload returns the paper's §4.1 Bounded Pareto: k=0.1, p=100,
// α=1.5.
func PaperWorkload() *BoundedPareto { return dist.PaperDefault() }

// AllocateRates runs the paper's Eq. 17 strategy: given per-class demand
// and δ, split unit capacity so expected slowdowns are proportional to δ.
func AllocateRates(classes []Class, d Distribution) (Allocation, error) {
	w, err := core.WorkloadFromDist(d)
	if err != nil {
		return Allocation{}, err
	}
	return core.PSD{}.Allocate(classes, w)
}

// ExpectedSlowdown evaluates Theorem 1: the mean slowdown of a Poisson(λ)
// class on a task server of capacity rate with job sizes from d.
func ExpectedSlowdown(lambda float64, d Distribution, rate float64) (float64, error) {
	return queueing.TaskServerSlowdown(lambda, d, rate)
}

// Simulate runs one replication of the paper's simulation model.
func Simulate(cfg SimConfig) (*SimResult, error) { return simsrv.Run(cfg) }

// SimulateN runs n independent replications and aggregates them (the
// paper reports averages of 100 runs). It is a one-point sweep: the
// replications share a worker pool of reusable simulation arenas and
// stream into the aggregate in replication order.
func SimulateN(cfg SimConfig, n int) (*SimAggregate, error) {
	aggs, err := sweep.Run([]sweep.Point{{Cfg: cfg, Runs: n}})
	if err != nil {
		return nil, err
	}
	return aggs[0], nil
}

// Sweep executes a whole scenario grid — the unit a figure or a capacity
// study actually runs — across a fixed pool of reusable simulation
// arenas, returning one aggregate per point in order. See internal/sweep
// for the engine's scheduling and determinism guarantees.
func Sweep(points []SweepPoint) ([]*SimAggregate, error) { return sweep.Run(points) }

// EqualLoadSimConfig builds the paper's standard scenario: classes with
// the given δ values at equal per-class load summing to utilization rho.
// Pass nil for the paper's default service distribution.
func EqualLoadSimConfig(deltas []float64, rho float64, service Distribution) SimConfig {
	return simsrv.EqualLoadConfig(deltas, rho, service)
}

// GenerateFigure regenerates one of the paper's evaluation figures
// (IDs 2–12) or the beyond-paper studies (13: estimator transient,
// 14: policy tournament).
func GenerateFigure(id int, opts FigureOptions) (Figure, error) {
	return figures.Generate(id, opts)
}

// PSDAllocator returns the paper's allocator. The rest of the policy zoo
// is reachable by name through ParseAllocator / Policies.
func PSDAllocator() Allocator { return core.PSD{} }

// ParseAllocator resolves a registered policy name ("psd", "pdd",
// "equal", "demand", "ppsd", "log", "downgrade", "hesrpt") to a fresh
// allocator — the single parsing seam every CLI shares.
func ParseAllocator(name string) (Allocator, error) { return core.Parse(name) }

// AllocatorNames lists the registered policy names, sorted.
func AllocatorNames() []string { return core.Names() }

// Policies lists every registered policy with its capability flags, in
// registration order.
func Policies() []Policy { return core.Policies() }
