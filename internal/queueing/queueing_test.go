package queueing

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"psd/internal/dist"
)

func relErr(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

func TestUtilization(t *testing.T) {
	d, _ := dist.NewDeterministic(2)
	if got := Utilization(0.25, d, 1); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
	if got := Utilization(0.25, d, 0.5); got != 1 {
		t.Fatalf("utilization at half rate = %v, want 1", got)
	}
}

func TestPKWaitMM1Consistency(t *testing.T) {
	// For exponential service, P-K reduces to the M/M/1 waiting time.
	mu := 2.0
	d, _ := dist.NewExponential(mu)
	for _, lambda := range []float64{0.1, 0.5, 1.0, 1.9} {
		pk, err := PKWait(lambda, d)
		if err != nil {
			t.Fatalf("lambda=%v: %v", lambda, err)
		}
		mm1, err := MM1Wait(lambda, mu)
		if err != nil {
			t.Fatal(err)
		}
		if relErr(pk, mm1) > 1e-12 {
			t.Errorf("lambda=%v: PK=%v MM1=%v", lambda, pk, mm1)
		}
	}
}

func TestPKWaitMD1KnownValue(t *testing.T) {
	// M/D/1: E[W] = ρ·x̄ / (2(1−ρ)). With x̄=1, λ=0.5: 0.5/(2·0.5) = 0.5.
	d, _ := dist.NewDeterministic(1)
	w, err := PKWait(0.5, d)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(w, 0.5) > 1e-12 {
		t.Fatalf("M/D/1 wait = %v, want 0.5", w)
	}
}

func TestPKWaitUnstable(t *testing.T) {
	d, _ := dist.NewDeterministic(1)
	if _, err := PKWait(1.0, d); !errors.Is(err, ErrUnstable) {
		t.Fatalf("rho=1 should be unstable, got %v", err)
	}
	if _, err := PKWait(2.0, d); !errors.Is(err, ErrUnstable) {
		t.Fatal("rho=2 should be unstable")
	}
}

func TestPKWaitInvalidInputs(t *testing.T) {
	d, _ := dist.NewDeterministic(1)
	if _, err := PKWait(-1, d); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := PKWaitRate(0.5, d, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := PKWaitRate(0.5, d, math.Inf(1)); err == nil {
		t.Error("infinite rate accepted")
	}
}

// TestPKWaitRateLemma2 confirms that applying P-K to the rate-r server
// equals applying it to the explicitly scaled distribution — Lemma 2.
func TestPKWaitRateLemma2(t *testing.T) {
	base := dist.PaperDefault()
	f := func(rawRate, rawLoad float64) bool {
		rate := 0.1 + math.Mod(math.Abs(rawRate), 1)*0.9
		load := 0.05 + math.Mod(math.Abs(rawLoad), 1)*0.85 // rho in (0.05, 0.9)
		lambda := load * rate / base.Mean()
		direct, err1 := PKWaitRate(lambda, base, rate)
		scaled, err2 := base.Scaled(rate)
		if err2 != nil {
			return false
		}
		viaScaled, err3 := PKWait(lambda, scaled)
		if err1 != nil || err3 != nil {
			return false
		}
		return relErr(direct, viaScaled) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem1MatchesLemma1OnScaledDist verifies Theorem 1 as the
// composition of Lemma 1 and Lemma 2: slowdown on a rate-r task server
// equals the unit-rate slowdown of the scaled service distribution.
func TestTheorem1MatchesLemma1OnScaledDist(t *testing.T) {
	base := dist.PaperDefault()
	f := func(rawRate, rawLoad float64) bool {
		rate := 0.1 + math.Mod(math.Abs(rawRate), 1)*0.9
		load := 0.05 + math.Mod(math.Abs(rawLoad), 1)*0.85
		lambda := load * rate / base.Mean()
		s1, err1 := TaskServerSlowdown(lambda, base, rate)
		scaled, _ := base.Scaled(rate)
		s2, err2 := ExpectedSlowdown(lambda, scaled)
		if err1 != nil || err2 != nil {
			return false
		}
		return relErr(s1, s2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedSlowdownPaperDefaultValue(t *testing.T) {
	// Hand-computed reference for BP(0.1, 100, 1.5) at rho = 0.5:
	// E[X] ≈ 0.290548, E[X²] ≈ 0.918712, E[1/X] ≈ 6.00036
	// λ = 0.5/E[X]; E[S] = λ·E[X²]·E[1/X]/(2·0.5).
	d := dist.PaperDefault()
	lambda := 0.5 / d.Mean()
	want := lambda * d.SecondMoment() * d.InverseMoment() / (2 * 0.5)
	got, err := ExpectedSlowdown(lambda, d)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got, want) > 1e-12 {
		t.Fatalf("slowdown = %v, want %v", got, want)
	}
	// Magnitude sanity: roughly 9.5 for these parameters.
	if got < 8 || got > 11 {
		t.Fatalf("slowdown %v outside expected ballpark [8, 11]", got)
	}
}

func TestExpectedSlowdownDivergesForExponential(t *testing.T) {
	d, _ := dist.NewExponential(1)
	if _, err := ExpectedSlowdown(0.5, d); !errors.Is(err, ErrDivergent) {
		t.Fatalf("exponential slowdown should diverge, got %v", err)
	}
}

func TestTaskServerSlowdownZeroArrivals(t *testing.T) {
	d := dist.PaperDefault()
	s, err := TaskServerSlowdown(0, d, 0.5)
	if err != nil || s != 0 {
		t.Fatalf("zero-lambda slowdown = %v err=%v", s, err)
	}
}

func TestTaskServerSlowdownUnstable(t *testing.T) {
	d := dist.PaperDefault()
	lambda := 0.6 / d.Mean() // demand 0.6
	if _, err := TaskServerSlowdown(lambda, d, 0.5); !errors.Is(err, ErrUnstable) {
		t.Fatal("demand > rate should be unstable")
	}
	if _, err := TaskServerSlowdown(lambda, d, 0.6); !errors.Is(err, ErrUnstable) {
		t.Fatal("demand == rate should be unstable")
	}
}

// TestSlowdownMonotoneInLoad: expected slowdown strictly increases with
// arrival rate (paper property 1 at the single-queue level).
func TestSlowdownMonotoneInLoad(t *testing.T) {
	d := dist.PaperDefault()
	prev := -1.0
	for _, rho := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.95} {
		lambda := rho / d.Mean()
		s, err := ExpectedSlowdown(lambda, d)
		if err != nil {
			t.Fatal(err)
		}
		if s <= prev {
			t.Fatalf("slowdown not increasing at rho=%v: %v <= %v", rho, s, prev)
		}
		prev = s
	}
}

// TestSlowdownShapeSensitivity mirrors §4.5: smaller α (burstier) gives
// larger slowdown; larger upper bound gives larger slowdown.
func TestSlowdownShapeSensitivity(t *testing.T) {
	prev := math.Inf(1)
	for _, alpha := range []float64{1.1, 1.3, 1.5, 1.7, 1.9} {
		d := dist.MustBoundedPareto(0.1, 100, alpha)
		lambda := 0.7 / d.Mean()
		s, err := ExpectedSlowdown(lambda, d)
		if err != nil {
			t.Fatal(err)
		}
		if s >= prev {
			t.Fatalf("slowdown not decreasing in alpha at %v: %v >= %v", alpha, s, prev)
		}
		prev = s
	}
	prev = 0
	for _, p := range []float64{100, 1000, 10000} {
		d := dist.MustBoundedPareto(0.1, p, 1.5)
		lambda := 0.7 / d.Mean()
		s, err := ExpectedSlowdown(lambda, d)
		if err != nil {
			t.Fatal(err)
		}
		if s <= prev {
			t.Fatalf("slowdown not increasing in p at %v: %v <= %v", p, s, prev)
		}
		prev = s
	}
}

func TestMD1SlowdownMatchesGeneralFormula(t *testing.T) {
	// Theorem 1 with a Deterministic distribution must agree with Eq. 15.
	xbar := 2.5
	det, _ := dist.NewDeterministic(xbar)
	f := func(rawRate, rawLoad float64) bool {
		rate := 0.2 + math.Mod(math.Abs(rawRate), 1)*0.8
		load := 0.05 + math.Mod(math.Abs(rawLoad), 1)*0.85
		lambda := load * rate / xbar
		general, err1 := TaskServerSlowdown(lambda, det, rate)
		special, err2 := MD1Slowdown(lambda, xbar, rate)
		if err1 != nil || err2 != nil {
			return false
		}
		return relErr(general, special) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMD1SlowdownValidation(t *testing.T) {
	if _, err := MD1Slowdown(0.5, 0, 1); err == nil {
		t.Error("accepted zero job size")
	}
	if _, err := MD1Slowdown(0.5, 3, 1); !errors.Is(err, ErrUnstable) {
		t.Error("overload not detected")
	}
	if s, err := MD1Slowdown(0, 1, 1); err != nil || s != 0 {
		t.Error("zero arrivals should give zero slowdown")
	}
}

func TestMM1WaitValidation(t *testing.T) {
	if _, err := MM1Wait(2, 2); !errors.Is(err, ErrUnstable) {
		t.Error("lambda=mu should be unstable")
	}
	if _, err := MM1Wait(1, 0); err == nil {
		t.Error("zero mu accepted")
	}
	w, err := MM1Wait(1, 2)
	if err != nil || relErr(w, 0.5) > 1e-12 {
		t.Errorf("MM1Wait(1,2) = %v, want 0.5", w)
	}
}

func TestSlowdownConstant(t *testing.T) {
	d := dist.PaperDefault()
	c, err := SlowdownConstant(d)
	if err != nil {
		t.Fatal(err)
	}
	want := d.SecondMoment() * d.InverseMoment() / 2
	if relErr(c, want) > 1e-12 {
		t.Fatalf("C = %v, want %v", c, want)
	}
	exp, _ := dist.NewExponential(1)
	if _, err := SlowdownConstant(exp); !errors.Is(err, ErrDivergent) {
		t.Fatal("C should diverge for exponential")
	}
}

// TestSlowdownScaleInvariance: slowdown is dimensionless — scaling all job
// sizes by c and the arrival rate by 1/c leaves E[S] unchanged.
func TestSlowdownScaleInvariance(t *testing.T) {
	base := dist.PaperDefault()
	lambda := 0.6 / base.Mean()
	s0, err := ExpectedSlowdown(lambda, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{0.1, 2, 10} {
		scaled, _ := dist.NewScaled(base, 1/c) // sizes ×c
		s, err := ExpectedSlowdown(lambda/c, scaled)
		if err != nil {
			t.Fatal(err)
		}
		if relErr(s, s0) > 1e-9 {
			t.Errorf("scale %v: slowdown %v != %v", c, s, s0)
		}
	}
}

func BenchmarkTaskServerSlowdown(b *testing.B) {
	d := dist.PaperDefault()
	lambda := 0.5 / d.Mean()
	var sink float64
	for i := 0; i < b.N; i++ {
		s, _ := TaskServerSlowdown(lambda, d, 0.7)
		sink += s
	}
	_ = sink
}
