package core

import (
	"math"
	"testing"
	"testing/quick"

	"psd/internal/dist"
)

func mustPaper() *dist.BoundedPareto { return dist.PaperDefault() }

func TestEqualShare(t *testing.T) {
	w := paperWorkload(t)
	classes := equalLoadClasses([]float64{1, 2}, 0.6, w)
	alloc, err := EqualShare{}.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Rates[0] != 0.5 || alloc.Rates[1] != 0.5 {
		t.Fatalf("rates = %v, want [0.5 0.5]", alloc.Rates)
	}
	// Equal loads + equal rates ⇒ identical slowdowns: no differentiation.
	if relErr(alloc.ExpectedSlowdowns[0], alloc.ExpectedSlowdowns[1]) > 1e-12 {
		t.Fatalf("equal share should not differentiate: %v", alloc.ExpectedSlowdowns)
	}
}

func TestEqualShareOverloadedClass(t *testing.T) {
	w := paperWorkload(t)
	// Class 0 alone demands 0.6 > 0.5 share.
	classes := []Class{
		{Delta: 1, Lambda: 0.6 / w.MeanSize},
		{Delta: 2, Lambda: 0.1 / w.MeanSize},
	}
	if _, err := (EqualShare{}).Allocate(classes, w); err == nil {
		t.Fatal("equal share should reject class demand above its share")
	}
}

func TestDemandProportionalEqualizesSlowdowns(t *testing.T) {
	w := paperWorkload(t)
	f := func(rawRho, rawSkew float64) bool {
		rho := 0.1 + math.Mod(math.Abs(rawRho), 1)*0.8
		skew := 0.1 + math.Mod(math.Abs(rawSkew), 1)*0.8
		classes := []Class{
			{Delta: 1, Lambda: rho * skew / w.MeanSize},
			{Delta: 4, Lambda: rho * (1 - skew) / w.MeanSize},
		}
		alloc, err := DemandProportional{}.Allocate(classes, w)
		if err != nil {
			return false
		}
		// Demand-proportional rates equalize utilization, hence E[S].
		return relErr(alloc.ExpectedSlowdowns[0], alloc.ExpectedSlowdowns[1]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDemandProportionalZeroLoad(t *testing.T) {
	w := paperWorkload(t)
	classes := []Class{{Delta: 1, Lambda: 0}, {Delta: 2, Lambda: 0}}
	alloc, err := DemandProportional{}.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(alloc.Rates[0], 0.5) > 1e-12 {
		t.Fatalf("zero-load split = %v", alloc.Rates)
	}
}

func TestStaticAllocator(t *testing.T) {
	w := paperWorkload(t)
	st, err := NewStatic([]float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	classes := equalLoadClasses([]float64{1, 2}, 0.4, w)
	alloc, err := st.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(alloc.Rates[0], 0.75) > 1e-12 || relErr(alloc.Rates[1], 0.25) > 1e-12 {
		t.Fatalf("static rates = %v, want [0.75 0.25]", alloc.Rates)
	}
}

func TestStaticValidation(t *testing.T) {
	if _, err := NewStatic(nil); err == nil {
		t.Error("accepted empty weights")
	}
	if _, err := NewStatic([]float64{1, 0}); err == nil {
		t.Error("accepted zero weight")
	}
	if _, err := NewStatic([]float64{1, -2}); err == nil {
		t.Error("accepted negative weight")
	}
	st, _ := NewStatic([]float64{1, 1, 1})
	w := paperWorkload(t)
	if _, err := st.Allocate(equalLoadClasses([]float64{1, 2}, 0.3, w), w); err == nil {
		t.Error("accepted class-count mismatch")
	}
}

// TestPDDAchievesDelayRatios verifies the PDD baseline solves its own
// objective: P-K waiting times under the computed rates are in ratio δ.
func TestPDDAchievesDelayRatios(t *testing.T) {
	w := paperWorkload(t)
	f := func(rawRho, rawD2 float64) bool {
		rho := 0.1 + math.Mod(math.Abs(rawRho), 1)*0.8
		d2 := 1.5 + math.Mod(math.Abs(rawD2), 1)*6
		classes := equalLoadClasses([]float64{1, d2}, rho, w)
		alloc, err := PDD{}.Allocate(classes, w)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, r := range alloc.Rates {
			sum += r
		}
		if math.Abs(sum-1) > 1e-6 {
			return false
		}
		// E[W_i] = λ_iE[X²]/(2 r_i (r_i − λ_iE[X]))
		wait := func(i int) float64 {
			c := classes[i]
			r := alloc.Rates[i]
			return c.Lambda * w.SecondMoment / (2 * r * (r - c.Lambda*w.MeanSize))
		}
		return relErr(wait(1)/wait(0), d2) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPDDSlowdownRatiosSkewed confirms the paper's argument: the PDD
// allocation yields slowdown ratios of δ₂·r₂/(δ₁·r₁) ≠ δ₂/δ₁ whenever the
// rates differ, so PDD cannot provide PSD.
func TestPDDSlowdownRatiosSkewed(t *testing.T) {
	w := paperWorkload(t)
	classes := equalLoadClasses([]float64{1, 4}, 0.6, w)
	alloc, err := PDD{}.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	slowRatio := alloc.ExpectedSlowdowns[1] / alloc.ExpectedSlowdowns[0]
	wantSkewed := 4 * alloc.Rates[1] / alloc.Rates[0]
	if relErr(slowRatio, wantSkewed) > 1e-4 {
		t.Fatalf("slowdown ratio %v, expected skewed %v", slowRatio, wantSkewed)
	}
	if relErr(slowRatio, 4) < 0.01 {
		t.Fatalf("PDD accidentally achieved the PSD target ratio %v — rates %v", slowRatio, alloc.Rates)
	}
}

func TestPDDAllIdle(t *testing.T) {
	w := paperWorkload(t)
	classes := []Class{{Delta: 1, Lambda: 0}, {Delta: 2, Lambda: 0}}
	alloc, err := PDD{}.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(alloc.Rates[0]+alloc.Rates[1], 1) > 1e-9 {
		t.Fatalf("idle PDD rates = %v", alloc.Rates)
	}
}

func TestPDDWithIdleClass(t *testing.T) {
	w := paperWorkload(t)
	classes := []Class{
		{Delta: 1, Lambda: 0.4 / w.MeanSize},
		{Delta: 2, Lambda: 0},
	}
	alloc, err := PDD{}.Allocate(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Rates[0] < 0.999 {
		t.Fatalf("active class should absorb idle capacity, rates = %v", alloc.Rates)
	}
}

// TestAllAllocatorsStableRates: every allocator returns rates that keep
// every active class stable and sum to ≤ 1 (+ε). The registry supplies
// the policy zoo, so a newly registered policy is covered automatically;
// Static rides along as the parameterized outsider.
func TestAllAllocatorsStableRates(t *testing.T) {
	w := paperWorkload(t)
	st, _ := NewStatic([]float64{2, 1})
	allocators := []Allocator{st}
	for _, p := range Policies() {
		allocators = append(allocators, p.New())
	}
	for _, rho := range []float64{0.2, 0.5, 0.8} {
		classes := equalLoadClasses([]float64{1, 2}, rho, w)
		for _, a := range allocators {
			alloc, err := a.Allocate(classes, w)
			if err != nil {
				// Static with weights (2/3, 1/3): class 1 gets 1/3 and
				// demands rho/2; stable when rho/2 < 1/3, i.e. rho < 2/3.
				continue
			}
			sum := 0.0
			for i, r := range alloc.Rates {
				sum += r
				if classes[i].Lambda > 0 && r <= classes[i].Lambda*w.MeanSize {
					// Static allocators may legitimately starve a class;
					// the prediction must then be +Inf, not bogus.
					if !math.IsInf(alloc.ExpectedSlowdowns[i], 1) {
						t.Errorf("%s rho=%v class %d starved but slowdown=%v",
							a.Name(), rho, i, alloc.ExpectedSlowdowns[i])
					}
				}
			}
			if sum > 1+1e-9 {
				t.Errorf("%s rho=%v rates sum to %v > 1", a.Name(), rho, sum)
			}
		}
	}
}

func BenchmarkPSDAllocate(b *testing.B) {
	w, _ := WorkloadFromDist(mustPaper())
	classes := equalLoadClasses([]float64{1, 2, 3}, 0.7, w)
	for i := 0; i < b.N; i++ {
		if _, err := (PSD{}).Allocate(classes, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPDDAllocate(b *testing.B) {
	w, _ := WorkloadFromDist(mustPaper())
	classes := equalLoadClasses([]float64{1, 2, 3}, 0.7, w)
	for i := 0; i < b.N; i++ {
		if _, err := (PDD{}).Allocate(classes, w); err != nil {
			b.Fatal(err)
		}
	}
}
