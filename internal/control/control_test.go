package control

import (
	"math"
	"testing"
	"testing/quick"
)

func relErr(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

func TestWindowEstimatorBasics(t *testing.T) {
	e, err := NewWindowEstimator(2, 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if l := e.Lambdas(); l[0] != 0 || l[1] != 0 {
		t.Fatalf("empty estimator lambdas = %v", l)
	}
	if err := e.ObserveWindow([]float64{100, 50}, []float64{30, 15}); err != nil {
		t.Fatal(err)
	}
	l := e.Lambdas()
	if relErr(l[0], 0.1) > 1e-12 || relErr(l[1], 0.05) > 1e-12 {
		t.Fatalf("lambdas = %v", l)
	}
	loads := e.Loads()
	if relErr(loads[0], 0.03) > 1e-12 {
		t.Fatalf("loads = %v", loads)
	}
}

func TestWindowEstimatorAveragesHistory(t *testing.T) {
	e, _ := NewWindowEstimator(1, 5, 1000)
	for _, c := range []float64{100, 200, 300, 400, 500} {
		if err := e.ObserveWindow([]float64{c}, []float64{c}); err != nil {
			t.Fatal(err)
		}
	}
	// Mean of last 5 windows: 300 arrivals per 1000 tu.
	if l := e.Lambdas(); relErr(l[0], 0.3) > 1e-12 {
		t.Fatalf("lambda = %v, want 0.3", l[0])
	}
	// Sixth window evicts the first.
	_ = e.ObserveWindow([]float64{600}, []float64{600})
	if l := e.Lambdas(); relErr(l[0], 0.4) > 1e-12 {
		t.Fatalf("lambda after eviction = %v, want 0.4", l[0])
	}
}

func TestWindowEstimatorPartialFill(t *testing.T) {
	e, _ := NewWindowEstimator(1, 5, 100)
	_ = e.ObserveWindow([]float64{10}, []float64{10})
	_ = e.ObserveWindow([]float64{20}, []float64{20})
	// Two windows only: mean over 200 tu = 15/100.
	if l := e.Lambdas(); relErr(l[0], 0.15) > 1e-12 {
		t.Fatalf("partial-fill lambda = %v, want 0.15", l[0])
	}
}

func TestWindowEstimatorValidation(t *testing.T) {
	if _, err := NewWindowEstimator(0, 5, 1000); err == nil {
		t.Error("accepted zero classes")
	}
	if _, err := NewWindowEstimator(1, 0, 1000); err == nil {
		t.Error("accepted zero history")
	}
	if _, err := NewWindowEstimator(1, 5, 0); err == nil {
		t.Error("accepted zero window")
	}
	e, _ := NewWindowEstimator(2, 5, 1000)
	if err := e.ObserveWindow([]float64{1}, []float64{1, 2}); err != ErrDimension {
		t.Error("dimension mismatch not detected")
	}
}

func TestEWMAEstimatorConvergence(t *testing.T) {
	e, err := NewEWMAEstimator(1, 0.3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Constant input converges exactly to the input rate.
	for i := 0; i < 50; i++ {
		_ = e.ObserveWindow([]float64{250}, []float64{75})
	}
	if l := e.Lambdas(); relErr(l[0], 0.25) > 1e-9 {
		t.Fatalf("EWMA lambda = %v, want 0.25", l[0])
	}
	if w := e.Loads(); relErr(w[0], 0.075) > 1e-9 {
		t.Fatalf("EWMA load = %v, want 0.075", w[0])
	}
}

func TestEWMAPrimesOnFirstWindow(t *testing.T) {
	e, _ := NewEWMAEstimator(1, 0.1, 100)
	_ = e.ObserveWindow([]float64{40}, []float64{10})
	// First observation primes directly (no decay from zero).
	if l := e.Lambdas(); relErr(l[0], 0.4) > 1e-12 {
		t.Fatalf("primed lambda = %v, want 0.4", l[0])
	}
}

func TestEWMAReactsFasterThanWindow(t *testing.T) {
	// After a step change, EWMA(α=0.5) should be closer to the new level
	// than a 5-window mean after two windows.
	ew, _ := NewEWMAEstimator(1, 0.5, 100)
	win, _ := NewWindowEstimator(1, 5, 100)
	for i := 0; i < 5; i++ {
		_ = ew.ObserveWindow([]float64{10}, []float64{10})
		_ = win.ObserveWindow([]float64{10}, []float64{10})
	}
	for i := 0; i < 2; i++ {
		_ = ew.ObserveWindow([]float64{100}, []float64{100})
		_ = win.ObserveWindow([]float64{100}, []float64{100})
	}
	newLevel := 1.0
	gapEwma := math.Abs(ew.Lambdas()[0] - newLevel)
	gapWin := math.Abs(win.Lambdas()[0] - newLevel)
	if gapEwma >= gapWin {
		t.Fatalf("EWMA gap %v not smaller than window gap %v", gapEwma, gapWin)
	}
}

func TestEWMAValidation(t *testing.T) {
	if _, err := NewEWMAEstimator(1, 0, 100); err == nil {
		t.Error("accepted alpha=0")
	}
	if _, err := NewEWMAEstimator(1, 1.5, 100); err == nil {
		t.Error("accepted alpha>1")
	}
}

func TestRatioControllerConvergesOnBiasedPlant(t *testing.T) {
	// Plant: measured ratio = 0.6 × (δeff ratio) — a systematically
	// biased system. The controller must trim δeff so the measured ratio
	// hits the target of 2.
	rc, err := NewRatioController([]float64{1, 2}, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	var measuredRatio float64
	for i := 0; i < 60; i++ {
		deltas := rc.Deltas()
		measuredRatio = 0.6 * deltas[1] / deltas[0]
		if err := rc.Update([]float64{1, measuredRatio}); err != nil {
			t.Fatal(err)
		}
	}
	if relErr(measuredRatio, 2) > 0.02 {
		t.Fatalf("measured ratio converged to %v, want 2", measuredRatio)
	}
}

func TestRatioControllerClamps(t *testing.T) {
	rc, _ := NewRatioController([]float64{1, 2}, 1, 3)
	// Feed absurd measurements driving δeff to the clamp.
	for i := 0; i < 50; i++ {
		_ = rc.Update([]float64{1, 1000})
	}
	d := rc.Deltas()
	if d[1] < 2.0/3-1e-9 {
		t.Fatalf("delta2 %v fell below clamp %v", d[1], 2.0/3)
	}
	for i := 0; i < 100; i++ {
		_ = rc.Update([]float64{1, 0.001})
	}
	d = rc.Deltas()
	if d[1] > 6+1e-9 {
		t.Fatalf("delta2 %v above clamp 6", d[1])
	}
}

func TestRatioControllerSkipsMissingData(t *testing.T) {
	rc, _ := NewRatioController([]float64{1, 2}, 0.5, 4)
	before := rc.Deltas()
	_ = rc.Update([]float64{math.NaN(), 5}) // no reference signal
	_ = rc.Update([]float64{1, math.NaN()}) // no class-1 signal
	_ = rc.Update([]float64{1, 0})          // zero measurement
	after := rc.Deltas()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("deltas changed on missing data: %v -> %v", before, after)
		}
	}
}

func TestRatioControllerReset(t *testing.T) {
	rc, _ := NewRatioController([]float64{1, 2}, 1, 4)
	_ = rc.Update([]float64{1, 10})
	rc.Reset()
	d := rc.Deltas()
	if d[0] != 1 || d[1] != 2 {
		t.Fatalf("reset deltas = %v", d)
	}
}

func TestRatioControllerValidation(t *testing.T) {
	if _, err := NewRatioController(nil, 0.5, 4); err == nil {
		t.Error("accepted empty targets")
	}
	if _, err := NewRatioController([]float64{1, -2}, 0.5, 4); err == nil {
		t.Error("accepted negative delta")
	}
	if _, err := NewRatioController([]float64{1, 2}, 0, 4); err == nil {
		t.Error("accepted zero gain")
	}
	if _, err := NewRatioController([]float64{1, 2}, 0.5, 1); err == nil {
		t.Error("accepted maxTrim=1")
	}
	rc, _ := NewRatioController([]float64{1, 2}, 0.5, 4)
	if err := rc.Update([]float64{1}); err != ErrDimension {
		t.Error("dimension mismatch not detected")
	}
}

// TestControllerIdentityPlantIsStable: when the plant already delivers the
// target ratio, the controller must not drift.
func TestControllerIdentityPlantIsStable(t *testing.T) {
	f := func(rawGain float64) bool {
		gain := 0.05 + math.Mod(math.Abs(rawGain), 1)*0.95
		rc, err := NewRatioController([]float64{1, 3}, gain, 4)
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			// Plant: measured ratio exactly tracks target.
			if err := rc.Update([]float64{1, 3}); err != nil {
				return false
			}
		}
		d := rc.Deltas()
		return relErr(d[1], 3) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
