// Package dist models the job-size distributions the PSD machinery is
// parameterized by. The paper's rate allocator (Eq. 17) and slowdown
// closed form (Theorem 1) consume only three moments of the size law —
// E[X], E[X²] and E[1/X] — while the simulator, load generator and HTTP
// server need reproducible samples from the same law. A Distribution
// bundles both views and guarantees they agree.
//
// Every moment is closed-form (no numeric integration) and every sampler
// is an inverse-CDF (or otherwise single-pass) transform of an
// internal/rng Source, so that a fixed seed yields a fixed sample stream
// regardless of how many other components draw from sibling streams —
// the common-random-numbers discipline used throughout internal/simsrv.
//
// The paper's workload is the Bounded Pareto BP(k, p, α) (heavy-tailed
// web job sizes, §4.1); PaperDefault returns its BP(0.1, 100, 1.5)
// parameterization. Around it the package grows scenario coverage:
// Deterministic, Exponential and Uniform for closed-form cross-checks,
// Lognormal and Weibull for alternative heavy-or-light tails, a
// two-phase hyperexponential fit from (mean, SCV) for high-variance
// non-Pareto traffic, a trace-driven Empirical law, a Mixture
// combinator, and a Scaled wrapper implementing Lemma 2's capacity
// scaling.
//
// E[1/X] does not exist for every law (the exponential's diverges near
// zero, as does the Weibull's for shape ≤ 1). Such distributions return
// +Inf from InverseMoment; consumers that need a finite slowdown
// constant (internal/queueing, internal/core) detect this and fail with
// queueing.ErrDivergent / core.ErrInfeasible rather than propagating
// infinities.
package dist

import (
	"fmt"
	"math"

	"psd/internal/rng"
)

// Distribution is a positive job-size law with analytic moments and a
// reproducible sampler. Sizes are in work units: a server of rate r
// drains r work units per time unit, so a size-x job needs x/r time
// units of service on it.
type Distribution interface {
	// Mean returns E[X].
	Mean() float64
	// SecondMoment returns E[X²].
	SecondMoment() float64
	// InverseMoment returns E[1/X], or +Inf when the integral diverges
	// (slowdown has no finite expectation under such a law).
	InverseMoment() float64
	// Sample draws one job size from the law using src. Implementations
	// consume a deterministic number of variates per call wherever
	// possible so seeded streams stay aligned across runs.
	Sample(src *rng.Source) float64
	// String describes the law and its parameters compactly.
	String() string
}

// checkParam validates a strictly positive, finite scalar parameter.
func checkParam(name string, v float64) error {
	if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
		return fmt.Errorf("dist: %s %v must be positive and finite", name, v)
	}
	return nil
}

// checkMoments is the shared post-construction guard: individually
// valid parameters can still overflow (or underflow) float64 in the
// moment formulas, and an Inf/NaN mean or second moment would leak
// straight into the allocator. Only InverseMoment may be +Inf — that is
// the documented divergence signal, not an overflow.
func checkMoments(d Distribution) (Distribution, error) {
	m, m2 := d.Mean(), d.SecondMoment()
	if !(m > 0) || math.IsInf(m, 0) || math.IsNaN(m) ||
		!(m2 > 0) || math.IsInf(m2, 0) || math.IsNaN(m2) {
		return nil, fmt.Errorf("dist: %s moments overflow float64 (E[X]=%v, E[X²]=%v)", d, m, m2)
	}
	if inv := d.InverseMoment(); !(inv > 0) || math.IsNaN(inv) {
		return nil, fmt.Errorf("dist: %s has invalid E[1/X]=%v", d, inv)
	}
	return d, nil
}

// scaled is Lemma 2's capacity transform: if X is the job size against a
// unit-rate server, Y = X/rate is the effective size against a server of
// capacity rate.
type scaled struct {
	d    Distribution
	rate float64
}

// NewScaled wraps d with job sizes divided by rate (equivalently: the
// same work served by a machine rate times as fast). Moments transform
// exactly — E[Y] = E[X]/rate, E[Y²] = E[X²]/rate², E[1/Y] = rate·E[1/X]
// — which is how Lemma 2 turns Theorem 1's unit-capacity slowdown into
// the task-server form. A rate < 1 inflates sizes: NewScaled(d, 1.0/3)
// yields jobs three times as large, the model-mismatch workload used by
// the feedback ablation.
func NewScaled(d Distribution, rate float64) (Distribution, error) {
	if d == nil {
		return nil, fmt.Errorf("dist: cannot scale a nil distribution")
	}
	if err := checkParam("scale rate", rate); err != nil {
		return nil, err
	}
	return checkMoments(&scaled{d: d, rate: rate})
}

func (s *scaled) Mean() float64         { return s.d.Mean() / s.rate }
func (s *scaled) SecondMoment() float64 { return s.d.SecondMoment() / (s.rate * s.rate) }

func (s *scaled) InverseMoment() float64 {
	// rate·(+Inf) stays +Inf; the divergence is preserved.
	return s.rate * s.d.InverseMoment()
}

func (s *scaled) Sample(src *rng.Source) float64 { return s.d.Sample(src) / s.rate }

func (s *scaled) String() string {
	return fmt.Sprintf("Scaled(%s, rate=%g)", s.d, s.rate)
}
