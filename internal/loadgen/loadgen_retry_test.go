package loadgen

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"psd/internal/chaos"
)

// okBody is a minimal valid work response; the fixed slowdown lets tests
// assert that ONLY final successful attempts feed the statistics.
const okSlowdown = 3.5

func writeOK(w http.ResponseWriter) {
	fmt.Fprintf(w, `{"class":0,"size":1,"delay_ms":1,"service_ms":1,"slowdown":%g}`, okSlowdown)
}

func runShort(t *testing.T, url string, retries int, timeout time.Duration) *Report {
	t.Helper()
	rep, err := Run(context.Background(), Config{
		BaseURL:      url,
		Lambdas:      []float64{2}, // 2 per ms → ~600 arrivals
		TimeUnit:     time.Millisecond,
		Duration:     300 * time.Millisecond,
		Drain:        time.Second,
		MaxRetries:   retries,
		RetryBackoff: time.Millisecond,
		Timeout:      timeout,
		Seed:         9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRetryConfigValidation(t *testing.T) {
	ctx := context.Background()
	base := Config{BaseURL: "http://x", Lambdas: []float64{1}, Duration: time.Second}
	bad := base
	bad.Timeout = -time.Second
	if _, err := Run(ctx, bad); err == nil {
		t.Error("accepted negative Timeout")
	}
	bad = base
	bad.MaxRetries = -1
	if _, err := Run(ctx, bad); err == nil {
		t.Error("accepted negative MaxRetries")
	}
	bad = base
	bad.RetryBackoff = -time.Millisecond
	if _, err := Run(ctx, bad); err == nil {
		t.Error("accepted negative RetryBackoff")
	}
}

// TestRetryRecoversFlaky5xx: against a server that fails every other
// attempt with a 503, retried arrivals must all eventually complete —
// counted once each — with the retries in their own column and the
// slowdown statistics fed only by the final successful attempts. A
// single client worker serializes the attempts, making the alternation
// deterministic per arrival: first attempt 503, retry 200.
func TestRetryRecoversFlaky5xx(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1)%2 == 1 {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		writeOK(w)
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:      ts.URL + "/",
		Lambdas:      []float64{0.3},
		TimeUnit:     time.Millisecond,
		Duration:     400 * time.Millisecond,
		Drain:        2 * time.Second,
		Workers:      1,
		MaxPending:   256,
		MaxRetries:   1,
		RetryBackoff: time.Millisecond,
		Seed:         9,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Classes[0]
	if c.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if c.Completed != c.Sent || c.Errors != 0 {
		t.Fatalf("flaky server with retries: sent %d completed %d errors %d, want full completion",
			c.Sent, c.Completed, c.Errors)
	}
	if c.Retries != c.Sent {
		t.Fatalf("retries %d, want exactly one per arrival (%d sent)", c.Retries, c.Sent)
	}
	if math.Abs(c.MeanSlowdown-okSlowdown) > 1e-9 {
		t.Fatalf("mean slowdown %v, want exactly %v — failed attempts leaked into the stats", c.MeanSlowdown, okSlowdown)
	}
}

// TestRetriesExhaustedBecomeErrors: a hard-down server burns every retry
// and the arrival lands in the error column, never the completed one.
func TestRetriesExhaustedBecomeErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	rep := runShort(t, ts.URL+"/", 1, 0)
	c := rep.Classes[0]
	if c.Sent == 0 || c.Completed != 0 || c.Errors != c.Sent {
		t.Fatalf("hard-down server: sent %d completed %d errors %d", c.Sent, c.Completed, c.Errors)
	}
	if c.Retries != c.Sent {
		t.Fatalf("retries %d, want exactly one per arrival (%d)", c.Retries, c.Sent)
	}
}

// TestNoRetryOnPermanentStatus: 4xx responses are the client's own fault
// and must fail immediately without burning retry budget.
func TestNoRetryOnPermanentStatus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	defer ts.Close()

	rep := runShort(t, ts.URL+"/", 3, 0)
	c := rep.Classes[0]
	if c.Retries != 0 {
		t.Fatalf("4xx responses were retried %d times", c.Retries)
	}
	if c.Errors != c.Sent || c.Completed != 0 {
		t.Fatalf("4xx accounting wrong: sent %d completed %d errors %d", c.Sent, c.Completed, c.Errors)
	}
}

// TestPerAttemptTimeout: a hung server must cost each arrival at most
// (retries+1)·timeout, not the server's response time — the run finishes
// promptly with every arrival errored.
func TestPerAttemptTimeout(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	defer ts.Close()

	start := time.Now()
	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL + "/",
		Lambdas:  []float64{0.5},
		TimeUnit: time.Millisecond,
		Duration: 200 * time.Millisecond,
		Drain:    2 * time.Second,
		Timeout:  50 * time.Millisecond,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("run blocked on the hung server for %v", elapsed)
	}
	c := rep.Classes[0]
	if c.Sent == 0 || c.Completed != 0 || c.Errors != c.Sent {
		t.Fatalf("hung server with timeout: sent %d completed %d errors %d", c.Sent, c.Completed, c.Errors)
	}
}

// TestSlowLorisConnectionsDribble: with a chaos injector configured for
// slow-loris connections, the run holds them open and dribbles counted
// bytes while ordinary traffic proceeds.
func TestSlowLorisConnectionsDribble(t *testing.T) {
	inj, err := chaos.New(chaos.Config{
		Seed:  1,
		Loris: chaos.SlowLoris{Conns: 2, Interval: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeOK(w)
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL + "/",
		Lambdas:  []float64{0.5},
		TimeUnit: time.Millisecond,
		Duration: 400 * time.Millisecond,
		Drain:    200 * time.Millisecond,
		Chaos:    inj,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Classes[0].Completed == 0 {
		t.Fatal("loris connections starved ordinary traffic entirely")
	}
	if got := inj.Counts().LorisBytes; got < 2 {
		t.Fatalf("LorisBytes = %d, want a dribble from 2 connections over 400ms", got)
	}
}
