package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"psd/internal/dist"
	"psd/internal/httpsrv"
)

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{}); err == nil {
		t.Error("accepted empty BaseURL")
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x"}); err == nil {
		t.Error("accepted empty lambdas")
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x", Lambdas: []float64{1}}); err == nil {
		t.Error("accepted zero duration")
	}
}

func TestRunAgainstPSDServer(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short")
	}
	srv, err := httpsrv.New(httpsrv.Config{
		Deltas:   []float64{1, 2},
		TimeUnit: time.Millisecond,
		Window:   50,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Mux())
	defer func() { ts.Close(); srv.Close() }()

	small, _ := dist.NewUniform(0.5, 1.5)
	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL + "/",
		Lambdas:  []float64{0.2, 0.2}, // per time unit (1ms) → 200 rps/class
		TimeUnit: time.Millisecond,
		Service:  small,
		Duration: 1500 * time.Millisecond,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range rep.Classes {
		if c.Sent == 0 {
			t.Fatalf("class %d sent nothing", i)
		}
		if c.Completed == 0 {
			t.Fatalf("class %d completed nothing (errors=%d)", i, c.Errors)
		}
		if c.MeanLatencyMs <= 0 {
			t.Fatalf("class %d latency %v", i, c.MeanLatencyMs)
		}
	}
	if rep.Elapsed < time.Second {
		t.Fatalf("elapsed %v too short", rep.Elapsed)
	}
	// Ratio helper sanity (no strict value assertion: short run).
	if r := rep.SlowdownRatio(1); r < 0 {
		t.Fatalf("ratio %v negative", r)
	}
	if rep.SlowdownRatio(0) != 0 || rep.SlowdownRatio(5) != 0 {
		t.Fatal("out-of-range ratio should be 0")
	}
}

func TestRunRespectsContextCancel(t *testing.T) {
	srv, err := httpsrv.New(httpsrv.Config{Deltas: []float64{1}, TimeUnit: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Mux())
	defer func() { ts.Close(); srv.Close() }()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = Run(ctx, Config{
		BaseURL:  ts.URL + "/",
		Lambdas:  []float64{0.05},
		TimeUnit: time.Millisecond,
		Duration: 10 * time.Second,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("cancel not honored promptly")
	}
}
