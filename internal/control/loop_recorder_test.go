package control

import (
	"math"
	"testing"

	"psd/internal/obs"
)

// TestLoopRecorderRecordsTicks: with a flight recorder attached, every
// Tick — feasible or not — must leave one record carrying exactly what
// the allocator saw and produced, stamped on the control clock
// (ticks·Window).
func TestLoopRecorderRecordsTicks(t *testing.T) {
	rec, err := obs.NewFlightRecorder(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := loopConfig([]float64{1, 2})
	cfg.Recorder = rec
	lp, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rates1, err := lp.Tick(TickInput{Counts: []float64{10, 4}, Work: []float64{2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	want1 := append([]float64(nil), rates1...)
	lam := make([]float64, 2)
	lp.LambdasInto(lam)

	// Infeasible window: the loop errors, keeps the previous allocation.
	if _, err := lp.Tick(TickInput{Counts: []float64{1000, 0}, Work: []float64{600, 0}}); err == nil {
		t.Fatal("infeasible tick accepted")
	}

	ticks := rec.Snapshot()
	if len(ticks) != 2 {
		t.Fatalf("recorded %d ticks, want 2", len(ticks))
	}
	t0, t1 := ticks[0], ticks[1]
	if t0.Seq != 0 || t0.Time != 100 || t1.Seq != 1 || t1.Time != 200 {
		t.Fatalf("control-clock stamps wrong: %+v / %+v", t0, t1)
	}
	if t0.Flags != 0 {
		t.Fatalf("feasible tick flagged %b", t0.Flags)
	}
	for i := range want1 {
		if t0.Rates[i] != want1[i] {
			t.Fatalf("tick 0 rates %v, want %v", t0.Rates, want1)
		}
		if t0.Lambdas[i] != lam[i] {
			t.Fatalf("tick 0 lambdas %v, want %v", t0.Lambdas, lam)
		}
		if t0.EffDeltas[i] != cfg.Deltas[i] {
			t.Fatalf("tick 0 eff deltas %v, want %v", t0.EffDeltas, cfg.Deltas)
		}
		if !math.IsNaN(t0.Slowdowns[i]) {
			t.Fatalf("tick 0 slowdowns %v, want NaN (none measured)", t0.Slowdowns)
		}
		// Failed tick: flag set, previous rates retained in the record.
		if t1.Rates[i] != want1[i] {
			t.Fatalf("failed tick rates %v, want retained %v", t1.Rates, want1)
		}
	}
	if t1.Flags&obs.FlagAllocFailure == 0 {
		t.Fatalf("failed tick not flagged: %b", t1.Flags)
	}
}

// TestLoopRecorderOracleLambdas: on an oracle tick the record must carry
// the oracle values — what the allocator actually saw — not the
// estimator's.
func TestLoopRecorderOracleLambdas(t *testing.T) {
	rec, err := obs.NewFlightRecorder(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := loopConfig([]float64{1, 2})
	cfg.Recorder = rec
	lp, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle := []float64{0.4, 0.2}
	if _, err := lp.Tick(TickInput{Counts: []float64{1, 1}, Work: []float64{0.5, 0.5}, OracleLambdas: oracle}); err != nil {
		t.Fatal(err)
	}
	got := rec.Snapshot()[0].Lambdas
	for i := range oracle {
		if got[i] != oracle[i] {
			t.Fatalf("recorded lambdas %v, want oracle %v", got, oracle)
		}
	}
}

// TestLoopResetReusesRecorder: Reset must clear the recorder's history
// and re-dimension it to the new class count, retaining capacity.
func TestLoopResetReusesRecorder(t *testing.T) {
	rec, err := obs.NewFlightRecorder(2, 32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := loopConfig([]float64{1, 2})
	cfg.Recorder = rec
	var lp Loop
	if err := lp.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := lp.Tick(TickInput{Counts: []float64{1, 1}, Work: []float64{0.1, 0.1}}); err != nil {
		t.Fatal(err)
	}
	cfg3 := loopConfig([]float64{1, 2, 4})
	cfg3.Recorder = rec
	if err := lp.Reset(cfg3); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 0 || rec.Classes() != 3 || rec.Capacity() != 32 {
		t.Fatalf("after reset: len %d classes %d capacity %d, want 0/3/32", rec.Len(), rec.Classes(), rec.Capacity())
	}
	if _, err := lp.Tick(TickInput{Counts: []float64{1, 1, 1}, Work: []float64{0.1, 0.1, 0.1}}); err != nil {
		t.Fatal(err)
	}
	if got := rec.Snapshot()[0]; got.Seq != 0 || len(got.Rates) != 3 {
		t.Fatalf("post-reset record = %+v", got)
	}
}

// TestLoopTickAllocFreeWithRecorder extends the loop's zero-allocation
// guarantee to the instrumented path: a Tick that also flight-records
// must not allocate.
func TestLoopTickAllocFreeWithRecorder(t *testing.T) {
	rec, err := obs.NewFlightRecorder(2, 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := loopConfig([]float64{1, 2})
	cfg.Feedback = true
	cfg.FeedbackGain = 0.3
	cfg.Recorder = rec
	lp, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := TickInput{
		Counts:            []float64{10, 4},
		Work:              []float64{2, 1},
		MeasuredSlowdowns: []float64{1.5, 3.2},
	}
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := lp.Tick(in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("instrumented Tick allocates %v per call", allocs)
	}
}
