package httpsrv

import (
	"testing"
	"time"

	"psd/internal/admission"
	"psd/internal/chaos"
	"psd/internal/obs"
)

// rejectAll is the worst-case admission controller: with a ladder in
// front of it, any admitted request proves the degrade-before-shed gate.
type rejectAll struct{}

func (rejectAll) Admit(class int, size, now float64) bool { return false }
func (rejectAll) Name() string                            { return "rejectall" }

// overloadTick injects an infeasible window on every class and runs one
// manual reallocation (the Window: 1e9 configs never tick on their own).
func overloadTick(s *Server) {
	for _, cr := range s.classes {
		cr.injectWindow(4e9, 4e9) // λ̂ ⇒ ρ̂ >> 1
	}
	s.reallocate()
}

// healthyTick injects a small feasible window and reallocates.
func healthyTick(s *Server) {
	for _, cr := range s.classes {
		cr.injectWindow(10, 5)
	}
	s.reallocate()
}

// TestWatchdogDiscardsStaleWindow drives the stale-tick path
// deterministically: a reallocation arriving long past the threshold
// must freeze pacing at the last-good rates, discard the overlong
// window instead of feeding it to the estimator, and leave a counted,
// flagged trace.
func TestWatchdogDiscardsStaleWindow(t *testing.T) {
	// WatchdogFactor < 0 keeps the external monitor goroutine off: this
	// test drives the in-tick stale path alone, and overriding staleAfter
	// below must not race a concurrent monitor read.
	s, err := New(Config{Deltas: []float64{1, 2}, TimeUnit: time.Millisecond, Window: 1e9, WatchdogFactor: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The overlong window is class-1 heavy; if it leaked into the
	// estimator the later clean class-0 window could not claim ~all rate.
	s.classes[1].injectWindow(40, 20)
	s.staleAfter = 50 * time.Millisecond
	s.lastTickNano.Store(time.Now().Add(-time.Second).UnixNano())
	before := s.Rates()

	s.reallocate()

	after := s.Rates()
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("stale tick moved rates: %v -> %v", before, after)
		}
	}
	doc := s.Snapshot()
	if doc.WatchdogStaleTicks != 1 || !doc.WatchdogStalled {
		t.Fatalf("stale tick not accounted: staleTicks=%d stalled=%v", doc.WatchdogStaleTicks, doc.WatchdogStalled)
	}
	if doc.Reallocations != 0 {
		t.Fatalf("stale tick counted as a reallocation: %d", doc.Reallocations)
	}
	recs := s.rec.Snapshot()
	last := recs[len(recs)-1]
	if last.Flags&obs.FlagStaleTick == 0 {
		t.Fatalf("stale tick not flight-recorded: flags %08b", last.Flags)
	}
	for i, r := range last.Rates {
		if r != before[i] {
			t.Fatalf("freeze record rates %v, want frozen %v", last.Rates, before)
		}
	}

	// A prompt clean window (class-0 heavy) must clear the stall and feed
	// ONLY itself: class 0 claims nearly all capacity, proving the stale
	// class-1 window was discarded rather than folded into history.
	s.classes[0].injectWindow(40, 20)
	s.reallocate()
	doc = s.Snapshot()
	if doc.WatchdogStalled {
		t.Fatal("stalled gauge not cleared by a prompt tick")
	}
	if doc.WatchdogStaleTicks != 1 {
		t.Fatalf("prompt tick counted as stale: %d", doc.WatchdogStaleTicks)
	}
	rates := s.Rates()
	if !(rates[0] > 0.9) {
		t.Fatalf("rates %v after clean class-0 window: stale class-1 window leaked into the estimator", rates)
	}
}

// TestWatchdogCatchesStalledLoop runs the watchdog goroutine for real: a
// DropProb=1 injector swallows every reallocation tick, so the monitor
// must flag the stall from outside, and disarming chaos must let the
// loop recover and the flag clear.
func TestWatchdogCatchesStalledLoop(t *testing.T) {
	inj, err := chaos.New(chaos.Config{Seed: 1, DropProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Deltas:         []float64{1, 2},
		TimeUnit:       time.Millisecond,
		Window:         20, // 20ms period
		WatchdogFactor: 2,  // stale after 40ms
		Chaos:          inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	waitFor := func(cond func(MetricsDocument) bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if cond(s.Snapshot()) {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s: %+v", what, s.Snapshot())
	}

	waitFor(func(d MetricsDocument) bool { return d.WatchdogStalled && d.WatchdogStaleTicks >= 1 },
		"watchdog to flag the dropped-tick stall")
	found := false
	for _, r := range s.rec.Snapshot() {
		if r.Flags&obs.FlagStaleTick != 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no FlagStaleTick flight record during the stall")
	}

	inj.Disarm()
	waitFor(func(d MetricsDocument) bool { return !d.WatchdogStalled }, "recovery after disarming chaos")
	if drops := inj.Counts().DroppedTicks; drops < 1 {
		t.Fatalf("DroppedTicks = %d, want >= 1", drops)
	}
}

// TestLadderDegradesBeforeShedding is the deterministic degrade-first
// contract: with a worst-case (reject-everything) admission controller
// behind the ladder, requests keep flowing until every rung is engaged,
// the effective δ targets visibly step down the ladder, and recovery
// climbs back with hysteresis until the gate is open again.
func TestLadderDegradesBeforeShedding(t *testing.T) {
	ladder, err := admission.NewLadder(admission.LadderConfig{
		Multipliers:  []float64{2, 4},
		EngageAfter:  1,
		RecoverAfter: 2,
	}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Deltas:   []float64{1, 2},
		TimeUnit: time.Millisecond,
		Window:   1e9,
		// Depth-1 history so a healthy window replaces the overload
		// estimate immediately; deeper histories only stretch the
		// recovery timeline.
		HistoryWindows: 1,
		Admission:      rejectAll{},
		Ladder:         ladder,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	assertAdmit := func(wantOK bool, when string) {
		t.Helper()
		ok, charged := s.admit(0, 1)
		if ok != wantOK {
			t.Fatalf("%s: admit = %v, want %v", when, ok, wantOK)
		}
		if ok && charged {
			t.Fatalf("%s: ladder-bypassed admission was charged to the controller", when)
		}
	}

	assertAdmit(true, "nominal")

	// Rung 1: class 1 (the non-reference class) degrades, gate stays open.
	overloadTick(s)
	doc := s.Snapshot()
	if doc.Classes[1].DegradationLevel != 1 || doc.Classes[0].DegradationLevel != 0 {
		t.Fatalf("after 1 overload tick: levels %d/%d, want 0/1",
			doc.Classes[0].DegradationLevel, doc.Classes[1].DegradationLevel)
	}
	if doc.LadderShedding {
		t.Fatal("shedding with rungs still available")
	}
	if got := doc.Classes[1].EffectiveDelta; got != 4 {
		t.Fatalf("class 1 effective delta = %v, want base 2 x rung 2 = 4", got)
	}
	assertAdmit(true, "rung 1")

	// Rung 2: maxed out — only now may the admission controller shed.
	overloadTick(s)
	doc = s.Snapshot()
	if doc.Classes[1].DegradationLevel != 2 {
		t.Fatalf("after 2 overload ticks: level %d, want 2", doc.Classes[1].DegradationLevel)
	}
	if !doc.LadderShedding {
		t.Fatal("ladder maxed but shed gate closed")
	}
	if got := doc.Classes[1].EffectiveDelta; got != 8 {
		t.Fatalf("class 1 effective delta = %v, want base 2 x rung 4 = 8", got)
	}
	assertAdmit(false, "maxed out")

	// Recovery: RecoverAfter=2 healthy ticks per rung, one rung at a time;
	// the shed gate closes the moment the ladder is off the top rung.
	healthyTick(s)
	healthyTick(s)
	doc = s.Snapshot()
	if doc.Classes[1].DegradationLevel != 1 || doc.LadderShedding {
		t.Fatalf("first recovery step: level %d shedding %v, want 1/false",
			doc.Classes[1].DegradationLevel, doc.LadderShedding)
	}
	assertAdmit(true, "recovering")
	healthyTick(s)
	healthyTick(s)
	doc = s.Snapshot()
	if doc.Classes[1].DegradationLevel != 0 {
		t.Fatalf("full recovery: level %d, want 0", doc.Classes[1].DegradationLevel)
	}
	if got := doc.Classes[1].EffectiveDelta; got != 2 {
		t.Fatalf("recovered effective delta = %v, want base 2", got)
	}
}

// TestReusedLadderResetByNew is the reconfiguration regression: handing
// New a ladder that degraded under a previous server must start the new
// server at level 0 with the shed gate closed.
func TestReusedLadderResetByNew(t *testing.T) {
	ladder, err := admission.NewLadder(admission.LadderConfig{
		Multipliers: []float64{2},
		EngageAfter: 1,
	}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	ladder.Observe(1.5, true) // max out: 1 degradable class x 1 rung
	if !ladder.MaxedOut() {
		t.Fatal("setup: ladder not maxed")
	}

	s, err := New(Config{
		Deltas:    []float64{1, 2},
		TimeUnit:  time.Millisecond,
		Window:    1e9,
		Admission: rejectAll{},
		Ladder:    ladder,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	doc := s.Snapshot()
	if doc.LadderShedding || doc.Classes[1].DegradationLevel != 0 {
		t.Fatalf("new server inherited stale degradation: %+v", doc)
	}
	if ok, _ := s.admit(0, 1); !ok {
		t.Fatal("new server started shedding off a stale ladder")
	}
}

// TestChaosWorkerStallInflatesDelay: a StallProb=1 injector must show up
// as queueing delay on a served request and in the fault counts, and
// disarming must stop it.
func TestChaosWorkerStallInflatesDelay(t *testing.T) {
	inj, err := chaos.New(chaos.Config{Seed: 1, StallProb: 1, StallDur: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := fastServer(t, Config{Deltas: []float64{1}, Chaos: inj})

	var resp Response
	getJSON(t, ts.URL+"/?class=0&size=1", &resp)
	if resp.DelayMs < 25 {
		t.Fatalf("stalled request delay %vms, want >= ~30ms", resp.DelayMs)
	}
	if c := inj.Counts().Stalls; c < 1 {
		t.Fatalf("Stalls = %d, want >= 1", c)
	}

	inj.Disarm()
	getJSON(t, ts.URL+"/?class=0&size=1", &resp)
	if resp.DelayMs >= 25 {
		t.Fatalf("disarmed injector still stalling: delay %vms", resp.DelayMs)
	}
}

// TestChaosCorruptTickRejected wires CorruptProb=1 through a real
// reallocation: the poisoned window must be rejected and counted, rates
// must hold, and the rejection must reach both the metrics document and
// the flight recorder.
func TestChaosCorruptTickRejected(t *testing.T) {
	inj, err := chaos.New(chaos.Config{Seed: 3, CorruptProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Deltas: []float64{1, 2}, TimeUnit: time.Millisecond, Window: 1e9, Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	before := s.Rates()
	for _, cr := range s.classes {
		cr.injectWindow(40, 20)
	}
	s.reallocate()

	doc := s.Snapshot()
	if doc.TickInputRejected != 1 {
		t.Fatalf("TickInputRejected = %d, want 1", doc.TickInputRejected)
	}
	after := s.Rates()
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("corrupt tick moved rates: %v -> %v", before, after)
		}
	}
	recs := s.rec.Snapshot()
	if last := recs[len(recs)-1]; last.Flags&obs.FlagInputRejected == 0 {
		t.Fatalf("corrupt tick not flagged in the flight record: %08b", last.Flags)
	}

	// Disarmed, the same injector must leave a clean tick untouched.
	inj.Disarm()
	s.classes[0].injectWindow(40, 20)
	s.reallocate()
	doc = s.Snapshot()
	if doc.TickInputRejected != 1 {
		t.Fatalf("clean tick rejected: %d", doc.TickInputRejected)
	}
	if rates := s.Rates(); !(rates[0] > 0.9) {
		t.Fatalf("clean skewed window not allocated: %v", rates)
	}
}

// TestClockJumpSkewsAdmissionClock: injected jumps shift nowUnits by
// exactly the jump magnitude (the admission controllers' guards against
// non-monotone clocks are exercised in the admission package).
func TestClockJumpSkewsAdmissionClock(t *testing.T) {
	s, err := New(Config{Deltas: []float64{1}, TimeUnit: time.Millisecond, Window: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	before := s.nowUnits()
	s.addClockSkew(-500)
	s.addClockSkew(125)
	after := s.nowUnits()
	// Elapsed wall clock between the two reads only moves the clock
	// forward; the skew must account for the rest.
	if diff := after - before; diff < -376 || diff > -340 {
		t.Fatalf("clock skew moved nowUnits by %v, want about -375", diff)
	}
}
