package httpsrv

import (
	"math"
	"runtime"
	"testing"
	"time"

	"psd/internal/control"
	"psd/internal/core"
	"psd/internal/obs"
	"psd/internal/simsrv"
)

// parityTrace builds a deterministic 2-class arrival trace over total
// time units whose arrival times never coincide with a window boundary,
// so its per-window attribution is unambiguous.
func parityTrace(total float64) []simsrv.TraceRequest {
	sz := []float64{0.2, 0.7, 0.4, 1.1, 0.9, 0.15, 1.6, 0.5}
	var trace []simsrv.TraceRequest
	tm := 0.0
	for i := 0; tm < total; i++ {
		tm += 0.9 + float64(i%7)*0.31
		trace = append(trace, simsrv.TraceRequest{Time: tm, Class: i % 2, Size: sz[i%len(sz)]})
	}
	return trace[:len(trace)-1]
}

// windowTotals buckets a trace into per-window (counts, work) exactly as
// the simulator's estimator sees it: window k covers [k·W, (k+1)·W).
func windowTotals(trace []simsrv.TraceRequest, window float64, windows, classes int) (counts, work [][]float64) {
	counts = make([][]float64, windows)
	work = make([][]float64, windows)
	for k := range counts {
		counts[k] = make([]float64, classes)
		work[k] = make([]float64, classes)
	}
	for _, tr := range trace {
		k := int(tr.Time / window)
		if k >= windows {
			continue
		}
		counts[k][tr.Class]++
		work[k][tr.Class] += tr.Size
	}
	return counts, work
}

// TestSimVsLiveRateParity is the cross-consumer pin for the shared
// control plane: the identical windowed (counts, work) sequence must
// produce bit-identical rate trajectories through (a) a bare
// control.Loop configured like the simulator, (b) the live httpsrv
// Server ticked manually, and (c) the full event-driven simulator
// replaying the trace those windows were computed from. Exact float64
// equality throughout — simulator and server share one control plane, so
// there is nothing to be approximately equal about.
func TestSimVsLiveRateParity(t *testing.T) {
	for _, kind := range []control.EstimatorKind{control.Window, control.EWMA} {
		const (
			window  = 50.0
			horizon = 500.0
			windows = 10
		)
		deltas := []float64{1, 2}
		trace := parityTrace(horizon)

		// (c) The event-driven simulator replaying the trace.
		cfg := simsrv.Config{
			Classes:        []simsrv.ClassConfig{{Delta: 1, Lambda: 0.3}, {Delta: 2, Lambda: 0.3}},
			Window:         window,
			HistoryWindows: 3,
			Warmup:         1, // Validate requires Horizon > 0; keep total = 501 > last tick
			Horizon:        horizon,
			Seed:           1,
			Estimator:      kind,
		}
		res, err := simsrv.RunTrace(cfg, trace)
		if err != nil {
			t.Fatal(err)
		}
		if res.AllocFailures != 0 {
			t.Fatalf("%v: trace run hit %d alloc failures; parity needs a clean run", kind, res.AllocFailures)
		}
		ticks := res.Reallocations

		// (a) Bare loop fed the same windowed sequence, flight-recorded.
		w, err := core.WorkloadFromDist(cfg.ApplyDefaults().Service)
		if err != nil {
			t.Fatal(err)
		}
		loopRec, err := obs.NewFlightRecorder(len(deltas), 64)
		if err != nil {
			t.Fatal(err)
		}
		lp, err := control.NewLoop(control.LoopConfig{
			Deltas:         deltas,
			Window:         window,
			Estimator:      kind,
			HistoryWindows: 3,
			Allocator:      core.PSD{},
			Workload:       w,
			Recorder:       loopRec,
		})
		if err != nil {
			t.Fatal(err)
		}

		// (b) Live server, ticked manually. TimeUnit of one second keeps
		// the background ticker (Window × TimeUnit = 50 s) far away from
		// the test's manual ticks.
		srv, err := New(Config{
			Deltas:         deltas,
			Window:         window,
			HistoryWindows: 3,
			TimeUnit:       time.Second,
			Estimator:      kind,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()

		counts, work := windowTotals(trace, window, windows, len(deltas))
		var loopRates []float64
		for k := 0; k < ticks; k++ {
			loopRates, err = lp.Tick(control.TickInput{Counts: counts[k], Work: work[k]})
			if err != nil {
				t.Fatalf("%v: loop tick %d: %v", kind, k, err)
			}
			// Feed the server the same window and tick it (the previous
			// tick drained every stripe, so injecting adds == sets).
			for i, cr := range srv.classes {
				cr.injectWindow(int64(counts[k][i]), work[k][i])
			}
			srv.reallocate()
			live := srv.Rates()
			for i := range live {
				if live[i] != loopRates[i] {
					t.Fatalf("%v: tick %d class %d: live rate %.17g != loop rate %.17g",
						kind, k, i, live[i], loopRates[i])
				}
			}
		}
		// The simulator's final rates are the last tick's allocation.
		for i := range loopRates {
			if res.FinalRates[i] != loopRates[i] {
				t.Fatalf("%v: class %d: simulator final rate %.17g != shared-loop rate %.17g",
					kind, i, res.FinalRates[i], loopRates[i])
			}
		}
		doc := srv.Snapshot()
		if doc.Reallocations != int64(ticks) || doc.AllocFailures != 0 {
			t.Fatalf("%v: live counters %d/%d, want %d/0", kind, doc.Reallocations, doc.AllocFailures, ticks)
		}

		// Flight-recorder parity: the bare loop's and the live server's
		// recorders must hold bit-identical tick records — same control-clock
		// stamps, flags, λ̂, rates, slowdowns (NaN here: no completions) and
		// effective δ. The recorder hook lives inside the shared loop, so any
		// divergence means the consumers no longer run the same control plane.
		loopTicks := loopRec.Snapshot()
		liveTicks := srv.FlightRecorder().Snapshot()
		if len(loopTicks) != ticks || len(liveTicks) != ticks {
			t.Fatalf("%v: recorded %d/%d ticks, want %d", kind, len(loopTicks), len(liveTicks), ticks)
		}
		for k := range loopTicks {
			a, b := loopTicks[k], liveTicks[k]
			if a.Seq != b.Seq || a.Time != b.Time || a.Flags != b.Flags {
				t.Fatalf("%v: tick %d headers differ: %+v vs %+v", kind, k, a, b)
			}
			if a.Time != float64(k+1)*window {
				t.Fatalf("%v: tick %d stamped %v, want control clock %v", kind, k, a.Time, float64(k+1)*window)
			}
			sameVec := func(name string, x, y []float64) {
				t.Helper()
				for i := range x {
					if x[i] != y[i] && !(math.IsNaN(x[i]) && math.IsNaN(y[i])) {
						t.Fatalf("%v: tick %d %s: loop %.17g != live %.17g", kind, k, name, x[i], y[i])
					}
				}
			}
			sameVec("lambda", a.Lambdas, b.Lambdas)
			sameVec("rates", a.Rates, b.Rates)
			sameVec("slowdowns", a.Slowdowns, b.Slowdowns)
			sameVec("effdeltas", a.EffDeltas, b.EffDeltas)
		}
	}
}

func TestMetricsExposeControlPlane(t *testing.T) {
	s, err := New(Config{
		Deltas:    []float64{1, 2},
		TimeUnit:  time.Millisecond,
		Window:    1e9,
		Estimator: control.EWMA,
		EWMAAlpha: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.classes[0].observeArrival(1)
	s.classes[1].observeArrival(1)
	s.reallocate()
	doc := s.Snapshot()
	if doc.Estimator != "ewma" {
		t.Fatalf("estimator = %q", doc.Estimator)
	}
	if doc.Reallocations != 1 || doc.AllocFailures != 0 {
		t.Fatalf("counters = %d/%d, want 1/0", doc.Reallocations, doc.AllocFailures)
	}
	// Force an infeasible window: the failure counter must move and the
	// success counter must not.
	s.classes[0].injectWindow(4e12, 4e12) // survives EWMA smoothing with ρ̂ >> 1
	s.reallocate()
	doc = s.Snapshot()
	if doc.Reallocations != 1 || doc.AllocFailures != 1 {
		t.Fatalf("counters after infeasible tick = %d/%d, want 1/1", doc.Reallocations, doc.AllocFailures)
	}
}

func TestBadEstimatorConfigRejected(t *testing.T) {
	if _, err := New(Config{Deltas: []float64{1, 2}, Estimator: control.EstimatorKind(9)}); err == nil {
		t.Error("accepted unknown estimator kind")
	}
	if _, err := New(Config{Deltas: []float64{1, 2}, Estimator: control.EWMA, EWMAAlpha: 2}); err == nil {
		t.Error("accepted out-of-range alpha")
	}
}

// BenchmarkReallocate gates the live server's control tick: after the
// shared-loop migration a reallocation performs zero steady-state heap
// allocations (the pre-loop implementation allocated 4+ slices per tick).
// CI runs this with -benchtime 1x as a smoke test; the hard gate below
// fails the benchmark if allocations creep back in.
func BenchmarkReallocate(b *testing.B) {
	s, err := New(Config{
		Deltas:   []float64{1, 2, 4, 8},
		TimeUnit: time.Millisecond,
		Window:   1e9, // effectively disable the background ticker
		Feedback: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	feed := func() {
		for i, cr := range s.classes {
			cr.injectWindow(int64(8-i), float64(8-i)*0.3)
			cr.observeSlowdown(float64(i + 1))
		}
	}
	feed()
	s.reallocate() // warm the loop's buffers
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feed()
		s.reallocate()
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	allocsPerTick := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
	b.ReportMetric(allocsPerTick, "allocs/tick")
	if allocsPerTick >= 1 {
		b.Fatalf("control tick regressed into allocation: %.2f allocs/tick (want < 1)", allocsPerTick)
	}
}
