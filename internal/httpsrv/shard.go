package httpsrv

import (
	"math"
	randv2 "math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"psd/internal/rng"
)

// This file holds the server's sharded hot-path state: striped
// per-window accumulators, the atomic (epoch-versioned) rate cell, the
// striped size-sampling RNG, and the per-class admission locks. The
// design goal is that an admitted request on the steady-state path
// touches no server-wide mutex at all — only per-stripe atomics and (for
// sampled sizes / class-isolated admission) a lock shared with 1/Kth of
// the traffic.

// nStripes picks the accumulator/RNG stripe count for this process:
// enough stripes that concurrent writers on different Ps rarely collide
// on a cache line, capped so the window drain stays cheap. Always a
// power of two so stripe selection is a mask, fixed at server start
// (GOMAXPROCS changes mid-run only affect contention, not correctness).
func nStripes() int {
	n := runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	if n > 64 {
		n = 64
	}
	// Round up to a power of two.
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// stripeIdx spreads writers across k stripes (k must be a power of two).
// math/rand/v2's global generator is per-P chacha8 state in the runtime:
// no lock, no allocation, and no shared cache line — exactly the cheap
// decorrelator striping wants. Uniformity matters less than avoiding a
// shared counter.
func stripeIdx(k int) int {
	return int(randv2.Uint32()) & (k - 1)
}

// windowStripe is one shard of a class's current-window accumulators.
// All four cells are drained with Swap by closeWindow, so an increment
// lands in exactly one window: nothing is ever lost or double-counted
// across the drain (asserted under -race by TestStormWindowConservation).
// Padded to a cache line so stripes don't false-share.
type windowStripe struct {
	arrivals atomic.Int64  // admitted requests this window
	workBits atomic.Uint64 // float64 bits: admitted work this window
	slowN    atomic.Int64  // completions this window
	slowBits atomic.Uint64 // float64 bits: summed slowdowns this window
	_        [32]byte      // pad to 64 bytes
}

// addFloatBits adds v to the float64 stored as bits, lock-free (same
// CAS loop the obs registry uses for its float counters).
func addFloatBits(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// observeArrival accounts one admitted request in the current window.
// The count and the work land in the same stripe but are separate
// atomics, so a drain running between the two adds may split them across
// adjacent windows; each lands exactly once, so totals conserve and the
// estimator's windowed view is unbiased.
func (cr *classRuntime) observeArrival(size float64) {
	st := &cr.stripes[stripeIdx(len(cr.stripes))]
	st.arrivals.Add(1)
	addFloatBits(&st.workBits, size)
}

// observeSlowdown feeds one completion's slowdown into the current
// window (the controller consumes the per-window mean).
func (cr *classRuntime) observeSlowdown(sl float64) {
	st := &cr.stripes[stripeIdx(len(cr.stripes))]
	st.slowN.Add(1)
	addFloatBits(&st.slowBits, sl)
}

// closeWindow harvests and resets the per-window accumulators by
// Swap-draining every stripe: the N-shards view merges to exactly the
// single-stream totals (the same invariant the obs histogram merge
// machinery pins). Only the reallocation tick calls this in production;
// meanSlow is NaN when the window saw no completions.
func (cr *classRuntime) closeWindow() (count, work, meanSlow float64) {
	var n int64
	var slowSum float64
	for i := range cr.stripes {
		st := &cr.stripes[i]
		count += float64(st.arrivals.Swap(0))
		work += math.Float64frombits(st.workBits.Swap(0))
		n += st.slowN.Swap(0)
		slowSum += math.Float64frombits(st.slowBits.Swap(0))
	}
	if n > 0 {
		meanSlow = slowSum / float64(n)
	} else {
		meanSlow = math.NaN()
	}
	return count, work, meanSlow
}

// injectWindow adds a synthetic window observation (stripe 0), letting
// tests and benchmarks drive the control plane with exact counts.
func (cr *classRuntime) injectWindow(count int64, work float64) {
	cr.stripes[0].arrivals.Add(count)
	addFloatBits(&cr.stripes[0].workBits, work)
}

// pendingWindow reads the not-yet-drained window totals without
// resetting them (test observability; racy against a concurrent drain by
// design, like any scrape).
func (cr *classRuntime) pendingWindow() (count, work float64) {
	for i := range cr.stripes {
		st := &cr.stripes[i]
		count += float64(st.arrivals.Load())
		work += math.Float64frombits(st.workBits.Load())
	}
	return count, work
}

// currentRate loads the installed class rate: a single atomic read.
// float64 bits in one word cannot tear (TestStormNoTornRates hammers
// this under -race).
func (cr *classRuntime) currentRate() float64 {
	return math.Float64frombits(cr.rateBits.Load())
}

// setRate publishes a new class rate and, when the value actually
// changed, bumps the rate epoch and wakes every class worker so in-
// flight jobs re-pace. The wake sends are non-blocking into reused
// buffered channels: the reallocation tick stays allocation-free
// (BenchmarkReallocate) and a coalesced signal only costs a worker one
// idempotent re-pace at the (re-read) current rate.
func (cr *classRuntime) setRate(r float64) {
	if cr.rateBits.Swap(math.Float64bits(r)) == math.Float64bits(r) {
		return
	}
	cr.rateEpoch.Add(1)
	for _, sig := range cr.sigs {
		select {
		case sig <- struct{}{}:
		default:
		}
	}
}

// RateEpoch returns how many times the class's rate has actually changed
// since start (a publication version: readers pairing Rates with epochs
// can detect a concurrent reallocation).
func (s *Server) RateEpoch(class int) uint64 {
	return s.classes[class].rateEpoch.Load()
}

// rngStripe is one shard of the size-sampling RNG: a mutex-guarded
// deterministic child stream. Sampling takes the stripe lock only —
// 1/Kth of the old single sizeMu's traffic — and each stripe's stream is
// derived from Config.Seed via rng.SplitInto, so the sampled population
// is reproducible (though interleaving across stripes is not).
type rngStripe struct {
	mu  sync.Mutex
	src rng.Source
	_   [24]byte // pad to 64 bytes (8 mutex + 32 source)
}

// newRNGStripes derives k child streams from the server seed.
func newRNGStripes(seed uint64, k int) []rngStripe {
	parent := rng.New(seed)
	stripes := make([]rngStripe, k)
	for i := range stripes {
		parent.SplitInto(&stripes[i].src, uint64(i))
	}
	return stripes
}

// sampleSize draws an undeclared request size from one RNG stripe.
func (s *Server) sampleSize() float64 {
	st := &s.sizeStripes[stripeIdx(len(s.sizeStripes))]
	st.mu.Lock()
	v := s.cfg.Service.Sample(&st.src)
	st.mu.Unlock()
	return v
}

// paddedMutex keeps per-class admission locks off each other's cache
// lines.
type paddedMutex struct {
	mu sync.Mutex
	_  [56]byte
}

// admLock returns the lock guarding admission state for class: the
// class's own lock when the controller declared per-class isolation
// (admission.ClassIsolated), else the single global one.
func (s *Server) admLock(class int) *sync.Mutex {
	if len(s.admLocks) == 1 {
		return &s.admLocks[0].mu
	}
	return &s.admLocks[class].mu
}
