// Package workload generates session-based e-commerce request streams.
//
// The paper motivates the M/D/1 special case (Eq. 15) with session-based
// E-commerce traffic: "a session is a sequence of requests of different
// types made by a single customer during a single visit to a site.
// Requests at some states such as home entry or register take
// approximately the same service time" (§2.2). This package implements
// that workload as a customer behavior model graph (CBMG): sessions walk
// a Markov chain over site states, each state issuing one request whose
// size is drawn from a per-state distribution (Deterministic for
// home/register, heavy-tailed for browse/search) and whose class is the
// session's service tier.
//
// The generated streams feed the simulator (internal/simsrv) through its
// trace interface and the HTTP load generator; traces round-trip through
// CSV for record/replay.
package workload

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"psd/internal/dist"
	"psd/internal/rng"
)

// State identifies a CBMG node.
type State int

// The canonical e-commerce states.
const (
	Home State = iota
	Browse
	Search
	Details
	Register
	Pay
	Exit // absorbing
	numStates
)

var stateNames = [...]string{"home", "browse", "search", "details", "register", "pay", "exit"}

// String returns the state's lowercase name.
func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("state(%d)", int(s))
	}
	return stateNames[s]
}

// Model is a customer behavior model graph: transition probabilities
// between states plus per-state service-size distributions and per-state
// think-time means.
type Model struct {
	// Transitions[s] lists the outgoing probabilities from state s; rows
	// must sum to 1 and Exit must be absorbing.
	Transitions [numStates][numStates]float64
	// Service[s] is the request-size law for state s (nil for Exit).
	Service [numStates]dist.Distribution
	// ThinkMean is the exponential mean think time between a session's
	// consecutive requests, in simulation time units.
	ThinkMean float64
	// Entry is the first state of every session.
	Entry State
}

// DefaultModel returns a CBMG calibrated to the paper's setting: home and
// register are near-constant (Deterministic — the M/D/1 states), browse/
// search/details heavy-tailed Bounded Pareto, a shopper mix that mostly
// browses, and mean think time of 5 time units.
func DefaultModel() *Model {
	m := &Model{ThinkMean: 5, Entry: Home}
	set := func(from State, pairs ...any) {
		for i := 0; i < len(pairs); i += 2 {
			m.Transitions[from][pairs[i].(State)] = pairs[i+1].(float64)
		}
	}
	set(Home, Browse, 0.5, Search, 0.3, Register, 0.1, Exit, 0.1)
	set(Browse, Browse, 0.3, Details, 0.4, Search, 0.1, Exit, 0.2)
	set(Search, Details, 0.5, Search, 0.2, Browse, 0.1, Exit, 0.2)
	set(Details, Browse, 0.3, Pay, 0.2, Search, 0.2, Exit, 0.3)
	set(Register, Browse, 0.5, Search, 0.3, Exit, 0.2)
	set(Pay, Exit, 1.0)
	set(Exit, Exit, 1.0)

	m.Service[Home] = mustDet(0.15)
	m.Service[Register] = mustDet(0.25)
	m.Service[Pay] = mustDet(0.4)
	m.Service[Browse] = dist.MustBoundedPareto(0.1, 50, 1.5)
	m.Service[Search] = dist.MustBoundedPareto(0.1, 80, 1.4)
	m.Service[Details] = dist.MustBoundedPareto(0.1, 30, 1.6)
	return m
}

func mustDet(v float64) dist.Distribution {
	d, err := dist.NewDeterministic(v)
	if err != nil {
		panic(err)
	}
	return d
}

// Validate checks row sums and absorbing Exit.
func (m *Model) Validate() error {
	for s := State(0); s < numStates; s++ {
		sum := 0.0
		for to := State(0); to < numStates; to++ {
			p := m.Transitions[s][to]
			if p < 0 || p > 1 {
				return fmt.Errorf("workload: P(%v→%v)=%v out of [0,1]", s, to, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("workload: row %v sums to %v", s, sum)
		}
		if s != Exit && m.Service[s] == nil {
			return fmt.Errorf("workload: state %v lacks a service distribution", s)
		}
	}
	if m.Transitions[Exit][Exit] != 1 {
		return errors.New("workload: Exit must be absorbing")
	}
	if !(m.ThinkMean > 0) {
		return fmt.Errorf("workload: think mean %v must be positive", m.ThinkMean)
	}
	return nil
}

// Request is one generated request.
type Request struct {
	// Time is the arrival time in simulation time units.
	Time float64
	// Class is the session's service tier (index into the PSD classes).
	Class int
	// State is the CBMG state that issued the request.
	State State
	// Size is the service demand in work units.
	Size float64
	// Session identifies the generating session.
	Session int
}

// Generator produces session-based request streams.
type Generator struct {
	model *Model
	// SessionRate is the Poisson rate of session starts per time unit.
	sessionRate float64
	// classProbs[i] is the probability a session belongs to class i.
	classProbs []float64
	src        *rng.Source
}

// NewGenerator builds a generator: sessions start Poisson(sessionRate),
// each assigned class i with probability classProbs[i].
func NewGenerator(m *Model, sessionRate float64, classProbs []float64, src *rng.Source) (*Generator, error) {
	if m == nil {
		return nil, errors.New("workload: nil model")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if !(sessionRate > 0) {
		return nil, fmt.Errorf("workload: session rate %v must be positive", sessionRate)
	}
	if len(classProbs) == 0 {
		return nil, errors.New("workload: no class probabilities")
	}
	sum := 0.0
	for i, p := range classProbs {
		if p < 0 {
			return nil, fmt.Errorf("workload: class prob[%d]=%v negative", i, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("workload: class probs sum to %v", sum)
	}
	if src == nil {
		src = rng.New(0)
	}
	return &Generator{model: m, sessionRate: sessionRate, classProbs: append([]float64(nil), classProbs...), src: src}, nil
}

// Generate produces all requests with arrival time < horizon, sorted by
// arrival time. Sessions started before the horizon run to completion
// (their later requests may exceed the horizon and are trimmed).
func (g *Generator) Generate(horizon float64) ([]Request, error) {
	if !(horizon > 0) {
		return nil, fmt.Errorf("workload: horizon %v must be positive", horizon)
	}
	var out []Request
	session := 0
	for t := g.src.ExpFloat64(g.sessionRate); t < horizon; t += g.src.ExpFloat64(g.sessionRate) {
		class := g.pickClass()
		out = append(out, g.walkSession(t, class, session, horizon)...)
		session++
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}

func (g *Generator) pickClass() int {
	u := g.src.Float64()
	acc := 0.0
	for i, p := range g.classProbs {
		acc += p
		if u <= acc {
			return i
		}
	}
	return len(g.classProbs) - 1
}

// walkSession walks the CBMG from Entry until Exit (or a safety cap).
func (g *Generator) walkSession(start float64, class, session int, horizon float64) []Request {
	var reqs []Request
	state := g.model.Entry
	t := start
	// Cap pathological walks; the default model's expected length is ~5.
	for steps := 0; steps < 1000 && state != Exit; steps++ {
		if t >= horizon {
			break
		}
		size := g.model.Service[state].Sample(g.src)
		reqs = append(reqs, Request{Time: t, Class: class, State: state, Size: size, Session: session})
		state = g.nextState(state)
		t += g.src.ExpFloat64(1 / g.model.ThinkMean)
	}
	return reqs
}

func (g *Generator) nextState(s State) State {
	u := g.src.Float64()
	acc := 0.0
	for to := State(0); to < numStates; to++ {
		acc += g.model.Transitions[s][to]
		if u <= acc {
			return to
		}
	}
	return Exit
}

// MeanRequestsPerSession returns the expected session length (number of
// requests) of the model, computed from the fundamental matrix via simple
// absorption iteration.
func (m *Model) MeanRequestsPerSession() float64 {
	// visits[s] = expected visits to s starting from Entry before
	// absorption; solved by value iteration (the chain is absorbing, so
	// iteration converges geometrically).
	const iters = 10000
	visits := make([]float64, numStates)
	cur := make([]float64, numStates)
	cur[m.Entry] = 1
	for i := 0; i < iters; i++ {
		next := make([]float64, numStates)
		moved := 0.0
		for s := State(0); s < numStates; s++ {
			if cur[s] == 0 {
				continue
			}
			if s == Exit {
				continue
			}
			visits[s] += cur[s]
			for to := State(0); to < numStates; to++ {
				if p := m.Transitions[s][to]; p > 0 {
					next[to] += cur[s] * p
					moved += cur[s] * p
				}
			}
		}
		cur = next
		if moved < 1e-12 {
			break
		}
	}
	total := 0.0
	for s := State(0); s < numStates; s++ {
		if s != Exit {
			total += visits[s]
		}
	}
	return total
}

// WriteTrace serializes requests as CSV (time,class,state,size,session).
func WriteTrace(w io.Writer, reqs []Request) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "class", "state", "size", "session"}); err != nil {
		return err
	}
	for _, r := range reqs {
		rec := []string{
			strconv.FormatFloat(r.Time, 'g', -1, 64),
			strconv.Itoa(r.Class),
			r.State.String(),
			strconv.FormatFloat(r.Size, 'g', -1, 64),
			strconv.Itoa(r.Session),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace parses a CSV trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Request, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if len(header) != 5 || header[0] != "time" {
		return nil, fmt.Errorf("workload: unexpected trace header %v", header)
	}
	nameToState := map[string]State{}
	for s := State(0); s < numStates; s++ {
		nameToState[s.String()] = s
	}
	var out []Request
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d time: %w", line, err)
		}
		class, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d class: %w", line, err)
		}
		state, ok := nameToState[rec[2]]
		if !ok {
			return nil, fmt.Errorf("workload: trace line %d unknown state %q", line, rec[2])
		}
		size, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d size: %w", line, err)
		}
		session, err := strconv.Atoi(rec[4])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d session: %w", line, err)
		}
		out = append(out, Request{Time: t, Class: class, State: state, Size: size, Session: session})
	}
	return out, nil
}

// ClassRates estimates per-class arrival rates (requests per time unit)
// from a trace over the given horizon, for feeding the PSD allocator.
func ClassRates(reqs []Request, classes int, horizon float64) ([]float64, error) {
	if !(horizon > 0) {
		return nil, fmt.Errorf("workload: horizon %v must be positive", horizon)
	}
	out := make([]float64, classes)
	for _, r := range reqs {
		if r.Class < 0 || r.Class >= classes {
			return nil, fmt.Errorf("workload: request class %d out of range [0,%d)", r.Class, classes)
		}
		out[r.Class]++
	}
	for i := range out {
		out[i] /= horizon
	}
	return out, nil
}

// SizeMoments computes the empirical Workload-style moments of a trace's
// sizes: E[X], E[X²], E[1/X].
func SizeMoments(reqs []Request) (mean, second, inverse float64, err error) {
	if len(reqs) == 0 {
		return 0, 0, 0, errors.New("workload: empty trace")
	}
	for _, r := range reqs {
		if !(r.Size > 0) {
			return 0, 0, 0, fmt.Errorf("workload: non-positive size %v", r.Size)
		}
		mean += r.Size
		second += r.Size * r.Size
		inverse += 1 / r.Size
	}
	n := float64(len(reqs))
	return mean / n, second / n, inverse / n, nil
}
