package dist

import (
	"fmt"
	"math"

	"psd/internal/rng"
)

// BoundedPareto is the paper's heavy-tailed job-size law BP(k, p, α)
// (§4.1): a Pareto of shape α truncated to [k, p], with density
//
//	f(x) = α·k^α·x^(−α−1) / (1 − (k/p)^α),   k ≤ x ≤ p.
//
// The truncation keeps every moment finite — including E[1/X], which the
// slowdown closed form needs — while preserving the "many small jobs,
// rare huge jobs" mass profile of measured web workloads. Fields are
// read-only after construction; use NewBoundedPareto so the cached
// moments stay consistent.
type BoundedPareto struct {
	// K is the lower bound (smallest job size), k > 0.
	K float64
	// P is the upper bound (largest job size), p > k.
	P float64
	// Alpha is the tail index; smaller α means burstier sizes. The
	// untruncated Pareto's E[X] diverges for α ≤ 1 and E[X²] for α ≤ 2,
	// so α ∈ (1, 2) is the classic heavy-tail regime.
	Alpha float64

	mean, second, inverse float64
	// Sampling caches for the inverse CDF x = k·(1 − u·D)^(−1/α) with
	// D = 1 − (k/p)^α.
	trunc   float64 // D
	negInvA float64 // −1/α
}

// NewBoundedPareto constructs BP(k, p, alpha) and precomputes its
// moments. It requires 0 < k < p and alpha > 0, all finite.
func NewBoundedPareto(k, p, alpha float64) (*BoundedPareto, error) {
	if err := checkParam("Bounded Pareto lower bound k", k); err != nil {
		return nil, err
	}
	if err := checkParam("Bounded Pareto upper bound p", p); err != nil {
		return nil, err
	}
	if err := checkParam("Bounded Pareto shape alpha", alpha); err != nil {
		return nil, err
	}
	if !(k < p) {
		return nil, fmt.Errorf("dist: Bounded Pareto bounds k=%v < p=%v required", k, p)
	}
	d := &BoundedPareto{K: k, P: p, Alpha: alpha}
	d.trunc = 1 - math.Pow(k/p, alpha)
	d.negInvA = -1 / alpha
	d.mean = d.moment(1)
	d.second = d.moment(2)
	d.inverse = d.moment(-1)
	// A Bounded Pareto's E[1/X] is always finite in exact arithmetic
	// (the truncation at k bounds it), so +Inf here can only be
	// overflow, never true divergence — reject it on top of the shared
	// mean/second-moment guard.
	if math.IsInf(d.inverse, 1) {
		return nil, fmt.Errorf("dist: %s moments overflow float64 (E[1/X]=%v)", d, d.inverse)
	}
	if _, err := checkMoments(d); err != nil {
		return nil, err
	}
	return d, nil
}

// MustBoundedPareto is NewBoundedPareto that panics on invalid
// parameters; for tests and package-level defaults.
func MustBoundedPareto(k, p, alpha float64) *BoundedPareto {
	d, err := NewBoundedPareto(k, p, alpha)
	if err != nil {
		panic(err)
	}
	return d
}

// PaperDefault returns the paper's M/G_B/1 workload BP(k=0.1, p=100,
// α=1.5): mean ≈ 0.2905 work units with a three-decade size spread.
func PaperDefault() *BoundedPareto {
	return MustBoundedPareto(0.1, 100, 1.5)
}

// moment returns E[X^n] in closed form:
//
//	E[X^n] = α·k^α/(1−(k/p)^α) · (p^(n−α) − k^(n−α))/(n−α),   n ≠ α
//	E[X^α] = α·k^α/(1−(k/p)^α) · ln(p/k)                      (n = α)
//
// The n = α branch is the limit of the first as n → α and covers the
// paper's sensitivity sweeps, which include α = 1 (mean) and α = 2
// (second moment) exactly.
func (d *BoundedPareto) moment(n float64) float64 {
	coeff := d.Alpha * math.Pow(d.K, d.Alpha) / d.trunc
	if n == d.Alpha {
		return coeff * math.Log(d.P/d.K)
	}
	return coeff * (math.Pow(d.P, n-d.Alpha) - math.Pow(d.K, n-d.Alpha)) / (n - d.Alpha)
}

// Mean returns E[X].
func (d *BoundedPareto) Mean() float64 { return d.mean }

// SecondMoment returns E[X²].
func (d *BoundedPareto) SecondMoment() float64 { return d.second }

// InverseMoment returns E[1/X]; the lower truncation at k > 0 keeps it
// finite for every valid parameterization.
func (d *BoundedPareto) InverseMoment() float64 { return d.inverse }

// Sample draws one size by inverting the CDF
// F(x) = (1 − (k/x)^α)/(1 − (k/p)^α): one uniform variate per call.
func (d *BoundedPareto) Sample(src *rng.Source) float64 {
	u := src.Float64() // [0, 1): u=0 maps to k, u→1 approaches p
	return d.K * math.Pow(1-u*d.trunc, d.negInvA)
}

// Scaled returns this law under Lemma 2's capacity transform: job sizes
// divided by rate, as seen by a server of that capacity.
func (d *BoundedPareto) Scaled(rate float64) (Distribution, error) {
	return NewScaled(d, rate)
}

func (d *BoundedPareto) String() string {
	return fmt.Sprintf("BoundedPareto(k=%g, p=%g, alpha=%g)", d.K, d.P, d.Alpha)
}
