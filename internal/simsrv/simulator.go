package simsrv

import (
	"errors"

	"psd/internal/rng"
)

// Simulator is a reusable simulation arena. It owns every buffer a
// replication needs — the event heap, per-class request rings, estimator
// ring, statistics accumulators, allocator scratch and (in packetized
// mode) the scheduler's packet heap — and replays them across
// replications and grid points:
//
//	var sim Simulator
//	var res Result
//	for rep := 0; rep < runs; rep++ {
//		if err := sim.Reset(cfg, ReplicationSeed(cfg.Seed, rep)); err != nil { ... }
//		if err := sim.RunInto(&res); err != nil { ... }
//		agg.Add(&res)
//	}
//
// Construction cost is paid once: after the first replication a
// Reset+RunInto cycle performs single-digit heap allocations (the
// pre-arena engine performed ~100 per replication, dominating figure
// sweeps where a single curve is thousands of replications). Reset fully
// re-derives the random streams from the seed and restarts event sequence
// numbering, so arena reuse is bit-for-bit identical to fresh
// construction — the golden tests in determinism_test.go pin this.
//
// A Simulator is single-goroutine; use one per worker (see
// RunReplications and internal/sweep).
type Simulator struct {
	fluid runner
	pk    pkRunner
	mode  simMode
	armed bool
	// validatedTrace remembers the last trace that passed validation (by
	// slice identity, for the class count below), so replaying one trace
	// across many replications — the sweep engine's trace-point pattern —
	// validates it once instead of O(len) per reset.
	validatedTrace        []TraceRequest
	validatedTraceClasses int
}

type simMode int

const (
	modeNone simMode = iota
	modeFluid
	modeTrace
	modePacketized
)

// NewSimulator returns an empty arena. The zero value is also ready.
func NewSimulator() *Simulator { return &Simulator{} }

// Reset arms the arena for one partitioned-model replication of cfg under
// the given seed (overriding cfg.Seed). Defaults are applied and the
// config validated here, so RunInto cannot fail on configuration.
func (s *Simulator) Reset(cfg Config, seed uint64) error {
	cfg = cfg.ApplyDefaults()
	cfg.Seed = seed
	if err := cfg.Validate(); err != nil {
		return err
	}
	w, err := coreWorkload(cfg)
	if err != nil {
		return err
	}
	if err := s.fluid.reset(cfg, w); err != nil {
		return err
	}
	s.mode = modeFluid
	s.armed = true
	return nil
}

// ResetTrace arms the arena for a trace-driven replication: the trace
// replaces the Poisson generators, everything else follows Reset. The
// trace must be time-sorted with in-range classes and positive sizes; it
// is NOT copied, and the caller must not mutate it while this Simulator
// is using it — validation of the exact same slice (same backing array
// and length) is cached across resets, so replaying one trace over many
// replications pays the O(len) checks once.
func (s *Simulator) ResetTrace(cfg Config, trace []TraceRequest, seed uint64) error {
	cfg = cfg.ApplyDefaults()
	cfg.Seed = seed
	if err := cfg.Validate(); err != nil {
		return err
	}
	sameTrace := len(trace) > 0 && len(s.validatedTrace) == len(trace) &&
		&s.validatedTrace[0] == &trace[0] &&
		s.validatedTraceClasses == len(cfg.Classes)
	if !sameTrace {
		if err := validateTrace(cfg, trace); err != nil {
			s.validatedTrace = nil
			return err
		}
		s.validatedTrace = trace
		s.validatedTraceClasses = len(cfg.Classes)
	}
	w, err := coreWorkload(cfg)
	if err != nil {
		return err
	}
	if err := s.fluid.reset(cfg, w); err != nil {
		return err
	}
	s.fluid.trace = trace
	s.mode = modeTrace
	s.armed = true
	return nil
}

// ResetPacketized arms the arena for one packetized-server replication.
// With the default SCFQ discipline the scheduler itself is part of the
// arena (its packet heap is retained across replications); a custom
// NewScheduler factory is invoked fresh on every reset so stateful or
// randomized disciplines start each replication clean.
func (s *Simulator) ResetPacketized(pc PacketizedConfig, seed uint64) error {
	pc.Config.Seed = seed
	if err := s.pk.reset(pc); err != nil {
		return err
	}
	s.mode = modePacketized
	s.armed = true
	return nil
}

// RunInto executes the armed replication and writes its outcome into res,
// reusing res's buffers. Each Reset* arms exactly one RunInto; calling it
// again without resetting is an error (the arena's state is consumed).
func (s *Simulator) RunInto(res *Result) error {
	if !s.armed {
		return errors.New("simsrv: RunInto requires a prior Reset (each Reset arms one run)")
	}
	s.armed = false
	switch s.mode {
	case modeFluid:
		r := &s.fluid
		// Start the per-class arrival processes.
		for i := range r.classes {
			r.scheduleNextArrival(i)
		}
		// Reallocation ticks at every window boundary.
		r.scheduleReallocation()
		// First LoadSchedule phase switch, when configured.
		r.scheduleNextPhase()
		r.sim.RunUntil(r.total)
		r.collectInto(res)
	case modeTrace:
		r := &s.fluid
		r.scheduleTrace(0)
		r.scheduleReallocation()
		r.sim.RunUntil(r.total)
		r.collectInto(res)
	case modePacketized:
		p := &s.pk
		for i := range p.cfg.Classes {
			p.scheduleArrival(i)
		}
		p.sim.Schedule(p.cfg.Window, p, pkRealloc, 0)
		p.scheduleNextPhase()
		p.sim.RunUntil(p.total)
		p.collectInto(res)
	default:
		return errors.New("simsrv: RunInto on an unarmed simulator")
	}
	return nil
}

// ReplicationSeed derives replication rep's seed from a scenario's base
// seed via an rng.Split of a base-seeded source. Unlike base+rep
// arithmetic, nearby base seeds cannot collide onto overlapping
// replication seed ranges, and the derivation is shared by
// RunReplications and internal/sweep so "replication rep of scenario s"
// names the same stream everywhere.
func ReplicationSeed(base uint64, rep int) uint64 {
	var src, child rng.Source
	src.Reseed(base)
	src.SplitInto(&child, uint64(rep))
	return child.Uint64()
}

// Run executes one replication and returns its Result. It is a
// convenience over a throwaway Simulator arena; batch callers should hold
// a Simulator (or use RunReplications / internal/sweep) to amortize
// construction.
func Run(cfg Config) (*Result, error) {
	var s Simulator
	if err := s.Reset(cfg, cfg.Seed); err != nil {
		return nil, err
	}
	res := new(Result)
	if err := s.RunInto(res); err != nil {
		return nil, err
	}
	return res, nil
}
