package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePromGolden pins the exposition text byte-for-byte for one of
// every family shape: unlabeled counter, float counter vector, gauge
// (NaN), gauge vector, and a labeled histogram with underflow and
// overflow traffic. Output is deterministic (registration order, dense
// label order), so a golden string is the honest check.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	reall := r.Counter("psd_reallocations_total", "Successful control-loop ticks.")
	rej := r.FloatCounterVec("psd_class_rejected_work_total", "Shed demand in work units.", "class", 2)
	up := r.Gauge("psd_uptime_seconds", "Seconds since server start.")
	rate := r.GaugeVec("psd_class_rate", "Allocated rate per class.", "class", 2)
	slow := r.HistogramVec("psd_class_slowdown", "Per-request slowdown.", "class", 2, -1, 3)

	reall.Add(7)
	rej.At(1).Add(12.5)
	up.Set(math.NaN())
	rate.At(0).Set(0.75)
	rate.At(1).Set(0.25)
	// class 0: one underflow (0.25 < 0.5), one per bucket, one overflow.
	// Dyadic values keep the _sum line byte-stable.
	for _, v := range []float64{0.25, 0.5, 1, 2, 4} {
		slow.At(0).Observe(v)
	}

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP psd_reallocations_total Successful control-loop ticks.
# TYPE psd_reallocations_total counter
psd_reallocations_total 7
# HELP psd_class_rejected_work_total Shed demand in work units.
# TYPE psd_class_rejected_work_total counter
psd_class_rejected_work_total{class="0"} 0
psd_class_rejected_work_total{class="1"} 12.5
# HELP psd_uptime_seconds Seconds since server start.
# TYPE psd_uptime_seconds gauge
psd_uptime_seconds NaN
# HELP psd_class_rate Allocated rate per class.
# TYPE psd_class_rate gauge
psd_class_rate{class="0"} 0.75
psd_class_rate{class="1"} 0.25
# HELP psd_class_slowdown Per-request slowdown.
# TYPE psd_class_slowdown histogram
psd_class_slowdown_bucket{class="0",le="1"} 2
psd_class_slowdown_bucket{class="0",le="2"} 3
psd_class_slowdown_bucket{class="0",le="4"} 4
psd_class_slowdown_bucket{class="0",le="+Inf"} 5
psd_class_slowdown_sum{class="0"} 7.75
psd_class_slowdown_count{class="0"} 5
psd_class_slowdown_bucket{class="1",le="1"} 0
psd_class_slowdown_bucket{class="1",le="2"} 0
psd_class_slowdown_bucket{class="1",le="4"} 0
psd_class_slowdown_bucket{class="1",le="+Inf"} 0
psd_class_slowdown_sum{class="1"} 0
psd_class_slowdown_count{class="1"} 0
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPromHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "help").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1\n") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}
