package simsrv

import (
	"fmt"
	"math"
)

// LoadPhase is one segment of a piecewise-constant arrival-rate
// modulation: from Start (absolute simulation time) until the next phase
// begins, class i's Poisson rate is ClassConfig.Lambda × its scale
// factor. The transient scenarios this enables — load steps, flash
// crowds, class-mix churn — are exactly where window-vs-EWMA estimation
// differs (the estimator's lag after a shift), which the paper's
// stationary experiments never exercise.
type LoadPhase struct {
	// Start is the phase's onset, in absolute simulation time (warmup
	// included, matching the estimator's clock).
	Start float64
	// Scale multiplies each class's configured Lambda. Length 1 applies
	// one factor to every class; otherwise the length must equal the
	// class count.
	Scale []float64
}

// scaleFor returns the phase's factor for class i.
func (p LoadPhase) scaleFor(i int) float64 {
	if len(p.Scale) == 1 {
		return p.Scale[0]
	}
	return p.Scale[i]
}

// LoadStep builds a single global load step: all classes jump to factor×
// their configured rates at time at.
func LoadStep(at, factor float64) []LoadPhase {
	return []LoadPhase{{Start: at, Scale: []float64{factor}}}
}

// FlashCrowd builds a transient surge: factor× the configured rates
// during [at, at+duration), then back to the base rates.
func FlashCrowd(at, duration, factor float64) []LoadPhase {
	return []LoadPhase{
		{Start: at, Scale: []float64{factor}},
		{Start: at + duration, Scale: []float64{1}},
	}
}

// ClassMixChurn rotates a traffic surge across classes while keeping the
// aggregate offered load roughly constant: starting at time at, phase k
// (of the given count, each period long) runs class k mod classes at hi×
// its configured rate and every other class at lo×. With equal per-class
// base loads, hi + (classes−1)·lo = classes keeps the total unchanged.
func ClassMixChurn(classes int, at, period float64, count int, hi, lo float64) []LoadPhase {
	phases := make([]LoadPhase, count)
	for k := range phases {
		scale := make([]float64, classes)
		for i := range scale {
			scale[i] = lo
		}
		scale[k%classes] = hi
		phases[k] = LoadPhase{Start: at + float64(k)*period, Scale: scale}
	}
	return phases
}

// validateSchedule checks a load schedule against the class count.
func validateSchedule(schedule []LoadPhase, classes int) error {
	prev := math.Inf(-1)
	for k, ph := range schedule {
		if !(ph.Start >= 0) || math.IsInf(ph.Start, 0) {
			return fmt.Errorf("simsrv: load phase %d start %v must be finite and >= 0", k, ph.Start)
		}
		if ph.Start <= prev && k > 0 {
			return fmt.Errorf("simsrv: load phase %d start %v not after previous %v", k, ph.Start, prev)
		}
		prev = ph.Start
		if len(ph.Scale) != 1 && len(ph.Scale) != classes {
			return fmt.Errorf("simsrv: load phase %d has %d scale factors for %d classes (want 1 or %d)",
				k, len(ph.Scale), classes, classes)
		}
		for i, s := range ph.Scale {
			if !(s >= 0) || math.IsInf(s, 0) {
				return fmt.Errorf("simsrv: load phase %d scale[%d] = %v must be finite and >= 0", k, i, s)
			}
		}
	}
	return nil
}
