package dist_test

import (
	"testing"

	"psd/internal/dist"
	"psd/internal/rng"
)

// BenchmarkSample measures one draw per family — the baseline for
// future sampler optimizations (ziggurat normals, alias-table
// mixtures/empiricals, Pow-free Pareto inversion).
func BenchmarkSample(b *testing.B) {
	for _, bc := range []struct {
		name string
		d    dist.Distribution
	}{
		{"BoundedPareto", dist.PaperDefault()},
		{"Deterministic", must(dist.NewDeterministic(1))},
		{"Exponential", must(dist.NewExponential(1))},
		{"Uniform", must(dist.NewUniform(0.5, 2.5))},
		{"Lognormal", must(dist.NewLognormal(0, 1))},
		{"Weibull", must(dist.NewWeibull(1.5, 1))},
		{"HyperExp2", must(dist.NewHyperExp2(1, 4))},
		{"Empirical", must(dist.NewEmpirical([]float64{0.2, 0.5, 1, 2, 5, 0.7, 1.3, 3}))},
		{"Mixture", must(dist.NewMixture(
			[]dist.Distribution{dist.PaperDefault(), must(dist.NewUniform(0.5, 1.5))},
			[]float64{0.5, 0.5},
		))},
		{"Scaled", must(dist.NewScaled(dist.PaperDefault(), 3))},
	} {
		b.Run(bc.name, func(b *testing.B) {
			src := rng.New(1)
			var sink float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink += bc.d.Sample(src)
			}
			_ = sink
		})
	}
}

// BenchmarkMoments measures the analytic moment path (precomputed for
// Bounded Pareto, weight-folded for Mixture) that the allocator hits on
// every reallocation window.
func BenchmarkMoments(b *testing.B) {
	mix := must(dist.NewMixture(
		[]dist.Distribution{dist.PaperDefault(), must(dist.NewUniform(0.5, 1.5))},
		[]float64{0.5, 0.5},
	))
	for _, bc := range []struct {
		name string
		d    dist.Distribution
	}{
		{"BoundedPareto", dist.PaperDefault()},
		{"Mixture", mix},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += bc.d.Mean() + bc.d.SecondMoment() + bc.d.InverseMoment()
			}
			_ = sink
		})
	}
}
