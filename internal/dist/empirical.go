package dist

import (
	"fmt"
	"math"

	"psd/internal/rng"
)

// empirical resamples a fixed trace of observed job sizes.
type empirical struct {
	sizes                 []float64
	mean, second, inverse float64
}

// NewEmpirical returns the trace-driven law that draws uniformly from
// the given observed sizes (bootstrap resampling). Its moments are the
// exact sample moments of the trace — the allocator then differentiates
// against precisely the workload that was measured, with no fitting
// error. The slice is copied; every size must be positive and finite.
func NewEmpirical(sizes []float64) (Distribution, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("dist: empirical trace must be non-empty")
	}
	d := &empirical{sizes: make([]float64, len(sizes))}
	var sum, sum2, sumInv float64
	for i, x := range sizes {
		if !(x > 0) || math.IsInf(x, 0) || math.IsNaN(x) {
			return nil, fmt.Errorf("dist: empirical size [%d] %v must be positive and finite", i, x)
		}
		d.sizes[i] = x
		sum += x
		sum2 += x * x
		sumInv += 1 / x
	}
	n := float64(len(sizes))
	d.mean = sum / n
	d.second = sum2 / n
	d.inverse = sumInv / n
	return checkMoments(d)
}

func (d *empirical) Mean() float64          { return d.mean }
func (d *empirical) SecondMoment() float64  { return d.second }
func (d *empirical) InverseMoment() float64 { return d.inverse }

func (d *empirical) Sample(src *rng.Source) float64 {
	return d.sizes[src.Intn(len(d.sizes))]
}

func (d *empirical) String() string {
	return fmt.Sprintf("Empirical(n=%d, mean=%.4g)", len(d.sizes), d.mean)
}

// mixture draws from one of several component laws with fixed
// probabilities.
type mixture struct {
	components []Distribution
	cum        []float64 // cumulative normalized weights, last = 1
	weights    []float64 // normalized weights, for moments and String
}

// NewMixture returns the law that picks component i with probability
// weights[i] (normalized) and samples it. Mixtures model multi-modal
// traffic — e.g. a mostly-small static workload with a heavy dynamic
// tail — and their moments are the weight-averaged component moments:
//
//	E[X^n] = Σᵢ wᵢ·E[Xᵢ^n]
//
// If any component with positive weight has a divergent E[1/X], the
// mixture's InverseMoment is +Inf too.
func NewMixture(components []Distribution, weights []float64) (Distribution, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("dist: mixture needs at least one component")
	}
	if len(components) != len(weights) {
		return nil, fmt.Errorf("dist: mixture has %d components but %d weights", len(components), len(weights))
	}
	var total float64
	for i, w := range weights {
		if components[i] == nil {
			return nil, fmt.Errorf("dist: mixture component %d is nil", i)
		}
		if err := checkParam(fmt.Sprintf("mixture weight [%d]", i), w); err != nil {
			return nil, err
		}
		total += w
	}
	if math.IsInf(total, 0) {
		return nil, fmt.Errorf("dist: mixture weights sum to +Inf")
	}
	m := &mixture{
		components: append([]Distribution(nil), components...),
		cum:        make([]float64, len(weights)),
		weights:    make([]float64, len(weights)),
	}
	acc := 0.0
	for i, w := range weights {
		m.weights[i] = w / total
		acc += w / total
		m.cum[i] = acc
	}
	m.cum[len(m.cum)-1] = 1 // guard against rounding shortfall
	return checkMoments(m)
}

func (m *mixture) Mean() float64 {
	var s float64
	for i, c := range m.components {
		s += m.weights[i] * c.Mean()
	}
	return s
}

func (m *mixture) SecondMoment() float64 {
	var s float64
	for i, c := range m.components {
		s += m.weights[i] * c.SecondMoment()
	}
	return s
}

func (m *mixture) InverseMoment() float64 {
	var s float64
	for i, c := range m.components {
		s += m.weights[i] * c.InverseMoment() // +Inf propagates
	}
	return s
}

// Sample draws one uniform to pick the component, then delegates.
func (m *mixture) Sample(src *rng.Source) float64 {
	u := src.Float64()
	for i, c := range m.cum {
		if u < c {
			return m.components[i].Sample(src)
		}
	}
	return m.components[len(m.components)-1].Sample(src)
}

func (m *mixture) String() string {
	s := "Mixture("
	for i, c := range m.components {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.3g×%s", m.weights[i], c)
	}
	return s + ")"
}
