// Package core implements the paper's primary contribution: processing
// rate allocation for proportional slowdown differentiation (PSD) on
// Internet servers.
//
// A server of normalized capacity 1 is partitioned among N task servers,
// one per request class; task server i receives rate r_i and serves its
// class FCFS. Class i carries a differentiation parameter δ_i
// (1 = δ_1 ≤ δ_2 ≤ … ≤ δ_N; smaller δ ⇒ better service) and offers a
// Poisson stream of rate λ_i with job sizes drawn i.i.d. from a common
// heavy-tailed distribution. The PSD model (Eq. 16) requires
//
//	E[S_i]/E[S_j] = δ_i/δ_j    for all classes i, j
//
// By Theorem 1 the slowdown on task server i is
// E[S_i] = λ_i·E[X²]·E[1/X] / (2(r_i − λ_iE[X])), and solving the PSD
// constraints under Σr_i = 1 gives the allocation (Eq. 17):
//
//	r_i = λ_iE[X] + (λ_i/δ_i)·(1 − ρ) / Σ_j (λ_j/δ_j)
//
// — class i's raw demand plus a share of the surplus capacity (1−ρ)
// proportional to its δ-scaled arrival rate. The achieved slowdown
// (Eq. 18) is then δ_i·C·Σ_j(λ_j/δ_j)/(1−ρ) with C = E[X²]E[1/X]/2.
//
// Besides the PSD allocator, the package provides the baseline allocators
// used by the ablation benchmarks: equal share, demand-proportional, a PDD
// (proportional *delay*) allocator solved by bisection, and static
// weights. All allocators implement the Allocator interface consumed by
// the simulator (internal/simsrv) and the HTTP front end
// (internal/httpsrv).
package core

import (
	"errors"
	"fmt"
	"math"

	"psd/internal/dist"
	"psd/internal/queueing"
)

// Class describes one request class's contract and current demand.
type Class struct {
	// Delta is the differentiation parameter δ_i > 0; smaller is better
	// service. By convention class 0 (the highest class) has δ = 1.
	Delta float64
	// Lambda is the class arrival rate in requests per time unit.
	Lambda float64
}

// Workload captures the moments of the job-size distribution that the
// allocators need. Sizes are in work units against the full server's unit
// rate.
type Workload struct {
	MeanSize      float64 // E[X]
	SecondMoment  float64 // E[X²]
	InverseMoment float64 // E[1/X]
}

// WorkloadFromDist extracts the Workload moments from a distribution.
func WorkloadFromDist(d dist.Distribution) (Workload, error) {
	inv := d.InverseMoment()
	if math.IsInf(inv, 1) || math.IsNaN(inv) {
		return Workload{}, fmt.Errorf("core: %w: E[1/X] diverges for %s", ErrInfeasible, d)
	}
	return Workload{MeanSize: d.Mean(), SecondMoment: d.SecondMoment(), InverseMoment: inv}, nil
}

// SlowdownConstant returns C = E[X²]·E[1/X]/2 for the workload.
func (w Workload) SlowdownConstant() float64 {
	return w.SecondMoment * w.InverseMoment / 2
}

// Validate checks the workload moments are usable.
func (w Workload) Validate() error {
	if !(w.MeanSize > 0) || math.IsInf(w.MeanSize, 0) {
		return fmt.Errorf("core: mean size %v must be positive and finite", w.MeanSize)
	}
	if !(w.SecondMoment > 0) || math.IsInf(w.SecondMoment, 0) {
		return fmt.Errorf("core: second moment %v must be positive and finite", w.SecondMoment)
	}
	if !(w.InverseMoment > 0) || math.IsInf(w.InverseMoment, 0) {
		return fmt.Errorf("core: inverse moment %v must be positive and finite", w.InverseMoment)
	}
	if w.SecondMoment < w.MeanSize*w.MeanSize {
		return fmt.Errorf("core: E[X²]=%v < E[X]²=%v violates Jensen", w.SecondMoment, w.MeanSize*w.MeanSize)
	}
	return nil
}

// Allocation is the result of a rate-allocation decision over a capacity-1
// server.
type Allocation struct {
	// Rates holds r_i per class; Σ Rates = 1 for work-exhausting
	// allocators.
	Rates []float64
	// ExpectedSlowdowns holds the model-predicted E[S_i] under Rates
	// (NaN for classes whose prediction is unavailable).
	ExpectedSlowdowns []float64
	// Utilization is ρ = Σ λ_iE[X].
	Utilization float64
}

// ErrInfeasible reports demands that no allocation can serve (ρ ≥ 1) or
// malformed inputs.
var ErrInfeasible = errors.New("core: infeasible allocation")

// Allocator computes a rate split for the given classes and workload.
// Implementations must return rates summing to ≤ 1 with r_i > λ_iE[X] for
// every class with λ_i > 0, or an error.
type Allocator interface {
	Allocate(classes []Class, w Workload) (Allocation, error)
	Name() string
}

// InPlaceAllocator is implemented by allocators that can fill a reusable
// Allocation without heap allocation. The simulation arenas call the
// allocator once per reallocation window — roughly 70 times per
// replication, millions of times per figure sweep — so the hot allocators
// (PSD, PacketizedPSD, PDD and the simple baselines) provide this.
type InPlaceAllocator interface {
	Allocator
	// AllocateInto computes the same result as Allocate into dst,
	// reusing dst's slices when they have capacity. On error dst is
	// unspecified. The rates must be arithmetically identical to
	// Allocate's — seeded replications are compared bit-for-bit across
	// engine versions.
	AllocateInto(dst *Allocation, classes []Class, w Workload) error
}

// AllocateInto runs al into dst, using the in-place path when al supports
// it and otherwise copying a fresh Allocate result into dst's (reused)
// slices. It is the call sites' single entry point so custom Allocators
// keep working unchanged, just without the zero-allocation guarantee.
func AllocateInto(al Allocator, dst *Allocation, classes []Class, w Workload) error {
	if ipa, ok := al.(InPlaceAllocator); ok {
		return ipa.AllocateInto(dst, classes, w)
	}
	a, err := al.Allocate(classes, w)
	if err != nil {
		return err
	}
	dst.Rates = append(dst.Rates[:0], a.Rates...)
	dst.ExpectedSlowdowns = append(dst.ExpectedSlowdowns[:0], a.ExpectedSlowdowns...)
	dst.Utilization = a.Utilization
	return nil
}

// reserve sizes the allocation's slices for n classes, reusing capacity.
// Callers write every element, so stale contents need no clearing.
func (a *Allocation) reserve(n int) {
	a.Rates = resizeFloats(a.Rates, n)
	a.ExpectedSlowdowns = resizeFloats(a.ExpectedSlowdowns, n)
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// validateClasses performs the shared input checking.
func validateClasses(classes []Class, w Workload) (rho float64, err error) {
	if len(classes) == 0 {
		return 0, fmt.Errorf("%w: no classes", ErrInfeasible)
	}
	if err := w.Validate(); err != nil {
		return 0, err
	}
	for i, c := range classes {
		if !(c.Delta > 0) || math.IsInf(c.Delta, 0) || math.IsNaN(c.Delta) {
			return 0, fmt.Errorf("%w: class %d delta %v must be positive and finite", ErrInfeasible, i, c.Delta)
		}
		if c.Lambda < 0 || math.IsInf(c.Lambda, 0) || math.IsNaN(c.Lambda) {
			return 0, fmt.Errorf("%w: class %d lambda %v must be finite and non-negative", ErrInfeasible, i, c.Lambda)
		}
		rho += c.Lambda * w.MeanSize
	}
	if rho >= 1 {
		return 0, fmt.Errorf("%w: utilization %.4f >= 1", ErrInfeasible, rho)
	}
	return rho, nil
}

// PSD is the paper's rate-allocation strategy (Eq. 17). The zero value is
// ready to use.
type PSD struct{}

// Name implements Allocator.
func (PSD) Name() string { return "psd" }

// Allocate implements Eq. 17 and computes Eq. 18 predictions.
//
// Classes with λ_i = 0 receive zero rate and a zero predicted slowdown:
// with no arrivals there is no queueing, and reserving surplus for an idle
// class would only inflate the others' slowdowns.
func (p PSD) Allocate(classes []Class, w Workload) (Allocation, error) {
	var alloc Allocation
	if err := p.AllocateInto(&alloc, classes, w); err != nil {
		return Allocation{}, err
	}
	return alloc, nil
}

// AllocateInto implements InPlaceAllocator.
func (PSD) AllocateInto(dst *Allocation, classes []Class, w Workload) error {
	rho, err := validateClasses(classes, w)
	if err != nil {
		return err
	}
	sumScaled := 0.0 // Σ λ_j/δ_j
	for _, c := range classes {
		sumScaled += c.Lambda / c.Delta
	}
	dst.reserve(len(classes))
	dst.Utilization = rho
	if sumScaled == 0 {
		// No demand at all: split capacity evenly (arbitrary but total).
		for i := range dst.Rates {
			dst.Rates[i] = 1 / float64(len(classes))
			dst.ExpectedSlowdowns[i] = 0
		}
		return nil
	}
	c := w.SlowdownConstant()
	surplus := 1 - rho
	for i, cl := range classes {
		dst.Rates[i] = cl.Lambda*w.MeanSize + (cl.Lambda/cl.Delta)*surplus/sumScaled
		if cl.Lambda == 0 {
			dst.ExpectedSlowdowns[i] = 0
			continue
		}
		// Eq. 18: E[S_i] = δ_i·C·Σ(λ_j/δ_j)/(1−ρ)
		dst.ExpectedSlowdowns[i] = cl.Delta * c * sumScaled / surplus
	}
	return nil
}

// ExpectedSlowdown returns Eq. 18 directly for class i without building a
// full Allocation.
func ExpectedSlowdown(classes []Class, w Workload, i int) (float64, error) {
	if i < 0 || i >= len(classes) {
		return 0, fmt.Errorf("core: class index %d out of range", i)
	}
	rho, err := validateClasses(classes, w)
	if err != nil {
		return 0, err
	}
	if classes[i].Lambda == 0 {
		return 0, nil
	}
	sumScaled := 0.0
	for _, c := range classes {
		sumScaled += c.Lambda / c.Delta
	}
	return classes[i].Delta * w.SlowdownConstant() * sumScaled / (1 - rho), nil
}

// SlowdownUnderRates evaluates Theorem 1 for each class under an arbitrary
// rate vector (not necessarily the PSD allocation); used to predict what
// baseline allocators achieve. Returns +Inf for overloaded classes.
func SlowdownUnderRates(classes []Class, w Workload, rates []float64) ([]float64, error) {
	out := make([]float64, len(classes))
	if err := slowdownUnderRatesInto(out, classes, w, rates); err != nil {
		return nil, err
	}
	return out, nil
}

// slowdownUnderRatesInto is SlowdownUnderRates into caller-owned storage
// (len(dst) == len(classes)), for the in-place allocator paths.
func slowdownUnderRatesInto(dst []float64, classes []Class, w Workload, rates []float64) error {
	if len(rates) != len(classes) {
		return fmt.Errorf("core: %d rates for %d classes", len(rates), len(classes))
	}
	if err := w.Validate(); err != nil {
		return err
	}
	c := w.SlowdownConstant()
	for i, cl := range classes {
		if cl.Lambda == 0 {
			dst[i] = 0
			continue
		}
		surplus := rates[i] - cl.Lambda*w.MeanSize
		if surplus <= 0 {
			dst[i] = math.Inf(1)
			continue
		}
		dst[i] = cl.Lambda * c / surplus
	}
	return nil
}

// Feasible reports whether the classes' total demand fits in unit
// capacity with strictly positive surplus.
func Feasible(classes []Class, w Workload) bool {
	_, err := validateClasses(classes, w)
	return err == nil
}

// MaxStableLoad returns the largest total utilization ρ < 1 at which the
// PSD allocation keeps every class's queue stable. For the PSD allocator
// any ρ < 1 is stable (each class receives strictly more than its demand
// whenever λ_i > 0), so this returns 1 as the supremum; it exists for API
// symmetry with allocators whose stability region is smaller.
func MaxStableLoad(Allocator) float64 { return 1 }

var _ InPlaceAllocator = PSD{}

// TheoremSlowdown re-exports Theorem 1 via the queueing package for
// convenience: mean slowdown of a λ-rate class on a rate-r task server
// whose job sizes follow d.
func TheoremSlowdown(lambda float64, d dist.Distribution, rate float64) (float64, error) {
	return queueing.TaskServerSlowdown(lambda, d, rate)
}
