package sweep

import (
	"fmt"

	"psd/internal/core"
	"psd/internal/rng"
	"psd/internal/sched"
)

// disciplineFor maps a size-aware policy to its packetized scheduling
// discipline. The allocator half of such a policy comes from the core
// registry; the discipline half lives here because the sweep engine owns
// the packetized model wiring (core cannot import sched).
func disciplineFor(name string) func(classes int, src *rng.Source) sched.Scheduler {
	switch name {
	case "hesrpt":
		return func(classes int, _ *rng.Source) sched.Scheduler { return sched.NewHeSRPT(classes) }
	}
	return nil
}

// resolvePolicy materializes a Point's Policy name: the registered
// allocator replaces Cfg.Allocator, and a size-aware policy switches the
// point to the packetized model with its discipline (unless the caller
// already pinned a NewScheduler). No-op when Policy is empty, so every
// pre-policy-axis grid is untouched.
func (p *Point) resolvePolicy() error {
	if p.Policy == "" {
		return nil
	}
	al, err := core.Parse(p.Policy)
	if err != nil {
		return err
	}
	pol, _ := core.Lookup(p.Policy)
	p.Cfg.Allocator = al
	if pol.Caps.NeedsSizeInfo {
		if p.Trace != nil {
			return fmt.Errorf("sweep: size-aware policy %q cannot drive trace replay", p.Policy)
		}
		p.Packetized = true
		if p.NewScheduler == nil {
			p.NewScheduler = disciplineFor(p.Policy)
			if p.NewScheduler == nil {
				return fmt.Errorf("sweep: size-aware policy %q has no registered discipline", p.Policy)
			}
		}
	}
	return nil
}

// Tournament crosses a base scenario grid with a list of registered
// policy names: the result is policy-major (all base points under
// policies[0] first), so one Engine.Run invocation sweeps the whole
// policy tournament and the caller slices the aggregates back per policy
// as out[p*len(base) : (p+1)*len(base)]. Base points must not already
// carry a Policy; their Cfg, schedules and service laws are copied
// as-is, which is exactly what makes the comparison fair.
func Tournament(base []Point, policies []string) ([]Point, error) {
	if len(base) == 0 {
		return nil, fmt.Errorf("sweep: tournament needs at least one base point")
	}
	if len(policies) == 0 {
		return nil, fmt.Errorf("sweep: tournament needs at least one policy")
	}
	out := make([]Point, 0, len(base)*len(policies))
	for _, name := range policies {
		if _, ok := core.Lookup(name); !ok {
			return nil, fmt.Errorf("sweep: tournament policy %q is not registered", name)
		}
		for i := range base {
			if base[i].Policy != "" {
				return nil, fmt.Errorf("sweep: tournament base point %d already names policy %q", i, base[i].Policy)
			}
			p := base[i]
			p.Policy = name
			out = append(out, p)
		}
	}
	return out, nil
}
