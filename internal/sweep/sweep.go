// Package sweep shards whole scenario grids across a fixed worker pool of
// reusable simulation arenas. A grid — the unit internal/figures and
// cmd/psdbench actually execute — is a list of Points, each a simsrv
// configuration with a replication count; every figure of the paper's
// evaluation is (load sweep × class mix × replications), i.e. thousands
// of replications whose per-run construction cost and aggregation memory
// used to dominate everything outside the event loop.
//
// The engine differs from the per-point simsrv.RunReplications fan-out it
// replaces in three ways:
//
//   - One global (point, replication) task queue spans the whole grid, so
//     workers never idle at per-point barriers: while one worker finishes
//     the last replication of point k, the rest are already deep into
//     point k+1.
//   - Each worker owns one simsrv.Simulator arena for the entire sweep —
//     rings, pooled statistics, estimator scratch, the packetized packet
//     heap — so a replication costs single-digit heap allocations instead
//     of rebuilding the model (~100 allocations) millions of times per
//     figure.
//   - Results stream through per-point simsrv.Aggregators (Welford + P²
//     quantiles) in strict replication order via a reorder buffer, so
//     memory stays O(workers + points) and the output is bit-reproducible
//     regardless of worker scheduling.
//
// Replication seeds derive from each point's base seed via rng.Split
// (simsrv.ReplicationSeed), so a point's replication streams are
// independent of its position in the grid and identical to what
// simsrv.RunReplications would use.
//
// The engine also routes: in Auto (or Analytic) mode every steady-state
// point whose closed form internal/analytic can evaluate skips the DES
// entirely and collapses to a single exact "replication" — a synthesized
// Aggregate whose means ARE the closed-form values, with zero-width
// confidence intervals and zero events. Transient, packetized, trace,
// window-statistics and moment-divergent points keep simulating; the
// default DES kind (the zero value) never consults the analytic path at
// all, so existing call sites stay bit-identical.
package sweep

import (
	"errors"
	"fmt"
	"runtime"

	"psd/internal/analytic"
	"psd/internal/rng"
	"psd/internal/sched"
	"psd/internal/simsrv"
	"psd/internal/stats"
)

// EngineKind selects how the engine evaluates each point.
type EngineKind int

const (
	// DES simulates every point (the zero value: existing call sites
	// keep their bit-identical replication pipeline).
	DES EngineKind = iota
	// Auto evaluates analytic-eligible points from the closed forms and
	// simulates the rest.
	Auto
	// Analytic refuses to simulate: any point needing the DES fails the
	// sweep with an error wrapping analytic.ErrNeedsSimulation.
	Analytic
)

// ParseEngineKind maps the CLI spellings (des | auto | analytic) to an
// EngineKind.
func ParseEngineKind(s string) (EngineKind, error) {
	switch s {
	case "des":
		return DES, nil
	case "auto":
		return Auto, nil
	case "analytic":
		return Analytic, nil
	}
	return DES, fmt.Errorf("sweep: unknown engine kind %q (want des, auto or analytic)", s)
}

// String implements fmt.Stringer.
func (k EngineKind) String() string {
	switch k {
	case DES:
		return "des"
	case Auto:
		return "auto"
	case Analytic:
		return "analytic"
	}
	return fmt.Sprintf("EngineKind(%d)", int(k))
}

// Point is one grid point: a scenario configuration plus how many
// replications to average (the paper uses 100).
type Point struct {
	// Cfg is the scenario; Cfg.Seed is the point's base seed from which
	// replication seeds derive.
	Cfg simsrv.Config
	// Runs is the replication count (≥ 1).
	Runs int
	// Packetized selects the packetized-server model (SCFQ by default)
	// instead of the paper's partitioned task servers.
	Packetized bool
	// NewScheduler optionally overrides the packetized discipline; see
	// simsrv.PacketizedConfig.
	NewScheduler func(classes int, src *rng.Source) sched.Scheduler
	// Trace, when non-nil, replays this arrival trace instead of the
	// Poisson generators (simsrv.RunTrace semantics). Replications then
	// differ only in their estimator/allocator-independent random
	// streams, which for a fixed trace makes runs 1..n-1 redundant —
	// trace points normally use Runs = 1.
	Trace []simsrv.TraceRequest
	// TrackWindowRatios asks the point's aggregator to accumulate the
	// per-measurement-window achieved slowdown ratios across runs
	// (Aggregate.WindowRatioMeans) — the transient time series behind the
	// estimator-convergence figure. Costs O(classes × windows) memory per
	// point.
	TrackWindowRatios bool
	// NeedWindowStats pins the point to the DES in Auto mode: its
	// consumer reads the per-window ratio distribution
	// (Aggregate.RatioSummaries percentiles), which only simulation
	// produces — the closed forms predict means, not window-to-window
	// variability. The percentile figures (5–6) set it.
	NeedWindowStats bool
	// Policy optionally names a registered allocation policy (core.Names());
	// Run resolves it in place before anything executes: Cfg.Allocator is
	// overridden with the policy's allocator, and a size-aware policy
	// (core.Capabilities.NeedsSizeInfo, e.g. heSRPT) additionally switches
	// the point to the packetized model with its matching internal/sched
	// discipline. This is the grid's policy axis: crossing one scenario
	// list with a policy list (see Tournament) sweeps a whole policy
	// tournament in a single engine invocation.
	Policy string
}

// needsDES returns the reason this point cannot take the analytic path
// regardless of its Config (model shape, not steady-state eligibility),
// or "" if the Config decides.
func (p *Point) needsDES() string {
	switch {
	case p.Packetized:
		return "packetized server model"
	case p.Trace != nil:
		return "trace replay"
	case p.NewScheduler != nil:
		return "custom packet scheduler"
	case p.TrackWindowRatios:
		return "per-window ratio tracking"
	case p.NeedWindowStats:
		return "window-distribution statistics"
	}
	return ""
}

// Engine runs grids. The zero value uses GOMAXPROCS workers, streaming
// (P²) ratio quantiles, and simulates every point.
type Engine struct {
	// Workers fixes the pool size; 0 means GOMAXPROCS.
	Workers int
	// ExactQuantiles switches every point's ratio summaries to the exact
	// batch path (buffer + sort) — the pre-streaming behavior, kept for
	// golden comparisons and accuracy tests.
	ExactQuantiles bool
	// Kind routes points between the DES and the closed-form evaluator.
	// The zero value (DES) simulates everything.
	Kind EngineKind
}

// Run executes the grid on a default Engine.
func Run(points []Point) ([]*simsrv.Aggregate, error) {
	var e Engine
	return e.Run(points)
}

// Run executes every point's replications and returns one Aggregate per
// point, in point order. All configurations are validated up front
// (traces are validated by each worker's arena once, on its first
// replication of the point); an execution error (first in task order,
// deterministically) aborts the sweep.
//
// In Auto and Analytic kinds, analytic-eligible points are solved inline
// from the closed forms before the replication pipeline starts — they
// contribute zero tasks, so a fully analytic grid never spins up a
// worker. DES-routed points keep the exact task ordering, seeds and
// reorder-buffer aggregation of a pure-DES sweep: routing a grid through
// Auto leaves every simulated point bit-identical to Kind DES.
//
// NOTE: the jobs/out/recycle/reorder pipeline below is intentionally the
// same shape as simsrv.RunReplications' single-point pipeline (which
// cannot reuse this engine — sweep imports simsrv). When changing pool
// sizing, error ordering or channel structure, change both in lockstep.
func (e *Engine) Run(points []Point) ([]*simsrv.Aggregate, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("sweep: empty grid")
	}
	total := 0
	offsets := make([]int, len(points))
	aggs := make([]*simsrv.Aggregator, len(points))
	var analyticAggs []*simsrv.Aggregate
	var evaluator analytic.Evaluator
	if e.Kind != DES {
		analyticAggs = make([]*simsrv.Aggregate, len(points))
	}
	for i := range points {
		p := &points[i]
		if p.Runs < 1 {
			return nil, fmt.Errorf("sweep: point %d needs at least 1 run, got %d", i, p.Runs)
		}
		if err := p.resolvePolicy(); err != nil {
			return nil, fmt.Errorf("sweep: point %d: %w", i, err)
		}
		cfg := p.Cfg.ApplyDefaults()
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: point %d: %w", i, err)
		}
		offsets[i] = total
		if analyticAggs != nil {
			agg, err := e.evalPoint(&evaluator, p)
			if err != nil {
				return nil, fmt.Errorf("sweep: point %d: %w", i, err)
			}
			if agg != nil {
				// Closed form: a zero-width entry in the task queue.
				analyticAggs[i] = agg
				continue
			}
		}
		total += p.Runs
		aggs[i] = simsrv.NewAggregator(p.Cfg)
		if e.ExactQuantiles {
			aggs[i].UseExactQuantiles()
		}
		if p.TrackWindowRatios {
			aggs[i].TrackWindowRatios()
		}
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	// locate maps a global task index back to (point, replication).
	locate := func(task int) (int, int) {
		pt := 0
		for pt+1 < len(points) && offsets[pt+1] <= task {
			pt++
		}
		return pt, task - offsets[pt]
	}
	runTask := func(sim *simsrv.Simulator, res *simsrv.Result, task int) error {
		pt, rep := locate(task)
		p := &points[pt]
		seed := simsrv.ReplicationSeed(p.Cfg.Seed, rep)
		var err error
		switch {
		case p.Trace != nil:
			err = sim.ResetTrace(p.Cfg, p.Trace, seed)
		case p.Packetized:
			err = sim.ResetPacketized(simsrv.PacketizedConfig{Config: p.Cfg, NewScheduler: p.NewScheduler}, seed)
		default:
			err = sim.Reset(p.Cfg, seed)
		}
		if err != nil {
			return err
		}
		return sim.RunInto(res)
	}
	finalize := func() ([]*simsrv.Aggregate, error) {
		out := make([]*simsrv.Aggregate, len(points))
		for i, a := range aggs {
			if a == nil {
				out[i] = analyticAggs[i]
				continue
			}
			agg, err := a.Aggregate()
			if err != nil {
				return nil, fmt.Errorf("sweep: point %d: %w", i, err)
			}
			out[i] = agg
		}
		return out, nil
	}

	if total == 0 {
		// Every point solved in closed form: nothing to simulate.
		return finalize()
	}

	if workers == 1 {
		// Sequential fast path: one arena, one Result, zero goroutines.
		var sim simsrv.Simulator
		var res simsrv.Result
		for task := 0; task < total; task++ {
			if err := runTask(&sim, &res, task); err != nil {
				pt, rep := locate(task)
				return nil, fmt.Errorf("sweep: point %d rep %d: %w", pt, rep, err)
			}
			pt, _ := locate(task)
			aggs[pt].Add(&res)
		}
		return finalize()
	}

	type done struct {
		task int
		res  *simsrv.Result
		err  error
	}
	poolSize := 2 * workers
	jobs := make(chan int)
	// out holds every pooled Result at once, so worker sends never block
	// and the in-order consumer cannot deadlock the pipeline.
	out := make(chan done, poolSize)
	recycle := make(chan *simsrv.Result, poolSize)
	for i := 0; i < poolSize; i++ {
		recycle <- new(simsrv.Result)
	}
	for w := 0; w < workers; w++ {
		go func() {
			var sim simsrv.Simulator
			for task := range jobs {
				res := <-recycle
				err := runTask(&sim, res, task)
				out <- done{task: task, res: res, err: err}
			}
		}()
	}
	go func() {
		for task := 0; task < total; task++ {
			jobs <- task
		}
		close(jobs)
	}()

	// Consume in task order through a reorder buffer; the first error in
	// task order wins (deterministically).
	pending := make(map[int]done, workers)
	next := 0
	var firstErr error
	for received := 0; received < total; received++ {
		d := <-out
		pending[d.task] = d
		for {
			nd, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if firstErr == nil {
				if nd.err != nil {
					pt, rep := locate(next)
					firstErr = fmt.Errorf("sweep: point %d rep %d: %w", pt, rep, nd.err)
				} else {
					pt, _ := locate(next)
					aggs[pt].Add(nd.res)
				}
			}
			recycle <- nd.res
			next++
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return finalize()
}

// evalPoint routes one point: a synthesized Aggregate when the closed
// forms apply, (nil, nil) to fall back to the DES in Auto mode, or an
// error (always in Analytic mode, where simulation is refused).
func (e *Engine) evalPoint(ev *analytic.Evaluator, p *Point) (*simsrv.Aggregate, error) {
	if reason := p.needsDES(); reason != "" {
		if e.Kind == Analytic {
			return nil, fmt.Errorf("%w: %s", analytic.ErrNeedsSimulation, reason)
		}
		return nil, nil
	}
	var res analytic.Evaluation
	if err := ev.EvaluateInto(&res, p.Cfg); err != nil {
		if e.Kind == Auto && errors.Is(err, analytic.ErrNeedsSimulation) {
			return nil, nil
		}
		return nil, err
	}
	return analyticAggregate(&res), nil
}

// analyticAggregate shapes a closed-form Evaluation as the Aggregate of
// a single exact "replication": the means ARE the stationary values,
// the confidence intervals are zero-width, the per-window ratio
// summaries stay empty (no windows were simulated) and no DES events
// were processed — which is also how callers can tell an analytic point
// from a simulated one.
func analyticAggregate(ev *analytic.Evaluation) *simsrv.Aggregate {
	nc := len(ev.Slowdowns)
	agg := &simsrv.Aggregate{
		Runs:              1,
		MeanSlowdowns:     make([]float64, nc),
		CI95:              make([]float64, nc),
		ExpectedSlowdowns: make([]float64, nc),
		RatioSummaries:    make([]stats.Summary, nc),
		MeanRatios:        make([]float64, nc),
		SystemSlowdown:    ev.SystemSlowdown,
	}
	copy(agg.MeanSlowdowns, ev.Slowdowns)
	copy(agg.ExpectedSlowdowns, ev.Slowdowns)
	for i := 1; i < nc; i++ {
		agg.MeanRatios[i] = ev.Ratios[i]
	}
	return agg
}
