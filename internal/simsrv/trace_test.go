package simsrv

import (
	"math"
	"testing"

	"psd/internal/rng"
	"psd/internal/workload"
)

func TestRunTraceValidation(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.5)
	if _, err := RunTrace(cfg, nil); err == nil {
		t.Error("accepted empty trace")
	}
	if _, err := RunTrace(cfg, []TraceRequest{{Time: 5, Class: 0, Size: 1}, {Time: 1, Class: 0, Size: 1}}); err == nil {
		t.Error("accepted unsorted trace")
	}
	if _, err := RunTrace(cfg, []TraceRequest{{Time: 1, Class: 9, Size: 1}}); err == nil {
		t.Error("accepted out-of-range class")
	}
	if _, err := RunTrace(cfg, []TraceRequest{{Time: 1, Class: 0, Size: 0}}); err == nil {
		t.Error("accepted zero size")
	}
	if _, err := RunTrace(cfg, []TraceRequest{{Time: -1, Class: 0, Size: 1}}); err == nil {
		t.Error("accepted negative time")
	}
}

// TestRunTraceMatchesPoissonStatistically replays a synthetic Poisson
// trace and requires results comparable to the built-in generator at the
// same load.
func TestRunTraceMatchesPoissonStatistically(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.6)
	// Build a Poisson trace with the same per-class rates.
	src := rng.New(77)
	var trace []TraceRequest
	total := cfg.Warmup + cfg.Horizon
	for class, cc := range cfg.Classes {
		tt := src.ExpFloat64(cc.Lambda)
		sizeSrc := src.Split(uint64(class + 100))
		for tt < total {
			trace = append(trace, TraceRequest{Time: tt, Class: class, Size: cfg.Service.Sample(sizeSrc)})
			tt += src.ExpFloat64(cc.Lambda)
		}
	}
	sortTrace(trace)
	res, err := RunTrace(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes[0].Count == 0 || res.Classes[1].Count == 0 {
		t.Fatal("trace replay produced no measurements")
	}
	// The PSD property must hold on replayed traffic too.
	ratio := res.Classes[1].MeanSlowdown / res.Classes[0].MeanSlowdown
	if ratio < 1.2 || ratio > 3.5 {
		t.Fatalf("trace-replay ratio %v far from target 2", ratio)
	}
}

func sortTrace(tr []TraceRequest) {
	// insertion sort is fine for test-sized traces
	for i := 1; i < len(tr); i++ {
		for j := i; j > 0 && tr[j].Time < tr[j-1].Time; j-- {
			tr[j], tr[j-1] = tr[j-1], tr[j]
		}
	}
}

// TestRunTraceSessionWorkload drives the CBMG e-commerce generator through
// the simulator end to end.
func TestRunTraceSessionWorkload(t *testing.T) {
	model := workload.DefaultModel()
	gen, err := workload.NewGenerator(model, 0.35, []float64{0.5, 0.5}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	const total = 22000.0
	reqs, err := gen.Generate(total)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := workload.ClassRates(reqs, 2, total)
	if err != nil {
		t.Fatal(err)
	}
	trace := make([]TraceRequest, len(reqs))
	for i, r := range reqs {
		trace[i] = TraceRequest{Time: r.Time, Class: r.Class, Size: r.Size}
	}
	cfg := Config{
		Classes: []ClassConfig{
			{Delta: 1, Lambda: rates[0]},
			{Delta: 2, Lambda: rates[1]},
		},
		Warmup:  2000,
		Horizon: total - 2000,
		Seed:    1,
	}
	res, err := RunTrace(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes[0].Count == 0 || res.Classes[1].Count == 0 {
		t.Fatal("session workload produced no measurements")
	}
	// Predictability ordering on realistic session traffic.
	if !(res.Classes[0].MeanSlowdown < res.Classes[1].MeanSlowdown) {
		t.Fatalf("ordering violated on session workload: %v vs %v",
			res.Classes[0].MeanSlowdown, res.Classes[1].MeanSlowdown)
	}
	if math.IsNaN(res.SystemSlowdown) || res.SystemSlowdown <= 0 {
		t.Fatalf("system slowdown %v", res.SystemSlowdown)
	}
}

func TestRunTraceDeterministic(t *testing.T) {
	cfg := fastConfig([]float64{1, 2}, 0.5)
	trace := []TraceRequest{}
	for i := 0; i < 2000; i++ {
		trace = append(trace, TraceRequest{Time: float64(i) * 10, Class: i % 2, Size: 0.5})
	}
	a, err := RunTrace(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrace(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	if a.Classes[0].MeanSlowdown != b.Classes[0].MeanSlowdown || a.EventsProcessed != b.EventsProcessed {
		t.Fatal("trace replay not deterministic")
	}
}
