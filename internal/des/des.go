// Package des is a minimal discrete-event simulation core: a simulation
// clock plus a pending-event set ordered by (time, insertion sequence).
//
// Determinism is a design requirement — the paper's experiments average
// 100 independent replications, and reproducing a replication exactly
// (given its seed) is what makes the figure harness and the regression
// tests meaningful. Two mechanisms provide it: the event heap breaks time
// ties by insertion sequence (FIFO among simultaneous events), and
// cancellation is lazy (events carry a flag, popped-and-dead events are
// skipped) so heap order never depends on cancellation timing.
package des

import (
	"container/heap"
	"errors"
	"math"
)

// Event is a scheduled callback. Events are created by Simulator.Schedule*
// and may be canceled; a canceled event is skipped when its time comes.
type Event struct {
	time     float64
	seq      uint64
	action   func()
	canceled bool
	index    int // heap index, -1 once popped
}

// Time returns the simulation time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Canceled reports whether the event has been canceled.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the clock and the pending-event set. The zero value is a
// simulator at time 0 with no events.
type Simulator struct {
	now  float64
	heap eventHeap
	seq  uint64
	// processed counts events actually executed (not canceled).
	processed uint64
}

// New returns an empty simulator at time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events still scheduled (including
// canceled-but-unpopped ones).
func (s *Simulator) Pending() int { return len(s.heap) }

// ErrPast reports scheduling before the current simulation time.
var ErrPast = errors.New("des: cannot schedule event in the past")

// Schedule registers fn to run after the given non-negative delay and
// returns the event handle. It panics on negative or NaN delays —
// scheduling into the past is always a programming error in a
// discrete-event model.
func (s *Simulator) Schedule(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(ErrPast)
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt registers fn to run at absolute time t ≥ Now().
func (s *Simulator) ScheduleAt(t float64, fn func()) *Event {
	if t < s.now || math.IsNaN(t) {
		panic(ErrPast)
	}
	e := &Event{time: t, seq: s.seq, action: fn}
	s.seq++
	heap.Push(&s.heap, e)
	return e
}

// Cancel marks an event so it will not fire. Canceling an already-fired or
// already-canceled event is a no-op. The event is removed from the heap
// immediately if still enqueued, keeping the pending set tight under
// frequent reschedules (the task servers reschedule completions on every
// rate change).
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.index >= 0 {
		heap.Remove(&s.heap, e.index)
	}
}

// Step executes the next event, if any, and reports whether one ran.
func (s *Simulator) Step() bool {
	for len(s.heap) > 0 {
		e := heap.Pop(&s.heap).(*Event)
		if e.canceled {
			continue
		}
		s.now = e.time
		s.processed++
		e.action()
		return true
	}
	return false
}

// RunUntil executes events in order until the clock would pass horizon;
// the clock finishes exactly at horizon. Events scheduled at exactly the
// horizon DO fire (closed interval), matching the "measure for 60,000 time
// units" convention.
func (s *Simulator) RunUntil(horizon float64) {
	for len(s.heap) > 0 {
		if s.heap[0].time > horizon {
			break
		}
		s.Step()
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// Run executes events until none remain.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// Drain discards all pending events without running them.
func (s *Simulator) Drain() {
	s.heap = nil
}
