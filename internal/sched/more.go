package sched

import (
	"psd/internal/rng"
)

// SmoothWRR is the smooth weighted round-robin discipline (as popularized
// by nginx): every selection adds each backlogged class's weight to its
// current score, picks the highest score, and subtracts the total active
// weight from the winner. Selection frequencies converge to the weights
// with the smallest possible burstiness, and weights may be arbitrary
// positive reals. Unlike SCFQ/DRR it is size-oblivious: it equalizes
// request *counts*, not work, so with heavy-tailed sizes its achieved
// service shares drift from the weights — an effect the substrate tests
// quantify.
type SmoothWRR struct {
	classes int
	weights []float64
	current []float64
	queues  []jobRing
	backlog int
}

// NewSmoothWRR builds the scheduler with equal initial weights.
func NewSmoothWRR(classes int) *SmoothWRR {
	s := &SmoothWRR{
		classes: classes,
		weights: make([]float64, classes),
		current: make([]float64, classes),
		queues:  make([]jobRing, classes),
	}
	equalWeights(s.weights)
	return s
}

// Name implements Scheduler.
func (s *SmoothWRR) Name() string { return "wrr" }

// SetWeights implements Scheduler.
func (s *SmoothWRR) SetWeights(w []float64) error {
	if err := checkWeights(w, s.classes); err != nil {
		return err
	}
	copy(s.weights, w)
	return nil
}

// Reset implements Scheduler.
func (s *SmoothWRR) Reset() {
	equalWeights(s.weights)
	for i := range s.queues {
		s.queues[i].reset()
		s.current[i] = 0
	}
	s.backlog = 0
}

// Enqueue implements Scheduler.
func (s *SmoothWRR) Enqueue(j Job) {
	s.queues[j.Class].push(j)
	s.backlog++
}

// Dequeue implements Scheduler.
func (s *SmoothWRR) Dequeue() (Job, bool) {
	if s.backlog == 0 {
		for i := range s.current {
			s.current[i] = 0
		}
		return Job{}, false
	}
	best := -1
	totalActive := 0.0
	for i := range s.queues {
		if s.queues[i].empty() {
			continue
		}
		s.current[i] += s.weights[i]
		totalActive += s.weights[i]
		if best == -1 || s.current[i] > s.current[best] {
			best = i
		}
	}
	s.current[best] -= totalActive
	s.backlog--
	return s.queues[best].pop(), true
}

// Backlog implements Scheduler.
func (s *SmoothWRR) Backlog() int { return s.backlog }

// Lottery is Waldspurger & Weihl's randomized proportional-share
// discipline: each backlogged class holds tickets proportional to its
// weight; a uniform draw selects the winner. Expected shares equal the
// weights; variance decays as 1/n.
type Lottery struct {
	classes int
	weights []float64
	queues  []jobRing
	src     *rng.Source
	backlog int
}

// NewLottery builds the scheduler with its own deterministic random
// stream.
func NewLottery(classes int, src *rng.Source) *Lottery {
	l := &Lottery{
		classes: classes,
		weights: make([]float64, classes),
		queues:  make([]jobRing, classes),
		src:     src,
	}
	equalWeights(l.weights)
	return l
}

// Name implements Scheduler.
func (l *Lottery) Name() string { return "lottery" }

// SetWeights implements Scheduler.
func (l *Lottery) SetWeights(w []float64) error {
	if err := checkWeights(w, l.classes); err != nil {
		return err
	}
	copy(l.weights, w)
	return nil
}

// Reset implements Scheduler. The random stream continues where it left
// off; construct a fresh Lottery (with a freshly split source) for
// bit-reproducible replications.
func (l *Lottery) Reset() {
	equalWeights(l.weights)
	for i := range l.queues {
		l.queues[i].reset()
	}
	l.backlog = 0
}

// Enqueue implements Scheduler.
func (l *Lottery) Enqueue(j Job) {
	l.queues[j.Class].push(j)
	l.backlog++
}

// Dequeue implements Scheduler.
func (l *Lottery) Dequeue() (Job, bool) {
	if l.backlog == 0 {
		return Job{}, false
	}
	total := 0.0
	for i := range l.queues {
		if !l.queues[i].empty() {
			total += l.weights[i]
		}
	}
	draw := l.src.Float64() * total
	for i := range l.queues {
		if l.queues[i].empty() {
			continue
		}
		draw -= l.weights[i]
		if draw < 0 {
			l.backlog--
			return l.queues[i].pop(), true
		}
	}
	// Floating-point edge: serve the last backlogged class.
	for i := l.classes - 1; i >= 0; i-- {
		if !l.queues[i].empty() {
			l.backlog--
			return l.queues[i].pop(), true
		}
	}
	return Job{}, false
}

// Backlog implements Scheduler.
func (l *Lottery) Backlog() int { return l.backlog }

// StrictPriority always serves the lowest-numbered backlogged class —
// the related-work baseline ([Almeida et al.], paper §5) that achieves
// differentiation but cannot hold proportional spacings and starves low
// classes under high-priority load.
type StrictPriority struct {
	classes int
	queues  []jobRing
	backlog int
}

// NewStrictPriority builds the scheduler; class 0 is highest priority.
func NewStrictPriority(classes int) *StrictPriority {
	return &StrictPriority{classes: classes, queues: make([]jobRing, classes)}
}

// Name implements Scheduler.
func (s *StrictPriority) Name() string { return "priority" }

// SetWeights implements Scheduler; weights are ignored (priority is
// positional) but validated for interface conformance.
func (s *StrictPriority) SetWeights(w []float64) error {
	return checkWeights(w, s.classes)
}

// Reset implements Scheduler.
func (s *StrictPriority) Reset() {
	for i := range s.queues {
		s.queues[i].reset()
	}
	s.backlog = 0
}

// Enqueue implements Scheduler.
func (s *StrictPriority) Enqueue(j Job) {
	s.queues[j.Class].push(j)
	s.backlog++
}

// Dequeue implements Scheduler.
func (s *StrictPriority) Dequeue() (Job, bool) {
	for i := range s.queues {
		if !s.queues[i].empty() {
			s.backlog--
			return s.queues[i].pop(), true
		}
	}
	return Job{}, false
}

// Backlog implements Scheduler.
func (s *StrictPriority) Backlog() int { return s.backlog }

// GlobalFCFS serves all classes through one arrival-ordered queue — the
// no-differentiation control.
type GlobalFCFS struct {
	classes int
	queue   jobRing
}

// NewGlobalFCFS builds the scheduler.
func NewGlobalFCFS(classes int) *GlobalFCFS { return &GlobalFCFS{classes: classes} }

// Name implements Scheduler.
func (g *GlobalFCFS) Name() string { return "fcfs" }

// SetWeights implements Scheduler (weights are irrelevant).
func (g *GlobalFCFS) SetWeights(w []float64) error { return checkWeights(w, g.classes) }

// Reset implements Scheduler.
func (g *GlobalFCFS) Reset() { g.queue.reset() }

// Enqueue implements Scheduler.
func (g *GlobalFCFS) Enqueue(j Job) { g.queue.push(j) }

// Dequeue implements Scheduler.
func (g *GlobalFCFS) Dequeue() (Job, bool) {
	if g.queue.empty() {
		return Job{}, false
	}
	return g.queue.pop(), true
}

// Backlog implements Scheduler.
func (g *GlobalFCFS) Backlog() int { return g.queue.len() }

var (
	_ Scheduler = (*SCFQ)(nil)
	_ Scheduler = (*DRR)(nil)
	_ Scheduler = (*SmoothWRR)(nil)
	_ Scheduler = (*Lottery)(nil)
	_ Scheduler = (*StrictPriority)(nil)
	_ Scheduler = (*GlobalFCFS)(nil)
)
