package sweep

import (
	"errors"
	"testing"

	"psd/internal/analytic"
	"psd/internal/simsrv"
)

func TestParseEngineKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want EngineKind
	}{
		{"des", DES}, {"auto", Auto}, {"analytic", Analytic},
	} {
		got, err := ParseEngineKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseEngineKind(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseEngineKind("montecarlo"); err == nil {
		t.Error("ParseEngineKind accepted an unknown kind")
	}
}

// TestAutoMatchesClosedForm: an analytic-eligible grid under Auto must
// produce the closed-form values exactly, as single exact "replications"
// with zero DES events and zero-width confidence intervals — regardless
// of the requested run count.
func TestAutoMatchesClosedForm(t *testing.T) {
	grid := []Point{
		point([]float64{1, 2}, 0.3, 7),
		point([]float64{1, 2, 4}, 0.6, 3),
	}
	e := Engine{Kind: Auto}
	aggs, err := e.Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	for pi, agg := range aggs {
		want, err := analytic.Evaluate(grid[pi].Cfg)
		if err != nil {
			t.Fatalf("point %d: %v", pi, err)
		}
		if agg.EventsProcessed != 0 {
			t.Errorf("point %d: %d DES events on an analytic point", pi, agg.EventsProcessed)
		}
		if agg.Runs != 1 {
			t.Errorf("point %d: Runs = %d, want 1 exact replication", pi, agg.Runs)
		}
		for i := range want.Slowdowns {
			if agg.MeanSlowdowns[i] != want.Slowdowns[i] {
				t.Errorf("point %d class %d: mean %v, want closed form %v",
					pi, i, agg.MeanSlowdowns[i], want.Slowdowns[i])
			}
			if agg.ExpectedSlowdowns[i] != want.Slowdowns[i] {
				t.Errorf("point %d class %d: expected %v, want %v",
					pi, i, agg.ExpectedSlowdowns[i], want.Slowdowns[i])
			}
			if agg.CI95[i] != 0 {
				t.Errorf("point %d class %d: CI95 %v, want 0", pi, i, agg.CI95[i])
			}
		}
		if agg.SystemSlowdown != want.SystemSlowdown {
			t.Errorf("point %d: system %v, want %v", pi, agg.SystemSlowdown, want.SystemSlowdown)
		}
	}
}

// TestAutoMixedGridRoutesPerPoint interleaves analytic-eligible points
// with points the router must keep on the DES. Replication seeds derive
// from each point's own config, not its grid position, so the simulated
// points of the Auto run must be bit-identical to a pure-DES run of the
// same grid.
func TestAutoMixedGridRoutesPerPoint(t *testing.T) {
	mk := func() []Point {
		feedback := point([]float64{1, 2}, 0.5, 3)
		feedback.Cfg.Feedback = true
		windowStats := point([]float64{1, 4}, 0.6, 3)
		windowStats.NeedWindowStats = true
		return []Point{
			point([]float64{1, 2}, 0.3, 3),    // analytic
			feedback,                          // DES: closed loop
			point([]float64{1, 2, 3}, 0.7, 3), // analytic
			windowStats,                       // DES: needs window distribution
		}
	}
	auto := Engine{Kind: Auto}
	got, err := auto.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(mk()) // pure DES
	if err != nil {
		t.Fatal(err)
	}
	analyticIdx := map[int]bool{0: true, 2: true}
	for pi := range got {
		if analyticIdx[pi] {
			if got[pi].EventsProcessed != 0 {
				t.Errorf("point %d: simulated despite being analytic-eligible", pi)
			}
			continue
		}
		if got[pi].EventsProcessed != want[pi].EventsProcessed {
			t.Errorf("point %d: events %d, want %d (DES routing disturbed the replications)",
				pi, got[pi].EventsProcessed, want[pi].EventsProcessed)
		}
		for i := range want[pi].MeanSlowdowns {
			if got[pi].MeanSlowdowns[i] != want[pi].MeanSlowdowns[i] {
				t.Errorf("point %d class %d: %v, want bit-identical %v",
					pi, i, got[pi].MeanSlowdowns[i], want[pi].MeanSlowdowns[i])
			}
		}
		if got[pi].RatioSummaries[1] != want[pi].RatioSummaries[1] {
			t.Errorf("point %d: ratio summary diverged from pure-DES run", pi)
		}
	}
}

// TestAnalyticKindRefusesSimulation: Kind Analytic must fail, wrapping
// ErrNeedsSimulation, instead of quietly simulating.
func TestAnalyticKindRefusesSimulation(t *testing.T) {
	cases := map[string]func() Point{
		"packetized": func() Point {
			p := point([]float64{1, 2}, 0.5, 2)
			p.Packetized = true
			return p
		},
		"trace": func() Point {
			p := point([]float64{1, 2}, 0.5, 1)
			p.Trace = []simsrv.TraceRequest{{Time: 1, Class: 0, Size: 0.5}}
			return p
		},
		"window-stats": func() Point {
			p := point([]float64{1, 2}, 0.5, 2)
			p.NeedWindowStats = true
			return p
		},
		"feedback-config": func() Point {
			p := point([]float64{1, 2}, 0.5, 2)
			p.Cfg.Feedback = true
			return p
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			e := Engine{Kind: Analytic}
			if _, err := e.Run([]Point{mk()}); !errors.Is(err, analytic.ErrNeedsSimulation) {
				t.Fatalf("want ErrNeedsSimulation, got %v", err)
			}
		})
	}
}

// TestDESKindNeverConsultsAnalytic: the zero-value engine must keep
// simulating even perfectly analytic-eligible points (bit-compat with
// every existing call site is the router's first invariant).
func TestDESKindNeverConsultsAnalytic(t *testing.T) {
	p := point([]float64{1, 2}, 0.4, 2)
	aggs, err := Run([]Point{p})
	if err != nil {
		t.Fatal(err)
	}
	if aggs[0].EventsProcessed == 0 {
		t.Fatal("DES engine produced zero events: point was routed analytically")
	}
	if aggs[0].Runs != p.Runs {
		t.Fatalf("Runs = %d, want %d", aggs[0].Runs, p.Runs)
	}
}

// TestAutoFallsBackOnIneligibleConfig: Auto must simulate (not fail)
// when the closed forms cannot apply for Config-level reasons.
func TestAutoFallsBackOnIneligibleConfig(t *testing.T) {
	p := point([]float64{1, 2}, 0.4, 2)
	p.Cfg.Feedback = true // steady state exists but is closed-loop
	e := Engine{Kind: Auto}
	aggs, err := e.Run([]Point{p})
	if err != nil {
		t.Fatal(err)
	}
	if aggs[0].EventsProcessed == 0 {
		t.Fatal("Auto engine did not fall back to the DES")
	}
}
