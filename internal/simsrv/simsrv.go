// Package simsrv implements the paper's simulation model (§4.1, Fig. 1):
// an Internet server of normalized capacity 1 partitioned among per-class
// task servers, driven by Poisson request generators with Bounded Pareto
// (or any dist.Distribution) job sizes, with a windowed load estimator and
// a pluggable processing-rate allocator.
//
// Timing conventions follow the paper: one time unit is the processing
// time of an average-size request at full capacity when the size law is
// normalized to mean 1; more generally the server drains 1 work unit per
// time unit and sizes are in work units. Rates are reallocated every
// Window time units from the mean load of the past HistoryWindows windows;
// the simulator warms up for Warmup time units and then measures for
// Horizon time units; per-class slowdown is also aggregated per Window for
// the predictability analysis (Figures 5–8).
//
// The execution engine is arena-based: a Simulator owns every buffer a
// replication needs (event heap, request rings, estimator ring, per-class
// statistics, allocator scratch, the packetized scheduler) and replays
// them across replications via Reset+RunInto with single-digit heap
// allocations per run. Run, RunTrace, RunPacketized and RunReplications
// are conveniences over that arena; internal/sweep shards whole scenario
// grids over a pool of them.
package simsrv

import (
	"errors"
	"fmt"
	"math"

	"psd/internal/admission"
	"psd/internal/control"
	"psd/internal/core"
	"psd/internal/des"
	"psd/internal/dist"
	"psd/internal/obs"
	"psd/internal/rng"
	"psd/internal/stats"
)

// ClassConfig declares one request class.
type ClassConfig struct {
	// Delta is the differentiation parameter δ (smaller = better).
	Delta float64
	// Lambda is the Poisson arrival rate, requests per time unit.
	Lambda float64
	// Service optionally overrides the shared size distribution for this
	// class (nil = use Config.Service). Per-class laws exercise the
	// PSD-vs-PDD divergence; the paper's own experiments share one law.
	Service dist.Distribution
}

// Config parametrizes one simulation run. Zero fields take the paper's
// defaults via ApplyDefaults.
type Config struct {
	Classes []ClassConfig
	// Service is the shared job-size distribution (default: the paper's
	// BP(0.1, 100, 1.5)).
	Service dist.Distribution
	// Allocator computes the per-window rate split (default core.PSD).
	Allocator core.Allocator
	// Window is the estimation/reallocation/measurement period (default
	// 1000 time units, §4.1).
	Window float64
	// HistoryWindows is the number of past windows averaged by the load
	// estimator (default 5, §4.1).
	HistoryWindows int
	// Warmup is the discarded initial period (default 10000, §4.1).
	Warmup float64
	// Horizon is the measured duration after warmup (default 60000,
	// §4.1).
	Horizon float64
	// Seed selects the replication's random streams.
	Seed uint64
	// WorkConserving redistributes idle classes' capacity among busy
	// classes GPS-style. The paper's model is strictly partitioned
	// (false), which is what the closed forms assume; true is an
	// ablation.
	WorkConserving bool
	// Oracle feeds the allocator the true arrival rates instead of the
	// estimator's measurements, isolating estimation error (§4.4
	// attributes controllability gaps at large δ ratios to it).
	Oracle bool
	// MinRate floors the rate of any class with backlog so no in-flight
	// request is stranded by a zero allocation (default 1e-4).
	MinRate float64
	// Feedback enables the multiplicative-integral controller
	// (internal/control.RatioController) that trims the δ vector handed
	// to the allocator from *measured* per-window slowdown ratios — the
	// paper's future-work extension for short-timescale predictability.
	Feedback bool
	// FeedbackGain is the controller gain in (0,1] (default 0.3).
	FeedbackGain float64
	// Estimator selects the control plane's load-smoothing strategy:
	// control.Window (the paper's §4.1 default) or control.EWMA, which
	// reacts faster after the transients LoadSchedule injects.
	Estimator control.EstimatorKind
	// EWMAAlpha is the EWMA smoothing factor in (0,1] (default 0.3);
	// only used when Estimator is control.EWMA.
	EWMAAlpha float64
	// LoadSchedule modulates the Poisson arrival rates over time as a
	// piecewise-constant phase sequence (load step, flash crowd,
	// class-mix churn — see LoadStep, FlashCrowd, ClassMixChurn). Empty
	// means stationary arrivals, the paper's model. Phase switches
	// exploit exponential memorylessness: each pending arrival is
	// redrawn at the new rate, so the process is an exact
	// piecewise-homogeneous Poisson process. Ignored by trace replay,
	// whose arrivals are externally given.
	LoadSchedule []LoadPhase
	// Admission optionally guards the door (related work §5): arrivals
	// it rejects are dropped and counted per class instead of queued.
	// Required to keep Eq. 17 feasible under sustained overload (ρ ≥ 1).
	Admission admission.Controller
	// EstimateFromWork derives the allocator's per-class arrival rates
	// from measured *work* (λ̂_i = incurred load / E[X]) instead of
	// request counts. The paper's estimator measures both (§4.1); counts
	// are the lower-variance choice for plain M/G_B/1 traffic, but any
	// size-biased admission policy (e.g. a utilization bound, which
	// sheds large jobs first) decouples the admitted count rate from the
	// admitted work rate and makes count-based ρ̂ read phantom overload —
	// pair admission control with this flag.
	EstimateFromWork bool
	// RecordRequests captures every measured request's slowdown record
	// between RecordFrom and RecordTo (absolute simulation time), for the
	// short-timescale Figures 7–8.
	RecordRequests       bool
	RecordFrom, RecordTo float64
	// Recorder, when non-nil, flight-records every control tick (λ̂,
	// rates, effective δ, failure flags) through the shared control.Loop
	// hook — the same recorder type the live server dumps at
	// /debug/control, dumpable here via psdsim -flightrec. The run resets
	// it, so one recorder holds exactly the configured replication's tail
	// of ticks. Do not share one recorder across concurrent simulators
	// (internal/sweep replications run in parallel; attach a recorder to
	// a dedicated single run instead).
	Recorder *obs.FlightRecorder
}

// ApplyDefaults fills unset fields with the paper's §4.1 values and
// returns the completed config.
func (c Config) ApplyDefaults() Config {
	if c.Service == nil {
		c.Service = dist.PaperDefault()
	}
	if c.Allocator == nil {
		c.Allocator = core.PSD{}
	}
	if c.Window == 0 {
		c.Window = 1000
	}
	if c.HistoryWindows == 0 {
		c.HistoryWindows = 5
	}
	if c.Warmup == 0 {
		c.Warmup = 10000
	}
	if c.Horizon == 0 {
		c.Horizon = 60000
	}
	if c.MinRate == 0 {
		c.MinRate = 1e-4
	}
	if c.FeedbackGain == 0 {
		c.FeedbackGain = 0.3
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = 0.3
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Classes) == 0 {
		return errors.New("simsrv: no classes configured")
	}
	for i, cl := range c.Classes {
		if !(cl.Delta > 0) {
			return fmt.Errorf("simsrv: class %d delta %v must be positive", i, cl.Delta)
		}
		if cl.Lambda < 0 || math.IsNaN(cl.Lambda) || math.IsInf(cl.Lambda, 0) {
			return fmt.Errorf("simsrv: class %d lambda %v invalid", i, cl.Lambda)
		}
	}
	if !(c.Window > 0) || !(c.Horizon > 0) || c.Warmup < 0 {
		return fmt.Errorf("simsrv: window=%v warmup=%v horizon=%v must be positive (warmup >= 0)",
			c.Window, c.Warmup, c.Horizon)
	}
	if c.HistoryWindows < 1 {
		return fmt.Errorf("simsrv: history windows %d must be >= 1", c.HistoryWindows)
	}
	if c.RecordRequests && !(c.RecordTo > c.RecordFrom) {
		return fmt.Errorf("simsrv: record range [%v, %v) empty", c.RecordFrom, c.RecordTo)
	}
	if !c.Estimator.Valid() {
		return fmt.Errorf("simsrv: unknown estimator kind %d", int(c.Estimator))
	}
	if c.EWMAAlpha != 0 && (!(c.EWMAAlpha > 0) || c.EWMAAlpha > 1) {
		return fmt.Errorf("simsrv: EWMA alpha %v must be in (0, 1]", c.EWMAAlpha)
	}
	if err := validateSchedule(c.LoadSchedule, len(c.Classes)); err != nil {
		return err
	}
	return nil
}

// EqualLoadConfig builds the paper's standard scenario: len(deltas)
// classes with the given δ values, all offering the same load, with total
// utilization rho under the given (or default) size law.
func EqualLoadConfig(deltas []float64, rho float64, service dist.Distribution) Config {
	if service == nil {
		service = dist.PaperDefault()
	}
	classes := make([]ClassConfig, len(deltas))
	perClass := rho / (float64(len(deltas)) * service.Mean())
	for i, d := range deltas {
		classes[i] = ClassConfig{Delta: d, Lambda: perClass}
	}
	return Config{Classes: classes, Service: service}
}

// RequestRecord is one measured request, for short-timescale analysis.
type RequestRecord struct {
	Class        int
	Arrival      float64
	ServiceStart float64
	Completion   float64
	Size         float64
	Slowdown     float64
}

// ClassStats aggregates one class's measured requests in one run.
type ClassStats struct {
	Count int64
	// Rejected counts arrivals dropped by the admission controller
	// (zero without one).
	Rejected     int64
	MeanSlowdown float64
	StdSlowdown  float64
	MaxSlowdown  float64
	MeanDelay    float64
	MeanService  float64
	// WindowMeans[i] is the mean slowdown of requests completing in
	// measurement window i (NaN for empty windows).
	WindowMeans []float64
}

// Result is the outcome of one replication. A Result is a reusable
// buffer: RunInto overwrites every field, reusing slice capacity, so one
// Result can absorb thousands of replications without reallocating.
type Result struct {
	Classes []ClassStats
	// SystemSlowdown is the arrival-weighted mean slowdown across
	// classes (the "achieved system slowdown" of Figure 2).
	SystemSlowdown float64
	// ExpectedSlowdowns holds the Eq. 18 model predictions under the
	// true arrival rates, for sim-vs-model comparison (NaN if the
	// allocator is not PSD or the prediction is unavailable).
	ExpectedSlowdowns []float64
	// FinalRates is the last allocation in effect.
	FinalRates []float64
	// Reallocations counts allocator invocations that succeeded.
	Reallocations int
	// AllocFailures counts windows where the allocator errored and the
	// previous rates were retained.
	AllocFailures int
	// EventsProcessed is the DES event count (for performance tracking).
	EventsProcessed uint64
	// LadderEngagedAt is the sim time the downgrading allocator's
	// degradation ladder first stepped off level 0 (NaN when the run used
	// no ladder or it never engaged). Only core.Downgrading arms the
	// ladder; see runner.reset.
	LadderEngagedAt float64
	// FirstShedAt is the sim time of the first admission rejection (NaN
	// when nothing was shed). With a ladder armed this is necessarily
	// ≥ LadderEngagedAt: the gate stays open until the ladder maxes out.
	FirstShedAt float64
	// LadderMaxedOut reports whether the ladder ended the run with every
	// rung engaged (always false without a ladder).
	LadderMaxedOut bool
	// Records holds request-level samples if Config.RecordRequests.
	Records []RequestRecord
}

// WindowRatio returns the per-window achieved slowdown ratio of class i to
// class j, skipping windows where either class has no completions. Used
// for the percentile analysis of Figures 5 and 6.
func (r *Result) WindowRatio(i, j int) []float64 {
	var out []float64
	wi, wj := r.Classes[i].WindowMeans, r.Classes[j].WindowMeans
	n := len(wi)
	if len(wj) < n {
		n = len(wj)
	}
	for k := 0; k < n; k++ {
		a, b := wi[k], wj[k]
		if math.IsNaN(a) || math.IsNaN(b) || b == 0 {
			continue
		}
		out = append(out, a/b)
	}
	return out
}

// request is a job flowing through the model. Requests are plain values:
// they live in the per-class ring queues and never touch the GC heap.
type request struct {
	class        int
	size         float64
	arrival      float64
	serviceStart float64
}

// reqQueue is a growable power-of-two ring buffer of request values.
// Steady-state push/pop never allocates; the buffer only grows while a
// queue reaches a new high-water mark, and the capacity is retained
// across replication resets.
type reqQueue struct {
	buf  []request
	head int
	n    int
}

func (q *reqQueue) len() int { return q.n }

func (q *reqQueue) reset() {
	q.head = 0
	q.n = 0
}

func (q *reqQueue) push(r request) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = r
	q.n++
}

func (q *reqQueue) pop() request {
	r := q.buf[q.head]
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return r
}

func (q *reqQueue) grow() {
	newCap := 8
	if len(q.buf) > 0 {
		newCap = len(q.buf) * 2
	}
	nb := make([]request, newCap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
}

// classState is one task server plus its queue, generator streams and
// metrics. Class states live by value in the runner's arena; every
// per-class buffer (queue ring, window series) is retained across resets.
type classState struct {
	idx     int32 // own index, the des event payload for this class
	cfg     ClassConfig
	service dist.Distribution

	arrivalRng rng.Source
	sizeRng    rng.Source

	queue   reqQueue
	current request
	busy    bool

	// curLambda is the phase-adjusted Poisson rate (= cfg.Lambda while no
	// LoadSchedule phase is active); nextArrival is the pending arrival
	// event, cancellable at phase switches for the memoryless redraw.
	curLambda   float64
	nextArrival des.EventID

	rate       float64 // nominal allocated rate
	effRate    float64 // effective rate (= rate unless work-conserving)
	remaining  float64 // unfinished work of current
	lastSync   float64 // sim time when remaining was last updated
	completion des.EventID

	slow    stats.Welford
	delay   stats.Welford
	svc     stats.Welford
	windows stats.WindowSeries
	// winSlow accumulates the current reallocation window's slowdowns
	// (including warmup) as the feedback controller's input; reset at
	// every reallocation tick.
	winSlow stats.Welford
	// rejected counts arrivals dropped by the admission controller.
	rejected int64
}

// Typed event kinds dispatched through runner.HandleEvent. The data
// payload is the class index (evArrival, evCompletion) or the trace
// index (evTraceArrival).
const (
	evArrival int32 = iota
	evCompletion
	evRealloc
	evTraceArrival
	evPhase
)

// runner wires the model together for one replication. It is the single
// des.Handler for all event kinds, so scheduling an event costs no
// allocation, and every buffer it owns survives reset() — a runner is the
// fluid/trace half of a Simulator arena.
type runner struct {
	cfg      Config
	sim      des.Simulator
	classes  []classState
	workload core.Workload
	loop     control.Loop   // the shared estimate→control→allocate plane
	total    float64        // warmup + horizon
	trace    []TraceRequest // non-nil only in trace mode
	phaseIdx int            // next LoadSchedule phase to apply

	// Reallocation scratch, reused every window tick (the loop owns its
	// own estimator/allocator buffers; these feed its Tick inputs).
	allocDeltas   []float64
	allocMeasured []float64
	allocLambdas  []float64

	// Degradation ladder, armed only when cfg.Allocator is downgrading
	// (core.IsDowngrading): the allocation side drives admission.Ladder
	// exactly like the live server does — δ multipliers into the tick,
	// ρ̂ + feasibility back into the state machine, and the admission
	// gate held open until every rung is engaged. nil otherwise, which
	// keeps every pre-existing policy's trajectory bit-identical.
	ladder          *admission.Ladder
	ladderDeltas    []float64 // deltas the retained ladder was built for
	ladderScale     []float64 // per-class δ multipliers fed to the tick
	ladderLoads     []float64 // per-class ρ̂ scratch for Observe
	ladderEngagedAt float64   // first time off level 0 (NaN = never)
	firstShedAt     float64   // first admission rejection (NaN = never)

	reallocOK   int
	reallocFail int
	records     []RequestRecord
}

// HandleEvent dispatches one fired event. It preserves the exact
// schedule-call ordering of the closure-based engine so that seeded
// replications reproduce bit-for-bit across the refactor (see
// TestGoldenDeterminism).
func (r *runner) HandleEvent(kind, data int32) {
	switch kind {
	case evArrival:
		r.onArrival(int(data))
	case evCompletion:
		cs := &r.classes[data]
		cs.completion = des.None
		r.finishService(cs)
	case evRealloc:
		r.onRealloc()
	case evTraceArrival:
		r.onTraceArrival(int(data))
	case evPhase:
		r.onPhase()
	}
}

// coreWorkload extracts the allocator-facing moments from the config.
func coreWorkload(cfg Config) (core.Workload, error) {
	return core.WorkloadFromDist(cfg.Service)
}

// resizeFloat returns a length-n float slice reusing s's capacity.
// Contents are unspecified; callers overwrite every element.
func resizeFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// floatsEqual reports exact element-wise equality (ladder-reuse check).
func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reset re-arms the runner for one replication of cfg (already defaulted
// and validated) with the given workload moments, reusing every retained
// buffer. A reset runner is observationally identical to a freshly
// constructed one: the RNG streams are re-derived from cfg.Seed and the
// event core restarts its sequence numbering, so seeded replications stay
// bit-for-bit reproducible across arena reuse.
func (r *runner) reset(cfg Config, w core.Workload) error {
	r.cfg = cfg
	r.workload = w
	r.total = cfg.Warmup + cfg.Horizon
	r.trace = nil
	r.phaseIdx = 0
	r.sim.Reset()
	r.reallocOK = 0
	r.reallocFail = 0
	r.records = r.records[:0]

	nc := len(cfg.Classes)
	if cap(r.classes) < nc {
		old := r.classes
		r.classes = make([]classState, nc)
		copy(r.classes, old) // keep the retained queue/window buffers
	} else {
		r.classes = r.classes[:nc]
	}
	var src rng.Source
	src.Reseed(cfg.Seed)
	for i := range r.classes {
		cs := &r.classes[i]
		cc := cfg.Classes[i]
		svc := cc.Service
		if svc == nil {
			svc = cfg.Service
		}
		cs.idx = int32(i)
		cs.cfg = cc
		cs.service = svc
		src.SplitInto(&cs.arrivalRng, uint64(2*i+1))
		src.SplitInto(&cs.sizeRng, uint64(2*i+2))
		cs.queue.reset()
		cs.current = request{}
		cs.busy = false
		cs.curLambda = cc.Lambda
		cs.nextArrival = des.None
		cs.rate = 0
		cs.effRate = 0
		cs.remaining = 0
		cs.lastSync = 0
		cs.completion = des.None
		cs.slow = stats.Welford{}
		cs.delay = stats.Welford{}
		cs.svc = stats.Welford{}
		cs.winSlow = stats.Welford{}
		cs.windows.Width = cfg.Window
		cs.windows.Reset()
		cs.rejected = 0
	}
	r.allocDeltas = resizeFloat(r.allocDeltas, nc)
	r.allocMeasured = resizeFloat(r.allocMeasured, nc)
	r.allocLambdas = resizeFloat(r.allocLambdas, nc)
	for i, cc := range cfg.Classes {
		r.allocDeltas[i] = cc.Delta
	}
	// Note: with per-class service overrides the shared-law assumption of
	// Eq. 17 is already broken; the loop still gets the Config.Service
	// moments, which is precisely the mismatch the feedback ablation
	// studies.
	if err := r.loop.Reset(control.LoopConfig{
		Deltas:           r.allocDeltas,
		Window:           cfg.Window,
		Estimator:        cfg.Estimator,
		HistoryWindows:   cfg.HistoryWindows,
		EWMAAlpha:        cfg.EWMAAlpha,
		Allocator:        cfg.Allocator,
		Workload:         w,
		EstimateFromWork: cfg.EstimateFromWork,
		Feedback:         cfg.Feedback,
		FeedbackGain:     cfg.FeedbackGain,
		Recorder:         cfg.Recorder,
	}); err != nil {
		return err
	}

	// A downgrading allocator arms the degradation ladder (default
	// rungs/hysteresis, the live server's dimensioning); everything else
	// clears it so pre-existing policies keep their exact trajectories.
	// The ladder itself is retained across replications of the same class
	// vector — a reset replays thousands of reps without reallocating.
	r.ladderEngagedAt = math.NaN()
	r.firstShedAt = math.NaN()
	if core.IsDowngrading(cfg.Allocator) {
		if r.ladder != nil && floatsEqual(r.ladderDeltas, r.allocDeltas) {
			r.ladder.Reset()
		} else {
			ld, err := admission.NewLadder(admission.LadderConfig{}, r.allocDeltas)
			if err != nil {
				return err
			}
			r.ladder = ld
			r.ladderDeltas = resizeFloat(r.ladderDeltas, nc)
			copy(r.ladderDeltas, r.allocDeltas)
		}
		r.ladderScale = resizeFloat(r.ladderScale, nc)
		r.ladderLoads = resizeFloat(r.ladderLoads, nc)
	} else {
		r.ladder = nil
	}

	// Initial rates: the operator provisions from the declared arrival
	// rates (the estimator has no history yet); thereafter measurements
	// drive reallocation. Any error (e.g. declared overload or all-zero
	// lambdas) falls back to an equal split — the warmup discards the
	// transient either way.
	declared := r.allocLambdas // scratch; overwritten at the first tick
	for i, cc := range cfg.Classes {
		declared[i] = cc.Lambda
	}
	if a, err := r.loop.AllocateDeclared(declared); err == nil {
		r.applyRates(a.Rates)
	} else {
		for i := range declared {
			declared[i] = 1 / float64(nc)
		}
		r.applyRates(declared)
	}
	return nil
}

func (r *runner) scheduleNextArrival(i int) {
	cs := &r.classes[i]
	cs.nextArrival = des.None
	if cs.curLambda <= 0 {
		return
	}
	delay := cs.arrivalRng.ExpFloat64(cs.curLambda)
	cs.nextArrival = r.sim.Schedule(delay, r, evArrival, cs.idx)
}

// onArrival handles one Poisson arrival for class i: sample a size, pass
// the admission gate, enqueue, possibly start service, and schedule the
// next arrival of the class.
func (r *runner) onArrival(i int) {
	cs := &r.classes[i]
	now := r.sim.Now()
	size := cs.service.Sample(&cs.sizeRng)
	// With a degradation ladder armed, the admission gate stays open
	// until every rung is engaged — degrade first, shed only when
	// degradation has nothing left to give (same ordering as the live
	// server's admit path).
	if r.cfg.Admission != nil && (r.ladder == nil || r.ladder.MaxedOut()) &&
		!r.cfg.Admission.Admit(i, size, now) {
		cs.rejected++
		if math.IsNaN(r.firstShedAt) {
			r.firstShedAt = now
		}
		r.scheduleNextArrival(i)
		return
	}
	r.loop.Observe(i, size)
	cs.queue.push(request{class: i, size: size, arrival: now})
	if !cs.busy {
		r.startService(cs)
		if r.cfg.WorkConserving {
			r.recomputeEffectiveRates()
		}
	}
	r.scheduleNextArrival(i)
}

// startService moves the head-of-line request into service. Callers must
// ensure the class is idle and the queue non-empty.
func (r *runner) startService(cs *classState) {
	req := cs.queue.pop()
	req.serviceStart = r.sim.Now()
	cs.current = req
	cs.busy = true
	cs.remaining = req.size
	cs.lastSync = r.sim.Now()
	r.scheduleCompletion(cs)
}

// syncRemaining folds elapsed service into the remaining-work counter.
func (r *runner) syncRemaining(cs *classState) {
	if !cs.busy {
		return
	}
	elapsed := r.sim.Now() - cs.lastSync
	if elapsed > 0 && cs.effRate > 0 {
		cs.remaining -= elapsed * cs.effRate
		if cs.remaining < 0 {
			cs.remaining = 0
		}
	}
	cs.lastSync = r.sim.Now()
}

// scheduleCompletion (re)schedules the in-service request's completion
// from the current remaining work and effective rate.
func (r *runner) scheduleCompletion(cs *classState) {
	if cs.completion != des.None {
		r.sim.Cancel(cs.completion)
		cs.completion = des.None
	}
	if !cs.busy {
		return
	}
	if cs.effRate <= 0 {
		// Starved: no completion until a rate change revives the class.
		return
	}
	dt := cs.remaining / cs.effRate
	cs.completion = r.sim.Schedule(dt, r, evCompletion, cs.idx)
}

func (r *runner) finishService(cs *classState) {
	now := r.sim.Now()
	req := cs.current
	cs.busy = false
	cs.remaining = 0

	serviceDuration := now - req.serviceStart
	delay := req.serviceStart - req.arrival
	var slowdown float64
	if serviceDuration > 0 {
		slowdown = delay / serviceDuration
	}
	cs.winSlow.Add(slowdown)
	if now >= r.cfg.Warmup {
		cs.slow.Add(slowdown)
		cs.delay.Add(delay)
		cs.svc.Add(serviceDuration)
		cs.windows.Observe(now-r.cfg.Warmup, slowdown)
		if r.cfg.RecordRequests && now >= r.cfg.RecordFrom && now < r.cfg.RecordTo {
			r.records = append(r.records, RequestRecord{
				Class: req.class, Arrival: req.arrival,
				ServiceStart: req.serviceStart, Completion: now,
				Size: req.size, Slowdown: slowdown,
			})
		}
	}

	if cs.queue.len() > 0 {
		r.startService(cs)
	} else if r.cfg.WorkConserving {
		r.recomputeEffectiveRates()
	}
}

// applyRates installs a new nominal rate vector, flooring backlogged
// classes at MinRate, and reschedules all in-flight completions.
func (r *runner) applyRates(rates []float64) {
	for i := range r.classes {
		cs := &r.classes[i]
		r.syncRemaining(cs)
		rate := rates[i]
		if rate < r.cfg.MinRate && (cs.busy || cs.queue.len() > 0) {
			rate = r.cfg.MinRate
		}
		cs.rate = rate
	}
	r.recomputeEffectiveRates()
}

// recomputeEffectiveRates refreshes every class's effective service rate
// and reschedules completions. In partitioned mode eff = nominal. In
// work-conserving mode the whole capacity is redistributed GPS-style among
// busy classes in proportion to their nominal rates.
func (r *runner) recomputeEffectiveRates() {
	if !r.cfg.WorkConserving {
		for i := range r.classes {
			cs := &r.classes[i]
			r.syncRemaining(cs)
			if cs.effRate != cs.rate {
				cs.effRate = cs.rate
			}
			r.scheduleCompletion(cs)
		}
		return
	}
	busyRate := 0.0
	numBusy := 0
	for i := range r.classes {
		cs := &r.classes[i]
		if cs.busy {
			busyRate += cs.rate
			numBusy++
		}
	}
	for i := range r.classes {
		cs := &r.classes[i]
		r.syncRemaining(cs)
		switch {
		case !cs.busy:
			cs.effRate = cs.rate
		case busyRate > 0:
			cs.effRate = cs.rate / busyRate
		default:
			cs.effRate = 1 / float64(numBusy)
		}
		r.scheduleCompletion(cs)
	}
}

// scheduleReallocation ticks the estimator and allocator every Window.
func (r *runner) scheduleReallocation() {
	r.sim.Schedule(r.cfg.Window, r, evRealloc, 0)
}

// onRealloc drives one tick of the shared control plane: feed it this
// window's measured slowdowns (feedback mode) and the true rates (oracle
// mode), let control.Loop close the estimation window and re-run the
// allocator, and install the resulting rates. The loop owns every buffer
// it needs, so a window tick performs no steady-state allocation at all.
func (r *runner) onRealloc() {
	var in control.TickInput
	if r.cfg.Feedback {
		measured := r.allocMeasured
		for i := range r.classes {
			cs := &r.classes[i]
			if cs.winSlow.N() > 0 {
				measured[i] = cs.winSlow.Mean()
			} else {
				measured[i] = math.NaN()
			}
			cs.winSlow = stats.Welford{}
		}
		in.MeasuredSlowdowns = measured
	}
	if r.cfg.Oracle {
		oracle := r.allocLambdas
		for i := range r.classes {
			oracle[i] = r.classes[i].curLambda
		}
		in.OracleLambdas = oracle
	}
	if r.ladder != nil {
		r.ladder.ScaleInto(r.ladderScale)
		in.DeltaScale = r.ladderScale
		if r.ladder.Engaged() {
			// While degraded the ratio controller must not fight the
			// ladder (it trims toward the base targets the ladder is
			// deliberately scaling away from): skip its update this tick.
			in.MeasuredSlowdowns = nil
		}
	}
	rates, err := r.loop.Tick(in)
	if err == nil {
		r.applyRates(rates)
		r.reallocOK++
	} else {
		// Transient estimate infeasibility (ρ̂ ≥ 1 at very high
		// loads): retain the previous rates for this window.
		r.reallocFail++
	}
	if r.ladder != nil {
		// Feed ρ̂ (+ feasibility) back into the degradation state
		// machine, mirroring the live server's tick.
		r.loop.LoadsInto(r.ladderLoads)
		rho := 0.0
		for _, l := range r.ladderLoads {
			rho += l
		}
		r.ladder.Observe(rho, errors.Is(err, core.ErrInfeasible))
		if math.IsNaN(r.ladderEngagedAt) && r.ladder.Engaged() {
			r.ladderEngagedAt = r.sim.Now()
		}
	}
	if r.sim.Now() < r.total {
		r.scheduleReallocation()
	}
}

// scheduleNextPhase arms the next LoadSchedule phase switch, if any lies
// within the run.
func (r *runner) scheduleNextPhase() {
	if r.phaseIdx >= len(r.cfg.LoadSchedule) {
		return
	}
	next := r.cfg.LoadSchedule[r.phaseIdx]
	if next.Start > r.total {
		return
	}
	r.sim.ScheduleAt(next.Start, r, evPhase, 0)
}

// onPhase applies one LoadSchedule phase: rescale every class's arrival
// rate and redraw its pending arrival at the new rate (exact for Poisson
// processes by memorylessness — the residual exponential wait under the
// new rate is a fresh draw).
func (r *runner) onPhase() {
	ph := r.cfg.LoadSchedule[r.phaseIdx]
	r.phaseIdx++
	for i := range r.classes {
		cs := &r.classes[i]
		cs.curLambda = cs.cfg.Lambda * ph.scaleFor(i)
		if cs.nextArrival != des.None {
			r.sim.Cancel(cs.nextArrival)
			cs.nextArrival = des.None
		}
		r.scheduleNextArrival(i)
	}
	r.scheduleNextPhase()
}

// collectInto assembles the Result, reusing res's slice capacity.
func (r *runner) collectInto(res *Result) {
	nc := len(r.classes)
	if cap(res.Classes) < nc {
		res.Classes = make([]ClassStats, nc)
	} else {
		res.Classes = res.Classes[:nc]
	}
	res.ExpectedSlowdowns = resizeFloat(res.ExpectedSlowdowns, nc)
	res.FinalRates = resizeFloat(res.FinalRates, nc)
	res.Reallocations = r.reallocOK
	res.AllocFailures = r.reallocFail
	res.EventsProcessed = r.sim.Processed()
	res.SystemSlowdown = 0
	res.LadderEngagedAt = r.ladderEngagedAt
	res.FirstShedAt = r.firstShedAt
	res.LadderMaxedOut = r.ladder != nil && r.ladder.MaxedOut()
	// Hand the accumulated records to the Result and adopt its buffer
	// for the next replication (ping-pong, so neither side reallocates).
	r.records, res.Records = res.Records[:0], r.records

	numWindows := int(math.Ceil(r.cfg.Horizon / r.cfg.Window))
	var sysSlow, sysCount float64
	for i := range r.classes {
		cs := &r.classes[i]
		st := &res.Classes[i]
		st.Count = cs.slow.N()
		st.Rejected = cs.rejected
		st.MeanSlowdown = cs.slow.Mean()
		st.StdSlowdown = cs.slow.Std()
		st.MaxSlowdown = cs.slow.Max()
		st.MeanDelay = cs.delay.Mean()
		st.MeanService = cs.svc.Mean()
		st.WindowMeans = resizeFloat(st.WindowMeans, numWindows)
		for wi := 0; wi < numWindows; wi++ {
			if m, ok := cs.windows.WindowMean(wi); ok {
				st.WindowMeans[wi] = m
			} else {
				st.WindowMeans[wi] = math.NaN()
			}
		}
		if st.Count > 0 {
			sysSlow += st.MeanSlowdown * float64(st.Count)
			sysCount += float64(st.Count)
		}
		res.FinalRates[i] = cs.rate
	}
	if sysCount > 0 {
		res.SystemSlowdown = sysSlow / sysCount
	}
	// Model predictions under true (declared, base-phase) demand — Eq. 18
	// when PSD; otherwise Theorem 1 at the allocator's own rates.
	declared := r.allocLambdas
	for i, cc := range r.cfg.Classes {
		declared[i] = cc.Lambda
	}
	if a, err := r.loop.AllocateDeclared(declared); err == nil {
		copy(res.ExpectedSlowdowns, a.ExpectedSlowdowns)
	} else {
		for i := range res.ExpectedSlowdowns {
			res.ExpectedSlowdowns[i] = math.NaN()
		}
	}
}
