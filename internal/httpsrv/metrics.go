package httpsrv

import (
	"encoding/json"
	"math"
	"net/http"
	"time"

	"psd/internal/obs"
)

// The server's metric catalog. Every name here must be documented in the
// README's Observability section — CI greps this file and fails on an
// undocumented metric.
const (
	metricUptime          = "psd_uptime_seconds"
	metricReallocations   = "psd_reallocations_total"
	metricAllocFailures   = "psd_alloc_failures_total"
	metricRateFloorClamps = "psd_rate_floor_clamps_total"
	metricDelta           = "psd_class_delta"
	metricEffDelta        = "psd_class_effective_delta"
	metricRate            = "psd_class_rate"
	metricLambda          = "psd_class_lambda_estimate"
	metricWindowSlowdown  = "psd_class_window_slowdown"
	metricQueueDepth      = "psd_class_queue_depth"
	metricSlowdown        = "psd_class_slowdown"
	metricLatency         = "psd_class_latency_seconds"
	metricRejAdmission    = "psd_class_rejected_admission_total"
	metricRejQueueFull    = "psd_class_rejected_queue_full_total"
	metricRejWork         = "psd_class_rejected_work_total"

	// Robustness: control-plane input guards, stale-tick watchdog, and
	// the graceful-degradation ladder.
	metricTickInputRejected  = "psd_tick_input_rejected_total"
	metricWatchdogStalled    = "psd_watchdog_stalled"
	metricWatchdogStaleTicks = "psd_watchdog_stale_ticks_total"
	metricDegradationLevel   = "psd_class_degradation_level"
	metricLadderShedding     = "psd_ladder_shedding"
)

// Histogram layouts. Slowdowns live on [2⁻⁷, 2¹⁴) ≈ [0.008, 16384) — a
// zero-delay request underflows, a pathological slowdown overflows;
// latencies on [2⁻¹³, 2⁸) seconds ≈ [122 µs, 256 s).
const (
	slowdownHistFirstExp = -7
	slowdownHistBuckets  = 21
	latencyHistFirstExp  = -13
	latencyHistBuckets   = 21
)

// serverMetrics is the registry-backed replacement for the hand-rolled
// per-class counter fields the server used to carry: every hot-path
// touch (request completion, rejection, pacing clamp) is one atomic
// operation, and every read side (JSON document, Prometheus scrape) reads
// the same atomics without taking the control-plane mutex.
type serverMetrics struct {
	uptime        *obs.Gauge
	reallocations *obs.Counter
	allocFailures *obs.Counter

	// rateFloorClamps is per class: a starved class hitting the pacing
	// floor is attributable straight from /metrics.
	rateFloorClamps *obs.CounterVec

	delta      *obs.GaugeVec
	effDelta   *obs.GaugeVec
	rate       *obs.GaugeVec
	lambda     *obs.GaugeVec
	windowSlow *obs.GaugeVec
	queueDepth *obs.GaugeVec

	slowdown *obs.HistogramVec
	latency  *obs.HistogramVec

	rejAdmission *obs.CounterVec
	rejQueueFull *obs.CounterVec
	rejWork      *obs.FloatCounterVec

	tickInputRejected  *obs.Counter
	watchdogStalled    *obs.Gauge
	watchdogStaleTicks *obs.Counter
	degradationLevel   *obs.GaugeVec
	ladderShedding     *obs.Gauge
}

// newServerMetrics registers the catalog for n classes.
func newServerMetrics(reg *obs.Registry, n int) serverMetrics {
	return serverMetrics{
		uptime:          reg.Gauge(metricUptime, "Seconds since server start."),
		reallocations:   reg.Counter(metricReallocations, "Successful control-loop ticks."),
		allocFailures:   reg.Counter(metricAllocFailures, "Control ticks whose estimate was infeasible (previous rates retained)."),
		rateFloorClamps: reg.CounterVec(metricRateFloorClamps, "Pacing segments run at the minimum-rate floor because the allocated class rate was not positive.", "class", n),
		delta:           reg.GaugeVec(metricDelta, "Configured differentiation target delta per class.", "class", n),
		effDelta:        reg.GaugeVec(metricEffDelta, "Effective delta handed to the allocator (feedback-trimmed).", "class", n),
		rate:            reg.GaugeVec(metricRate, "Allocated processing rate per class (fraction of capacity).", "class", n),
		lambda:          reg.GaugeVec(metricLambda, "Estimated arrival rate per class (requests per time unit).", "class", n),
		windowSlow:      reg.GaugeVec(metricWindowSlowdown, "Mean slowdown of the last closed estimation window (NaN before one).", "class", n),
		queueDepth:      reg.GaugeVec(metricQueueDepth, "Requests queued per class (sampled at scrape).", "class", n),
		slowdown:        reg.HistogramVec(metricSlowdown, "Per-request slowdown (queueing delay over service time).", "class", n, slowdownHistFirstExp, slowdownHistBuckets),
		latency:         reg.HistogramVec(metricLatency, "Per-request server-side latency (queueing plus service), seconds.", "class", n, latencyHistFirstExp, latencyHistBuckets),
		rejAdmission:    reg.CounterVec(metricRejAdmission, "Requests shed by the admission gate (503).", "class", n),
		rejQueueFull:    reg.CounterVec(metricRejQueueFull, "Requests shed by a full class queue (503).", "class", n),
		rejWork:         reg.FloatCounterVec(metricRejWork, "Total shed demand in work units (admission gate and full queues).", "class", n),

		tickInputRejected:  reg.Counter(metricTickInputRejected, "Control ticks carrying NaN/Inf/negative input fields, discarded in favor of last-good estimates."),
		watchdogStalled:    reg.Gauge(metricWatchdogStalled, "1 while the stale-tick watchdog considers the reallocation loop stalled (pacing frozen at last-good rates)."),
		watchdogStaleTicks: reg.Counter(metricWatchdogStaleTicks, "Stall episodes and discarded overlong estimation windows detected by the stale-tick watchdog."),
		degradationLevel:   reg.GaugeVec(metricDegradationLevel, "Graceful-degradation ladder level per class (0 = nominal delta target).", "class", n),
		ladderShedding:     reg.Gauge(metricLadderShedding, "1 once the degradation ladder is maxed out and the admission gate may shed."),
	}
}

// ClassMetrics is the per-class section of the metrics document.
type ClassMetrics struct {
	Delta          float64 `json:"delta"`
	EffectiveDelta float64 `json:"effective_delta"`
	Rate           float64 `json:"rate"`
	LambdaEstimate float64 `json:"lambda_estimate"`
	Served         int64   `json:"served"`
	MeanSlowdown   float64 `json:"mean_slowdown"`
	WindowSlowdown float64 `json:"window_slowdown"`
	QueueDepth     int     `json:"queue_depth"`
	// RejectedAdmission/RejectedQueueFull count 503s from the admission
	// gate and from a full class queue; RejectedWork is the total demand
	// shed either way (work units). None of this traffic reaches the
	// load estimator.
	RejectedAdmission int64   `json:"rejected_admission"`
	RejectedQueueFull int64   `json:"rejected_queue_full"`
	RejectedWork      float64 `json:"rejected_work"`
	// RateFloorClamps counts this class's pacing segments run at the
	// minPaceRate floor (installed rate ≤ 0) — with the allocator-side
	// MinRate floor active this is a regression tripwire that should
	// stay zero.
	RateFloorClamps int64 `json:"rate_floor_clamps"`
	// DegradationLevel is the class's graceful-degradation ladder level
	// (0 = nominal δ target; always 0 without a configured ladder).
	DegradationLevel int `json:"degradation_level"`
}

// MetricsDocument is the full metrics payload.
type MetricsDocument struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Estimator names the control plane's smoothing strategy
	// ("window" | "ewma").
	Estimator string `json:"estimator"`
	// Reallocations counts successful control-loop ticks;
	// AllocFailures counts ticks whose estimate was infeasible (previous
	// rates retained).
	Reallocations int64 `json:"reallocations"`
	AllocFailures int64 `json:"alloc_failures"`
	// AdmissionPolicy names the pre-queue gate ("none" when disabled).
	AdmissionPolicy string `json:"admission_policy"`
	// RateFloorClamps counts pacing segments that ran at the minPaceRate
	// floor because the installed class rate was ≤ 0, summed over all
	// classes (per-class counts live in Classes).
	RateFloorClamps int64 `json:"rate_floor_clamps"`
	// TickInputRejected counts control ticks whose input carried
	// NaN/Inf/negative fields (discarded, last-good estimates kept);
	// WatchdogStaleTicks counts stall episodes and discarded overlong
	// windows, and WatchdogStalled reports whether the stale-tick
	// watchdog currently considers the reallocation loop stalled.
	TickInputRejected  int64 `json:"tick_input_rejected"`
	WatchdogStaleTicks int64 `json:"watchdog_stale_ticks"`
	WatchdogStalled    bool  `json:"watchdog_stalled"`
	// LadderShedding reports whether the degradation ladder is maxed out
	// (only then may the admission gate shed requests).
	LadderShedding bool           `json:"ladder_shedding"`
	Classes        []ClassMetrics `json:"classes"`
	SlowdownRatios []float64      `json:"slowdown_ratios"`
}

// jsonSafe maps NaN/Inf (which encoding/json rejects) to 0; absent
// measurements read as zero in the document.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Snapshot assembles the current metrics document entirely from registry
// atomics — it takes no lock at all, and in particular never touches the
// control-plane mutex, so a slow (or adversarial) scrape can never delay
// a reallocation tick; conversely a long tick never blocks a scrape. The
// control-plane gauges (rates, λ̂, effective δ) are published by the tick
// that computes them.
func (s *Server) Snapshot() MetricsDocument {
	n := len(s.classes)
	doc := MetricsDocument{
		UptimeSeconds:   time.Since(s.started).Seconds(),
		Estimator:       s.estName,
		Reallocations:   s.met.reallocations.Load(),
		AllocFailures:   s.met.allocFailures.Load(),
		AdmissionPolicy: "none",

		TickInputRejected:  s.met.tickInputRejected.Load(),
		WatchdogStaleTicks: s.met.watchdogStaleTicks.Load(),
		WatchdogStalled:    s.met.watchdogStalled.Load() != 0,
		LadderShedding:     s.met.ladderShedding.Load() != 0,
		Classes:            make([]ClassMetrics, n),
		SlowdownRatios:     make([]float64, n),
	}
	if s.adm != nil {
		doc.AdmissionPolicy = s.adm.Name()
	}
	var base float64
	var snap obs.HistogramSnapshot
	for i, cr := range s.classes {
		s.met.slowdown.At(i).SnapshotInto(&snap)
		cm := ClassMetrics{
			Delta:             s.cfg.Deltas[i],
			EffectiveDelta:    s.met.effDelta.At(i).Load(),
			Rate:              s.met.rate.At(i).Load(),
			LambdaEstimate:    s.met.lambda.At(i).Load(),
			Served:            snap.Count,
			MeanSlowdown:      jsonSafe(snap.Mean()),
			WindowSlowdown:    jsonSafe(s.met.windowSlow.At(i).Load()),
			QueueDepth:        len(cr.queue),
			RejectedAdmission: s.met.rejAdmission.At(i).Load(),
			RejectedQueueFull: s.met.rejQueueFull.At(i).Load(),
			RejectedWork:      s.met.rejWork.At(i).Load(),
			RateFloorClamps:   s.met.rateFloorClamps.At(i).Load(),
			DegradationLevel:  int(s.met.degradationLevel.At(i).Load()),
		}
		doc.RateFloorClamps += cm.RateFloorClamps
		doc.Classes[i] = cm
		if i == 0 {
			base = cm.MeanSlowdown
		}
		if base > 0 {
			doc.SlowdownRatios[i] = cm.MeanSlowdown / base
		}
	}
	return doc
}

// refreshScrapeGauges updates the gauges that are sampled at read time
// rather than maintained by events (uptime, queue depths).
func (s *Server) refreshScrapeGauges() {
	s.met.uptime.Set(time.Since(s.started).Seconds())
	for i, cr := range s.classes {
		s.met.queueDepth.At(i).Set(float64(len(cr.queue)))
	}
}

// Metrics returns an http.Handler serving the JSON metrics document; with
// ?format=prom it serves the Prometheus text exposition instead.
func (s *Server) Metrics() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prom" {
			s.servePromMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.Snapshot())
	})
}

// PromMetrics returns an http.Handler serving the Prometheus text
// exposition of the full metric catalog.
func (s *Server) PromMetrics() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		s.servePromMetrics(w)
	})
}

func (s *Server) servePromMetrics(w http.ResponseWriter) {
	s.refreshScrapeGauges()
	w.Header().Set("Content-Type", obs.PromContentType)
	_ = s.reg.WriteProm(w)
}

// ControlDump returns an http.Handler dumping the control-plane flight
// recorder as JSON: the last FlightRecorderSize ticks with λ̂, rates,
// measured slowdowns, effective δ and failure/clamp flags.
func (s *Server) ControlDump() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = s.rec.WriteJSON(w)
	})
}

// Registry exposes the server's metric registry (for embedding the
// catalog into a larger exposition, and for tests).
func (s *Server) Registry() *obs.Registry { return s.reg }

// FlightRecorder exposes the control-plane flight recorder (for dumps and
// the recorder parity tests).
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.rec }
