package stats

import (
	"math"
	"testing"

	"psd/internal/rng"
)

// Heavy-tailed samplers for the P² accuracy property: the aggregator
// feeds P² pooled slowdown ratios whose distribution is Pareto-like
// (orders of magnitude of spread), which is the estimator's hardest
// regime — uniform or normal data would pass trivially.

// paretoSample draws from a Pareto(α) with unit scale via inverse CDF.
func paretoSample(src *rng.Source, alpha float64) float64 {
	return math.Pow(1-src.Float64(), -1/alpha)
}

// lognormalSample draws from LogNormal(0, sigma).
func lognormalSample(src *rng.Source, sigma float64) float64 {
	return math.Exp(sigma * src.NormFloat64())
}

// TestP2TracksExactQuantilesHeavyTailed is the property test wiring
// satellite: for p50/p90/p99 on heavy-tailed samples across several
// seeds, the streaming P² estimate must sit within a tolerance band of
// the exact sample quantile. Tail quantiles of heavy-tailed data carry
// genuine estimation difficulty (the exact p99 of Pareto(1.5) rests on
// ~200 of 20000 samples), so the bands widen with the quantile: p50 is
// tight, p99 is allowed 25% — measured worst-case across these seeds is
// ~20%.
func TestP2TracksExactQuantilesHeavyTailed(t *testing.T) {
	const n = 20000
	samplers := []struct {
		name string
		draw func(*rng.Source) float64
	}{
		{"pareto1.5", func(s *rng.Source) float64 { return paretoSample(s, 1.5) }},
		{"pareto2.5", func(s *rng.Source) float64 { return paretoSample(s, 2.5) }},
		{"lognormal1.5", func(s *rng.Source) float64 { return lognormalSample(s, 1.5) }},
	}
	quantiles := []struct {
		q      float64
		relTol float64
	}{
		{0.50, 0.05},
		{0.90, 0.10},
		{0.99, 0.25},
	}
	for _, sampler := range samplers {
		for seed := uint64(1); seed <= 5; seed++ {
			src := rng.New(seed * 1000003)
			xs := make([]float64, n)
			ests := make([]*P2, len(quantiles))
			for i := range quantiles {
				ests[i] = NewP2(quantiles[i].q)
			}
			for i := 0; i < n; i++ {
				x := sampler.draw(src)
				xs[i] = x
				for _, p := range ests {
					p.Add(x)
				}
			}
			exact, err := Summarize(xs)
			if err != nil {
				t.Fatal(err)
			}
			// Cross-check the exact path itself (P05/P50/P95 come from
			// the same Quantile machinery the tolerance references).
			if !(exact.P05 <= exact.P50 && exact.P50 <= exact.P95) {
				t.Fatalf("%s seed %d: exact summary unordered: %+v", sampler.name, seed, exact)
			}
			for qi, spec := range quantiles {
				want, err := Quantile(xs, spec.q)
				if err != nil {
					t.Fatal(err)
				}
				got := ests[qi].Value()
				if relErr := math.Abs(got-want) / want; relErr > spec.relTol {
					t.Errorf("%s seed %d q%.0f: P² %v vs exact %v (rel err %.3f > %.2f)",
						sampler.name, seed, spec.q*100, got, want, relErr, spec.relTol)
				}
			}
		}
	}
}

// TestStreamingSummaryMatchesSummarize: the streaming summary's exact
// fields (count, moments, extrema) must equal the batch Summarize, and
// its percentiles must track it within P² tolerance on heavy-tailed data.
func TestStreamingSummaryMatchesSummarize(t *testing.T) {
	src := rng.New(42)
	const n = 10000
	var ss StreamingSummary
	ss.Init()
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = paretoSample(src, 1.5)
		ss.Add(xs[i])
	}
	got := ss.Summary()
	want, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != want.N || got.Mean != want.Mean || got.Std != want.Std ||
		got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("exact fields diverged: %+v vs %+v", got, want)
	}
	for _, c := range []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"p05", got.P05, want.P05, 0.05},
		{"p50", got.P50, want.P50, 0.05},
		{"p95", got.P95, want.P95, 0.10},
	} {
		if math.Abs(c.got-c.want)/c.want > c.tol {
			t.Errorf("%s: streaming %v vs exact %v", c.name, c.got, c.want)
		}
	}
}

// TestStreamingSummaryInitAndSmall covers the re-arm and tiny-sample
// paths: Init discards prior data, and below 5 observations the
// percentiles are exact.
func TestStreamingSummaryInitAndSmall(t *testing.T) {
	var ss StreamingSummary
	ss.Init()
	if s := ss.Summary(); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
	for _, x := range []float64{5, 1, 3} {
		ss.Add(x)
	}
	s := ss.Summary()
	if s.N != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("small-sample summary = %+v", s)
	}
	ss.Init()
	if ss.N() != 0 {
		t.Fatal("Init did not discard observations")
	}
	ss.Add(7)
	if s := ss.Summary(); s.Mean != 7 || s.N != 1 {
		t.Fatalf("post-Init summary = %+v", s)
	}
}

func TestP2ResetKeepsQuantile(t *testing.T) {
	p := NewP2(0.9)
	for i := 0; i < 100; i++ {
		p.Add(float64(i))
	}
	p.Reset()
	if p.N() != 0 {
		t.Fatal("Reset kept observations")
	}
	for i := 0; i < 1000; i++ {
		p.Add(float64(i % 100))
	}
	v := p.Value()
	if v < 80 || v > 99 {
		t.Fatalf("post-Reset p90 of 0..99 cycle = %v", v)
	}
}
