// Command psdserver runs the PSD HTTP server: classified requests are
// queued per class and served by rate-allocated task servers, with live
// reallocation and a JSON metrics endpoint.
//
// Usage:
//
//	psdserver -addr :8080 -deltas 1,2
//	curl 'http://localhost:8080/?class=0&size=2'
//	curl http://localhost:8080/metrics
//
// A request's class comes from the X-PSD-Class header or ?class=; its
// work size from ?size= (work units) or, if absent, a Bounded Pareto
// sample. One work unit at full rate costs -timeunit of wall clock.
// An optional pre-queue admission gate (-admission utilization |
// tokenbucket) sheds overload with 503s before it can bias the load
// estimator; shed demand is accounted at /metrics.
//
// Observability: /metrics serves the JSON document, /metrics/prom (or
// /metrics?format=prom) the Prometheus text exposition, /debug/control
// the control-plane flight recorder (last -flightrec ticks). -pprof
// additionally mounts net/http/pprof under /debug/pprof/.
//
// Robustness: -ladder enables graceful degradation (per-class delta
// targets step down -ladder-rungs under sustained overload before any
// shedding, recovering with hysteresis); -watchdog tunes the stale-tick
// watchdog. The -chaos-* flags arm the deterministic fault-injection
// harness (worker stalls, service spikes, corrupted control inputs,
// dropped ticks) for resilience drills — never set them in production.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"psd/internal/admission"
	"psd/internal/chaos"
	"psd/internal/control"
	"psd/internal/core"
	"psd/internal/dist"
	"psd/internal/httpsrv"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		deltas    = flag.String("deltas", "1,2", "comma-separated differentiation parameters")
		timeUnit  = flag.Duration("timeunit", 10*time.Millisecond, "wall-clock duration of one work unit at full rate")
		window    = flag.Float64("window", 100, "reallocation window in time units")
		alpha     = flag.Float64("alpha", 1.5, "Bounded Pareto shape for undeclared sizes")
		lower     = flag.Float64("lower", 0.1, "Bounded Pareto lower bound")
		upper     = flag.Float64("upper", 100, "Bounded Pareto upper bound")
		allocator = flag.String("allocator", "psd", "rate-allocation policy from the core registry: "+strings.Join(core.Names(), " | "))
		feedback  = flag.Bool("feedback", false, "enable the slowdown-ratio feedback controller")
		estimator = flag.String("estimator", "window", "load estimator: window (paper) | ewma")
		ewmaAlpha = flag.Float64("ewma-alpha", 0.3, "EWMA smoothing factor in (0,1] (with -estimator ewma)")
		admPolicy = flag.String("admission", "none", "pre-queue admission gate: none | utilization | tokenbucket")
		admBound  = flag.Float64("admission-bound", 0.9, "utilization gate: admitted-load bound in (0,1]")
		admTau    = flag.Float64("admission-tau", 0, "utilization gate: smoothing time constant in time units (0: the reallocation window)")
		admRates  = flag.String("admission-rates", "", "token bucket: per-class work rates in work units per time unit (default: -admission-bound split evenly)")
		admBurst  = flag.Float64("admission-burst", 10, "token bucket: per-class credit cap in work units")
		flightrec = flag.Int("flightrec", 256, "control-plane flight recorder capacity in ticks (dump: GET /debug/control)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		workers   = flag.Int("workers-per-class", 1, "pacing workers per class; each paces at rate/N so the class aggregate is unchanged")
		minRate   = flag.Float64("min-rate", 0, "allocator-side per-class rate floor in capacity fractions (0: default 1e-3, negative: disable)")
		seed      = flag.Uint64("seed", 1, "server-side sampling seed")

		ladderOn      = flag.Bool("ladder", false, "enable the graceful-degradation ladder (degrade class deltas before shedding)")
		ladderRungs   = flag.String("ladder-rungs", "2,4,8", "ladder delta multipliers, ascending, each > 1")
		ladderEngage  = flag.Float64("ladder-engage-rho", 0.95, "utilization at or above which a tick counts as overloaded")
		ladderRecover = flag.Float64("ladder-recover-rho", 0.85, "utilization at or below which a tick counts as healthy (hysteresis)")
		watchdog      = flag.Float64("watchdog", 0, "stale-tick watchdog threshold in reallocation periods (0: default 4, negative: disable)")

		chaosSeed     = flag.Uint64("chaos-seed", 0, "fault-injection seed (any chaos probability > 0 arms the injector)")
		chaosStall    = flag.Float64("chaos-stall", 0, "per-job probability of a worker stall")
		chaosStallDur = flag.Duration("chaos-stall-dur", 100*time.Millisecond, "injected worker stall length")
		chaosSpike    = flag.Float64("chaos-spike", 0, "per-job probability of a service-latency spike (8x demand)")
		chaosCorrupt  = flag.Float64("chaos-corrupt", 0, "per-tick probability of corrupting the control inputs (NaN/Inf/negative)")
		chaosDrop     = flag.Float64("chaos-drop", 0, "per-tick probability of dropping the reallocation tick")
	)
	flag.Parse()

	ds, err := parseFloats(*deltas)
	if err != nil {
		fatalf("bad -deltas: %v", err)
	}
	svc, err := dist.NewBoundedPareto(*lower, *upper, *alpha)
	if err != nil {
		fatalf("bad Bounded Pareto parameters: %v", err)
	}
	kind, err := control.ParseEstimatorKind(*estimator)
	if err != nil {
		fatalf("bad -estimator: %v", err)
	}
	alloc, err := core.Parse(*allocator)
	if err != nil {
		fatalf("bad -allocator: %v", err)
	}
	if pol, _ := core.Lookup(*allocator); pol.Caps.NeedsSizeInfo {
		fatalf("policy %q needs per-job size information and requires the packetized simulator (psdsim -allocator %s); the live server paces partitioned task servers", *allocator, *allocator)
	}
	gate, err := buildAdmission(*admPolicy, *admBound, *admTau, *window, *admRates, *admBurst, len(ds))
	if err != nil {
		fatalf("bad admission flags: %v", err)
	}
	var ladder *admission.Ladder
	if *ladderOn {
		rungs, err := parseFloats(*ladderRungs)
		if err != nil {
			fatalf("bad -ladder-rungs: %v", err)
		}
		ladder, err = admission.NewLadder(admission.LadderConfig{
			Multipliers: rungs,
			EngageRho:   *ladderEngage,
			RecoverRho:  *ladderRecover,
		}, ds)
		if err != nil {
			fatalf("bad ladder flags: %v", err)
		}
	}
	var injector *chaos.Injector
	if *chaosStall > 0 || *chaosSpike > 0 || *chaosCorrupt > 0 || *chaosDrop > 0 {
		injector, err = chaos.New(chaos.Config{
			Seed:        *chaosSeed,
			StallProb:   *chaosStall,
			StallDur:    *chaosStallDur,
			SpikeProb:   *chaosSpike,
			CorruptProb: *chaosCorrupt,
			DropProb:    *chaosDrop,
		})
		if err != nil {
			fatalf("bad chaos flags: %v", err)
		}
		log.Printf("CHAOS ARMED: seed=%d stall=%g spike=%g corrupt=%g drop=%g — this server injects faults into itself",
			*chaosSeed, *chaosStall, *chaosSpike, *chaosCorrupt, *chaosDrop)
	}
	srv, err := httpsrv.New(httpsrv.Config{
		Deltas:             ds,
		Service:            svc,
		Allocator:          alloc,
		TimeUnit:           *timeUnit,
		Window:             *window,
		WorkersPerClass:    *workers,
		MinRate:            *minRate,
		Feedback:           *feedback,
		Estimator:          kind,
		EWMAAlpha:          *ewmaAlpha,
		Admission:          gate,
		FlightRecorderSize: *flightrec,
		Seed:               *seed,
		Ladder:             ladder,
		WatchdogFactor:     *watchdog,
		Chaos:              injector,
	})
	if err != nil {
		fatalf("starting server: %v", err)
	}
	defer srv.Close()

	mux := srv.Mux()
	if *pprofOn {
		// Mount explicitly instead of importing for side effects: the
		// handlers go on this mux, not http.DefaultServeMux, and only
		// when asked for.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	log.Printf("psdserver listening on %s — %d classes, deltas %v, window %g tu (%v), workers/class=%d, allocator=%s, estimator=%s, feedback=%v, admission=%s, pprof=%v",
		*addr, len(ds), ds, *window, time.Duration(*window*float64(*timeUnit)), *workers, alloc.Name(), kind, *feedback, *admPolicy, *pprofOn)
	log.Printf("work endpoint: GET /?class=N&size=X   metrics: GET /metrics (JSON), /metrics/prom (Prometheus), /debug/control (flight recorder)")
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fatalf("%v", err)
	}
}

// buildAdmission maps the -admission* flags to a controller; nil means
// admit everything.
func buildAdmission(policy string, bound, tau, window float64, ratesCSV string, burst float64, classes int) (admission.Controller, error) {
	switch policy {
	case "none", "":
		return nil, nil
	case "utilization":
		if tau == 0 {
			tau = window
		}
		return admission.NewUtilizationBound(bound, tau)
	case "tokenbucket":
		var rates []float64
		if ratesCSV == "" {
			rates = make([]float64, classes)
			for i := range rates {
				rates[i] = bound / float64(classes)
			}
		} else {
			var err error
			if rates, err = parseFloats(ratesCSV); err != nil {
				return nil, err
			}
			if len(rates) != classes {
				return nil, fmt.Errorf("-admission-rates has %d entries for %d classes", len(rates), classes)
			}
		}
		return admission.NewTokenBucket(rates, burst)
	default:
		return nil, fmt.Errorf("unknown policy %q (want none, utilization or tokenbucket)", policy)
	}
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "psdserver: "+format+"\n", args...)
	os.Exit(1)
}
