package sched

import (
	"testing"
)

// TestHeSRPTSizeOrder: with equal weights the discipline is pure
// shortest-job-first — jobs come back in ascending size regardless of
// enqueue order.
func TestHeSRPTSizeOrder(t *testing.T) {
	h := NewHeSRPT(2)
	sizes := []float64{5, 1, 3, 2, 4}
	for i, s := range sizes {
		h.Enqueue(Job{Class: i % 2, Size: s, Arrival: float64(i)})
	}
	prev := 0.0
	for i := 0; i < len(sizes); i++ {
		j, ok := h.Dequeue()
		if !ok {
			t.Fatalf("dequeue %d: empty", i)
		}
		if j.Size < prev {
			t.Fatalf("dequeue %d: size %g after %g", i, j.Size, prev)
		}
		prev = j.Size
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("drained scheduler still dequeues")
	}
}

// TestHeSRPTWeightTilt: the allocator's weights scale priority — a class
// with a larger weight wins against a same-size rival, the heSRPT-style
// per-class scaling.
func TestHeSRPTWeightTilt(t *testing.T) {
	h := NewHeSRPT(2)
	if err := h.SetWeights([]float64{4, 1}); err != nil {
		t.Fatal(err)
	}
	// Keys: class 0 → 2/4 = 0.5; class 1 → 1/1 = 1. Class 0's larger job
	// still dispatches first under its 4x weight.
	h.Enqueue(Job{Class: 1, Size: 1})
	h.Enqueue(Job{Class: 0, Size: 2})
	j, _ := h.Dequeue()
	if j.Class != 0 {
		t.Fatalf("weighted priority: got class %d first, want 0", j.Class)
	}
}

// TestHeSRPTFIFOTies: equal keys dispatch in arrival order (the strict
// (key, seq) total order shared with SCFQ).
func TestHeSRPTFIFOTies(t *testing.T) {
	h := NewHeSRPT(1)
	for i := 0; i < 8; i++ {
		h.Enqueue(Job{Class: 0, Size: 1, Arrival: float64(i)})
	}
	for i := 0; i < 8; i++ {
		j, ok := h.Dequeue()
		if !ok || j.Arrival != float64(i) {
			t.Fatalf("tie %d: got arrival %v ok=%v", i, j.Arrival, ok)
		}
	}
}

// TestHeSRPTSetWeightsValidation mirrors the Scheduler contract: wrong
// length and non-positive entries are rejected.
func TestHeSRPTSetWeightsValidation(t *testing.T) {
	h := NewHeSRPT(2)
	if err := h.SetWeights([]float64{1}); err == nil {
		t.Error("wrong-length weights accepted")
	}
	if err := h.SetWeights([]float64{1, 0}); err == nil {
		t.Error("zero weight accepted")
	}
	if err := h.SetWeights([]float64{1, -2}); err == nil {
		t.Error("negative weight accepted")
	}
}

// TestHeSRPTReset: Reset restores equal weights, empties the backlog and
// drops Payload references, while retaining capacity for reuse.
func TestHeSRPTReset(t *testing.T) {
	h := NewHeSRPT(2)
	if err := h.SetWeights([]float64{9, 1}); err != nil {
		t.Fatal(err)
	}
	payload := new(int)
	for i := 0; i < 10; i++ {
		h.Enqueue(Job{Class: i % 2, Size: float64(i + 1), Payload: payload})
	}
	h.Reset()
	if h.Backlog() != 0 {
		t.Fatalf("backlog %d after Reset", h.Backlog())
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("reset scheduler still dequeues")
	}
	// Equal weights again: same-size jobs of both classes tie FIFO.
	h.Enqueue(Job{Class: 1, Size: 1})
	h.Enqueue(Job{Class: 0, Size: 1})
	if j, _ := h.Dequeue(); j.Class != 1 {
		t.Fatalf("post-Reset weights not equal: class %d won", j.Class)
	}
}

// TestHeSRPTZeroAllocSteadyState gates the arena promise: once the slot
// arena and heap have grown to the working set, enqueue/dequeue cycles
// allocate nothing.
func TestHeSRPTZeroAllocSteadyState(t *testing.T) {
	h := NewHeSRPT(2)
	for i := 0; i < 64; i++ {
		h.Enqueue(Job{Class: i % 2, Size: float64(i%7 + 1)})
	}
	for h.Backlog() > 0 {
		h.Dequeue()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			h.Enqueue(Job{Class: i % 2, Size: float64(i%7 + 1)})
		}
		for h.Backlog() > 0 {
			h.Dequeue()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state cycle allocates %.1f times, want 0", allocs)
	}
}
