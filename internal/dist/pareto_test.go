package dist_test

import (
	"math"
	"testing"

	"psd/internal/dist"
	"psd/internal/queueing"
	"psd/internal/rng"
)

// TestPaperDefaultGolden pins the paper's §4.1 workload: the BP(0.1,
// 100, 1.5) parameters, their closed-form moments, and the slowdown
// constant C = E[X²]·E[1/X]/2 that Eq. 18 multiplies the load term by.
// These literals are the contract the allocator, simulator and figures
// are calibrated against; a change here is a change to every predicted
// slowdown in the repo.
func TestPaperDefaultGolden(t *testing.T) {
	d := dist.PaperDefault()
	if d.K != 0.1 || d.P != 100 || d.Alpha != 1.5 {
		t.Fatalf("PaperDefault = BP(%v, %v, %v), want BP(0.1, 100, 1.5)", d.K, d.P, d.Alpha)
	}
	golden := []struct {
		name string
		got  float64
		want float64
	}{
		{"E[X]", d.Mean(), 0.290522354142998},
		{"E[X²]", d.SecondMoment(), 0.918712350285928},
		{"E[1/X]", d.InverseMoment(), 6.00018955291714},
	}
	for _, g := range golden {
		if relErr(g.got, g.want) > 1e-12 {
			t.Errorf("%s = %.15g, want %.15g", g.name, g.got, g.want)
		}
	}
	c, err := queueing.SlowdownConstant(d)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2.75622412316079; relErr(c, want) > 1e-12 {
		t.Errorf("SlowdownConstant = %.15g, want %.15g", c, want)
	}
}

func TestBoundedParetoValidation(t *testing.T) {
	bad := []struct {
		name    string
		k, p, a float64
	}{
		{"k==p", 1, 1, 1.5},
		{"k>p", 1, 0.5, 1.5},
		{"zero k", 0, 100, 1.5},
		{"negative k", -0.1, 100, 1.5},
		{"zero alpha", 0.1, 100, 0},
		{"negative alpha", 0.1, 100, -1},
		{"NaN alpha", 0.1, 100, math.NaN()},
		{"Inf p", 0.1, math.Inf(1), 1.5},
		{"second moment overflows", 0.1, 1e250, 0.5},
		{"huge alpha overflows", 0.1, 100, 400},
	}
	for _, tc := range bad {
		if _, err := dist.NewBoundedPareto(tc.k, tc.p, tc.a); err == nil {
			t.Errorf("%s: BP(%v, %v, %v) accepted", tc.name, tc.k, tc.p, tc.a)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBoundedPareto did not panic on invalid parameters")
		}
	}()
	dist.MustBoundedPareto(1, 0.5, 1.5)
}

// TestBoundedParetoSpecialCaseContinuity: the α=1 (mean) and α=2
// (second moment) closed forms are logarithmic limits of the generic
// power form; the moments must be continuous across them.
func TestBoundedParetoSpecialCaseContinuity(t *testing.T) {
	const eps = 1e-7
	at := func(alpha float64) *dist.BoundedPareto { return dist.MustBoundedPareto(0.1, 100, alpha) }
	if got, lo, hi := at(1).Mean(), at(1-eps).Mean(), at(1+eps).Mean(); relErr(got, lo) > 1e-5 || relErr(got, hi) > 1e-5 {
		t.Errorf("mean discontinuous at alpha=1: %v vs [%v, %v]", got, lo, hi)
	}
	if got, lo, hi := at(2).SecondMoment(), at(2-eps).SecondMoment(), at(2+eps).SecondMoment(); relErr(got, lo) > 1e-5 || relErr(got, hi) > 1e-5 {
		t.Errorf("second moment discontinuous at alpha=2: %v vs [%v, %v]", got, lo, hi)
	}
	// Independent closed forms for the special cases.
	d1 := at(1)
	wantMean := (0.1 / (1 - 0.1/100)) * math.Log(100/0.1)
	if relErr(d1.Mean(), wantMean) > 1e-12 {
		t.Errorf("alpha=1 mean %v, want k·ln(p/k)/(1−k/p) = %v", d1.Mean(), wantMean)
	}
	d2 := at(2)
	wantSecond := (2 * 0.1 * 0.1 / (1 - math.Pow(0.1/100, 2))) * math.Log(100/0.1)
	if relErr(d2.SecondMoment(), wantSecond) > 1e-12 {
		t.Errorf("alpha=2 second moment %v, want 2k²·ln(p/k)/(1−(k/p)²) = %v", d2.SecondMoment(), wantSecond)
	}
}

// TestBoundedParetoSampleRange: the inverse CDF can never leave [k, p].
func TestBoundedParetoSampleRange(t *testing.T) {
	d := dist.PaperDefault()
	src := rng.New(7)
	for i := 0; i < 200_000; i++ {
		x := d.Sample(src)
		if x < d.K || x > d.P {
			t.Fatalf("sample %v outside [%v, %v]", x, d.K, d.P)
		}
	}
}

// TestBoundedParetoTailFraction: a coarse shape check beyond moments —
// the analytic CCDF at the size decade boundaries must match the
// empirical tail mass.
func TestBoundedParetoTailFraction(t *testing.T) {
	d := dist.PaperDefault()
	ccdf := func(x float64) float64 {
		// 1 − F(x) with F(x) = (1 − (k/x)^α)/(1 − (k/p)^α)
		trunc := 1 - math.Pow(d.K/d.P, d.Alpha)
		return 1 - (1-math.Pow(d.K/x, d.Alpha))/trunc
	}
	src := rng.New(11)
	const n = 500_000
	counts := map[float64]int{1: 0, 10: 0}
	for i := 0; i < n; i++ {
		x := d.Sample(src)
		for b := range counts {
			if x > b {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		got := float64(c) / n
		want := ccdf(b)
		if math.Abs(got-want) > 0.005 {
			t.Errorf("P[X > %v] = %v, want %v", b, got, want)
		}
	}
}

func TestScaledMomentsExact(t *testing.T) {
	base := dist.PaperDefault()
	for _, rate := range []float64{0.25, 1, 3} {
		s, err := dist.NewScaled(base, rate)
		if err != nil {
			t.Fatal(err)
		}
		if relErr(s.Mean(), base.Mean()/rate) > 1e-12 {
			t.Errorf("rate %v: mean %v, want %v", rate, s.Mean(), base.Mean()/rate)
		}
		if relErr(s.SecondMoment(), base.SecondMoment()/(rate*rate)) > 1e-12 {
			t.Errorf("rate %v: second %v, want %v", rate, s.SecondMoment(), base.SecondMoment()/(rate*rate))
		}
		if relErr(s.InverseMoment(), base.InverseMoment()*rate) > 1e-12 {
			t.Errorf("rate %v: inverse %v, want %v", rate, s.InverseMoment(), base.InverseMoment()*rate)
		}
	}
}

func TestScaledMethodMatchesNewScaled(t *testing.T) {
	base := dist.PaperDefault()
	viaMethod, err := base.Scaled(0.7)
	if err != nil {
		t.Fatal(err)
	}
	viaFunc, err := dist.NewScaled(base, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if viaMethod.Mean() != viaFunc.Mean() || viaMethod.SecondMoment() != viaFunc.SecondMoment() {
		t.Error("Scaled method and NewScaled disagree")
	}
	a, b := rng.New(3), rng.New(3)
	for i := 0; i < 100; i++ {
		if viaMethod.Sample(a) != viaFunc.Sample(b) {
			t.Fatal("scaled samplers diverged")
		}
	}
}

// TestScaledPreservesDivergence: +Inf inverse moments stay +Inf under
// capacity scaling.
func TestScaledPreservesDivergence(t *testing.T) {
	exp, _ := dist.NewExponential(1)
	s, err := dist.NewScaled(exp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(s.InverseMoment(), 1) {
		t.Fatalf("scaled exponential E[1/X] = %v, want +Inf", s.InverseMoment())
	}
}
