package dist_test

import (
	"math"
	"testing"

	"psd/internal/dist"
	"psd/internal/rng"
)

func relErr(got, want float64) float64 {
	if got == want {
		return 0
	}
	return math.Abs(got-want) / math.Max(math.Abs(got), math.Abs(want))
}

func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// momentCase pairs a distribution with per-moment Monte Carlo
// tolerances. Heavy-tailed second moments converge slowly (the sampling
// noise of X² scales with E[X⁴]), so tolerances widen with the tail.
type momentCase struct {
	name    string
	d       dist.Distribution
	n       int
	tolMean float64
	tolSec  float64
	tolInv  float64
}

func momentCases() []momentCase {
	trace := []float64{0.2, 0.5, 1, 2, 5, 0.7, 1.3}
	mix := must(dist.NewMixture(
		[]dist.Distribution{
			must(dist.NewUniform(0.5, 1.5)),
			dist.MustBoundedPareto(0.1, 10, 1.5),
			must(dist.NewDeterministic(2)),
		},
		[]float64{0.3, 0.5, 0.2},
	))
	return []momentCase{
		{"Deterministic", must(dist.NewDeterministic(2.5)), 1000, 1e-12, 1e-12, 1e-12},
		{"Uniform", must(dist.NewUniform(0.5, 2.5)), 400_000, 0.01, 0.01, 0.01},
		{"Exponential", must(dist.NewExponential(2)), 400_000, 0.01, 0.03, 0},
		{"BoundedPareto-short", dist.MustBoundedPareto(0.1, 10, 1.5), 400_000, 0.01, 0.05, 0.01},
		{"BoundedPareto-paper", dist.PaperDefault(), 1_000_000, 0.01, 0.15, 0.01},
		{"BoundedPareto-alpha1", dist.MustBoundedPareto(0.1, 100, 1), 1_000_000, 0.02, 0.08, 0.01},
		{"BoundedPareto-alpha2", dist.MustBoundedPareto(0.1, 100, 2), 1_000_000, 0.01, 0.25, 0.01},
		{"Lognormal", must(dist.NewLognormal(0, 0.5)), 400_000, 0.01, 0.02, 0.01},
		{"Lognormal-heavy", must(dist.LognormalFromMoments(2, 4)), 1_000_000, 0.01, 0.10, 0.01},
		{"Weibull-light", must(dist.NewWeibull(2, 1.5)), 400_000, 0.01, 0.02, 0.02},
		{"Weibull-heavy", must(dist.NewWeibull(0.7, 1)), 400_000, 0.01, 0.05, 0},
		{"HyperExp2", must(dist.NewHyperExp2(1, 4)), 1_000_000, 0.01, 0.05, 0},
		{"Empirical", must(dist.NewEmpirical(trace)), 400_000, 0.01, 0.01, 0.01},
		{"Mixture", mix, 400_000, 0.01, 0.05, 0.01},
		{"Scaled", must(dist.NewScaled(dist.PaperDefault(), 1.0/3)), 1_000_000, 0.01, 0.15, 0.01},
	}
}

// TestSampleMomentsMatchClosedForms is the core property test: for every
// family, Monte Carlo sample moments under a fixed seed must agree with
// the analytic Mean/SecondMoment/InverseMoment within the case
// tolerance. A divergent closed-form E[1/X] (+Inf) has no finite sample
// analogue and is skipped.
func TestSampleMomentsMatchClosedForms(t *testing.T) {
	parent := rng.New(0x5eed)
	for id, tc := range momentCases() {
		t.Run(tc.name, func(t *testing.T) {
			src := parent.Split(uint64(id))
			var sum, sum2, sumInv float64
			for i := 0; i < tc.n; i++ {
				x := tc.d.Sample(src)
				if !(x > 0) || math.IsInf(x, 0) || math.IsNaN(x) {
					t.Fatalf("sample %d = %v, want positive finite", i, x)
				}
				sum += x
				sum2 += x * x
				sumInv += 1 / x
			}
			n := float64(tc.n)
			if got, want := sum/n, tc.d.Mean(); relErr(got, want) > tc.tolMean {
				t.Errorf("sample mean %v vs E[X]=%v (tol %v)", got, want, tc.tolMean)
			}
			if got, want := sum2/n, tc.d.SecondMoment(); relErr(got, want) > tc.tolSec {
				t.Errorf("sample second moment %v vs E[X²]=%v (tol %v)", got, want, tc.tolSec)
			}
			inv := tc.d.InverseMoment()
			if math.IsInf(inv, 1) {
				return // divergent: nothing finite to compare against
			}
			if got := sumInv / n; relErr(got, inv) > tc.tolInv {
				t.Errorf("sample inverse moment %v vs E[1/X]=%v (tol %v)", got, inv, tc.tolInv)
			}
		})
	}
}

// TestMomentInequalities checks the structural constraints every valid
// size law satisfies: Jensen both ways (E[X²] ≥ E[X]², E[1/X] ≥ 1/E[X])
// and positivity.
func TestMomentInequalities(t *testing.T) {
	for _, tc := range momentCases() {
		t.Run(tc.name, func(t *testing.T) {
			m, m2, inv := tc.d.Mean(), tc.d.SecondMoment(), tc.d.InverseMoment()
			if !(m > 0) || math.IsInf(m, 0) {
				t.Fatalf("mean %v must be positive finite", m)
			}
			if m2 < m*m*(1-1e-12) {
				t.Errorf("E[X²]=%v < E[X]²=%v violates Jensen", m2, m*m)
			}
			if inv < (1/m)*(1-1e-12) {
				t.Errorf("E[1/X]=%v < 1/E[X]=%v violates Jensen", inv, 1/m)
			}
		})
	}
}

// TestSampleDeterminism: the same seed must reproduce the same stream —
// the property the simulator's common-random-numbers discipline rests
// on.
func TestSampleDeterminism(t *testing.T) {
	for _, tc := range momentCases() {
		t.Run(tc.name, func(t *testing.T) {
			a, b := rng.New(42), rng.New(42)
			for i := 0; i < 1000; i++ {
				if x, y := tc.d.Sample(a), tc.d.Sample(b); x != y {
					t.Fatalf("draw %d diverged: %v vs %v", i, x, y)
				}
			}
		})
	}
}

// TestStrings: every law names its family and parameters.
func TestStrings(t *testing.T) {
	for _, tc := range momentCases() {
		if s := tc.d.String(); s == "" {
			t.Errorf("%s: empty String()", tc.name)
		}
	}
}
