package stats

import (
	"fmt"
	"math"
	"strings"
)

// LogHistogram bins positive observations into geometrically spaced
// buckets, the natural choice for slowdown data that ranges from ~1 to
// hundreds. Observations below Lo land in an underflow bucket and those at
// or above Hi in an overflow bucket.
type LogHistogram struct {
	Lo, Hi    float64
	counts    []int64
	underflow int64
	overflow  int64
	total     int64
	logLo     float64
	logRatio  float64
}

// NewLogHistogram creates a histogram over [lo, hi) with n geometric
// buckets.
func NewLogHistogram(lo, hi float64, n int) (*LogHistogram, error) {
	if !(lo > 0) || !(hi > lo) || n < 1 {
		return nil, fmt.Errorf("stats: invalid log histogram [%v, %v) n=%d", lo, hi, n)
	}
	return &LogHistogram{
		Lo: lo, Hi: hi,
		counts:   make([]int64, n),
		logLo:    math.Log(lo),
		logRatio: math.Log(hi/lo) / float64(n),
	}, nil
}

// Add bins one observation.
func (h *LogHistogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.underflow++
	case x >= h.Hi:
		h.overflow++
	default:
		i := int((math.Log(x) - h.logLo) / h.logRatio)
		if i < 0 {
			i = 0
		}
		if i >= len(h.counts) {
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// Total returns the number of observations added.
func (h *LogHistogram) Total() int64 { return h.total }

// Underflow and Overflow return the out-of-range counts.
func (h *LogHistogram) Underflow() int64 { return h.underflow }
func (h *LogHistogram) Overflow() int64  { return h.overflow }

// Bucket returns the [lo, hi) bounds and count of bucket i.
func (h *LogHistogram) Bucket(i int) (lo, hi float64, count int64) {
	lo = math.Exp(h.logLo + float64(i)*h.logRatio)
	hi = math.Exp(h.logLo + float64(i+1)*h.logRatio)
	return lo, hi, h.counts[i]
}

// NumBuckets returns the number of in-range buckets.
func (h *LogHistogram) NumBuckets() int { return len(h.counts) }

// QuantileEstimate returns an estimate of the q-th quantile assuming
// uniform density within each bucket (log-uniform across its bounds).
func (h *LogHistogram) QuantileEstimate(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	target := q * float64(h.total)
	acc := float64(h.underflow)
	if acc >= target {
		return h.Lo
	}
	for i := range h.counts {
		c := float64(h.counts[i])
		if acc+c >= target && c > 0 {
			lo, hi, _ := h.Bucket(i)
			frac := (target - acc) / c
			return lo * math.Pow(hi/lo, frac)
		}
		acc += c
	}
	return h.Hi
}

// Render draws an ASCII bar chart with the given maximum bar width, for
// CLI reports.
func (h *LogHistogram) Render(width int) string {
	var maxCount int64 = 1
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var sb strings.Builder
	if h.underflow > 0 {
		fmt.Fprintf(&sb, "%12s %8d\n", "< lo", h.underflow)
	}
	for i := range h.counts {
		lo, hi, c := h.Bucket(i)
		bar := strings.Repeat("#", int(float64(width)*float64(c)/float64(maxCount)))
		fmt.Fprintf(&sb, "[%6.2f,%7.2f) %8d %s\n", lo, hi, c, bar)
	}
	if h.overflow > 0 {
		fmt.Fprintf(&sb, "%12s %8d\n", ">= hi", h.overflow)
	}
	return sb.String()
}

// WindowSeries accumulates per-window means of a time-stamped metric, the
// mechanism the paper uses to report slowdowns "measured for every
// thousand time units" (§4.1). Windows are [i·W, (i+1)·W).
type WindowSeries struct {
	Width  float64
	sums   []float64
	counts []int64
}

// NewWindowSeries creates a series with the given window width (> 0).
func NewWindowSeries(width float64) (*WindowSeries, error) {
	if !(width > 0) {
		return nil, fmt.Errorf("stats: window width %v must be positive", width)
	}
	return &WindowSeries{Width: width}, nil
}

// Reset clears all windows while retaining both the width and the
// accumulated bucket capacity, so a reused series observes a fresh run
// without reallocating.
func (s *WindowSeries) Reset() {
	s.sums = s.sums[:0]
	s.counts = s.counts[:0]
}

// Observe records value v at time t (t ≥ 0).
func (s *WindowSeries) Observe(t, v float64) {
	if t < 0 {
		return
	}
	i := int(t / s.Width)
	for len(s.sums) <= i {
		s.sums = append(s.sums, 0)
		s.counts = append(s.counts, 0)
	}
	s.sums[i] += v
	s.counts[i]++
}

// NumWindows returns the number of windows touched so far.
func (s *WindowSeries) NumWindows() int { return len(s.sums) }

// WindowMean returns the mean of window i and whether it has observations.
func (s *WindowSeries) WindowMean(i int) (float64, bool) {
	if i < 0 || i >= len(s.sums) || s.counts[i] == 0 {
		return 0, false
	}
	return s.sums[i] / float64(s.counts[i]), true
}

// WindowCount returns the observation count of window i.
func (s *WindowSeries) WindowCount(i int) int64 {
	if i < 0 || i >= len(s.counts) {
		return 0
	}
	return s.counts[i]
}

// Means returns the window means for all windows with data, along with the
// window start times.
func (s *WindowSeries) Means() (times, means []float64) {
	for i := range s.sums {
		if s.counts[i] > 0 {
			times = append(times, float64(i)*s.Width)
			means = append(means, s.sums[i]/float64(s.counts[i]))
		}
	}
	return times, means
}
