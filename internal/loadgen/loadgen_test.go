package loadgen

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"psd/internal/dist"
	"psd/internal/httpsrv"
)

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{}); err == nil {
		t.Error("accepted empty BaseURL")
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x"}); err == nil {
		t.Error("accepted empty lambdas")
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x", Lambdas: []float64{1}}); err == nil {
		t.Error("accepted zero duration")
	}
}

func TestRunAgainstPSDServer(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short")
	}
	srv, err := httpsrv.New(httpsrv.Config{
		Deltas:   []float64{1, 2},
		TimeUnit: time.Millisecond,
		Window:   50,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Mux())
	defer func() { ts.Close(); srv.Close() }()

	small, _ := dist.NewUniform(0.5, 1.5)
	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL + "/",
		Lambdas:  []float64{0.2, 0.2}, // per time unit (1ms) → 200 rps/class
		TimeUnit: time.Millisecond,
		Service:  small,
		Duration: 1500 * time.Millisecond,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range rep.Classes {
		if c.Sent == 0 {
			t.Fatalf("class %d sent nothing", i)
		}
		if c.Completed == 0 {
			t.Fatalf("class %d completed nothing (errors=%d)", i, c.Errors)
		}
		if c.MeanLatencyMs <= 0 {
			t.Fatalf("class %d latency %v", i, c.MeanLatencyMs)
		}
	}
	if rep.Elapsed < time.Second {
		t.Fatalf("elapsed %v too short", rep.Elapsed)
	}
	// Ratio helper sanity (no strict value assertion: short run).
	if r := rep.SlowdownRatio(1); r < 0 {
		t.Fatalf("ratio %v negative", r)
	}
	if !math.IsNaN(rep.SlowdownRatio(0)) || !math.IsNaN(rep.SlowdownRatio(5)) {
		t.Fatal("out-of-range ratio should be NaN, not a value a bound check could pass")
	}
	if len(rep.Phases) != 1 || rep.Phases[0][0].Sent != rep.Classes[0].Sent {
		t.Fatalf("unphased run should report exactly its one phase: %+v", rep.Phases)
	}
}

// TestSlowdownRatioNaNWhenUnavailable pins the documented contract: no
// class-0 measurement ⇒ NaN, never 0 (0 silently passes ratio < bound).
func TestSlowdownRatioNaNWhenUnavailable(t *testing.T) {
	rep := &Report{Classes: make([]ClassReport, 2)}
	if r := rep.SlowdownRatio(1); !math.IsNaN(r) {
		t.Fatalf("ratio with empty base = %v, want NaN", r)
	}
	if r := rep.PhaseSlowdownRatio(3, 1); !math.IsNaN(r) {
		t.Fatalf("out-of-range phase ratio = %v, want NaN", r)
	}
}

// TestOpenLoopRateAccuracy pins the absolute-clock arrival scheduler: at
// 1000 req/s against an instant backend, the achieved rate must track
// the nominal λ instead of sagging under per-iteration overhead (the old
// start-timer-after-work loop lost each iteration's sampling and spawn
// time, compounding at high rates).
func TestOpenLoopRateAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock drift band is not meaningful under -short (race job)")
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"slowdown":0,"service_ms":1}`))
	}))
	defer ts.Close()

	sizes, _ := dist.NewDeterministic(1)
	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL + "/",
		Lambdas:  []float64{1}, // 1 per ms = 1000 req/s
		TimeUnit: time.Millisecond,
		Service:  sizes,
		Duration: 1500 * time.Millisecond,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Classes[0]
	// ~1500 arrivals: Poisson σ ≈ 39 (2.6%); 10% tolerance ≈ 4σ.
	if rel := math.Abs(c.AchievedRate-c.NominalRate) / c.NominalRate; rel > 0.10 {
		t.Fatalf("achieved rate %v vs nominal %v: drift %.1f%% (sent %d in %v)",
			c.AchievedRate, c.NominalRate, rel*100, c.Sent, rep.Elapsed)
	}
}

// TestPhasedScheduleSplitsReports drives a two-phase schedule and checks
// per-phase attribution and per-phase nominal rates.
func TestPhasedScheduleSplitsReports(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock load test skipped in -short (race job)")
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"slowdown":0.5,"service_ms":1}`))
	}))
	defer ts.Close()

	sizes, _ := dist.NewDeterministic(1)
	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL + "/",
		TimeUnit: time.Millisecond,
		Service:  sizes,
		Phases: []Phase{
			{Lambdas: []float64{0.5}, Duration: 400 * time.Millisecond},
			{Lambdas: []float64{1.5}, Duration: 400 * time.Millisecond},
		},
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("phases = %d", len(rep.Phases))
	}
	p0, p1 := rep.Phases[0][0], rep.Phases[1][0]
	if p0.NominalRate != 0.5 || p1.NominalRate != 1.5 {
		t.Fatalf("nominal rates %v/%v, want 0.5/1.5", p0.NominalRate, p1.NominalRate)
	}
	if p0.Sent == 0 || p1.Sent == 0 {
		t.Fatalf("phase sent counts %d/%d", p0.Sent, p1.Sent)
	}
	// 3× the rate for the same duration: phase 1 must clearly out-send
	// phase 0 (expected 200 vs 600; 1.5× leaves ~8σ of headroom).
	if float64(p1.Sent) < 1.5*float64(p0.Sent) {
		t.Fatalf("load step invisible in per-phase reports: %d vs %d", p0.Sent, p1.Sent)
	}
	if got := p0.Sent + p1.Sent; got != rep.Classes[0].Sent {
		t.Fatalf("aggregate sent %d != phase sum %d", rep.Classes[0].Sent, got)
	}
	if rep.Classes[0].NominalRate != 1.0 {
		t.Fatalf("aggregate nominal %v, want duration-weighted 1.0", rep.Classes[0].NominalRate)
	}
}

// TestPhaseValidation rejects malformed schedules.
func TestPhaseValidation(t *testing.T) {
	ctx := context.Background()
	bad := []Config{
		{BaseURL: "http://x", Phases: []Phase{{Lambdas: []float64{1}, Duration: 0}}},
		{BaseURL: "http://x", Phases: []Phase{
			{Lambdas: []float64{1}, Duration: time.Second},
			{Lambdas: []float64{1, 2}, Duration: time.Second},
		}},
		{BaseURL: "http://x", Lambdas: []float64{1}, Duration: time.Second, Drain: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := Run(ctx, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRunRespectsContextCancel(t *testing.T) {
	srv, err := httpsrv.New(httpsrv.Config{Deltas: []float64{1}, TimeUnit: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Mux())
	defer func() { ts.Close(); srv.Close() }()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = Run(ctx, Config{
		BaseURL:  ts.URL + "/",
		Lambdas:  []float64{0.05},
		TimeUnit: time.Millisecond,
		Duration: 10 * time.Second,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("cancel not honored promptly")
	}
}

// TestWorkerPoolBoundsInFlight pins the pool's two contracts: in-flight
// requests never exceed Config.Workers, and arrivals that would have to
// wait are shed client-side (sent = completed + errors, with errors > 0
// under deliberate saturation) instead of blocking the open-loop clock.
func TestWorkerPoolBoundsInFlight(t *testing.T) {
	var inflight, peak, handled atomic.Int64
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := inflight.Add(1)
		defer inflight.Add(-1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(30 * time.Millisecond)
		handled.Add(1)
		_, _ = w.Write([]byte(`{"slowdown":1,"service_ms":30}`))
	}))
	defer slow.Close()

	det, err := dist.NewDeterministic(1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		BaseURL:    slow.URL + "/",
		Lambdas:    []float64{1}, // 1 req/ms against 4 workers × 30ms ⇒ saturation
		TimeUnit:   time.Millisecond,
		Service:    det,
		Duration:   250 * time.Millisecond,
		Drain:      500 * time.Millisecond,
		Workers:    4,
		MaxPending: 2,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Classes[0]
	if got := peak.Load(); got > 4 {
		t.Fatalf("peak in-flight %d exceeded the 4-worker pool", got)
	}
	if c.Errors == 0 {
		t.Fatal("saturating load produced no client-side sheds")
	}
	if c.Completed == 0 {
		t.Fatal("no requests completed at all")
	}
	if c.Sent != c.Completed+c.Errors {
		t.Fatalf("accounting leak: sent %d != completed %d + errors %d", c.Sent, c.Completed, c.Errors)
	}
}
