// Package sched implements the proportional-share scheduling substrate
// that the paper assumes is available on the server ("we assume that the
// processing rate of an Internet server can be proportionally allocated to
// a number of task servers", §2.2, citing GPS, PGPS and Lottery
// scheduling). The PSD rate allocator outputs a weight vector; these
// schedulers realize it on a single serially-shared processor by choosing
// which class's head-of-line request runs next.
//
// Provided disciplines:
//
//   - SCFQ — self-clocked fair queueing, a practical packet-by-packet
//     approximation of GPS (PGPS family)
//   - DRR — deficit round robin
//   - SmoothWRR — smooth weighted round robin (integer-free)
//   - Lottery — randomized proportional share
//   - StrictPriority — the related-work baseline that provably cannot
//     hold quality spacings (§5)
//   - GlobalFCFS — no differentiation at all
//
// A fluid GPS reference (GPSFinishTimes) computes exact fluid completion
// times for conformance tests: packetized schedules must track the fluid
// schedule within a bounded lag.
//
// Jobs move through the schedulers BY VALUE: Enqueue copies the Job into
// the scheduler's internal storage (a value-typed tag heap for SCFQ, ring
// buffers for the round-robin family) and Dequeue copies it back out. No
// per-job heap allocation ever occurs in steady state — internal buffers
// grow only while a queue reaches a new high-water mark, and Reset
// retains that capacity across simulation replications. This is what
// keeps the packetized simulation mode on the same ~zero allocs/event
// budget as the partitioned one.
//
// All schedulers are single-goroutine data structures; the HTTP front end
// serializes access through its dispatcher.
package sched

import (
	"errors"
	"fmt"
)

// Job is one schedulable request. Jobs are plain values; the scheduler
// stores a copy on Enqueue and returns a copy from Dequeue.
type Job struct {
	// Class indexes the weight vector.
	Class int
	// Size is the job's service demand in work units.
	Size float64
	// Arrival is the caller's arrival timestamp (informational; only GPS
	// conformance tooling interprets it).
	Arrival float64
	// Payload carries the caller's context through the scheduler.
	Payload any
}

// Scheduler selects the next job to run to completion on the shared
// processor.
type Scheduler interface {
	// Name identifies the discipline.
	Name() string
	// SetWeights installs the normalized per-class weights (from the rate
	// allocator). Implementations must accept any positive vector.
	SetWeights(w []float64) error
	// Enqueue adds a job (copied by value).
	Enqueue(j Job)
	// Dequeue removes and returns the next job to serve; ok is false when
	// the scheduler is idle.
	Dequeue() (j Job, ok bool)
	// Backlog returns the number of queued jobs.
	Backlog() int
	// Reset restores the freshly constructed state — empty queues, equal
	// weights, cleared virtual-time/deficit bookkeeping — while retaining
	// internal buffer capacity, so a simulation arena reuses one
	// scheduler across replications without allocating. Randomized
	// disciplines keep their random source state; rebuild the scheduler
	// instead when bit-reproducible replications are required.
	Reset()
}

// ErrBadWeights reports an invalid weight vector.
var ErrBadWeights = errors.New("sched: weights must be positive")

func checkWeights(w []float64, classes int) error {
	if len(w) != classes {
		return fmt.Errorf("%w: got %d weights for %d classes", ErrBadWeights, len(w), classes)
	}
	for i, x := range w {
		if !(x > 0) {
			return fmt.Errorf("%w: weight[%d] = %v", ErrBadWeights, i, x)
		}
	}
	return nil
}

func equalWeights(w []float64) {
	for i := range w {
		w[i] = 1 / float64(len(w))
	}
}

// jobRing is a growable power-of-two ring buffer of Job values. Push and
// pop never allocate in steady state; the buffer grows only at a new
// high-water mark and is retained across Reset.
type jobRing struct {
	buf  []Job
	head int
	n    int
}

func (q *jobRing) len() int    { return q.n }
func (q *jobRing) empty() bool { return q.n == 0 }

func (q *jobRing) push(j Job) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = j
	q.n++
}

func (q *jobRing) pop() Job {
	j := q.buf[q.head]
	q.buf[q.head] = Job{} // drop the Payload reference
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return j
}

func (q *jobRing) headJob() (Job, bool) {
	if q.n == 0 {
		return Job{}, false
	}
	return q.buf[q.head], true
}

func (q *jobRing) reset() {
	for i := 0; i < q.n; i++ {
		q.buf[(q.head+i)&(len(q.buf)-1)] = Job{}
	}
	q.head = 0
	q.n = 0
}

func (q *jobRing) grow() {
	newCap := 8
	if len(q.buf) > 0 {
		newCap = len(q.buf) * 2
	}
	nb := make([]Job, newCap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
}

// ---------------------------------------------------------------------------
// SCFQ

// SCFQ is self-clocked fair queueing (Golestani): each arriving job gets a
// finish tag F = max(V, F_prev(class)) + size/w(class), where the virtual
// time V is the finish tag of the job most recently dispatched. Jobs are
// served in increasing tag order, approximating GPS within one maximum job
// per class.
//
// The pending set mirrors internal/des: a value-typed 4-ary implicit
// heap of small (tag, seq, slot) entries over a Job slot arena recycled
// through a free list. The heap is ordered by the strict total order
// (tag, seq) — seq is a monotone enqueue counter, so no two entries
// compare equal and the dequeue sequence is independent of heap
// internals. Sift operations move 24-byte keys instead of whole Jobs
// (or, as in the container/heap implementation this replaced, chasing
// *Job pointers through the GC heap), and steady-state operation
// performs no allocation: enqueue pops a free slot, dequeue pushes it
// back, and both arenas are retained across Reset.
type SCFQ struct {
	classes int
	weights []float64
	lastTag []float64 // per-class last finish tag
	vtime   float64
	heap    []scfqEntry
	jobs    []Job   // slot arena backing the heap entries
	free    []int32 // recycled slot indices (LIFO)
	seq     uint64
}

type scfqEntry struct {
	tag  float64
	seq  uint64
	slot int32
}

func scfqLess(a, b scfqEntry) bool {
	if a.tag != b.tag {
		return a.tag < b.tag
	}
	return a.seq < b.seq
}

// NewSCFQ builds an SCFQ scheduler for the given class count with equal
// initial weights.
func NewSCFQ(classes int) *SCFQ {
	s := &SCFQ{
		classes: classes,
		weights: make([]float64, classes),
		lastTag: make([]float64, classes),
	}
	equalWeights(s.weights)
	return s
}

// Name implements Scheduler.
func (s *SCFQ) Name() string { return "scfq" }

// SetWeights implements Scheduler.
func (s *SCFQ) SetWeights(w []float64) error {
	if err := checkWeights(w, s.classes); err != nil {
		return err
	}
	copy(s.weights, w)
	return nil
}

// Reset implements Scheduler.
func (s *SCFQ) Reset() {
	equalWeights(s.weights)
	for i := range s.lastTag {
		s.lastTag[i] = 0
	}
	s.vtime = 0
	s.seq = 0
	s.heap = s.heap[:0]
	for i := range s.jobs {
		s.jobs[i] = Job{} // drop Payload references
	}
	s.jobs = s.jobs[:0]
	s.free = s.free[:0]
}

// Enqueue implements Scheduler.
func (s *SCFQ) Enqueue(j Job) {
	start := s.vtime
	if s.lastTag[j.Class] > start {
		start = s.lastTag[j.Class]
	}
	tag := start + j.Size/s.weights[j.Class]
	s.lastTag[j.Class] = tag
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		slot = int32(len(s.jobs))
		s.jobs = append(s.jobs, Job{})
	}
	s.jobs[slot] = j
	s.heap = append(s.heap, scfqEntry{tag: tag, seq: s.seq, slot: slot})
	s.seq++
	s.siftUp(len(s.heap) - 1)
}

// Dequeue implements Scheduler.
func (s *SCFQ) Dequeue() (Job, bool) {
	if len(s.heap) == 0 {
		// Idle period: reset virtual time bookkeeping so stale tags do
		// not penalize the next busy period.
		s.vtime = 0
		for i := range s.lastTag {
			s.lastTag[i] = 0
		}
		return Job{}, false
	}
	root := s.heap[0]
	n := len(s.heap) - 1
	s.heap[0] = s.heap[n]
	s.heap = s.heap[:n]
	if n > 0 {
		s.siftDown(0)
	}
	s.vtime = root.tag
	j := s.jobs[root.slot]
	s.jobs[root.slot] = Job{} // drop the Payload reference
	s.free = append(s.free, root.slot)
	return j, true
}

// Backlog implements Scheduler.
func (s *SCFQ) Backlog() int { return len(s.heap) }

func (s *SCFQ) siftUp(i int) {
	h := s.heap
	e := h[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !scfqLess(e, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

func (s *SCFQ) siftDown(i int) {
	h := s.heap
	n := len(h)
	e := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if scfqLess(h[c], h[min]) {
				min = c
			}
		}
		if !scfqLess(h[min], e) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = e
}

// ---------------------------------------------------------------------------
// DRR

// DRR is deficit round robin (Shreedhar & Varghese): classes are visited
// cyclically; arriving at a backlogged class adds its grant
// (Quantum·w_i/max(w)) to the class's deficit counter, and the class
// releases head-of-line jobs while their size fits the deficit. A job
// larger than the grant simply accumulates deficit over multiple rounds —
// no job is ever served out of budget.
type DRR struct {
	classes int
	weights []float64
	queues  []jobRing
	deficit []float64
	// Quantum is the base quantum in work units; the per-round grant is
	// Quantum·w_i/max(w). Larger quanta reduce rotation overhead but
	// coarsen fairness granularity.
	Quantum float64
	cursor  int
	arrived bool // whether the cursor class has been granted since arrival
	backlog int
}

// NewDRR builds a DRR scheduler with the given base quantum (work units).
func NewDRR(classes int, quantum float64) (*DRR, error) {
	if !(quantum > 0) {
		return nil, fmt.Errorf("sched: DRR quantum %v must be positive", quantum)
	}
	d := &DRR{
		classes: classes,
		weights: make([]float64, classes),
		queues:  make([]jobRing, classes),
		deficit: make([]float64, classes),
		Quantum: quantum,
	}
	equalWeights(d.weights)
	return d, nil
}

// Name implements Scheduler.
func (d *DRR) Name() string { return "drr" }

// SetWeights implements Scheduler.
func (d *DRR) SetWeights(w []float64) error {
	if err := checkWeights(w, d.classes); err != nil {
		return err
	}
	copy(d.weights, w)
	return nil
}

// Reset implements Scheduler. The quantum is construction-time
// configuration and is retained.
func (d *DRR) Reset() {
	equalWeights(d.weights)
	for i := range d.queues {
		d.queues[i].reset()
		d.deficit[i] = 0
	}
	d.cursor = 0
	d.arrived = false
	d.backlog = 0
}

// Enqueue implements Scheduler.
func (d *DRR) Enqueue(j Job) {
	d.queues[j.Class].push(j)
	d.backlog++
}

// Dequeue implements Scheduler.
func (d *DRR) Dequeue() (Job, bool) {
	if d.backlog == 0 {
		for i := range d.deficit {
			d.deficit[i] = 0
		}
		d.arrived = false
		return Job{}, false
	}
	maxW := 0.0
	for _, w := range d.weights {
		if w > maxW {
			maxW = w
		}
	}
	advance := func() {
		d.cursor = (d.cursor + 1) % d.classes
		d.arrived = false
	}
	// Terminates: every full rotation adds a positive grant to each
	// backlogged class, so some head eventually fits its deficit.
	for {
		q := &d.queues[d.cursor]
		if q.empty() {
			// Standard DRR: an emptied class forfeits its deficit.
			d.deficit[d.cursor] = 0
			advance()
			continue
		}
		if !d.arrived {
			d.deficit[d.cursor] += d.Quantum * d.weights[d.cursor] / maxW
			d.arrived = true
		}
		if head, _ := q.headJob(); head.Size <= d.deficit[d.cursor] {
			d.deficit[d.cursor] -= head.Size
			d.backlog--
			// Cursor stays: the class keeps draining its deficit until
			// its head no longer fits (then the rotation moves on).
			return q.pop(), true
		}
		advance()
	}
}

// Backlog implements Scheduler.
func (d *DRR) Backlog() int { return d.backlog }
