package simsrv

import (
	"fmt"
	"math"

	"psd/internal/control"
	"psd/internal/core"
	"psd/internal/des"
	"psd/internal/rng"
	"psd/internal/sched"
	"psd/internal/stats"
)

// PacketizedConfig parametrizes a packetized-server simulation: one
// processor runs whole requests at full speed and a weighted-fair
// scheduler (internal/sched) picks the next request, with weights
// refreshed by the allocator every window. This mode validates that the
// paper's assumed proportional-share facility is realizable by practical
// packet-by-packet schedulers — and quantifies the slowdown-model
// correction (core.PacketizedPSD) that the run-to-completion service
// model requires.
type PacketizedConfig struct {
	// Config supplies classes, service law, windows, warmup, horizon and
	// seed. Its Allocator provides the weights; use core.PacketizedPSD
	// for proportional slowdowns on this server model (core.PSD's fluid
	// weights overshoot by design — see the ablation bench).
	Config
	// NewScheduler builds the discipline; it receives the class count
	// and a dedicated random stream (only Lottery uses it). Defaults to
	// SCFQ, in which case the scheduler is retained as part of the
	// simulation arena across replications.
	NewScheduler func(classes int, src *rng.Source) sched.Scheduler
}

// Packetized event kinds (pkRunner.HandleEvent payloads: data = class for
// pkArrival, unused otherwise).
const (
	pkArrival int32 = iota
	pkDone
	pkRealloc
	pkPhase
)

// pkClassMetrics aggregates one class's measurements in packetized mode.
type pkClassMetrics struct {
	slow    stats.Welford
	delay   stats.Welford
	svc     stats.Welford
	windows stats.WindowSeries
}

// pkRunner wires the packetized model for one replication; it is the
// packetized half of a Simulator arena. Like runner it is the single
// des.Handler, so event scheduling allocates nothing; jobs flow through
// the scheduler by value (SCFQ's tag heap stores them inline), and the
// allocator runs in place, so the whole mode sits on the same ~zero
// allocs/event budget as the partitioned model. (The previous engine's
// ~0.05 allocs/event came from the PacketizedPSD bisection allocating a
// candidate slice per probe — ~200 per reallocation tick.)
type pkRunner struct {
	cfg         Config
	sim         des.Simulator
	scheduler   sched.Scheduler
	ownSCFQ     *sched.SCFQ // retained default-discipline arena
	ownSCFQSize int         // class count ownSCFQ was built for
	schedSrc    rng.Source  // retained stream handed to NewScheduler
	loop        control.Loop
	workload    core.Workload
	total       float64
	phaseIdx    int // next LoadSchedule phase to apply

	metrics    []pkClassMetrics
	arrivalRng []rng.Source
	sizeRng    []rng.Source
	services   []distSampler
	// curLambda is the phase-adjusted per-class Poisson rate;
	// nextArrival the pending arrival event, cancellable at phase
	// switches for the memoryless redraw.
	curLambda   []float64
	nextArrival []des.EventID

	busy bool
	// cur* describe the request occupying the processor; the single
	// full-speed server serializes service, so no per-job state needs to
	// outlive its completion event.
	curClass   int
	curSize    float64
	curStart   float64
	curArrival float64

	allocDeltas  []float64
	allocLambdas []float64
	allocWeights []float64
	// lastWeights is the most recent weight vector actually installed in
	// the scheduler (floored), reported as Result.FinalRates.
	lastWeights []float64

	reallocOK   int
	reallocFail int
	records     []RequestRecord
}

func (p *pkRunner) HandleEvent(kind, data int32) {
	switch kind {
	case pkArrival:
		p.onArrival(int(data))
	case pkDone:
		p.onDone()
	case pkRealloc:
		p.onRealloc()
	case pkPhase:
		p.onPhase()
	}
}

func (p *pkRunner) scheduleArrival(i int) {
	p.nextArrival[i] = des.None
	if p.curLambda[i] <= 0 {
		return
	}
	p.nextArrival[i] = p.sim.Schedule(p.arrivalRng[i].ExpFloat64(p.curLambda[i]), p, pkArrival, int32(i))
}

func (p *pkRunner) onArrival(i int) {
	size := p.services[i].Sample(&p.sizeRng[i])
	p.loop.Observe(i, size)
	p.scheduler.Enqueue(sched.Job{Class: i, Size: size, Arrival: p.sim.Now()})
	if !p.busy {
		p.dispatch()
	}
	p.scheduleArrival(i)
}

// scheduleNextPhase / onPhase mirror the fluid runner's LoadSchedule
// handling (see simsrv.go) for the packetized model.
func (p *pkRunner) scheduleNextPhase() {
	if p.phaseIdx >= len(p.cfg.LoadSchedule) {
		return
	}
	next := p.cfg.LoadSchedule[p.phaseIdx]
	if next.Start > p.total {
		return
	}
	p.sim.ScheduleAt(next.Start, p, pkPhase, 0)
}

func (p *pkRunner) onPhase() {
	ph := p.cfg.LoadSchedule[p.phaseIdx]
	p.phaseIdx++
	for i, cc := range p.cfg.Classes {
		p.curLambda[i] = cc.Lambda * ph.scaleFor(i)
		if p.nextArrival[i] != des.None {
			p.sim.Cancel(p.nextArrival[i])
			p.nextArrival[i] = des.None
		}
		p.scheduleArrival(i)
	}
	p.scheduleNextPhase()
}

// dispatch pulls the scheduler's next choice onto the processor.
func (p *pkRunner) dispatch() {
	j, ok := p.scheduler.Dequeue()
	if !ok {
		p.busy = false
		return
	}
	p.busy = true
	p.curClass, p.curSize, p.curStart, p.curArrival = j.Class, j.Size, p.sim.Now(), j.Arrival
	p.sim.Schedule(j.Size, p, pkDone, 0) // full-speed service
}

func (p *pkRunner) onDone() {
	now := p.sim.Now()
	if now >= p.cfg.Warmup {
		delay := p.curStart - p.curArrival
		slowdown := delay / p.curSize
		m := &p.metrics[p.curClass]
		m.slow.Add(slowdown)
		m.delay.Add(delay)
		m.svc.Add(p.curSize)
		m.windows.Observe(now-p.cfg.Warmup, slowdown)
		if p.cfg.RecordRequests && now >= p.cfg.RecordFrom && now < p.cfg.RecordTo {
			p.records = append(p.records, RequestRecord{
				Class: p.curClass, Arrival: p.curArrival, ServiceStart: p.curStart,
				Completion: now, Size: p.curSize, Slowdown: slowdown,
			})
		}
	}
	p.dispatch()
}

// onRealloc drives one tick of the shared control plane and installs the
// resulting rates as (floored) scheduler weights. Packetized mode runs
// the loop open-loop: the Feedback flag is not applicable here.
func (p *pkRunner) onRealloc() {
	var in control.TickInput
	if p.cfg.Oracle {
		oracle := p.allocLambdas
		copy(oracle, p.curLambda)
		in.OracleLambdas = oracle
	}
	if rates, err := p.loop.Tick(in); err == nil {
		positiveFloorInto(p.allocWeights, rates, p.cfg.MinRate)
		if err := p.scheduler.SetWeights(p.allocWeights); err == nil {
			copy(p.lastWeights, p.allocWeights)
			p.reallocOK++
		} else {
			p.reallocFail++
		}
	} else {
		p.reallocFail++
	}
	if p.sim.Now() < p.total {
		p.sim.Schedule(p.cfg.Window, p, pkRealloc, 0)
	}
}

// reset re-arms the packetized arena for one replication of pc (whose
// Config.Seed is authoritative). It mirrors runner.reset: all buffers are
// reused, streams re-derived, and the default SCFQ scheduler's packet
// heap retained.
func (p *pkRunner) reset(pc PacketizedConfig) error {
	cfg := pc.Config.ApplyDefaults()
	if cfg.Allocator == nil || pc.Config.Allocator == nil {
		// The fluid default would systematically overshoot here; make
		// the packetized-correct allocator the default for this mode.
		cfg.Allocator = core.PacketizedPSD{}
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.WorkConserving {
		return fmt.Errorf("simsrv: packetized mode is inherently work-conserving; WorkConserving flag is not applicable")
	}
	w, err := coreWorkload(cfg)
	if err != nil {
		return err
	}

	nc := len(cfg.Classes)
	p.cfg = cfg
	p.workload = w
	p.total = cfg.Warmup + cfg.Horizon
	p.phaseIdx = 0
	p.sim.Reset()
	p.busy = false
	p.curClass, p.curSize, p.curStart, p.curArrival = 0, 0, 0, 0
	p.reallocOK = 0
	p.reallocFail = 0
	p.records = p.records[:0]

	var src rng.Source
	src.Reseed(cfg.Seed)
	if pc.NewScheduler != nil {
		// Re-derive the scheduler stream into a retained Source so a
		// factory that returns a retained scheduler keeps the reset
		// allocation-free (same derived state as src.Split(1000)).
		src.SplitInto(&p.schedSrc, 1000)
		p.scheduler = pc.NewScheduler(nc, &p.schedSrc)
	} else if p.ownSCFQ != nil && p.ownSCFQSize == nc {
		p.ownSCFQ.Reset()
		p.scheduler = p.ownSCFQ
	} else {
		p.ownSCFQ = sched.NewSCFQ(nc)
		p.ownSCFQSize = nc
		p.scheduler = p.ownSCFQ
	}

	if cap(p.metrics) < nc {
		old := p.metrics
		p.metrics = make([]pkClassMetrics, nc)
		copy(p.metrics, old) // keep retained window buffers
	} else {
		p.metrics = p.metrics[:nc]
	}
	if cap(p.arrivalRng) < nc {
		p.arrivalRng = make([]rng.Source, nc)
		p.sizeRng = make([]rng.Source, nc)
	} else {
		p.arrivalRng = p.arrivalRng[:nc]
		p.sizeRng = p.sizeRng[:nc]
	}
	if cap(p.services) < nc {
		p.services = make([]distSampler, nc)
	} else {
		p.services = p.services[:nc]
	}
	p.allocDeltas = resizeFloat(p.allocDeltas, nc)
	p.allocLambdas = resizeFloat(p.allocLambdas, nc)
	p.allocWeights = resizeFloat(p.allocWeights, nc)
	p.lastWeights = resizeFloat(p.lastWeights, nc)
	p.curLambda = resizeFloat(p.curLambda, nc)
	if cap(p.nextArrival) < nc {
		p.nextArrival = make([]des.EventID, nc)
	} else {
		p.nextArrival = p.nextArrival[:nc]
	}
	for i, cc := range cfg.Classes {
		p.allocDeltas[i] = cc.Delta
		p.curLambda[i] = cc.Lambda
		p.nextArrival[i] = des.None
	}
	if err := p.loop.Reset(control.LoopConfig{
		Deltas:           p.allocDeltas,
		Window:           cfg.Window,
		Estimator:        cfg.Estimator,
		HistoryWindows:   cfg.HistoryWindows,
		EWMAAlpha:        cfg.EWMAAlpha,
		Allocator:        cfg.Allocator,
		Workload:         w,
		EstimateFromWork: cfg.EstimateFromWork,
		Recorder:         cfg.Recorder,
	}); err != nil {
		return err
	}

	for i, cc := range cfg.Classes {
		m := &p.metrics[i]
		m.slow = stats.Welford{}
		m.delay = stats.Welford{}
		m.svc = stats.Welford{}
		m.windows.Width = cfg.Window
		m.windows.Reset()
		src.SplitInto(&p.arrivalRng[i], uint64(2*i+1))
		src.SplitInto(&p.sizeRng[i], uint64(2*i+2))
		svc := cc.Service
		if svc == nil {
			svc = cfg.Service
		}
		p.services[i] = svc
	}

	// Initial weights from declared rates (fall back to even split),
	// floored positive because schedulers reject non-positive weights.
	declared := p.allocLambdas
	for i, cc := range cfg.Classes {
		declared[i] = cc.Lambda
	}
	if a, err := p.loop.AllocateDeclared(declared); err == nil {
		positiveFloorInto(p.allocWeights, a.Rates, cfg.MinRate)
	} else {
		for i := range p.allocWeights {
			p.allocWeights[i] = 1 / float64(nc)
		}
	}
	if err := p.scheduler.SetWeights(p.allocWeights); err != nil {
		return err
	}
	copy(p.lastWeights, p.allocWeights)
	return nil
}

// collectInto assembles the Result in the same shape as the fluid mode.
func (p *pkRunner) collectInto(res *Result) {
	nc := len(p.cfg.Classes)
	if cap(res.Classes) < nc {
		res.Classes = make([]ClassStats, nc)
	} else {
		res.Classes = res.Classes[:nc]
	}
	res.ExpectedSlowdowns = resizeFloat(res.ExpectedSlowdowns, nc)
	res.FinalRates = resizeFloat(res.FinalRates, nc)
	copy(res.FinalRates, p.lastWeights)
	res.Reallocations = p.reallocOK
	res.AllocFailures = p.reallocFail
	res.EventsProcessed = p.sim.Processed()
	res.SystemSlowdown = 0
	// The packetized model has no admission gate or ladder; clear the
	// fields explicitly because Results recycle across runner modes.
	res.LadderEngagedAt = math.NaN()
	res.FirstShedAt = math.NaN()
	res.LadderMaxedOut = false
	p.records, res.Records = res.Records[:0], p.records

	numWindows := int(math.Ceil(p.cfg.Horizon / p.cfg.Window))
	var sysSlow, sysCount float64
	for i := range p.metrics {
		m := &p.metrics[i]
		st := &res.Classes[i]
		st.Count = m.slow.N()
		st.Rejected = 0
		st.MeanSlowdown = m.slow.Mean()
		st.StdSlowdown = m.slow.Std()
		st.MaxSlowdown = m.slow.Max()
		st.MeanDelay = m.delay.Mean()
		st.MeanService = m.svc.Mean()
		st.WindowMeans = resizeFloat(st.WindowMeans, numWindows)
		for wi := 0; wi < numWindows; wi++ {
			if mean, ok := m.windows.WindowMean(wi); ok {
				st.WindowMeans[wi] = mean
			} else {
				st.WindowMeans[wi] = math.NaN()
			}
		}
		if st.Count > 0 {
			sysSlow += st.MeanSlowdown * float64(st.Count)
			sysCount += float64(st.Count)
		}
	}
	if sysCount > 0 {
		res.SystemSlowdown = sysSlow / sysCount
	}
	declared := p.allocLambdas
	for i, cc := range p.cfg.Classes {
		declared[i] = cc.Lambda
	}
	if a, err := p.loop.AllocateDeclared(declared); err == nil {
		copy(res.ExpectedSlowdowns, a.ExpectedSlowdowns)
	} else {
		for i := range res.ExpectedSlowdowns {
			res.ExpectedSlowdowns[i] = math.NaN()
		}
	}
}

// RunPacketized executes one packetized-server replication. Batch callers
// should hold a Simulator and use ResetPacketized to amortize arena
// construction.
func RunPacketized(pc PacketizedConfig) (*Result, error) {
	var s Simulator
	if err := s.ResetPacketized(pc, pc.Config.Seed); err != nil {
		return nil, err
	}
	res := new(Result)
	if err := s.RunInto(res); err != nil {
		return nil, err
	}
	return res, nil
}

// distSampler is the sampling subset of dist.Distribution used above.
type distSampler interface {
	Sample(*rng.Source) float64
}

// positiveFloorInto clamps weights at a positive minimum into dst
// (schedulers reject non-positive weights; an idle class's zero rate
// becomes a negligible share).
func positiveFloorInto(dst, ws []float64, floor float64) {
	if floor <= 0 {
		floor = 1e-6
	}
	for i, w := range ws {
		if w < floor {
			w = floor
		}
		dst[i] = w
	}
}
